#!/usr/bin/env python3
"""Convention linter for the Rubick library sources (src/).

Enforces the project-wide contracts that the compiler cannot:

  1. Unit suffixes (common/units.h): identifiers holding a time, memory or
     bandwidth quantity carry an explicit unit suffix (`_s`, `_bytes`,
     `_bps`, or a documented coarser unit such as `_hours`/`_gb`).
  2. Determinism: no `std::rand`, `std::random_device`, `std::mt19937` or
     wall-clock reads — all randomness flows through common/rng.h (seeded,
     reproducible) and all time is simulated seconds.
  3. Logging discipline: library code never writes to stdout/stderr
     directly (`std::cout`, `printf`, ...); everything goes through
     common/log.h so embedders control the sink. (Tools and tests are
     exempt; so is the log sink itself.)
  4. CLI flag spelling: flag names registered through common/cli are
     kebab-case (`--sched-json`, not `--sched_json`). The parser maps a
     user-typed snake_case spelling onto the kebab-case flag (deprecated
     alias), so a snake_case *registration* would be unreachable. Unlike
     rules 1-3 this rule also covers tools/ and bench/, where the flags
     live.

Zero third-party dependencies; pure stdlib. Exit code 0 when clean, 1 when
any finding is reported. Run directly or via `ctest -R convention_lint`.
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys

# (path suffix, rule) pairs exempt from a rule. The log sink is the one
# place allowed to touch stderr; the telemetry clock is the one place
# allowed to read a wall clock (observability only — nothing read from it
# may steer scheduling or simulation, see common/wallclock.h).
ALLOWLIST = {
    ("src/common/log.cc", "io"),
    ("src/common/wallclock.cc", "determinism"),
}

# Comment-stripped lines are matched against these.
DETERMINISM_PATTERNS = [
    (re.compile(r"\bstd::rand\b|\bsrand\s*\("), "std::rand/srand"),
    (re.compile(r"\bstd::random_device\b"), "std::random_device"),
    (re.compile(r"\bstd::mt19937"), "std::mt19937"),
    (re.compile(r"\bstd::chrono::(system|steady|high_resolution)_clock\b"),
     "wall-clock read"),
    (re.compile(r"\btime\s*\(\s*(NULL|nullptr|0)\s*\)"), "time(NULL)"),
]

IO_PATTERNS = [
    (re.compile(r"\bstd::cout\b|\bstd::cerr\b|\bstd::clog\b"),
     "direct std stream"),
    (re.compile(r"\b(?:std::)?f?printf\s*\("), "printf-family call"),
    (re.compile(r"\bputs\s*\("), "puts"),
]

# A CliFlags getter registering a flag whose name contains an underscore.
# Matched against comment-stripped lines WITH string literals intact.
CLI_FLAG_RE = re.compile(
    r'\.get_(?:string|int|double|u64|bool)\s*\(\s*"([^"]*_[^"]*)"')

# A declared identifier whose stem names a unit-bearing quantity must spell
# the unit. Matches declarations / members / parameters, i.e. an identifier
# immediately preceded by a type-ish token and not already suffixed.
UNIT_STEMS = {
    "time": ("_s", "_hours", "_ms"),
    "duration": ("_s",),
    "delay": ("_s",),
    "latency": ("_s",),
    "timeout": ("_s",),
    "interval": ("_s",),
    "bandwidth": ("_bps",),
    "memory": ("_bytes", "_gb"),
}
# Words containing a stem that do not denote a quantity of that unit.
UNIT_WORD_ALLOW = {
    "timeline", "runtime", "lifetime", "timestamp", "times", "timed",
    "memory_estimator", "memory_budget", "memoryestimator",
    "in_memory", "memory_aware",
}

DECL_RE = re.compile(
    r"\b(?:double|float|int|long|std::uint64_t|uint64_t|std::int64_t|"
    r"int64_t|std::size_t|size_t|auto)\s+(?:[*&]\s*)?([a-z][a-z0-9_]*)\s*"
    r"(?:=|;|,|\)|\{)")

LINE_COMMENT_RE = re.compile(r"//.*$")
STRING_RE = re.compile(r'"(?:[^"\\]|\\.)*"')


def strip_noise(line: str) -> str:
    """Removes string literals and line comments before pattern matching."""
    line = STRING_RE.sub('""', line)
    return LINE_COMMENT_RE.sub("", line)


def check_units(path: pathlib.Path, lineno: int, code: str, findings: list):
    for match in DECL_RE.finditer(code):
        name = match.group(1)
        if name in UNIT_WORD_ALLOW:
            continue
        # `auto commit_plan_memory = [&](...)`: a lambda names an action,
        # not a quantity.
        if re.match(r"\s*=\s*\[", code[match.end(1):]):
            continue
        for stem, suffixes in UNIT_STEMS.items():
            if stem not in name:
                continue
            # The stem must terminate the conceptual name: `queue_time` and
            # `timeout` count, `timeline`/`multi_timer` do not.
            if not (name == stem or name.endswith(stem)):
                continue
            if name.endswith(suffixes):
                continue
            findings.append(
                (path, lineno,
                 f"identifier '{name}' holds a {stem} quantity but lacks a "
                 f"unit suffix ({' or '.join(suffixes)}); see common/units.h"))
            break


def lint_file(path: pathlib.Path, rel: str, findings: list) -> None:
    in_block_comment = False
    for lineno, raw in enumerate(
            path.read_text(encoding="utf-8", errors="replace").splitlines(),
            start=1):
        line = raw
        if in_block_comment:
            end = line.find("*/")
            if end < 0:
                continue
            line = line[end + 2:]
            in_block_comment = False
        start = line.find("/*")
        if start >= 0 and "*/" not in line[start:]:
            in_block_comment = True
            line = line[:start]
        if (rel, "cli") not in ALLOWLIST:
            for match in CLI_FLAG_RE.finditer(LINE_COMMENT_RE.sub("", line)):
                kebab = match.group(1).replace("_", "-")
                findings.append(
                    (path, lineno,
                     f"snake_case CLI flag '--{match.group(1)}': register "
                     f"the kebab-case name '--{kebab}' (common/cli already "
                     "accepts the snake spelling as a deprecated alias)"))

        # Rules 1-3 cover library sources only; tools, benches and tests
        # are free to print and to read the wall clock.
        if not rel.startswith("src/"):
            continue
        code = strip_noise(line)
        if not code.strip():
            continue

        if (rel, "determinism") not in ALLOWLIST:
            for pattern, what in DETERMINISM_PATTERNS:
                if pattern.search(code):
                    findings.append(
                        (path, lineno,
                         f"nondeterminism: {what} — use common/rng.h / "
                         "simulated time instead"))
        if (rel, "io") not in ALLOWLIST:
            for pattern, what in IO_PATTERNS:
                if pattern.search(code):
                    findings.append(
                        (path, lineno,
                         f"library I/O: {what} — route output through "
                         "common/log.h"))
        check_units(path, lineno, code, findings)


def main(argv: list) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("roots", nargs="*", default=["src", "tools", "bench"],
                        help="directories to lint (default: src tools bench)")
    args = parser.parse_args(argv)

    repo = pathlib.Path(__file__).resolve().parent.parent
    findings: list = []
    scanned = 0
    for root in args.roots:
        base = (repo / root) if not pathlib.Path(root).is_absolute() \
            else pathlib.Path(root)
        for path in sorted(base.rglob("*")):
            if path.suffix not in {".h", ".cc", ".cpp", ".hpp"}:
                continue
            scanned += 1
            rel = path.relative_to(repo).as_posix()
            lint_file(path, rel, findings)

    for path, lineno, message in findings:
        print(f"{path}:{lineno}: {message}")
    status = "clean" if not findings else f"{len(findings)} finding(s)"
    print(f"convention lint: {scanned} file(s) scanned, {status}")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
