// rubick_explain: answer "why did the scheduler do that?" from a decision
// log written by `rubick_simulate --decisions-out=FILE`.
//
// Usage:
//   rubick_explain <command> [args] --log=FILE [options]
//
// Commands:
//   summary                    totals: rounds, decisions by kind, trades,
//                              faults, fast-path share
//   why-job <J> [--at=T]       the decision for job J at time T (default:
//                              end of log) with its curve evidence, SLA and
//                              gate facts, plus the trade or fault behind
//                              the job's most recent allocation change
//   why-shrink [<J>]           every shrink/preemption (of job J, or all
//                              jobs), each with the trades and faults that
//                              explain it
//   trade-chain [--round=SEQ | --at=T]
//                              the Algorithm-1 trade chain of one round
//                              (default: the latest round that traded)
//   timeline <J>               every allocation change of job J in order,
//                              interleaved with the faults that hit it
//   diff <OTHER_LOG>           compare two logs round-by-round (exit 2 on
//                              divergence)
//
// Options:
//   --log=FILE        decision log (required)
//   --trace-csv=FILE  job trace CSV; adds model/tenant names to output
//   --at=T            reference time in seconds (default: end of log)
//
// The heavy lifting (parsing, queries) lives in provenance/decision_log.h
// so it stays unit-tested; this tool is the formatter.
#include <cstddef>
#include <cstdlib>
#include <iostream>
#include <limits>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.h"
#include "plan/execution_plan.h"
#include "provenance/decision_log.h"
#include "provenance/provenance.h"
#include "trace/job.h"
#include "trace/trace_io.h"

namespace rubick {
namespace {

constexpr double kEndOfLog = std::numeric_limits<double>::infinity();

// ---------------------------------------------------------------- argv ----

// CliFlags rejects positional arguments, and this tool is built around a
// positional subcommand — so it parses argv by hand: `--key=value`,
// `--key value`, everything else positional.
struct Args {
  std::vector<std::string> positional;
  std::map<std::string, std::string> flags;

  bool has(const std::string& key) const { return flags.count(key) != 0; }
  std::string get(const std::string& key, const std::string& fallback) const {
    const auto it = flags.find(key);
    return it == flags.end() ? fallback : it->second;
  }
  double get_double(const std::string& key, double fallback) const {
    const auto it = flags.find(key);
    if (it == flags.end()) return fallback;
    char* end = nullptr;
    const double v = std::strtod(it->second.c_str(), &end);
    RUBICK_CHECK_MSG(end != nullptr && *end == '\0',
                     "--" << key << " expects a number, got '" << it->second
                          << "'");
    return v;
  }
};

Args parse_args(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      args.positional.push_back(arg);
      continue;
    }
    const std::size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      args.flags[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      args.flags[arg.substr(2)] = argv[++i];
    } else {
      args.flags[arg.substr(2)] = "true";  // bare boolean flag
    }
  }
  return args;
}

int parse_job_id(const std::string& text) {
  char* end = nullptr;
  const long id = std::strtol(text.c_str(), &end, 10);
  RUBICK_CHECK_MSG(end != nullptr && *end == '\0' && !text.empty(),
                   "expected a job id, got '" << text << "'");
  return static_cast<int>(id);
}

// ---------------------------------------------------------- formatting ----

std::string fmt_time(double t_s) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(1);
  os << "t=" << t_s << "s";
  return os.str();
}

std::string fmt_rate(double samples_per_s) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(2);
  os << samples_per_s << " samples/s";
  return os.str();
}

// "job 17" or "job 17 (GPT-2, tenant-a)" when a trace CSV was supplied.
class JobNames {
 public:
  void load(const std::string& trace_csv) {
    for (const JobSpec& job : read_trace_csv_file(trace_csv)) {
      specs_[job.id] = job;
    }
  }
  std::string describe(int job_id) const {
    std::ostringstream os;
    os << "job " << job_id;
    const auto it = specs_.find(job_id);
    if (it != specs_.end()) {
      os << " (" << it->second.model_name << ", " << it->second.tenant
         << (it->second.guaranteed ? ", guaranteed" : ", best-effort") << ")";
    }
    return os.str();
  }

 private:
  std::map<int, JobSpec> specs_;
};

std::string describe_alloc(const DecisionRecord& r) {
  std::ostringstream os;
  if (r.gpus == 0) {
    os << "no allocation";
    return os.str();
  }
  os << r.gpus << " GPU" << (r.gpus == 1 ? "" : "s") << " / " << r.cpus
     << " CPU" << (r.cpus == 1 ? "" : "s") << " on " << r.nodes << " node"
     << (r.nodes == 1 ? "" : "s");
  if (r.has_plan) os << ", plan " << r.plan.display_name();
  return os.str();
}

void print_curve(const CurveEvidence& curve, int indent) {
  const std::string pad(indent, ' ');
  if (curve.curve_key.empty()) {
    std::cout << pad << "curve evidence: none recorded (baseline policy or "
                        "queued job)\n";
    return;
  }
  std::cout << pad << "curve " << curve.curve_key << ": feasible widths ["
            << curve.min_feasible_gpus << ", " << curve.max_useful_gpus
            << "], " << curve.candidate_width_count
            << " candidates considered\n";
  for (std::size_t i = 0; i < curve.widths.size(); ++i) {
    std::cout << pad << "  width " << curve.widths[i] << " -> "
              << fmt_rate(curve.width_throughput[i]) << "\n";
  }
  if (curve.chosen_throughput > 0.0) {
    std::cout << pad << "  chosen width delivers "
              << fmt_rate(curve.chosen_throughput) << "\n";
  }
}

void print_gates(const DecisionRecord& r, int indent) {
  const std::string pad(indent, ' ');
  std::vector<std::string> facts;
  if (r.gates.frozen) {
    // A frozen job can still be shrunk by a forced below-minRes claimant
    // (Algorithm 1's SLA override); say so instead of claiming the gate
    // held when it visibly didn't.
    facts.push_back(r.kind == DecisionKind::kShrink ||
                            r.kind == DecisionKind::kPreempt
                        ? "reconfig-penalty gate held this job, but a forced "
                          "below-minRes claimant overrode it"
                        : "reconfig-penalty gate held the width");
  }
  if (r.gates.starvation_forced)
    facts.push_back("starvation override forced scheduling");
  if (r.gates.opportunistic)
    facts.push_back("opportunistic admission below minRes");
  if (r.gates.backoff_gated) {
    std::ostringstream os;
    os << "reconfig-retry backoff active (retry not before "
       << fmt_time(r.gates.retry_not_before_s) << ")";
    facts.push_back(os.str());
  }
  if (r.gates.degraded)
    facts.push_back("degraded: pinned to last-known-good plan");
  if (r.gates.fault_dropped)
    facts.push_back("fault tolerance dropped this round's grant");
  if (r.gates.reconfig_failures > 0) {
    std::ostringstream os;
    os << r.gates.reconfig_failures << " reconfiguration failure"
       << (r.gates.reconfig_failures == 1 ? "" : "s") << " so far";
    facts.push_back(os.str());
  }
  if (facts.empty()) {
    std::cout << pad << "gates: none active\n";
    return;
  }
  std::cout << pad << "gates:\n";
  for (const std::string& f : facts) std::cout << pad << "  - " << f << "\n";
}

void print_sla(const DecisionRecord& r, int indent) {
  const std::string pad(indent, ' ');
  std::cout << pad << "sla: "
            << (r.sla.guaranteed ? "guaranteed" : "best-effort");
  if (r.sla.guaranteed) {
    std::cout << ", owed " << fmt_rate(r.sla.baseline_throughput)
              << ", minRes " << r.sla.min_gpus << " GPUs / " << r.sla.min_cpus
              << " CPUs";
  }
  std::cout << "\n";
}

void print_trade(const TradeEvent& t, const JobNames& names, int indent) {
  const std::string pad(indent, ' ');
  std::cout << pad << "- " << names.describe(t.claimant_id) << " took 1 "
            << (t.gpu ? "GPU" : "CPU") << " from "
            << names.describe(t.victim_id) << " on node " << t.node << ": "
            << "victim " << t.victim_before << " -> " << t.victim_after
            << " (floor " << t.victim_min << "), slopes claimant "
            << fmt_rate(t.claimant_slope) << " vs victim "
            << fmt_rate(t.victim_slope);
  if (t.forced) std::cout << " [forced: claimant below its floor]";
  if (t.preempted_victim) std::cout << " [victim preempted]";
  std::cout << "\n";
}

void print_faults(const std::vector<const FaultLogRecord*>& faults,
                  int indent) {
  const std::string pad(indent, ' ');
  for (const FaultLogRecord* f : faults) {
    std::cout << pad << "- " << fmt_time(f->t_s) << " fault '" << f->kind
              << "'";
    if (f->node >= 0) std::cout << " on node " << f->node;
    if (f->job_id >= 0) std::cout << " hitting job " << f->job_id;
    std::cout << "\n";
  }
}

// The evidence window behind a change in `round`: everything after the
// previous round the job appeared in.
double window_start(const DecisionLog& log, const RoundRecord* round,
                    int job_id) {
  double start = -kEndOfLog;
  for (const RoundRecord& r : log.rounds) {
    if (&r == round) break;
    if (find_decision(r, job_id) != nullptr) start = r.now_s;
  }
  return start;
}

// Explains one allocation change: the trades that funded/robbed it and the
// faults in the window leading up to it.
void explain_change(const DecisionLog& log, const JobChange& change,
                    int job_id, const JobNames& names, int indent) {
  const std::string pad(indent, ' ');
  const double start = window_start(log, change.round, job_id);
  const std::vector<const TradeEvent*> trades =
      trades_for(*change.round, job_id);
  const std::vector<const FaultLogRecord*> faults =
      faults_between(log, start, change.round->now_s);
  if (!trades.empty()) {
    std::cout << pad << "trades in that round involving this job:\n";
    for (const TradeEvent* t : trades) print_trade(*t, names, indent + 2);
  }
  if (!faults.empty()) {
    std::cout << pad << "faults since the previous round ("
              << fmt_time(start) << "):\n";
    print_faults(faults, indent + 2);
  }
  if (trades.empty() && faults.empty()) {
    std::cout << pad << "no trades or faults involved: the policy re-planned "
                        "from its sensitivity curves alone\n";
  }
}

// ---------------------------------------------------------- subcommands ----

int cmd_summary(const DecisionLog& log) {
  std::map<std::string, int> by_kind;
  std::size_t trades = 0;
  std::size_t fast = 0;
  for (const RoundRecord& r : log.rounds) {
    trades += r.trades.size();
    if (r.fast_path) ++fast;
    for (const DecisionRecord& d : r.decisions) ++by_kind[to_string(d.kind)];
  }
  std::cout << "policy " << log.policy << " (schema v" << log.schema_version
            << "): " << log.rounds.size() << " rounds (" << fast
            << " fast-path replays), " << trades << " trades, "
            << log.faults.size() << " faults\n";
  for (const auto& [kind, count] : by_kind) {
    std::cout << "  " << kind << ": " << count << "\n";
  }
  return 0;
}

int cmd_why_job(const DecisionLog& log, int job_id, double at_s,
                const JobNames& names) {
  const RoundRecord* round = last_round_with_job(log, job_id, at_s);
  if (round == nullptr) {
    std::cout << "job " << job_id << " never appears in the log";
    if (at_s != kEndOfLog) std::cout << " at or before " << fmt_time(at_s);
    std::cout << "\n";
    return 1;
  }
  const DecisionRecord* rec = find_decision(*round, job_id);
  std::cout << names.describe(job_id) << " at " << fmt_time(round->now_s)
            << " (round " << round->seq << (round->fast_path
            ? ", fast-path replay" : "") << "):\n";
  std::cout << "  decision: " << to_string(rec->kind) << " -> "
            << describe_alloc(*rec) << "\n";
  if (rec->prev_gpus > 0 && rec->has_prev_plan) {
    std::cout << "  previously: " << rec->prev_gpus << " GPUs, plan "
              << rec->prev_plan.display_name() << "\n";
  }
  print_curve(rec->curve, 2);
  print_sla(*rec, 2);
  print_gates(*rec, 2);

  const JobChange change = last_allocation_change(log, job_id, at_s);
  if (change.round == nullptr) {
    std::cout << "  allocation never changed in the queried window\n";
    return 0;
  }
  std::cout << "  most recent allocation change: "
            << to_string(change.record->kind) << " at "
            << fmt_time(change.round->now_s) << " (round " << change.round->seq
            << "), " << change.record->prev_gpus << " -> "
            << change.record->gpus << " GPUs\n";
  explain_change(log, change, job_id, names, 2);
  return 0;
}

int cmd_why_shrink(const DecisionLog& log, int job_id, const JobNames& names) {
  const std::vector<JobChange> events = shrink_events(log, job_id);
  if (events.empty()) {
    std::cout << "no shrinks or preemptions"
              << (job_id >= 0 ? " for job " + std::to_string(job_id) : "")
              << " in the log\n";
    return 0;
  }
  std::cout << events.size() << " shrink/preemption event"
            << (events.size() == 1 ? "" : "s") << ":\n";
  for (const JobChange& e : events) {
    std::cout << "\n" << names.describe(e.record->job_id) << " at "
              << fmt_time(e.round->now_s) << " (round " << e.round->seq
              << "): " << to_string(e.record->kind) << " "
              << e.record->prev_gpus << " -> " << e.record->gpus << " GPUs\n";
    print_gates(*e.record, 2);
    explain_change(log, e, e.record->job_id, names, 2);
  }
  return 0;
}

int cmd_trade_chain(const DecisionLog& log, const Args& args,
                    const JobNames& names) {
  const RoundRecord* round = nullptr;
  if (args.has("round")) {
    const double want = args.get_double("round", 0);
    for (const RoundRecord& r : log.rounds) {
      if (static_cast<double>(r.seq) == want) round = &r;
    }
    RUBICK_CHECK_MSG(round != nullptr,
                     "no round with seq " << args.get("round", ""));
  } else if (args.has("at")) {
    const double at_s = args.get_double("at", 0);
    for (const RoundRecord& r : log.rounds) {
      if (r.now_s <= at_s && !r.trades.empty()) round = &r;
    }
  } else {
    for (const RoundRecord& r : log.rounds) {
      if (!r.trades.empty()) round = &r;  // latest round that traded
    }
  }
  if (round == nullptr) {
    std::cout << "no round with trades found\n";
    return 0;
  }
  if (round->trades.empty()) {
    std::cout << "round " << round->seq << " at " << fmt_time(round->now_s)
              << " traded nothing\n";
    return 0;
  }
  std::cout << "round " << round->seq << " at " << fmt_time(round->now_s)
            << ": " << round->trades.size() << " trade"
            << (round->trades.size() == 1 ? "" : "s") << "\n";
  for (const TradeEvent& t : round->trades) print_trade(t, names, 2);
  return 0;
}

int cmd_timeline(const DecisionLog& log, int job_id, const JobNames& names) {
  std::cout << "timeline for " << names.describe(job_id) << ":\n";
  // Merge allocation changes and job/any faults in time order. Rounds and
  // faults are each already sorted, so a two-pointer walk suffices.
  std::size_t fi = 0;
  bool any = false;
  bool was_queued = false;
  for (const RoundRecord& r : log.rounds) {
    const DecisionRecord* rec = find_decision(r, job_id);
    if (rec == nullptr) continue;
    while (fi < log.faults.size() && log.faults[fi].t_s <= r.now_s) {
      const FaultLogRecord& f = log.faults[fi++];
      if (f.job_id == job_id) {
        std::cout << "  " << fmt_time(f.t_s) << "  fault '" << f.kind
                  << "'\n";
        any = true;
      }
    }
    // Only changes: skip steady-state keeps and all-but-the-first of a
    // consecutive run of queue records.
    const bool queued = rec->kind == DecisionKind::kQueue;
    const bool skip = rec->kind == DecisionKind::kKeep ||
                      (queued && was_queued);
    was_queued = queued;
    if (skip) continue;
    std::cout << "  " << fmt_time(r.now_s) << "  " << to_string(rec->kind)
              << ": " << describe_alloc(*rec);
    if (rec->prev_gpus != rec->gpus) {
      std::cout << " (was " << rec->prev_gpus << " GPUs)";
    }
    std::cout << "\n";
    any = true;
  }
  if (!any) std::cout << "  (job never appears)\n";
  return 0;
}

int cmd_diff(const DecisionLog& a, const DecisionLog& b) {
  const std::vector<std::string> diffs = diff_logs(a, b);
  if (diffs.empty()) {
    std::cout << "logs agree: " << a.rounds.size()
              << " rounds, identical decisions\n";
    return 0;
  }
  std::cout << diffs.size() << " difference" << (diffs.size() == 1 ? "" : "s")
            << ":\n";
  for (const std::string& d : diffs) std::cout << "  " << d << "\n";
  return 2;
}

int usage() {
  std::cerr
      << "usage: rubick_explain <command> [args] --log=FILE [options]\n"
         "commands: summary | why-job <J> [--at=T] | why-shrink [<J>]\n"
         "          | trade-chain [--round=SEQ|--at=T] | timeline <J>\n"
         "          | diff <OTHER_LOG>\n"
         "options: --log=FILE (required), --trace-csv=FILE, --at=T\n";
  return 64;
}

int run(int argc, char** argv) {
  const Args args = parse_args(argc, argv);
  if (args.positional.empty()) return usage();
  const std::string& command = args.positional[0];

  const std::string log_path = args.get("log", "");
  if (log_path.empty()) {
    std::cerr << "rubick_explain: --log=FILE is required\n";
    return 64;
  }
  const DecisionLog log = read_decision_log_file(log_path);

  JobNames names;
  const std::string trace_csv = args.get("trace-csv", "");
  if (!trace_csv.empty()) names.load(trace_csv);

  const double at_s = args.get_double("at", kEndOfLog);

  if (command == "summary") return cmd_summary(log);
  if (command == "why-job") {
    if (args.positional.size() != 2) return usage();
    return cmd_why_job(log, parse_job_id(args.positional[1]), at_s, names);
  }
  if (command == "why-shrink") {
    const int job_id =
        args.positional.size() > 1 ? parse_job_id(args.positional[1]) : -1;
    return cmd_why_shrink(log, job_id, names);
  }
  if (command == "trade-chain") return cmd_trade_chain(log, args, names);
  if (command == "timeline") {
    if (args.positional.size() != 2) return usage();
    return cmd_timeline(log, parse_job_id(args.positional[1]), names);
  }
  if (command == "diff") {
    if (args.positional.size() != 2) return usage();
    return cmd_diff(log, read_decision_log_file(args.positional[1]));
  }
  std::cerr << "rubick_explain: unknown command '" << command << "'\n";
  return usage();
}

}  // namespace
}  // namespace rubick

int main(int argc, char** argv) {
  try {
    return rubick::run(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "rubick_explain: " << e.what() << "\n";
    return 1;
  }
}
