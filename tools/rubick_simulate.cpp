// rubick_simulate — run any (trace, policy) combination on the simulated
// 64-GPU cluster from the command line.
//
//   rubick_simulate --policy=rubick --jobs=406 --window-hours=12 \
//                   --variant=base --seed=1 [--csv]
//
// Policies: rubick, rubick-e, rubick-r, rubick-n, sia, synergy, antman,
// equal-share. Variants: base, bp, mt. `--csv` prints one machine-readable
// line per job in addition to the summary.
#include <iostream>
#include <memory>

#include "baselines/antman.h"
#include "baselines/equal_share.h"
#include "baselines/sia.h"
#include "baselines/synergy.h"
#include "baselines/tiresias.h"
#include "common/cli.h"
#include "common/error.h"
#include "common/table.h"
#include "common/units.h"
#include "core/rubick_policy.h"
#include "sim/report.h"
#include "sim/simulator.h"
#include "trace/trace_gen.h"
#include "trace/trace_io.h"

using namespace rubick;

namespace {

std::unique_ptr<SchedulerPolicy> make_policy(const std::string& name,
                                             bool multi_tenant,
                                             double gate_threshold,
                                             bool opportunistic) {
  std::map<std::string, int> quota;
  if (multi_tenant) quota["tenant-a"] = 64;

  if (name == "rubick" || name == "rubick-e" || name == "rubick-r" ||
      name == "rubick-n") {
    RubickConfig config;
    if (name == "rubick-e") config = RubickPolicy::plans_only();
    if (name == "rubick-r") config = RubickPolicy::resources_only();
    if (name == "rubick-n") config = RubickPolicy::neither();
    config.tenant_quota_gpus = quota;
    config.gate_threshold = gate_threshold;
    config.opportunistic_admission = opportunistic;
    return std::make_unique<RubickPolicy>(config);
  }
  if (name == "sia") return std::make_unique<SiaPolicy>();
  if (name == "tiresias") return std::make_unique<TiresiasPolicy>();
  if (name == "synergy") return std::make_unique<SynergyPolicy>();
  if (name == "antman") return std::make_unique<AntManPolicy>(quota);
  if (name == "equal-share") return std::make_unique<EqualSharePolicy>();
  RUBICK_CHECK_MSG(false, "unknown policy '" << name
                                             << "'; try rubick, rubick-e, "
                                                "rubick-r, rubick-n, sia, "
                                                "synergy, antman, tiresias, equal-share");
}

}  // namespace

int main(int argc, char** argv) {
  CliFlags flags(argc, argv);
  const std::string policy_name = flags.get_string("policy", "rubick");
  const int num_jobs = flags.get_int("jobs", 406);
  const double window_h = flags.get_double("window-hours", 12.0);
  const std::string variant_name = flags.get_string("variant", "base");
  const std::uint64_t seed = flags.get_u64("seed", 1);
  const std::uint64_t oracle_seed = flags.get_u64("oracle-seed", 2025);
  const double load = flags.get_double("load", 1.0);
  const double large_frac = flags.get_double("large-fraction", 0.15);
  const bool csv = flags.get_bool("csv", false);
  const bool refinement = flags.get_bool("online-refinement", true);
  const bool size_penalty = flags.get_bool("size-dependent-penalty", false);
  const double delta = flags.get_double("reconfig-penalty", 78.0);
  const std::string trace_in = flags.get_string("trace-in", "");
  const std::string trace_out = flags.get_string("trace-out", "");
  const int history_id = flags.get_int("job-history", -1);
  const double gate = flags.get_double("gate-threshold", 0.97);
  const bool opportunistic = flags.get_bool("opportunistic-admission", true);
  flags.finish();

  TraceVariant variant = TraceVariant::kBase;
  if (variant_name == "bp") variant = TraceVariant::kBestPlan;
  else if (variant_name == "mt") variant = TraceVariant::kMultiTenant;
  else RUBICK_CHECK_MSG(variant_name == "base",
                        "unknown variant '" << variant_name << "'");

  const ClusterSpec cluster;
  const GroundTruthOracle oracle(oracle_seed);
  const TraceGenerator gen(cluster, oracle);
  TraceOptions opts;
  opts.seed = seed;
  opts.num_jobs = num_jobs;
  opts.window_s = hours(window_h);
  opts.variant = variant;
  opts.load_scale = load;
  opts.large_model_fraction = large_frac;
  const std::vector<JobSpec> jobs =
      trace_in.empty() ? gen.generate(opts) : read_trace_csv_file(trace_in);
  if (!trace_out.empty()) write_trace_csv_file(trace_out, jobs);

  SimOptions sim_opts;
  sim_opts.online_refinement = refinement;
  sim_opts.size_dependent_reconfig_cost = size_penalty;
  sim_opts.reconfig_penalty_s = delta;
  Simulator sim(cluster, oracle, sim_opts);
  auto policy = make_policy(policy_name,
                            variant == TraceVariant::kMultiTenant, gate,
                            opportunistic);
  const SimResult r = sim.run(jobs, *policy);

  std::cout << "trace=" << variant_name << " jobs=" << jobs.size()
            << " seed=" << seed << "\n";
  print_summary(std::cout, policy->name(), r);

  if (csv) {
    std::cout << "\n";
    write_results_csv(std::cout, r);
  }
  if (history_id >= 0) {
    std::cout << "\n";
    for (const auto& j : r.jobs)
      if (j.spec.id == history_id) print_job_history(std::cout, j);
  }
  return 0;
}
