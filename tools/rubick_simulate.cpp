// rubick_simulate — run any (trace, policy) combination on the simulated
// 64-GPU cluster from the command line.
//
//   rubick_simulate --policy=rubick --jobs=406 --window-hours=12
//                   --variant=base --seed=1 [--csv]
//
// Policies: rubick, rubick-e, rubick-r, rubick-n, sia, synergy, antman,
// equal-share. Variants: base, bp, mt. `--csv` prints one machine-readable
// line per job in addition to the summary.
//
// `--audit` (default on in Debug builds) attaches the InvariantAuditor from
// src/check to every run: scheduling decisions and simulation ticks are
// checked against the paper-level invariants (resource conservation,
// placement validity, plan feasibility, the performance guarantee for
// Rubick-family policies, curve monotonicity, lifecycle legality).
// `--audit-policy` picks the reaction: `count` (default; summary line +
// exit 1 on violations), `log`, or `throw` (fail fast).
//
// Multi-seed sweeps fan independent simulator runs across a thread pool:
//
//   rubick_simulate --policy=rubick --seeds=1,2,3,4 --parallel=4
//
// Each seed gets its own trace and a fresh policy instance; results print
// in seed order regardless of completion order, followed by an aggregate
// line. `--parallel=0` sizes the pool like RUBICK_THREADS (hardware
// concurrency by default).
//
// Telemetry (DESIGN.md §8): `--metrics-out=m.json` dumps the metrics
// registry, `--trace-out=trace.json` writes a Chrome trace-event file
// (open at ui.perfetto.dev) with scheduler wall-clock spans and one track
// per simulated job, `--events-out=events.jsonl` streams structured run
// events. Any of the three switches telemetry on; the job-level tracks
// and events come from the FIRST seed's run (scheduler spans cover every
// run). `--log-json` switches the stderr log to JSON lines stamped with
// simulated time. `--save-trace=jobs.csv` writes the generated job trace
// itself (CSV, reloadable with --trace-in).
//
// Chaos runs (DESIGN.md §10): `--fault-seed=N` injects a deterministic
// fault schedule — node crashes with recoveries, transient GPU failures,
// straggler episodes, and (with `--reconfig-failure-prob`) aborted
// reconfiguration attempts. The same fault plan is shared by every seed of
// a sweep so policies face identical weather. Combine with `--audit
// --audit-policy=throw` to fail fast on any recovery-protocol violation:
//
//   rubick_simulate --policy=rubick --jobs=200 --fault-seed=13
//                   --reconfig-failure-prob=0.1 --audit --audit-policy=throw
//
// Event engine (DESIGN.md §13): `--engine=indexed` (default) drives the run
// with the indexed event engine; `--engine=legacy-scan` selects the
// pre-engine full-fleet scan loop. The two are byte-identical by contract
// (same SimResult, decision log and golden trace), so the flag exists for
// bisecting engine regressions and for the differential CI check.
//
// Decide engine (DESIGN.md §14): `--decide=indexed` (default) serves the
// Rubick-family decide phase from slope-ordered victim heaps and an
// incrementally maintained node ranking; `--decide=legacy-scan` keeps the
// original per-probe full-fleet scan. Byte-identical by contract, same as
// --engine one layer down; baselines ignore the flag.
//
// Decision provenance (DESIGN.md §12): `--decisions-out=d.jsonl` attaches a
// ProvenanceRecorder to the FIRST seed's policy and streams one structured
// "why" record per scheduling round (chosen plans, curve evidence, trade
// chains, gating facts, fault evidence) to a JSONL log; inspect it with
// tools/rubick_explain. Combined with --trace-out, Perfetto flow arrows
// link each decision span to the simulated round it produced.
#include <fstream>
#include <future>
#include <iostream>
#include <memory>
#include <sstream>
#include <vector>

#include "baselines/policy_factory.h"
#include "check/invariant_auditor.h"
#include "cluster/cluster.h"
#include "common/cli.h"
#include "common/error.h"
#include "common/log.h"
#include "common/threadpool.h"
#include "common/units.h"
#include "core/audit.h"
#include "core/decide_index.h"
#include "core/predictor.h"
#include "core/rubick_policy.h"
#include "failure/fault_plan.h"
#include "perf/oracle.h"
#include "provenance/provenance.h"
#include "sim/provenance_observer.h"
#include "sim/report.h"
#include "sim/simulator.h"
#include "sim/telemetry_observer.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"
#include "trace/job.h"
#include "trace/trace_gen.h"
#include "trace/trace_io.h"

using namespace rubick;

namespace {

std::vector<std::uint64_t> parse_seed_list(const std::string& csv) {
  std::vector<std::uint64_t> seeds;
  std::istringstream is(csv);
  std::string tok;
  while (std::getline(is, tok, ',')) {
    if (tok.empty()) continue;
    RUBICK_CHECK_MSG(tok.find_first_not_of("0123456789") == std::string::npos,
                     "--seeds expects a comma-separated list of non-negative "
                     "integers; got '" << tok << "'");
    seeds.push_back(std::stoull(tok));
  }
  RUBICK_CHECK_MSG(!seeds.empty(), "--seeds needs at least one seed");
  return seeds;
}

}  // namespace

int main(int argc, char** argv) {
  CliFlags flags(argc, argv);
  const std::string policy_name = flags.get_string("policy", "rubick");
  const int num_jobs = flags.get_int("jobs", 406);
  const double window_h = flags.get_double("window-hours", 12.0);
  const std::string variant_name = flags.get_string("variant", "base");
  const std::uint64_t seed = flags.get_u64("seed", 1);
  const std::string seeds_csv = flags.get_string("seeds", "");
  const int parallel = flags.get_int("parallel", 1);
  const std::uint64_t oracle_seed = flags.get_u64("oracle-seed", 2025);
  const double load = flags.get_double("load", 1.0);
  const double large_frac = flags.get_double("large-fraction", 0.15);
  const bool csv = flags.get_bool("csv", false);
  const bool refinement = flags.get_bool("online-refinement", true);
  const bool size_penalty = flags.get_bool("size-dependent-penalty", false);
  const double delta = flags.get_double("reconfig-penalty", 78.0);
  const std::string trace_in = flags.get_string("trace-in", "");
  const std::string save_trace = flags.get_string("save-trace", "");
  const std::string metrics_out = flags.get_string("metrics-out", "");
  const std::string trace_out = flags.get_string("trace-out", "");
  const std::string events_out = flags.get_string("events-out", "");
  const std::string decisions_out = flags.get_string("decisions-out", "");
  const bool log_json = flags.get_bool("log-json", false);
  const int history_id = flags.get_int("job-history", -1);
  const double gate = flags.get_double("gate-threshold", 0.97);
  const bool opportunistic = flags.get_bool("opportunistic-admission", true);
  // Fault injection: absent --fault-seed means no injection at all (the
  // run is byte-identical to a build without the failure engine).
  const std::string fault_seed_str = flags.get_string("fault-seed", "");
  FaultPlanOptions fault_opts;
  fault_opts.horizon_s = hours(flags.get_double("fault-horizon-hours", 24.0));
  fault_opts.node_mtbf_hours =
      flags.get_double("node-mtbf-hours", fault_opts.node_mtbf_hours);
  fault_opts.node_outage_mean_s =
      flags.get_double("node-outage-s", fault_opts.node_outage_mean_s);
  fault_opts.gpu_transient_mtbf_hours = flags.get_double(
      "gpu-transient-mtbf-hours", fault_opts.gpu_transient_mtbf_hours);
  fault_opts.straggler_mtbf_hours =
      flags.get_double("straggler-mtbf-hours", fault_opts.straggler_mtbf_hours);
  fault_opts.straggler_mean_duration_s = flags.get_double(
      "straggler-duration-s", fault_opts.straggler_mean_duration_s);
  fault_opts.straggler_severity =
      flags.get_double("straggler-severity", fault_opts.straggler_severity);
  fault_opts.reconfig_failure_prob = flags.get_double(
      "reconfig-failure-prob", fault_opts.reconfig_failure_prob);
  FailurePolicyOptions failure_opts;
  failure_opts.max_reconfig_retries =
      flags.get_int("max-reconfig-retries", failure_opts.max_reconfig_retries);
  failure_opts.retry_backoff_base_s = flags.get_double(
      "retry-backoff-s", failure_opts.retry_backoff_base_s);
  failure_opts.retry_backoff_cap_s = flags.get_double(
      "retry-backoff-cap-s", failure_opts.retry_backoff_cap_s);
  failure_opts.crash_restore_cost_s = flags.get_double(
      "crash-restore-s", failure_opts.crash_restore_cost_s);
#ifndef NDEBUG
  const bool audit_default = true;  // on by default in Debug builds
#else
  const bool audit_default = false;
#endif
  const bool audit = flags.get_bool("audit", audit_default);
  const std::string audit_policy = flags.get_string("audit-policy", "count");
  // Event-engine selection (DESIGN.md §13): `indexed` is the production
  // engine; `legacy-scan` keeps the pre-engine full-fleet scan loop for
  // bisecting engine regressions. Both are byte-identical by contract.
  const std::string engine_name = flags.get_string("engine", "indexed");
  // Decide-phase selection (DESIGN.md §14): same contract as --engine, one
  // layer down — `indexed` serves Algorithm 1's victim searches from
  // slope-ordered heaps, `legacy-scan` keeps the original per-probe
  // full-fleet scan. Applies to the Rubick family; baselines ignore it.
  const std::string decide_name = flags.get_string("decide", "indexed");
  flags.finish();

  if (log_json) set_log_format(LogFormat::kJson);
  const bool telemetry =
      !metrics_out.empty() || !trace_out.empty() || !events_out.empty();
  if (telemetry) {
    set_telemetry_enabled(true);
    TraceRecorder::global().set_enabled(true);
  }

  ViolationPolicy on_violation = ViolationPolicy::kCount;
  if (audit_policy == "throw") on_violation = ViolationPolicy::kThrow;
  else if (audit_policy == "log") on_violation = ViolationPolicy::kLog;
  else RUBICK_CHECK_MSG(audit_policy == "count",
                        "unknown --audit-policy '" << audit_policy
                                                   << "'; try throw, log, count");

  TraceVariant variant = TraceVariant::kBase;
  if (variant_name == "bp") variant = TraceVariant::kBestPlan;
  else if (variant_name == "mt") variant = TraceVariant::kMultiTenant;
  else RUBICK_CHECK_MSG(variant_name == "base",
                        "unknown variant '" << variant_name << "'");

  const std::vector<std::uint64_t> seeds =
      seeds_csv.empty() ? std::vector<std::uint64_t>{seed}
                        : parse_seed_list(seeds_csv);

  const ClusterSpec cluster;
  const GroundTruthOracle oracle(oracle_seed);
  const TraceGenerator gen(cluster, oracle);
  TraceOptions opts;
  opts.num_jobs = num_jobs;
  opts.window_s = hours(window_h);
  opts.variant = variant;
  opts.load_scale = load;
  opts.large_model_fraction = large_frac;

  // One trace per seed, generated up front so every run's input is fixed
  // before any simulation starts. --trace-in pins the same jobs for every
  // seed (the sweep then only varies what the seed seeds elsewhere).
  std::vector<std::vector<JobSpec>> traces;
  traces.reserve(seeds.size());
  for (const std::uint64_t s : seeds) {
    if (trace_in.empty()) {
      opts.seed = s;
      traces.push_back(gen.generate(opts));
    } else {
      traces.push_back(read_trace_csv_file(trace_in));
    }
  }
  if (!save_trace.empty()) write_trace_csv_file(save_trace, traces.front());

  SimulationOptions sim_options;
  sim_options.sim.online_refinement = refinement;
  sim_options.sim.size_dependent_reconfig_cost = size_penalty;
  sim_options.sim.reconfig_penalty_s = delta;
  if (engine_name == "legacy-scan") {
    sim_options.sim.engine = SimEngine::kLegacyScan;
  } else {
    RUBICK_CHECK_MSG(engine_name == "indexed",
                     "unknown --engine '" << engine_name
                                          << "'; try indexed, legacy-scan");
  }
  sim_options.failure = failure_opts;
  const Simulator sim(cluster, oracle, sim_options.sim);
  const bool multi_tenant = variant == TraceVariant::kMultiTenant;

  // One fault plan shared by every seed of the sweep: the weather is part
  // of the experiment, not of the per-seed randomness.
  FaultPlan fault_plan;
  if (!fault_seed_str.empty()) {
    RUBICK_CHECK_MSG(
        fault_seed_str.find_first_not_of("0123456789") == std::string::npos,
        "--fault-seed expects a non-negative integer; got '" << fault_seed_str
                                                             << "'");
    fault_plan =
        FaultPlan::generate(std::stoull(fault_seed_str), fault_opts, cluster);
  }

  PolicyParams policy_params;
  if (multi_tenant) policy_params.tenant_quota_gpus["tenant-a"] = 64;
  policy_params.gate_threshold = gate;
  policy_params.opportunistic_admission = opportunistic;
  if (decide_name == "legacy-scan") {
    policy_params.decide_engine = DecideEngine::kLegacyScan;
  } else {
    RUBICK_CHECK_MSG(decide_name == "indexed",
                     "unknown --decide '" << decide_name
                                          << "'; try indexed, legacy-scan");
  }
  const PolicyFactory& factory = PolicyFactory::global();

  // The performance guarantee and curve sweeps are promises only the
  // Rubick-family policies make; structural invariants apply to every
  // policy.
  const bool rubick_family = PolicyFactory::rubick_family(policy_name);
  AuditConfig audit_config;
  audit_config.on_violation = on_violation;
  audit_config.check_guarantee = rubick_family;
  audit_config.check_curves = rubick_family;

  struct RunOutput {
    SimResult result;
    AuditReport audit;
    CacheStats cache;
  };

  // The telemetry observer follows the first seed's run only (one trace
  // track set per file); it coexists with the auditor through a
  // SimObserverList on the same seam.
  TelemetryObserver telemetry_observer;

  // Creating the display policy first also validates the name (and the
  // fault-plan / option flags via RunContext::validate) before any worker
  // starts.
  const std::string policy_display =
      factory.create(policy_name, policy_params)->name();

  // Decision provenance follows the first seed's run, like the telemetry
  // observer: the recorder hangs off that run's policy, the observer drains
  // it into JSONL lines at every simulator tick.
  ProvenanceRecorder decisions_recorder;
  ProvenanceObserver decisions_observer(&decisions_recorder, policy_display,
                                        &TraceRecorder::global());
  {
    RunContext probe;
    probe.options = &sim_options;
    if (!fault_plan.empty()) probe.fault_plan = &fault_plan;
    probe.validate(cluster);
  }

  // Independent runs fan across the pool: Simulator::run is const and each
  // run gets a fresh policy instance (and its own auditor), so runs share
  // nothing mutable.
  ThreadPool pool(parallel <= 0 ? ThreadPool::default_size() : parallel);
  std::vector<std::future<RunOutput>> futures;
  futures.reserve(seeds.size());
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    futures.push_back(pool.submit([&, i] {
      auto policy = factory.create(policy_name, policy_params);
      RunOutput out;
      SimObserverList observers;
      InvariantAuditor auditor(audit_config);
      if (audit) observers.add(&auditor);
      if (telemetry && i == 0) observers.add(&telemetry_observer);
      if (!decisions_out.empty() && i == 0) {
        observers.add(&decisions_observer);
        policy->set_provenance(&decisions_recorder);
      }
      RunContext ctx;
      ctx.options = &sim_options;
      if (!fault_plan.empty()) ctx.fault_plan = &fault_plan;
      if (!observers.empty()) ctx.observer = &observers;
      out.result = sim.run(traces[i], *policy, ctx);
      if (audit) out.audit = auditor.report();
      if (const auto* rp = dynamic_cast<const RubickPolicy*>(policy.get()))
        out.cache = rp->cache_stats();
      return out;
    }));
  }

  double sum_jct = 0.0, sum_makespan = 0.0;
  long total_violations = 0;
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    const RunOutput out = futures[i].get();  // seed order, not finish order
    const SimResult& r = out.result;
    std::cout << "trace=" << variant_name << " jobs=" << traces[i].size()
              << " seed=" << seeds[i] << "\n";
    // PR-1 scheduler internals print with every summary — no --metrics-out
    // needed. Only the per-run predictor-cache numbers go in the seed
    // block (deterministic per run); the global pool's stats are
    // process-cumulative and print once at the end.
    SchedulerInternals internals;
    internals.cache_hits = out.cache.hits;
    internals.cache_misses = out.cache.misses;
    internals.cache_inserts = out.cache.inserts;
    print_summary(std::cout, policy_display, r, &internals);
    if (audit) {
      std::cout << out.audit.summary() << "\n";
      for (const Violation& v : out.audit.violations)
        std::cout << "  " << v.to_string() << "\n";
      total_violations += out.audit.total_violations;
    }
    sum_jct += r.avg_jct_s();
    sum_makespan += r.makespan_s;

    if (csv) {
      std::cout << "\n";
      write_results_csv(std::cout, r);
    }
    if (history_id >= 0) {
      std::cout << "\n";
      for (const auto& j : r.jobs)
        if (j.spec.id == history_id) print_job_history(std::cout, j);
    }
    if (i + 1 < seeds.size()) std::cout << "\n";
  }

  if (seeds.size() > 1) {
    const double n = static_cast<double>(seeds.size());
    std::cout << "\nsweep: seeds=" << seeds.size() << " threads="
              << pool.size() << " mean_avg_jct_s=" << sum_jct / n
              << " mean_makespan_s=" << sum_makespan / n << "\n";
  }

  {
    // Curve-engine pool occupancy, whole process (all seeds).
    const ThreadPoolStats pool_stats = ThreadPool::global().stats();
    SchedulerInternals pool_internals;
    pool_internals.pool_tasks = pool_stats.tasks_executed;
    pool_internals.pool_parallel_for_calls = pool_stats.parallel_for_calls;
    pool_internals.pool_busy_s = pool_stats.busy_s;
    pool_internals.pool_threads = ThreadPool::global().size();
    print_pool_stats(std::cout, pool_internals);
  }

  if (!metrics_out.empty()) {
    std::ofstream os(metrics_out);
    RUBICK_CHECK_MSG(os.good(), "cannot open " << metrics_out);
    MetricsRegistry::global().write_json(os);
  }
  if (!trace_out.empty()) {
    std::ofstream os(trace_out);
    RUBICK_CHECK_MSG(os.good(), "cannot open " << trace_out);
    TraceRecorder::global().write_chrome_trace(os);
  }
  if (!events_out.empty()) {
    std::ofstream os(events_out);
    RUBICK_CHECK_MSG(os.good(), "cannot open " << events_out);
    telemetry_observer.write_events_jsonl(os);
  }
  if (!decisions_out.empty()) {
    std::ofstream os(decisions_out);
    RUBICK_CHECK_MSG(os.good(), "cannot open " << decisions_out);
    decisions_observer.write_jsonl(os);
  }
  return total_violations > 0 ? 1 : 0;
}
