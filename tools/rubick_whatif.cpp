// rubick_whatif — the execution planner as a standalone tool: given a model
// and a resource allocation, print every feasible execution plan ranked by
// the fitted performance model, with memory footprints and the oracle's
// measured throughput for comparison.
//
//   rubick_whatif --model=LLaMA-2-7B --gpus=8 --cpus=32 [--batch=16]
//                 [--gpus-per-node=8] [--top=15]
#include <algorithm>
#include <iostream>

#include "cluster/cluster.h"
#include "cluster/placement.h"
#include "common/cli.h"
#include "common/error.h"
#include "common/table.h"
#include "common/units.h"
#include "core/plan_selector.h"
#include "core/predictor.h"
#include "model/model_spec.h"
#include "model/model_zoo.h"
#include "perf/analytic.h"
#include "perf/oracle.h"
#include "perf/perf_store.h"
#include "perf/profiler.h"
#include "plan/memory_estimator.h"

using namespace rubick;

int main(int argc, char** argv) {
  CliFlags flags(argc, argv);
  const std::string model_name = flags.get_string("model", "GPT-2");
  const int gpus = flags.get_int("gpus", 8);
  const int cpus = flags.get_int("cpus", 4 * gpus);
  const int gpus_per_node = flags.get_int("gpus-per-node", 8);
  const int top = flags.get_int("top", 15);
  const std::uint64_t oracle_seed = flags.get_u64("oracle-seed", 2025);
  const ModelSpec& model = find_model(model_name);
  const int batch = flags.get_int("batch", model.default_global_batch);
  flags.finish();

  const ClusterSpec cluster;
  const GroundTruthOracle oracle(oracle_seed);
  const Profiler profiler(oracle, cluster);
  PerfModelStore store;
  const auto fit = profiler.profile_and_fit(model, batch);
  store.add(fit.model);

  MemoryEstimator estimator;
  BestPlanPredictor predictor(cluster, store, estimator);
  FullPlanSelector all_plans;

  // Build a canonical placement with the requested per-node shape.
  Placement placement;
  int remaining_g = gpus, remaining_c = cpus, node = 0;
  while (remaining_g > 0) {
    const int g = std::min(remaining_g, gpus_per_node);
    const int c = std::min(remaining_c, cluster.node.cpus);
    placement.add({node++, g, c, 0});
    remaining_g -= g;
    remaining_c -= c;
  }

  const auto& ranked =
      *predictor.ranked_for_placement(model, batch, all_plans, placement);
  RUBICK_CHECK_MSG(!ranked.empty(), "no feasible plan for "
                                        << model.to_string() << " on " << gpus
                                        << " GPUs");

  std::cout << "Feasible execution plans for " << model.to_string() << " on "
            << gpus << " GPUs / " << cpus << " CPUs (" << placement.num_nodes()
            << " node(s), b=" << batch << ")\n"
            << "fitted from " << fit.samples.size()
            << " profiled runs, RMSLE " << TextTable::fmt(fit.model.fit_error(), 3)
            << "\n\n";

  TextTable table({"#", "plan", "predicted/s", "measured/s", "GPU mem (GB)",
                   "host mem (GB)"});
  const PerfContext ctx = make_perf_context(cluster, placement);
  int rank = 1;
  for (const auto& pred : ranked) {
    if (rank > top) break;
    const double measured =
        oracle.measure_throughput(model, pred.plan, batch, ctx);
    table.add_row(
        {std::to_string(rank++), pred.plan.display_name(),
         TextTable::fmt(pred.throughput), TextTable::fmt(measured),
         TextTable::fmt(
             to_gigabytes(estimator.gpu_bytes(model, pred.plan, batch)), 1),
         TextTable::fmt(to_gigabytes(estimator.host_bytes(model, pred.plan)),
                        1)});
  }
  table.print(std::cout);
  return 0;
}
