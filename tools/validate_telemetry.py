#!/usr/bin/env python3
"""Validate the telemetry artifacts written by rubick_simulate.

Checks three outputs (each optional; pass the ones you have):

  --metrics FILE   JSON from --metrics-out: counters/gauges/histograms maps,
                   histogram bucket counts summing to the histogram count,
                   terminal "+inf" bucket.
  --trace FILE     Chrome trace-event JSON from --trace-out: every event has
                   name/ph/pid/tid, complete ('X') events carry ts and a
                   non-negative dur, and the 'X' spans on each (pid, tid)
                   track nest properly (no partial overlap). Optional
                   thresholds: --min-decision-spans N requires at least N
                   scheduler decision spans, --min-job-tracks N requires at
                   least N per-job tracks in the simulation process.
  --events FILE    JSONL from --events-out: one JSON object per line, each
                   with "type" and "t_s", times non-decreasing.
  --decisions FILE decision-log JSONL from --decisions-out: a header line
                   with a schema_version, round seqs strictly increasing,
                   round times non-decreasing, job ids unique per round,
                   trades referencing jobs present in their round, known
                   decision kinds, digests rendered as "0x..." strings.
                   When --trace is also given, every round seq must appear
                   as a flow id in the trace (the Perfetto link between a
                   decision span and the round it produced).

Exits 0 when everything passes, 1 with one line per failure otherwise.
Used by ctest (telemetry_validate) and the CI telemetry smoke job.
"""

import argparse
import json
import sys

SCHEDULER_PID = 1
SIM_PID = 2
DECISION_SPAN_NAME = "RubickPolicy::schedule"
DECISION_KINDS = {
    "queue", "admit", "keep", "grow", "shrink", "preempt", "replan",
}

errors = []


def fail(msg):
    errors.append(msg)


def validate_metrics(path):
    with open(path, encoding="utf-8") as f:
        try:
            doc = json.load(f)
        except json.JSONDecodeError as exc:
            fail(f"{path}: not valid JSON: {exc}")
            return
    for section in ("counters", "gauges", "histograms"):
        if not isinstance(doc.get(section), dict):
            fail(f"{path}: missing object section {section!r}")
    for name, value in doc.get("counters", {}).items():
        if not isinstance(value, int) or value < 0:
            fail(f"{path}: counter {name!r} is not a non-negative integer")
    for name, value in doc.get("gauges", {}).items():
        if not isinstance(value, (int, float)) and value is not None:
            fail(f"{path}: gauge {name!r} is not numeric")
    for name, hist in doc.get("histograms", {}).items():
        if not isinstance(hist, dict):
            fail(f"{path}: histogram {name!r} is not an object")
            continue
        buckets = hist.get("buckets")
        if not isinstance(buckets, list) or not buckets:
            fail(f"{path}: histogram {name!r} has no buckets")
            continue
        if buckets[-1].get("le") != "+inf":
            fail(f"{path}: histogram {name!r} last bucket is not '+inf'")
        total = sum(b.get("count", 0) for b in buckets)
        if total != hist.get("count"):
            fail(
                f"{path}: histogram {name!r} bucket counts sum to {total}, "
                f"count says {hist.get('count')}"
            )


def eps(value):
    """Comparison slack for timestamps: ts values are serialized with 15
    significant digits, so two renderings of the same boundary can differ
    by ~1e-15 of their magnitude. Scale the tolerance accordingly (with a
    floor for small values)."""
    return max(1e-9, 1e-12 * abs(value))


def check_nesting(path, track, spans):
    """'X' spans on one track must nest like a call stack: a span starting
    inside another must also end inside it."""
    spans = sorted(spans, key=lambda s: (s[0], -s[1]))
    stack = []  # end timestamps of open spans
    for begin, dur, name in spans:
        end = begin + dur
        while stack and begin >= stack[-1] - eps(stack[-1]):
            stack.pop()
        if stack and end > stack[-1] + eps(stack[-1]):
            fail(
                f"{path}: track {track} span {name!r} "
                f"[{begin}, {end}] partially overlaps an enclosing span "
                f"ending at {stack[-1]}"
            )
            return
        stack.append(end)


def validate_trace(path, min_decision_spans, min_job_tracks):
    with open(path, encoding="utf-8") as f:
        try:
            doc = json.load(f)
        except json.JSONDecodeError as exc:
            fail(f"{path}: not valid JSON: {exc}")
            return
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        fail(f"{path}: missing traceEvents array")
        return
    tracks = {}
    decision_spans = 0
    job_tracks = set()
    flow_ids = set()
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            fail(f"{path}: traceEvents[{i}] is not an object")
            continue
        for key in ("name", "ph", "pid", "tid"):
            if key not in ev:
                fail(f"{path}: traceEvents[{i}] missing {key!r}")
        ph = ev.get("ph")
        if ph not in ("X", "M", "C", "i", "s", "t", "f"):
            fail(f"{path}: traceEvents[{i}] unknown ph {ph!r}")
        if ph in ("s", "t", "f"):
            flow_id = ev.get("id")
            if not isinstance(flow_id, int):
                fail(f"{path}: traceEvents[{i}] flow event without int 'id'")
                continue
            if ph == "f" and ev.get("bp") != "e":
                fail(f"{path}: traceEvents[{i}] flow end without 'bp':'e'")
            flow_ids.add(flow_id)
        if ph == "X":
            ts, dur = ev.get("ts"), ev.get("dur")
            if not isinstance(ts, (int, float)):
                fail(f"{path}: traceEvents[{i}] 'X' without numeric ts")
                continue
            if not isinstance(dur, (int, float)) or dur < 0:
                fail(f"{path}: traceEvents[{i}] 'X' with bad dur {dur!r}")
                continue
            key = (ev.get("pid"), ev.get("tid"))
            tracks.setdefault(key, []).append((ts, dur, ev.get("name")))
            if (
                ev.get("pid") == SCHEDULER_PID
                and ev.get("name") == DECISION_SPAN_NAME
            ):
                decision_spans += 1
            if ev.get("pid") == SIM_PID:
                job_tracks.add(ev.get("tid"))
    for track, spans in sorted(tracks.items()):
        check_nesting(path, track, spans)
    if decision_spans < min_decision_spans:
        fail(
            f"{path}: {decision_spans} scheduler decision spans, "
            f"expected >= {min_decision_spans}"
        )
    if len(job_tracks) < min_job_tracks:
        fail(
            f"{path}: {len(job_tracks)} per-job tracks in the simulation "
            f"process, expected >= {min_job_tracks}"
        )
    return flow_ids


def validate_events(path):
    last_t_s = float("-inf")
    with open(path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, start=1):
            line = line.strip()
            if not line:
                fail(f"{path}:{lineno}: blank line")
                continue
            try:
                ev = json.loads(line)
            except json.JSONDecodeError as exc:
                fail(f"{path}:{lineno}: not valid JSON: {exc}")
                continue
            if not isinstance(ev.get("type"), str):
                fail(f"{path}:{lineno}: missing string 'type'")
            t_s = ev.get("t_s")
            if not isinstance(t_s, (int, float)):
                fail(f"{path}:{lineno}: missing numeric 't_s'")
                continue
            if t_s < last_t_s:
                fail(
                    f"{path}:{lineno}: t_s {t_s} goes backwards "
                    f"(previous {last_t_s})"
                )
            last_t_s = t_s


def validate_decisions(path, trace_flow_ids):
    """Structural checks on the decision log written by --decisions-out."""
    header_seen = False
    last_seq = 0
    last_t_s = float("-inf")
    round_seqs = []
    with open(path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, start=1):
            line = line.strip()
            if not line:
                fail(f"{path}:{lineno}: blank line")
                continue
            try:
                rec = json.loads(line)
            except json.JSONDecodeError as exc:
                fail(f"{path}:{lineno}: not valid JSON: {exc}")
                continue
            rtype = rec.get("type")
            if lineno == 1:
                if rtype != "header":
                    fail(f"{path}:1: first line is not a header record")
                elif not isinstance(rec.get("schema_version"), int):
                    fail(f"{path}:1: header without integer schema_version")
                else:
                    header_seen = True
                continue
            if rtype == "fault":
                t_s = rec.get("t_s")
                if not isinstance(t_s, (int, float)):
                    fail(f"{path}:{lineno}: fault without numeric 't_s'")
                continue
            if rtype != "round":
                continue  # run_end and future record types
            seq = rec.get("seq")
            if not isinstance(seq, int) or seq <= last_seq:
                fail(
                    f"{path}:{lineno}: round seq {seq!r} not strictly "
                    f"increasing (previous {last_seq})"
                )
            else:
                last_seq = seq
                round_seqs.append(seq)
            t_s = rec.get("t_s")
            if not isinstance(t_s, (int, float)):
                fail(f"{path}:{lineno}: round without numeric 't_s'")
            elif t_s < last_t_s:
                fail(
                    f"{path}:{lineno}: round t_s {t_s} goes backwards "
                    f"(previous {last_t_s})"
                )
            else:
                last_t_s = t_s
            digest = rec.get("digest")
            if not (isinstance(digest, str) and digest.startswith("0x")):
                fail(f"{path}:{lineno}: digest {digest!r} is not a hex string")
            job_ids = set()
            for d in rec.get("jobs", []):
                job = d.get("job")
                if job in job_ids:
                    fail(f"{path}:{lineno}: duplicate decision for job {job}")
                job_ids.add(job)
                if d.get("kind") not in DECISION_KINDS:
                    fail(
                        f"{path}:{lineno}: job {job} has unknown kind "
                        f"{d.get('kind')!r}"
                    )
            for t in rec.get("trades", []):
                for side in ("claimant", "victim"):
                    if t.get(side) not in job_ids:
                        fail(
                            f"{path}:{lineno}: trade {side} {t.get(side)!r} "
                            f"is not a job decided in this round"
                        )
    if not header_seen:
        fail(f"{path}: no header record")
    if trace_flow_ids is not None:
        missing = [s for s in round_seqs if s not in trace_flow_ids]
        if missing:
            fail(
                f"{path}: {len(missing)} round seq(s) have no matching flow "
                f"id in the trace (first: {missing[0]})"
            )


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--metrics", help="metrics JSON (--metrics-out)")
    parser.add_argument("--trace", help="Chrome trace JSON (--trace-out)")
    parser.add_argument("--events", help="run events JSONL (--events-out)")
    parser.add_argument("--decisions", help="decision JSONL (--decisions-out)")
    parser.add_argument("--min-decision-spans", type=int, default=0)
    parser.add_argument("--min-job-tracks", type=int, default=0)
    args = parser.parse_args()
    if not (args.metrics or args.trace or args.events or args.decisions):
        parser.error(
            "nothing to validate: pass --metrics/--trace/--events/--decisions"
        )

    flow_ids = None
    if args.metrics:
        validate_metrics(args.metrics)
    if args.trace:
        flow_ids = validate_trace(
            args.trace, args.min_decision_spans, args.min_job_tracks
        )
    if args.events:
        validate_events(args.events)
    if args.decisions:
        validate_decisions(args.decisions, flow_ids)

    if errors:
        for msg in errors:
            print(f"validate_telemetry: {msg}", file=sys.stderr)
        print(f"validate_telemetry: {len(errors)} problem(s)", file=sys.stderr)
        return 1
    print("validate_telemetry: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
