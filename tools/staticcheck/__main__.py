#!/usr/bin/env python3
"""rubick_staticcheck — compile-commands-driven static analysis for Rubick.

Five passes over the tree (see DESIGN.md §11):

  layering     module DAG from tools/staticcheck/layers.toml
  headers      include guards, no-.cc-includes, IWYU-lite unused/missing
  units        suffix conventions + unit-flow (assignment/arith/call-site)
  conventions  determinism, logging discipline, CLI flag spelling
  locks        scoped-guard-only mutexes, `guarded by` annotations

Run from the repo root (or pass --repo):

  python3 tools/staticcheck [src tools bench ...] \
      [-p build/compile_commands.json] [--json report.json]

Exit code 0 when clean, 1 when any finding is reported, 2 on usage errors.
Suppressions use in-source pragmas, never path allowlists:

  // staticcheck:allow(<rule>[,<rule>...]) -- <reason>        one line
  // staticcheck:allow-file(<rule>) -- <reason>               whole file

The NOLINT budget (clang-tidy suppressions tree-wide) is enforced here too
so one tool owns every suppression count.
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys

import model
import pass_conventions
import pass_headers
import pass_layering
import pass_locks
import pass_units
import report

PASSES = ("layering", "headers", "units", "conventions", "locks")
DEFAULT_NOLINT_BUDGET = 10


def main(argv) -> int:
    parser = argparse.ArgumentParser(
        prog="rubick_staticcheck",
        description=__doc__.splitlines()[0])
    parser.add_argument("roots", nargs="*",
                        default=["src", "tools", "bench", "tests",
                                 "examples"],
                        help="directories to analyze (default: src tools "
                             "bench tests examples)")
    parser.add_argument("--repo", type=pathlib.Path,
                        default=pathlib.Path(__file__).resolve()
                        .parent.parent.parent,
                        help="repository root (default: two levels up)")
    parser.add_argument("-p", "--compile-commands", type=pathlib.Path,
                        default=None,
                        help="compile_commands.json (default: "
                             "<repo>/build/compile_commands.json when "
                             "present; the tool degrades gracefully "
                             "without it)")
    parser.add_argument("--layers", type=pathlib.Path, default=None,
                        help="layer DAG (default: layers.toml next to this "
                             "tool)")
    parser.add_argument("--json", type=pathlib.Path, default=None,
                        help="write a machine-readable JSON report here")
    parser.add_argument("--passes", default=",".join(PASSES),
                        help="comma-separated subset of passes to run "
                             f"(default: all of {','.join(PASSES)})")
    parser.add_argument("--nolint-budget", type=int,
                        default=DEFAULT_NOLINT_BUDGET,
                        help="max NOLINT sites tree-wide (default: "
                             f"{DEFAULT_NOLINT_BUDGET})")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in sorted(model.RULES):
            print(rule)
        return 0

    selected = [p.strip() for p in args.passes.split(",") if p.strip()]
    unknown = set(selected) - set(PASSES)
    if unknown:
        print(f"unknown pass(es): {', '.join(sorted(unknown))}",
              file=sys.stderr)
        return 2

    repo = args.repo.resolve()
    compile_commands = args.compile_commands
    if compile_commands is None:
        default_cc = repo / "build" / "compile_commands.json"
        compile_commands = default_cc if default_cc.exists() else None

    project = model.Project(repo, args.roots,
                            compile_commands=compile_commands)
    layers_path = args.layers or \
        pathlib.Path(__file__).resolve().parent / "layers.toml"

    findings = []
    for sf in project.files.values():
        findings.extend(sf.pragma_findings)
    if "layering" in selected:
        config = pass_layering.LayerConfig(layers_path)
        findings.extend(pass_layering.run(project, config))
    if "headers" in selected:
        findings.extend(pass_headers.run(project))
    if "units" in selected:
        findings.extend(pass_units.run(project))
    if "conventions" in selected:
        findings.extend(pass_conventions.run(project))
    if "locks" in selected:
        findings.extend(pass_locks.run(project))

    nolint, nolint_sites = _count_nolint(project)
    if nolint > args.nolint_budget:
        findings.append(model.Finding(
            "nolint-budget", "(tree)", 0,
            f"{nolint} NOLINT site(s) exceed the tree-wide budget of "
            f"{args.nolint_budget}: " + ", ".join(nolint_sites[:20])))

    pragmas = []
    suppressed = 0
    for rel in sorted(project.files):
        sf = project.files[rel]
        for line, rules in sf.pragma_sites:
            suppressed += 1
            pragmas.append({"file": rel, "line": line,
                            "rules": sorted(rules)})

    findings = report.dedupe(findings)
    stats = {"files": len(project.files), "suppressed": suppressed,
             "nolint": nolint, "nolint_budget": args.nolint_budget,
             "pragmas": pragmas}
    print(report.render_text(findings, stats))
    if args.json:
        report.write_json(args.json, findings, stats)
    return 1 if findings else 0


def _count_nolint(project):
    count = 0
    sites = []
    pat = re.compile(r"\bNOLINT(NEXTLINE|BEGIN|END)?\b")
    for rel in sorted(project.files):
        sf = project.files[rel]
        for i, comment in enumerate(sf.comment_lines, start=1):
            m = pat.search(comment)
            if m is None:
                continue
            if m.group(1) == "END":
                continue  # the BEGIN of the pair was already counted
            count += 1
            sites.append(f"{rel}:{i}")
    return count, sites


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
