"""Lock-discipline pass.

Findings:
  lock-guard — a bare `.lock()` / `.unlock()` / `.try_lock()` on a declared
               std::mutex (any flavor). Mutexes are acquired through scoped
               guards (std::lock_guard / unique_lock / scoped_lock /
               shared_lock) so no exit path can leak a held lock.
  guarded-by — a field annotated `// guarded by <mutex>` is referenced in a
               file that never acquires that mutex. Granularity is the
               translation unit: a TU that acquires the mutex anywhere is
               trusted for all its touches (the auditor cannot see
               call-graph paths, and reviews happen per-TU anyway).
"""

from __future__ import annotations

import re
from typing import Dict, List, NamedTuple, Set

from model import Finding, Project

MUTEX_DECL_RE = re.compile(
    r"\b(?:mutable\s+)?(?:static\s+)?std::(?:recursive_|shared_|timed_|"
    r"recursive_timed_)?mutex\s+([A-Za-z_]\w*)\s*[;={]")

BARE_LOCK_RE = re.compile(r"\b([A-Za-z_]\w*)\s*(?:\.|->)\s*"
                          r"(lock|unlock|try_lock)\s*\(")

GUARD_TYPES = r"(?:std::\s*)?(?:lock_guard|unique_lock|scoped_lock|shared_lock)"

GUARDED_BY_RE = re.compile(r"//.*guarded\s+by\s+([A-Za-z_][\w.]*)")

FIELD_DECL_RE = re.compile(
    r"\b([A-Za-z_]\w*)\s*(?:=[^=][^;]*)?;")


class GuardedField(NamedTuple):
    field: str
    mutex: str
    decl_rel: str
    decl_line: int


def run(project: Project) -> List[Finding]:
    findings: List[Finding] = []
    mutexes: Set[str] = set()
    for sf in project.files.values():
        for line in sf.code_lines:
            for m in MUTEX_DECL_RE.finditer(line):
                mutexes.add(m.group(1))

    for rel, sf in sorted(project.files.items()):
        for i, code in enumerate(sf.code_lines, start=1):
            for m in BARE_LOCK_RE.finditer(code):
                name, method = m.group(1), m.group(2)
                if name not in mutexes:
                    continue
                if sf.allows("lock-guard", i):
                    continue
                findings.append(Finding(
                    "lock-guard", rel, i,
                    f"bare {name}.{method}(): acquire std::mutex members "
                    "through a scoped guard (std::lock_guard / "
                    "std::unique_lock / std::scoped_lock)"))

    findings.extend(_check_guarded_by(project))
    return findings


def _collect_guarded_fields(project: Project) -> List[GuardedField]:
    fields: List[GuardedField] = []
    for rel, sf in project.files.items():
        for i, comment in enumerate(sf.comment_lines, start=1):
            m = GUARDED_BY_RE.search(comment)
            if not m:
                continue
            mutex = m.group(1).split(".")[-1]
            # The annotated declaration is on the same line, or the next
            # declaration line when the comment stands alone.
            for j in (i, i + 1, i + 2):
                if j > len(sf.code_lines):
                    break
                code = sf.code_lines[j - 1]
                dm = FIELD_DECL_RE.search(code)
                if dm and not code.strip().startswith("//"):
                    fields.append(GuardedField(dm.group(1), mutex, rel, j))
                    break
    return fields


def _acquires(code: str, mutex: str) -> bool:
    pat = re.compile(
        GUARD_TYPES + r"\s*(?:<[^>]*>)?\s*[A-Za-z_]\w*\s*[({][^()]*\b"
        + re.escape(mutex) + r"\b")
    return bool(pat.search(code))


def _check_guarded_by(project: Project) -> List[Finding]:
    findings: List[Finding] = []
    fields = _collect_guarded_fields(project)
    for gf in fields:
        scope = project.transitive_includers(gf.decl_rel) | {gf.decl_rel}
        # A touch is the field name not followed by `(` (that is a method
        # call on a same-named accessor). Fields without the trailing-
        # underscore member convention additionally need qualified access
        # (`x.field` / `x->field`): a bare occurrence is more likely an
        # unrelated local.
        if gf.field.endswith("_"):
            pat = re.compile(r"\b%s\b(?!\s*\()" % re.escape(gf.field))
        else:
            pat = re.compile(r"(?:\.|->)\s*%s\b(?!\s*\()"
                             % re.escape(gf.field))
        for rel in sorted(scope):
            sf = project.files.get(rel)
            if sf is None:
                continue
            acquires = _acquires(sf.code, gf.mutex)
            for i, code in enumerate(sf.code_lines, start=1):
                if rel == gf.decl_rel and abs(i - gf.decl_line) <= 1:
                    continue  # the declaration itself
                if not pat.search(code):
                    continue
                if acquires:
                    break  # the TU holds the lock somewhere: trusted
                if sf.allows("guarded-by", i):
                    continue
                findings.append(Finding(
                    "guarded-by", rel, i,
                    f"'{gf.field}' is documented `guarded by {gf.mutex}` "
                    f"({gf.decl_rel}:{gf.decl_line}) but this TU never "
                    f"acquires {gf.mutex}"))
                break  # one finding per file keeps reports readable
    return findings
