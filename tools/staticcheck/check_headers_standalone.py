#!/usr/bin/env python3
"""Verifies every public header under src/ compiles standalone.

A header that compiles only after its includers happen to pull in the right
dependencies has a missing direct include the IWYU-lite pass may not see
(std headers, templates). This check is the ground truth: each header is
compiled alone (`-fsyntax-only`) in a TU of its own.

Usage: python3 tools/staticcheck/check_headers_standalone.py \
           [--repo DIR] [-p build/compile_commands.json] [--jobs N]

Exit 0 when every header compiles, 1 otherwise.
"""

from __future__ import annotations

import argparse
import concurrent.futures
import json
import os
import pathlib
import re
import shlex
import subprocess
import sys
import tempfile


def compiler_and_flags(repo: pathlib.Path,
                       compile_commands: pathlib.Path | None):
    compiler = None
    std = "-std=c++20"
    includes = [f"-I{repo / 'src'}"]
    if compile_commands and compile_commands.exists():
        try:
            entries = json.loads(compile_commands.read_text())
        except (OSError, ValueError):
            entries = []
        for entry in entries:
            argv = entry.get("arguments") or \
                shlex.split(entry.get("command", ""))
            if not argv:
                continue
            compiler = compiler or argv[0]
            for arg in argv:
                if arg.startswith("-std="):
                    std = arg
            break
    if compiler is None:
        compiler = os.environ.get("CXX", "c++")
    return compiler, [std] + includes


def main(argv) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--repo", type=pathlib.Path,
                        default=pathlib.Path(__file__).resolve()
                        .parent.parent.parent)
    parser.add_argument("-p", "--compile-commands", type=pathlib.Path,
                        default=None)
    parser.add_argument("--jobs", type=int, default=os.cpu_count() or 4)
    args = parser.parse_args(argv)
    repo = args.repo.resolve()
    compile_commands = args.compile_commands or \
        repo / "build" / "compile_commands.json"
    compiler, flags = compiler_and_flags(repo, compile_commands)

    headers = sorted((repo / "src").rglob("*.h"))
    failures = []

    def check(header: pathlib.Path):
        rel = header.relative_to(repo / "src").as_posix()
        with tempfile.NamedTemporaryFile(
                mode="w", suffix=".cc", delete=False) as tu:
            tu.write(f'#include "{rel}"\n')
            tu_path = tu.name
        try:
            proc = subprocess.run(
                [compiler, "-fsyntax-only", *flags, tu_path],
                capture_output=True, text=True)
            return rel, proc.returncode, proc.stderr
        finally:
            os.unlink(tu_path)

    with concurrent.futures.ThreadPoolExecutor(args.jobs) as pool:
        for rel, code, err in pool.map(check, headers):
            if code != 0:
                failures.append(rel)
                first = "\n".join(err.splitlines()[:6])
                print(f"FAIL {rel}\n{first}", file=sys.stderr)

    print(f"headers-standalone: {len(headers)} header(s), "
          f"{len(failures)} failure(s) [{compiler}]")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
