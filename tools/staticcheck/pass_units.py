"""Units pass: suffix conventions plus unit-flow checking.

Findings:
  units-suffix — an identifier holding a time/memory/bandwidth quantity
                 without a unit suffix (the old convention-linter rule 1).
  units-flow   — arithmetic, comparison, assignment, or a call argument
                 that mixes units without an explicit conversion:
                 `x_s = y_hours`, `a_bytes + b_gb`, `f(x_hours)` where the
                 parameter is `window_s`. Multiplication/division are
                 exempt (they legitimately change units).

Conversions go through common/units.h (`hours()`, `to_hours()`,
`gigabytes()`, ...); a suffixed name immediately followed by `(` is a call,
not a quantity, so conversion helpers never trip the pass.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional

from model import Finding, Project

# suffix -> (dimension, canonical description)
UNITS: Dict[str, str] = {
    "_s": "time", "_ms": "time", "_us": "time", "_ns": "time",
    "_hours": "time", "_minutes": "time",
    "_bytes": "memory", "_gb": "memory", "_mb": "memory", "_kb": "memory",
    "_bps": "bandwidth", "_gbps": "bandwidth",
}
SUFFIX_ALT = "|".join(s[1:] for s in UNITS)
# A unit-suffixed value: identifier or member chain ending in a suffix.
QTY_RE = r"(?:[A-Za-z_]\w*(?:\.|->))*[A-Za-z_]\w*_(?:%s)\b" % SUFFIX_ALT

# qty OP qty for unit-sensitive operators. `*` and `/` excluded.
FLOW_RE = re.compile(
    r"(?P<lhs>%s)\s*(?P<op>\+(?!\+)|-(?![->])|<=|>=|==|!=|<(?!<)|>(?!>)|"
    r"\+=|-=|=(?![=]))\s*(?P<rhs>%s)(?!\s*\()" % (QTY_RE, QTY_RE))

CALL_RE = re.compile(r"\b([A-Za-z_]\w*)\s*\(")

# Old rule 1: declared identifiers whose stem names a quantity must carry a
# suffix.
UNIT_STEMS = {
    "time": ("_s", "_hours", "_ms"),
    "duration": ("_s",),
    "delay": ("_s",),
    "latency": ("_s",),
    "timeout": ("_s",),
    "interval": ("_s",),
    "bandwidth": ("_bps",),
    "memory": ("_bytes", "_gb"),
}
UNIT_WORD_ALLOW = {
    "timeline", "runtime", "lifetime", "timestamp", "times", "timed",
    "memory_estimator", "memory_budget", "memoryestimator",
    "in_memory", "memory_aware",
}
DECL_RE = re.compile(
    r"\b(?:double|float|int|long|std::uint64_t|uint64_t|std::int64_t|"
    r"int64_t|std::size_t|size_t|auto)\s+(?:[*&]\s*)?([a-z][a-z0-9_]*)\s*"
    r"(?:=|;|,|\)|\{)")


def suffix_of(name: str) -> Optional[str]:
    base = name.rsplit(".", 1)[-1].rsplit("->", 1)[-1]
    m = re.search(r"_(%s)$" % SUFFIX_ALT, base)
    return "_" + m.group(1) if m else None


def run(project: Project) -> List[Finding]:
    findings: List[Finding] = []
    for rel, sf in sorted(project.files.items()):
        for i, line in enumerate(sf.code_lines, start=1):
            code = line
            if not code.strip():
                continue
            _check_flow(rel, sf, i, code, findings)
            _check_calls(project, rel, sf, i, code, findings)
            if rel.startswith("src/"):
                _check_decl_suffix(rel, sf, i, code, findings)
    return findings


def _check_flow(rel, sf, lineno, code, findings) -> None:
    for m in FLOW_RE.finditer(code):
        lhs, rhs, op = m.group("lhs"), m.group("rhs"), m.group("op")
        ls, rs = suffix_of(lhs), suffix_of(rhs)
        if ls is None or rs is None or ls == rs:
            continue
        # A multiplied/divided operand is a computed value with different
        # units (`begin_s * 1e6` is microseconds): conversion, not mixing.
        if re.match(r"\s*[*/]", code[m.end():]):
            continue
        if re.search(r"[*/]\s*$", code[: m.start()]):
            continue
        if sf.allows("units-flow", lineno):
            continue
        ldim, rdim = UNITS[ls], UNITS[rs]
        if ldim == rdim:
            what = f"mixes {ldim} units {ls} and {rs}"
        else:
            what = f"mixes dimensions ({ldim} {ls} vs {rdim} {rs})"
        findings.append(Finding(
            "units-flow", rel, lineno,
            f"`{lhs} {op} {rhs}` {what}; convert explicitly via "
            "common/units.h"))


def _check_calls(project, rel, sf, lineno, code, findings) -> None:
    for m in CALL_RE.finditer(code):
        fn = m.group(1)
        sigs = project.signatures.get(fn)
        if not sigs:
            continue
        args = _call_args(code, m.end() - 1)
        if args is None:
            continue
        for pos, arg in enumerate(args):
            arg = arg.strip()
            if not re.fullmatch(QTY_RE, arg):
                continue
            asuf = suffix_of(arg)
            if asuf is None:
                continue
            # The parameter suffix must be consistent across every known
            # signature of this name at this position, else skip.
            psufs = set()
            for sig in sigs:
                if pos < len(sig):
                    psufs.add(suffix_of(sig[pos]))
            if len(psufs) != 1:
                continue
            psuf = psufs.pop()
            if psuf is None or psuf == asuf:
                continue
            if sf.allows("units-flow", lineno):
                continue
            pname = next(sig[pos] for sig in sigs if pos < len(sig))
            findings.append(Finding(
                "units-flow", rel, lineno,
                f"passing `{arg}` ({asuf}) to parameter `{pname}` ({psuf}) "
                f"of {fn}(); convert explicitly via common/units.h"))


def _call_args(code: str, open_paren: int) -> Optional[List[str]]:
    depth = 0
    for j in range(open_paren, len(code)):
        ch = code[j]
        if ch == "(":
            depth += 1
        elif ch == ")":
            depth -= 1
            if depth == 0:
                inner = code[open_paren + 1:j]
                from model import split_top_level
                return split_top_level(inner)
    return None  # spans lines; skip


def _check_decl_suffix(rel, sf, lineno, code, findings) -> None:
    for match in DECL_RE.finditer(code):
        name = match.group(1)
        if name in UNIT_WORD_ALLOW:
            continue
        if re.match(r"\s*=\s*\[", code[match.end(1):]):
            continue  # lambda: names an action, not a quantity
        for stem, suffixes in UNIT_STEMS.items():
            if stem not in name:
                continue
            if not (name == stem or name.endswith(stem)):
                continue
            if name.endswith(suffixes):
                continue
            if sf.allows("units-suffix", lineno):
                break
            findings.append(Finding(
                "units-suffix", rel, lineno,
                f"identifier '{name}' holds a {stem} quantity but lacks a "
                f"unit suffix ({' or '.join(suffixes)}); see common/units.h"))
            break
