"""Source model for rubick_staticcheck.

Loads the tree (optionally guided by compile_commands.json) into a
`Project`: per-file lexed views (code with comments/strings blanked,
comment text preserved separately), the include graph, the module mapping,
suppression pragmas, and the symbol/signature indexes the passes consume.

Zero third-party dependencies; pure stdlib.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
import re
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

SOURCE_SUFFIXES = {".h", ".hpp", ".cc", ".cpp"}
HEADER_SUFFIXES = {".h", ".hpp"}

# Rule identifiers known to the framework; pragmas naming anything else are
# themselves findings (pragma-syntax).
RULES = {
    "layering",
    "header-guard",
    "header-include-cc",
    "unused-include",
    "missing-include",
    "units-suffix",
    "units-flow",
    "determinism",
    "logging",
    "cli-flags",
    "lock-guard",
    "guarded-by",
    "nolint-budget",
    "pragma-syntax",
}

# `// staticcheck:allow(rule[,rule...]) -- reason` suppresses the named
# rules on the pragma's own line, or on the next line when the pragma is the
# only thing on its line.  `allow-file` scopes the suppression to the whole
# file. The ` -- reason` is mandatory: an undocumented suppression is a
# finding.
PRAGMA_RE = re.compile(
    r"//\s*staticcheck:(allow(?:-file)?)\(([^)]*)\)(\s*--\s*(\S.*))?")

INCLUDE_RE = re.compile(r'^\s*#\s*include\s*([<"])([^">]+)[">]')


@dataclasses.dataclass
class Finding:
    rule: str
    rel: str
    line: int
    message: str

    def key(self) -> Tuple[str, str, int, str]:
        return (self.rule, self.rel, self.line, self.message)


@dataclasses.dataclass
class Include:
    line: int
    target: str          # as written, e.g. "core/scheduler.h" or "vector"
    system: bool         # <...> include
    resolved: Optional[str] = None  # project-relative path when resolved


class SourceFile:
    def __init__(self, repo: pathlib.Path, path: pathlib.Path):
        self.path = path
        self.rel = path.relative_to(repo).as_posix()
        self.module = module_of(self.rel)
        self.is_header = path.suffix in HEADER_SUFFIXES
        text = path.read_text(encoding="utf-8", errors="replace")
        self.raw_lines = text.splitlines()
        self.code_lines, self.comment_lines = lex(text)
        self.code = "\n".join(self.code_lines)
        # Includes are read from the raw lines: the lexer blanks string
        # literal contents, which would erase quoted include targets.
        self.includes: List[Include] = []
        for i, line in enumerate(self.raw_lines, start=1):
            m = INCLUDE_RE.match(line)
            if m:
                self.includes.append(
                    Include(line=i, target=m.group(2),
                            system=m.group(1) == "<"))
        # line -> set of allowed rules; 0 keys the file-scope pragmas.
        self.allow: Dict[int, Set[str]] = {}
        self.pragma_findings: List[Finding] = []
        # One entry per pragma comment (for reporting), regardless of how
        # many lines the pragma ends up covering.
        self.pragma_sites: List[Tuple[int, Set[str]]] = []
        self._collect_pragmas()

    def _collect_pragmas(self) -> None:
        for i, comment in enumerate(self.comment_lines, start=1):
            m = PRAGMA_RE.search(comment)
            if not m:
                if "staticcheck:" in comment:
                    self.pragma_findings.append(Finding(
                        "pragma-syntax", self.rel, i,
                        "malformed staticcheck pragma; expected "
                        "`// staticcheck:allow(<rule>) -- reason`"))
                continue
            kind, rules_text, reason = m.group(1), m.group(2), m.group(4)
            rules = {r.strip() for r in rules_text.split(",") if r.strip()}
            unknown = rules - RULES
            if unknown:
                self.pragma_findings.append(Finding(
                    "pragma-syntax", self.rel, i,
                    f"pragma names unknown rule(s): {', '.join(sorted(unknown))}"))
                rules -= unknown
            if not reason:
                self.pragma_findings.append(Finding(
                    "pragma-syntax", self.rel, i,
                    "pragma lacks a `-- reason`; every suppression must "
                    "say why"))
                continue
            self.pragma_sites.append((i, set(rules)))
            if kind == "allow-file":
                self.allow.setdefault(0, set()).update(rules)
                continue
            # A trailing pragma covers its own line; a pragma alone on its
            # line (possibly followed by more comment lines) covers the
            # next statement — every line through the one that closes it
            # with `;` or `{`, so multi-line expressions stay covered.
            if self.code_lines[i - 1].strip():
                self.allow.setdefault(i, set()).update(rules)
                continue
            target = i + 1
            while target <= len(self.code_lines) and \
                    not self.code_lines[target - 1].strip():
                target += 1
            end = target
            while end <= len(self.code_lines):
                self.allow.setdefault(end, set()).update(rules)
                if re.search(r"[;{]\s*$", self.code_lines[end - 1]):
                    break
                end += 1

    def allows(self, rule: str, line: int) -> bool:
        if rule in self.allow.get(0, ()):
            return True
        return rule in self.allow.get(line, ())


def lex(text: str) -> Tuple[List[str], List[str]]:
    """Splits `text` into (code_lines, comment_lines).

    Code lines have comments removed and string/char literal *contents*
    blanked (quotes kept, so `"a_b"` cannot look like an identifier but a
    lexed line still scans as a string position). Comment lines carry only
    the comment text, blank elsewhere. Raw strings, escapes and multi-line
    block comments are handled; both views preserve line structure.
    """
    code: List[str] = []
    comment: List[str] = []
    cur_code: List[str] = []
    cur_comment: List[str] = []
    i, n = 0, len(text)
    state = "code"          # code | line_comment | block_comment | string | char | raw
    raw_delim = ""

    def newline() -> None:
        code.append("".join(cur_code))
        comment.append("".join(cur_comment))
        cur_code.clear()
        cur_comment.clear()

    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "\n":
            if state == "line_comment":
                state = "code"
            newline()
            i += 1
            continue
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                cur_comment.append("//")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                i += 2
                continue
            if c == "R" and nxt == '"':
                m = re.match(r'R"([^(\s]*)\(', text[i:])
                if m:
                    state = "raw"
                    raw_delim = ")" + m.group(1) + '"'
                    cur_code.append('""')
                    i += m.end()
                    continue
            if c == '"':
                state = "string"
                cur_code.append('"')
                i += 1
                continue
            if c == "'":
                # Digit separators (1'000'000) are not char literals.
                prev = text[i - 1] if i else ""
                if prev.isdigit() and (nxt.isdigit() or nxt in "abcdefABCDEF"):
                    i += 1
                    continue
                state = "char"
                cur_code.append("'")
                i += 1
                continue
            cur_code.append(c)
            i += 1
            continue
        if state == "line_comment":
            cur_comment.append(c)
            i += 1
            continue
        if state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                i += 2
                continue
            cur_comment.append(c)
            i += 1
            continue
        if state == "string":
            if c == "\\":
                i += 2
                continue
            if c == '"':
                cur_code.append('"')
                state = "code"
            i += 1
            continue
        if state == "char":
            if c == "\\":
                i += 2
                continue
            if c == "'":
                cur_code.append("'")
                state = "code"
            i += 1
            continue
        if state == "raw":
            if text.startswith(raw_delim, i):
                state = "code"
                i += len(raw_delim)
                continue
            i += 1
            continue
    newline()
    return code, comment


def module_of(rel: str) -> str:
    """Maps a repo-relative path onto its layering module name."""
    parts = rel.split("/")
    if parts[0] == "src" and len(parts) > 1:
        return parts[1]
    return parts[0]  # tools, bench, tests, examples


# ---------------------------------------------------------------------------
# Symbol / signature extraction (regex-level, tuned for this codebase's
# Google-ish style; see DESIGN.md §11 for the accepted imprecision).
# ---------------------------------------------------------------------------

TYPE_DEF_RE = re.compile(
    r"\b(?:class|struct|union)\s+([A-Z]\w*)\s*(?:final\s*)?[:{]")
ENUM_DEF_RE = re.compile(r"\benum\s+(?:class\s+|struct\s+)?([A-Z]\w*)\s*[:{]")
FWD_DECL_RE = re.compile(r"\b(?:class|struct)\s+([A-Z]\w*)\s*;")
USING_RE = re.compile(r"\busing\s+([A-Za-z_]\w*)\s*=")
TYPEDEF_RE = re.compile(r"\btypedef\b[^;]*?\b([A-Za-z_]\w*)\s*;")
MACRO_RE = re.compile(r"^\s*#\s*define\s+([A-Za-z_]\w*)")
CONST_RE = re.compile(
    r"\b(?:inline\s+)?constexpr\s+[\w:<>]+\s+(k[A-Z]\w*)\b")
# A namespace-scope function definition/declaration: return type then name
# then '('. Excludes control keywords and member-qualified definitions.
FUNC_RE = re.compile(
    r"^[A-Za-z_][\w:<>,&*\s]*?[\s&*]([a-z_]\w*)\s*\($")
KEYWORDS = {
    "if", "for", "while", "switch", "return", "sizeof", "catch", "new",
    "delete", "throw", "do", "else", "case", "default", "operator",
    "static_assert", "alignof", "decltype", "co_await", "co_return",
}


def brace_depths(code_lines: Sequence[str]) -> List[int]:
    """Brace depth at the *start* of each line, namespaces not counted."""
    depths: List[int] = []
    depth = 0
    ns_stack: List[int] = []  # depths opened by a namespace
    pending_ns = False
    for line in code_lines:
        depths.append(depth - len(ns_stack))
        if re.search(r"\bnamespace\b[^;{]*$", line) or \
                re.search(r"\bnamespace\b[^;{]*\{", line):
            pending_ns = True
        for ch in line:
            if ch == "{":
                depth += 1
                if pending_ns:
                    ns_stack.append(depth)
                    pending_ns = False
            elif ch == "}":
                if ns_stack and ns_stack[-1] == depth:
                    ns_stack.pop()
                depth -= 1
    return depths


class HeaderSymbols:
    """Names a header provides (used for IWYU-lite use/provide matching)."""

    def __init__(self, sf: SourceFile):
        self.types: Set[str] = set()      # classes/structs/enums defined
        self.fwd: Set[str] = set()        # forward declarations only
        self.funcs: Set[str] = set()      # free functions
        self.macros: Set[str] = set()
        self.aliases: Set[str] = set()
        self.consts: Set[str] = set()
        depths = brace_depths(sf.code_lines)
        # Logical lines: a declaration may wrap, so a line with unbalanced
        # parentheses is joined with its continuations (bounded) before the
        # function-signature patterns run.
        joined: List[Tuple[int, str]] = []
        i = 0
        lines = sf.code_lines
        while i < len(lines):
            line = lines[i]
            lineno = i + 1
            balance = line.count("(") - line.count(")")
            steps = 0
            while balance > 0 and steps < 6 and i + 1 < len(lines):
                i += 1
                steps += 1
                line = line.rstrip() + " " + lines[i].strip()
                balance = line.count("(") - line.count(")")
            joined.append((lineno, line))
            i += 1
        for lineno, line in joined:
            depth = depths[lineno - 1]
            for m in MACRO_RE.finditer(line):
                self.macros.add(m.group(1))
            if depth > 1:
                continue  # inside a function/class body two levels deep
            for m in TYPE_DEF_RE.finditer(line):
                self.types.add(m.group(1))
            for m in ENUM_DEF_RE.finditer(line):
                self.types.add(m.group(1))
            for m in FWD_DECL_RE.finditer(line):
                self.fwd.add(m.group(1))
            if depth > 0:
                continue
            for m in USING_RE.finditer(line):
                self.aliases.add(m.group(1))
            for m in TYPEDEF_RE.finditer(line):
                self.aliases.add(m.group(1))
            for m in CONST_RE.finditer(line):
                self.consts.add(m.group(1))
        # Free functions: namespace-scope `name(` preceded by a type token.
        for lineno, line in joined:
            if depths[lineno - 1] != 0:
                continue
            for m in re.finditer(r"([A-Za-z_][\w:]*)\s*\(", line):
                name = m.group(1).split("::")[-1]
                if name in KEYWORDS or not name[0].islower():
                    continue
                head = line[: m.start()].strip()
                # Needs something type-ish before the name on the same line.
                if not head or head.endswith(("return", "=", ",", "(", "&&",
                                              "||", "!")):
                    continue
                if re.search(r"[\w:>&*\]]\s*$", head):
                    self.funcs.add(name)

    def provided(self) -> Set[str]:
        return (self.types | self.funcs | self.macros | self.aliases
                | self.consts)

    def declared_names(self) -> Set[str]:
        return self.provided() | self.fwd


# Function signature index for the units-flow pass: name -> list of
# parameter-name tuples (one per distinct signature).
SIG_RE = re.compile(
    r"(?:^|[\s:~*&])([A-Za-z_]\w*)\s*\(([^()]*)\)\s*(?:const\s*)?"
    r"(?:noexcept\s*)?(?:override\s*)?[;{]")


def extract_signatures(sf: SourceFile) -> Dict[str, List[List[str]]]:
    sigs: Dict[str, List[List[str]]] = {}
    # Join wrapped parameter lists: collapse the file, then scan.
    flat = re.sub(r"\s+", " ", sf.code)
    for m in SIG_RE.finditer(flat):
        name, params = m.group(1), m.group(2).strip()
        if name in KEYWORDS:
            continue
        names: List[str] = []
        if params and params != "void":
            ok = True
            for piece in split_top_level(params):
                piece = piece.split("=")[0].strip()
                pm = re.search(r"([A-Za-z_]\w*)\s*(?:\[\s*\])?$", piece)
                if not pm or pm.group(1) in {"const", "int", "double",
                                             "float", "bool", "auto"}:
                    ok = False
                    break
                names.append(pm.group(1))
            if not ok:
                continue
        sigs.setdefault(name, []).append(names)
    return sigs


def split_top_level(text: str) -> List[str]:
    """Splits on commas not nested in (), <>, [] or {}."""
    out: List[str] = []
    depth = 0
    cur: List[str] = []
    for ch in text:
        if ch in "(<[{":
            depth += 1
        elif ch in ")>]}":
            depth -= 1
        if ch == "," and depth == 0:
            out.append("".join(cur))
            cur = []
        else:
            cur.append(ch)
    if cur:
        out.append("".join(cur))
    return [p.strip() for p in out if p.strip()]


# ---------------------------------------------------------------------------
# Project
# ---------------------------------------------------------------------------

class Project:
    def __init__(self, repo: pathlib.Path, roots: Sequence[str],
                 compile_commands: Optional[pathlib.Path] = None,
                 exclude: Sequence[str] = ("tests/staticcheck/fixtures",)):
        self.repo = repo
        self.files: Dict[str, SourceFile] = {}
        self.include_dirs: List[pathlib.Path] = []
        self.tus: List[str] = []
        if compile_commands and compile_commands.exists():
            self._load_compile_commands(compile_commands)
        if not self.include_dirs:
            self.include_dirs = [repo / "src", repo]
        for root in roots:
            base = repo / root
            if not base.exists():
                continue
            for path in sorted(base.rglob("*")):
                rel = path.relative_to(repo).as_posix()
                if path.suffix not in SOURCE_SUFFIXES:
                    continue
                if any(rel.startswith(e) for e in exclude):
                    continue
                self.files[rel] = SourceFile(repo, path)
        self._resolve_includes()
        self.symbols: Dict[str, HeaderSymbols] = {
            rel: HeaderSymbols(sf) for rel, sf in self.files.items()}
        self.signatures: Dict[str, List[List[str]]] = {}
        for sf in self.files.values():
            for name, sigs in extract_signatures(sf).items():
                self.signatures.setdefault(name, []).extend(sigs)

    def _load_compile_commands(self, path: pathlib.Path) -> None:
        try:
            entries = json.loads(path.read_text())
        except (OSError, ValueError):
            return
        dirs: List[pathlib.Path] = []
        for entry in entries:
            cmd = entry.get("command") or " ".join(entry.get("arguments", []))
            src = pathlib.Path(entry.get("directory", ".")) / entry["file"]
            try:
                self.tus.append(src.resolve().relative_to(
                    self.repo.resolve()).as_posix())
            except ValueError:
                pass
            for m in re.finditer(r"-I\s*(\S+)", cmd):
                d = pathlib.Path(m.group(1))
                if not d.is_absolute():
                    d = pathlib.Path(entry.get("directory", ".")) / d
                if d not in dirs and d.is_dir():
                    dirs.append(d)
        repo_res = self.repo.resolve()
        self.include_dirs = [d for d in dirs
                             if repo_res in d.resolve().parents
                             or d.resolve() == repo_res]
        if self.repo not in self.include_dirs:
            self.include_dirs.append(self.repo)

    def _resolve_includes(self) -> None:
        for sf in self.files.values():
            for inc in sf.includes:
                if inc.system:
                    continue
                for base in [sf.path.parent] + self.include_dirs:
                    cand = base / inc.target
                    if cand.exists():
                        try:
                            inc.resolved = cand.resolve().relative_to(
                                self.repo.resolve()).as_posix()
                        except ValueError:
                            inc.resolved = None
                        break

    def header_pair(self, sf: SourceFile) -> Optional[str]:
        """The .h rel-path paired with a .cc file, if present."""
        if sf.is_header:
            return None
        for suffix in HEADER_SUFFIXES:
            cand = sf.rel[: sf.rel.rfind(".")] + suffix
            if cand in self.files:
                return cand
        return None

    def transitive_includes(self, rel: str) -> Set[str]:
        seen: Set[str] = set()
        stack = [rel]
        while stack:
            cur = stack.pop()
            sf = self.files.get(cur)
            if sf is None:
                continue
            for inc in sf.includes:
                if inc.resolved and inc.resolved not in seen:
                    seen.add(inc.resolved)
                    stack.append(inc.resolved)
        return seen

    def transitive_includers(self, rel: str) -> Set[str]:
        """Files that reach `rel` through their include chains."""
        direct: Dict[str, Set[str]] = {}
        for f, sf in self.files.items():
            for inc in sf.includes:
                if inc.resolved:
                    direct.setdefault(inc.resolved, set()).add(f)
        seen: Set[str] = set()
        stack = [rel]
        while stack:
            cur = stack.pop()
            for parent in direct.get(cur, ()):
                if parent not in seen:
                    seen.add(parent)
                    stack.append(parent)
        return seen
