"""Determinism, logging and CLI-spelling pass.

Migrates rules 2-4 of the old tools/lint_conventions.py into the framework.
Hardcoded path allowlists are gone: the exempt sites (the log sink, the
telemetry wall clock) carry `// staticcheck:allow(...) -- reason` pragmas
in-source instead.

Findings:
  determinism — std::rand, std::random_device, std::mt19937, wall-clock
                reads, time(NULL) in library code (src/). All randomness
                flows through common/rng.h; all time is simulated seconds.
  logging     — direct stdout/stderr writes in library code (src/);
                everything goes through common/log.h.
  cli-flags   — a snake_case flag registration through common/cli (the
                parser maps user-typed snake_case onto kebab-case flags, so
                a snake_case registration would be unreachable). Covers
                src/, tools/ and bench/.
"""

from __future__ import annotations

import re
from typing import List

from model import Finding, Project

DETERMINISM_PATTERNS = [
    (re.compile(r"\bstd::rand\b|\bsrand\s*\("), "std::rand/srand"),
    (re.compile(r"\bstd::random_device\b"), "std::random_device"),
    (re.compile(r"\bstd::mt19937"), "std::mt19937"),
    (re.compile(r"\bstd::chrono::(system|steady|high_resolution)_clock\b"),
     "wall-clock read"),
    (re.compile(r"\btime\s*\(\s*(NULL|nullptr|0)\s*\)"), "time(NULL)"),
]

IO_PATTERNS = [
    (re.compile(r"\bstd::cout\b|\bstd::cerr\b|\bstd::clog\b"),
     "direct std stream"),
    (re.compile(r"\b(?:std::)?f?printf\s*\("), "printf-family call"),
    (re.compile(r"\bputs\s*\("), "puts"),
]

# Matched against raw lines (string literals intact) with comments removed.
CLI_FLAG_RE = re.compile(
    r'\.get_(?:string|int|double|u64|bool)\s*\(\s*"([^"]*_[^"]*)"')
LINE_COMMENT_RE = re.compile(r"//.*$")


def run(project: Project) -> List[Finding]:
    findings: List[Finding] = []
    for rel, sf in sorted(project.files.items()):
        library = rel.startswith("src/")
        for i, code in enumerate(sf.code_lines, start=1):
            if not code.strip():
                continue
            raw = LINE_COMMENT_RE.sub("", sf.raw_lines[i - 1]) \
                if i <= len(sf.raw_lines) else ""
            for m in CLI_FLAG_RE.finditer(raw):
                if sf.allows("cli-flags", i):
                    continue
                kebab = m.group(1).replace("_", "-")
                findings.append(Finding(
                    "cli-flags", rel, i,
                    f"snake_case CLI flag '--{m.group(1)}': register the "
                    f"kebab-case name '--{kebab}' (common/cli already "
                    "accepts the snake spelling as a deprecated alias)"))
            if not library:
                continue
            for pattern, what in DETERMINISM_PATTERNS:
                if pattern.search(code) and not sf.allows("determinism", i):
                    findings.append(Finding(
                        "determinism", rel, i,
                        f"nondeterminism: {what} — use common/rng.h / "
                        "simulated time instead"))
            for pattern, what in IO_PATTERNS:
                if pattern.search(code) and not sf.allows("logging", i):
                    findings.append(Finding(
                        "logging", rel, i,
                        f"library I/O: {what} — route output through "
                        "common/log.h"))
    return findings
