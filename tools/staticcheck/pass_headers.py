"""Header-hygiene pass (IWYU-lite).

Findings:
  header-guard      — a header without `#pragma once` (or an #ifndef guard).
  header-include-cc — an #include naming a .cc/.cpp file.
  unused-include    — a direct project include none of whose provided
                      symbols appear in the including file.
  missing-include   — a symbol whose unique home header is only reachable
                      transitively; the file should include it directly.

The use/provide matching is name-based (see model.HeaderSymbols), so two
escape hatches exist: `// staticcheck:allow(unused-include) -- reason` on
the include line for deliberate re-exports, and forward declarations, which
count as providing the name in the declaring file.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Set

from model import Finding, Project, SourceFile

WORD_RE = re.compile(r"[A-Za-z_]\w*")


def run(project: Project) -> List[Finding]:
    findings: List[Finding] = []
    words_cache: Dict[str, Set[str]] = {}

    def words_of(rel: str) -> Set[str]:
        if rel not in words_cache:
            sf = project.files[rel]
            # Skip the file's own include lines so `#include "x/y.h"`
            # doesn't read as a use of the identifier `y`.
            body = "\n".join(
                line for i, line in enumerate(sf.code_lines, start=1)
                if not any(inc.line == i for inc in sf.includes))
            words_cache[rel] = set(WORD_RE.findall(body))
        return words_cache[rel]

    # Unique home header for each defined symbol (for missing-include).
    home: Dict[str, Optional[str]] = {}
    for rel, syms in project.symbols.items():
        if not project.files[rel].is_header:
            continue
        for name in syms.provided():
            home[name] = None if name in home else rel

    for rel, sf in sorted(project.files.items()):
        if sf.is_header:
            if not _has_guard(sf):
                findings.append(Finding(
                    "header-guard", rel, 1,
                    "header lacks an include guard; add `#pragma once`"))
        pair = project.header_pair(sf)
        used = words_of(rel)
        direct: Set[str] = set()
        for inc in sf.includes:
            if inc.system:
                continue
            if inc.target.endswith((".cc", ".cpp")):
                findings.append(Finding(
                    "header-include-cc", rel, inc.line,
                    f"#include of an implementation file '{inc.target}'"))
                continue
            if inc.resolved is None or inc.resolved not in project.files:
                continue
            direct.add(inc.resolved)
            if inc.resolved == pair:
                continue  # a .cc always keeps its own header
            provided = project.symbols[inc.resolved].provided()
            if provided and not (provided & used):
                if sf.allows("unused-include", inc.line):
                    continue
                findings.append(Finding(
                    "unused-include", rel, inc.line,
                    f"unused include '{inc.target}': nothing it provides "
                    "is referenced here"))

        # missing-include: a used symbol with a unique home header that is
        # reachable only transitively.
        if pair:
            direct = direct | {pair} | {
                inc.resolved for inc in project.files[pair].includes
                if inc.resolved}
        reachable = project.transitive_includes(rel)
        self_names = project.symbols[rel].declared_names()
        reported: Set[str] = set()
        for name in sorted(used):
            h = home.get(name)
            if h is None or h == rel or h in direct or h in reported:
                continue
            if name in self_names:
                continue
            if h not in reachable:
                continue  # not visible at all: a plain name collision
            if sf.allows("missing-include", 1):
                continue
            reported.add(h)
            line = _first_use_line(sf, name)
            if sf.allows("missing-include", line):
                continue
            findings.append(Finding(
                "missing-include", rel, line,
                f"uses '{name}' from '{h}' but includes it only "
                "transitively; include it directly"))
    return findings


def _has_guard(sf: SourceFile) -> bool:
    saw_ifndef = False
    for line in sf.code_lines[:60]:
        stripped = line.strip()
        if stripped.startswith("#pragma once"):
            return True
        if stripped.startswith("#ifndef"):
            saw_ifndef = True
        if saw_ifndef and stripped.startswith("#define"):
            return True
    return False


def _first_use_line(sf: SourceFile, name: str) -> int:
    pat = re.compile(r"\b%s\b" % re.escape(name))
    include_lines = {inc.line for inc in sf.includes}
    for i, line in enumerate(sf.code_lines, start=1):
        if i in include_lines:
            continue
        if pat.search(line):
            return i
    return 1
