"""Text and JSON reporting for rubick_staticcheck."""

from __future__ import annotations

import json
import pathlib
from typing import Dict, List, Sequence

from model import Finding

SCHEMA_VERSION = 1


def dedupe(findings: Sequence[Finding]) -> List[Finding]:
    seen = set()
    out: List[Finding] = []
    for f in findings:
        if f.key() in seen:
            continue
        seen.add(f.key())
        out.append(f)
    return sorted(out, key=lambda f: (f.rel, f.line, f.rule))


def render_text(findings: Sequence[Finding], stats: Dict) -> str:
    lines = [f"{f.rel}:{f.line}: [{f.rule}] {f.message}" for f in findings]
    by_rule: Dict[str, int] = {}
    for f in findings:
        by_rule[f.rule] = by_rule.get(f.rule, 0) + 1
    summary = ", ".join(f"{r}={n}" for r, n in sorted(by_rule.items())) \
        or "clean"
    lines.append(
        f"rubick_staticcheck: {stats.get('files', 0)} file(s), "
        f"{len(findings)} finding(s) ({summary}); "
        f"{stats.get('suppressed', 0)} pragma-suppressed site(s), "
        f"{stats.get('nolint', 0)}/{stats.get('nolint_budget', 0)} "
        "NOLINT budget used")
    return "\n".join(lines)


def render_json(findings: Sequence[Finding], stats: Dict) -> Dict:
    by_rule: Dict[str, int] = {}
    for f in findings:
        by_rule[f.rule] = by_rule.get(f.rule, 0) + 1
    return {
        "schema_version": SCHEMA_VERSION,
        "tool": "rubick_staticcheck",
        "summary": {
            "files_scanned": stats.get("files", 0),
            "findings": len(findings),
            "by_rule": by_rule,
            "suppressed_sites": stats.get("suppressed", 0),
            "nolint_used": stats.get("nolint", 0),
            "nolint_budget": stats.get("nolint_budget", 0),
        },
        "pragmas": stats.get("pragmas", []),
        "findings": [
            {"rule": f.rule, "file": f.rel, "line": f.line,
             "message": f.message}
            for f in findings
        ],
    }


def write_json(path: pathlib.Path, findings: Sequence[Finding],
               stats: Dict) -> None:
    path.write_text(json.dumps(render_json(findings, stats), indent=2)
                    + "\n")
