"""Layering pass: enforce the declared module DAG (layers.toml).

Findings:
  layering — an #include crossing modules along an edge that is neither
             implied by the layer order (strictly downward) nor declared in
             layers.toml; also raised when the declared DAG itself is
             malformed (unknown module, non-downward order violation at
             validation time) or the actual include graph has a cycle.
"""

from __future__ import annotations

import pathlib
import tomllib
from typing import Dict, List, Set, Tuple

from model import Finding, Project


class LayerConfig:
    def __init__(self, path: pathlib.Path):
        data = tomllib.loads(path.read_text())
        self.order: List[List[str]] = data["layers"]["order"]
        self.layer_of: Dict[str, int] = {}
        for i, layer in enumerate(self.order):
            for module in layer:
                self.layer_of[module] = i
        self.allowed: Dict[Tuple[str, str], str] = {}
        for edge in data.get("edge", []):
            self.allowed[(edge["from"], edge["to"])] = edge.get("reason", "")

    def validate(self) -> List[str]:
        """Sanity-checks the declared DAG itself."""
        errors = []
        for (src, dst), reason in self.allowed.items():
            if src not in self.layer_of:
                errors.append(f"declared edge from unknown module '{src}'")
            if dst not in self.layer_of:
                errors.append(f"declared edge to unknown module '{dst}'")
            if not reason.strip():
                errors.append(f"declared edge {src}->{dst} lacks a reason")
        if len(self.order) and self.layer_of:
            top = len(self.order) - 1
            for module in self.order[top]:
                for (src, dst) in self.allowed:
                    if dst == module:
                        errors.append(
                            f"declared edge {src}->{dst} points into the "
                            "leaf layer; nothing may depend on it")
        return errors


def run(project: Project, config: LayerConfig) -> List[Finding]:
    findings: List[Finding] = []
    for error in config.validate():
        findings.append(Finding("layering", "tools/staticcheck/layers.toml",
                                1, error))

    edges: Dict[Tuple[str, str], List[Tuple[str, int, str]]] = {}
    for sf in project.files.values():
        for inc in sf.includes:
            if inc.resolved is None:
                continue
            target_mod = project.files[inc.resolved].module \
                if inc.resolved in project.files else None
            if target_mod is None or target_mod == sf.module:
                continue
            edges.setdefault((sf.module, target_mod), []).append(
                (sf.rel, inc.line, inc.target))

    for (src, dst), sites in sorted(edges.items()):
        if src not in config.layer_of:
            for rel, line, target in sites:
                findings.append(Finding(
                    "layering", rel, line,
                    f"module '{src}' is not declared in layers.toml"))
            continue
        if dst not in config.layer_of:
            for rel, line, target in sites:
                findings.append(Finding(
                    "layering", rel, line,
                    f"include of '{target}': module '{dst}' is not declared "
                    "in layers.toml"))
            continue
        if config.layer_of[dst] < config.layer_of[src]:
            continue  # strictly downward: always legal
        if (src, dst) in config.allowed:
            continue
        direction = "sideways" if \
            config.layer_of[dst] == config.layer_of[src] else "up"
        for rel, line, target in sites:
            if project.files[rel].allows("layering", line):
                continue
            findings.append(Finding(
                "layering", rel, line,
                f"illegal {direction} include '{target}': {src} "
                f"(layer {config.layer_of[src]}) -> {dst} "
                f"(layer {config.layer_of[dst]}) is not in the declared DAG "
                "(tools/staticcheck/layers.toml)"))

    findings.extend(_cycle_findings(edges))
    return findings


def _cycle_findings(edges) -> List[Finding]:
    graph: Dict[str, Set[str]] = {}
    for (src, dst) in edges:
        graph.setdefault(src, set()).add(dst)
        graph.setdefault(dst, set())
    color: Dict[str, int] = {}
    stack: List[str] = []
    cycle: List[str] = []

    def dfs(node: str) -> bool:
        color[node] = 1
        stack.append(node)
        for nxt in sorted(graph.get(node, ())):
            if color.get(nxt, 0) == 1:
                cycle.extend(stack[stack.index(nxt):] + [nxt])
                return True
            if color.get(nxt, 0) == 0 and dfs(nxt):
                return True
        stack.pop()
        color[node] = 2
        return False

    for node in sorted(graph):
        if color.get(node, 0) == 0 and dfs(node):
            return [Finding(
                "layering", "tools/staticcheck/layers.toml", 1,
                "module include graph has a cycle: "
                + " -> ".join(cycle))]
    return []
