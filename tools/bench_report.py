#!/usr/bin/env python3
"""Merge per-bench --sched-json outputs into one repo-root BENCH_sched.json.

Each benchmark binary (bench_micro_scheduler, bench_fig10_load, ...) writes
its own single-document report when run with --sched-json=FILE. This tool
merges any number of those documents into one trajectory-friendly file:

  {
    "schema_version": 1,
    "git_sha": "<rev-parse HEAD, or 'unknown' outside a checkout>",
    "benches": {
      "<bench name>": {
        "latency": {          # normalized cold/steady percentiles, seconds
          "<label>": {"mean_s": ..., "p50_s": ..., "p90_s": ..., "p99_s": ...}
        },
        "counters": {...},    # verbatim from the bench document
        "raw": {...}          # the full original document
      }
    }
  }

Labels are "cold[@jobs]" / "steady_fast_path[@jobs]" / ... for the
microbenchmark's per-job-count rounds, "cold_indexed@jobs" /
"cold_legacy@jobs" for the decide-engine fleets, and "decision_latency"
for histogram reports. Duplicate bench names WITHIN one invocation fail
loudly (a merge must not silently drop a run).

When --out already exists (the committed repo-root BENCH_sched.json seed),
the tool merges into it instead of overwriting: benches absent from the
inputs are carried forward unchanged, and a re-run bench replaces the old
entry while keeping the old latencies under "recorded" with a
"delta_vs_recorded" map of mean-latency ratios (new/old; < 1.0 = faster).
Used by the CI bench-smoke job, which uploads the merged file.

Usage: bench_report.py --out BENCH_sched.json FILE [FILE ...]
"""

import argparse
import json
import os
import subprocess
import sys


def git_sha():
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            check=True,
        )
        return out.stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def pick_percentiles(obj):
    """Normalizes one latency summary to mean/p50/p90/p99 keys (seconds).

    Accepts both the microbenchmark's {mean_s,p50_s,p90_s,p99_s} summaries
    and the histogram report's {mean_s,p50_le_s,p90_le_s,p99_le_s}.
    """
    out = {}
    for key in ("mean_s", "p50_s", "p90_s", "p99_s"):
        if key in obj:
            out[key] = obj[key]
        elif key.replace("_s", "_le_s") in obj:
            out[key] = obj[key.replace("_s", "_le_s")]
    return out


def normalize(doc):
    latency = {}
    for round_doc in doc.get("rounds", []):
        suffix = f"@{round_doc['jobs']}" if "jobs" in round_doc else ""
        for label, summary in round_doc.items():
            if isinstance(summary, dict) and "p50_s" in summary:
                latency[f"{label}{suffix}"] = pick_percentiles(summary)
    for label in ("decision_latency_s",):
        if isinstance(doc.get(label), dict):
            latency["decision_latency"] = pick_percentiles(doc[label])
    for fleet in doc.get("decide", {}).get("fleets", []):
        suffix = f"@{fleet['jobs']}" if "jobs" in fleet else ""
        for label in ("cold_indexed", "cold_legacy"):
            if isinstance(fleet.get(label), dict):
                latency[f"{label}{suffix}"] = pick_percentiles(fleet[label])
    return {
        "latency": latency,
        "counters": doc.get("counters", {}),
        "raw": doc,
    }


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", required=True, help="merged output path")
    parser.add_argument("inputs", nargs="+", help="per-bench --sched-json files")
    args = parser.parse_args()

    benches = {}
    for path in args.inputs:
        with open(path, encoding="utf-8") as f:
            try:
                doc = json.load(f)
            except json.JSONDecodeError as exc:
                print(f"bench_report: {path}: not valid JSON: {exc}",
                      file=sys.stderr)
                return 1
        name = doc.get("bench")
        if not isinstance(name, str) or not name:
            print(f"bench_report: {path}: missing 'bench' name",
                  file=sys.stderr)
            return 1
        if name in benches:
            print(f"bench_report: duplicate bench {name!r} (from {path})",
                  file=sys.stderr)
            return 1
        benches[name] = normalize(doc)

    if os.path.exists(args.out):
        with open(args.out, encoding="utf-8") as f:
            try:
                prior = json.load(f)
            except json.JSONDecodeError as exc:
                print(f"bench_report: {args.out}: existing file is not valid "
                      f"JSON: {exc}", file=sys.stderr)
                return 1
        carried = 0
        for name, old in prior.get("benches", {}).items():
            if name not in benches:
                benches[name] = old
                carried += 1
                continue
            old_latency = old.get("latency", {})
            new_latency = benches[name]["latency"]
            benches[name]["recorded"] = old_latency
            benches[name]["delta_vs_recorded"] = {
                label: new_latency[label]["mean_s"] / rec["mean_s"]
                for label, rec in old_latency.items()
                if label in new_latency and rec.get("mean_s")
            }
        if carried:
            print(f"bench_report: carried {carried} bench(es) forward "
                  f"from {args.out}")

    merged = {
        "schema_version": 1,
        "git_sha": git_sha(),
        "benches": benches,
    }
    with open(args.out, "w", encoding="utf-8") as f:
        json.dump(merged, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"bench_report: wrote {args.out} ({len(benches)} bench(es))")
    return 0


if __name__ == "__main__":
    sys.exit(main())
