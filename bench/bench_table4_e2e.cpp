// Table 4: end-to-end 64-GPU cluster experiments. Replays the paper's
// methodology in the discrete-event simulator:
//   * Base trace  — 406 Philly-like jobs, random feasible initial plans:
//                   Rubick vs Sia vs Synergy vs the Rubick-E/R/N ablations.
//   * BP trace    — best initial plans: Rubick vs Sia vs Synergy.
//   * MT trace    — two tenants (A: 64-GPU quota, guaranteed; B: quota-less
//                   best-effort): Rubick vs AntMan with per-class JCTs.
// Also reports the §7.3 system-overhead numbers (reconfiguration cost as a
// share of GPU-hours, profiling cost) and a simulator-fidelity estimate
// (sensitivity of Rubick's average JCT to the oracle's measurement-noise
// draw, the analog of the paper's 6.9% replay error).
#include <cmath>
#include <iostream>
#include <map>
#include <functional>
#include <memory>

#include "baselines/policy_factory.h"
#include "cluster/cluster.h"
#include "common/log.h"
#include "common/stats.h"
#include "common/table.h"
#include "common/units.h"
#include "core/rubick_policy.h"
#include "core/scheduler.h"
#include "model/model_zoo.h"
#include "perf/oracle.h"
#include "perf/perf_store.h"
#include "sim/simulator.h"
#include "trace/job.h"
#include "trace/trace_gen.h"

using namespace rubick;

namespace {

struct RunStats {
  Summary all, guaranteed, best_effort;
  double makespan_h = 0.0;
  int reconfigs = 0;
  double reconfig_share = 0.0;
};

RunStats run_policy(const ClusterSpec& cluster, const GroundTruthOracle& oracle,
                    const std::vector<JobSpec>& jobs, SchedulerPolicy& policy,
                    const PerfModelStore& store,
                    const std::map<std::string, double>& costs) {
  Simulator sim(cluster, oracle);
  const SimResult r = sim.run(jobs, policy, RunContext{&store, &costs});
  RunStats stats;
  stats.all = r.jct_summary();
  stats.guaranteed = r.jct_summary_where(true);
  stats.best_effort = r.jct_summary_where(false);
  stats.makespan_h = to_hours(r.makespan_s);
  for (const auto& j : r.jobs) stats.reconfigs += j.reconfig_count;
  if (r.total_gpu_seconds > 0.0)
    stats.reconfig_share =
        r.reconfig_overhead_gpu_seconds /
        (r.total_gpu_seconds + r.reconfig_overhead_gpu_seconds);
  return stats;
}

std::string ratio(double value, double reference) {
  return TextTable::fmt(value, 2) + " (" +
         TextTable::fmt(reference > 0 ? value / reference : 0.0, 2) + "x)";
}

}  // namespace

int main() {
  // Keep the report machine-readable: rare requeue warnings go to the
  // error log only.
  set_log_level(LogLevel::kError);
  const ClusterSpec cluster;
  const GroundTruthOracle oracle(2025);
  const TraceGenerator gen(cluster, oracle);

  // Three trace draws per variant: a single 406-job draw leaves a few
  // percent of seed noise in the ratios, so the table reports seed means.
  const std::uint64_t kSeeds[] = {1, 2, 3};

  TraceOptions base_opts;
  base_opts.seed = 1;
  base_opts.num_jobs = 406;
  base_opts.window_s = hours(12);

  auto traces_for = [&](TraceVariant variant) {
    std::vector<std::vector<JobSpec>> traces;
    for (std::uint64_t seed : kSeeds) {
      TraceOptions opts = base_opts;
      opts.seed = seed;
      opts.variant = variant;
      traces.push_back(gen.generate(opts));
    }
    return traces;
  };
  const auto base_traces = traces_for(TraceVariant::kBase);
  const auto bp_traces = traces_for(TraceVariant::kBestPlan);
  const auto mt_traces = traces_for(TraceVariant::kMultiTenant);

  // Shared fitted models: every policy sees identical predictions.
  std::vector<std::string> names;
  for (const auto& m : model_zoo()) names.push_back(m.name);
  std::map<std::string, double> costs;
  const PerfModelStore store =
      PerfModelStore::profile_models(oracle, cluster, names, 0, &costs);

  // Seed-mean of RunStats for one policy over a trace set. Policies are
  // single-workload objects (see SchedulerPolicy), so the factory builds a
  // fresh instance per trace.
  auto run_mean = [&](const std::vector<std::vector<JobSpec>>& traces,
                      const std::function<std::unique_ptr<SchedulerPolicy>()>&
                          make_policy) {
    RunStats mean;
    for (const auto& t : traces) {
      const auto policy = make_policy();
      const RunStats s = run_policy(cluster, oracle, t, *policy, store, costs);
      mean.all.mean += s.all.mean / traces.size();
      mean.all.p99 += s.all.p99 / traces.size();
      mean.guaranteed.mean += s.guaranteed.mean / traces.size();
      mean.guaranteed.p99 += s.guaranteed.p99 / traces.size();
      mean.best_effort.mean += s.best_effort.mean / traces.size();
      mean.best_effort.p99 += s.best_effort.p99 / traces.size();
      mean.makespan_h += s.makespan_h / traces.size();
      mean.reconfigs += s.reconfigs / static_cast<int>(traces.size());
      mean.reconfig_share += s.reconfig_share / traces.size();
    }
    return mean;
  };

  std::cout << "=== Table 4: 64-GPU cluster experiments (406 jobs / 12 h "
               "window) ===\n\n";

  // ---------------- Base + BP traces ----------------
  TextTable table({"Trace", "Scheduler", "Avg JCT (h)", "P99 JCT (h)",
                   "Makespan (h)", "#reconfigs"});
  std::map<std::string, RunStats> base_results;
  // (table label, PolicyFactory name) — construction itself goes through
  // the shared registry, same as the CLI tools.
  const std::vector<std::pair<std::string, std::string>> all_policies = {
      {"Rubick", "rubick"},
      {"Sia", "sia"},
      {"Synergy", "synergy"},
      {"Rubick-E", "rubick-e"},
      {"Rubick-R", "rubick-r"},
      {"Rubick-N", "rubick-n"},
      // Extra baseline beyond the paper's Table 4: classic LAS scheduling.
      {"Tiresias*", "tiresias"},
  };

  auto run_block = [&](const char* trace_name,
                       const std::vector<std::vector<JobSpec>>& traces,
                       std::size_t num_policies) {
    double rubick_jct = 0.0, rubick_p99 = 0.0, rubick_mk = 0.0;
    for (std::size_t i = 0; i < num_policies; ++i) {
      const auto& [name, factory_name] = all_policies[i];
      const RunStats s = run_mean(
          traces, [&] { return PolicyFactory::global().create(factory_name); });
      if (std::string(trace_name) == "Base") base_results[name] = s;
      if (i == 0) {
        rubick_jct = to_hours(s.all.mean);
        rubick_p99 = to_hours(s.all.p99);
        rubick_mk = s.makespan_h;
      }
      table.add_row({trace_name, name,
                     ratio(to_hours(s.all.mean), rubick_jct),
                     ratio(to_hours(s.all.p99), rubick_p99),
                     ratio(s.makespan_h, rubick_mk),
                     std::to_string(s.reconfigs)});
    }
  };
  run_block("Base", base_traces, all_policies.size());
  run_block("BP", bp_traces, 3);
  table.print(std::cout);

  // ---------------- MT trace: Rubick vs AntMan ----------------
  std::cout << "\n--- Multi-tenant trace (Tenant-A: 64-GPU quota, "
               "guaranteed; Tenant-B: best-effort) ---\n";
  TextTable mt({"Scheduler", "Class", "Avg JCT (h)", "P99 JCT (h)",
                "Makespan (h)"});
  PolicyParams mt_params;
  mt_params.tenant_quota_gpus["tenant-a"] = 64;
  const RunStats rs = run_mean(mt_traces, [&] {
    return PolicyFactory::global().create("rubick", mt_params);
  });
  const RunStats as = run_mean(mt_traces, [&] {
    return PolicyFactory::global().create("antman", mt_params);
  });
  auto add_class = [&](const char* sched, const char* cls, const Summary& s,
                       const Summary& ref, double mk, double ref_mk) {
    mt.add_row({sched, cls, ratio(to_hours(s.mean), to_hours(ref.mean)),
                ratio(to_hours(s.p99), to_hours(ref.p99)),
                mk > 0 ? ratio(mk, ref_mk) : "-"});
  };
  add_class("Rubick", "All", rs.all, rs.all, rs.makespan_h, rs.makespan_h);
  add_class("Rubick", "Guar.", rs.guaranteed, rs.guaranteed, 0, 0);
  add_class("Rubick", "BE", rs.best_effort, rs.best_effort, 0, 0);
  add_class("AntMan", "All", as.all, rs.all, as.makespan_h, rs.makespan_h);
  add_class("AntMan", "Guar.", as.guaranteed, rs.guaranteed, 0, 0);
  add_class("AntMan", "BE", as.best_effort, rs.best_effort, 0, 0);
  mt.print(std::cout);

  // ---------------- System overheads (§7.3) ----------------
  std::cout << "\n--- System overheads ---\n";
  const RunStats& rb = base_results["Rubick"];
  double total_prof = 0.0;
  for (const auto& [name, c] : costs) total_prof += c;
  std::cout << "reconfigurations (Rubick, base trace): " << rb.reconfigs
            << ", checkpoint-resume cost 78 s each\n"
            << "reconfiguration share of GPU-hours: "
            << TextTable::fmt(100.0 * rb.reconfig_share, 2) << "% (paper: ~1%)\n"
            << "profiling cost: avg "
            << TextTable::fmt(total_prof / static_cast<double>(costs.size()), 0)
            << " s per model type (paper: 210 s)\n";

  // ---------------- Simulator fidelity (§7.4) ----------------
  // The paper replays its cluster runs in a model-driven simulator and sees
  // max 6.9% avg-JCT error. Analog here: run Rubick once with jobs
  // advancing at oracle-measured ("real") throughput and once at the fitted
  // model's predicted throughput ("simulated"), same trace and decisions
  // machinery, and compare average JCT.
  {
    SimOptions model_driven;
    model_driven.advance_with_fitted_model = true;
    Simulator sim(cluster, oracle);
    Simulator sim_model(cluster, oracle, model_driven);
    RubickPolicy real_policy, sim_policy;
    const double real_jct =
        sim.run(base_traces[0], real_policy, RunContext{&store, &costs}).avg_jct_s();
    const double model_jct =
        sim_model.run(base_traces[0], sim_policy, RunContext{&store, &costs}).avg_jct_s();
    const double drift = std::abs(model_jct - real_jct) / real_jct;
    std::cout << "fidelity: model-driven vs measured-throughput avg JCT "
              << "differs by " << TextTable::fmt(100.0 * drift, 1)
              << "% (paper replay error: 6.9%)\n";
  }

  std::cout << "\nExpected shape (paper): Rubick best everywhere; Sia/Synergy "
               "2-3x worse on Base, closer on BP;\nRubick-R beats Rubick-E "
               "beats Rubick-N; Rubick beats AntMan ~1.6x on MT for all "
               "classes.\n";
  return 0;
}
