// Event-engine scaling sweep (ISSUE 9, DESIGN.md §13): wall-clock of the
// indexed event engine vs the legacy full-fleet scan loop on synthetic
// traces of 500 / 2000 / 8000 jobs, fault-free and (at 2000 jobs) under
// injected faults. The policy is a deliberately cheap FCFS gang scheduler,
// so the measured subject is the simulator's event loop, not plan search:
// the legacy loop is O(fleet) bookkeeping per tick (O(n²) per run), the
// engine O(affected jobs + log n). Both engines must agree bit-for-bit on
// every run (checked here on makespan/rounds; the full differential lives
// in tests/test_sim_engine.cc).
//
// `--sched-json=PATH` writes the machine-readable report merged into
// BENCH_sched.json by tools/bench_report.py; CI gates on the faulted
// 2000-job speedup staying within 20% of the recorded baseline and on the
// fitted growth exponent of the indexed curve staying sub-quadratic.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "cluster/placement.h"
#include "common/cli.h"
#include "common/log.h"
#include "common/table.h"
#include "common/units.h"
#include "core/scheduler.h"
#include "failure/fault_plan.h"
#include "model/model_zoo.h"
#include "perf/oracle.h"
#include "perf/perf_store.h"
#include "sim/simulator.h"
#include "telemetry/metrics.h"
#include "trace/job.h"
#include "trace/trace_gen.h"

using namespace rubick;

namespace {

// FCFS gang scheduling with node-level packing: keep every running job
// exactly as is, then admit pending jobs in input order onto whatever
// nodes still have room (splitting across nodes in TP-group multiples).
// No reconfiguration, no plan search — a few microseconds per round, so
// simulator bookkeeping dominates the wall clock by construction. Honors
// `down_nodes` so faulted runs stay legal.
class FcfsGangPolicy final : public SchedulerPolicy {
 public:
  std::string name() const override { return "fcfs-gang"; }

  std::vector<Assignment> schedule(const SchedulerInput& input) override {
    const int num_nodes = input.cluster->num_nodes;
    free_gpus_.assign(static_cast<std::size_t>(num_nodes),
                      input.cluster->node.gpus);
    free_cpus_.assign(static_cast<std::size_t>(num_nodes),
                      input.cluster->node.cpus);
    if (input.down_nodes != nullptr) {
      for (int n = 0; n < num_nodes; ++n)
        if ((*input.down_nodes)[static_cast<std::size_t>(n)]) {
          free_gpus_[static_cast<std::size_t>(n)] = 0;
          free_cpus_[static_cast<std::size_t>(n)] = 0;
        }
    }

    std::vector<Assignment> out;
    out.reserve(input.jobs.size());
    for (const JobView& v : input.jobs) {
      if (!v.running) continue;
      out.push_back({v.spec->id, v.placement, v.plan});
      for (const auto& s : v.placement.slices) {
        free_gpus_[static_cast<std::size_t>(s.node)] -= s.gpus;
        free_cpus_[static_cast<std::size_t>(s.node)] -= s.cpus;
      }
    }
    for (const JobView& v : input.jobs) {
      if (v.running) continue;
      const int want_gpus = v.spec->requested.gpus;
      const int cpus_per_gpu =
          want_gpus > 0 ? v.spec->requested.cpus / want_gpus : 0;
      const int tp = v.plan.tp > 0 ? v.plan.tp : 1;
      // Feasibility first, in pure arithmetic over the free arrays:
      // Placement::add re-sorts its slices on every insert, so only build
      // one for jobs that actually fit (a saturated cluster rejects most
      // pending jobs most rounds).
      int left = want_gpus;
      for (int n = 0; n < num_nodes && left > 0; ++n) {
        const std::size_t ni = static_cast<std::size_t>(n);
        // Chunks must keep TP groups on one node.
        int take = std::min(left, free_gpus_[ni]);
        take -= take % tp;
        if (take <= 0 || take * cpus_per_gpu > free_cpus_[ni]) continue;
        left -= take;
      }
      if (left > 0) continue;  // not placeable this round; stays pending
      Placement p;
      left = want_gpus;
      for (int n = 0; n < num_nodes && left > 0; ++n) {
        const std::size_t ni = static_cast<std::size_t>(n);
        int take = std::min(left, free_gpus_[ni]);
        take -= take % tp;
        const int cpus = take * cpus_per_gpu;
        if (take <= 0 || cpus > free_cpus_[ni]) continue;
        p.add({n, take, cpus, gigabytes(1)});
        free_gpus_[ni] -= take;
        free_cpus_[ni] -= cpus;
        left -= take;
      }
      out.push_back({v.spec->id, p, v.plan});
    }
    return out;
  }

 private:
  std::vector<int> free_gpus_;  // reused across rounds
  std::vector<int> free_cpus_;
};

struct Measurement {
  int jobs = 0;
  bool faulted = false;
  double indexed_s = 0.0;
  double legacy_s = 0.0;
  double speedup = 0.0;
};

// Faulted-2000 speedup measured on the CI reference machine when this
// bench was introduced; the bench-smoke job fails if the measured value
// drops below 80% of this (see .github/workflows/ci.yml). Re-record when
// the engine legitimately changes shape.
constexpr double kRecordedSpeedup2000Faulted = 6.25;

}  // namespace

int main(int argc, char** argv) {
  CliFlags flags(argc, argv);
  const std::string sched_json = flags.get_string("sched-json", "");
  flags.finish();
  if (!sched_json.empty()) {
    set_telemetry_enabled(true);
    MetricsRegistry::global().reset_values();
  }
  set_log_level(LogLevel::kError);

  const ClusterSpec cluster;
  const GroundTruthOracle oracle(2025);
  const TraceGenerator gen(cluster, oracle);

  // Fit the performance models once; every run shares the store so neither
  // engine pays profiling inside the timed region.
  std::map<std::string, double> costs;
  std::vector<std::string> names;
  for (const auto& m : model_zoo()) names.push_back(m.name);
  const PerfModelStore store =
      PerfModelStore::profile_models(oracle, cluster, names, 0, &costs);

  std::cout << "=== Event-engine scaling: indexed vs legacy-scan ===\n\n";
  TextTable table(
      {"jobs", "faults", "indexed (s)", "legacy (s)", "speedup"});

  auto timed_run = [&](const std::vector<JobSpec>& jobs, SimEngine engine,
                       const FaultPlan* plan, SimResult* result_out) {
    SimulationOptions options;
    options.sim.engine = engine;
    // The measured subject is the event loop: online refits (Nelder-Mead
    // over the observation set) would otherwise dominate the wall clock
    // with work both engines share identically.
    options.sim.online_refinement = false;
    RunContext ctx;
    ctx.store = &store;
    ctx.profiling_cost_s = &costs;
    ctx.options = &options;
    ctx.fault_plan = plan;
    FcfsGangPolicy policy;
    const Simulator sim(cluster, oracle);
    const auto t0 = std::chrono::steady_clock::now();
    SimResult result = sim.run(jobs, policy, ctx);
    const auto t1 = std::chrono::steady_clock::now();
    if (result_out != nullptr) *result_out = std::move(result);
    return std::chrono::duration<double>(t1 - t0).count();
  };

  auto measure = [&](int num_jobs, const FaultPlan* plan) {
    TraceOptions opts;
    opts.seed = 7;
    opts.num_jobs = num_jobs;
    // ~10 jobs/hour keeps the run arrival-limited: the FCFS gang policy
    // drains this cluster at ~13 jobs/h (head-of-line blocking wastes some
    // capacity), so ~0.8 utilization bounds the concurrently active set as
    // the fleet grows. What then scales with `num_jobs` is exactly the
    // per-tick bookkeeping under test — O(fleet) scans in the legacy loop
    // vs O(affected + log n) in the engine — not the shared O(queue)
    // scheduling work of an ever-deepening backlog.
    opts.window_s = hours(static_cast<double>(num_jobs) / 10.0);
    const std::vector<JobSpec> jobs = gen.generate(opts);

    Measurement m;
    m.jobs = num_jobs;
    m.faulted = plan != nullptr;
    SimResult indexed;
    SimResult legacy;
    m.indexed_s = timed_run(jobs, SimEngine::kIndexed, plan, &indexed);
    m.legacy_s = timed_run(jobs, SimEngine::kLegacyScan, plan, &legacy);
    m.speedup = m.indexed_s > 0.0 ? m.legacy_s / m.indexed_s : 0.0;

    // Byte-identity spot check (the exhaustive comparison is a tier-1
    // test); a divergence here means the bench numbers are meaningless.
    if (indexed.makespan_s != legacy.makespan_s ||
        indexed.scheduling_rounds != legacy.scheduling_rounds) {
      std::cerr << "FATAL: engines diverge at " << num_jobs << " jobs\n";
      std::exit(1);
    }

    char buf[64];
    std::snprintf(buf, sizeof buf, "%.3f", m.indexed_s);
    const std::string idx_s = buf;
    std::snprintf(buf, sizeof buf, "%.3f", m.legacy_s);
    const std::string leg_s = buf;
    std::snprintf(buf, sizeof buf, "%.1fx", m.speedup);
    table.add_row({std::to_string(num_jobs), plan ? "yes" : "no", idx_s,
                   leg_s, buf});
    return m;
  };

  std::vector<Measurement> runs;
  for (const int n : {500, 2000, 8000}) runs.push_back(measure(n, nullptr));

  // Faulted 2000-job run: crashes, transients, stragglers and a 10% warm
  // reconfiguration failure rate — the accept gate of ISSUE 9.
  FaultPlanOptions fault_opts;
  fault_opts.horizon_s = hours(30.0);
  fault_opts.reconfig_failure_prob = 0.1;
  const FaultPlan plan = FaultPlan::generate(11, fault_opts, cluster);
  const Measurement faulted = measure(2000, &plan);

  table.print(std::cout);

  // Fitted growth exponent of the indexed curve: time ~ jobs^e between the
  // smallest and largest size. The legacy loop sits near e=2; the engine
  // target is near-linear (sub-quadratic is the CI gate).
  const double exponent =
      std::log(runs.back().indexed_s / runs.front().indexed_s) /
      std::log(static_cast<double>(runs.back().jobs) /
               static_cast<double>(runs.front().jobs));
  std::cout << "\nindexed growth exponent (500 -> 8000): ";
  std::cout.precision(3);
  std::cout << exponent << " (1 = linear, 2 = quadratic)\n";
  std::cout << "faulted 2000-job speedup: " << faulted.speedup
            << "x (recorded baseline " << kRecordedSpeedup2000Faulted
            << "x)\n";

  if (!sched_json.empty()) {
    std::ofstream os(sched_json);
    if (!os) {
      std::cerr << "cannot open " << sched_json << " for writing\n";
      return 1;
    }
    os.precision(9);
    MetricsRegistry& reg = MetricsRegistry::global();
    os << "{\"bench\":\"bench_sim_engine\",\"unit\":\"seconds\",\"sizes\":[";
    for (std::size_t i = 0; i < runs.size(); ++i) {
      if (i > 0) os << ",";
      os << "{\"jobs\":" << runs[i].jobs
         << ",\"indexed_s\":" << runs[i].indexed_s
         << ",\"legacy_s\":" << runs[i].legacy_s
         << ",\"speedup\":" << runs[i].speedup << "}";
    }
    os << "],\"growth_exponent\":" << exponent;
    os << ",\"faulted_2000\":{\"indexed_s\":" << faulted.indexed_s
       << ",\"legacy_s\":" << faulted.legacy_s
       << ",\"speedup\":" << faulted.speedup
       << ",\"recorded_baseline_speedup\":" << kRecordedSpeedup2000Faulted
       << "}";
    os << ",\"counters\":{\"heap_pops\":" << reg.counter_value("sim.heap_pops")
       << ",\"stale_events\":" << reg.counter_value("sim.stale_events")
       << ",\"index_updates\":" << reg.counter_value("sim.index_updates")
       << ",\"ticks\":" << reg.counter_value("sim.ticks") << "}}\n";
    std::cout << "\nwrote " << sched_json << "\n";
  }
  return 0;
}
