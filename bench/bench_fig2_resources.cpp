// Fig. 2: multi-resource consumption of execution plans for GPT-2 trained
// with the minimum feasible A800 GPUs at global batch 16, normalized to the
// largest value per resource type.
//
// Resource demands are derived from the library's own substrates: GPU count
// from the plan-feasibility search, CPUs from the fitted model's
// diminishing-returns point (offload) or the 2-cores/GPU input-pipeline
// floor, host memory from the memory estimator, and network bandwidth from
// the analytic communication volumes divided by the measured iteration time.
#include <algorithm>
#include <iostream>
#include <vector>

#include "cluster/cluster.h"
#include "common/table.h"
#include "common/units.h"
#include "model/model_spec.h"
#include "model/model_zoo.h"
#include "perf/analytic.h"
#include "perf/oracle.h"
#include "perf/profiler.h"
#include "plan/execution_plan.h"
#include "plan/memory_estimator.h"

using namespace rubick;

namespace {

struct PlanFamily {
  const char* label;
  // Returns the family's concrete plan at `gpus`, or an invalid plan.
  ExecutionPlan (*make)(int gpus);
};

ExecutionPlan dp(int g) { return make_dp(g); }
ExecutionPlan ga(int g) { return make_dp(g, 4); }
ExecutionPlan gc(int g) { return make_dp(g, 1, true); }
ExecutionPlan zero_dp(int g) { return make_zero_dp(g); }
ExecutionPlan zero_off(int g) { return make_zero_offload(g, 4); }
// Model-parallel families are only defined from 2 GPUs up.
ExecutionPlan tp(int g) { return g > 1 ? make_3d(1, g, 1) : make_dp(1); }
ExecutionPlan pp(int g) { return g > 1 ? make_3d(1, 1, g, 4 * g) : make_dp(1); }

}  // namespace

int main() {
  const ClusterSpec cluster;
  const GroundTruthOracle oracle(2025);
  const ModelSpec& model = find_model("GPT-2");
  const int batch = 16;
  MemoryEstimator estimator;

  struct FamilySpec {
    PlanFamily family;
    int min_gpus;
  };
  const FamilySpec families[] = {
      {{"DP", dp}, 1},           {{"GA", ga}, 1},
      {{"GC", gc}, 1},           {{"ZeRO-DP", zero_dp}, 1},
      {{"ZeRO-Offload", zero_off}, 1},
      {{"TP", tp}, 2},           {{"PP", pp}, 2},
  };

  struct Row {
    std::string plan;
    double gpus, cpus, mem_gb, bw_gbs;
  };
  std::vector<Row> rows;

  for (const FamilySpec& spec : families) {
    const PlanFamily& fam = spec.family;
    // Minimum feasible GPU count for the family.
    int min_g = 0;
    ExecutionPlan plan;
    for (int g = spec.min_gpus; g <= 8 && min_g == 0; ++g) {
      const ExecutionPlan candidate = fam.make(g);
      if (candidate.num_gpus() != g) continue;
      if (!candidate.valid_for(model, batch)) continue;
      if (!estimator.fits(model, candidate, batch,
                          make_memory_budget(cluster, g)))
        continue;
      min_g = g;
      plan = candidate;
    }
    if (min_g == 0) continue;

    // CPU demand: offload profits from cores (optimizer on CPU); others use
    // the 2-cores/GPU input-pipeline share.
    int cpus = 2 * min_g;
    if (plan.uses_offload()) {
      const auto& truth = oracle.truth_for(model);
      PerfContext probe = make_perf_context(cluster, min_g, cpus);
      double prev = oracle.true_throughput(model, plan, batch, probe);
      while (cpus < cluster.node.cpus) {
        probe.cpus = cpus + 1;
        const double next = oracle.true_throughput(model, plan, batch, probe);
        if (next < prev * 1.02) break;  // diminishing returns
        prev = next;
        ++cpus;
      }
      (void)truth;
    }

    const PerfContext ctx = make_perf_context(cluster, min_g, cpus);
    const auto& truth = oracle.truth_for(model);
    const IterBreakdown bd = iteration_breakdown(
        model, plan, batch, truth.fwd_unit_s, truth.params, ctx, truth.perturb);
    const double net_bytes = bd.v_dp_bytes + bd.v_tp_bytes + bd.v_pp_bytes;
    rows.push_back({plan.display_name(), static_cast<double>(min_g),
                    static_cast<double>(cpus),
                    to_gigabytes(estimator.host_bytes(model, plan)),
                    net_bytes / bd.t_iter / 1e9});
  }

  double max_g = 0, max_c = 0, max_m = 0, max_b = 0;
  for (const Row& r : rows) {
    max_g = std::max(max_g, r.gpus);
    max_c = std::max(max_c, r.cpus);
    max_m = std::max(max_m, r.mem_gb);
    max_b = std::max(max_b, r.bw_gbs);
  }

  std::cout << "=== Fig. 2: resource consumption of GPT-2 execution plans "
               "(min feasible GPUs, b=16) ===\n"
            << "Normalization: " << max_g << " GPUs, " << max_c << " CPUs, "
            << TextTable::fmt(max_m, 1) << " GB host memory, "
            << TextTable::fmt(max_b, 1) << " GB/s network bandwidth\n\n";

  TextTable table({"plan", "GPU", "CPU", "Memory", "Bandwidth"});
  for (const Row& r : rows)
    table.add_row({r.plan, TextTable::fmt(r.gpus / max_g),
                   TextTable::fmt(r.cpus / max_c),
                   TextTable::fmt(r.mem_gb / max_m),
                   TextTable::fmt(max_b > 0 ? r.bw_gbs / max_b : 0.0)});
  table.print(std::cout);

  std::cout << "\nExpected shape (paper): ZeRO-Offload dominates CPU and "
               "memory; TP dominates bandwidth at similar GPU count.\n";
  return 0;
}
