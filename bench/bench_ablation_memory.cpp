// Ablation: memory as the third scheduling dimension. Sweeps the host- and
// GPU-memory budgets and reports, per model, how many plans remain feasible
// and which plan is best — the mechanism behind Fig. 3's stage S5 (a 10 GB
// host cap kills ZeRO-Offload) and the paper's observation that memory
// determines plan feasibility rather than speed.
#include <iostream>

#include "cluster/cluster.h"
#include "common/table.h"
#include "common/units.h"
#include "model/model_spec.h"
#include "model/model_zoo.h"
#include "perf/analytic.h"
#include "perf/oracle.h"
#include "perf/perf_store.h"
#include "perf/profiler.h"
#include "plan/enumerate.h"
#include "plan/memory_estimator.h"

using namespace rubick;

int main() {
  const ClusterSpec cluster;
  const GroundTruthOracle oracle(2025);
  PerfModelStore store = PerfModelStore::profile_models(
      oracle, cluster, {"GPT-2", "LLaMA-2-7B"});
  MemoryEstimator estimator;

  std::cout << "=== Ablation: memory limits gate the plan space ===\n\n";

  // --- (1) host-memory sweep at 1 GPU (Fig. 3 S5's mechanism). ---
  std::cout << "--- host-memory cap, 1 GPU ---\n";
  {
    TextTable table({"model", "host cap", "#feasible plans", "best plan"});
    for (const char* name : {"GPT-2", "LLaMA-2-7B"}) {
      const ModelSpec& model = find_model(name);
      const int batch = model.default_global_batch;
      for (double cap_gb : {8.0, 16.0, 32.0, 128.0, 1600.0}) {
        PlanConstraints pc;
        pc.num_gpus = 1;
        pc.max_tp = 1;
        pc.budget =
            MemoryBudget{cluster.node.gpu_memory_bytes, gigabytes(cap_gb)};
        const auto plans = enumerate_plans(model, batch, pc, estimator);
        std::string best = "(none)";
        double best_thr = 0.0;
        const PerfContext ctx = make_perf_context(cluster, 1, 8);
        for (const auto& p : plans) {
          const double thr = store.get(name).predict_throughput(
              model, p, batch, ctx);
          if (thr > best_thr) {
            best_thr = thr;
            best = p.display_name();
          }
        }
        table.add_row({name, TextTable::fmt(cap_gb, 0) + " GB",
                       std::to_string(plans.size()), best});
      }
    }
    table.print(std::cout);
  }

  // --- (2) GPU-memory sweep at 8 GPUs. ---
  std::cout << "\n--- GPU-memory cap, 8 GPUs ---\n";
  {
    TextTable table({"model", "GPU cap", "#feasible plans", "best plan"});
    for (const char* name : {"GPT-2", "LLaMA-2-7B"}) {
      const ModelSpec& model = find_model(name);
      const int batch = model.default_global_batch;
      for (double cap_gb : {16.0, 24.0, 40.0, 80.0}) {
        PlanConstraints pc;
        pc.num_gpus = 8;
        pc.max_tp = 8;
        pc.budget =
            MemoryBudget{gigabytes(cap_gb), cluster.node.memory_bytes};
        const auto plans = enumerate_plans(model, batch, pc, estimator);
        std::string best = "(none)";
        double best_thr = 0.0;
        const PerfContext ctx = make_perf_context(cluster, 8, 32);
        for (const auto& p : plans) {
          const double thr = store.get(name).predict_throughput(
              model, p, batch, ctx);
          if (thr > best_thr) {
            best_thr = thr;
            best = p.display_name();
          }
        }
        table.add_row({name, TextTable::fmt(cap_gb, 0) + " GB",
                       std::to_string(plans.size()), best});
      }
    }
    table.print(std::cout);
  }

  std::cout << "\nExpected shape: tightening host memory kills the offload "
               "family first (S5 of Fig. 3);\ntightening GPU memory pushes "
               "the best plan from throughput-optimal (ZeRO-2) toward\n"
               "memory-optimal (ZeRO-3 / GC / offload) until nothing "
               "fits.\n";
  return 0;
}
