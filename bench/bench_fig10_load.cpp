// Fig. 10: performance vs. cluster load. The trace is re-sampled at
// different rates (load multipliers on the job count within the same 12-h
// window) and Rubick is compared against Synergy on average JCT and
// makespan. The paper's shape: Rubick wins at every load and its advantage
// grows with load (up to ~3.5x JCT / ~1.4x makespan).
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "baselines/policy_factory.h"
#include "cluster/cluster.h"
#include "common/cli.h"
#include "common/log.h"
#include "common/table.h"
#include "common/units.h"
#include "model/model_zoo.h"
#include "perf/oracle.h"
#include "perf/perf_store.h"
#include "plan/plan_cache.h"
#include "sim/simulator.h"
#include "telemetry/metrics.h"
#include "trace/trace_gen.h"

using namespace rubick;

namespace {

// Percentile estimate from fixed histogram buckets: the upper bound of the
// bucket where the cumulative count first reaches the quantile (+inf bucket
// reports the largest finite bound).
double histogram_quantile_s(const Histogram& h, double q) {
  const auto counts = h.bucket_counts();
  const auto& bounds = h.bounds();
  const std::uint64_t total = h.count();
  if (total == 0) return 0.0;
  const double target = q * static_cast<double>(total);
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    cum += counts[i];
    if (static_cast<double>(cum) >= target)
      return i < bounds.size() ? bounds[i] : bounds.back();
  }
  return bounds.back();
}

// Fig-level BENCH_sched.json: decision-latency percentile estimates and
// cache counters accumulated across every simulated scheduling round of the
// whole load sweep (both policies, all load factors).
void write_sched_json(const std::string& path) {
  std::ofstream os(path);
  if (!os) {
    std::cerr << "cannot open " << path << " for writing\n";
    return;
  }
  os.precision(9);
  MetricsRegistry& reg = MetricsRegistry::global();
  const Histogram& lat =
      reg.histogram("scheduler.decision_latency_s", latency_bounds_s());
  os << "{\"bench\":\"bench_fig10_load\",\"unit\":\"seconds\","
     << "\"decision_latency_s\":{\"count\":" << lat.count()
     << ",\"sum_s\":" << lat.sum() << ",\"mean_s\":"
     << (lat.count() ? lat.sum() / static_cast<double>(lat.count()) : 0.0)
     << ",\"p50_le_s\":" << histogram_quantile_s(lat, 0.50)
     << ",\"p90_le_s\":" << histogram_quantile_s(lat, 0.90)
     << ",\"p99_le_s\":" << histogram_quantile_s(lat, 0.99) << "},";
  const PlanCacheStats ps = PlanSetCache::global().stats();
  os << "\"plan_cache\":{\"hits\":" << ps.hits << ",\"misses\":" << ps.misses
     << ",\"enumerations\":" << ps.enumerations
     << ",\"budget_pruned\":" << ps.budget_pruned
     << ",\"hit_rate\":" << ps.hit_rate() << "},";
  os << "\"counters\":{\"rounds\":" << reg.counter_value("scheduler.rounds")
     << ",\"fast_path_rounds\":"
     << reg.counter_value("scheduler.fast_path_rounds")
     << ",\"curve_evals_saved\":"
     << reg.counter_value("predictor.curve_evals_saved") << "}}\n";
  std::cout << "\nwrote " << path << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  CliFlags flags(argc, argv);
  const std::string sched_json = flags.get_string("sched-json", "");
  flags.finish();
  if (!sched_json.empty()) {
    set_telemetry_enabled(true);
    MetricsRegistry::global().reset_values();
  }
  // Keep the report machine-readable: rare requeue warnings go to the
  // error log only.
  set_log_level(LogLevel::kError);
  const ClusterSpec cluster;
  const GroundTruthOracle oracle(2025);
  const TraceGenerator gen(cluster, oracle);

  std::cout << "=== Fig. 10: performance vs. cluster load (Rubick vs "
               "Synergy) ===\n\n";

  TextTable table({"load", "#jobs", "Rubick JCT (h)", "Synergy JCT (h)",
                   "JCT gain", "Rubick mksp (h)", "Synergy mksp (h)",
                   "mksp gain"});

  // Fit once at the largest trace (superset of model types).
  std::map<std::string, double> costs;
  std::vector<std::string> names;
  for (const auto& m : model_zoo()) names.push_back(m.name);
  const PerfModelStore store =
      PerfModelStore::profile_models(oracle, cluster, names, 0, &costs);

  for (double load : {0.5, 1.0, 1.5, 2.0}) {
    TraceOptions opts;
    opts.seed = 3;
    opts.num_jobs = 200;
    opts.window_s = hours(12);
    opts.load_scale = load;
    const auto jobs = gen.generate(opts);

    Simulator sim(cluster, oracle);
    const auto rubick = PolicyFactory::global().create("rubick");
    const auto synergy = PolicyFactory::global().create("synergy");
    const SimResult r = sim.run(jobs, *rubick, RunContext{&store, &costs});
    const SimResult s = sim.run(jobs, *synergy, RunContext{&store, &costs});

    table.add_row({TextTable::fmt(load, 1) + "x", std::to_string(jobs.size()),
                   TextTable::fmt(to_hours(r.avg_jct_s())),
                   TextTable::fmt(to_hours(s.avg_jct_s())),
                   TextTable::fmt(s.avg_jct_s() / r.avg_jct_s()) + "x",
                   TextTable::fmt(to_hours(r.makespan_s)),
                   TextTable::fmt(to_hours(s.makespan_s)),
                   TextTable::fmt(s.makespan_s / r.makespan_s) + "x"});
  }
  table.print(std::cout);

  std::cout << "\nExpected shape (paper): Rubick's JCT gain grows with load "
               "(queuing amplifies the benefit),\nmakespan gain more modest "
               "(~1.4x at high load).\n";
  if (!sched_json.empty()) write_sched_json(sched_json);
  return 0;
}
