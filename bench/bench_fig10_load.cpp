// Fig. 10: performance vs. cluster load. The trace is re-sampled at
// different rates (load multipliers on the job count within the same 12-h
// window) and Rubick is compared against Synergy on average JCT and
// makespan. The paper's shape: Rubick wins at every load and its advantage
// grows with load (up to ~3.5x JCT / ~1.4x makespan).
#include <iostream>

#include "baselines/synergy.h"
#include "model/model_zoo.h"
#include "common/log.h"
#include "common/table.h"
#include "common/units.h"
#include "core/rubick_policy.h"
#include "sim/simulator.h"
#include "trace/trace_gen.h"

using namespace rubick;

int main() {
  // Keep the report machine-readable: rare requeue warnings go to the
  // error log only.
  set_log_level(LogLevel::kError);
  const ClusterSpec cluster;
  const GroundTruthOracle oracle(2025);
  const TraceGenerator gen(cluster, oracle);

  std::cout << "=== Fig. 10: performance vs. cluster load (Rubick vs "
               "Synergy) ===\n\n";

  TextTable table({"load", "#jobs", "Rubick JCT (h)", "Synergy JCT (h)",
                   "JCT gain", "Rubick mksp (h)", "Synergy mksp (h)",
                   "mksp gain"});

  // Fit once at the largest trace (superset of model types).
  std::map<std::string, double> costs;
  std::vector<std::string> names;
  for (const auto& m : model_zoo()) names.push_back(m.name);
  const PerfModelStore store =
      PerfModelStore::profile_models(oracle, cluster, names, 0, &costs);

  for (double load : {0.5, 1.0, 1.5, 2.0}) {
    TraceOptions opts;
    opts.seed = 3;
    opts.num_jobs = 200;
    opts.window_s = hours(12);
    opts.load_scale = load;
    const auto jobs = gen.generate(opts);

    Simulator sim(cluster, oracle);
    RubickPolicy rubick;
    SynergyPolicy synergy;
    const SimResult r = sim.run(jobs, rubick, RunContext{&store, &costs});
    const SimResult s = sim.run(jobs, synergy, RunContext{&store, &costs});

    table.add_row({TextTable::fmt(load, 1) + "x", std::to_string(jobs.size()),
                   TextTable::fmt(to_hours(r.avg_jct_s())),
                   TextTable::fmt(to_hours(s.avg_jct_s())),
                   TextTable::fmt(s.avg_jct_s() / r.avg_jct_s()) + "x",
                   TextTable::fmt(to_hours(r.makespan_s)),
                   TextTable::fmt(to_hours(s.makespan_s)),
                   TextTable::fmt(s.makespan_s / r.makespan_s) + "x"});
  }
  table.print(std::cout);

  std::cout << "\nExpected shape (paper): Rubick's JCT gain grows with load "
               "(queuing amplifies the benefit),\nmakespan gain more modest "
               "(~1.4x at high load).\n";
  return 0;
}
