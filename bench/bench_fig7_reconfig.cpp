// Fig. 7: Rubick reconfigures a LLaMA-2-7B job as resource limits shrink:
// 32 GPUs across 4 nodes -> 16 GPUs -> 4 GPUs -> 1 GPU (ZeRO-Offload is the
// only feasible plan) -> CPUs doubled under ZeRO-Offload. We compare
// Rubick's choice with two naive static strategies, as the paper's figure
// does with its extra lines.
#include <iostream>

#include "cluster/cluster.h"
#include "common/table.h"
#include "core/plan_selector.h"
#include "core/predictor.h"
#include "model/model_spec.h"
#include "model/model_zoo.h"
#include "perf/analytic.h"
#include "perf/oracle.h"
#include "perf/perf_store.h"
#include "perf/profiler.h"
#include "plan/execution_plan.h"
#include "plan/memory_estimator.h"

using namespace rubick;

namespace {

struct Stage {
  const char* label;
  int gpus;
  int cpus;
  int gpus_per_node;
};

}  // namespace

int main() {
  const ClusterSpec cluster;
  const GroundTruthOracle oracle(2025);
  const ModelSpec& model = find_model("LLaMA-2-7B");
  const int batch = model.default_global_batch;

  const Profiler profiler(oracle, cluster);
  PerfModelStore store;
  store.add(profiler.profile_and_fit(model, batch).model);
  MemoryEstimator estimator;
  BestPlanPredictor predictor(cluster, store, estimator);
  FullPlanSelector all_plans;
  // Naive comparison strategies: always scale the DP dimension of a fixed
  // TP=8 plan, and a fixed ZeRO-DP family (what a non-reconfiguring user
  // would run).
  const ScaledDpSelector tp8_dp(make_3d(1, 8, 1));
  const ScaledDpSelector zero_dp(make_zero_dp(1, 2, true));

  const Stage stages[] = {
      {"32 GPUs (4x8)", 32, 64, 8}, {"16 GPUs (4x4)", 16, 32, 4},
      {"4 GPUs (1 node)", 4, 8, 4}, {"1 GPU", 1, 8, 1},
      {"1 GPU, 2x CPUs", 1, 16, 1},
  };

  std::cout << "=== Fig. 7: reconfiguration of LLaMA-2-7B under shrinking "
               "limits (oracle-measured samples/s) ===\n\n";

  TextTable table({"stage", "Rubick plan", "Rubick", "TP8+DP-scaling",
                   "ZeRO-DP-only"});
  for (const Stage& s : stages) {
    const bool multi = s.gpus > s.gpus_per_node;
    auto measure = [&](const BestPlanPredictor::Prediction& pred) {
      if (!pred.feasible) return std::string("-");
      PerfContext ctx = make_perf_context(cluster, s.gpus, s.cpus);
      ctx.multi_node = multi;
      return TextTable::fmt(
          oracle.measure_throughput(model, pred.plan, batch, ctx));
    };
    const auto rubick = predictor.best_exact(model, batch, all_plans, s.gpus,
                                             s.cpus, s.gpus_per_node, multi);
    const auto fixed_tp = predictor.best_exact(model, batch, tp8_dp, s.gpus,
                                               s.cpus, s.gpus_per_node, multi);
    const auto fixed_zero = predictor.best_exact(
        model, batch, zero_dp, s.gpus, s.cpus, s.gpus_per_node, multi);
    table.add_row({s.label,
                   rubick.feasible ? rubick.plan.display_name() : "(none)",
                   measure(rubick), measure(fixed_tp), measure(fixed_zero)});
  }
  table.print(std::cout);

  std::cout << "\nExpected shape (paper): Rubick matches or beats both "
               "static strategies at every stage,\nswitches to ZeRO-Offload "
               "at 1 GPU (only feasible plan) and speeds up when its CPUs "
               "are doubled.\n";
  return 0;
}
