// Ablation: how much does the performance model's quality matter?
//
//   1. Prediction error vs. profiling budget — fit each model from the
//      first k profiled samples (k = 4 ... all) and measure held-out error.
//      The paper's claim: ~7 well-chosen points suffice.
//   2. Online refinement on/off — end-to-end Rubick JCT with and without
//      §4.3's continuous fitting, plus the refit counts.
//   3. Scheduling on a deliberately degraded model — Rubick driven by a
//      model fitted WITHOUT multi-GPU scaling points (the failure mode the
//      profiler's sampling plan exists to avoid).
#include <cmath>
#include <set>
#include <iostream>

#include "cluster/cluster.h"
#include "common/log.h"
#include "common/table.h"
#include "common/units.h"
#include "core/rubick_policy.h"
#include "model/model_spec.h"
#include "model/model_zoo.h"
#include "perf/analytic.h"
#include "perf/fitter.h"
#include "perf/oracle.h"
#include "perf/perf_store.h"
#include "perf/profiler.h"
#include "plan/execution_plan.h"
#include "plan/memory_estimator.h"
#include "sim/simulator.h"
#include "trace/trace_gen.h"

using namespace rubick;

namespace {

double held_out_error(const GroundTruthOracle& oracle,
                      const ClusterSpec& cluster, const PerfModel& fitted,
                      const ModelSpec& model) {
  MemoryEstimator est;
  const int batch = model.default_global_batch;
  double worst = 0.0;
  for (int g : {1, 2, 4, 8}) {
    for (const ExecutionPlan& plan :
         {make_dp(g), make_zero_dp(g, 2), make_zero3(g, 2),
          make_dp(g, 2, true), make_zero_offload(g, 4)}) {
      if (!plan.valid_for(model, batch)) continue;
      if (!est.fits(model, plan, batch, make_memory_budget(cluster, g)))
        continue;
      const PerfContext ctx = make_perf_context(cluster, g, 4 * g);
      const double truth = oracle.true_throughput(model, plan, batch, ctx);
      const double pred = fitted.predict_throughput(model, plan, batch, ctx);
      worst = std::max(worst, std::abs(pred - truth) / truth);
    }
  }
  return worst;
}

}  // namespace

int main() {
  // Keep the report machine-readable: rare requeue warnings go to the
  // error log only.
  set_log_level(LogLevel::kError);
  const ClusterSpec cluster;
  const GroundTruthOracle oracle(2025);
  const Profiler profiler(oracle, cluster);
  const PerfModelFitter fitter;

  std::cout << "=== Ablation: performance-model quality ===\n\n"
            << "--- (1) held-out max error vs. profiling budget ---\n";
  {
    TextTable table({"model", "k=4 samples", "k=7", "k=9", "all"});
    for (const char* name : {"BERT", "GPT-2", "T5"}) {
      const ModelSpec& model = find_model(name);
      const int batch = model.default_global_batch;
      auto samples = profiler.choose_samples(model, batch);
      for (auto& s : samples)
        s.measured_throughput =
            oracle.measure_throughput(model, s.plan, s.global_batch, s.ctx);
      const double fwd = oracle.profiled_fwd_unit_s(model);
      std::vector<std::string> row = {name};
      for (std::size_t k : {std::size_t{4}, std::size_t{7}, std::size_t{9},
                            samples.size()}) {
        std::vector<PerfSample> subset(
            samples.begin(),
            samples.begin() + std::min(k, samples.size()));
        // The fitter needs >= 3 offload samples to fit offload params; the
        // profiler front-loads them, so small subsets still qualify.
        const PerfModel fitted = fitter.fit(model, fwd, subset);
        row.push_back(
            TextTable::fmt(100.0 * held_out_error(oracle, cluster, fitted,
                                                  model)) +
            "%");
      }
      table.add_row(row);
    }
    table.print(std::cout);
  }

  // ---- (2) + (3): end-to-end effect on scheduling quality. ----
  std::cout << "\n--- (2,3) Rubick end-to-end vs. model quality (120 jobs) "
               "---\n";
  {
    const TraceGenerator gen(cluster, oracle);
    TraceOptions opts;
    opts.seed = 9;
    opts.num_jobs = 120;
    opts.window_s = hours(6);
    const auto jobs = gen.generate(opts);

    std::vector<std::string> names;
    for (const auto& j : jobs) names.push_back(j.model_name);
    std::map<std::string, double> costs;
    const PerfModelStore good =
        PerfModelStore::profile_models(oracle, cluster, names, 0, &costs);

    // Degraded store: fitted from 1-GPU samples only (no scaling points).
    PerfModelStore degraded;
    {
      std::set<std::string> seen;
      for (const auto& j : jobs) {
        if (!seen.insert(j.model_name).second) continue;
        const ModelSpec& model = find_model(j.model_name);
        const int batch = model.default_global_batch;
        auto samples = profiler.choose_samples(model, batch);
        std::vector<PerfSample> small;
        for (auto& s : samples)
          if (s.plan.num_gpus() <= 1) small.push_back(s);
        if (small.empty()) small.push_back(samples.front());
        for (auto& s : small)
          s.measured_throughput =
              oracle.measure_throughput(model, s.plan, s.global_batch, s.ctx);
        int offload = 0;
        for (const auto& s : small)
          if (s.plan.uses_offload()) ++offload;
        if (offload > 0 && offload < 3) {
          std::vector<PerfSample> filtered;
          for (auto& s : small)
            if (!s.plan.uses_offload()) filtered.push_back(s);
          if (!filtered.empty()) {
            small = filtered;
          } else {
            // Only offload runs at 1 GPU (large models): pad with CPU
            // variations so the fitter's 3-offload-run requirement holds.
            while (small.size() < 3) {
              PerfSample extra = small.front();
              extra.ctx.cpus *= 2;
              extra.measured_throughput = oracle.measure_throughput(
                  model, extra.plan, extra.global_batch, extra.ctx);
              small.push_back(extra);
            }
          }
        }
        degraded.add(
            fitter.fit(model, oracle.profiled_fwd_unit_s(model), small));
      }
    }

    TextTable table({"configuration", "avg JCT (h)", "makespan (h)",
                     "reconfigs", "online refits"});
    auto run = [&](const char* label, const PerfModelStore& store,
                   bool refinement) {
      SimOptions so;
      so.online_refinement = refinement;
      Simulator sim(cluster, oracle, so);
      RubickPolicy policy;
      const SimResult r = sim.run(jobs, policy, RunContext{&store, &costs});
      int reconfigs = 0;
      for (const auto& j : r.jobs) reconfigs += j.reconfig_count;
      table.add_row({label, TextTable::fmt(to_hours(r.avg_jct_s())),
                     TextTable::fmt(to_hours(r.makespan_s)),
                     std::to_string(reconfigs),
                     std::to_string(r.online_refits)});
    };
    run("full profile + refinement", good, true);
    run("full profile, no refinement", good, false);
    run("1-GPU-only profile + refinement", degraded, true);
    run("1-GPU-only profile, no refinement", degraded, false);
    table.print(std::cout);
  }

  std::cout << "\nExpected shape: error shrinks with budget; the paper's "
               "~7-point budget is already\nnear the asymptote; a degraded "
               "model costs JCT, and online refinement claws much of\nit "
               "back.\n";
  return 0;
}
