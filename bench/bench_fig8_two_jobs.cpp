// Fig. 8: maximizing throughput across two jobs on a single 4-GPU server.
// The "simple" scheduler splits GPUs evenly (2+2) — it may reconfigure
// plans, isolating the allocation policy. Rubick recognizes that T5 gains
// more from extra GPUs than RoBERTa and allocates 3+1, yielding a higher
// total normalized speedup. Speedups are normalized per job to its rigid
// best plan on the full 4-GPU server (as in the paper).
#include <iostream>
#include <map>

#include "baselines/equal_share.h"
#include "cluster/cluster.h"
#include "common/log.h"
#include "common/resource.h"
#include "common/table.h"
#include "core/plan_selector.h"
#include "core/predictor.h"
#include "core/rubick_policy.h"
#include "core/scheduler.h"
#include "model/model_spec.h"
#include "model/model_zoo.h"
#include "perf/analytic.h"
#include "perf/oracle.h"
#include "perf/perf_store.h"
#include "perf/profiler.h"
#include "plan/execution_plan.h"
#include "plan/memory_estimator.h"
#include "trace/job.h"

using namespace rubick;

int main() {
  // Keep the report machine-readable: rare requeue warnings go to the
  // error log only.
  set_log_level(LogLevel::kError);
  ClusterSpec cluster;
  cluster.num_nodes = 1;
  cluster.node.gpus = 4;
  const GroundTruthOracle oracle(2025);

  PerfModelStore store =
      PerfModelStore::profile_models(oracle, cluster, {"RoBERTa", "T5", "ViT"});
  MemoryEstimator estimator;
  BestPlanPredictor predictor(cluster, store, estimator);
  FullPlanSelector all_plans;

  // Per-job baseline: the measured throughput of a rigid, user-default plan
  // (plain DP) on the full 4-GPU server — "a rigid execution plan on static
  // resources", as the paper normalizes.
  auto baseline = [&](const std::string& name) {
    const ModelSpec& m = find_model(name);
    const PerfContext ctx = make_perf_context(cluster, 4, 16);
    return oracle.measure_throughput(m, make_dp(4), m.default_global_batch,
                                     ctx);
  };

  auto run_pair = [&](const char* model_a, const char* model_b) {
    std::map<std::string, double> base_thr = {{model_a, baseline(model_a)},
                                              {model_b, baseline(model_b)}};
    std::vector<JobSpec> specs(2);
    specs[0].id = 0;
    specs[0].model_name = model_a;
    specs[1].id = 1;
    specs[1].model_name = model_b;
    for (auto& s : specs) {
      const ModelSpec& m = find_model(s.model_name);
      s.global_batch = m.default_global_batch;
      s.requested = ResourceVector{4, 16, 0};
      s.initial_plan = make_dp(4);
      s.target_samples = 1e9;
      s.guaranteed = false;  // pure throughput comparison, no SLA floor
    }

    TextTable table({"scheduler", "job", "GPUs", "plan", "speedup"});
    auto evaluate = [&](SchedulerPolicy& policy) {
      SchedulerInput in;
      in.cluster = &cluster;
      in.models = &store;
      in.estimator = &estimator;
      for (auto& s : specs) {
        JobView v;
        v.spec = &s;
        v.plan = s.initial_plan;
        v.remaining_samples = s.target_samples;
        in.jobs.push_back(v);
      }
      const auto assignments = policy.schedule(in);
      double total = 0.0;
      for (const auto& a : assignments) {
        const JobSpec& s = specs[static_cast<std::size_t>(a.job_id)];
        const ModelSpec& m = find_model(s.model_name);
        const PerfContext ctx = make_perf_context(cluster, a.placement);
        const double thr =
            oracle.measure_throughput(m, a.plan, s.global_batch, ctx);
        const double speedup = thr / base_thr[s.model_name];
        total += speedup;
        table.add_row({policy.name(), s.model_name,
                       std::to_string(a.placement.total_gpus()),
                       a.plan.display_name(), TextTable::fmt(speedup)});
      }
      table.add_row({policy.name(), "TOTAL (avg)", "-", "-",
                     TextTable::fmt(total / 2.0)});
    };
    std::cout << "--- " << model_a << " + " << model_b << " ---\n";
    EqualSharePolicy equal;
    RubickPolicy rubick;
    evaluate(equal);
    evaluate(rubick);
    table.print(std::cout);
    std::cout << "\n";
  };

  std::cout << "=== Fig. 8: throughput maximization across two jobs on one "
               "4-GPU server ===\n(speedup normalized to each job's rigid "
               "DP plan on 4 GPUs)\n\n";

  // The paper's pair. Under this repo's calibration both jobs have similar
  // GPU sensitivity, so Rubick's and the equal split coincide — the
  // interesting asymmetric case follows below.
  run_pair("RoBERTa", "T5");
  // Asymmetric sensitivities: ViT is latency-bound (flat curve) while T5
  // scales; Rubick should skew the allocation toward T5.
  run_pair("ViT", "T5");

  std::cout << "Expected shape (paper): the equal split wastes GPUs on the "
               "insensitive job;\nRubick's sensitivity-driven skew achieves "
               "a higher total normalized speedup.\n";
  return 0;
}
