// Fig. 3: throughput of execution-plan families under staged resource
// limits, for RoBERTa (3a) and T5 (3b). Stages follow the paper's caption:
//   S1: 4 servers x 8 GPUs     S2: 4 servers x 4 GPUs
//   S3: one 4-GPU server       S4: 1 GPU
//   S5: 1 GPU + 10 GB host-memory cap
// Entries are oracle-measured samples/s of the family's best member; "-"
// marks infeasible (OOM / invalid) combinations. The winner per stage is
// starred.
#include <functional>
#include <iostream>
#include <vector>

#include "cluster/cluster.h"
#include "common/table.h"
#include "common/units.h"
#include "model/model_spec.h"
#include "model/model_zoo.h"
#include "perf/analytic.h"
#include "perf/oracle.h"
#include "perf/profiler.h"
#include "plan/enumerate.h"
#include "plan/execution_plan.h"
#include "plan/memory_estimator.h"

using namespace rubick;

namespace {

struct Stage {
  const char* label;
  int gpus;
  int gpus_per_node;
  std::uint64_t host_cap;
};

struct Family {
  std::string label;
  std::function<bool(const ExecutionPlan&)> member;
};

double family_best(const GroundTruthOracle& oracle, const ClusterSpec& cluster,
                   const ModelSpec& model, int batch, const Stage& stage,
                   const Family& family) {
  MemoryEstimator estimator;
  PlanConstraints pc;
  pc.num_gpus = stage.gpus;
  pc.max_tp = std::min(stage.gpus, stage.gpus_per_node);
  const int nodes =
      (stage.gpus + stage.gpus_per_node - 1) / stage.gpus_per_node;
  pc.budget = MemoryBudget{cluster.node.gpu_memory_bytes,
                           stage.host_cap * static_cast<std::uint64_t>(nodes)};
  PerfContext ctx = make_perf_context(cluster, stage.gpus, 8 * nodes);
  ctx.multi_node = nodes > 1;

  double best = 0.0;
  for (const ExecutionPlan& plan :
       enumerate_plans(model, batch, pc, estimator)) {
    if (!family.member(plan)) continue;
    best = std::max(best,
                    oracle.measure_throughput(model, plan, batch, ctx));
  }
  return best;
}

void run_model(const GroundTruthOracle& oracle, const ClusterSpec& cluster,
               const char* model_name, const std::vector<Family>& families) {
  const ModelSpec& model = find_model(model_name);
  const int batch = model.default_global_batch;
  const Stage stages[] = {
      {"S1: 4x8 GPUs", 32, 8, gigabytes(1600)},
      {"S2: 4x4 GPUs", 16, 4, gigabytes(1600)},
      {"S3: 1x4 GPUs", 4, 4, gigabytes(1600)},
      {"S4: 1 GPU", 1, 1, gigabytes(1600)},
      {"S5: 1 GPU, 10GB mem", 1, 1, gigabytes(10)},
  };

  std::cout << "--- " << model.to_string() << " ---\n";
  std::vector<std::string> header = {"plan family"};
  for (const Stage& s : stages) header.push_back(s.label);
  TextTable table(header);

  std::vector<std::vector<double>> values(families.size());
  std::vector<double> stage_best(std::size(stages), 0.0);
  for (std::size_t f = 0; f < families.size(); ++f) {
    for (std::size_t s = 0; s < std::size(stages); ++s) {
      const double thr =
          family_best(oracle, cluster, model, batch, stages[s], families[f]);
      values[f].push_back(thr);
      stage_best[s] = std::max(stage_best[s], thr);
    }
  }
  for (std::size_t f = 0; f < families.size(); ++f) {
    std::vector<std::string> row = {families[f].label};
    for (std::size_t s = 0; s < std::size(stages); ++s) {
      const double thr = values[f][s];
      if (thr <= 0.0) {
        row.push_back("-");
      } else {
        std::string cell = TextTable::fmt(thr, 1);
        if (thr == stage_best[s]) cell += " *";
        row.push_back(cell);
      }
    }
    table.add_row(row);
  }
  table.print(std::cout);
  std::cout << "\n";
}

}  // namespace

int main() {
  const ClusterSpec cluster;
  const GroundTruthOracle oracle(2025);

  std::cout << "=== Fig. 3: throughput under staged resource limits "
               "(oracle-measured, * = best per stage) ===\n\n";

  const auto is_dp_family = [](const ExecutionPlan& p) {
    return p.tp == 1 && p.pp == 1;
  };

  // Fig. 3a: RoBERTa (DP-family plans only; TP/PP disabled for small
  // models as in the paper's traces).
  run_model(oracle, cluster, "RoBERTa",
            {
                {"DP", [&](const ExecutionPlan& p) {
                   return is_dp_family(p) && p.zero == ZeroStage::kNone &&
                          p.ga_steps == 1 && !p.grad_ckpt;
                 }},
                {"DP+GA", [&](const ExecutionPlan& p) {
                   return is_dp_family(p) && p.zero == ZeroStage::kNone &&
                          p.ga_steps > 1 && !p.grad_ckpt;
                 }},
                {"GC", [&](const ExecutionPlan& p) {
                   return is_dp_family(p) && p.zero == ZeroStage::kNone &&
                          p.grad_ckpt;
                 }},
                {"ZeRO-DP", [&](const ExecutionPlan& p) {
                   return p.zero == ZeroStage::kZeroDp;
                 }},
                {"ZeRO-Offload", [&](const ExecutionPlan& p) {
                   return p.zero == ZeroStage::kOffload;
                 }},
            });

  // Fig. 3b: T5 (model-parallel families in play).
  run_model(oracle, cluster, "T5",
            {
                {"TP+DP", [](const ExecutionPlan& p) {
                   return p.tp > 1 && p.pp == 1 && !p.grad_ckpt;
                 }},
                {"Megatron 3D", [](const ExecutionPlan& p) {
                   return p.tp > 1 && p.pp > 1;
                 }},
                {"TP+DP+GC", [](const ExecutionPlan& p) {
                   return p.tp > 1 && p.pp == 1 && p.grad_ckpt;
                 }},
                {"ZeRO-DP+GA", [](const ExecutionPlan& p) {
                   return p.zero == ZeroStage::kZeroDp;
                 }},
                {"ZeRO-Offload", [](const ExecutionPlan& p) {
                   return p.zero == ZeroStage::kOffload;
                 }},
            });

  std::cout << "Expected shape (paper): the best plan changes across stages;"
               "\nZeRO-Offload is the only survivor at 1 GPU for large models"
               "\nand dies under the 10 GB host-memory cap.\n";
  return 0;
}
