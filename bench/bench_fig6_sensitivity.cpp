// Fig. 6: the resource (GPU) sensitivity curve of GPT-2. For every GPU
// count we print the predicted throughput of each plan family's best member
// plus the best-plan envelope the scheduler actually uses; invalid GPU
// counts (no exact-count plan) leave the envelope flat.
#include <iostream>

#include "cluster/cluster.h"
#include "common/table.h"
#include "core/plan_selector.h"
#include "core/predictor.h"
#include "model/model_spec.h"
#include "model/model_zoo.h"
#include "perf/oracle.h"
#include "perf/perf_store.h"
#include "perf/profiler.h"
#include "plan/memory_estimator.h"

using namespace rubick;

int main() {
  const ClusterSpec cluster;
  const GroundTruthOracle oracle(2025);
  const ModelSpec& model = find_model("GPT-2");
  const int batch = model.default_global_batch;

  const Profiler profiler(oracle, cluster);
  PerfModelStore store;
  store.add(profiler.profile_and_fit(model, batch).model);
  MemoryEstimator estimator;
  BestPlanPredictor predictor(cluster, store, estimator);
  FullPlanSelector all_plans;

  std::cout << "=== Fig. 6: GPU sensitivity curve of GPT-2 (predicted "
               "samples/s) ===\n\n";

  TextTable table({"GPUs", "best exact plan", "exact thr.",
                   "envelope (curve)", "slope (+1 GPU)"});
  for (int g = 1; g <= 16; ++g) {
    const auto best =
        predictor.best_canonical(model, batch, all_plans, g, 2 * g);
    const double env = predictor.envelope(model, batch, all_plans, g, 2 * g);
    const double slope =
        predictor.gpu_slope_up(model, batch, all_plans, g, 2 * g);
    table.add_row({std::to_string(g),
                   best.feasible ? best.plan.display_name() : "(invalid)",
                   best.feasible ? TextTable::fmt(best.throughput) : "-",
                   TextTable::fmt(env), TextTable::fmt(slope)});
  }
  table.print(std::cout);

  std::cout << "\nExpected shape (paper): only a few GPU counts are valid "
               "(batch/layer divisibility);\nthe curve stays flat across "
               "invalid counts and the best plan changes along the way.\n";
  return 0;
}
