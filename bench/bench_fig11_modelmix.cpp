// Fig. 11: performance vs. the proportion of large models (LLaMA-2-7B /
// LLaMA-30B) in the trace. Reconfigurability widens the feasible resource
// range of large models (they can start early on few GPUs), so Rubick's
// advantage over Synergy should grow with the large-model share (paper:
// JCT gain 2.6x -> 3.4x).
#include <iostream>

#include "baselines/policy_factory.h"
#include "cluster/cluster.h"
#include "common/log.h"
#include "common/table.h"
#include "common/units.h"
#include "model/model_zoo.h"
#include "perf/oracle.h"
#include "perf/perf_store.h"
#include "sim/simulator.h"
#include "trace/trace_gen.h"

using namespace rubick;

int main() {
  // Keep the report machine-readable: rare requeue warnings go to the
  // error log only.
  set_log_level(LogLevel::kError);
  const ClusterSpec cluster;
  const GroundTruthOracle oracle(2025);
  const TraceGenerator gen(cluster, oracle);

  std::cout << "=== Fig. 11: performance vs. proportion of large models "
               "(Rubick vs Synergy) ===\n\n";

  std::map<std::string, double> costs;
  std::vector<std::string> names;
  for (const auto& m : model_zoo()) names.push_back(m.name);
  const PerfModelStore store =
      PerfModelStore::profile_models(oracle, cluster, names, 0, &costs);

  TextTable table({"large-model share", "Rubick JCT (h)", "Synergy JCT (h)",
                   "JCT gain", "makespan gain"});

  for (double fraction : {0.1, 0.2, 0.3, 0.4, 0.5}) {
    // Average over several trace seeds: a single 220-job draw is noisy in
    // how its large jobs land relative to the queue.
    double rubick_jct = 0.0, synergy_jct = 0.0;
    double rubick_mk = 0.0, synergy_mk = 0.0;
    const std::uint64_t seeds[] = {4, 5, 6};
    for (std::uint64_t seed : seeds) {
      TraceOptions opts;
      opts.seed = seed;
      opts.num_jobs = 220;
      opts.window_s = hours(12);
      opts.large_model_fraction = fraction;
      const auto jobs = gen.generate(opts);

      Simulator sim(cluster, oracle);
      const auto rubick = PolicyFactory::global().create("rubick");
      const auto synergy = PolicyFactory::global().create("synergy");
      const SimResult r = sim.run(jobs, *rubick, RunContext{&store, &costs});
      const SimResult s = sim.run(jobs, *synergy, RunContext{&store, &costs});
      rubick_jct += r.avg_jct_s();
      synergy_jct += s.avg_jct_s();
      rubick_mk += r.makespan_s;
      synergy_mk += s.makespan_s;
    }

    table.add_row({TextTable::fmt(100.0 * fraction, 0) + "%",
                   TextTable::fmt(to_hours(rubick_jct / 3.0)),
                   TextTable::fmt(to_hours(synergy_jct / 3.0)),
                   TextTable::fmt(synergy_jct / rubick_jct) + "x",
                   TextTable::fmt(synergy_mk / rubick_mk) + "x"});
  }
  table.print(std::cout);

  std::cout << "\nExpected shape (paper): the JCT gain increases with the "
               "large-model share.\n";
  return 0;
}
