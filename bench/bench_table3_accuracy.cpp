// Fig. 9 / Table 3: accuracy preservation under reconfiguration. Three
// model surrogates (stand-ins for GPT-2 / BERT / LLaMA-2-7B: distinct
// dataset + architecture seeds) each train 3000 mini-batches under several
// execution-plan partitionings of the SAME global batch — including live
// mid-run reconfigurations — and under a changed random seed. We report the
// maximum loss differences: reconfiguration must sit below the seed spread
// on train, validation and test sets.
#include <algorithm>
#include <cmath>
#include <iostream>
#include <vector>

#include "common/table.h"
#include "convergence/dataset.h"
#include "convergence/trainer.h"

using namespace rubick;

namespace {

struct Surrogate {
  const char* label;
  std::uint64_t data_seed;
  int features;
  int hidden;
};

double max_curve_diff(const TrainResult& a, const TrainResult& b) {
  double m = 0.0;
  for (std::size_t i = 0; i < a.loss_curve.size(); ++i)
    m = std::max(m, std::abs(a.loss_curve[i] - b.loss_curve[i]));
  return m;
}

}  // namespace

int main() {
  const Surrogate surrogates[] = {
      {"GPT-2 (surrogate)", 101, 32, 16},
      {"BERT (surrogate)", 202, 24, 12},
      {"LLaMA-2-7B (surrogate)", 303, 48, 24},
  };

  std::cout << "=== Table 3 / Fig. 9: max loss differences — "
               "reconfiguration (\"Rcfg.\") vs. changing seeds (\"Seed\") "
               "===\n(3000 mini-batches each; global batch fixed at 64)\n\n";

  TextTable table({"Model", "Train Rcfg.", "Train Seed", "Valid Rcfg.",
                   "Valid Seed", "Test Rcfg.", "Test Seed"});

  for (const Surrogate& s : surrogates) {
    const DatasetSplits data =
        make_synthetic_dataset(4096, s.features, s.data_seed);
    Trainer trainer(data);

    TrainerConfig base;
    base.optimizer = OptimizerKind::kAdam;  // what the paper's jobs run
    base.steps = 3000;
    base.hidden = s.hidden;
    base.seed = s.data_seed + 1;
    base.phases = {{0, 1, 1}};

    // Reconfiguration variants: different static partitionings plus two
    // live mid-run reconfigurations.
    std::vector<std::vector<TrainPhase>> variants = {
        {{0, 4, 1}},
        {{0, 2, 2}},
        {{0, 1, 8}},
        {{0, 1, 1}, {1000, 4, 1}, {2000, 2, 2}},
        {{0, 8, 1}, {1500, 1, 4}},
    };

    const TrainResult rb = trainer.train(base);

    double rcfg_train = 0.0, rcfg_val = 0.0, rcfg_test = 0.0;
    for (const auto& phases : variants) {
      TrainerConfig cfg = base;
      cfg.phases = phases;
      const TrainResult r = trainer.train(cfg);
      rcfg_train = std::max(rcfg_train, max_curve_diff(rb, r));
      rcfg_val = std::max(rcfg_val, std::abs(r.final_validation_loss -
                                             rb.final_validation_loss));
      rcfg_test =
          std::max(rcfg_test, std::abs(r.final_test_loss - rb.final_test_loss));
    }

    double seed_train = 0.0, seed_val = 0.0, seed_test = 0.0;
    for (std::uint64_t seed_offset : {7ull, 13ull}) {
      TrainerConfig cfg = base;
      cfg.seed = base.seed + seed_offset;
      const TrainResult r = trainer.train(cfg);
      seed_train = std::max(seed_train, max_curve_diff(rb, r));
      seed_val = std::max(seed_val, std::abs(r.final_validation_loss -
                                             rb.final_validation_loss));
      seed_test =
          std::max(seed_test, std::abs(r.final_test_loss - rb.final_test_loss));
    }

    table.add_row({s.label, TextTable::fmt(rcfg_train, 4),
                   TextTable::fmt(seed_train, 4), TextTable::fmt(rcfg_val, 4),
                   TextTable::fmt(seed_val, 4), TextTable::fmt(rcfg_test, 4),
                   TextTable::fmt(seed_test, 4)});
  }
  table.print(std::cout);

  // --- Fig. 9 companion: the loss curves themselves (GPT-2 surrogate). ---
  // Every series is the same run at 60-step resolution; the reconfigured
  // run is indistinguishable from the baseline while the reseeded run
  // wanders.
  {
    const Surrogate& s = surrogates[0];
    const DatasetSplits data =
        make_synthetic_dataset(4096, s.features, s.data_seed);
    Trainer trainer(data);
    TrainerConfig base;
    base.optimizer = OptimizerKind::kAdam;
    base.steps = 3000;
    base.hidden = s.hidden;
    base.seed = s.data_seed + 1;
    TrainerConfig rcfg = base;
    rcfg.phases = {{0, 1, 1}, {1000, 4, 1}, {2000, 2, 2}};
    TrainerConfig reseeded = base;
    reseeded.seed = base.seed + 7;

    auto curve = [&](const TrainerConfig& cfg) {
      return trainer.train(cfg).loss_curve;
    };
    const auto a = curve(base);
    const auto b = curve(rcfg);
    const auto c = curve(reseeded);
    double lo = 1e9, hi = -1e9;
    for (const auto* v : {&a, &b, &c})
      for (double x : *v) {
        lo = std::min(lo, x);
        hi = std::max(hi, x);
      }
    auto render = [&](const std::vector<double>& v) {
      static const char* kLevels = " .:-=+*#";
      std::string out;
      for (std::size_t i = 0; i < v.size(); i += 2) {  // thin the curve
        const double u = hi > lo ? (v[i] - lo) / (hi - lo) : 0.0;
        out.push_back(
            kLevels[std::clamp(static_cast<int>(std::lround(u * 7)), 0, 7)]);
      }
      return out;
    };
    std::cout << "\nFig. 9 (GPT-2 surrogate train-loss curves, high = worse):"
              << "\n  baseline     [" << render(a) << "]"
              << "\n  reconfigured [" << render(b) << "]"
              << "\n  reseeded     [" << render(c) << "]\n";
  }

  std::cout << "\nExpected shape (paper Table 3): every \"Rcfg.\" column is "
               "at most the matching \"Seed\" column —\nreconfigurations "
               "that preserve the global batch do not disturb training.\n";
  return 0;
}
