// Extension benchmark: heterogeneous GPU pods. Four nodes run at full
// speed, four at half speed (think A800s next to a previous generation).
// Gang-synchronous jobs pace at their slowest GPU, so placement quality
// matters twice: picking the right plan AND keeping a job's GPUs
// speed-uniform. Rubick's speed-aware node ordering plus reconfigurability
// is compared against the baselines, and against the same policies on a
// homogeneous cluster of equal aggregate capacity (6 reference nodes).
#include <iostream>

#include "baselines/policy_factory.h"
#include "cluster/cluster.h"
#include "common/log.h"
#include "common/table.h"
#include "common/units.h"
#include "model/model_zoo.h"
#include "perf/oracle.h"
#include "perf/perf_store.h"
#include "sim/simulator.h"
#include "trace/trace_gen.h"

using namespace rubick;

namespace {

void run_cluster(const char* label, const ClusterSpec& cluster,
                 TextTable& table) {
  const GroundTruthOracle oracle(2025);
  const TraceGenerator gen(cluster, oracle);
  TraceOptions opts;
  opts.seed = 6;
  opts.num_jobs = 150;
  opts.window_s = hours(8);
  const auto jobs = gen.generate(opts);

  std::vector<std::string> names;
  for (const auto& m : model_zoo()) names.push_back(m.name);
  std::map<std::string, double> costs;
  const PerfModelStore store =
      PerfModelStore::profile_models(oracle, cluster, names, 0, &costs);

  for (const char* policy_name : {"rubick", "sia", "synergy"}) {
    auto policy = PolicyFactory::global().create(policy_name);
    Simulator sim(cluster, oracle);
    const SimResult r = sim.run(jobs, *policy, RunContext{&store, &costs});
    table.add_row({label, policy->name(),
                   TextTable::fmt(to_hours(r.avg_jct_s())),
                   TextTable::fmt(to_hours(r.jct_summary().p99)),
                   TextTable::fmt(to_hours(r.makespan_s)),
                   TextTable::fmt(100.0 * r.timeline.average_utilization(),
                                  0) + "%"});
  }
}

}  // namespace

int main() {
  // Keep the report machine-readable: rare requeue warnings go to the
  // error log only.
  set_log_level(LogLevel::kError);
  std::cout << "=== Extension: heterogeneous GPU pods (4 fast + 4 "
               "half-speed nodes vs. 6 uniform nodes of equal aggregate "
               "capacity) ===\n\n";

  TextTable table({"cluster", "scheduler", "avg JCT (h)", "P99 JCT (h)",
                   "makespan (h)", "avg util"});

  ClusterSpec hetero;
  hetero.node_speed = {1.0, 1.0, 1.0, 1.0, 0.5, 0.5, 0.5, 0.5};
  run_cluster("hetero 4+4", hetero, table);

  ClusterSpec uniform;
  uniform.num_nodes = 6;  // 4*1.0 + 4*0.5 = 6 node-equivalents
  run_cluster("uniform 6", uniform, table);

  table.print(std::cout);

  std::cout << "\nExpected shape: Rubick stays ahead of the baselines on "
               "the heterogeneous pod, and\nthe heterogeneity tax (hetero "
               "vs. equal-capacity uniform) is smaller for Rubick\nbecause "
               "speed-aware placement avoids pacing whole gangs at the slow "
               "GPUs.\n";
  return 0;
}
