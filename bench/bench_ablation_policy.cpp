// Ablation: the Rubick scheduling policy's own design knobs, measured
// end-to-end on a base trace.
//
//   * opportunistic admission on/off — admit guaranteed jobs below minRes
//     and grow them, vs. strict gang admission at minRes;
//   * reconfiguration-penalty gate threshold — how aggressively jobs may be
//     reconfigured ((T - N*delta)/T >= threshold, paper uses 0.97);
//   * plan-switch margin — required predicted gain before switching plans
//     at an unchanged placement;
//   * checkpoint-resume cost delta — flat sweep plus the size-dependent
//     model (16 bytes/param over a 5 GB/s checkpoint store).
#include <iostream>

#include "cluster/cluster.h"
#include "common/log.h"
#include "common/table.h"
#include "common/units.h"
#include "core/rubick_policy.h"
#include "perf/oracle.h"
#include "perf/perf_store.h"
#include "sim/simulator.h"
#include "trace/trace_gen.h"

using namespace rubick;

int main() {
  // Keep the report machine-readable: rare requeue warnings go to the
  // error log only.
  set_log_level(LogLevel::kError);
  const ClusterSpec cluster;
  const GroundTruthOracle oracle(2025);
  const TraceGenerator gen(cluster, oracle);
  TraceOptions opts;
  opts.seed = 2;
  opts.num_jobs = 200;
  opts.window_s = hours(10);
  const auto jobs = gen.generate(opts);

  std::vector<std::string> names;
  for (const auto& j : jobs) names.push_back(j.model_name);
  std::map<std::string, double> costs;
  const PerfModelStore store =
      PerfModelStore::profile_models(oracle, cluster, names, 0, &costs);

  TextTable table(
      {"configuration", "avg JCT (h)", "P99 JCT (h)", "makespan (h)",
       "reconfigs"});
  auto run = [&](const std::string& label, const RubickConfig& config,
                 const SimOptions& sim_opts) {
    Simulator sim(cluster, oracle, sim_opts);
    RubickPolicy policy(config);
    const SimResult r = sim.run(jobs, policy, RunContext{&store, &costs});
    int reconfigs = 0;
    for (const auto& j : r.jobs) reconfigs += j.reconfig_count;
    table.add_row({label, TextTable::fmt(to_hours(r.avg_jct_s())),
                   TextTable::fmt(to_hours(r.jct_summary().p99)),
                   TextTable::fmt(to_hours(r.makespan_s)),
                   std::to_string(reconfigs)});
  };

  std::cout << "=== Ablation: Rubick policy knobs (200-job base trace) "
               "===\n\n";

  run("default", RubickConfig{}, SimOptions{});

  {
    RubickConfig c;
    c.opportunistic_admission = false;
    run("strict minRes admission", c, SimOptions{});
  }
  for (double gate : {0.90, 0.99}) {
    RubickConfig c;
    c.gate_threshold = gate;
    run("gate threshold " + TextTable::fmt(gate, 2), c, SimOptions{});
  }
  for (double gain : {1.0, 1.25}) {
    RubickConfig c;
    c.plan_switch_gain = gain;
    run("plan-switch margin " + TextTable::fmt(gain, 2), c, SimOptions{});
  }
  for (double delta : {0.0, 156.0, 312.0}) {
    SimOptions so;
    so.reconfig_penalty_s = delta;
    run("delta = " + TextTable::fmt(delta, 0) + " s", RubickConfig{}, so);
  }
  {
    SimOptions so;
    so.size_dependent_reconfig_cost = true;
    run("size-dependent delta (16B/param @ 5 GB/s)", RubickConfig{}, so);
  }

  table.print(std::cout);

  std::cout << "\nExpected shape: opportunistic admission and the 0.97 gate "
               "are load-bearing;\nJCT degrades gracefully as the "
               "checkpoint-resume cost grows (the paper's\n78 s costs ~1% "
               "of GPU-hours).\n";
  return 0;
}
