// Table 2: performance-model prediction errors. For each of the seven
// models, fit from the profiler's sampled runs (>= 7 points, 3 offload when
// feasible), then predict ~20 unseen configurations — four plan families
// across five allocations — and report avg/max percentage error against the
// oracle's measured throughput. "/" marks families with no feasible
// configuration in the model's GPU range (OOM), as in the paper.
#include <cmath>
#include <functional>
#include <iostream>
#include <vector>

#include "cluster/cluster.h"
#include "common/table.h"
#include "model/model_spec.h"
#include "model/model_zoo.h"
#include "perf/analytic.h"
#include "perf/fitter.h"
#include "perf/oracle.h"
#include "perf/profiler.h"
#include "plan/enumerate.h"
#include "plan/execution_plan.h"
#include "plan/memory_estimator.h"

using namespace rubick;

namespace {

struct Family {
  std::string label;
  std::function<bool(const ExecutionPlan&)> member;
};

struct ErrStats {
  int count = 0;
  double sum = 0.0, max = 0.0;
  void add(double e) {
    ++count;
    sum += e;
    max = std::max(max, e);
  }
  std::string avg_str() const {
    return count == 0 ? "/" : TextTable::fmt(100.0 * sum / count) + "%";
  }
  std::string max_str() const {
    return count == 0 ? "/" : TextTable::fmt(100.0 * max) + "%";
  }
};

// Evaluates one family on up to five held-out allocations.
ErrStats evaluate(const GroundTruthOracle& oracle, const ClusterSpec& cluster,
                  const PerfModel& fitted, const ModelSpec& model, int batch,
                  const Family& family, const std::vector<int>& gpu_points) {
  MemoryEstimator estimator;
  ErrStats stats;
  for (int g : gpu_points) {
    if (stats.count >= 5) break;
    PlanConstraints pc;
    pc.num_gpus = g;
    pc.max_tp = std::min(g, cluster.node.gpus);
    pc.budget = make_memory_budget(cluster, g);
    // First family member at this GPU count (deterministic enumeration).
    const ExecutionPlan* chosen = nullptr;
    const auto plans = enumerate_plans(model, batch, pc, estimator);
    for (const auto& p : plans)
      if (family.member(p)) {
        chosen = &p;
        break;
      }
    if (chosen == nullptr) continue;
    const PerfContext ctx = make_perf_context(cluster, g, 4 * g);
    const double measured =
        oracle.measure_throughput(model, *chosen, batch, ctx);
    const double predicted =
        fitted.predict_throughput(model, *chosen, batch, ctx);
    stats.add(std::abs(predicted - measured) / measured);
  }
  return stats;
}

}  // namespace

int main() {
  const ClusterSpec cluster;
  const GroundTruthOracle oracle(2025);
  const Profiler profiler(oracle, cluster);

  const auto is_plain_dp = [](const ExecutionPlan& p) {
    return p.tp == 1 && p.pp == 1 && p.zero == ZeroStage::kNone &&
           !p.grad_ckpt;
  };
  const Family small_families[] = {
      {"DP", is_plain_dp},
      {"GC", [](const ExecutionPlan& p) {
         return p.tp == 1 && p.pp == 1 && p.zero == ZeroStage::kNone &&
                p.grad_ckpt;
       }},
      {"ZeRO-DP+GA", [](const ExecutionPlan& p) {
         return p.zero == ZeroStage::kZeroDp;
       }},
      {"ZeRO-Offload", [](const ExecutionPlan& p) {
         return p.zero == ZeroStage::kOffload;
       }},
  };
  const Family large_families[] = {
      {"TP+PP", [](const ExecutionPlan& p) {
         return p.dp == 1 && (p.tp > 1 || p.pp > 1);
       }},
      {"DP+TP+PP", [](const ExecutionPlan& p) {
         return p.dp > 1 && (p.tp > 1 || p.pp > 1);
       }},
      {"ZeRO-DP+GA", [](const ExecutionPlan& p) {
         return p.zero == ZeroStage::kZeroDp;
       }},
      {"ZeRO-Offload", [](const ExecutionPlan& p) {
         return p.zero == ZeroStage::kOffload;
       }},
  };

  struct ModelRow {
    const char* name;
    bool large;
    std::vector<int> gpu_points;
  };
  const ModelRow rows[] = {
      {"ViT", false, {1, 2, 4, 6, 8}},
      {"RoBERTa", false, {1, 2, 4, 6, 8}},
      {"BERT", false, {1, 2, 4, 6, 8}},
      {"T5", true, {1, 4, 8, 16, 32}},
      {"GPT-2", true, {1, 4, 8, 16, 30}},
      {"LLaMA-2-7B", true, {1, 8, 16, 32, 64}},
      {"LLaMA-30B", true, {12, 16, 32, 48, 64}},
  };

  std::cout << "=== Table 2: performance prediction errors (fit on profiled "
               "samples, evaluate on unseen configs) ===\n\n";

  for (const bool large : {false, true}) {
    const Family* families = large ? large_families : small_families;
    std::vector<std::string> header = {"Model", "#GPUs"};
    for (int f = 0; f < 4; ++f) {
      header.push_back(families[f].label + " avg");
      header.push_back(families[f].label + " max");
    }
    TextTable table(header);
    for (const ModelRow& row : rows) {
      if (row.large != large) continue;
      const ModelSpec& model = find_model(row.name);
      const int batch = model.default_global_batch;
      const auto fit = profiler.profile_and_fit(model, batch);
      std::vector<std::string> cells = {
          row.name, "[" + std::to_string(row.gpu_points.front()) + "-" +
                        std::to_string(row.gpu_points.back()) + "]"};
      for (int f = 0; f < 4; ++f) {
        const ErrStats stats = evaluate(oracle, cluster, fit.model, model,
                                        batch, families[f], row.gpu_points);
        cells.push_back(stats.avg_str());
        cells.push_back(stats.max_str());
      }
      table.add_row(cells);
    }
    table.print(std::cout);
    std::cout << "\n";
  }

  std::cout << "Expected shape (paper): average errors of a few percent, "
               "max around 10%;\n\"/\" where a family is infeasible (e.g. "
               "ZeRO on LLaMA-30B).\n";
  return 0;
}
