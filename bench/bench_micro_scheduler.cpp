// Micro-benchmarks (google-benchmark) for the scheduler's own machinery:
// plan enumeration, analytic prediction, model fitting, sensitivity-curve
// construction and a full scheduling round at 64-GPU scale. These bound the
// control-plane cost of running Rubick in a real cluster (the paper's
// scheduler makes decisions at job arrival/completion granularity, so
// per-round latencies in the milliseconds are ample).
#include <benchmark/benchmark.h>

#include "common/threadpool.h"
#include "core/plan_selector.h"
#include "core/predictor.h"
#include "core/rubick_policy.h"
#include "model/model_zoo.h"
#include "perf/oracle.h"
#include "perf/profiler.h"
#include "sim/perf_store.h"
#include "trace/trace_gen.h"

namespace rubick {
namespace {

const ClusterSpec& cluster() {
  static const ClusterSpec spec;
  return spec;
}

const GroundTruthOracle& oracle() {
  static const GroundTruthOracle o(2025);
  return o;
}

const PerfModelStore& store() {
  static const PerfModelStore s = [] {
    std::vector<std::string> names;
    for (const auto& m : model_zoo()) names.push_back(m.name);
    return PerfModelStore::profile_models(oracle(), cluster(), names);
  }();
  return s;
}

void BM_PlanEnumeration(benchmark::State& state) {
  const ModelSpec& model = find_model("LLaMA-2-7B");
  MemoryEstimator est;
  PlanConstraints pc;
  pc.num_gpus = static_cast<int>(state.range(0));
  pc.max_tp = 8;
  pc.budget = make_memory_budget(cluster(), pc.num_gpus);
  for (auto _ : state) {
    benchmark::DoNotOptimize(enumerate_plans(model, 16, pc, est));
  }
}
BENCHMARK(BM_PlanEnumeration)->Arg(8)->Arg(32)->Arg(64);

void BM_AnalyticPrediction(benchmark::State& state) {
  const ModelSpec& model = find_model("GPT-2");
  const FitParams params;
  const PerfContext ctx = make_perf_context(cluster(), 8, 16);
  const ExecutionPlan plan = make_zero_dp(8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        predict_throughput(model, plan, 16, 0.01, params, ctx));
  }
}
BENCHMARK(BM_AnalyticPrediction);

void BM_ModelFit(benchmark::State& state) {
  const Profiler profiler(oracle(), cluster());
  const ModelSpec& model = find_model("GPT-2");
  auto samples = profiler.choose_samples(model, 16);
  for (auto& s : samples)
    s.measured_throughput =
        oracle().measure_throughput(model, s.plan, s.global_batch, s.ctx);
  const double fwd = oracle().profiled_fwd_unit_s(model);
  const PerfModelFitter fitter;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fitter.fit(model, fwd, samples));
  }
}
BENCHMARK(BM_ModelFit)->Unit(benchmark::kMillisecond);

void BM_SensitivityCurve(benchmark::State& state) {
  const ModelSpec& model = find_model(
      state.range(0) == 0 ? "BERT" : "LLaMA-2-7B");
  MemoryEstimator est;
  FullPlanSelector sel;
  for (auto _ : state) {
    // Fresh predictor per iteration: measures uncached curve construction.
    BestPlanPredictor predictor(cluster(), store(), est);
    double sum = 0.0;
    for (int g = 1; g <= 64; ++g)
      sum += predictor.envelope(model, model.default_global_batch, sel, g,
                                2 * g);
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_SensitivityCurve)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_WarmParallel(benchmark::State& state) {
  // Full 64-GPU curve warm-up for a model-parallel LLM across a pool of
  // Arg(0) threads. Arg(0)=1 is the serial baseline; the acceptance target
  // is >= 2x at 4+ threads on multi-core hardware.
  const ModelSpec& model = find_model("LLaMA-2-7B");
  MemoryEstimator est;
  FullPlanSelector sel;
  ThreadPool pool(static_cast<int>(state.range(0)));
  const PerfModelStore& fitted = store();  // profile outside the timed loop
  CacheStats cache;
  for (auto _ : state) {
    // Fresh predictor per iteration: measures uncached warm-up end to end.
    BestPlanPredictor predictor(cluster(), fitted, est);
    predictor.warm(model, model.default_global_batch, sel, 64,
                   /*cpus_per_gpu=*/2, &pool);
    benchmark::DoNotOptimize(predictor.cache_size());
    cache += predictor.cache_stats();
  }
  const ThreadPoolStats pool_stats = pool.stats();
  state.counters["cache_inserts"] = benchmark::Counter(
      static_cast<double>(cache.inserts), benchmark::Counter::kAvgIterations);
  state.counters["pool_tasks"] = benchmark::Counter(
      static_cast<double>(pool_stats.tasks_executed),
      benchmark::Counter::kAvgIterations);
  state.counters["pool_busy_s"] = benchmark::Counter(
      pool_stats.busy_s, benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_WarmParallel)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_MemoryEstimate(benchmark::State& state) {
  const ModelSpec& model = find_model("LLaMA-2-7B");
  MemoryEstimator est;
  const ExecutionPlan plan = make_zero3(8, 2);
  const MemoryBudget budget = make_memory_budget(cluster(), 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(est.estimate(model, plan, 16, budget));
  }
}
BENCHMARK(BM_MemoryEstimate);

void BM_OracleMeasure(benchmark::State& state) {
  const ModelSpec& model = find_model("GPT-2");
  const PerfContext ctx = make_perf_context(cluster(), 8, 16);
  const ExecutionPlan plan = make_zero_dp(8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        oracle().measure_throughput(model, plan, 16, ctx));
  }
}
BENCHMARK(BM_OracleMeasure);

void BM_TraceGeneration(benchmark::State& state) {
  const TraceGenerator gen(cluster(), oracle());
  TraceOptions opts;
  opts.seed = 3;
  opts.num_jobs = static_cast<int>(state.range(0));
  opts.window_s = 12.0 * 3600.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen.generate(opts));
  }
}
BENCHMARK(BM_TraceGeneration)->Arg(100)->Arg(406)
    ->Unit(benchmark::kMillisecond);

void BM_ScheduleRound(benchmark::State& state) {
  const int num_jobs = static_cast<int>(state.range(0));
  const TraceGenerator gen(cluster(), oracle());
  TraceOptions opts;
  opts.seed = 11;
  opts.num_jobs = num_jobs;
  opts.window_s = 3600.0;
  const auto jobs = gen.generate(opts);

  MemoryEstimator est;
  SchedulerInput input;
  input.cluster = &cluster();
  input.models = &store();
  input.estimator = &est;
  for (const auto& j : jobs) {
    JobView v;
    v.spec = &j;
    v.plan = j.initial_plan;
    v.remaining_samples = j.target_samples;
    v.queued_since = j.submit_time_s;
    input.jobs.push_back(v);
  }
  CacheStats cache;
  for (auto _ : state) {
    // Fresh policy per iteration: measures a cold scheduling round
    // (including curve construction) over `num_jobs` queued jobs.
    RubickPolicy policy;
    benchmark::DoNotOptimize(policy.schedule(input));
    cache += policy.cache_stats();
  }
  state.counters["cache_hits"] = benchmark::Counter(
      static_cast<double>(cache.hits), benchmark::Counter::kAvgIterations);
  state.counters["cache_misses"] = benchmark::Counter(
      static_cast<double>(cache.misses), benchmark::Counter::kAvgIterations);
  state.counters["cache_hit_rate"] = benchmark::Counter(cache.hit_rate());
}
BENCHMARK(BM_ScheduleRound)->Arg(10)->Arg(50)->Arg(100)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace rubick

BENCHMARK_MAIN();
