// Micro-benchmarks (google-benchmark) for the scheduler's own machinery:
// plan enumeration, analytic prediction, model fitting, sensitivity-curve
// construction and a full scheduling round at 64-GPU scale. These bound the
// control-plane cost of running Rubick in a real cluster (the paper's
// scheduler makes decisions at job arrival/completion granularity, so
// per-round latencies in the milliseconds are ample).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <iterator>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "common/threadpool.h"
#include "core/decide_index.h"
#include "core/plan_selector.h"
#include "core/predictor.h"
#include "core/rubick_policy.h"
#include "core/scheduler.h"
#include "model/model_spec.h"
#include "model/model_zoo.h"
#include "perf/analytic.h"
#include "perf/fitter.h"
#include "perf/oracle.h"
#include "perf/perf_store.h"
#include "perf/profiler.h"
#include "plan/enumerate.h"
#include "plan/execution_plan.h"
#include "plan/memory_estimator.h"
#include "plan/plan_cache.h"
#include "telemetry/metrics.h"
#include "trace/job.h"
#include "trace/trace_gen.h"

namespace rubick {
namespace {

const ClusterSpec& cluster() {
  static const ClusterSpec spec;
  return spec;
}

const GroundTruthOracle& oracle() {
  static const GroundTruthOracle o(2025);
  return o;
}

const PerfModelStore& store() {
  static const PerfModelStore s = [] {
    std::vector<std::string> names;
    for (const auto& m : model_zoo()) names.push_back(m.name);
    return PerfModelStore::profile_models(oracle(), cluster(), names);
  }();
  return s;
}

void BM_PlanEnumeration(benchmark::State& state) {
  const ModelSpec& model = find_model("LLaMA-2-7B");
  MemoryEstimator est;
  PlanConstraints pc;
  pc.num_gpus = static_cast<int>(state.range(0));
  pc.max_tp = 8;
  pc.budget = make_memory_budget(cluster(), pc.num_gpus);
  for (auto _ : state) {
    benchmark::DoNotOptimize(enumerate_plans(model, 16, pc, est));
  }
}
BENCHMARK(BM_PlanEnumeration)->Arg(8)->Arg(32)->Arg(64);

void BM_AnalyticPrediction(benchmark::State& state) {
  const ModelSpec& model = find_model("GPT-2");
  const FitParams params;
  const PerfContext ctx = make_perf_context(cluster(), 8, 16);
  const ExecutionPlan plan = make_zero_dp(8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        predict_throughput(model, plan, 16, 0.01, params, ctx));
  }
}
BENCHMARK(BM_AnalyticPrediction);

void BM_ModelFit(benchmark::State& state) {
  const Profiler profiler(oracle(), cluster());
  const ModelSpec& model = find_model("GPT-2");
  auto samples = profiler.choose_samples(model, 16);
  for (auto& s : samples)
    s.measured_throughput =
        oracle().measure_throughput(model, s.plan, s.global_batch, s.ctx);
  const double fwd = oracle().profiled_fwd_unit_s(model);
  const PerfModelFitter fitter;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fitter.fit(model, fwd, samples));
  }
}
BENCHMARK(BM_ModelFit)->Unit(benchmark::kMillisecond);

void BM_SensitivityCurve(benchmark::State& state) {
  const ModelSpec& model = find_model(
      state.range(0) == 0 ? "BERT" : "LLaMA-2-7B");
  MemoryEstimator est;
  FullPlanSelector sel;
  for (auto _ : state) {
    // Fresh predictor per iteration: measures uncached curve construction.
    BestPlanPredictor predictor(cluster(), store(), est);
    double sum = 0.0;
    for (int g = 1; g <= 64; ++g)
      sum += predictor.envelope(model, model.default_global_batch, sel, g,
                                2 * g);
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_SensitivityCurve)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_WarmParallel(benchmark::State& state) {
  // Full 64-GPU curve warm-up for a model-parallel LLM across a pool of
  // Arg(0) threads. Arg(0)=1 is the serial baseline; the acceptance target
  // is >= 2x at 4+ threads on multi-core hardware.
  const ModelSpec& model = find_model("LLaMA-2-7B");
  MemoryEstimator est;
  FullPlanSelector sel;
  ThreadPool pool(static_cast<int>(state.range(0)));
  const PerfModelStore& fitted = store();  // profile outside the timed loop
  CacheStats cache;
  for (auto _ : state) {
    // Fresh predictor per iteration: measures uncached warm-up end to end.
    BestPlanPredictor predictor(cluster(), fitted, est);
    predictor.warm(model, model.default_global_batch, sel, 64,
                   /*cpus_per_gpu=*/2, &pool);
    benchmark::DoNotOptimize(predictor.cache_size());
    cache += predictor.cache_stats();
  }
  const ThreadPoolStats pool_stats = pool.stats();
  state.counters["cache_inserts"] = benchmark::Counter(
      static_cast<double>(cache.inserts), benchmark::Counter::kAvgIterations);
  state.counters["pool_tasks"] = benchmark::Counter(
      static_cast<double>(pool_stats.tasks_executed),
      benchmark::Counter::kAvgIterations);
  state.counters["pool_busy_s"] = benchmark::Counter(
      pool_stats.busy_s, benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_WarmParallel)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_MemoryEstimate(benchmark::State& state) {
  const ModelSpec& model = find_model("LLaMA-2-7B");
  MemoryEstimator est;
  const ExecutionPlan plan = make_zero3(8, 2);
  const MemoryBudget budget = make_memory_budget(cluster(), 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(est.estimate(model, plan, 16, budget));
  }
}
BENCHMARK(BM_MemoryEstimate);

void BM_OracleMeasure(benchmark::State& state) {
  const ModelSpec& model = find_model("GPT-2");
  const PerfContext ctx = make_perf_context(cluster(), 8, 16);
  const ExecutionPlan plan = make_zero_dp(8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        oracle().measure_throughput(model, plan, 16, ctx));
  }
}
BENCHMARK(BM_OracleMeasure);

void BM_TraceGeneration(benchmark::State& state) {
  const TraceGenerator gen(cluster(), oracle());
  TraceOptions opts;
  opts.seed = 3;
  opts.num_jobs = static_cast<int>(state.range(0));
  opts.window_s = 12.0 * 3600.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen.generate(opts));
  }
}
BENCHMARK(BM_TraceGeneration)->Arg(100)->Arg(406)
    ->Unit(benchmark::kMillisecond);

// Queued-jobs scheduler input for an N-job trace (seed 11, 1-hour window).
SchedulerInput make_round_input(const std::vector<JobSpec>& jobs,
                                const MemoryEstimator& est) {
  SchedulerInput input;
  input.cluster = &cluster();
  input.models = &store();
  input.estimator = &est;
  for (const auto& j : jobs) {
    JobView v;
    v.spec = &j;
    v.plan = j.initial_plan;
    v.remaining_samples = j.target_samples;
    v.queued_since = j.submit_time_s;
    input.jobs.push_back(v);
  }
  return input;
}

std::vector<JobSpec> make_round_jobs(int num_jobs) {
  const TraceGenerator gen(cluster(), oracle());
  TraceOptions opts;
  opts.seed = 11;
  opts.num_jobs = num_jobs;
  opts.window_s = 3600.0;
  return gen.generate(opts);
}

// Second benchmark argument on the round benches: 0 = DecideEngine::kIndexed
// (production), 1 = kLegacyScan (the pre-index full-fleet scan loop, kept as
// the executable spec — see DESIGN.md §14). Decisions are byte-identical;
// only the decide-phase cost differs.
DecideEngine decide_engine_arg(std::int64_t v) {
  return v == 0 ? DecideEngine::kIndexed : DecideEngine::kLegacyScan;
}

void BM_ScheduleRound(benchmark::State& state) {
  const int num_jobs = static_cast<int>(state.range(0));
  const auto jobs = make_round_jobs(num_jobs);
  MemoryEstimator est;
  const SchedulerInput input = make_round_input(jobs, est);
  RubickConfig config;
  config.decide_engine = decide_engine_arg(state.range(1));
  CacheStats cache;
  for (auto _ : state) {
    // Fresh policy per iteration: measures a cold scheduling round (curve
    // construction and all) over `num_jobs` queued jobs. Candidate plan
    // sets come from the process-wide PlanSetCache, so after the first
    // iteration this is "cold predictor, warm plan cache" — the state a
    // long-lived scheduler process is actually in after a model refit.
    RubickPolicy policy(config);
    benchmark::DoNotOptimize(policy.schedule(input));
    cache += policy.cache_stats();
  }
  state.counters["cache_hits"] = benchmark::Counter(
      static_cast<double>(cache.hits), benchmark::Counter::kAvgIterations);
  state.counters["cache_misses"] = benchmark::Counter(
      static_cast<double>(cache.misses), benchmark::Counter::kAvgIterations);
  state.counters["cache_hit_rate"] = benchmark::Counter(cache.hit_rate());
}
BENCHMARK(BM_ScheduleRound)
    ->Args({10, 0})
    ->Args({50, 0})
    ->Args({100, 0})
    ->Args({100, 1})
    // Large fleets: the decide phase dominates the cold round, so the
    // engines pull apart (the legacy scan is O(jobs^2 x gpus)).
    ->Args({500, 0})
    ->Args({500, 1})
    ->Args({1000, 0})
    ->Args({1000, 1})
    ->Args({2000, 0})
    ->Args({2000, 1})
    ->Unit(benchmark::kMillisecond);

void BM_ScheduleRoundSteady(benchmark::State& state) {
  // Steady state: one policy scheduling the same round repeatedly. With the
  // round digest unchanged, every iteration after the first replays the
  // previous assignments (the round-level fast path). Arg(1)==0 disables
  // the fast path, measuring a fully warmed slow-path round instead —
  // Arg(2) then picks the decide engine doing that work (with the fast
  // path on, the digest replay never reaches the decide phase and the
  // engines are indistinguishable).
  const int num_jobs = static_cast<int>(state.range(0));
  const auto jobs = make_round_jobs(num_jobs);
  MemoryEstimator est;
  const SchedulerInput input = make_round_input(jobs, est);
  RubickConfig config;
  config.enable_fast_path = state.range(1) != 0;
  config.decide_engine = decide_engine_arg(state.range(2));
  RubickPolicy policy(config);
  policy.schedule(input);  // warm curves + caches outside the timed loop
  for (auto _ : state) {
    benchmark::DoNotOptimize(policy.schedule(input));
  }
  state.counters["fast_path_rounds"] = benchmark::Counter(
      static_cast<double>(policy.fast_path_rounds()));
}
BENCHMARK(BM_ScheduleRoundSteady)
    ->Args({100, 1, 0})
    ->Args({100, 0, 0})
    ->Args({100, 0, 1})
    ->Args({500, 0, 0})
    ->Args({500, 0, 1})
    ->Args({1000, 0, 0})
    ->Args({1000, 0, 1})
    ->Args({2000, 0, 0})
    ->Args({2000, 0, 1})
    ->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// BENCH_sched.json: decision-latency percentiles + cache counters, written
// when --sched-json=PATH is passed (see README "Benchmarks"). The pre-PR
// baseline constants let CI flag regressions without rebuilding the old
// tree.
// ---------------------------------------------------------------------------

struct LatencySummary {
  double mean_s = 0.0, p50_s = 0.0, p90_s = 0.0, p99_s = 0.0;
  int iters = 0;
};

LatencySummary summarize(std::vector<double> secs) {
  LatencySummary s;
  if (secs.empty()) return s;
  std::sort(secs.begin(), secs.end());
  double sum = 0.0;
  for (double v : secs) sum += v;
  s.iters = static_cast<int>(secs.size());
  s.mean_s = sum / static_cast<double>(secs.size());
  const auto q = [&](double p) {
    const auto idx = static_cast<std::size_t>(
        std::llround(p * static_cast<double>(secs.size() - 1)));
    return secs[idx];
  };
  s.p50_s = q(0.50);
  s.p90_s = q(0.90);
  s.p99_s = q(0.99);
  return s;
}

template <typename F>
std::vector<double> time_rounds(int iters, F&& round) {
  std::vector<double> secs;
  secs.reserve(static_cast<std::size_t>(iters));
  for (int i = 0; i < iters; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    round();
    const auto t1 = std::chrono::steady_clock::now();
    secs.push_back(std::chrono::duration<double>(t1 - t0).count());
  }
  return secs;
}

void write_latency(std::ostream& os, const char* key,
                   const LatencySummary& s) {
  os << "\"" << key << "\":{\"mean_s\":" << s.mean_s
     << ",\"p50_s\":" << s.p50_s << ",\"p90_s\":" << s.p90_s
     << ",\"p99_s\":" << s.p99_s << ",\"iters\":" << s.iters << "}";
}

// Cold-round mean decision latency of the pre-PR tree (commit 6922060,
// this benchmark, same trace seeds, RelWithDebInfo, same container class),
// recorded before the plan-set cache / curve-bisection / fast-path work
// landed. Keyed by job count.
struct Baseline {
  int jobs;
  double cold_mean_s;
};
constexpr Baseline kPrePrBaseline[] = {
    {10, 0.0151}, {50, 0.0283}, {100, 0.0373}};

// Decide-engine scaling fleets (DESIGN.md §14): cold rounds at large job
// counts, indexed vs legacy-scan, few iterations (a legacy 2000-job cold
// round runs for seconds). `recorded_speedup` is the cold-round
// legacy-over-indexed latency ratio measured when the decide index landed
// (this benchmark, Release build, same trace seed and container class);
// the CI bench-smoke gate fails if the 2000-job run drops below 80% of it.
// The ratio is measured within one process on one machine, so it is far
// more stable across hardware than the absolute latencies.
struct DecideFleet {
  int jobs;
  int iters;
  double recorded_speedup;
};
constexpr DecideFleet kDecideFleets[] = {
    {500, 5, 1.8}, {1000, 3, 3.5}, {2000, 2, 10.0}};

int write_sched_json(const std::string& path) {
  set_telemetry_enabled(true);
  MetricsRegistry::global().reset_values();

  std::ofstream os(path);
  if (!os) {
    std::cerr << "cannot open " << path << " for writing\n";
    return 1;
  }
  os.precision(9);
  os << "{\"bench\":\"bench_micro_scheduler\",\"unit\":\"seconds\","
     << "\"baseline\":{\"source\":\"pre-PR cold-round mean (commit 6922060, "
     << "same trace seeds and build type)\",\"cold_mean_s\":{";
  for (std::size_t i = 0; i < std::size(kPrePrBaseline); ++i)
    os << (i ? "," : "") << "\"" << kPrePrBaseline[i].jobs
       << "\":" << kPrePrBaseline[i].cold_mean_s;
  os << "}},\"rounds\":[";

  bool first = true;
  for (const Baseline& base : kPrePrBaseline) {
    const auto jobs = make_round_jobs(base.jobs);
    MemoryEstimator est;
    const SchedulerInput input = make_round_input(jobs, est);

    const LatencySummary cold = summarize(time_rounds(15, [&] {
      RubickPolicy policy;
      benchmark::DoNotOptimize(policy.schedule(input));
    }));

    RubickPolicy steady;
    steady.schedule(input);  // warm
    const LatencySummary fast = summarize(time_rounds(
        200, [&] { benchmark::DoNotOptimize(steady.schedule(input)); }));

    RubickConfig slow_config;
    slow_config.enable_fast_path = false;
    RubickPolicy slow(slow_config);
    slow.schedule(input);  // warm
    const LatencySummary warm_slow = summarize(time_rounds(
        30, [&] { benchmark::DoNotOptimize(slow.schedule(input)); }));

    os << (first ? "" : ",") << "{\"jobs\":" << base.jobs << ",";
    write_latency(os, "cold", cold);
    os << ",";
    write_latency(os, "steady_fast_path", fast);
    os << ",\"fast_path_rounds\":" << steady.fast_path_rounds() << ",";
    write_latency(os, "steady_slow_path", warm_slow);
    os << ",\"baseline_cold_mean_s\":" << base.cold_mean_s
       << ",\"speedup_cold_vs_baseline\":"
       << (cold.mean_s > 0.0 ? base.cold_mean_s / cold.mean_s : 0.0)
       << ",\"speedup_steady_vs_baseline\":"
       << (fast.mean_s > 0.0 ? base.cold_mean_s / fast.mean_s : 0.0) << "}";
    first = false;
  }
  os << "],";

  // Decide-engine comparison: same input, both engines, byte-identical
  // decisions — only the decide-phase data structures differ.
  os << "\"decide\":{\"fleets\":[";
  bool first_fleet = true;
  for (const DecideFleet& fleet : kDecideFleets) {
    const auto jobs = make_round_jobs(fleet.jobs);
    MemoryEstimator est;
    const SchedulerInput input = make_round_input(jobs, est);

    RubickConfig indexed_config;  // decide_engine defaults to kIndexed
    const LatencySummary cold_indexed =
        summarize(time_rounds(fleet.iters, [&] {
          RubickPolicy policy(indexed_config);
          benchmark::DoNotOptimize(policy.schedule(input));
        }));
    RubickConfig legacy_config;
    legacy_config.decide_engine = DecideEngine::kLegacyScan;
    const LatencySummary cold_legacy =
        summarize(time_rounds(fleet.iters, [&] {
          RubickPolicy policy(legacy_config);
          benchmark::DoNotOptimize(policy.schedule(input));
        }));

    os << (first_fleet ? "" : ",") << "{\"jobs\":" << fleet.jobs << ",";
    write_latency(os, "cold_indexed", cold_indexed);
    os << ",";
    write_latency(os, "cold_legacy", cold_legacy);
    os << ",\"speedup_cold\":"
       << (cold_indexed.mean_s > 0.0 ? cold_legacy.mean_s / cold_indexed.mean_s
                                     : 0.0)
       << ",\"recorded_baseline_speedup\":" << fleet.recorded_speedup << "}";
    first_fleet = false;
  }
  os << "]},";

  const PlanCacheStats ps = PlanSetCache::global().stats();
  os << "\"plan_cache\":{\"hits\":" << ps.hits << ",\"misses\":" << ps.misses
     << ",\"enumerations\":" << ps.enumerations
     << ",\"budget_pruned\":" << ps.budget_pruned
     << ",\"hit_rate\":" << ps.hit_rate() << ",\"cached_lists\":"
     << PlanSetCache::global().size() << "},";
  const MetricsRegistry& reg = MetricsRegistry::global();
  os << "\"counters\":{\"curve_evals_saved\":"
     << reg.counter_value("predictor.curve_evals_saved")
     << ",\"fast_path_rounds\":"
     << reg.counter_value("scheduler.fast_path_rounds")
     << ",\"rounds\":" << reg.counter_value("scheduler.rounds")
     << ",\"victim_heap_pops\":"
     << reg.counter_value("scheduler.victim_heap_pops")
     << ",\"victim_stale_entries\":"
     << reg.counter_value("scheduler.victim_stale_entries")
     << ",\"slope_evals_saved\":"
     << reg.counter_value("scheduler.slope_evals_saved") << "}}\n";
  os.close();
  std::cout << "wrote " << path << "\n";
  return os ? 0 : 1;
}

}  // namespace
}  // namespace rubick

int main(int argc, char** argv) {
  // Strip --sched-json=PATH before google-benchmark sees the args (the
  // snake_case spelling is a deprecated alias, matching common/cli).
  // Combine with --benchmark_filter=NONE to emit only the JSON report.
  std::string sched_json;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    constexpr const char* kFlag = "--sched-json=";
    constexpr const char* kDeprecated = "--sched_json=";
    if (std::strncmp(argv[i], kFlag, std::strlen(kFlag)) == 0) {
      sched_json = argv[i] + std::strlen(kFlag);
    } else if (std::strncmp(argv[i], kDeprecated, std::strlen(kDeprecated)) ==
               0) {
      std::cerr << "warning: flag --sched_json is deprecated; use "
                   "--sched-json\n";
      sched_json = argv[i] + std::strlen(kDeprecated);
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;

  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  if (!sched_json.empty()) return rubick::write_sched_json(sched_json);
  return 0;
}
