#include "common/stats.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"

namespace rubick {
namespace {

TEST(Stats, MeanAndStddev) {
  const std::vector<double> xs = {1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(mean(xs), 3.0);
  EXPECT_NEAR(stddev(xs), 1.5811, 1e-3);
}

TEST(Stats, MinMax) {
  const std::vector<double> xs = {3, -1, 7, 2};
  EXPECT_DOUBLE_EQ(min_of(xs), -1.0);
  EXPECT_DOUBLE_EQ(max_of(xs), 7.0);
}

TEST(Stats, PercentileInterpolates) {
  const std::vector<double> xs = {10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 1.0), 40.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 0.5), 25.0);
}

TEST(Stats, PercentileSingleElement) {
  const std::vector<double> xs = {42.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.99), 42.0);
}

TEST(Stats, PercentileIgnoresInputOrder) {
  const std::vector<double> a = {5, 1, 9, 3};
  const std::vector<double> b = {1, 3, 5, 9};
  EXPECT_DOUBLE_EQ(percentile(a, 0.5), percentile(b, 0.5));
}

TEST(Stats, RmsleZeroForPerfectPrediction) {
  const std::vector<double> xs = {1.0, 10.0, 100.0};
  EXPECT_DOUBLE_EQ(rmsle(xs, xs), 0.0);
}

TEST(Stats, RmsleScaleInvariantRatio) {
  // A uniform 2x over-prediction has RMSLE log(2) everywhere.
  const std::vector<double> actual = {1.0, 5.0, 20.0};
  const std::vector<double> pred = {2.0, 10.0, 40.0};
  EXPECT_NEAR(rmsle(pred, actual), std::log(2.0), 1e-12);
}

TEST(Stats, RmsleRejectsNonPositive) {
  const std::vector<double> ok = {1.0};
  const std::vector<double> bad = {0.0};
  EXPECT_THROW(rmsle(bad, ok), InvariantError);
  EXPECT_THROW(rmsle(ok, bad), InvariantError);
}

TEST(Stats, MapeMatchesHandComputation) {
  const std::vector<double> actual = {10.0, 20.0};
  const std::vector<double> pred = {11.0, 18.0};
  EXPECT_NEAR(mape(pred, actual), (0.1 + 0.1) / 2.0, 1e-12);
}

TEST(Stats, SummaryOfEmptyIsZero) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

TEST(Stats, SummaryFields) {
  const std::vector<double> xs = {4, 1, 3, 2};
  const Summary s = summarize(xs);
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  EXPECT_DOUBLE_EQ(s.p50, 2.5);
}

TEST(Stats, LengthMismatchThrows) {
  const std::vector<double> a = {1.0, 2.0};
  const std::vector<double> b = {1.0};
  EXPECT_THROW(rmsle(a, b), InvariantError);
  EXPECT_THROW(mape(a, b), InvariantError);
}

}  // namespace
}  // namespace rubick
