#include "model/model_spec.h"
#include "plan/enumerate.h"
#include "plan/execution_plan.h"
#include "plan/memory_estimator.h"

#include <gtest/gtest.h>

#include <set>

#include "common/units.h"
#include "model/model_zoo.h"

namespace rubick {
namespace {

PlanConstraints constraints(int gpus, int max_tp = 8) {
  PlanConstraints pc;
  pc.num_gpus = gpus;
  pc.max_tp = max_tp;
  pc.budget = MemoryBudget{gigabytes(80), gigabytes(1600)};
  return pc;
}

TEST(Enumerate, AllPlansValidFeasibleAndExactGpuCount) {
  MemoryEstimator est;
  for (const ModelSpec& m : model_zoo()) {
    const int b = m.default_global_batch;
    for (int g : {1, 2, 4, 8}) {
      for (const ExecutionPlan& p : enumerate_plans(m, b, constraints(g), est)) {
        EXPECT_TRUE(p.valid_for(m, b)) << m.name << " " << p.display_name();
        EXPECT_EQ(p.num_gpus(), g) << m.name << " " << p.display_name();
        EXPECT_TRUE(est.fits(m, p, b, constraints(g).budget))
            << m.name << " " << p.display_name();
      }
    }
  }
}

TEST(Enumerate, NoDuplicates) {
  MemoryEstimator est;
  const ModelSpec& m = find_model("GPT-2");
  const auto plans = enumerate_plans(m, 16, constraints(8), est);
  std::set<std::string> keys;
  for (const auto& p : plans) {
    std::string key = p.display_name() + "/" + std::to_string(p.dp) + "," +
                      std::to_string(p.tp) + "," + std::to_string(p.pp) + "," +
                      std::to_string(p.ga_steps) + "," +
                      std::to_string(p.micro_batches);
    EXPECT_TRUE(keys.insert(key).second) << "duplicate: " << key;
  }
}

TEST(Enumerate, SmallModelsGetDpFamilyOnly) {
  MemoryEstimator est;
  const ModelSpec& m = find_model("RoBERTa");
  for (const auto& p : enumerate_plans(m, 32, constraints(8), est)) {
    EXPECT_EQ(p.tp, 1) << p.display_name();
    EXPECT_EQ(p.pp, 1) << p.display_name();
  }
}

TEST(Enumerate, LargeModelsGetModelParallelPlans) {
  MemoryEstimator est;
  const ModelSpec& m = find_model("LLaMA-2-7B");
  bool has_tp = false, has_pp = false;
  for (const auto& p : enumerate_plans(m, 16, constraints(8), est)) {
    has_tp |= p.tp > 1;
    has_pp |= p.pp > 1;
  }
  EXPECT_TRUE(has_tp);
  EXPECT_TRUE(has_pp);
}

TEST(Enumerate, MaxTpConstraintRespected) {
  MemoryEstimator est;
  const ModelSpec& m = find_model("LLaMA-2-7B");
  for (const auto& p : enumerate_plans(m, 8, constraints(8, /*max_tp=*/2), est))
    EXPECT_LE(p.tp, 2) << p.display_name();
}

TEST(Enumerate, DisallowModelParallelFlag) {
  MemoryEstimator est;
  PlanConstraints pc = constraints(8);
  pc.allow_model_parallel = false;
  const ModelSpec& m = find_model("GPT-2");
  for (const auto& p : enumerate_plans(m, 16, pc, est))
    EXPECT_FALSE(p.uses_model_parallelism()) << p.display_name();
}

TEST(Enumerate, SingleGpuLargeModelOnlyOffload) {
  // Paper: ZeRO-Offload is the only feasible plan for LLaMA-2-7B on 1 GPU.
  MemoryEstimator est;
  const ModelSpec& m = find_model("LLaMA-2-7B");
  const auto plans = enumerate_plans(m, 16, constraints(1, 1), est);
  ASSERT_FALSE(plans.empty());
  for (const auto& p : plans)
    EXPECT_EQ(p.zero, ZeroStage::kOffload) << p.display_name();
}

TEST(Enumerate, MemoryFilterOnlyRemovesPlans) {
  MemoryEstimator est;
  const ModelSpec& m = find_model("GPT-2");
  const auto all = enumerate_candidate_plans(m, 16, constraints(4));
  const auto fits = enumerate_plans(m, 16, constraints(4), est);
  EXPECT_GE(all.size(), fits.size());
  // Every fitting plan is among the candidates.
  for (const auto& p : fits)
    EXPECT_NE(std::find(all.begin(), all.end(), p), all.end());
}

TEST(Enumerate, DeterministicOrder) {
  MemoryEstimator est;
  const ModelSpec& m = find_model("T5");
  const auto a = enumerate_plans(m, 16, constraints(8), est);
  const auto b = enumerate_plans(m, 16, constraints(8), est);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace rubick
