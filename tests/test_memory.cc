#include "model/model_spec.h"
#include "plan/execution_plan.h"
#include "plan/memory_estimator.h"

#include <gtest/gtest.h>

#include "common/units.h"
#include "model/model_zoo.h"

namespace rubick {
namespace {

const MemoryBudget kA800Budget{gigabytes(80), gigabytes(1600)};

TEST(MemoryEstimator, GcReducesActivationMemory) {
  MemoryEstimator est;
  const ModelSpec& m = find_model("GPT-2");
  EXPECT_LT(est.gpu_bytes(m, make_dp(1, 1, true), 16),
            est.gpu_bytes(m, make_dp(1), 16));
}

TEST(MemoryEstimator, GaReducesActivationMemory) {
  MemoryEstimator est;
  const ModelSpec& m = find_model("GPT-2");
  EXPECT_LT(est.gpu_bytes(m, make_dp(1, 4), 16),
            est.gpu_bytes(m, make_dp(1), 16));
}

TEST(MemoryEstimator, ZeroDpShrinksOptimizerStatesWithDpSize) {
  MemoryEstimator est;
  const ModelSpec& m = find_model("LLaMA-2-7B");
  const auto at = [&](int d) {
    return est.gpu_bytes(m, make_zero_dp(d, 2), 16);
  };
  EXPECT_GT(at(2), at(4));
  EXPECT_GT(at(4), at(8));
}

TEST(MemoryEstimator, ThreeDShardsAllStates) {
  MemoryEstimator est;
  const ModelSpec& m = find_model("LLaMA-2-7B");
  const std::uint64_t one = est.gpu_bytes(m, make_3d(1, 8, 4), 16);
  const std::uint64_t two = est.gpu_bytes(m, make_3d(1, 8, 2), 16);
  EXPECT_LT(one, two);  // more pipeline stages -> fewer layers per GPU
}

TEST(MemoryEstimator, OffloadMovesStatesToHost) {
  MemoryEstimator est;
  const ModelSpec& m = find_model("LLaMA-2-7B");
  const ExecutionPlan offload = make_zero_offload(1, 16);
  const ExecutionPlan dp = make_dp(1, 16);
  EXPECT_LT(est.gpu_bytes(m, offload, 16), est.gpu_bytes(m, dp, 16));
  EXPECT_GT(est.host_bytes(m, offload), est.host_bytes(m, dp));
  // Host side holds optimizer states (12P) + gradient copies (2P).
  EXPECT_GE(est.host_bytes(m, offload),
            m.optimizer_state_bytes() + m.param_bytes_fp16());
}

TEST(MemoryEstimator, PaperFeasibilityGates) {
  MemoryEstimator est;
  const int b = 16;
  // LLaMA-2-7B: plain DP OOMs on one 80 GB GPU (16P = 112 GB), only
  // ZeRO-Offload fits (paper Figs. 3b and 7).
  const ModelSpec& llama7 = find_model("LLaMA-2-7B");
  EXPECT_FALSE(est.fits(llama7, make_dp(1, 16), b, kA800Budget));
  EXPECT_FALSE(est.fits(llama7, make_zero_dp(1, 16), b, kA800Budget));
  EXPECT_TRUE(est.fits(llama7, make_zero_offload(1, 16, true), b, kA800Budget));
  // LLaMA-30B: even ZeRO-Offload fails (Table 2 "/"); 3D with enough shards
  // fits.
  const ModelSpec& llama30 = find_model("LLaMA-30B");
  EXPECT_FALSE(est.fits(llama30, make_zero_offload(1, 16), b, kA800Budget));
  EXPECT_TRUE(est.fits(llama30, make_3d(1, 8, 2, 8, true), b,
                       MemoryBudget{gigabytes(80), gigabytes(3200)}));
  // GPT-2 trains with plain DP on a single A800.
  EXPECT_TRUE(est.fits(find_model("GPT-2"), make_dp(1), b, kA800Budget));
}

TEST(MemoryEstimator, InfeasibleBatchSplitIsInfeasible) {
  MemoryEstimator est;
  const ModelSpec& m = find_model("GPT-2");
  const MemoryEstimate e = est.estimate(m, make_dp(3), 16, kA800Budget);
  EXPECT_FALSE(e.feasible);
}

TEST(MemoryEstimator, HostMemoryScalesWithWorkers) {
  MemoryEstimator est;
  const ModelSpec& m = find_model("BERT");
  EXPECT_GT(est.host_bytes(m, make_dp(8)), est.host_bytes(m, make_dp(2)));
}

TEST(MemoryEstimator, PipelineKeepsInFlightMicroBatches) {
  MemoryEstimator est;
  const ModelSpec& m = find_model("GPT-2");
  // With m >= p, 1F1B keeps p micro-batches in flight on the first stage,
  // so doubling pp at fixed micro-batch size does not halve activations.
  const std::uint64_t p2 = est.gpu_bytes(m, make_3d(1, 1, 2, 8), 16);
  const std::uint64_t p4 = est.gpu_bytes(m, make_3d(1, 1, 4, 8), 16);
  EXPECT_GT(p4 * 2, p2);  // sub-linear reduction
}

// Property: for all zoo models and DP-family plans, the GPU estimate is
// monotone in the global batch size.
class BatchMonotone
    : public ::testing::TestWithParam<std::tuple<const char*, int>> {};

TEST_P(BatchMonotone, GpuBytesNonDecreasingInBatch) {
  const auto [name, ga] = GetParam();
  MemoryEstimator est;
  const ModelSpec& m = find_model(name);
  const ExecutionPlan plan = make_dp(1, ga);
  std::uint64_t prev = 0;
  for (int b : {16, 32, 64}) {
    if (plan.per_pass_batch(b) == 0) continue;
    const std::uint64_t cur = est.gpu_bytes(m, plan, b);
    EXPECT_GE(cur, prev) << name << " b=" << b;
    prev = cur;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Zoo, BatchMonotone,
    ::testing::Combine(::testing::Values("ViT", "RoBERTa", "BERT", "T5",
                                         "GPT-2"),
                       ::testing::Values(1, 2)));

}  // namespace
}  // namespace rubick
