// MetricsRegistry: exactness under concurrency, disabled-path no-ops,
// histogram bucketing, JSON export — plus the JSON log format that shares
// the observability layer (DESIGN.md §8).
#include "telemetry/metrics.h"

#include <gtest/gtest.h>

#include <sstream>
#include <thread>
#include <vector>

#include "common/log.h"

namespace rubick {
namespace {

// Every test leaves the global switch off, the way it started.
class TelemetryGuard {
 public:
  ~TelemetryGuard() { set_telemetry_enabled(false); }
};

TEST(Metrics, CounterExactUnderConcurrency) {
  TelemetryGuard guard;
  set_telemetry_enabled(true);
  MetricsRegistry registry;
  Counter& c = registry.counter("test.hammered");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) c.add(1);
    });
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(Metrics, HistogramExactUnderConcurrency) {
  TelemetryGuard guard;
  set_telemetry_enabled(true);
  MetricsRegistry registry;
  Histogram& h = registry.histogram("test.lat", {1.0, 2.0, 3.0});
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&h] {
      for (int i = 0; i < kPerThread; ++i)
        h.observe(static_cast<double>(i % 4) + 0.5);  // 0.5,1.5,2.5,3.5
    });
  for (auto& t : threads) t.join();
  const std::uint64_t per_bucket =
      static_cast<std::uint64_t>(kThreads) * kPerThread / 4;
  EXPECT_EQ(h.count(), per_bucket * 4);
  const auto counts = h.bucket_counts();
  ASSERT_EQ(counts.size(), 4u);  // 3 bounds + +inf
  for (const std::uint64_t n : counts) EXPECT_EQ(n, per_bucket);
  EXPECT_NEAR(h.sum(), static_cast<double>(per_bucket) * (0.5 + 1.5 + 2.5 + 3.5),
              1e-6);
}

TEST(Metrics, HistogramBucketBoundariesInclusive) {
  Histogram h({1.0, 10.0});
  h.observe(1.0);   // le 1.0 (inclusive upper bound)
  h.observe(1.001); // le 10.0
  h.observe(11.0);  // +inf
  const auto counts = h.bucket_counts();
  EXPECT_EQ(counts[0], 1u);
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(counts[2], 1u);
}

TEST(Metrics, GaugeSetAddMax) {
  Gauge g;
  g.set(2.0);
  g.add(1.5);
  EXPECT_DOUBLE_EQ(g.value(), 3.5);
  g.max(2.0);  // lower: no effect
  EXPECT_DOUBLE_EQ(g.value(), 3.5);
  g.max(7.0);
  EXPECT_DOUBLE_EQ(g.value(), 7.0);
}

TEST(Metrics, MacrosAreNoOpsWhenDisabled) {
  TelemetryGuard guard;
  set_telemetry_enabled(false);
  const std::size_t before = MetricsRegistry::global().size();
  RUBICK_COUNTER_ADD("test.disabled_counter", 5);
  RUBICK_GAUGE_SET("test.disabled_gauge", 1.0);
  RUBICK_HISTOGRAM_OBSERVE("test.disabled_hist", latency_bounds_s(), 0.1);
  // Nothing registered, nothing counted.
  EXPECT_EQ(MetricsRegistry::global().size(), before);
  EXPECT_EQ(MetricsRegistry::global().counter_value("test.disabled_counter"),
            0u);
}

TEST(Metrics, MacrosRecordWhenEnabled) {
  TelemetryGuard guard;
  set_telemetry_enabled(true);
  MetricsRegistry::global().reset_values();
  RUBICK_COUNTER_ADD("test.macro_counter", 2);
  RUBICK_COUNTER_ADD("test.macro_counter", 3);
  RUBICK_GAUGE_SET("test.macro_gauge", 4.25);
  EXPECT_EQ(MetricsRegistry::global().counter_value("test.macro_counter"), 5u);
  EXPECT_DOUBLE_EQ(MetricsRegistry::global().gauge_value("test.macro_gauge"),
                   4.25);
}

TEST(Metrics, ResetValuesKeepsHandles) {
  MetricsRegistry registry;
  Counter& c = registry.counter("test.reset");
  c.add(10);
  registry.reset_values();
  EXPECT_EQ(c.value(), 0u);
  c.add(1);  // handle still valid and registered
  EXPECT_EQ(registry.counter_value("test.reset"), 1u);
}

TEST(Metrics, ScopedLatencyTimerObservesOnce) {
  Histogram h(latency_bounds_s());
  { ScopedLatencyTimer timer(&h); }
  EXPECT_EQ(h.count(), 1u);
  EXPECT_GE(h.sum(), 0.0);
  { ScopedLatencyTimer disarmed(nullptr); }
  EXPECT_EQ(h.count(), 1u);
}

TEST(Metrics, WriteJsonIsWellFormed) {
  MetricsRegistry registry;
  registry.counter("a.count").add(3);
  registry.gauge("b.level").set(0.5);
  registry.histogram("c.lat", {1.0}).observe(0.2);
  std::ostringstream os;
  registry.write_json(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"a.count\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"b.level\": 0.5"), std::string::npos);
  EXPECT_NE(json.find("\"le\": \"+inf\""), std::string::npos);
  // Balanced braces/brackets (cheap well-formedness proxy; the Python
  // validator in tools/validate_telemetry.py does the full parse).
  long depth = 0;
  for (const char ch : json) {
    if (ch == '{' || ch == '[') ++depth;
    if (ch == '}' || ch == ']') --depth;
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST(LogFormat, TextIsDefaultShape) {
  set_log_format(LogFormat::kText);
  EXPECT_EQ(detail::format_log_line(LogLevel::kInfo, "hello"),
            "[INFO] hello");
}

TEST(LogFormat, JsonLineWithAndWithoutSimTime) {
  set_log_format(LogFormat::kJson);
  set_log_sim_time_s(-1.0);  // cleared
  EXPECT_EQ(detail::format_log_line(LogLevel::kWarn, "plain"),
            "{\"level\":\"warn\",\"msg\":\"plain\"}");
  set_log_sim_time_s(12.5);
  EXPECT_EQ(detail::format_log_line(LogLevel::kError, "timed"),
            "{\"level\":\"error\",\"sim_t_s\":12.5,\"msg\":\"timed\"}");
  set_log_sim_time_s(-1.0);
  set_log_format(LogFormat::kText);
}

TEST(LogFormat, JsonEscapesMessage) {
  set_log_format(LogFormat::kJson);
  set_log_sim_time_s(-1.0);
  const std::string line =
      detail::format_log_line(LogLevel::kInfo, "quote \" slash \\ nl \n");
  EXPECT_NE(line.find("\\\""), std::string::npos);
  EXPECT_NE(line.find("\\\\"), std::string::npos);
  EXPECT_NE(line.find("\\n"), std::string::npos);
  EXPECT_EQ(line.find('\n'), std::string::npos);  // one physical line
  set_log_format(LogFormat::kText);
}

}  // namespace
}  // namespace rubick
