#include "cluster/cluster.h"
#include "core/plan_selector.h"
#include "model/model_spec.h"
#include "perf/oracle.h"
#include "perf/perf_store.h"
#include "plan/memory_estimator.h"
#include "sim/report.h"
#include "sim/simulator.h"

#include <gtest/gtest.h>

#include <sstream>

#include "common/error.h"

#include "common/units.h"
#include "core/predictor.h"
#include "core/rubick_policy.h"
#include "model/model_zoo.h"
#include "trace/trace_gen.h"

namespace rubick {
namespace {

SimResult small_run() {
  const ClusterSpec cluster;
  const GroundTruthOracle oracle(2025);
  const TraceGenerator gen(cluster, oracle);
  TraceOptions opts;
  opts.seed = 8;
  opts.num_jobs = 15;
  opts.window_s = hours(1);
  RubickPolicy policy;
  Simulator sim(cluster, oracle);
  return sim.run(gen.generate(opts), policy);
}

TEST(Report, CsvHasHeaderAndOneLinePerJob) {
  const SimResult r = small_run();
  std::stringstream ss;
  write_results_csv(ss, r);
  std::string line;
  int lines = 0;
  std::getline(ss, line);
  EXPECT_NE(line.find("job_id,"), std::string::npos);
  while (std::getline(ss, line))
    if (!line.empty()) ++lines;
  EXPECT_EQ(lines, static_cast<int>(r.jobs.size()));
}

TEST(Report, SummaryMentionsKeyMetrics) {
  const SimResult r = small_run();
  std::stringstream ss;
  print_summary(ss, "Rubick", r);
  const std::string out = ss.str();
  EXPECT_NE(out.find("avg JCT"), std::string::npos);
  EXPECT_NE(out.find("makespan"), std::string::npos);
  EXPECT_NE(out.find("utilization"), std::string::npos);
  EXPECT_NE(out.find("Rubick"), std::string::npos);
}

TEST(Report, FileWriteFailsLoudly) {
  const SimResult r = small_run();
  EXPECT_THROW(write_results_csv_file("/nonexistent/dir/out.csv", r),
               InvariantError);
}

TEST(Report, JobHistoryRecordsEveryConfiguration) {
  const SimResult r = small_run();
  bool any_history = false;
  for (const auto& j : r.jobs) {
    if (!j.finished) continue;
    ASSERT_FALSE(j.history.empty()) << j.spec.id;
    any_history = true;
    // Times are non-decreasing and each record is a valid configuration.
    double prev = -1.0;
    for (const auto& rec : j.history) {
      EXPECT_GE(rec.since_s, prev);
      prev = rec.since_s;
      EXPECT_GT(rec.gpus, 0);
      EXPECT_GT(rec.throughput, 0.0);
      EXPECT_EQ(rec.plan.num_gpus(), rec.gpus);
    }
  }
  EXPECT_TRUE(any_history);
}

TEST(Report, PrintJobHistoryIsReadable) {
  const SimResult r = small_run();
  std::stringstream ss;
  print_job_history(ss, r.jobs[0]);
  const std::string out = ss.str();
  EXPECT_NE(out.find("t="), std::string::npos);
}

TEST(PredictorWarm, WarmingFillsCachesWithoutChangingResults) {
  const ClusterSpec cluster;
  const GroundTruthOracle oracle(2025);
  PerfModelStore store =
      PerfModelStore::profile_models(oracle, cluster, {"GPT-2"});
  MemoryEstimator est;
  const ModelSpec& model = find_model("GPT-2");
  FullPlanSelector sel;

  BestPlanPredictor cold(cluster, store, est);
  BestPlanPredictor warmed(cluster, store, est);
  warmed.warm(model, 16, sel, 64);
  const std::size_t after_warm = warmed.cache_size();
  EXPECT_GT(after_warm, 64u);

  for (int g : {1, 4, 8, 16, 32}) {
    EXPECT_DOUBLE_EQ(cold.envelope(model, 16, sel, g, 2 * g),
                     warmed.envelope(model, 16, sel, g, 2 * g));
  }
  // The warmed predictor served those lookups from cache.
  EXPECT_EQ(warmed.cache_size(), after_warm);
}

}  // namespace
}  // namespace rubick
