#include "cluster/cluster.h"
#include "core/curve_key.h"
#include "core/plan_selector.h"
#include "model/model_spec.h"
#include "plan/enumerate.h"
#include "plan/execution_plan.h"
#include "plan/memory_estimator.h"

#include <gtest/gtest.h>

#include "model/model_zoo.h"
#include "perf/profiler.h"

namespace rubick {
namespace {

PlanConstraints constraints(int gpus, int max_tp = 8) {
  PlanConstraints pc;
  pc.num_gpus = gpus;
  pc.max_tp = max_tp;
  pc.budget = make_memory_budget(ClusterSpec{}, gpus);
  return pc;
}

TEST(FullPlanSelector, MatchesEnumeration) {
  const FullPlanSelector sel;
  MemoryEstimator est;
  const ModelSpec& m = find_model("GPT-2");
  EXPECT_EQ(sel.candidates(m, 16, constraints(4), est),
            enumerate_plans(m, 16, constraints(4), est));
  EXPECT_EQ(sel.cache_key(), "full");
}

TEST(ScaledDpSelector, ScalesDpSizeAndKeepsFamily) {
  const ScaledDpSelector sel(make_zero_dp(2, 2, true));
  MemoryEstimator est;
  const ModelSpec& m = find_model("GPT-2");
  const auto plans = sel.candidates(m, 16, constraints(8), est);
  ASSERT_FALSE(plans.empty());
  for (const auto& p : plans) {
    EXPECT_EQ(p.dp, 8);
    EXPECT_EQ(p.zero, ZeroStage::kZeroDp);
    EXPECT_TRUE(p.grad_ckpt);
    EXPECT_TRUE(p.valid_for(m, 16));
  }
}

TEST(ScaledDpSelector, AdjustsGaForDivisibility) {
  const ScaledDpSelector sel(make_dp(2, 8));
  MemoryEstimator est;
  const ModelSpec& m = find_model("GPT-2");
  // At d = 16 with b = 16, only a = 1 divides.
  const auto plans = sel.candidates(m, 16, constraints(16), est);
  ASSERT_FALSE(plans.empty());
  for (const auto& p : plans) EXPECT_EQ(p.ga_steps * p.dp <= 16, true);
}

TEST(ScaledDpSelector, RespectsShardGranularity) {
  // A 3D plan with t=4, p=2 can only scale in multiples of 8 GPUs.
  const ScaledDpSelector sel(make_3d(1, 4, 2, 4));
  MemoryEstimator est;
  const ModelSpec& m = find_model("LLaMA-2-7B");
  EXPECT_TRUE(sel.candidates(m, 16, constraints(12), est).empty());
  const auto plans = sel.candidates(m, 16, constraints(16), est);
  for (const auto& p : plans) {
    EXPECT_EQ(p.tp, 4);
    EXPECT_EQ(p.pp, 2);
    EXPECT_EQ(p.dp, 2);
  }
}

TEST(ScaledDpSelector, EmptyWhenTpExceedsNodeShare) {
  const ScaledDpSelector sel(make_3d(1, 8, 1));
  MemoryEstimator est;
  const ModelSpec& m = find_model("LLaMA-2-7B");
  EXPECT_TRUE(sel.candidates(m, 16, constraints(8, /*max_tp=*/4), est).empty());
}

TEST(FixedPlanSelector, OnlyExactPlanAtExactGpuCount) {
  const ExecutionPlan plan = make_zero_dp(4, 2);
  const FixedPlanSelector sel(plan);
  MemoryEstimator est;
  const ModelSpec& m = find_model("GPT-2");
  const auto at4 = sel.candidates(m, 16, constraints(4), est);
  ASSERT_EQ(at4.size(), 1u);
  EXPECT_EQ(at4[0], plan);
  EXPECT_TRUE(sel.candidates(m, 16, constraints(8), est).empty());
}

TEST(FixedPlanSelector, EmptyWhenInfeasible) {
  // Plain DP for LLaMA-2-7B never fits a single 80 GB GPU.
  const FixedPlanSelector sel(make_dp(1, 16));
  MemoryEstimator est;
  const ModelSpec& m = find_model("LLaMA-2-7B");
  EXPECT_TRUE(sel.candidates(m, 16, constraints(1, 1), est).empty());
}

TEST(Selectors, CacheKeysAreDistinct) {
  const FullPlanSelector full;
  const ScaledDpSelector scaled_a(make_dp(2));
  const ScaledDpSelector scaled_b(make_zero_dp(2));
  const FixedPlanSelector fixed(make_dp(2));
  EXPECT_NE(full.cache_key(), scaled_a.cache_key());
  EXPECT_NE(scaled_a.cache_key(), scaled_b.cache_key());
  EXPECT_NE(scaled_a.cache_key(), fixed.cache_key());
}

TEST(Selectors, SelectorIdsFollowBehavior) {
  // Distinct behaviors get distinct interned ids; equal behaviors share
  // one, even across separate instances (ids are interned by label).
  const FullPlanSelector full_a;
  const FullPlanSelector full_b;
  const ScaledDpSelector scaled(make_dp(2));
  const FixedPlanSelector fixed(make_dp(2));
  EXPECT_NE(full_a.selector_id(), 0u);
  EXPECT_EQ(full_a.selector_id(), full_b.selector_id());
  EXPECT_NE(full_a.selector_id(), scaled.selector_id());
  EXPECT_NE(scaled.selector_id(), fixed.selector_id());
  // Stable across repeated calls (memoized).
  EXPECT_EQ(scaled.selector_id(), scaled.selector_id());
}

TEST(Selectors, CurveKeyHashAndEquality) {
  CurveKey a{1, 2, 16, 8, 16, 8, false};
  CurveKey b = a;
  EXPECT_EQ(a, b);
  EXPECT_EQ(std::hash<CurveKey>{}(a), std::hash<CurveKey>{}(b));
  b.gpus = 9;
  EXPECT_FALSE(a == b);
  CurveKey env = a;
  env.max_tp = -1;  // envelope entries use the -1 sentinel
  EXPECT_FALSE(a == env);
}

}  // namespace
}  // namespace rubick
