#include "cluster/cluster.h"
#include "trace/job.h"
#include "trace/trace_io.h"

#include <gtest/gtest.h>

#include <sstream>

#include "common/error.h"
#include "common/units.h"
#include "perf/oracle.h"
#include "trace/trace_gen.h"

namespace rubick {
namespace {

std::vector<JobSpec> sample_trace(int n = 40) {
  const ClusterSpec cluster;
  const GroundTruthOracle oracle(2025);
  const TraceGenerator gen(cluster, oracle);
  TraceOptions opts;
  opts.seed = 5;
  opts.num_jobs = n;
  opts.window_s = hours(2);
  opts.variant = TraceVariant::kMultiTenant;  // exercises tenants + BE flags
  return gen.generate(opts);
}

TEST(TraceIo, RoundTripIsLossless) {
  const auto jobs = sample_trace();
  std::stringstream ss;
  write_trace_csv(ss, jobs);
  const auto loaded = read_trace_csv(ss);
  ASSERT_EQ(loaded.size(), jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(loaded[i].id, jobs[i].id);
    EXPECT_EQ(loaded[i].model_name, jobs[i].model_name);
    EXPECT_DOUBLE_EQ(loaded[i].submit_time_s, jobs[i].submit_time_s);
    EXPECT_EQ(loaded[i].requested, jobs[i].requested);
    EXPECT_EQ(loaded[i].global_batch, jobs[i].global_batch);
    EXPECT_DOUBLE_EQ(loaded[i].target_samples, jobs[i].target_samples);
    EXPECT_EQ(loaded[i].tenant, jobs[i].tenant);
    EXPECT_EQ(loaded[i].guaranteed, jobs[i].guaranteed);
    EXPECT_DOUBLE_EQ(loaded[i].grad_noise_rel, jobs[i].grad_noise_rel);
    EXPECT_EQ(loaded[i].initial_plan, jobs[i].initial_plan);
  }
}

TEST(TraceIo, EmptyTraceRoundTrips) {
  std::stringstream ss;
  write_trace_csv(ss, {});
  EXPECT_TRUE(read_trace_csv(ss).empty());
}

TEST(TraceIo, MissingHeaderThrows) {
  std::stringstream ss("not,a,header\n");
  EXPECT_THROW(read_trace_csv(ss), InvariantError);
}

TEST(TraceIo, EmptyFileThrows) {
  std::stringstream ss;
  EXPECT_THROW(read_trace_csv(ss), InvariantError);
}

TEST(TraceIo, WrongColumnCountThrows) {
  std::stringstream out;
  write_trace_csv(out, {});
  std::stringstream ss(out.str() + "1,BERT,0\n");
  EXPECT_THROW(read_trace_csv(ss), InvariantError);
}

TEST(TraceIo, UnknownModelThrows) {
  const auto jobs = sample_trace(1);
  std::stringstream out;
  write_trace_csv(out, jobs);
  std::string text = out.str();
  const auto pos = text.find(jobs[0].model_name);
  text.replace(pos, jobs[0].model_name.size(), "AlexNet");
  std::stringstream ss(text);
  EXPECT_THROW(read_trace_csv(ss), InvariantError);
}

TEST(TraceIo, InvalidPlanThrows) {
  auto jobs = sample_trace(1);
  std::stringstream out;
  write_trace_csv(out, jobs);
  // Corrupt the dp field so dp*tp*pp no longer splits the batch evenly.
  std::string text = out.str();
  std::stringstream ss(text);
  std::string header, row;
  std::getline(ss, header);
  std::getline(ss, row);
  auto fields_end = row.rfind(
      ',' + std::to_string(jobs[0].initial_plan.grad_ckpt ? 1 : 0));
  (void)fields_end;
  // Simply rewrite dp to a value that cannot divide any batch we generate.
  jobs[0].initial_plan.dp = 7;
  jobs[0].initial_plan.tp = 1;
  jobs[0].initial_plan.pp = 1;
  std::stringstream bad;
  write_trace_csv(bad, jobs);
  EXPECT_THROW(read_trace_csv(bad), InvariantError);
}

TEST(TraceIo, FileRoundTrip) {
  const auto jobs = sample_trace(10);
  const std::string path = "/tmp/rubick_trace_io_test.csv";
  write_trace_csv_file(path, jobs);
  const auto loaded = read_trace_csv_file(path);
  EXPECT_EQ(loaded.size(), jobs.size());
}

TEST(TraceIo, MissingFileThrows) {
  EXPECT_THROW(read_trace_csv_file("/nonexistent/rubick.csv"),
               InvariantError);
}

}  // namespace
}  // namespace rubick
