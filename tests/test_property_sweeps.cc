// Property sweeps across the whole model zoo and plan space. These are the
// "for all" invariants the analytic model, memory estimator and oracle must
// satisfy regardless of configuration.
#include <gtest/gtest.h>

#include <cmath>

#include "cluster/cluster.h"
#include "model/model_spec.h"
#include "model/model_zoo.h"
#include "perf/analytic.h"
#include "perf/oracle.h"
#include "perf/profiler.h"
#include "plan/enumerate.h"
#include "plan/execution_plan.h"
#include "plan/memory_estimator.h"

namespace rubick {
namespace {

struct SweepCase {
  const char* model;
  int gpus;
};

std::vector<SweepCase> sweep_cases() {
  std::vector<SweepCase> cases;
  for (const ModelSpec& m : model_zoo())
    for (int g : {1, 2, 4, 8, 16})
      cases.push_back({m.name.c_str(), g});
  return cases;
}

class ZooSweep : public ::testing::TestWithParam<SweepCase> {
 protected:
  ClusterSpec cluster_;
  MemoryEstimator estimator_;
};

// Every feasible plan yields a positive, finite, self-consistent breakdown.
TEST_P(ZooSweep, BreakdownIsSelfConsistent) {
  const auto [name, gpus] = GetParam();
  const ModelSpec& model = find_model(name);
  const int batch = model.default_global_batch;
  PlanConstraints pc;
  pc.num_gpus = gpus;
  pc.max_tp = std::min(gpus, cluster_.node.gpus);
  pc.budget = make_memory_budget(cluster_, gpus);
  const FitParams params;
  const PerfContext ctx = make_perf_context(cluster_, gpus, 2 * gpus);

  for (const ExecutionPlan& plan :
       enumerate_plans(model, batch, pc, estimator_)) {
    const IterBreakdown bd =
        iteration_breakdown(model, plan, batch, 0.01, params, ctx);
    EXPECT_TRUE(std::isfinite(bd.t_iter)) << plan.display_name();
    EXPECT_GT(bd.t_iter, 0.0) << plan.display_name();
    EXPECT_GE(bd.t_fwd, 0.0);
    EXPECT_GE(bd.t_bwd, 0.0);
    EXPECT_GE(bd.t_comm_dp, 0.0);
    EXPECT_GE(bd.t_opt, 0.0);
    // The iteration cannot beat its own computation+communication span.
    EXPECT_GE(bd.t_iter, bd.t_cc) << plan.display_name();
    EXPECT_GE(bd.t_cc, bd.t_fwd) << plan.display_name();
    // Throughput identity.
    const double thr =
        predict_throughput(model, plan, batch, 0.01, params, ctx);
    EXPECT_NEAR(thr, batch / bd.t_iter, 1e-9) << plan.display_name();
  }
}

// Every enumerated plan respects both memory budgets by construction.
TEST_P(ZooSweep, EnumeratedPlansFitTheirBudget) {
  const auto [name, gpus] = GetParam();
  const ModelSpec& model = find_model(name);
  const int batch = model.default_global_batch;
  PlanConstraints pc;
  pc.num_gpus = gpus;
  pc.max_tp = std::min(gpus, cluster_.node.gpus);
  pc.budget = make_memory_budget(cluster_, gpus);
  for (const ExecutionPlan& plan :
       enumerate_plans(model, batch, pc, estimator_)) {
    EXPECT_LE(estimator_.gpu_bytes(model, plan, batch),
              pc.budget.gpu_capacity_bytes)
        << name << " " << plan.display_name();
    EXPECT_LE(estimator_.host_bytes(model, plan),
              pc.budget.host_capacity_bytes)
        << name << " " << plan.display_name();
  }
}

// The oracle's structural perturbations and noise never make a plan faster
// than the unperturbed analytic value by more than the noise bound.
TEST_P(ZooSweep, OracleNeverBeatsCleanAnalyticBeyondNoise) {
  const auto [name, gpus] = GetParam();
  const ModelSpec& model = find_model(name);
  const int batch = model.default_global_batch;
  const GroundTruthOracle oracle(2025);
  const auto& truth = oracle.truth_for(model);
  PlanConstraints pc;
  pc.num_gpus = gpus;
  pc.max_tp = std::min(gpus, cluster_.node.gpus);
  pc.budget = make_memory_budget(cluster_, gpus);
  const PerfContext ctx = make_perf_context(cluster_, gpus, 2 * gpus);
  for (const ExecutionPlan& plan :
       enumerate_plans(model, batch, pc, estimator_)) {
    const double clean = predict_throughput(model, plan, batch,
                                            truth.fwd_unit_s, truth.params,
                                            ctx);
    const double measured =
        oracle.measure_throughput(model, plan, batch, ctx);
    EXPECT_LE(measured, clean * 1.10) << name << " " << plan.display_name();
  }
}

// More GA steps never increase activation memory.
TEST_P(ZooSweep, GaMonotoneInActivationMemory) {
  const auto [name, gpus] = GetParam();
  const ModelSpec& model = find_model(name);
  const int batch = model.default_global_batch;
  std::uint64_t prev = std::numeric_limits<std::uint64_t>::max();
  for (int a : {1, 2, 4}) {
    ExecutionPlan plan = ExecutionPlan{};
    plan.dp = gpus;
    plan.ga_steps = a;
    if (!plan.valid_for(model, batch)) continue;
    const std::uint64_t bytes = estimator_.gpu_bytes(model, plan, batch);
    EXPECT_LE(bytes, prev) << name << " a=" << a;
    prev = bytes;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Zoo, ZooSweep, ::testing::ValuesIn(sweep_cases()),
    [](const ::testing::TestParamInfo<SweepCase>& info) {
      std::string name = info.param.model;
      for (char& c : name)
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      return name + "_g" + std::to_string(info.param.gpus);
    });

// f_overlap algebraic properties swept over a grid of (k, x, y).
class OverlapSweep
    : public ::testing::TestWithParam<std::tuple<double, double, double>> {};

TEST_P(OverlapSweep, BoundedScaledAndSymmetric) {
  const auto [k, x, y] = GetParam();
  const double v = f_overlap(k, x, y);
  EXPECT_GE(v, std::max(x, y) - 1e-12);
  EXPECT_LE(v, x + y + 1e-12);
  EXPECT_NEAR(f_overlap(k, y, x), v, 1e-12);          // symmetry
  EXPECT_NEAR(f_overlap(k, 2 * x, 2 * y), 2 * v, 1e-9);  // 1-homogeneity
}

INSTANTIATE_TEST_SUITE_P(
    Grid, OverlapSweep,
    ::testing::Combine(::testing::Values(1.0, 1.5, 2.0, 4.0, 16.0),
                       ::testing::Values(0.01, 1.0, 50.0),
                       ::testing::Values(0.02, 3.0)));

}  // namespace
}  // namespace rubick
