#include "common/table.h"

#include <gtest/gtest.h>

#include <sstream>

#include "common/error.h"
#include "common/log.h"

namespace rubick {
namespace {

TEST(TextTable, PrintsAlignedHeaderAndRows) {
  TextTable t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22"), std::string::npos);
  // Header separator row present.
  EXPECT_NE(out.find("|--"), std::string::npos);
}

TEST(TextTable, RowWidthMismatchThrows) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), InvariantError);
}

TEST(TextTable, CsvRoundtrip) {
  TextTable t({"x", "y"});
  t.add_row({"1", "2"});
  EXPECT_EQ(t.to_csv(), "x,y\n1,2\n");
}

TEST(TextTable, FmtPrecision) {
  EXPECT_EQ(TextTable::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::fmt(2.0, 0), "2");
}

TEST(Log, LevelFilteringIsMonotone) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  set_log_level(before);
}

}  // namespace
}  // namespace rubick
