#include "cluster/cluster.h"
#include "cluster/placement.h"
#include "common/resource.h"
#include "core/rubick_policy.h"
#include "core/scheduler.h"
#include "perf/oracle.h"
#include "perf/perf_store.h"
#include "plan/execution_plan.h"
#include "plan/memory_estimator.h"
#include "trace/job.h"

#include <gtest/gtest.h>

#include "model/model_zoo.h"

namespace rubick {
namespace {

class RubickPolicyTest : public ::testing::Test {
 protected:
  RubickPolicyTest()
      : oracle_(2025),
        store_(PerfModelStore::profile_models(
            oracle_, cluster_,
            {"ViT", "RoBERTa", "BERT", "T5", "GPT-2", "LLaMA-2-7B"})) {}

  JobSpec make_spec(int id, const std::string& model, int gpus,
                    bool guaranteed = true, const std::string& tenant = "t") {
    JobSpec spec;
    spec.id = id;
    spec.model_name = model;
    spec.requested = ResourceVector{gpus, 4 * gpus, 0};
    spec.global_batch = find_model(model).default_global_batch;
    spec.initial_plan = make_dp(gpus);
    spec.target_samples = 1e6;
    spec.guaranteed = guaranteed;
    spec.tenant = tenant;
    return spec;
  }

  SchedulerInput input_for(const std::vector<JobSpec*>& specs,
                           double now = 0.0) {
    SchedulerInput in;
    in.now = now;
    in.cluster = &cluster_;
    in.models = &store_;
    in.estimator = &estimator_;
    for (JobSpec* s : specs) {
      JobView v;
      v.spec = s;
      v.running = false;
      v.plan = s->initial_plan;
      v.remaining_samples = s->target_samples;
      v.queued_since = s->submit_time_s;
      in.jobs.push_back(v);
    }
    return in;
  }

  ClusterSpec cluster_;
  GroundTruthOracle oracle_;
  MemoryEstimator estimator_;
  PerfModelStore store_;
};

TEST_F(RubickPolicyTest, SchedulesSingleJobOnIdleCluster) {
  RubickPolicy policy;
  JobSpec spec = make_spec(0, "BERT", 4);
  const auto out = policy.schedule(input_for({&spec}));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_GT(out[0].placement.total_gpus(), 0);
  EXPECT_EQ(out[0].plan.num_gpus(), out[0].placement.total_gpus());
  EXPECT_TRUE(out[0].plan.valid_for(find_model("BERT"), 32));
}

TEST_F(RubickPolicyTest, IdleClusterGivesJobMoreThanRequest) {
  // Alone on the cluster, a scalable job should be grown beyond its request
  // (Rubick maximizes throughput with spare resources).
  RubickPolicy policy;
  JobSpec spec = make_spec(0, "T5", 2);
  spec.initial_plan = make_dp(2);
  const auto out = policy.schedule(input_for({&spec}));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_GT(out[0].placement.total_gpus(), 2);
}

TEST_F(RubickPolicyTest, AssignmentsNeverOverlapOrExceedCapacity) {
  RubickPolicy policy;
  std::vector<JobSpec> specs;
  std::vector<JobSpec*> ptrs;
  for (int i = 0; i < 12; ++i) {
    specs.push_back(make_spec(i, i % 2 ? "BERT" : "GPT-2", 4));
    specs.back().submit_time_s = i;
  }
  for (auto& s : specs) ptrs.push_back(&s);
  const auto out = policy.schedule(input_for(ptrs));
  std::vector<int> gpus_per_node(8, 0), cpus_per_node(8, 0);
  for (const auto& a : out) {
    for (const auto& slice : a.placement.slices) {
      gpus_per_node[slice.node] += slice.gpus;
      cpus_per_node[slice.node] += slice.cpus;
    }
  }
  for (int n = 0; n < 8; ++n) {
    EXPECT_LE(gpus_per_node[n], 8) << n;
    EXPECT_LE(cpus_per_node[n], 96) << n;
  }
}

TEST_F(RubickPolicyTest, QuotaLimitsGuaranteedAdmission) {
  // minRes for a job whose initial plan is already the best at its request
  // equals the request (4 GPUs here), so a 4-GPU quota admits exactly the
  // first of the two guaranteed jobs and an 8-GPU quota admits both.
  RubickConfig config;
  config.tenant_quota_gpus["small"] = 4;
  RubickPolicy policy(config);
  JobSpec a = make_spec(0, "BERT", 4, true, "small");
  JobSpec b = make_spec(1, "BERT", 4, true, "small");
  b.submit_time_s = 1.0;
  const auto out = policy.schedule(input_for({&a, &b}));
  int scheduled = 0;
  for (const auto& asg : out)
    if (asg.placement.total_gpus() > 0) ++scheduled;
  ASSERT_EQ(scheduled, 1);
  EXPECT_EQ(out[0].job_id, 0);  // FCFS: the earlier job wins the quota

  RubickConfig wide = config;
  wide.tenant_quota_gpus["small"] = 8;
  RubickPolicy policy2(wide);
  const auto out2 = policy2.schedule(input_for({&a, &b}));
  int scheduled2 = 0;
  for (const auto& asg : out2)
    if (asg.placement.total_gpus() > 0) ++scheduled2;
  EXPECT_EQ(scheduled2, 2);
}

TEST_F(RubickPolicyTest, BestEffortJobsDontConsumeQuota) {
  RubickConfig config;
  config.tenant_quota_gpus["small"] = 0;
  RubickPolicy policy(config);
  JobSpec be = make_spec(0, "BERT", 4, /*guaranteed=*/false, "small");
  const auto out = policy.schedule(input_for({&be}));
  ASSERT_EQ(out.size(), 1u);  // scheduled despite zero quota
  EXPECT_GT(out[0].placement.total_gpus(), 0);
}

TEST_F(RubickPolicyTest, OffloadJobsReceiveCpuBoost) {
  // A lone LLaMA-2-7B on one GPU must use ZeRO-Offload; the CPU loop should
  // give it far more than the 2/GPU floor.
  RubickConfig config;
  RubickPolicy policy(config);
  JobSpec spec = make_spec(0, "LLaMA-2-7B", 1);
  spec.initial_plan = make_zero_offload(1, 16, true);
  // Constrain to 1 GPU by making the model's curve saturate? Instead check
  // the chosen plan directly on a full-cluster run: it will be multi-GPU.
  const auto out = policy.schedule(input_for({&spec}));
  ASSERT_EQ(out.size(), 1u);
  // Whatever shape it picked, the CPU floor holds.
  EXPECT_GE(out[0].placement.total_cpus(),
            2 * out[0].placement.total_gpus());
}

TEST_F(RubickPolicyTest, FrozenJobsAreLeftAlone) {
  RubickPolicy policy;
  JobSpec spec = make_spec(0, "BERT", 2);
  SchedulerInput in = input_for({&spec});
  // Make it a running job that reconfigured very recently (gate fails).
  Placement p;
  p.add({0, 2, 8, 1ull << 30});
  in.jobs[0].running = true;
  in.jobs[0].placement = p;
  in.jobs[0].plan = make_dp(2);
  in.jobs[0].total_active_time_s = 100.0;  // (100 - 78)/100 < 0.97
  in.jobs[0].reconfig_count = 0;
  const auto out = policy.schedule(in);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].placement, p);
  EXPECT_EQ(out[0].plan, make_dp(2));
}

TEST_F(RubickPolicyTest, MatureJobsGetReconfigured) {
  RubickPolicy policy;
  JobSpec spec = make_spec(0, "T5", 2);
  SchedulerInput in = input_for({&spec});
  Placement p;
  p.add({0, 2, 8, 1ull << 30});
  in.jobs[0].running = true;
  in.jobs[0].placement = p;
  in.jobs[0].plan = make_dp(2);
  in.jobs[0].total_active_time_s = 100000.0;  // gate passes easily
  const auto out = policy.schedule(in);
  ASSERT_EQ(out.size(), 1u);
  // Alone on an idle cluster, the mature job should be grown.
  EXPECT_GT(out[0].placement.total_gpus(), 2);
}

TEST_F(RubickPolicyTest, VariantNamesAndConfigs) {
  EXPECT_EQ(RubickPolicy(RubickPolicy::full()).name(), "Rubick");
  EXPECT_EQ(RubickPolicy(RubickPolicy::plans_only()).name(), "Rubick-E");
  EXPECT_EQ(RubickPolicy(RubickPolicy::resources_only()).name(), "Rubick-R");
  EXPECT_EQ(RubickPolicy(RubickPolicy::neither()).name(), "Rubick-N");
}

TEST_F(RubickPolicyTest, RubickEKeepsRequestedResources) {
  RubickPolicy policy(RubickPolicy::plans_only());
  JobSpec spec = make_spec(0, "T5", 2);
  const auto out = policy.schedule(input_for({&spec}));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].placement.total_gpus(), 2);  // never grown
}

TEST_F(RubickPolicyTest, RubickNKeepsInitialPlan) {
  RubickPolicy policy(RubickPolicy::neither());
  JobSpec spec = make_spec(0, "T5", 2);
  spec.initial_plan = make_dp(2, 2);
  const auto out = policy.schedule(input_for({&spec}));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].plan, spec.initial_plan);
  EXPECT_EQ(out[0].placement.total_gpus(), 2);
}

TEST_F(RubickPolicyTest, RubickRScalesDpOnly) {
  RubickPolicy policy(RubickPolicy::resources_only());
  JobSpec spec = make_spec(0, "T5", 2);
  spec.initial_plan = make_zero_dp(2);
  const auto out = policy.schedule(input_for({&spec}));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].plan.zero, ZeroStage::kZeroDp);  // family preserved
  EXPECT_GE(out[0].placement.total_gpus(), 2);
}

TEST_F(RubickPolicyTest, MinResNeverExceedsRequest) {
  // SLA definition: the minimum demand must not exceed the original request
  // in any dimension. We verify indirectly: two guaranteed jobs requesting
  // the whole cluster each still both get admitted (minRes <= request and
  // the quota is unlimited), possibly shrunken.
  RubickPolicy policy;
  JobSpec a = make_spec(0, "GPT-2", 8);
  JobSpec b = make_spec(1, "GPT-2", 8);
  b.submit_time_s = 1.0;
  const auto out = policy.schedule(input_for({&a, &b}));
  EXPECT_EQ(out.size(), 2u);
}

}  // namespace
}  // namespace rubick
