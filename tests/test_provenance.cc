// Decision provenance (DESIGN.md §12): the recorder's sequencing contract,
// the JSONL round-trip, the why-queries behind rubick_explain, and the
// end-to-end guarantees the log makes:
//
//   1. A fast-path replay round re-emits the cached slow-path decisions
//      byte-identically (same rendering, fast_path flag and matched digest
//      aside), and matches a fast-path-off policy on the same input.
//   2. A faulted run logs the fault lines plus degraded records carrying
//      the retry/backoff evidence.
//   3. Concurrent runs produce logs identical to sequential ones.
//   4. Baseline policies record through the shared emit_assignments hook.
#include <deque>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "baselines/policy_factory.h"
#include "cluster/cluster.h"
#include "common/error.h"
#include "common/resource.h"
#include "common/threadpool.h"
#include "common/units.h"
#include "core/rubick_policy.h"
#include "core/scheduler.h"
#include "failure/fault_plan.h"
#include "model/model_zoo.h"
#include "perf/oracle.h"
#include "perf/perf_store.h"
#include "plan/execution_plan.h"
#include "plan/memory_estimator.h"
#include "provenance/decision_log.h"
#include "provenance/provenance.h"
#include "sim/provenance_observer.h"
#include "sim/simulator.h"
#include "telemetry/trace.h"
#include "trace/job.h"
#include "trace/trace_gen.h"

namespace rubick {
namespace {

// -------------------------------------------------------------------------
// Recorder basics
// -------------------------------------------------------------------------

TEST(ProvenanceRecorder, AssignsSequentialSeqsAndDrains) {
  ProvenanceRecorder recorder;
  EXPECT_EQ(recorder.rounds_recorded(), 0u);

  RoundRecord round;
  round.now_s = 1.0;
  EXPECT_EQ(recorder.record(round), 1u);
  EXPECT_EQ(recorder.record(round), 2u);
  EXPECT_EQ(recorder.rounds_recorded(), 2u);

  const std::vector<RoundRecord> taken = recorder.take_rounds();
  ASSERT_EQ(taken.size(), 2u);
  EXPECT_EQ(taken[0].seq, 1u);
  EXPECT_EQ(taken[1].seq, 2u);
  EXPECT_TRUE(recorder.take_rounds().empty());  // drained
  // The sequence keeps counting across drains.
  EXPECT_EQ(recorder.record(round), 3u);
  EXPECT_EQ(recorder.rounds_recorded(), 3u);
}

TEST(ProvenanceBuild, CompiledInByDefault) {
  // The tier-1 build must carry provenance; the RUBICK_PROVENANCE_DISABLED
  // configuration is exercised by compilation only (DESIGN.md §12).
  EXPECT_TRUE(kProvenanceCompiledIn);
}

// -------------------------------------------------------------------------
// JSONL round-trip
// -------------------------------------------------------------------------

RoundRecord make_full_round() {
  RoundRecord round;
  round.seq = 7;
  round.now_s = 123.456;
  round.policy = "Rubick";
  round.digest = 0xdeadbeefcafef00dULL;
  round.fast_path = true;

  DecisionRecord d;
  d.job_id = 3;
  d.kind = DecisionKind::kShrink;
  d.prev_gpus = 8;
  d.gpus = 4;
  d.cpus = 16;
  d.nodes = 1;
  d.has_prev_plan = true;
  d.prev_plan = make_dp(8);
  d.has_plan = true;
  d.plan = make_dp(4);
  d.curve.curve_key = "BERT|32|full";
  d.curve.min_feasible_gpus = 1;
  d.curve.max_useful_gpus = 16;
  d.curve.candidate_width_count = 5;
  d.curve.widths = {1, 4, 8};
  d.curve.width_throughput = {10.0, 35.5, 60.25};
  d.curve.chosen_throughput = 35.5;
  d.sla.guaranteed = true;
  d.sla.baseline_throughput = 33.0;
  d.sla.min_gpus = 4;
  d.sla.min_cpus = 16;
  d.gates.frozen = true;
  d.gates.backoff_gated = true;
  d.gates.reconfig_failures = 2;
  d.gates.retry_not_before_s = 200.0;
  round.decisions.push_back(d);

  DecisionRecord q;
  q.job_id = 9;  // queued job: no plans, no curve
  round.decisions.push_back(q);

  TradeEvent t;
  t.gpu = true;
  t.claimant_id = 5;
  t.victim_id = 3;
  t.node = 2;
  t.claimant_slope = 1.5;
  t.victim_slope = 0.25;
  t.victim_before = 8;
  t.victim_after = 7;
  t.victim_min = 4;
  t.forced = true;
  round.trades.push_back(t);
  return round;
}

TEST(DecisionLogIo, RoundTripIsByteIdentical) {
  const RoundRecord round = make_full_round();
  const std::string line = round_to_json(round);

  std::istringstream is(
      "{\"type\":\"header\",\"schema_version\":1,\"policy\":\"Rubick\","
      "\"jobs\":2}\n" +
      line +
      "\n{\"type\":\"fault\",\"t_s\":99.5,\"kind\":\"node-crash\","
      "\"node\":2,\"job\":-1}\n"
      "{\"type\":\"run_end\",\"t_s\":200,\"rounds\":1,\"faults\":1}\n");
  const DecisionLog log = read_decision_log(is);

  EXPECT_EQ(log.schema_version, 1);
  EXPECT_EQ(log.policy, "Rubick");
  ASSERT_EQ(log.rounds.size(), 1u);
  ASSERT_EQ(log.faults.size(), 1u);
  EXPECT_EQ(log.faults[0].kind, "node-crash");
  EXPECT_EQ(log.faults[0].node, 2);
  EXPECT_EQ(log.faults[0].job_id, -1);

  // Re-rendering the parsed round reproduces the input byte-for-byte:
  // deterministic key order and number formatting, and the digest survives
  // the trip through JSON as a hex string.
  EXPECT_EQ(round_to_json(log.rounds[0]), line);
  EXPECT_EQ(log.rounds[0].digest, round.digest);
  EXPECT_TRUE(log.rounds[0].fast_path);
  ASSERT_EQ(log.rounds[0].decisions.size(), 2u);
  const DecisionRecord& d = log.rounds[0].decisions[0];
  EXPECT_EQ(d.kind, DecisionKind::kShrink);
  EXPECT_TRUE(d.has_prev_plan);
  EXPECT_EQ(d.prev_plan, make_dp(8));
  EXPECT_EQ(d.plan, make_dp(4));
  EXPECT_EQ(d.curve.widths, (std::vector<int>{1, 4, 8}));
  EXPECT_TRUE(d.gates.frozen);
  EXPECT_EQ(d.gates.reconfig_failures, 2);
  const DecisionRecord& q = log.rounds[0].decisions[1];
  EXPECT_FALSE(q.has_plan);
  EXPECT_TRUE(q.curve.curve_key.empty());
  ASSERT_EQ(log.rounds[0].trades.size(), 1u);
  EXPECT_EQ(trade_event_to_json(log.rounds[0].trades[0]),
            trade_event_to_json(round.trades[0]));
}

TEST(DecisionLogIo, MalformedLineNamesLineNumber) {
  std::istringstream is(
      "{\"type\":\"header\",\"schema_version\":1,\"policy\":\"x\",\"jobs\":0}"
      "\nnot json\n");
  try {
    read_decision_log(is);
    FAIL() << "expected InvariantError";
  } catch (const InvariantError& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos)
        << e.what();
  }
}

// -------------------------------------------------------------------------
// Why-queries
// -------------------------------------------------------------------------

class QueryTest : public ::testing::Test {
 protected:
  QueryTest() {
    // Three rounds: job 1 admitted at t=10, shrunk at t=20 (funded by a
    // trade to job 2), kept at t=30. A fault sits between rounds 1 and 2.
    log_.schema_version = 1;
    log_.rounds.push_back(round(1, 10.0, {admit(1, 8), queue(2)}));
    RoundRecord r2 = round(2, 20.0, {shrink(1, 8, 4), admit(2, 4)});
    TradeEvent t;
    t.claimant_id = 2;
    t.victim_id = 1;
    t.victim_before = 8;
    t.victim_after = 7;
    r2.trades.push_back(t);
    log_.rounds.push_back(r2);
    log_.rounds.push_back(round(3, 30.0, {keep(1, 4), keep(2, 4)}));
    FaultLogRecord f;
    f.t_s = 15.0;
    f.kind = "node-crash";
    f.node = 0;
    log_.faults.push_back(f);
  }

  static RoundRecord round(std::uint64_t seq, double now_s,
                           std::vector<DecisionRecord> decisions) {
    RoundRecord r;
    r.seq = seq;
    r.now_s = now_s;
    r.decisions = std::move(decisions);
    return r;
  }
  static DecisionRecord decision(int job, DecisionKind kind, int prev,
                                 int gpus) {
    DecisionRecord d;
    d.job_id = job;
    d.kind = kind;
    d.prev_gpus = prev;
    d.gpus = gpus;
    return d;
  }
  static DecisionRecord admit(int job, int gpus) {
    return decision(job, DecisionKind::kAdmit, 0, gpus);
  }
  static DecisionRecord shrink(int job, int prev, int gpus) {
    return decision(job, DecisionKind::kShrink, prev, gpus);
  }
  static DecisionRecord keep(int job, int gpus) {
    return decision(job, DecisionKind::kKeep, gpus, gpus);
  }
  static DecisionRecord queue(int job) {
    return decision(job, DecisionKind::kQueue, 0, 0);
  }

  DecisionLog log_;
};

TEST_F(QueryTest, FindAndLastRound) {
  EXPECT_EQ(find_decision(log_.rounds[0], 2)->kind, DecisionKind::kQueue);
  EXPECT_EQ(find_decision(log_.rounds[0], 99), nullptr);

  const RoundRecord* at_25 = last_round_with_job(log_, 1, 25.0);
  ASSERT_NE(at_25, nullptr);
  EXPECT_EQ(at_25->seq, 2u);
  const RoundRecord* at_end = last_round_with_job(log_, 1, 1e18);
  ASSERT_NE(at_end, nullptr);
  EXPECT_EQ(at_end->seq, 3u);
  EXPECT_EQ(last_round_with_job(log_, 1, 5.0), nullptr);
  EXPECT_EQ(last_round_with_job(log_, 99, 1e18), nullptr);
}

TEST_F(QueryTest, LastAllocationChangeSkipsKeeps) {
  // At t=30 job 1's latest record is a keep; the last *change* is the
  // shrink at t=20.
  const JobChange change = last_allocation_change(log_, 1, 1e18);
  ASSERT_NE(change.round, nullptr);
  EXPECT_EQ(change.round->seq, 2u);
  EXPECT_EQ(change.record->kind, DecisionKind::kShrink);

  const JobChange early = last_allocation_change(log_, 1, 15.0);
  ASSERT_NE(early.round, nullptr);
  EXPECT_EQ(early.record->kind, DecisionKind::kAdmit);

  EXPECT_EQ(last_allocation_change(log_, 99, 1e18).round, nullptr);
}

TEST_F(QueryTest, ShrinkEventsAndTradesAndFaults) {
  const std::vector<JobChange> all = shrink_events(log_, -1);
  ASSERT_EQ(all.size(), 1u);
  EXPECT_EQ(all[0].record->job_id, 1);
  EXPECT_EQ(shrink_events(log_, 2).size(), 0u);

  const auto trades = trades_for(log_.rounds[1], 1);
  ASSERT_EQ(trades.size(), 1u);
  EXPECT_EQ(trades[0]->claimant_id, 2);
  EXPECT_TRUE(trades_for(log_.rounds[0], 1).empty());

  const auto faults = faults_between(log_, 10.0, 20.0);
  ASSERT_EQ(faults.size(), 1u);
  EXPECT_EQ(faults[0]->kind, "node-crash");
  EXPECT_TRUE(faults_between(log_, 15.0, 20.0).empty());  // (after, until]
}

TEST_F(QueryTest, DiffIgnoresSeqAndFastPathButCatchesDecisions) {
  DecisionLog other = log_;
  for (auto& r : other.rounds) {
    r.seq += 100;  // replayed logs renumber
    r.fast_path = !r.fast_path;
    r.digest ^= 0xabcdef;  // digests hash run-local state, never comparable
  }
  EXPECT_TRUE(diff_logs(log_, other).empty());

  other.rounds[1].decisions[0].gpus = 2;
  const auto diffs = diff_logs(log_, other);
  ASSERT_FALSE(diffs.empty());
  EXPECT_NE(diffs[0].find("job 1"), std::string::npos) << diffs[0];

  DecisionLog truncated = log_;
  truncated.rounds.pop_back();
  EXPECT_FALSE(diff_logs(log_, truncated).empty());
}

// -------------------------------------------------------------------------
// Policy-level recording
// -------------------------------------------------------------------------

class PolicyProvenanceTest : public ::testing::Test {
 protected:
  PolicyProvenanceTest()
      : oracle_(2025),
        store_(PerfModelStore::profile_models(
            oracle_, cluster_, {"GPT-2", "BERT", "LLaMA-2-7B"})) {}

  JobSpec make_spec(int id, const std::string& model, int gpus) {
    JobSpec spec;
    spec.id = id;
    spec.model_name = model;
    spec.requested = ResourceVector{gpus, 4 * gpus, 0};
    spec.global_batch = find_model(model).default_global_batch;
    spec.initial_plan = make_dp(gpus);
    spec.target_samples = 1e6;
    spec.tenant = "t";
    return spec;
  }

  SchedulerInput input_for(const std::deque<JobSpec>& specs,
                           double now = 0.0) const {
    SchedulerInput in;
    in.now = now;
    in.cluster = &cluster_;
    in.models = &store_;
    in.estimator = &estimator_;
    for (const JobSpec& s : specs) {
      JobView v;
      v.spec = &s;
      v.running = false;
      v.plan = s.initial_plan;
      v.remaining_samples = s.target_samples;
      v.queued_since = s.submit_time_s;
      in.jobs.push_back(v);
    }
    return in;
  }

  ClusterSpec cluster_;
  GroundTruthOracle oracle_;
  MemoryEstimator estimator_;
  PerfModelStore store_;
};

// Deterministic rendering of a round with seq/fast_path normalized away —
// the byte-comparison key for replay identity.
std::string round_body(RoundRecord round) {
  round.seq = 0;
  round.fast_path = false;
  return round_to_json(round);
}

TEST_F(PolicyProvenanceTest, FastPathReplayIsByteIdenticalToSlowPath) {
  std::deque<JobSpec> specs;
  specs.push_back(make_spec(0, "BERT", 4));
  specs.push_back(make_spec(1, "GPT-2", 2));
  const SchedulerInput in = input_for(specs);

  ProvenanceRecorder fast_rec;
  RubickPolicy fast;
  fast.set_provenance(&fast_rec);

  ProvenanceRecorder slow_rec;
  RubickConfig off;
  off.enable_fast_path = false;
  RubickPolicy slow(off);
  slow.set_provenance(&slow_rec);

  fast.schedule(in);
  fast.schedule(in);
  fast.schedule(in);
  slow.schedule(in);
  slow.schedule(in);
  slow.schedule(in);
  ASSERT_EQ(fast.fast_path_rounds(), 2u);
  ASSERT_EQ(slow.fast_path_rounds(), 0u);

  const std::vector<RoundRecord> fast_rounds = fast_rec.take_rounds();
  const std::vector<RoundRecord> slow_rounds = slow_rec.take_rounds();
  ASSERT_EQ(fast_rounds.size(), 3u);
  ASSERT_EQ(slow_rounds.size(), 3u);

  // Replay rounds are marked and carry the matched digest.
  EXPECT_FALSE(fast_rounds[0].fast_path);
  EXPECT_TRUE(fast_rounds[1].fast_path);
  EXPECT_TRUE(fast_rounds[2].fast_path);
  EXPECT_EQ(fast_rounds[1].digest, fast_rounds[0].digest);
  EXPECT_FALSE(slow_rounds[1].fast_path);

  // Byte-identity: the replay re-emits the slow round verbatim, and both
  // policies agree round-for-round.
  const std::string reference = round_body(fast_rounds[0]);
  EXPECT_EQ(round_body(fast_rounds[1]), reference);
  EXPECT_EQ(round_body(fast_rounds[2]), reference);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(round_body(slow_rounds[i]), reference) << "round " << i;
  }
}

TEST_F(PolicyProvenanceTest, RecordsCurveEvidenceAndTrades) {
  std::deque<JobSpec> specs;
  for (int i = 0; i < 6; ++i)
    specs.push_back(make_spec(i, i % 2 ? "GPT-2" : "BERT", 32));

  ProvenanceRecorder recorder;
  RubickPolicy policy;
  policy.set_provenance(&recorder);
  policy.schedule(input_for(specs));

  const std::vector<RoundRecord> rounds = recorder.take_rounds();
  ASSERT_EQ(rounds.size(), 1u);
  const RoundRecord& round = rounds[0];
  EXPECT_EQ(round.policy, "Rubick");
  EXPECT_NE(round.digest, 0u);
  ASSERT_EQ(round.decisions.size(), specs.size());

  for (const DecisionRecord& d : round.decisions) {
    if (d.gpus <= 0) continue;
    EXPECT_TRUE(d.has_plan) << d.job_id;
    // Granted jobs carry curve evidence: the chosen width is one of the
    // sampled landmarks and its throughput is the envelope value there.
    ASSERT_FALSE(d.curve.curve_key.empty()) << d.job_id;
    ASSERT_EQ(d.curve.widths.size(), d.curve.width_throughput.size());
    bool chosen_sampled = false;
    for (std::size_t i = 0; i < d.curve.widths.size(); ++i) {
      if (d.curve.widths[i] == d.gpus) {
        chosen_sampled = true;
        EXPECT_GT(d.curve.width_throughput[i], 0.0);
      }
    }
    EXPECT_TRUE(chosen_sampled) << d.job_id;
    EXPECT_GT(d.curve.chosen_throughput, 0.0) << d.job_id;
    EXPECT_GE(d.curve.candidate_width_count,
              static_cast<int>(d.curve.widths.size()) > 0 ? 1 : 0);
  }

  // Six 32-GPU requests cannot all fit on 64 GPUs: Algorithm 1 must have
  // traded, and every trade references jobs decided this round.
  std::map<int, const DecisionRecord*> by_id;
  for (const DecisionRecord& d : round.decisions) by_id[d.job_id] = &d;
  for (const TradeEvent& t : round.trades) {
    EXPECT_EQ(by_id.count(t.claimant_id), 1u);
    EXPECT_EQ(by_id.count(t.victim_id), 1u);
    EXPECT_GT(t.victim_before, t.victim_after);
  }
}

TEST_F(PolicyProvenanceTest, NoRecorderMeansNoRecords) {
  std::deque<JobSpec> specs;
  specs.push_back(make_spec(0, "BERT", 4));
  RubickPolicy policy;
  EXPECT_EQ(policy.provenance(), nullptr);
  policy.schedule(input_for(specs));  // must not crash, record, or leak
}

// -------------------------------------------------------------------------
// Simulator integration (observer, faults, concurrency, baselines)
// -------------------------------------------------------------------------

class SimProvenanceTest : public ::testing::Test {
 protected:
  SimProvenanceTest() : oracle_(2025) {}

  std::vector<JobSpec> trace(int num_jobs, double window_h) {
    const TraceGenerator gen(cluster_, oracle_);
    TraceOptions opts;
    opts.seed = 7;
    opts.num_jobs = num_jobs;
    opts.window_s = hours(window_h);
    return gen.generate(opts);
  }

  // Runs `policy` over `jobs` with a recorder + observer attached and
  // returns the log lines the observer produced.
  std::vector<std::string> run_logged(const std::vector<JobSpec>& jobs,
                                      SchedulerPolicy& policy,
                                      RunContext ctx,
                                      TraceRecorder* trace_rec = nullptr) {
    ProvenanceRecorder recorder;
    ProvenanceObserver observer(&recorder, policy.name(), trace_rec);
    policy.set_provenance(&recorder);
    ctx.observer = &observer;
    const Simulator sim(cluster_, oracle_);
    sim.run(jobs, policy, ctx);
    return observer.lines();
  }

  static DecisionLog parse(const std::vector<std::string>& lines) {
    std::ostringstream joined;
    for (const std::string& line : lines) joined << line << '\n';
    std::istringstream is(joined.str());
    return read_decision_log(is);
  }

  // The round digest mixes run-local state (the perf-store address), so two
  // runs of the same workload log different digests by design. Zero them out
  // before comparing logged lines byte-for-byte.
  static std::vector<std::string> zero_digests(std::vector<std::string> lines) {
    const std::string key = "\"digest\":\"0x";
    for (std::string& line : lines) {
      const std::size_t pos = line.find(key);
      if (pos == std::string::npos) continue;
      const std::size_t hex = pos + key.size();
      EXPECT_GE(line.size(), hex + 16) << line;
      if (line.size() >= hex + 16) line.replace(hex, 16, "0000000000000000");
    }
    return lines;
  }

  ClusterSpec cluster_;
  GroundTruthOracle oracle_;
};

TEST_F(SimProvenanceTest, FaultedRunLogsDegradationWithRetryEvidence) {
  // Every warm reconfiguration fails: jobs burn retries (backoff evidence)
  // and degrade to last-known-good (degraded records), and every failure
  // is witnessed as a fault line.
  const std::vector<JobSpec> jobs = trace(16, 1.0);
  const FaultPlan plan = FaultPlan::from_events(2, {}, 1.0);
  SimulationOptions options;
  options.failure.max_reconfig_retries = 2;
  options.failure.retry_backoff_base_s = 10.0;
  options.failure.retry_backoff_cap_s = 40.0;
  RunContext ctx;
  ctx.fault_plan = &plan;
  ctx.options = &options;

  RubickPolicy policy;
  const DecisionLog log = parse(run_logged(jobs, policy, ctx));

  ASSERT_FALSE(log.rounds.empty());
  int reconfig_faults = 0;
  for (const FaultLogRecord& f : log.faults)
    reconfig_faults += f.kind == "reconfig-failure" ? 1 : 0;
  ASSERT_GT(reconfig_faults, 0);

  bool saw_failures = false;
  bool saw_backoff = false;
  bool saw_degraded = false;
  for (const RoundRecord& r : log.rounds) {
    for (const DecisionRecord& d : r.decisions) {
      saw_failures |= d.gates.reconfig_failures > 0;
      saw_backoff |= d.gates.retry_not_before_s > 0.0;
      saw_degraded |= d.gates.degraded;
    }
  }
  EXPECT_TRUE(saw_failures);
  EXPECT_TRUE(saw_backoff);
  EXPECT_TRUE(saw_degraded);
}

TEST_F(SimProvenanceTest, ConcurrentRunsLogIdenticallyToSequential) {
  const std::vector<JobSpec> jobs = trace(10, 1.0);
  const FaultPlan plan = FaultPlan::from_events(3, {}, 0.5);
  RunContext ctx;
  ctx.fault_plan = &plan;

  RubickPolicy seq_policy;
  const std::vector<std::string> raw_reference =
      run_logged(jobs, seq_policy, ctx);
  ASSERT_FALSE(raw_reference.empty());
  const std::vector<std::string> reference = zero_digests(raw_reference);

  ThreadPool pool(2);
  auto fut_a = pool.submit([&] {
    RubickPolicy p;
    return run_logged(jobs, p, ctx);
  });
  auto fut_b = pool.submit([&] {
    RubickPolicy p;
    return run_logged(jobs, p, ctx);
  });
  const std::vector<std::string> lines_a = fut_a.get();
  const std::vector<std::string> lines_b = fut_b.get();
  // Apart from the run-local digest, the logged bytes must be identical.
  EXPECT_EQ(zero_digests(lines_a), reference);
  EXPECT_EQ(zero_digests(lines_b), reference);
  // And the structured diff (which ignores digests) must come up empty.
  EXPECT_TRUE(diff_logs(parse(lines_a), parse(raw_reference)).empty());
}

TEST_F(SimProvenanceTest, ObserverEmitsFlowEventsPerRound) {
  const std::vector<JobSpec> jobs = trace(6, 0.5);
  TraceRecorder trace_rec;
  trace_rec.set_enabled(true);

  RubickPolicy policy;
  const std::vector<std::string> lines =
      run_logged(jobs, policy, RunContext{}, &trace_rec);
  const DecisionLog log = parse(lines);
  ASSERT_FALSE(log.rounds.empty());

  // One sim-side flow end per round, carrying the round's seq as its id.
  std::map<std::uint64_t, int> flow_ends;
  for (const TraceEvent& ev : trace_rec.snapshot()) {
    if (ev.ph == 'f') {
      EXPECT_EQ(ev.pid, kTraceSimPid);
      ++flow_ends[ev.flow_id];
    }
  }
  EXPECT_EQ(flow_ends.size(), log.rounds.size());
  for (const RoundRecord& r : log.rounds) {
    EXPECT_EQ(flow_ends[r.seq], 1) << "round " << r.seq;
  }
}

TEST_F(SimProvenanceTest, BaselinePoliciesRecordThroughSharedHook) {
  const std::vector<JobSpec> jobs = trace(8, 0.5);
  const auto policy = PolicyFactory::global().create("synergy");
  const DecisionLog log = parse(run_logged(jobs, *policy, RunContext{}));

  ASSERT_FALSE(log.rounds.empty());
  EXPECT_EQ(log.policy, policy->name());
  bool saw_admit = false;
  for (const RoundRecord& r : log.rounds) {
    EXPECT_EQ(r.policy, policy->name());
    EXPECT_EQ(r.digest, 0u);  // baselines have no round digest
    EXPECT_FALSE(r.fast_path);
    EXPECT_TRUE(r.trades.empty());  // no Algorithm-1 trade chain
    for (const DecisionRecord& d : r.decisions)
      saw_admit |= d.kind == DecisionKind::kAdmit;
  }
  EXPECT_TRUE(saw_admit);
}

}  // namespace
}  // namespace rubick
