#include "cluster/cluster.h"
#include "perf/oracle.h"
#include "telemetry/timeline.h"

#include <gtest/gtest.h>

#include <limits>
#include <string>

#include "common/error.h"
#include "common/units.h"
#include "core/rubick_policy.h"
#include "sim/simulator.h"
#include "trace/trace_gen.h"

namespace rubick {
namespace {

TimelineSample sample(double t, int busy, int total, int running = 0,
                      int pending = 0) {
  return TimelineSample{t, busy, total, running, pending};
}

TEST(Timeline, EmptyTimelineReportsZero) {
  const ClusterTimeline tl;
  EXPECT_TRUE(tl.empty());
  EXPECT_DOUBLE_EQ(tl.average_utilization(), 0.0);
  EXPECT_DOUBLE_EQ(tl.average_queue_length(), 0.0);
}

TEST(Timeline, TimeWeightedAverageUtilization) {
  ClusterTimeline tl;
  tl.record(sample(0, 32, 64));   // 50% for 10 s
  tl.record(sample(10, 64, 64));  // 100% for 30 s
  tl.record(sample(40, 0, 64));   // terminal sample (no weight)
  EXPECT_NEAR(tl.average_utilization(), (0.5 * 10 + 1.0 * 30) / 40.0, 1e-12);
}

TEST(Timeline, AverageQueueLength) {
  ClusterTimeline tl;
  tl.record(sample(0, 0, 64, 0, 4));
  tl.record(sample(10, 0, 64, 0, 0));
  tl.record(sample(20, 0, 64, 0, 0));
  EXPECT_NEAR(tl.average_queue_length(), 2.0, 1e-12);
}

TEST(Timeline, FullyBusyFraction) {
  ClusterTimeline tl;
  tl.record(sample(0, 64, 64));
  tl.record(sample(30, 63, 64));
  tl.record(sample(40, 0, 64));
  EXPECT_NEAR(tl.fully_busy_fraction(), 0.75, 1e-12);
}

TEST(Timeline, SameTimestampReplaces) {
  ClusterTimeline tl;
  tl.record(sample(0, 10, 64));
  tl.record(sample(0, 20, 64));
  ASSERT_EQ(tl.size(), 1u);
  EXPECT_EQ(tl.samples()[0].busy_gpus, 20);
}

TEST(Timeline, OutOfOrderThrows) {
  ClusterTimeline tl;
  tl.record(sample(10, 0, 64));
  EXPECT_THROW(tl.record(sample(5, 0, 64)), InvariantError);
}

TEST(Timeline, InvalidSampleThrows) {
  ClusterTimeline tl;
  EXPECT_THROW(tl.record(sample(0, 65, 64)), InvariantError);
  EXPECT_THROW(tl.record(sample(0, -1, 64)), InvariantError);
  EXPECT_THROW(tl.record(sample(0, 0, 0)), InvariantError);
}

TEST(Timeline, BucketsCoverSpan) {
  ClusterTimeline tl;
  tl.record(sample(0, 0, 64));    // 0% for first half
  tl.record(sample(50, 64, 64));  // 100% for second half
  tl.record(sample(100, 0, 64));
  const auto buckets = tl.utilization_buckets(2);
  ASSERT_EQ(buckets.size(), 2u);
  EXPECT_NEAR(buckets[0], 0.0, 1e-9);
  EXPECT_NEAR(buckets[1], 1.0, 1e-9);
}

TEST(Timeline, SparklineMapsLevels) {
  EXPECT_EQ(ClusterTimeline::sparkline({0.0, 1.0}), " #");
  EXPECT_EQ(ClusterTimeline::sparkline({0.5}).size(), 1u);
}

TEST(Timeline, EmptyBucketsAreZero) {
  const ClusterTimeline tl;
  const auto buckets = tl.utilization_buckets(4);
  ASSERT_EQ(buckets.size(), 4u);
  for (const double b : buckets) EXPECT_DOUBLE_EQ(b, 0.0);
}

TEST(Timeline, SingleSampleFillsAllBuckets) {
  ClusterTimeline tl;
  tl.record(sample(5, 32, 64));
  const auto buckets = tl.utilization_buckets(3);
  ASSERT_EQ(buckets.size(), 3u);
  for (const double b : buckets) EXPECT_NEAR(b, 0.5, 1e-12);
}

TEST(Timeline, MoreBucketsThanSamples) {
  ClusterTimeline tl;
  tl.record(sample(0, 0, 64));    // 0% over [0, 50)
  tl.record(sample(50, 64, 64));  // 100% over [50, 100)
  tl.record(sample(100, 0, 64));
  const auto buckets = tl.utilization_buckets(8);
  ASSERT_EQ(buckets.size(), 8u);
  // Each 12.5 s bucket lies entirely inside one segment.
  for (int b = 0; b < 4; ++b) EXPECT_NEAR(buckets[b], 0.0, 1e-9) << b;
  for (int b = 4; b < 8; ++b) EXPECT_NEAR(buckets[b], 1.0, 1e-9) << b;
}

TEST(Timeline, BucketStraddlingSegmentsIntegratesExactly) {
  ClusterTimeline tl;
  tl.record(sample(0, 0, 64));    // 0% over [0, 30)
  tl.record(sample(30, 64, 64));  // 100% over [30, 90)
  tl.record(sample(90, 0, 64));
  const auto buckets = tl.utilization_buckets(2);  // [0,45) and [45,90)
  ASSERT_EQ(buckets.size(), 2u);
  EXPECT_NEAR(buckets[0], 15.0 / 45.0, 1e-9);  // 30 s idle + 15 s busy
  EXPECT_NEAR(buckets[1], 1.0, 1e-9);
}

TEST(Timeline, UtilizationAtIsAStepFunction) {
  ClusterTimeline tl;
  tl.record(sample(10, 16, 64));
  tl.record(sample(20, 64, 64));
  EXPECT_DOUBLE_EQ(tl.utilization_at(5), 0.0);     // before first sample
  EXPECT_DOUBLE_EQ(tl.utilization_at(10), 0.25);   // at the sample
  EXPECT_DOUBLE_EQ(tl.utilization_at(15), 0.25);   // held until the next
  EXPECT_DOUBLE_EQ(tl.utilization_at(20), 1.0);
  EXPECT_DOUBLE_EQ(tl.utilization_at(1000), 1.0);  // last value persists
}

TEST(Timeline, SparklineGuardsNonFiniteLevels) {
  const std::string s = ClusterTimeline::sparkline(
      {std::numeric_limits<double>::quiet_NaN(),
       std::numeric_limits<double>::infinity(), 1.0});
  ASSERT_EQ(s.size(), 3u);
  EXPECT_EQ(s[0], ' ');  // non-finite clamps to the empty level
  EXPECT_EQ(s[1], ' ');
  EXPECT_EQ(s[2], '#');
}

TEST(Timeline, SimulatorRecordsTimeline) {
  const ClusterSpec cluster;
  const GroundTruthOracle oracle(2025);
  const TraceGenerator gen(cluster, oracle);
  TraceOptions opts;
  opts.seed = 3;
  opts.num_jobs = 30;
  opts.window_s = hours(2);
  const auto jobs = gen.generate(opts);
  RubickPolicy policy;
  Simulator sim(cluster, oracle);
  const SimResult r = sim.run(jobs, policy);
  EXPECT_GE(r.timeline.size(), 10u);
  EXPECT_GT(r.timeline.average_utilization(), 0.0);
  EXPECT_LE(r.timeline.average_utilization(), 1.0);
}

}  // namespace
}  // namespace rubick
