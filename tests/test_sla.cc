// Unit tests of the performance-guarantee SLA machinery in isolation.
#include "cluster/cluster.h"
#include "common/resource.h"
#include "core/plan_selector.h"
#include "core/predictor.h"
#include "core/sla.h"
#include "model/model_spec.h"
#include "perf/analytic.h"
#include "perf/oracle.h"
#include "perf/perf_store.h"
#include "plan/execution_plan.h"
#include "plan/memory_estimator.h"
#include "trace/job.h"

#include <gtest/gtest.h>

#include "model/model_zoo.h"
#include "perf/profiler.h"

namespace rubick {
namespace {

class SlaTest : public ::testing::Test {
 protected:
  SlaTest()
      : oracle_(2025),
        store_(PerfModelStore::profile_models(
            oracle_, cluster_, {"BERT", "GPT-2", "T5", "LLaMA-2-7B"})),
        predictor_(cluster_, store_, estimator_),
        sla_(predictor_, store_, cluster_) {}

  JobSpec spec_for(const std::string& model, int gpus,
                   const ExecutionPlan& plan, bool guaranteed = true) {
    static int next_id = 0;
    JobSpec spec;
    spec.id = next_id++;
    spec.model_name = model;
    spec.requested = ResourceVector{gpus, 4 * gpus, 0};
    spec.global_batch = find_model(model).default_global_batch;
    spec.initial_plan = plan;
    spec.guaranteed = guaranteed;
    return spec;
  }

  ClusterSpec cluster_;
  GroundTruthOracle oracle_;
  MemoryEstimator estimator_;
  PerfModelStore store_;
  BestPlanPredictor predictor_;
  SlaCalculator sla_;
  FullPlanSelector full_;
};

TEST_F(SlaTest, BaselineMatchesFittedPrediction) {
  const JobSpec spec = spec_for("BERT", 4, make_dp(4));
  const ModelSpec& model = find_model("BERT");
  const PerfContext ctx = make_perf_context(cluster_, 4, 16);
  EXPECT_DOUBLE_EQ(sla_.baseline_throughput(spec),
                   store_.get("BERT").predict_throughput(model, make_dp(4),
                                                         32, ctx));
}

TEST_F(SlaTest, BaselineIsPositiveFloorForInvalidPlan) {
  JobSpec spec = spec_for("BERT", 4, make_dp(4));
  spec.initial_plan.dp = 3;  // 32 % 3 != 0: invalid
  EXPECT_GT(sla_.baseline_throughput(spec), 0.0);
  EXPECT_LT(sla_.baseline_throughput(spec), 1e-6);
}

TEST_F(SlaTest, MinResNeverExceedsRequest) {
  for (const char* name : {"BERT", "GPT-2", "T5"}) {
    const ModelSpec& m = find_model(name);
    for (int g : {1, 2, 4, 8}) {
      ExecutionPlan plan = make_dp(g);
      if (!plan.valid_for(m, m.default_global_batch)) continue;
      const JobSpec spec = spec_for(name, g, plan);
      const ResourceVector mr = sla_.min_res(spec, full_);
      EXPECT_LE(mr.gpus, spec.requested.gpus) << name << " g=" << g;
      EXPECT_LE(mr.cpus, spec.requested.cpus) << name << " g=" << g;
      EXPECT_GE(mr.gpus, 1);
    }
  }
}

TEST_F(SlaTest, MinResAchievesBaseline) {
  const JobSpec spec = spec_for("GPT-2", 8, make_zero_offload(8, 4, true));
  const ResourceVector mr = sla_.min_res(spec, full_);
  const ModelSpec& model = find_model("GPT-2");
  const auto best = predictor_.best_canonical(model, 16, full_, mr.gpus,
                                              std::max(1, mr.cpus));
  EXPECT_GE(best.throughput, sla_.baseline_throughput(spec) * 0.999);
}

TEST_F(SlaTest, BadInitialPlanShrinksMinRes) {
  // ZeRO-Offload on 8 GPUs is far from optimal; a much smaller allocation
  // with a better plan matches its performance.
  const JobSpec bad = spec_for("GPT-2", 8, make_zero_offload(8, 4, true));
  const JobSpec good = spec_for("GPT-2", 8, make_zero_dp(8));
  EXPECT_LT(sla_.min_res(bad, full_).gpus, 8);
  EXPECT_EQ(sla_.min_res(good, full_).gpus, 8);  // already the best plan
}

TEST_F(SlaTest, BestEffortMinResIsZero) {
  const JobSpec spec = spec_for("BERT", 4, make_dp(4), /*guaranteed=*/false);
  EXPECT_TRUE(sla_.min_res(spec, full_).is_zero());
}

TEST_F(SlaTest, FixedResourcesSkipTheSearch) {
  const JobSpec spec = spec_for("GPT-2", 8, make_zero_offload(8, 4, true));
  const ResourceVector mr =
      sla_.min_res(spec, full_, /*fixed_resources=*/true);
  EXPECT_EQ(mr.gpus, 8);
  EXPECT_EQ(mr.cpus, 32);
}

TEST_F(SlaTest, RestrictedSelectorWeakensCompression) {
  // Rubick-R can only scale the initial family; with a bad offload plan the
  // scaled family stays slow, so minRes cannot shrink as far as with the
  // full plan space.
  const JobSpec spec = spec_for("GPT-2", 8, make_zero_offload(8, 4, true));
  const ScaledDpSelector scaled(spec.initial_plan);
  const int full_min = sla_.min_res(spec, full_).gpus;
  SlaCalculator fresh(predictor_, store_, cluster_);
  const int scaled_min = fresh.min_res(spec, scaled).gpus;
  EXPECT_LE(full_min, scaled_min);
}

TEST_F(SlaTest, CachedAndClearable) {
  const JobSpec spec = spec_for("BERT", 4, make_dp(4));
  const ResourceVector a = sla_.min_res(spec, full_);
  const ResourceVector b = sla_.min_res(spec, full_);
  EXPECT_EQ(a, b);
  sla_.clear();
  EXPECT_EQ(sla_.min_res(spec, full_), a);  // recomputed identically
}

}  // namespace
}  // namespace rubick
