#include "common/threadpool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace rubick {
namespace {

TEST(ThreadPool, SizeOneRunsInlineInSubmissionOrder) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 1);
  std::vector<int> order;
  // Inline pools execute each task before submit() returns, so the order is
  // exactly the submission order — today's serial behavior.
  for (int i = 0; i < 8; ++i) {
    auto fut = pool.submit([&order, i] { order.push_back(i); });
    fut.get();
    ASSERT_EQ(static_cast<int>(order.size()), i + 1);
  }
  for (int i = 0; i < 8; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(ThreadPool, SizeOneParallelForIsSerialAndStopsAtFirstThrow) {
  ThreadPool pool(1);
  std::vector<std::size_t> visited;
  EXPECT_THROW(
      pool.parallel_for(0, 10,
                        [&](std::size_t i) {
                          if (i == 3) throw std::runtime_error("boom");
                          visited.push_back(i);
                        }),
      std::runtime_error);
  // Serial semantics: indices after the throwing one never ran.
  ASSERT_EQ(visited.size(), 3u);
  EXPECT_EQ(visited, (std::vector<std::size_t>{0, 1, 2}));
}

TEST(ThreadPool, SubmitReturnsValuesThroughFutures) {
  ThreadPool pool(4);
  std::vector<std::future<int>> futs;
  for (int i = 0; i < 32; ++i)
    futs.push_back(pool.submit([i] { return i * i; }));
  for (int i = 0; i < 32; ++i)
    EXPECT_EQ(futs[static_cast<std::size_t>(i)].get(), i * i);
}

TEST(ThreadPool, SubmitPropagatesExceptionsThroughFutures) {
  ThreadPool pool(2);
  auto fut = pool.submit([]() -> int { throw std::runtime_error("bad"); });
  EXPECT_THROW(fut.get(), std::runtime_error);
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  pool.parallel_for(0, kN, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPool, ParallelForRethrowsLowestFailingIndex) {
  ThreadPool pool(4);
  // Every index >= 5 throws its own index; the pool must deterministically
  // surface index 5 no matter which thread failed first.
  try {
    pool.parallel_for(0, 64, [](std::size_t i) {
      if (i >= 5) throw std::runtime_error(std::to_string(i));
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "5");
  }
}

TEST(ThreadPool, NestedParallelForDoesNotDeadlock) {
  ThreadPool pool(2);
  std::atomic<int> total{0};
  pool.parallel_for(0, 8, [&](std::size_t) {
    pool.parallel_for(0, 8, [&](std::size_t) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 64);
}

TEST(ThreadPool, EmptyAndSingletonRanges) {
  ThreadPool pool(4);
  int calls = 0;
  pool.parallel_for(5, 5, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  pool.parallel_for(7, 8, [&](std::size_t i) {
    ++calls;
    EXPECT_EQ(i, 7u);
  });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPool, DefaultSizeHonorsEnvVariable) {
  ASSERT_EQ(setenv("RUBICK_THREADS", "3", /*overwrite=*/1), 0);
  EXPECT_EQ(ThreadPool::default_size(), 3);
  ASSERT_EQ(setenv("RUBICK_THREADS", "not-a-number", 1), 0);
  EXPECT_GE(ThreadPool::default_size(), 1);  // falls back to hardware
  ASSERT_EQ(unsetenv("RUBICK_THREADS"), 0);
  EXPECT_GE(ThreadPool::default_size(), 1);
}

}  // namespace
}  // namespace rubick
