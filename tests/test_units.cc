// Pins the unit-conversion contract of common/units.h: decimal (SI)
// gigabytes and GB/s, seconds-based time helpers. These values feed every
// memory-feasibility comparison and trace timestamp, so a silent switch to
// binary GiB (or vice versa) must fail loudly here.
#include <gtest/gtest.h>

#include <cstdint>

#include "common/units.h"

namespace rubick {
namespace {

TEST(Units, GigabytesAreDecimal) {
  // 1 GB == 1e9 bytes exactly — not 2^30 (GiB).
  EXPECT_EQ(gigabytes(1.0), std::uint64_t{1'000'000'000});
  EXPECT_NE(gigabytes(1.0), std::uint64_t{1} << 30);
  EXPECT_EQ(gigabytes(40.0), std::uint64_t{40'000'000'000});
  EXPECT_EQ(gigabytes(0.5), std::uint64_t{500'000'000});
  EXPECT_EQ(gigabytes(0.0), std::uint64_t{0});
}

TEST(Units, GigabytesRoundTrip) {
  EXPECT_DOUBLE_EQ(to_gigabytes(gigabytes(16.0)), 16.0);
  EXPECT_DOUBLE_EQ(to_gigabytes(gigabytes(0.25)), 0.25);
  EXPECT_DOUBLE_EQ(to_gigabytes(std::uint64_t{2'500'000'000}), 2.5);
}

TEST(Units, BandwidthIsDecimalBytesPerSecond) {
  EXPECT_DOUBLE_EQ(gb_per_s(1.0), 1e9);
  EXPECT_DOUBLE_EQ(gb_per_s(25.0), 25e9);
}

TEST(Units, TimeHelpers) {
  EXPECT_DOUBLE_EQ(hours(1.0), 3600.0);
  EXPECT_DOUBLE_EQ(minutes(1.5), 90.0);
  EXPECT_DOUBLE_EQ(to_hours(7200.0), 2.0);
  EXPECT_DOUBLE_EQ(to_hours(hours(3.25)), 3.25);
}

TEST(Units, MixedPrecisionBytesPerParam) {
  EXPECT_EQ(kBytesPerParamFp16, 2u);
  EXPECT_EQ(kBytesPerParamFp32, 4u);
}

}  // namespace
}  // namespace rubick
