#include "common/resource.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/units.h"

namespace rubick {
namespace {

TEST(ResourceVector, ZeroAndIsZero) {
  EXPECT_TRUE(ResourceVector::zero().is_zero());
  EXPECT_FALSE((ResourceVector{1, 0, 0}).is_zero());
  EXPECT_FALSE((ResourceVector{0, 0, 1}).is_zero());
}

TEST(ResourceVector, AdditionAndSubtraction) {
  ResourceVector a{2, 4, gigabytes(10)};
  const ResourceVector b{1, 2, gigabytes(4)};
  a += b;
  EXPECT_EQ(a, (ResourceVector{3, 6, gigabytes(14)}));
  a -= b;
  EXPECT_EQ(a, (ResourceVector{2, 4, gigabytes(10)}));
}

TEST(ResourceVector, SubtractionUnderflowThrows) {
  ResourceVector a{1, 1, 0};
  const ResourceVector b{2, 0, 0};
  EXPECT_THROW(a -= b, InvariantError);
}

TEST(ResourceVector, FitsWithinIsComponentWise) {
  const ResourceVector small{1, 8, gigabytes(10)};
  const ResourceVector big{2, 16, gigabytes(20)};
  EXPECT_TRUE(small.fits_within(big));
  EXPECT_FALSE(big.fits_within(small));
  // Partial order: neither fits within the other.
  const ResourceVector mixed{4, 4, gigabytes(5)};
  EXPECT_FALSE(mixed.fits_within(big));
  EXPECT_FALSE(big.fits_within(mixed));
}

TEST(ResourceVector, GetByType) {
  const ResourceVector rv{3, 7, 100};
  EXPECT_DOUBLE_EQ(rv.get(ResourceType::kGpu), 3.0);
  EXPECT_DOUBLE_EQ(rv.get(ResourceType::kCpu), 7.0);
  EXPECT_DOUBLE_EQ(rv.get(ResourceType::kMemory), 100.0);
}

TEST(ResourceVector, AddByType) {
  ResourceVector rv;
  rv.add(ResourceType::kGpu, 2);
  rv.add(ResourceType::kCpu, 5);
  rv.add(ResourceType::kMemory, 1000);
  EXPECT_EQ(rv, (ResourceVector{2, 5, 1000}));
  rv.add(ResourceType::kGpu, -2);
  EXPECT_EQ(rv.gpus, 0);
  EXPECT_THROW(rv.add(ResourceType::kGpu, -1), InvariantError);
  EXPECT_THROW(rv.add(ResourceType::kMemory, -2000), InvariantError);
}

TEST(ResourceVector, ToStringMentionsAllComponents) {
  const std::string s = ResourceVector{1, 2, gigabytes(3)}.to_string();
  EXPECT_NE(s.find("gpu=1"), std::string::npos);
  EXPECT_NE(s.find("cpu=2"), std::string::npos);
  EXPECT_NE(s.find("3"), std::string::npos);
}

TEST(Units, Conversions) {
  EXPECT_EQ(gigabytes(2.0), 2'000'000'000ull);
  EXPECT_DOUBLE_EQ(to_gigabytes(gigabytes(5.0)), 5.0);
  EXPECT_DOUBLE_EQ(hours(2.0), 7200.0);
  EXPECT_DOUBLE_EQ(to_hours(1800.0), 0.5);
  EXPECT_DOUBLE_EQ(gb_per_s(1.0), 1e9);
}

}  // namespace
}  // namespace rubick
