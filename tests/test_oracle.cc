#include "model/model_spec.h"
#include "perf/analytic.h"
#include "perf/oracle.h"
#include "plan/execution_plan.h"

#include <gtest/gtest.h>

#include <cmath>

#include "model/model_zoo.h"

namespace rubick {
namespace {

PerfContext ctx_of(int cpus = 8, bool multi = false) {
  PerfContext ctx;
  ctx.cpus = cpus;
  ctx.multi_node = multi;
  return ctx;
}

TEST(Oracle, MeasurementIsDeterministicPerConfig) {
  const GroundTruthOracle oracle(1);
  const ModelSpec& m = find_model("GPT-2");
  const double a = oracle.measure_throughput(m, make_dp(4), 16, ctx_of());
  const double b = oracle.measure_throughput(m, make_dp(4), 16, ctx_of());
  EXPECT_DOUBLE_EQ(a, b);
}

TEST(Oracle, DifferentSeedsGiveDifferentTestbeds) {
  const GroundTruthOracle a(1), b(2);
  const ModelSpec& m = find_model("GPT-2");
  EXPECT_NE(a.measure_throughput(m, make_dp(4), 16, ctx_of()),
            b.measure_throughput(m, make_dp(4), 16, ctx_of()));
}

TEST(Oracle, NoiseIsSmallAndMultiplicative) {
  const GroundTruthOracle oracle(3);
  const ModelSpec& m = find_model("BERT");
  for (int d : {1, 2, 4, 8}) {
    const double truth = oracle.true_throughput(m, make_dp(d), 32, ctx_of());
    const double measured =
        oracle.measure_throughput(m, make_dp(d), 32, ctx_of());
    EXPECT_NEAR(measured / truth, 1.0, 0.12) << d;
  }
}

TEST(Oracle, TruthVariesAcrossConfigs) {
  const GroundTruthOracle oracle(4);
  const ModelSpec& m = find_model("GPT-2");
  const double dp = oracle.true_throughput(m, make_dp(4), 16, ctx_of());
  const double offload =
      oracle.true_throughput(m, make_zero_offload(4), 16, ctx_of());
  EXPECT_NE(dp, offload);
}

TEST(Oracle, CpuStarvationSlowsTraining) {
  // The oracle's hidden input-pipeline term: fewer than 2 CPUs/GPU hurts.
  const GroundTruthOracle oracle(5);
  const ModelSpec& m = find_model("BERT");
  const double starved = oracle.true_throughput(m, make_dp(8), 32, ctx_of(2));
  const double fed = oracle.true_throughput(m, make_dp(8), 32, ctx_of(16));
  EXPECT_GT(fed, starved);
}

TEST(Oracle, ProfiledFwdUnitCloseToTruth) {
  const GroundTruthOracle oracle(6);
  for (const ModelSpec& m : model_zoo()) {
    const auto& truth = oracle.truth_for(m);
    EXPECT_NEAR(oracle.profiled_fwd_unit_s(m) / truth.fwd_unit_s, 1.0, 0.05)
        << m.name;
  }
}

TEST(Oracle, HiddenParamsWithinDocumentedRanges) {
  const GroundTruthOracle oracle(7);
  for (const ModelSpec& m : model_zoo()) {
    const auto& t = oracle.truth_for(m);
    EXPECT_GE(t.params.k_bwd, 1.8);
    EXPECT_LE(t.params.k_bwd, 2.2);
    EXPECT_GE(t.params.k_sync, 1.0);
    EXPECT_GT(t.fwd_unit_s, 0.0);
    EXPECT_GE(t.perturb.dp_congestion, 0.0);
  }
}

TEST(Oracle, LargerModelsHaveSlowerForward) {
  const GroundTruthOracle oracle(8);
  const double small = oracle.truth_for(find_model("ViT")).fwd_unit_s;
  const double large = oracle.truth_for(find_model("LLaMA-2-7B")).fwd_unit_s;
  EXPECT_GT(large, small * 10.0);
}

TEST(Oracle, MultiNodeNeverFasterThanSingleNodeForDp) {
  const GroundTruthOracle oracle(9);
  const ModelSpec& m = find_model("GPT-2");
  const double local = oracle.true_throughput(m, make_dp(8), 16, ctx_of(16));
  const double cross =
      oracle.true_throughput(m, make_dp(8), 16, ctx_of(16, true));
  EXPECT_LE(cross, local);
}

}  // namespace
}  // namespace rubick
