#include "cluster/cluster.h"
#include "model/model_spec.h"
#include "perf/analytic.h"
#include "perf/fitter.h"
#include "plan/execution_plan.h"
#include "plan/memory_estimator.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "model/model_zoo.h"
#include "perf/oracle.h"
#include "perf/profiler.h"

namespace rubick {
namespace {

// Fits each model from its profiler sampling plan and checks held-out
// prediction error — the library's miniature of Table 2.
class FitAccuracy : public ::testing::TestWithParam<const char*> {};

TEST_P(FitAccuracy, HeldOutErrorIsSmall) {
  const ClusterSpec cluster;
  const GroundTruthOracle oracle(2025);
  const ModelSpec& model = find_model(GetParam());
  const int batch = model.default_global_batch;

  Profiler profiler(oracle, cluster);
  const auto fit = profiler.profile_and_fit(model, batch);

  // Held-out configurations: DP-family at a few sizes and CPU counts.
  MemoryEstimator est;
  int tested = 0;
  double worst = 0.0;
  for (int g : {1, 2, 4, 8}) {
    for (const ExecutionPlan& plan :
         {make_dp(g), make_zero_dp(g, 2), make_dp(g, 2, true),
          make_zero_offload(g, 4)}) {
      if (!plan.valid_for(model, batch)) continue;
      if (!est.fits(model, plan, batch,
                    MemoryBudget{cluster.node.gpu_memory_bytes,
                                 cluster.node.memory_bytes}))
        continue;
      const PerfContext ctx = make_perf_context(cluster, g, 4 * g);
      const double truth = oracle.true_throughput(model, plan, batch, ctx);
      const double pred =
          fit.model.predict_throughput(model, plan, batch, ctx);
      const double err = std::abs(pred - truth) / truth;
      worst = std::max(worst, err);
      ++tested;
    }
  }
  ASSERT_GE(tested, 3);
  // Paper reports max errors around 10%; allow slack since the oracle
  // includes structural terms the model cannot represent and the held-out
  // grid extrapolates offload to unseen CPU counts.
  EXPECT_LT(worst, 0.35) << "worst held-out error too large";
}

INSTANTIATE_TEST_SUITE_P(Zoo, FitAccuracy,
                         ::testing::Values("ViT", "RoBERTa", "BERT", "T5",
                                           "GPT-2", "LLaMA-2-7B"));

TEST(Fitter, TrainingErrorIsSmall) {
  const ClusterSpec cluster;
  const GroundTruthOracle oracle(11);
  const ModelSpec& model = find_model("GPT-2");
  Profiler profiler(oracle, cluster);
  const auto fit = profiler.profile_and_fit(model, 16);
  EXPECT_LT(fit.model.fit_error(), 0.15);
  EXPECT_GE(fit.model.sample_count(), 7);
}

TEST(Fitter, ThrowsWithoutSamples) {
  const PerfModelFitter fitter;
  EXPECT_THROW(fitter.fit(find_model("BERT"), 0.01, {}), InvariantError);
}

TEST(Fitter, RequiresThreeOffloadSamplesWhenOffloadPresent) {
  const PerfModelFitter fitter;
  const ModelSpec& model = find_model("BERT");
  PerfSample s;
  s.plan = make_zero_offload(1);
  s.global_batch = 32;
  s.ctx.cpus = 8;
  s.measured_throughput = 10.0;
  EXPECT_THROW(fitter.fit(model, 0.01, {s}), InvariantError);
}

TEST(Fitter, NoOffloadSamplesLeavesOffloadParamsAtDefaults) {
  const ClusterSpec cluster;
  const GroundTruthOracle oracle(12);
  const ModelSpec& model = find_model("BERT");
  std::vector<PerfSample> samples;
  for (int d : {1, 2, 4, 8}) {
    for (int a : {1, 2}) {
      PerfSample s;
      s.plan = make_dp(d, a);
      s.global_batch = 32;
      s.ctx = make_perf_context(cluster, d, 2 * d);
      s.measured_throughput =
          oracle.measure_throughput(model, s.plan, 32, s.ctx);
      samples.push_back(s);
    }
  }
  const PerfModelFitter fitter;
  const PerfModel fitted =
      fitter.fit(model, oracle.profiled_fwd_unit_s(model), samples);
  const FitParams defaults;
  EXPECT_DOUBLE_EQ(fitted.params().k_opt_off, defaults.k_opt_off);
  EXPECT_DOUBLE_EQ(fitted.params().k_off, defaults.k_off);
  EXPECT_DOUBLE_EQ(fitted.params().k_swap, defaults.k_swap);
  EXPECT_LT(fitted.fit_error(), 0.2);
}

TEST(Fitter, RecoversBackwardRatioApproximately) {
  // Fit against a noise-free synthetic oracle with known parameters and
  // check the dominant parameter (k_bwd) is identified.
  const ClusterSpec cluster;
  const ModelSpec& model = find_model("BERT");
  FitParams truth;
  truth.k_bwd = 2.7;
  truth.k_const = 0.02;
  std::vector<PerfSample> samples;
  for (int d : {1, 2, 4, 8}) {
    for (int a : {1, 2}) {
      PerfSample s;
      s.plan = make_dp(d, a);
      s.global_batch = 32;
      s.ctx = make_perf_context(cluster, d, 2 * d);
      s.measured_throughput =
          predict_throughput(model, s.plan, 32, 0.004, truth, s.ctx);
      samples.push_back(s);
    }
  }
  const PerfModelFitter fitter;
  const PerfModel fitted = fitter.fit(model, 0.004, samples);
  EXPECT_NEAR(fitted.params().k_bwd, truth.k_bwd, 0.3);
  EXPECT_LT(fitted.fit_error(), 0.02);
}

TEST(PerfModel, BreakdownMatchesPrediction) {
  const ClusterSpec cluster;
  const ModelSpec& model = find_model("GPT-2");
  const PerfModel pm("GPT-2", 0.01, FitParams{});
  const PerfContext ctx = make_perf_context(cluster, 4, 8);
  const auto bd = pm.breakdown(model, make_dp(4), 16, ctx);
  EXPECT_NEAR(pm.predict_throughput(model, make_dp(4), 16, ctx),
              16.0 / bd.t_iter, 1e-9);
}

}  // namespace
}  // namespace rubick
