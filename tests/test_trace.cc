#include "cluster/cluster.h"
#include "model/model_spec.h"
#include "perf/analytic.h"
#include "perf/oracle.h"
#include "plan/memory_estimator.h"
#include "trace/job.h"
#include "trace/trace_gen.h"

#include <gtest/gtest.h>

#include <set>

#include "common/units.h"
#include "model/model_zoo.h"
#include "perf/profiler.h"

namespace rubick {
namespace {

class TraceTest : public ::testing::Test {
 protected:
  TraceTest() : oracle_(2025), gen_(cluster_, oracle_) {}

  TraceOptions small_opts(TraceVariant variant = TraceVariant::kBase) {
    TraceOptions o;
    o.seed = 5;
    o.num_jobs = 60;
    o.window_s = hours(2);
    o.variant = variant;
    return o;
  }

  ClusterSpec cluster_;
  GroundTruthOracle oracle_;
  TraceGenerator gen_;
};

TEST_F(TraceTest, DeterministicForSeed) {
  const auto a = gen_.generate(small_opts());
  const auto b = gen_.generate(small_opts());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].model_name, b[i].model_name);
    EXPECT_EQ(a[i].requested, b[i].requested);
    EXPECT_EQ(a[i].initial_plan, b[i].initial_plan);
    EXPECT_DOUBLE_EQ(a[i].submit_time_s, b[i].submit_time_s);
  }
}

TEST_F(TraceTest, SortedBySubmitTimeWithSequentialIds) {
  const auto jobs = gen_.generate(small_opts());
  for (std::size_t i = 1; i < jobs.size(); ++i) {
    EXPECT_LE(jobs[i - 1].submit_time_s, jobs[i].submit_time_s);
    EXPECT_EQ(jobs[i].id, static_cast<int>(i));
  }
}

TEST_F(TraceTest, InitialPlansAreFeasible) {
  MemoryEstimator est;
  for (const auto& j : gen_.generate(small_opts())) {
    const ModelSpec& m = find_model(j.model_name);
    EXPECT_TRUE(j.initial_plan.valid_for(m, j.global_batch)) << j.to_string();
    EXPECT_EQ(j.initial_plan.num_gpus(), j.requested.gpus) << j.to_string();
    const MemoryBudget budget =
        make_memory_budget(cluster_, j.requested.gpus);
    EXPECT_TRUE(est.fits(m, j.initial_plan, j.global_batch, budget))
        << j.to_string();
  }
}

TEST_F(TraceTest, RequestsWithinClusterBounds) {
  for (const auto& j : gen_.generate(small_opts())) {
    EXPECT_GE(j.requested.gpus, 1);
    EXPECT_LE(j.requested.gpus, cluster_.total_gpus());
    EXPECT_GT(j.target_samples, 0.0);
  }
}

TEST_F(TraceTest, BaseVariantIsSingleTenantGuaranteed) {
  for (const auto& j : gen_.generate(small_opts()))
    EXPECT_TRUE(j.guaranteed);
}

TEST_F(TraceTest, MultiTenantVariantSplitsTenants) {
  const auto jobs = gen_.generate(small_opts(TraceVariant::kMultiTenant));
  int tenant_a = 0, tenant_b = 0;
  for (const auto& j : jobs) {
    if (j.tenant == "tenant-a") {
      EXPECT_TRUE(j.guaranteed);
      ++tenant_a;
    } else {
      EXPECT_EQ(j.tenant, "tenant-b");
      EXPECT_FALSE(j.guaranteed);
      ++tenant_b;
    }
  }
  EXPECT_GT(tenant_a, 10);
  EXPECT_GT(tenant_b, 10);
}

TEST_F(TraceTest, BestPlanVariantNeverWorseOnAverage) {
  // BP replaces random plans with measured-best plans: mean throughput of
  // initial configurations must not decrease.
  TraceOptions base = small_opts();
  TraceOptions bp = small_opts(TraceVariant::kBestPlan);
  const auto random_jobs = gen_.generate(base);
  const auto best_jobs = gen_.generate(bp);
  ASSERT_EQ(random_jobs.size(), best_jobs.size());
  // Same seed -> same model/GPU draw sequence, so ratios are comparable
  // job by job. The BP plan must win (or tie) on average.
  double ratio_sum = 0.0;
  for (std::size_t i = 0; i < random_jobs.size(); ++i) {
    ASSERT_EQ(random_jobs[i].model_name, best_jobs[i].model_name);
    ASSERT_EQ(random_jobs[i].requested.gpus, best_jobs[i].requested.gpus);
    const ModelSpec& m = find_model(random_jobs[i].model_name);
    const PerfContext ctx = make_perf_context(
        cluster_, random_jobs[i].requested.gpus, random_jobs[i].requested.cpus);
    const double best = oracle_.measure_throughput(
        m, best_jobs[i].initial_plan, best_jobs[i].global_batch, ctx);
    const double random = oracle_.measure_throughput(
        m, random_jobs[i].initial_plan, random_jobs[i].global_batch, ctx);
    ratio_sum += random / best;
  }
  EXPECT_LE(ratio_sum / static_cast<double>(random_jobs.size()), 1.0 + 1e-9);
}

TEST_F(TraceTest, LoadScaleChangesJobCount) {
  TraceOptions o = small_opts();
  o.load_scale = 2.0;
  EXPECT_EQ(gen_.generate(o).size(), 120u);
  o.load_scale = 0.5;
  EXPECT_EQ(gen_.generate(o).size(), 30u);
}

TEST_F(TraceTest, LargeModelFractionControlsMix) {
  TraceOptions none = small_opts();
  none.num_jobs = 200;
  none.large_model_fraction = 0.0;
  for (const auto& j : gen_.generate(none))
    EXPECT_FALSE(find_model(j.model_name).is_large_model());

  TraceOptions heavy = none;
  heavy.large_model_fraction = 0.9;
  int large = 0;
  const auto jobs = gen_.generate(heavy);
  for (const auto& j : jobs)
    if (find_model(j.model_name).is_large_model()) ++large;
  EXPECT_GT(large, static_cast<int>(jobs.size()) / 2);
}

TEST_F(TraceTest, MinFeasibleGpusMatchesEstimator) {
  EXPECT_EQ(min_feasible_gpus(find_model("GPT-2"), 16, cluster_), 1);
  EXPECT_EQ(min_feasible_gpus(find_model("LLaMA-2-7B"), 16, cluster_), 1);
  EXPECT_GE(min_feasible_gpus(find_model("LLaMA-30B"), 16, cluster_), 12);
}

}  // namespace
}  // namespace rubick
