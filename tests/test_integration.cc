// End-to-end integration tests: full traces through the simulator under
// every scheduling policy, checking completion, invariants, determinism and
// the paper's headline ordering (Rubick ahead of the baselines).
#include <gtest/gtest.h>

#include "baselines/antman.h"
#include "baselines/sia.h"
#include "baselines/synergy.h"
#include "cluster/cluster.h"
#include "common/units.h"
#include "core/rubick_policy.h"
#include "core/scheduler.h"
#include "perf/oracle.h"
#include "sim/simulator.h"
#include "trace/job.h"
#include "trace/trace_gen.h"

namespace rubick {
namespace {

class IntegrationTest : public ::testing::Test {
 protected:
  IntegrationTest() : oracle_(2025), gen_(cluster_, oracle_) {}

  std::vector<JobSpec> trace(int jobs, TraceVariant variant,
                             std::uint64_t seed = 17) {
    TraceOptions o;
    o.seed = seed;
    o.num_jobs = jobs;
    o.window_s = hours(2);
    o.variant = variant;
    return gen_.generate(o);
  }

  SimResult run(const std::vector<JobSpec>& jobs, SchedulerPolicy& policy) {
    Simulator sim(cluster_, oracle_);
    return sim.run(jobs, policy);
  }

  ClusterSpec cluster_;
  GroundTruthOracle oracle_;
  TraceGenerator gen_;
};

TEST_F(IntegrationTest, AllPoliciesCompleteABaseTrace) {
  const auto jobs = trace(50, TraceVariant::kBase);
  RubickPolicy rubick;
  RubickPolicy rubick_e(RubickPolicy::plans_only());
  RubickPolicy rubick_r(RubickPolicy::resources_only());
  RubickPolicy rubick_n(RubickPolicy::neither());
  SiaPolicy sia;
  SynergyPolicy synergy;
  for (SchedulerPolicy* policy :
       std::initializer_list<SchedulerPolicy*>{&rubick, &rubick_e, &rubick_r,
                                               &rubick_n, &sia, &synergy}) {
    const SimResult r = run(jobs, *policy);
    int finished = 0;
    for (const auto& j : r.jobs) finished += j.finished ? 1 : 0;
    EXPECT_EQ(finished, static_cast<int>(jobs.size())) << policy->name();
    EXPECT_GT(r.makespan_s, 0.0) << policy->name();
  }
}

TEST_F(IntegrationTest, AntManCompletesAMultiTenantTrace) {
  const auto jobs = trace(50, TraceVariant::kMultiTenant);
  AntManPolicy antman({{"tenant-a", 64}});
  const SimResult r = run(jobs, antman);
  int finished = 0;
  for (const auto& j : r.jobs) finished += j.finished ? 1 : 0;
  EXPECT_EQ(finished, static_cast<int>(jobs.size()));

  RubickConfig config;
  config.tenant_quota_gpus["tenant-a"] = 64;
  RubickPolicy rubick(config);
  const SimResult rr = run(jobs, rubick);
  finished = 0;
  for (const auto& j : rr.jobs) finished += j.finished ? 1 : 0;
  EXPECT_EQ(finished, static_cast<int>(jobs.size()));
}

TEST_F(IntegrationTest, RubickBeatsBaselinesOnAverageJct) {
  const auto jobs = trace(80, TraceVariant::kBase, 23);
  RubickPolicy rubick;
  SiaPolicy sia;
  SynergyPolicy synergy;
  const double rubick_jct = run(jobs, rubick).avg_jct_s();
  const double sia_jct = run(jobs, sia).avg_jct_s();
  const double synergy_jct = run(jobs, synergy).avg_jct_s();
  EXPECT_LT(rubick_jct, sia_jct);
  EXPECT_LT(rubick_jct, synergy_jct);
}

TEST_F(IntegrationTest, FullRubickBeatsAblations) {
  const auto jobs = trace(80, TraceVariant::kBase, 29);
  RubickPolicy rubick;
  RubickPolicy rubick_n(RubickPolicy::neither());
  const double full = run(jobs, rubick).avg_jct_s();
  const double neither = run(jobs, rubick_n).avg_jct_s();
  EXPECT_LT(full, neither);
}

TEST_F(IntegrationTest, SimulationIsDeterministic) {
  const auto jobs = trace(40, TraceVariant::kBase, 31);
  RubickPolicy a, b;
  const SimResult ra = run(jobs, a);
  const SimResult rb = run(jobs, b);
  ASSERT_EQ(ra.jobs.size(), rb.jobs.size());
  for (std::size_t i = 0; i < ra.jobs.size(); ++i)
    EXPECT_DOUBLE_EQ(ra.jobs[i].jct_s, rb.jobs[i].jct_s) << i;
  EXPECT_DOUBLE_EQ(ra.makespan_s, rb.makespan_s);
}

TEST_F(IntegrationTest, SlaHoldsForMostGuaranteedJobs) {
  // Rubick's SLA: guaranteed jobs should not run slower end-to-end than
  // they would at their baseline configuration (modulo queueing while the
  // quota admits them, reconfiguration overheads and model error); check
  // the overwhelming majority achieve at least ~80% of baseline throughput
  // while resident.
  const auto jobs = trace(60, TraceVariant::kBase, 37);
  RubickPolicy rubick;
  const SimResult r = run(jobs, rubick);
  int ok = 0, total = 0;
  for (const auto& j : r.jobs) {
    if (!j.finished || !j.spec.guaranteed) continue;
    if (j.baseline_throughput <= 0.0) continue;
    ++total;
    if (j.achieved_throughput >= 0.8 * j.baseline_throughput) ++ok;
  }
  ASSERT_GT(total, 30);
  EXPECT_GE(static_cast<double>(ok) / total, 0.85);
}

TEST_F(IntegrationTest, ReconfigurationOverheadIsBounded) {
  // Paper §7.3: total reconfiguration time ~1% of GPU-hours.
  const auto jobs = trace(60, TraceVariant::kBase, 41);
  RubickPolicy rubick;
  const SimResult r = run(jobs, rubick);
  ASSERT_GT(r.total_gpu_seconds, 0.0);
  EXPECT_LT(r.reconfig_overhead_gpu_seconds / r.total_gpu_seconds, 0.15);
}

TEST_F(IntegrationTest, HigherLoadIncreasesJct) {
  TraceOptions low;
  low.seed = 43;
  low.num_jobs = 30;
  low.window_s = hours(2);
  TraceOptions high = low;
  high.load_scale = 3.0;
  RubickPolicy a, b;
  Simulator sim(cluster_, oracle_);
  const double low_jct = sim.run(gen_.generate(low), a).avg_jct_s();
  const double high_jct = sim.run(gen_.generate(high), b).avg_jct_s();
  EXPECT_GT(high_jct, low_jct);
}

}  // namespace
}  // namespace rubick
