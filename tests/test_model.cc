#include "model/model_spec.h"
#include "model/model_zoo.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace rubick {
namespace {

TEST(ModelZoo, ContainsAllSevenPaperModels) {
  EXPECT_EQ(model_zoo().size(), 7u);
  for (const char* name : {"ViT", "RoBERTa", "BERT", "T5", "GPT-2",
                           "LLaMA-2-7B", "LLaMA-30B"}) {
    EXPECT_TRUE(has_model(name)) << name;
    EXPECT_EQ(find_model(name).name, name);
  }
}

TEST(ModelZoo, UnknownModelThrows) {
  EXPECT_FALSE(has_model("AlexNet"));
  EXPECT_THROW(find_model("AlexNet"), InvariantError);
}

TEST(ModelZoo, ParameterCountsMatchTable2) {
  EXPECT_EQ(find_model("ViT").param_count, 86'000'000ull);
  EXPECT_EQ(find_model("RoBERTa").param_count, 355'000'000ull);
  EXPECT_EQ(find_model("BERT").param_count, 336'000'000ull);
  EXPECT_EQ(find_model("T5").param_count, 1'200'000'000ull);
  EXPECT_EQ(find_model("GPT-2").param_count, 1'500'000'000ull);
  EXPECT_EQ(find_model("LLaMA-2-7B").param_count, 7'000'000'000ull);
  EXPECT_EQ(find_model("LLaMA-30B").param_count, 30'000'000'000ull);
}

TEST(ModelZoo, SmallModelsDisableModelParallelism) {
  // The paper disables TP/PP for ViT/RoBERTa/BERT in the traces.
  EXPECT_FALSE(find_model("ViT").allow_model_parallel);
  EXPECT_FALSE(find_model("RoBERTa").allow_model_parallel);
  EXPECT_FALSE(find_model("BERT").allow_model_parallel);
  EXPECT_TRUE(find_model("GPT-2").allow_model_parallel);
  EXPECT_TRUE(find_model("LLaMA-30B").allow_model_parallel);
}

TEST(ModelSpec, StateByteAccounting) {
  const ModelSpec& m = find_model("GPT-2");
  EXPECT_EQ(m.param_bytes_fp16(), m.param_count * 2);
  EXPECT_EQ(m.optimizer_state_bytes(), m.param_count * 12);
  EXPECT_EQ(m.full_state_bytes(), m.param_count * 16);
}

TEST(ModelSpec, FlopsScaleWithSeqLenAndParams) {
  const ModelSpec& small = find_model("ViT");
  const ModelSpec& large = find_model("LLaMA-2-7B");
  EXPECT_GT(large.fwd_flops_per_sample(), small.fwd_flops_per_sample());
  EXPECT_DOUBLE_EQ(small.fwd_flops_per_sample(),
                   2.0 * 86e6 * small.seq_len);
}

TEST(ModelSpec, LargeModelClassification) {
  EXPECT_TRUE(find_model("LLaMA-2-7B").is_large_model());
  EXPECT_TRUE(find_model("LLaMA-30B").is_large_model());
  EXPECT_FALSE(find_model("GPT-2").is_large_model());
}

TEST(ModelSpec, ArchitectureDivisibility) {
  // Every zoo model must support at least TP in {1} and PP dividing layers.
  for (const ModelSpec& m : model_zoo()) {
    EXPECT_GT(m.seq_len, 0) << m.name;
    EXPECT_GT(m.hidden_size, 0) << m.name;
    EXPECT_GT(m.num_layers, 0) << m.name;
    EXPECT_EQ(m.hidden_size % 8, 0) << m.name << " must allow TP up to 8"
                                    << " (except patch-based ViT)";
  }
}

}  // namespace
}  // namespace rubick
