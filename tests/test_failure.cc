// Fault-tolerant reconfiguration engine (ISSUE 6): the FaultPlan generator
// (determinism, pairing, validation), the per-(job, attempt) reconfiguration
// coin, the simulator's crash / straggler / reconfig-failure handling under
// the throw-audit, the zero-overhead-when-off contract, and the
// PolicyFactory registry.
#include "cluster/cluster.h"
#include "failure/fault_plan.h"
#include "perf/oracle.h"
#include "trace/job.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <vector>

#include "baselines/policy_factory.h"
#include "check/invariant_auditor.h"
#include "common/error.h"
#include "common/units.h"
#include "core/rubick_policy.h"
#include "sim/simulator.h"
#include "trace/trace_gen.h"

namespace rubick {
namespace {

// ---------------------------------------------------------------------------
// FaultPlan generation.
// ---------------------------------------------------------------------------

TEST(FaultPlan, SameSeedSameSchedule) {
  const ClusterSpec cluster;
  const FaultPlanOptions options;
  const FaultPlan a = FaultPlan::generate(5, options, cluster);
  const FaultPlan b = FaultPlan::generate(5, options, cluster);
  EXPECT_EQ(a.digest(), b.digest());
  ASSERT_EQ(a.events().size(), b.events().size());
  EXPECT_FALSE(a.empty());

  const FaultPlan c = FaultPlan::generate(6, options, cluster);
  EXPECT_NE(a.digest(), c.digest());
}

TEST(FaultPlan, EventsSortedAndEpisodesPaired) {
  const ClusterSpec cluster;
  FaultPlanOptions options;
  options.horizon_s = hours(48);  // enough arrivals to make pairing visible
  const FaultPlan plan = FaultPlan::generate(11, options, cluster);

  double prev_s = 0.0;
  std::map<FaultKind, int> kinds;
  for (const FaultEvent& e : plan.events()) {
    EXPECT_GE(e.time_s, prev_s);
    prev_s = e.time_s;
    EXPECT_GE(e.node, 0);
    EXPECT_LT(e.node, cluster.num_nodes);
    ++kinds[e.kind];
  }
  // Every outage and straggler episode carries its closing event (emitted
  // even when it lands past the horizon, so no node stays down forever).
  EXPECT_GT(kinds[FaultKind::kNodeCrash], 0);
  EXPECT_EQ(kinds[FaultKind::kNodeCrash], kinds[FaultKind::kNodeRecover]);
  EXPECT_EQ(kinds[FaultKind::kStragglerBegin],
            kinds[FaultKind::kStragglerEnd]);
}

TEST(FaultPlan, ZeroRatesDisableFaultClasses) {
  const ClusterSpec cluster;
  FaultPlanOptions options;
  options.node_mtbf_hours = 0.0;
  options.gpu_transient_mtbf_hours = 0.0;
  options.straggler_mtbf_hours = 0.0;
  const FaultPlan plan = FaultPlan::generate(3, options, cluster);
  EXPECT_TRUE(plan.events().empty());
  EXPECT_TRUE(plan.empty());  // no events, no reconfig failures
}

TEST(FaultPlan, OptionsValidateRejectsNonsense) {
  FaultPlanOptions bad;
  bad.straggler_severity = 0.0;
  EXPECT_THROW(bad.validate(), InvariantError);
  bad = FaultPlanOptions{};
  bad.node_mtbf_hours = -1.0;
  EXPECT_THROW(bad.validate(), InvariantError);
  bad = FaultPlanOptions{};
  bad.reconfig_failure_prob = 1.5;
  EXPECT_THROW(bad.validate(), InvariantError);
  EXPECT_NO_THROW(FaultPlanOptions{}.validate());
}

TEST(FaultPlan, ReconfigCoinDeterministicAndUnbiased) {
  const FaultPlan never = FaultPlan::from_events(9, {}, 0.0);
  const FaultPlan always = FaultPlan::from_events(9, {}, 1.0);
  const FaultPlan half = FaultPlan::from_events(9, {}, 0.5);
  EXPECT_TRUE(never.empty());
  EXPECT_FALSE(always.empty());

  int fails = 0;
  const int kJobs = 50, kAttempts = 40;
  for (int job = 0; job < kJobs; ++job) {
    for (int attempt = 0; attempt < kAttempts; ++attempt) {
      EXPECT_FALSE(never.reconfig_attempt_fails(job, attempt));
      EXPECT_TRUE(always.reconfig_attempt_fails(job, attempt));
      if (half.reconfig_attempt_fails(job, attempt)) ++fails;
      // Same plan, same (job, attempt) => same outcome, every time.
      EXPECT_EQ(half.reconfig_attempt_fails(job, attempt),
                half.reconfig_attempt_fails(job, attempt));
    }
  }
  const double rate = static_cast<double>(fails) / (kJobs * kAttempts);
  EXPECT_NEAR(rate, 0.5, 0.05);
}

TEST(FaultPlan, DigestCoversEventsAndProbability) {
  std::vector<FaultEvent> events;
  FaultEvent e;
  e.time_s = 100.0;
  e.kind = FaultKind::kNodeCrash;
  e.node = 2;
  e.duration_s = 60.0;
  events.push_back(e);
  const FaultPlan a = FaultPlan::from_events(1, events, 0.0);
  events[0].node = 3;
  const FaultPlan b = FaultPlan::from_events(1, events, 0.0);
  const FaultPlan c = FaultPlan::from_events(1, {}, 0.0);
  const FaultPlan d = FaultPlan::from_events(1, {}, 0.25);
  EXPECT_NE(a.digest(), b.digest());
  EXPECT_NE(a.digest(), c.digest());
  EXPECT_NE(c.digest(), d.digest());
}

// ---------------------------------------------------------------------------
// RunContext / SimulationOptions validation.
// ---------------------------------------------------------------------------

TEST(RunContextValidation, RejectsOutOfRangeNodeAndBadKnobs) {
  const ClusterSpec cluster;
  FaultEvent e;
  e.time_s = 10.0;
  e.kind = FaultKind::kNodeCrash;
  e.node = cluster.num_nodes;  // one past the end
  const FaultPlan plan = FaultPlan::from_events(1, {e}, 0.0);
  RunContext ctx;
  ctx.fault_plan = &plan;
  EXPECT_THROW(ctx.validate(cluster), InvariantError);

  SimulationOptions options;
  options.failure.retry_backoff_cap_s = 1.0;  // cap < base
  RunContext ctx2;
  ctx2.options = &options;
  EXPECT_THROW(ctx2.validate(cluster), InvariantError);

  EXPECT_NO_THROW(RunContext{}.validate(cluster));
}

// ---------------------------------------------------------------------------
// Simulator behaviour under injected faults.
// ---------------------------------------------------------------------------

class FailureSimTest : public ::testing::Test {
 protected:
  FailureSimTest() : oracle_(2025) {}

  std::vector<JobSpec> trace(int num_jobs, double window_h,
                             std::uint64_t seed = 7) {
    const TraceGenerator gen(cluster_, oracle_);
    TraceOptions opts;
    opts.seed = seed;
    opts.num_jobs = num_jobs;
    opts.window_s = hours(window_h);
    return gen.generate(opts);
  }

  // Runs Rubick over the trace with the auditor in throw mode: any
  // violation of the eight invariants fails the test at the site.
  SimResult run_audited(const std::vector<JobSpec>& jobs,
                        const RunContext& base_ctx,
                        AuditReport* report_out = nullptr) {
    AuditConfig config;
    config.on_violation = ViolationPolicy::kThrow;
    config.check_guarantee = true;  // Rubick makes the Algorithm-1 promise
    InvariantAuditor auditor(config);
    RunContext ctx = base_ctx;
    ctx.observer = &auditor;
    RubickPolicy policy;
    const Simulator sim(cluster_, oracle_);
    const SimResult result = sim.run(jobs, policy, ctx);
    if (report_out != nullptr) *report_out = auditor.report();
    return result;
  }

  ClusterSpec cluster_;
  GroundTruthOracle oracle_;
};

TEST_F(FailureSimTest, FaultFreeRunIsByteIdenticalWithOptionsAttached) {
  // Attaching SimulationOptions (and no fault plan) must not change a
  // single decision: the fault machinery is pay-for-use.
  const std::vector<JobSpec> jobs = trace(10, 1.0);
  const Simulator sim(cluster_, oracle_);

  RubickPolicy plain_policy;
  const SimResult plain = sim.run(jobs, plain_policy);

  SimulationOptions options;  // defaults == Simulator's constructor options
  RunContext ctx;
  ctx.options = &options;
  RubickPolicy optioned_policy;
  const SimResult optioned = sim.run(jobs, optioned_policy, ctx);

  ASSERT_EQ(plain.jobs.size(), optioned.jobs.size());
  EXPECT_EQ(plain.makespan_s, optioned.makespan_s);
  EXPECT_EQ(plain.scheduling_rounds, optioned.scheduling_rounds);
  for (std::size_t i = 0; i < plain.jobs.size(); ++i) {
    EXPECT_EQ(plain.jobs[i].jct_s, optioned.jobs[i].jct_s) << i;
    EXPECT_EQ(plain.jobs[i].reconfig_count, optioned.jobs[i].reconfig_count)
        << i;
  }
  EXPECT_FALSE(plain.any_faults());
  EXPECT_FALSE(optioned.any_faults());
}

TEST_F(FailureSimTest, NodeCrashEvictsChargesRestoreAndRecovers) {
  const std::vector<JobSpec> jobs = trace(8, 0.5);

  // Take down every node at t=1500 for 10 minutes: whatever is running
  // then is evicted, and nothing can be placed until recovery.
  std::vector<FaultEvent> events;
  for (int n = 0; n < cluster_.num_nodes; ++n) {
    FaultEvent crash;
    crash.time_s = 1500.0;
    crash.kind = FaultKind::kNodeCrash;
    crash.node = n;
    crash.duration_s = 600.0;
    events.push_back(crash);
    FaultEvent recover = crash;
    recover.time_s = 2100.0;
    recover.kind = FaultKind::kNodeRecover;
    events.push_back(recover);
  }
  std::sort(events.begin(), events.end(),
            [](const FaultEvent& x, const FaultEvent& y) {
              return x.time_s < y.time_s;
            });
  const FaultPlan plan = FaultPlan::from_events(1, events, 0.0);
  RunContext ctx;
  ctx.fault_plan = &plan;

  AuditReport report;
  const SimResult r = run_audited(jobs, ctx, &report);
  EXPECT_TRUE(report.clean()) << report.summary();
  EXPECT_EQ(r.fault_node_crashes, cluster_.num_nodes);
  EXPECT_GE(r.crash_restarts, 1);  // someone was running at t=1500
  for (const JobResult& j : r.jobs) EXPECT_TRUE(j.finished) << j.spec.id;
  // The restarted jobs carry their eviction count into the results.
  int restarts = 0;
  for (const JobResult& j : r.jobs) restarts += j.crash_restarts;
  EXPECT_EQ(restarts, r.crash_restarts);
}

TEST_F(FailureSimTest, StragglerEpisodeSlowsAffectedJobs) {
  // One job, whole cluster straggling at half speed from t=0 forever: the
  // run must take measurably longer than the fault-free one.
  const std::vector<JobSpec> jobs = trace(1, 0.1);
  std::vector<FaultEvent> events;
  for (int n = 0; n < cluster_.num_nodes; ++n) {
    FaultEvent slow;
    slow.time_s = 0.0;
    slow.kind = FaultKind::kStragglerBegin;
    slow.node = n;
    slow.duration_s = hours(100);
    slow.severity = 0.5;
    events.push_back(slow);
    FaultEvent end = slow;
    end.time_s = hours(100);
    end.kind = FaultKind::kStragglerEnd;
    events.push_back(end);
  }
  std::sort(events.begin(), events.end(),
            [](const FaultEvent& x, const FaultEvent& y) {
              return x.time_s < y.time_s;
            });
  const FaultPlan plan = FaultPlan::from_events(1, events, 0.0);
  RunContext ctx;
  ctx.fault_plan = &plan;

  const SimResult slow = run_audited(jobs, ctx);
  const SimResult fast = run_audited(jobs, RunContext{});
  ASSERT_TRUE(slow.jobs[0].finished);
  ASSERT_TRUE(fast.jobs[0].finished);
  EXPECT_GT(slow.jobs[0].jct_s, 1.3 * fast.jobs[0].jct_s);
  EXPECT_EQ(slow.fault_straggler_episodes, cluster_.num_nodes);
}

TEST_F(FailureSimTest, ReconfigFailuresRetryThenDegradeAndStillFinish) {
  // Every warm reconfiguration attempt fails (prob = 1): jobs the policy
  // tries to reconfigure burn their retries, degrade to last-known-good,
  // and still run to completion — forward progress is guaranteed because
  // degraded jobs are exempt from injection.
  const std::vector<JobSpec> jobs = trace(16, 1.0);
  const FaultPlan plan = FaultPlan::from_events(2, {}, 1.0);

  SimulationOptions options;
  options.failure.max_reconfig_retries = 2;
  options.failure.retry_backoff_base_s = 10.0;
  options.failure.retry_backoff_cap_s = 40.0;
  RunContext ctx;
  ctx.fault_plan = &plan;
  ctx.options = &options;

  AuditReport report;
  const SimResult r = run_audited(jobs, ctx, &report);
  EXPECT_TRUE(report.clean()) << report.summary();
  for (const JobResult& j : r.jobs) EXPECT_TRUE(j.finished) << j.spec.id;
  ASSERT_GT(r.fault_reconfig_failures, 0);  // Rubick does reconfigure here
  EXPECT_GE(r.degraded_jobs, 1);
  int failures = 0;
  for (const JobResult& j : r.jobs) failures += j.reconfig_failures;
  EXPECT_EQ(failures, r.fault_reconfig_failures);
}

TEST_F(FailureSimTest, SameFaultPlanSameSeedReproducesExactly) {
  const std::vector<JobSpec> jobs = trace(10, 0.5);
  const FaultPlanOptions options;
  const FaultPlan plan = FaultPlan::generate(13, options, cluster_);
  RunContext ctx;
  ctx.fault_plan = &plan;

  const SimResult a = run_audited(jobs, ctx);
  const SimResult b = run_audited(jobs, ctx);
  EXPECT_EQ(a.makespan_s, b.makespan_s);
  EXPECT_EQ(a.fault_node_crashes, b.fault_node_crashes);
  EXPECT_EQ(a.fault_reconfig_failures, b.fault_reconfig_failures);
  EXPECT_EQ(a.crash_restarts, b.crash_restarts);
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t i = 0; i < a.jobs.size(); ++i)
    EXPECT_EQ(a.jobs[i].jct_s, b.jobs[i].jct_s) << i;
}

// ---------------------------------------------------------------------------
// PolicyFactory.
// ---------------------------------------------------------------------------

TEST(PolicyFactoryTest, RegistersEveryPolicy) {
  const PolicyFactory& factory = PolicyFactory::global();
  const std::vector<std::string> expected = {
      "antman",   "equal-share", "rubick",   "rubick-e", "rubick-n",
      "rubick-r", "sia",         "synergy",  "tiresias"};
  EXPECT_EQ(factory.names(), expected);
  for (const std::string& name : expected) {
    EXPECT_TRUE(factory.known(name)) << name;
    EXPECT_NE(factory.create(name), nullptr) << name;
  }
  EXPECT_FALSE(factory.known("fifo"));
}

TEST(PolicyFactoryTest, UnknownNameThrowsListingValidOnes) {
  try {
    PolicyFactory::global().create("rubik");  // typo
    FAIL() << "expected InvariantError";
  } catch (const InvariantError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("rubik"), std::string::npos);
    EXPECT_NE(what.find("rubick-e"), std::string::npos);  // lists valid names
  }
}

TEST(PolicyFactoryTest, ParamsReachThePolicies) {
  PolicyParams params;
  params.tenant_quota_gpus["tenant-a"] = 64;
  params.gate_threshold = 0.9;
  params.opportunistic_admission = false;
  const auto rubick = PolicyFactory::global().create("rubick", params);
  EXPECT_EQ(rubick->name(), RubickPolicy().name());
  const auto antman = PolicyFactory::global().create("antman", params);
  EXPECT_EQ(antman->name(), "AntMan");
}

TEST(PolicyFactoryTest, RubickFamilyCoversExactlyTheGuaranteeMakers) {
  EXPECT_TRUE(PolicyFactory::rubick_family("rubick"));
  EXPECT_TRUE(PolicyFactory::rubick_family("rubick-e"));
  EXPECT_TRUE(PolicyFactory::rubick_family("rubick-r"));
  EXPECT_TRUE(PolicyFactory::rubick_family("rubick-n"));
  EXPECT_FALSE(PolicyFactory::rubick_family("sia"));
  EXPECT_FALSE(PolicyFactory::rubick_family("antman"));
}

}  // namespace
}  // namespace rubick
