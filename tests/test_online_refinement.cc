// Online model refinement (paper §4.3): live measurements feed back into
// the PerfModelStore, which refits when prediction error exceeds the
// threshold.
#include <gtest/gtest.h>

#include <cmath>

#include "cluster/cluster.h"
#include "common/error.h"
#include "common/resource.h"
#include "model/model_spec.h"
#include "perf/analytic.h"
#include "perf/fitter.h"
#include "perf/oracle.h"
#include "perf/perf_store.h"
#include "plan/execution_plan.h"
#include "trace/job.h"

#include "core/rubick_policy.h"
#include "model/model_zoo.h"
#include "perf/profiler.h"
#include "sim/simulator.h"

namespace rubick {
namespace {

class OnlineRefinementTest : public ::testing::Test {
 protected:
  OnlineRefinementTest() : oracle_(2025) {}

  PerfSample sample_for(const ModelSpec& model, const ExecutionPlan& plan,
                        int gpus, double measured) {
    PerfSample s;
    s.plan = plan;
    s.global_batch = model.default_global_batch;
    s.ctx = make_perf_context(cluster_, gpus, 4 * gpus);
    s.measured_throughput = measured;
    return s;
  }

  ClusterSpec cluster_;
  GroundTruthOracle oracle_;
};

TEST_F(OnlineRefinementTest, AccurateObservationsDontRefit) {
  PerfModelStore store = PerfModelStore::profile_models(
      oracle_, cluster_, {"BERT"});
  const ModelSpec& m = find_model("BERT");
  const std::uint64_t v0 = store.version();
  // Feed back exactly what the model predicts: no refit.
  const ExecutionPlan plan = make_dp(4);
  const PerfContext ctx = make_perf_context(cluster_, 4, 16);
  const double predicted =
      store.get("BERT").predict_throughput(m, plan, 32, ctx);
  EXPECT_FALSE(store.record_observation(
      "BERT", m, sample_for(m, plan, 4, predicted)));
  EXPECT_EQ(store.version(), v0);
  EXPECT_EQ(store.refit_count("BERT"), 0);
  EXPECT_EQ(store.observation_count("BERT"), 1);
}

TEST_F(OnlineRefinementTest, LargeErrorTriggersRefitAndBumpsVersion) {
  PerfModelStore store = PerfModelStore::profile_models(
      oracle_, cluster_, {"BERT"});
  const ModelSpec& m = find_model("BERT");
  const std::uint64_t v0 = store.version();
  const ExecutionPlan plan = make_dp(4);
  const PerfContext ctx = make_perf_context(cluster_, 4, 16);
  const double predicted =
      store.get("BERT").predict_throughput(m, plan, 32, ctx);
  // 40% off: must refit.
  EXPECT_TRUE(store.record_observation(
      "BERT", m, sample_for(m, plan, 4, predicted * 1.4)));
  EXPECT_GT(store.version(), v0);
  EXPECT_EQ(store.refit_count("BERT"), 1);
}

TEST_F(OnlineRefinementTest, RefitMovesPredictionTowardObservation) {
  PerfModelStore store = PerfModelStore::profile_models(
      oracle_, cluster_, {"BERT"});
  const ModelSpec& m = find_model("BERT");
  const ExecutionPlan plan = make_dp(8);
  const PerfContext ctx = make_perf_context(cluster_, 8, 32);
  const double before =
      store.get("BERT").predict_throughput(m, plan, 32, ctx);
  const double target = before * 0.6;  // pretend reality is 40% slower
  // Feed several consistent observations.
  for (int i = 0; i < 4; ++i)
    store.record_observation("BERT", m, sample_for(m, plan, 8, target));
  const double after =
      store.get("BERT").predict_throughput(m, plan, 32, ctx);
  EXPECT_LT(std::abs(after - target), std::abs(before - target));
}

TEST_F(OnlineRefinementTest, ObservationCapIsEnforced) {
  PerfModelStore store = PerfModelStore::profile_models(
      oracle_, cluster_, {"BERT"});
  const ModelSpec& m = find_model("BERT");
  const ExecutionPlan plan = make_dp(2);
  const PerfContext ctx = make_perf_context(cluster_, 2, 8);
  const double predicted =
      store.get("BERT").predict_throughput(m, plan, 32, ctx);
  for (std::size_t i = 0; i < PerfModelStore::kMaxObservations + 10; ++i)
    store.record_observation("BERT", m, sample_for(m, plan, 2, predicted));
  EXPECT_EQ(store.observation_count("BERT"),
            static_cast<int>(PerfModelStore::kMaxObservations));
}

TEST_F(OnlineRefinementTest, UnknownModelThrows) {
  PerfModelStore store;
  const ModelSpec& m = find_model("BERT");
  EXPECT_THROW(
      store.record_observation("BERT", m, sample_for(m, make_dp(1), 1, 1.0)),
      InvariantError);
}

TEST_F(OnlineRefinementTest, SimulatorFeedsObservationsBack) {
  // End-to-end: with refinement enabled the run completes and the caller's
  // store is untouched (the simulator works on a copy).
  std::vector<JobSpec> jobs;
  JobSpec spec;
  spec.id = 0;
  spec.model_name = "BERT";
  spec.requested = ResourceVector{4, 16, 0};
  spec.global_batch = 32;
  spec.initial_plan = make_dp(4);
  spec.target_samples = 50000;
  jobs.push_back(spec);

  std::map<std::string, double> costs;
  const PerfModelStore store = PerfModelStore::profile_models(
      oracle_, cluster_, {"BERT"}, 0, &costs);
  const std::uint64_t v0 = store.version();

  SimOptions opts;
  opts.online_refinement = true;
  Simulator sim(cluster_, oracle_, opts);
  RubickPolicy policy;
  const SimResult r = sim.run(jobs, policy, RunContext{&store, &costs});
  EXPECT_TRUE(r.jobs[0].finished);
  EXPECT_EQ(store.version(), v0);  // caller's store untouched
}

TEST_F(OnlineRefinementTest, DeterministicWithRefinement) {
  GroundTruthOracle oracle(7);
  std::vector<JobSpec> jobs;
  for (int i = 0; i < 6; ++i) {
    JobSpec spec;
    spec.id = i;
    spec.model_name = i % 2 ? "BERT" : "GPT-2";
    spec.requested = ResourceVector{4, 16, 0};
    spec.global_batch = i % 2 ? 32 : 16;
    spec.initial_plan = make_dp(4);
    spec.submit_time_s = 100.0 * i;
    spec.target_samples = 30000;
    jobs.push_back(spec);
  }
  Simulator sim(cluster_, oracle);
  RubickPolicy a, b;
  const SimResult ra = sim.run(jobs, a);
  const SimResult rb = sim.run(jobs, b);
  for (std::size_t i = 0; i < ra.jobs.size(); ++i)
    EXPECT_DOUBLE_EQ(ra.jobs[i].jct_s, rb.jobs[i].jct_s);
}

}  // namespace
}  // namespace rubick
