// Negative-path tests: the simulator must reject invalid policy output
// loudly (over-committed placements, plan/placement mismatches, split TP
// groups, OOM plans, duplicate or bogus assignments) instead of silently
// corrupting the run. Plus a randomized "chaos" policy that stresses the
// bookkeeping with valid-but-arbitrary decisions across many rounds.
#include <gtest/gtest.h>

#include "cluster/cluster.h"
#include "cluster/placement.h"
#include "common/error.h"
#include "common/resource.h"
#include "common/rng.h"
#include "common/units.h"
#include "core/scheduler.h"
#include "model/model_spec.h"
#include "model/model_zoo.h"
#include "perf/oracle.h"
#include "perf/profiler.h"
#include "plan/enumerate.h"
#include "plan/execution_plan.h"
#include "plan/memory_estimator.h"
#include "sim/simulator.h"
#include "trace/job.h"
#include "trace/trace_gen.h"

namespace rubick {
namespace {

JobSpec bert_job(int id, int gpus, double target = 5e4) {
  JobSpec spec;
  spec.id = id;
  spec.model_name = "BERT";
  spec.requested = ResourceVector{gpus, 4 * gpus, 0};
  spec.global_batch = 32;
  spec.initial_plan = make_dp(gpus);
  spec.target_samples = target;
  return spec;
}

// A policy that emits whatever assignment the test injects.
class ScriptedPolicy final : public SchedulerPolicy {
 public:
  explicit ScriptedPolicy(std::vector<Assignment> out) : out_(std::move(out)) {}
  std::string name() const override { return "Scripted"; }
  std::vector<Assignment> schedule(const SchedulerInput&) override {
    return out_;
  }

 private:
  std::vector<Assignment> out_;
};

Placement on_node(int node, int gpus, int cpus) {
  Placement p;
  p.add({node, gpus, cpus, 1ull << 30});
  return p;
}

class SimulatorValidationTest : public ::testing::Test {
 protected:
  SimulatorValidationTest() : oracle_(2025) {}

  void expect_rejected(std::vector<Assignment> assignments,
                       std::vector<JobSpec> jobs) {
    ScriptedPolicy policy(std::move(assignments));
    SimOptions opts;
    opts.charge_profiling = false;
    Simulator sim(cluster_, oracle_, opts);
    EXPECT_THROW(sim.run(jobs, policy), InvariantError);
  }

  ClusterSpec cluster_;
  GroundTruthOracle oracle_;
};

TEST_F(SimulatorValidationTest, OverCommittedNodeThrows) {
  expect_rejected({{0, on_node(0, 9, 8), make_dp(8)}}, {bert_job(0, 8)});
}

TEST_F(SimulatorValidationTest, PlanPlacementMismatchThrows) {
  expect_rejected({{0, on_node(0, 4, 8), make_dp(8)}}, {bert_job(0, 8)});
}

TEST_F(SimulatorValidationTest, InvalidPlanThrows) {
  // d=3 does not divide batch 32.
  ExecutionPlan bad;
  bad.dp = 3;
  expect_rejected({{0, on_node(0, 3, 8), bad}}, {bert_job(0, 8)});
}

TEST_F(SimulatorValidationTest, SplitTpGroupThrows) {
  Placement split;
  split.add({0, 3, 8, 0});
  split.add({1, 5, 8, 0});
  JobSpec job = bert_job(0, 8);
  job.model_name = "LLaMA-2-7B";
  job.global_batch = 16;
  job.initial_plan = make_3d(1, 8, 1);
  expect_rejected({{0, split, make_3d(1, 8, 1)}}, {job});
}

TEST_F(SimulatorValidationTest, OomPlanThrows) {
  // Plain DP for LLaMA-2-7B on one GPU: 112 GB of states > 80 GB.
  JobSpec job = bert_job(0, 1);
  job.model_name = "LLaMA-2-7B";
  job.global_batch = 16;
  job.initial_plan = make_dp(1, 16);
  expect_rejected({{0, on_node(0, 1, 4), make_dp(1, 16)}}, {job});
}

TEST_F(SimulatorValidationTest, DuplicateAssignmentThrows) {
  expect_rejected({{0, on_node(0, 4, 8), make_dp(4)},
                   {0, on_node(1, 4, 8), make_dp(4)}},
                  {bert_job(0, 4)});
}

TEST_F(SimulatorValidationTest, UnknownJobThrows) {
  expect_rejected({{99, on_node(0, 4, 8), make_dp(4)}}, {bert_job(0, 4)});
}

TEST_F(SimulatorValidationTest, BadEfficiencyThrows) {
  Assignment a{0, on_node(0, 4, 8), make_dp(4)};
  a.statistical_efficiency = 0.0;
  expect_rejected({a}, {bert_job(0, 4)});
  a.statistical_efficiency = 1.5;
  expect_rejected({a}, {bert_job(0, 4)});
}

// ---------------------------------------------------------------------
// Chaos stress: random but valid decisions must never corrupt bookkeeping.
// ---------------------------------------------------------------------

class ChaosPolicy final : public SchedulerPolicy {
 public:
  ChaosPolicy(std::uint64_t seed, const ClusterSpec& cluster,
              const MemoryEstimator& estimator)
      : rng_(seed), cluster_(cluster), estimator_(&estimator) {}

  std::string name() const override { return "Chaos"; }

  std::vector<Assignment> schedule(const SchedulerInput& input) override {
    std::vector<Assignment> out;
    std::vector<int> free_gpus(static_cast<std::size_t>(cluster_.num_nodes),
                               cluster_.node.gpus);
    std::vector<int> free_cpus(static_cast<std::size_t>(cluster_.num_nodes),
                               cluster_.node.cpus);
    for (const auto& v : input.jobs) {
      // Re-place every job at a fresh random feasible plan and GPU count
      // each round: random reconfigurations, preemptions (when no room
      // remains) and resumes all get exercised. A policy must never leave a
      // schedulable job pending on an otherwise idle cluster, so "drop"
      // decisions are expressed as size changes rather than omissions.
      const ModelSpec& model = find_model(v.spec->model_name);
      const int draw = static_cast<int>(
          rng_.uniform_int(1, std::min(8, v.spec->requested.gpus)));
      // Walk down from the random draw to a size that both fits a node and
      // admits a feasible plan, so a schedulable job is never skipped.
      for (int want = draw; want >= 1; --want) {
        int node = -1;
        for (int n = 0; n < cluster_.num_nodes; ++n)
          if (free_gpus[static_cast<std::size_t>(n)] >= want &&
              free_cpus[static_cast<std::size_t>(n)] >= 2 * want)
            node = n;
        if (node < 0) continue;
        PlanConstraints pc;
        pc.num_gpus = want;
        pc.max_tp = want;
        pc.budget = make_memory_budget(cluster_, want);
        const auto plans =
            enumerate_plans(model, v.spec->global_batch, pc, *estimator_);
        if (plans.empty()) continue;
        const auto& plan = plans[static_cast<std::size_t>(rng_.uniform_int(
            0, static_cast<std::int64_t>(plans.size()) - 1))];
        Placement p;
        p.add({node, want, 2 * want,
               estimator_->host_bytes(model, plan)});
        free_gpus[static_cast<std::size_t>(node)] -= want;
        free_cpus[static_cast<std::size_t>(node)] -= 2 * want;
        out.push_back(Assignment{v.spec->id, p, plan});
        break;
      }
    }
    return out;
  }

 private:
  Rng rng_;
  ClusterSpec cluster_;
  const MemoryEstimator* estimator_;
};

TEST(SimulatorChaos, RandomValidPoliciesNeverCorruptState) {
  const ClusterSpec cluster;
  const GroundTruthOracle oracle(2025);
  const TraceGenerator gen(cluster, oracle);
  MemoryEstimator estimator;
  for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
    TraceOptions opts;
    opts.seed = 20 + seed;
    opts.num_jobs = 25;
    opts.window_s = hours(1);
    // Chaos places at most 8 GPUs on one node; keep every job single-node
    // schedulable so the policy can always make progress.
    opts.large_model_fraction = 0.0;
    const auto jobs = gen.generate(opts);
    ChaosPolicy policy(seed, cluster, estimator);
    SimOptions sim_opts;
    sim_opts.max_sim_time_s = 30.0 * 24 * 3600;
    Simulator sim(cluster, oracle, sim_opts);
    const SimResult r = sim.run(jobs, policy);  // must not throw
    int finished = 0;
    for (const auto& j : r.jobs) finished += j.finished ? 1 : 0;
    EXPECT_EQ(finished, static_cast<int>(jobs.size())) << "seed " << seed;
    EXPECT_LE(r.timeline.average_utilization(), 1.0);
  }
}

}  // namespace
}  // namespace rubick
