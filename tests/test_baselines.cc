#include <gtest/gtest.h>

#include "baselines/antman.h"
#include "baselines/equal_share.h"
#include "baselines/sia.h"
#include "baselines/synergy.h"
#include "cluster/cluster.h"
#include "common/resource.h"
#include "core/scheduler.h"
#include "model/model_zoo.h"
#include "perf/oracle.h"
#include "perf/perf_store.h"
#include "plan/execution_plan.h"
#include "plan/memory_estimator.h"
#include "trace/job.h"

namespace rubick {
namespace {

class BaselinesTest : public ::testing::Test {
 protected:
  BaselinesTest()
      : oracle_(2025),
        store_(PerfModelStore::profile_models(
            oracle_, cluster_,
            {"RoBERTa", "BERT", "T5", "GPT-2", "LLaMA-2-7B"})) {}

  JobSpec make_spec(int id, const std::string& model, int gpus,
                    bool guaranteed = true) {
    JobSpec spec;
    spec.id = id;
    spec.model_name = model;
    spec.requested = ResourceVector{gpus, 4 * gpus, 0};
    spec.global_batch = find_model(model).default_global_batch;
    spec.initial_plan = make_dp(gpus);
    spec.target_samples = 1e6;
    spec.guaranteed = guaranteed;
    spec.tenant = guaranteed ? "tenant-a" : "tenant-b";
    return spec;
  }

  SchedulerInput input_for(const std::vector<JobSpec*>& specs) {
    SchedulerInput in;
    in.cluster = &cluster_;
    in.models = &store_;
    in.estimator = &estimator_;
    for (JobSpec* s : specs) {
      JobView v;
      v.spec = s;
      v.running = false;
      v.plan = s->initial_plan;
      v.remaining_samples = s->target_samples;
      v.queued_since = s->submit_time_s;
      in.jobs.push_back(v);
    }
    return in;
  }

  ClusterSpec cluster_;
  GroundTruthOracle oracle_;
  MemoryEstimator estimator_;
  PerfModelStore store_;
};

// ---------------- Sia ----------------

TEST_F(BaselinesTest, SiaScalesDpJobs) {
  SiaPolicy sia;
  JobSpec spec = make_spec(0, "T5", 2);
  spec.initial_plan = make_zero_dp(2);
  const auto out = sia.schedule(input_for({&spec}));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_GT(out[0].placement.total_gpus(), 2);  // scaled up on idle cluster
  EXPECT_EQ(out[0].plan.zero, ZeroStage::kZeroDp);
}

TEST_F(BaselinesTest, SiaCannotScale3dJobs) {
  SiaPolicy sia;
  JobSpec spec = make_spec(0, "LLaMA-2-7B", 8);
  spec.initial_plan = make_3d(1, 8, 1);
  const auto out = sia.schedule(input_for({&spec}));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].placement.total_gpus(), 8);  // pinned
  EXPECT_EQ(out[0].plan, spec.initial_plan);
}

TEST_F(BaselinesTest, SiaPinsCpusAtTwoPerGpu) {
  SiaPolicy sia;
  JobSpec spec = make_spec(0, "BERT", 4);
  const auto out = sia.schedule(input_for({&spec}));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].placement.total_cpus(),
            2 * out[0].placement.total_gpus());
}

TEST_F(BaselinesTest, SiaSharesGpusAcrossJobsByMarginalGain) {
  SiaPolicy sia;
  std::vector<JobSpec> specs = {make_spec(0, "BERT", 4),
                                make_spec(1, "T5", 4),
                                make_spec(2, "GPT-2", 4)};
  std::vector<JobSpec*> ptrs = {&specs[0], &specs[1], &specs[2]};
  const auto out = sia.schedule(input_for(ptrs));
  EXPECT_EQ(out.size(), 3u);
  int total = 0;
  for (const auto& a : out) total += a.placement.total_gpus();
  EXPECT_LE(total, 64);
  EXPECT_GT(total, 12);  // idle cluster: everyone grows
}

// ---------------- Synergy ----------------

TEST_F(BaselinesTest, SynergyKeepsRequestedGpusAndPlan) {
  SynergyPolicy synergy;
  JobSpec spec = make_spec(0, "T5", 2);
  spec.initial_plan = make_dp(2, 2);
  const auto out = synergy.schedule(input_for({&spec}));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].placement.total_gpus(), 2);
  EXPECT_EQ(out[0].plan, spec.initial_plan);
}

TEST_F(BaselinesTest, SynergyBoostsCpusForOffloadJobs) {
  SynergyPolicy synergy;
  JobSpec offload = make_spec(0, "LLaMA-2-7B", 1);
  offload.initial_plan = make_zero_offload(1, 16, true);
  JobSpec plain = make_spec(1, "BERT", 1);
  const auto out = synergy.schedule(input_for({&offload, &plain}));
  ASSERT_EQ(out.size(), 2u);
  int offload_cpus = 0, plain_cpus = 0;
  for (const auto& a : out) {
    if (a.job_id == 0) offload_cpus = a.placement.total_cpus();
    if (a.job_id == 1) plain_cpus = a.placement.total_cpus();
  }
  EXPECT_GT(offload_cpus, plain_cpus);
}

TEST_F(BaselinesTest, SynergyBackfillsPastBlockedHead) {
  SynergyPolicy synergy;
  JobSpec big = make_spec(0, "BERT", 32);
  big.initial_plan = make_dp(32);
  JobSpec small = make_spec(1, "BERT", 2);
  small.submit_time_s = 1.0;
  // Occupy 48 GPUs so the 32-GPU job cannot start but the 2-GPU one can.
  JobSpec runner = make_spec(2, "GPT-2", 16);
  runner.initial_plan = make_dp(16);
  SchedulerInput in = input_for({&big, &small});
  JobView running;
  running.spec = &runner;
  running.running = true;
  for (int n = 0; n < 6; ++n) running.placement.add({n, 8, 16, 0});
  running.plan = make_dp(48);  // placeholder; Synergy passes it through
  in.jobs.push_back(running);
  const auto out = synergy.schedule(in);
  bool small_scheduled = false, big_scheduled = false;
  for (const auto& a : out) {
    if (a.job_id == 1 && a.placement.total_gpus() > 0) small_scheduled = true;
    if (a.job_id == 0 && a.placement.total_gpus() > 0) big_scheduled = true;
  }
  EXPECT_TRUE(small_scheduled);
  EXPECT_FALSE(big_scheduled);
}

// ---------------- AntMan ----------------

TEST_F(BaselinesTest, AntManGuaranteesExactRequest) {
  AntManPolicy antman({{"tenant-a", 64}});
  JobSpec spec = make_spec(0, "T5", 4);
  const auto out = antman.schedule(input_for({&spec}));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].placement.total_gpus(), 4);
  EXPECT_EQ(out[0].plan, spec.initial_plan);
}

TEST_F(BaselinesTest, AntManRespectsQuota) {
  AntManPolicy antman({{"tenant-a", 8}});
  JobSpec a = make_spec(0, "BERT", 8);
  JobSpec b = make_spec(1, "BERT", 8);
  b.submit_time_s = 1.0;
  const auto out = antman.schedule(input_for({&a, &b}));
  int scheduled = 0;
  for (const auto& asg : out)
    if (asg.placement.total_gpus() > 0) ++scheduled;
  EXPECT_EQ(scheduled, 1);
}

TEST_F(BaselinesTest, AntManEvictsBestEffortForGuaranteed) {
  AntManPolicy antman({{"tenant-a", 64}});
  JobSpec guaranteed = make_spec(0, "BERT", 8);
  JobSpec best_effort = make_spec(1, "GPT-2", 16, /*guaranteed=*/false);
  best_effort.initial_plan = make_dp(16);

  SchedulerInput in = input_for({&guaranteed});
  // Best-effort job occupies the whole cluster.
  JobView running;
  running.spec = &best_effort;
  running.running = true;
  for (int n = 0; n < 8; ++n) running.placement.add({n, 8, 32, 0});
  running.plan = make_dp(16);
  in.jobs.push_back(running);

  const auto out = antman.schedule(in);
  bool guaranteed_runs = false, be_runs = false;
  for (const auto& a : out) {
    if (a.job_id == 0 && a.placement.total_gpus() > 0) guaranteed_runs = true;
    if (a.job_id == 1 && a.placement.total_gpus() > 0) be_runs = true;
  }
  EXPECT_TRUE(guaranteed_runs);
  EXPECT_FALSE(be_runs);  // evicted
}

TEST_F(BaselinesTest, AntManSchedulesBestEffortIntoLeftovers) {
  AntManPolicy antman({{"tenant-a", 64}});
  JobSpec g = make_spec(0, "BERT", 8);
  JobSpec be = make_spec(1, "GPT-2", 4, /*guaranteed=*/false);
  const auto out = antman.schedule(input_for({&g, &be}));
  EXPECT_EQ(out.size(), 2u);
}

// ---------------- EqualShare ----------------

TEST_F(BaselinesTest, EqualShareSplitsEvenly) {
  EqualSharePolicy equal;
  ClusterSpec small;
  small.num_nodes = 1;
  small.node.gpus = 4;
  PerfModelStore store = PerfModelStore::profile_models(
      oracle_, small, {"RoBERTa", "T5"});
  JobSpec a = make_spec(0, "RoBERTa", 4);
  JobSpec b = make_spec(1, "T5", 4);
  SchedulerInput in;
  in.cluster = &small;
  in.models = &store;
  in.estimator = &estimator_;
  for (JobSpec* s : {&a, &b}) {
    JobView v;
    v.spec = s;
    v.plan = s->initial_plan;
    in.jobs.push_back(v);
  }
  const auto out = equal.schedule(in);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].placement.total_gpus(), 2);
  EXPECT_EQ(out[1].placement.total_gpus(), 2);
}

TEST_F(BaselinesTest, PolicyNames) {
  EXPECT_EQ(SiaPolicy().name(), "Sia");
  EXPECT_EQ(SynergyPolicy().name(), "Synergy");
  EXPECT_EQ(AntManPolicy().name(), "AntMan");
  EXPECT_EQ(EqualSharePolicy().name(), "EqualShare");
}

}  // namespace
}  // namespace rubick
