// Multi-round behavioral tests of the policies running inside the real
// simulator: opportunistic admission growing toward minRes, Sia's
// statistical-efficiency accounting, AntMan's dynamic best-effort scaling,
// and the size-dependent reconfiguration cost.
#include <gtest/gtest.h>

#include "baselines/antman.h"
#include "baselines/sia.h"
#include "cluster/cluster.h"
#include "common/resource.h"
#include "core/rubick_policy.h"
#include "core/scheduler.h"
#include "model/model_zoo.h"
#include "perf/oracle.h"
#include "perf/perf_store.h"
#include "plan/execution_plan.h"
#include "plan/memory_estimator.h"
#include "sim/simulator.h"
#include "trace/job.h"

namespace rubick {
namespace {

JobSpec make_job(int id, const std::string& model, int gpus, double submit,
                 double target, bool guaranteed = true,
                 const std::string& tenant = "default") {
  JobSpec spec;
  spec.id = id;
  spec.model_name = model;
  spec.requested = ResourceVector{gpus, 4 * gpus, 0};
  spec.global_batch = find_model(model).default_global_batch;
  spec.initial_plan = make_dp(gpus);
  spec.submit_time_s = submit;
  spec.target_samples = target;
  spec.guaranteed = guaranteed;
  spec.tenant = tenant;
  return spec;
}

class PolicyBehaviorTest : public ::testing::Test {
 protected:
  PolicyBehaviorTest() : oracle_(2025) {}
  ClusterSpec cluster_;
  GroundTruthOracle oracle_;
};

TEST_F(PolicyBehaviorTest, SiaEmitsEfficiencyBelowOneWhenScalingUp) {
  PerfModelStore store =
      PerfModelStore::profile_models(oracle_, cluster_, {"BERT"});
  MemoryEstimator est;
  JobSpec spec = make_job(0, "BERT", 2, 0, 1e6);
  spec.grad_noise_rel = 1.0;

  SchedulerInput in;
  in.cluster = &cluster_;
  in.models = &store;
  in.estimator = &est;
  JobView v;
  v.spec = &spec;
  v.plan = spec.initial_plan;
  v.remaining_samples = 1e6;
  in.jobs.push_back(v);

  SiaPolicy sia;
  const auto out = sia.schedule(in);
  ASSERT_EQ(out.size(), 1u);
  ASSERT_GT(out[0].placement.total_gpus(), 2);  // scaled beyond request
  const double d_ratio = static_cast<double>(out[0].plan.dp) / 2.0;
  EXPECT_LT(out[0].statistical_efficiency, 1.0);
  EXPECT_NEAR(out[0].statistical_efficiency, 2.0 / (1.0 + d_ratio), 1e-9);
}

TEST_F(PolicyBehaviorTest, SiaEfficiencySlowsItsOwnJobs) {
  // Two identical workloads; the one whose job tolerates batch scaling
  // badly (low noise scale) finishes later under Sia.
  for (double noise : {0.2}) {
    std::vector<JobSpec> tolerant = {make_job(0, "BERT", 2, 0, 3e5)};
    tolerant[0].grad_noise_rel = 50.0;  // scaling nearly free
    std::vector<JobSpec> fragile = {make_job(0, "BERT", 2, 0, 3e5)};
    fragile[0].grad_noise_rel = noise;

    Simulator sim(cluster_, oracle_);
    SiaPolicy a, b;
    const double jct_tolerant = sim.run(tolerant, a).jobs[0].jct_s;
    const double jct_fragile = sim.run(fragile, b).jobs[0].jct_s;
    EXPECT_GT(jct_fragile, jct_tolerant);
  }
}

TEST_F(PolicyBehaviorTest, AntManScalesBestEffortIntoLeftovers) {
  PerfModelStore store =
      PerfModelStore::profile_models(oracle_, cluster_, {"BERT", "GPT-2"});
  MemoryEstimator est;
  // Guaranteed job occupies 60 of 64 GPUs; a best-effort job requesting 16
  // must be DP-scaled down into the 4 leftovers.
  JobSpec guaranteed = make_job(0, "BERT", 32, 0, 1e6, true, "tenant-a");
  JobSpec be = make_job(1, "GPT-2", 16, 0, 1e6, false, "tenant-b");

  SchedulerInput in;
  in.cluster = &cluster_;
  in.models = &store;
  in.estimator = &est;
  JobView run_view;
  run_view.spec = &guaranteed;
  run_view.running = true;
  for (int n = 0; n < 8; ++n) {
    if (n < 7) run_view.placement.add({n, 8, 16, 0});
  }
  run_view.placement.add({7, 4, 8, 0});  // 60 GPUs total
  run_view.plan = make_dp(32);           // placeholder fixed plan
  in.jobs.push_back(run_view);
  JobView be_view;
  be_view.spec = &be;
  be_view.plan = be.initial_plan;
  in.jobs.push_back(be_view);

  AntManPolicy antman({{"tenant-a", 64}});
  const auto out = antman.schedule(in);
  int be_gpus = -1;
  for (const auto& a : out)
    if (a.job_id == 1) be_gpus = a.placement.total_gpus();
  ASSERT_GT(be_gpus, 0) << "best-effort job should run scaled-down";
  EXPECT_LE(be_gpus, 4);
  // And its plan is a DP-scaled member of its family.
  for (const auto& a : out) {
    if (a.job_id == 1) {
      EXPECT_EQ(a.plan.dp * a.plan.tp * a.plan.pp, be_gpus);
    }
  }
}

TEST_F(PolicyBehaviorTest, OpportunisticAdmissionGrowsTowardMinRes) {
  // A 16-GPU-request job arrives while a long 60-GPU job holds the cluster
  // frozen (it reconfigured recently). The new job must start small rather
  // than queue, then grow once the big job completes.
  std::vector<JobSpec> jobs;
  jobs.push_back(make_job(0, "BERT", 32, 0.0, 3.0e6));       // long holder
  jobs.push_back(make_job(1, "GPT-2", 16, 600.0, 1.5e5));    // newcomer
  jobs[1].initial_plan = make_dp(16);

  RubickPolicy policy;
  Simulator sim(cluster_, oracle_);
  const SimResult r = sim.run(jobs, policy);
  EXPECT_TRUE(r.jobs[1].finished);
  // Started promptly (queued less than the big job's full runtime).
  EXPECT_LT(r.jobs[1].first_start_s - r.jobs[1].spec.submit_time_s, 1200.0)
      << "opportunistic admission should avoid gang queueing";
}

TEST_F(PolicyBehaviorTest, StrictAdmissionQueuesInstead) {
  std::vector<JobSpec> jobs;
  jobs.push_back(make_job(0, "BERT", 32, 0.0, 3.0e6));
  jobs.push_back(make_job(1, "GPT-2", 16, 600.0, 1.5e5));

  RubickConfig strict;
  strict.opportunistic_admission = false;
  RubickPolicy relaxed_policy, strict_policy(strict);
  Simulator sim(cluster_, oracle_);
  const double relaxed_jct = sim.run(jobs, relaxed_policy).jobs[1].jct_s;
  const double strict_jct = sim.run(jobs, strict_policy).jobs[1].jct_s;
  EXPECT_LE(relaxed_jct, strict_jct);
}

TEST_F(PolicyBehaviorTest, SizeDependentPenaltyChargesBigModelsMore) {
  SimOptions opts;
  opts.size_dependent_reconfig_cost = true;
  // launch 30 s + 16 bytes/param / 5 GB/s.
  const double small_penalty =
      30.0 + 16.0 * 336e6 / 5e9;  // BERT ~ 31 s
  const double large_penalty =
      30.0 + 16.0 * 7e9 / 5e9;  // LLaMA-2-7B ~ 52 s
  EXPECT_LT(small_penalty, large_penalty);

  // End-to-end: a run with the size-dependent cost enabled completes and
  // charges non-zero overhead when reconfigurations happen.
  std::vector<JobSpec> jobs;
  for (int i = 0; i < 8; ++i)
    jobs.push_back(make_job(i, i % 2 ? "BERT" : "GPT-2", 4, 60.0 * i, 4e5));
  RubickPolicy policy;
  Simulator sim(cluster_, oracle_, opts);
  const SimResult r = sim.run(jobs, policy);
  for (const auto& j : r.jobs) EXPECT_TRUE(j.finished);
}

TEST_F(PolicyBehaviorTest, StarvedBestEffortForcesEntryPastFrozenJobs) {
  // A recently-reconfigured (frozen) job hogs the whole cluster. A freshly
  // queued best-effort job cannot claim anything (frozen victims are off
  // limits for throughput-motivated shrinking); once its queueing delay
  // crosses the starvation threshold, the escape hatch raises its minimum
  // demand and the SLA-priority path shrinks even the frozen hog.
  PerfModelStore store =
      PerfModelStore::profile_models(oracle_, cluster_, {"BERT", "GPT-2"});
  MemoryEstimator est;
  JobSpec hog = make_job(0, "BERT", 32, 0, 1e7);
  JobSpec be = make_job(1, "GPT-2", 4, 0, 1e5, /*guaranteed=*/false);

  auto input_with_wait = [&](double waited) {
    SchedulerInput in;
    in.now = waited;
    in.cluster = &cluster_;
    in.models = &store;
    in.estimator = &est;
    JobView hog_view;
    hog_view.spec = &hog;
    hog_view.running = true;
    for (int n = 0; n < 8; ++n) hog_view.placement.add({n, 8, 16, 1ull << 30});
    hog_view.plan = make_3d(16, 2, 2);     // 16*2*2 = 64 GPUs
    hog_view.total_active_time_s = 100.0;  // recently moved: gate freezes it
    hog_view.reconfig_count = 2;
    in.jobs.push_back(hog_view);
    JobView be_view;
    be_view.spec = &be;
    be_view.plan = be.initial_plan;
    be_view.queued_since = 0.0;
    in.jobs.push_back(be_view);
    return in;
  };

  RubickConfig config;
  config.starvation_threshold_s = 1800.0;

  {
    RubickPolicy policy(config);
    const auto out = policy.schedule(input_with_wait(60.0));  // fresh queue
    bool be_running = false;
    for (const auto& a : out)
      if (a.job_id == 1 && a.placement.total_gpus() > 0) be_running = true;
    EXPECT_FALSE(be_running) << "frozen hog should block a fresh BE job";
  }
  {
    RubickPolicy policy(config);
    const auto out = policy.schedule(input_with_wait(3600.0));  // starved
    bool be_running = false;
    for (const auto& a : out)
      if (a.job_id == 1 && a.placement.total_gpus() > 0) be_running = true;
    EXPECT_TRUE(be_running)
        << "the starvation hatch should force the BE job in";
  }
}

}  // namespace
}  // namespace rubick
