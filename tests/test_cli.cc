#include "common/cli.h"

#include <gtest/gtest.h>

#include <array>

#include "common/error.h"

namespace rubick {
namespace {

CliFlags parse(std::vector<const char*> args) {
  args.insert(args.begin(), "prog");
  return CliFlags(static_cast<int>(args.size()),
                  const_cast<char**>(args.data()));
}

TEST(Cli, EqualsForm) {
  CliFlags flags = parse({"--jobs=42", "--policy=sia"});
  EXPECT_EQ(flags.get_int("jobs", 0), 42);
  EXPECT_EQ(flags.get_string("policy", ""), "sia");
  flags.finish();
}

TEST(Cli, SpaceForm) {
  CliFlags flags = parse({"--jobs", "13"});
  EXPECT_EQ(flags.get_int("jobs", 0), 13);
  flags.finish();
}

TEST(Cli, DefaultsWhenAbsent) {
  CliFlags flags = parse({});
  EXPECT_EQ(flags.get_int("jobs", 406), 406);
  EXPECT_DOUBLE_EQ(flags.get_double("load", 1.5), 1.5);
  EXPECT_EQ(flags.get_u64("seed", 9u), 9u);
  EXPECT_TRUE(flags.get_bool("refine", true));
  flags.finish();
}

TEST(Cli, BooleanSwitches) {
  CliFlags flags = parse({"--csv", "--no-refine"});
  EXPECT_TRUE(flags.get_bool("csv", false));
  EXPECT_FALSE(flags.get_bool("refine", true));
  flags.finish();
}

TEST(Cli, BooleanValueForms) {
  CliFlags flags = parse({"--a=true", "--b=0", "--c=yes"});
  EXPECT_TRUE(flags.get_bool("a", false));
  EXPECT_FALSE(flags.get_bool("b", true));
  EXPECT_TRUE(flags.get_bool("c", false));
  flags.finish();
}

TEST(Cli, UnknownFlagThrowsAtFinish) {
  CliFlags flags = parse({"--tpyo=1"});
  flags.get_int("typo", 0);  // declared flag differs
  EXPECT_THROW(flags.finish(), InvariantError);
}

TEST(Cli, NonFlagArgumentThrows) {
  EXPECT_THROW(parse({"positional"}), InvariantError);
}

TEST(Cli, DoubleParsing) {
  CliFlags flags = parse({"--load=2.5"});
  EXPECT_DOUBLE_EQ(flags.get_double("load", 0.0), 2.5);
  flags.finish();
}

TEST(Cli, SnakeCaseAliasParsesToKebabFlag) {
  // Deprecated snake_case spellings land on the canonical kebab-case flag
  // in every syntactic form, including boolean negation.
  CliFlags flags = parse({"--sched_json=out.json", "--window_hours", "4",
                          "--no_online_refinement"});
  EXPECT_EQ(flags.get_string("sched-json", ""), "out.json");
  EXPECT_DOUBLE_EQ(flags.get_double("window-hours", 0.0), 4.0);
  EXPECT_FALSE(flags.get_bool("online-refinement", true));
  flags.finish();
}

TEST(Cli, SnakeCaseAliasOnlyNormalizesTheKey) {
  // Underscores inside VALUES must survive (paths, model names).
  CliFlags flags = parse({"--trace_in=my_jobs_v2.csv"});
  EXPECT_EQ(flags.get_string("trace-in", ""), "my_jobs_v2.csv");
  flags.finish();
}

}  // namespace
}  // namespace rubick
