// Scheduling-round fast-path guarantees (DESIGN.md §9):
//
//   1. The cached / flat-filled predictor paths (warm(), feasible-width
//      envelope fill, ranked-list memo) return values byte-identical to a
//      fresh predictor evaluating the analytic model directly, in any query
//      order.
//   2. The round-digest fast path replays a round only when the decision
//      would be byte-identical, and invalidates on every decision-relevant
//      mutation: job arrival, job departure, model-store refit.
#include <algorithm>
#include <deque>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/cluster.h"
#include "cluster/placement.h"
#include "common/resource.h"
#include "core/plan_selector.h"
#include "core/predictor.h"
#include "core/rubick_policy.h"
#include "core/scheduler.h"
#include "model/model_spec.h"
#include "model/model_zoo.h"
#include "perf/oracle.h"
#include "perf/perf_store.h"
#include "plan/execution_plan.h"
#include "plan/memory_estimator.h"
#include "trace/job.h"

namespace rubick {
namespace {

class FastPathTest : public ::testing::Test {
 protected:
  FastPathTest()
      : oracle_(2025),
        store_(PerfModelStore::profile_models(
            oracle_, cluster_, {"GPT-2", "BERT", "LLaMA-2-7B"})) {}

  JobSpec make_spec(int id, const std::string& model, int gpus,
                    bool guaranteed = true) {
    JobSpec spec;
    spec.id = id;
    spec.model_name = model;
    spec.requested = ResourceVector{gpus, 4 * gpus, 0};
    spec.global_batch = find_model(model).default_global_batch;
    spec.initial_plan = make_dp(gpus);
    spec.target_samples = 1e6;
    spec.guaranteed = guaranteed;
    spec.tenant = "t";
    return spec;
  }

  SchedulerInput input_for(const std::deque<JobSpec>& specs,
                           double now = 0.0) const {
    SchedulerInput in;
    in.now = now;
    in.cluster = &cluster_;
    in.models = &store_;
    in.estimator = &estimator_;
    for (const JobSpec& s : specs) {
      JobView v;
      v.spec = &s;
      v.running = false;
      v.plan = s.initial_plan;
      v.remaining_samples = s.target_samples;
      v.queued_since = s.submit_time_s;
      in.jobs.push_back(v);
    }
    return in;
  }

  ClusterSpec cluster_;
  GroundTruthOracle oracle_;
  MemoryEstimator estimator_;
  PerfModelStore store_;
};

void expect_assignments_equal(const std::vector<Assignment>& a,
                              const std::vector<Assignment>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].job_id, b[i].job_id) << i;
    EXPECT_EQ(a[i].plan, b[i].plan) << i;
    ASSERT_EQ(a[i].placement.slices.size(), b[i].placement.slices.size()) << i;
    for (std::size_t s = 0; s < a[i].placement.slices.size(); ++s) {
      const NodeSlice& x = a[i].placement.slices[s];
      const NodeSlice& y = b[i].placement.slices[s];
      EXPECT_EQ(x.node, y.node);
      EXPECT_EQ(x.gpus, y.gpus);
      EXPECT_EQ(x.cpus, y.cpus);
      EXPECT_EQ(x.host_memory_bytes, y.host_memory_bytes);
    }
  }
}

// -------------------------------------------------------------------------
// Predictor equivalence
// -------------------------------------------------------------------------

TEST_F(FastPathTest, EnvelopeMatchesBruteForceMaxOverExactCounts) {
  // envelope(g, c) is defined as max over g' <= g of best_canonical(g', c).
  // The feasible-width fill skips the analytic model on flat stretches; the
  // brute-force maximum evaluates every count. They must agree exactly.
  BestPlanPredictor predictor(cluster_, store_, estimator_);
  FullPlanSelector all;
  std::mt19937 rng(7);
  std::uniform_int_distribution<int> pick_gpus(1, 64);
  for (const char* name : {"GPT-2", "BERT", "LLaMA-2-7B"}) {
    const ModelSpec& m = find_model(name);
    const int batch = m.default_global_batch;
    for (int trial = 0; trial < 8; ++trial) {
      const int g = pick_gpus(rng);
      const int c = std::uniform_int_distribution<int>(1, 2 * g)(rng);
      double brute = 0.0;
      for (int gg = 1; gg <= g; ++gg)
        brute = std::max(
            brute, predictor.best_canonical(m, batch, all, gg, c).throughput);
      EXPECT_DOUBLE_EQ(predictor.envelope(m, batch, all, g, c), brute)
          << name << " g=" << g << " c=" << c;
    }
  }
}

TEST_F(FastPathTest, WarmedPredictorMatchesFreshPredictor) {
  // A predictor warmed through the parallel flat-fill path and a fresh
  // predictor answering cold queries in randomized order must return
  // byte-identical predictions everywhere.
  BestPlanPredictor warmed(cluster_, store_, estimator_);
  BestPlanPredictor fresh(cluster_, store_, estimator_);
  FullPlanSelector all;
  for (const char* name : {"GPT-2", "BERT", "LLaMA-2-7B"})
    warmed.warm(find_model(name), find_model(name).default_global_batch, all,
                64, 2);

  struct Query {
    const ModelSpec* model;
    int gpus, cpus, max_tp;
    bool multi_node;
  };
  std::vector<Query> queries;
  std::mt19937 rng(11);
  std::uniform_int_distribution<int> pick_gpus(1, 64);
  const int tps[] = {1, 2, 4, 8};
  for (const char* name : {"GPT-2", "BERT", "LLaMA-2-7B"})
    for (int trial = 0; trial < 12; ++trial) {
      const int g = pick_gpus(rng);
      queries.push_back({&find_model(name), g,
                         std::uniform_int_distribution<int>(1, 3 * g)(rng),
                         tps[std::uniform_int_distribution<int>(0, 3)(rng)],
                         std::bernoulli_distribution(0.5)(rng)});
    }
  std::shuffle(queries.begin(), queries.end(), rng);
  for (const Query& q : queries) {
    const int batch = q.model->default_global_batch;
    EXPECT_DOUBLE_EQ(warmed.envelope(*q.model, batch, all, q.gpus, q.cpus),
                     fresh.envelope(*q.model, batch, all, q.gpus, q.cpus));
    const auto a = warmed.best_canonical(*q.model, batch, all, q.gpus, q.cpus);
    const auto b = fresh.best_canonical(*q.model, batch, all, q.gpus, q.cpus);
    EXPECT_EQ(a.feasible, b.feasible);
    EXPECT_DOUBLE_EQ(a.throughput, b.throughput);
    if (a.feasible) {
      EXPECT_EQ(a.plan, b.plan);
    }
    const auto ea = warmed.best_exact(*q.model, batch, all, q.gpus, q.cpus,
                                      q.max_tp, q.multi_node);
    const auto eb = fresh.best_exact(*q.model, batch, all, q.gpus, q.cpus,
                                     q.max_tp, q.multi_node);
    EXPECT_EQ(ea.feasible, eb.feasible);
    EXPECT_DOUBLE_EQ(ea.throughput, eb.throughput);
    if (ea.feasible) {
      EXPECT_EQ(ea.plan, eb.plan);
    }
  }
}

TEST_F(FastPathTest, RankedForPlacementMatchesFreshPredictor) {
  BestPlanPredictor warmed(cluster_, store_, estimator_);
  BestPlanPredictor fresh(cluster_, store_, estimator_);
  FullPlanSelector all;
  std::mt19937 rng(13);
  for (const char* name : {"GPT-2", "BERT", "LLaMA-2-7B"}) {
    const ModelSpec& m = find_model(name);
    const int batch = m.default_global_batch;
    warmed.warm(m, batch, all, 64, 2);
    for (int trial = 0; trial < 6; ++trial) {
      Placement p;
      const int nodes = std::uniform_int_distribution<int>(1, 2)(rng);
      for (int n = 0; n < nodes; ++n) {
        const int g = std::uniform_int_distribution<int>(1, 8)(rng);
        const int c = std::uniform_int_distribution<int>(g, 12 * g)(rng);
        p.add({n, g, c, 0});
      }
      const auto a = warmed.ranked_for_placement(m, batch, all, p);
      const auto b = fresh.ranked_for_placement(m, batch, all, p);
      ASSERT_EQ(a->size(), b->size()) << name << " trial " << trial;
      for (std::size_t i = 0; i < a->size(); ++i) {
        EXPECT_DOUBLE_EQ((*a)[i].throughput, (*b)[i].throughput);
        EXPECT_EQ((*a)[i].plan, (*b)[i].plan);
      }
      // Repeat lookups share one memoized list.
      EXPECT_EQ(a.get(), warmed.ranked_for_placement(m, batch, all, p).get());
    }
  }
}

TEST_F(FastPathTest, CurveSummaryMatchesProgressiveScan) {
  // curve_summary memoizes the policy's progressive scans; replicate them
  // on a second predictor with raw envelope calls and compare.
  BestPlanPredictor summarized(cluster_, store_, estimator_);
  BestPlanPredictor scanned(cluster_, store_, estimator_);
  FullPlanSelector all;
  const int total_gpus = cluster_.num_nodes * cluster_.node.gpus;
  const int floor = 2;
  for (const char* name : {"GPT-2", "BERT", "LLaMA-2-7B"}) {
    const ModelSpec& m = find_model(name);
    const int batch = m.default_global_batch;
    const auto summary =
        summarized.curve_summary(m, batch, all, floor, total_gpus);

    int min_feasible = 0;
    for (int g = 1; g <= total_gpus; ++g)
      if (scanned.envelope(m, batch, all, g, floor * g) > 0.0) {
        min_feasible = g;
        break;
      }
    int best_g = 0;
    double best_v = 0.0;
    for (int g = 1; g <= total_gpus; ++g) {
      const double v = scanned.envelope(m, batch, all, g, floor * g);
      if (v > best_v * (1.0 + 1e-9)) {
        best_v = v;
        best_g = g;
      }
    }
    EXPECT_EQ(summary.min_feasible_gpus, min_feasible) << name;
    EXPECT_EQ(summary.max_useful_gpus, best_v > 0.0 ? best_g : 0) << name;
  }
}

// -------------------------------------------------------------------------
// Round-digest fast path
// -------------------------------------------------------------------------

TEST_F(FastPathTest, ReplaysIdenticalRoundAndMatchesSlowPath) {
  std::deque<JobSpec> specs;
  specs.push_back(make_spec(0, "BERT", 4));
  specs.push_back(make_spec(1, "GPT-2", 2));

  RubickPolicy fast;
  RubickConfig off;
  off.enable_fast_path = false;
  RubickPolicy slow(off);

  const SchedulerInput in = input_for(specs);
  const auto first = fast.schedule(in);
  expect_assignments_equal(first, slow.schedule(in));
  EXPECT_EQ(fast.fast_path_rounds(), 0u);

  for (int round = 1; round <= 3; ++round) {
    const auto replay = fast.schedule(in);
    expect_assignments_equal(first, replay);
    expect_assignments_equal(replay, slow.schedule(in));
    EXPECT_EQ(fast.fast_path_rounds(), static_cast<std::uint64_t>(round));
  }
  EXPECT_EQ(slow.fast_path_rounds(), 0u);
}

TEST_F(FastPathTest, ClockAdvanceAloneStillReplays) {
  // `now` reaches decisions only through the reconfiguration gate and the
  // starvation predicate; with guaranteed queued jobs neither applies, so a
  // clock tick with an otherwise identical round replays.
  std::deque<JobSpec> specs;
  specs.push_back(make_spec(0, "BERT", 4));
  RubickPolicy policy;
  const auto first = policy.schedule(input_for(specs, 0.0));
  const auto later = policy.schedule(input_for(specs, 100.0));
  expect_assignments_equal(first, later);
  EXPECT_EQ(policy.fast_path_rounds(), 1u);
}

TEST_F(FastPathTest, InvalidatesOnJobArrival) {
  std::deque<JobSpec> specs;
  specs.push_back(make_spec(0, "BERT", 4));
  RubickPolicy policy;
  policy.schedule(input_for(specs));
  policy.schedule(input_for(specs));
  ASSERT_EQ(policy.fast_path_rounds(), 1u);

  specs.push_back(make_spec(1, "GPT-2", 2));
  RubickConfig off;
  off.enable_fast_path = false;
  RubickPolicy slow(off);
  slow.schedule(input_for(specs));  // fresh policy, same mutated round
  const auto out = policy.schedule(input_for(specs));
  EXPECT_EQ(policy.fast_path_rounds(), 1u);  // no replay across the mutation
  expect_assignments_equal(out, slow.schedule(input_for(specs)));
  EXPECT_EQ(out.size(), 2u);
}

TEST_F(FastPathTest, InvalidatesOnJobDeparture) {
  std::deque<JobSpec> specs;
  specs.push_back(make_spec(0, "BERT", 4));
  specs.push_back(make_spec(1, "GPT-2", 2));
  RubickPolicy policy;
  policy.schedule(input_for(specs));
  policy.schedule(input_for(specs));
  ASSERT_EQ(policy.fast_path_rounds(), 1u);

  specs.pop_back();
  const auto out = policy.schedule(input_for(specs));
  EXPECT_EQ(policy.fast_path_rounds(), 1u);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].job_id, 0);
}

TEST_F(FastPathTest, InvalidatesOnModelStoreRefit) {
  std::deque<JobSpec> specs;
  specs.push_back(make_spec(0, "BERT", 4));
  RubickPolicy policy;
  policy.schedule(input_for(specs));
  policy.schedule(input_for(specs));
  ASSERT_EQ(policy.fast_path_rounds(), 1u);

  // Re-adding a fitted model bumps the store version — the same signal an
  // online refit emits. The next round must take the slow path even though
  // the refitted coefficients happen to be identical.
  const std::uint64_t before = store_.version();
  store_.add(store_.get("BERT"));
  ASSERT_GT(store_.version(), before);
  const auto out = policy.schedule(input_for(specs));
  EXPECT_EQ(policy.fast_path_rounds(), 1u);
  EXPECT_EQ(out.size(), 1u);
}

TEST_F(FastPathTest, MatchesSlowPathAcrossMutationSequence) {
  // Drive both policies through the same arrival/replay/departure/refit
  // sequence; their decisions must be identical at every round.
  RubickPolicy fast;
  RubickConfig off;
  off.enable_fast_path = false;
  RubickPolicy slow(off);

  std::deque<JobSpec> specs;
  const auto step = [&](double now) {
    const auto a = fast.schedule(input_for(specs, now));
    const auto b = slow.schedule(input_for(specs, now));
    expect_assignments_equal(a, b);
  };

  specs.push_back(make_spec(0, "BERT", 4));
  step(0.0);
  specs.push_back(make_spec(1, "GPT-2", 2));
  step(10.0);
  step(20.0);  // replay round for the fast policy
  specs.push_back(make_spec(2, "LLaMA-2-7B", 8));
  step(30.0);
  specs.pop_front();  // departure
  step(40.0);
  store_.add(store_.get("GPT-2"));  // refit
  step(50.0);
  EXPECT_GE(fast.fast_path_rounds(), 1u);
  EXPECT_EQ(slow.fast_path_rounds(), 0u);
}

}  // namespace
}  // namespace rubick
