#include "cluster/cluster.h"
#include "cluster/placement.h"
#include "model/model_spec.h"
#include "perf/oracle.h"
#include "perf/profiler.h"
#include "plan/memory_estimator.h"

#include <gtest/gtest.h>

#include "model/model_zoo.h"
#include "plan/enumerate.h"

namespace rubick {
namespace {

TEST(PerfContextHelpers, MultiNodeDetection) {
  const ClusterSpec cluster;  // 8 GPUs per node
  EXPECT_FALSE(make_perf_context(cluster, 8, 16).multi_node);
  EXPECT_TRUE(make_perf_context(cluster, 9, 16).multi_node);
}

TEST(PerfContextHelpers, PlacementContext) {
  const ClusterSpec cluster;
  Placement single;
  single.add({0, 4, 8, 0});
  EXPECT_FALSE(make_perf_context(cluster, single).multi_node);
  EXPECT_EQ(make_perf_context(cluster, single).cpus, 8);
  Placement multi = single;
  multi.add({1, 4, 8, 0});
  EXPECT_TRUE(make_perf_context(cluster, multi).multi_node);
  EXPECT_EQ(make_perf_context(cluster, multi).cpus, 16);
}

TEST(PerfContextHelpers, MemoryBudgetScalesWithNodes) {
  const ClusterSpec cluster;
  const MemoryBudget one = make_memory_budget(cluster, 8);
  const MemoryBudget two = make_memory_budget(cluster, 9);
  EXPECT_EQ(one.gpu_capacity_bytes, cluster.node.gpu_memory_bytes);
  EXPECT_EQ(two.host_capacity_bytes, 2 * one.host_capacity_bytes);
}

class SamplingPlan : public ::testing::TestWithParam<const char*> {};

TEST_P(SamplingPlan, MeetsPaperRequirements) {
  const ClusterSpec cluster;
  const GroundTruthOracle oracle(2025);
  const Profiler profiler(oracle, cluster);
  const ModelSpec& model = find_model(GetParam());
  const auto samples =
      profiler.choose_samples(model, model.default_global_batch);

  // At least 7 points (paper: "we require at least seven data points").
  EXPECT_GE(samples.size(), 7u) << model.name;

  int offload = 0;
  MemoryEstimator est;
  for (const auto& s : samples) {
    EXPECT_TRUE(s.plan.valid_for(model, s.global_batch)) << model.name;
    if (s.plan.uses_offload()) ++offload;
  }
  // Three offload runs whenever offload is feasible at all (paper §4.3).
  const bool offload_feasible = [&] {
    PlanConstraints pc;
    pc.num_gpus = 1;
    pc.max_tp = 1;
    pc.budget = make_memory_budget(cluster, 1);
    for (const auto& p :
         enumerate_plans(model, model.default_global_batch, pc, est))
      if (p.uses_offload()) return true;
    return false;
  }();
  if (offload_feasible) {
    EXPECT_GE(offload, 3) << model.name;
  }
}

INSTANTIATE_TEST_SUITE_P(Zoo, SamplingPlan,
                         ::testing::Values("ViT", "RoBERTa", "BERT", "T5",
                                           "GPT-2", "LLaMA-2-7B",
                                           "LLaMA-30B"));

TEST(Profiler, ProfilingCostScalesWithSamples) {
  const ClusterSpec cluster;
  const GroundTruthOracle oracle(2025);
  const Profiler profiler(oracle, cluster);
  const ModelSpec& model = find_model("BERT");
  const auto result = profiler.profile_and_fit(model, 32);
  EXPECT_DOUBLE_EQ(
      result.profiling_cost_s,
      Profiler::kSecondsPerSample * static_cast<double>(result.samples.size()));
}

TEST(Profiler, MeasurementsArePositive) {
  const ClusterSpec cluster;
  const GroundTruthOracle oracle(2025);
  const Profiler profiler(oracle, cluster);
  const auto result = profiler.profile_and_fit(find_model("T5"), 16);
  for (const auto& s : result.samples) EXPECT_GT(s.measured_throughput, 0.0);
}

}  // namespace
}  // namespace rubick
