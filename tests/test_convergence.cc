#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "convergence/dataset.h"
#include "convergence/mlp.h"
#include "convergence/trainer.h"

namespace rubick {
namespace {

TEST(Dataset, DeterministicAndSplitCorrectly) {
  const DatasetSplits a = make_synthetic_dataset(1000, 16, 3);
  const DatasetSplits b = make_synthetic_dataset(1000, 16, 3);
  EXPECT_EQ(a.train.features, b.train.features);
  EXPECT_EQ(a.train.num_samples(), 700);
  EXPECT_EQ(a.validation.num_samples(), 150);
  EXPECT_EQ(a.test.num_samples(), 150);
  EXPECT_EQ(a.train.num_features, 16);
}

TEST(Dataset, SeedChangesData) {
  const DatasetSplits a = make_synthetic_dataset(1000, 16, 3);
  const DatasetSplits b = make_synthetic_dataset(1000, 16, 4);
  EXPECT_NE(a.train.features, b.train.features);
}

TEST(Dataset, LabelsAreBinary) {
  const DatasetSplits d = make_synthetic_dataset(500, 8, 5);
  for (float y : d.train.labels) EXPECT_TRUE(y == 0.0f || y == 1.0f);
}

TEST(Mlp, NumericGradientCheck) {
  const DatasetSplits data = make_synthetic_dataset(64, 8, 7);
  Mlp model(8, 4, 11);
  std::vector<int> idx = {0, 1, 2, 3};
  std::vector<float> grad(static_cast<std::size_t>(model.num_params()), 0.0f);
  model.loss_and_grad(data.train, idx.data(), 4, &grad);

  // Central differences on a few parameters (float precision: coarse tol).
  for (int pi : {0, 7, model.num_params() / 2, model.num_params() - 1}) {
    Mlp plus = model, minus = model;
    const float eps = 1e-3f;
    plus.mutable_params()[static_cast<std::size_t>(pi)] += eps;
    minus.mutable_params()[static_cast<std::size_t>(pi)] -= eps;
    std::vector<float> dummy(grad.size(), 0.0f);
    const float lp = plus.loss_and_grad(data.train, idx.data(), 4, &dummy);
    std::fill(dummy.begin(), dummy.end(), 0.0f);
    const float lm = minus.loss_and_grad(data.train, idx.data(), 4, &dummy);
    const float numeric = (lp - lm) / (2.0f * eps);
    EXPECT_NEAR(grad[static_cast<std::size_t>(pi)], numeric, 5e-3f) << pi;
  }
}

TEST(Mlp, LossIsFiniteAndPositive) {
  const DatasetSplits data = make_synthetic_dataset(256, 8, 9);
  const Mlp model(8, 4, 13);
  const float loss = model.loss(data.train);
  EXPECT_TRUE(std::isfinite(loss));
  EXPECT_GT(loss, 0.0f);
}

// The central claim (paper §7.2): the gradient of a fixed global batch is
// independent of how it is partitioned into DP ranks and GA micro-steps.
class PartitionInvariance
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(PartitionInvariance, GradientMatchesUnpartitioned) {
  const auto [dp, ga] = GetParam();
  const DatasetSplits data = make_synthetic_dataset(512, 16, 21);
  const Mlp model(16, 8, 23);
  std::vector<int> batch;
  for (int i = 0; i < 64; ++i) batch.push_back(i);

  float loss_ref = 0.0f, loss_split = 0.0f;
  const auto ref =
      Trainer::partitioned_gradient(model, data.train, batch, 1, 1, &loss_ref);
  const auto split = Trainer::partitioned_gradient(model, data.train, batch,
                                                   dp, ga, &loss_split);
  ASSERT_EQ(ref.size(), split.size());
  double max_diff = 0.0;
  for (std::size_t i = 0; i < ref.size(); ++i)
    max_diff = std::max(max_diff,
                        static_cast<double>(std::abs(ref[i] - split[i])));
  EXPECT_LT(max_diff, 1e-5);  // float round-off only
  EXPECT_NEAR(loss_ref, loss_split, 1e-5f);
}

INSTANTIATE_TEST_SUITE_P(
    Partitions, PartitionInvariance,
    ::testing::Values(std::tuple(2, 1), std::tuple(4, 1), std::tuple(8, 1),
                      std::tuple(1, 2), std::tuple(1, 4), std::tuple(2, 2),
                      std::tuple(4, 2), std::tuple(2, 4), std::tuple(8, 8)));

TEST(Trainer, IndivisibleBatchThrows) {
  const DatasetSplits data = make_synthetic_dataset(128, 8, 3);
  const Mlp model(8, 4, 5);
  std::vector<int> batch = {0, 1, 2, 3, 4, 5};
  EXPECT_THROW(
      Trainer::partitioned_gradient(model, data.train, batch, 4, 1, nullptr),
      InvariantError);
}

TEST(Trainer, LossDecreasesDuringTraining) {
  const DatasetSplits data = make_synthetic_dataset(2048, 32, 17);
  Trainer trainer(data);
  TrainerConfig config;
  config.steps = 600;
  const TrainResult r = trainer.train(config);
  ASSERT_GT(r.loss_curve.size(), 4u);
  EXPECT_LT(r.loss_curve.back(), r.loss_curve.front());
  EXPECT_LT(r.final_train_loss, 0.69);  // better than chance (log 2)
}

TEST(Trainer, ReconfigurationPreservesTrajectory) {
  const DatasetSplits data = make_synthetic_dataset(2048, 32, 17);
  Trainer trainer(data);
  TrainerConfig base;
  base.steps = 800;
  TrainerConfig reconfig = base;
  reconfig.phases = {{0, 1, 1}, {300, 4, 1}, {600, 2, 2}};
  TrainerConfig reseeded = base;
  reseeded.seed = base.seed + 1;

  const TrainResult rb = trainer.train(base);
  const TrainResult rr = trainer.train(reconfig);
  const TrainResult rs = trainer.train(reseeded);

  auto max_diff = [](const TrainResult& a, const TrainResult& b) {
    double m = 0.0;
    for (std::size_t i = 0; i < a.loss_curve.size(); ++i)
      m = std::max(m, std::abs(a.loss_curve[i] - b.loss_curve[i]));
    return m;
  };
  const double reconfig_diff = max_diff(rb, rr);
  const double seed_diff = max_diff(rb, rs);
  EXPECT_LT(reconfig_diff, seed_diff);        // Table 3's claim
  EXPECT_LT(reconfig_diff, 1e-3);             // round-off scale
  EXPECT_NEAR(rr.final_test_loss, rb.final_test_loss, 1e-3);
}

TEST(Trainer, CheckpointResumeIsBitIdentical) {
  // The mechanism behind Rubick's checkpoint-resume reconfiguration: stop
  // at a step boundary, "relaunch" from the checkpoint, and the combined
  // run matches an uninterrupted one exactly — even when the partitioning
  // changes at the boundary.
  const DatasetSplits data = make_synthetic_dataset(1024, 16, 29);
  Trainer trainer(data);

  TrainerConfig full;
  full.steps = 600;
  full.phases = {{0, 1, 1}, {300, 4, 1}};  // reconfig at the boundary
  TrainerCheckpoint reference_end;
  const TrainResult whole = trainer.train_segment(full, nullptr,
                                                  &reference_end);

  TrainerConfig first_half = full;
  first_half.steps = 300;
  TrainerCheckpoint ckpt;
  trainer.train_segment(first_half, nullptr, &ckpt);
  EXPECT_EQ(ckpt.step, 300);

  TrainerConfig second_half = full;  // same phase schedule, steps = 600
  TrainerCheckpoint resumed_end;
  const TrainResult resumed =
      trainer.train_segment(second_half, &ckpt, &resumed_end);

  EXPECT_EQ(reference_end.params, resumed_end.params);  // bit-identical
  EXPECT_EQ(reference_end.velocity, resumed_end.velocity);
  EXPECT_FLOAT_EQ(static_cast<float>(whole.final_test_loss),
                  static_cast<float>(resumed.final_test_loss));
}

TEST(Trainer, SegmentLossCurveCoversOnlyItsSteps) {
  const DatasetSplits data = make_synthetic_dataset(512, 8, 31);
  Trainer trainer(data);
  TrainerConfig config;
  config.steps = 200;
  config.record_every = 50;
  TrainerCheckpoint ckpt;
  TrainerConfig half = config;
  half.steps = 100;
  const TrainResult a = trainer.train_segment(half, nullptr, &ckpt);
  const TrainResult b = trainer.train_segment(config, &ckpt, nullptr);
  EXPECT_EQ(a.loss_curve.size(), 2u);  // steps 0 and 50
  EXPECT_EQ(b.loss_curve.size(), 2u);  // steps 100 and 150
}

TEST(Trainer, ResumePastEndThrows) {
  const DatasetSplits data = make_synthetic_dataset(256, 8, 33);
  Trainer trainer(data);
  TrainerConfig config;
  config.steps = 100;
  TrainerCheckpoint ckpt;
  trainer.train_segment(config, nullptr, &ckpt);
  TrainerConfig shorter = config;
  shorter.steps = 50;  // checkpoint is at step 100 > 50
  EXPECT_THROW(trainer.train_segment(shorter, &ckpt, nullptr),
               InvariantError);
}

TEST(Trainer, AdamConverges) {
  const DatasetSplits data = make_synthetic_dataset(2048, 32, 41);
  Trainer trainer(data);
  TrainerConfig config;
  config.optimizer = OptimizerKind::kAdam;
  config.steps = 600;
  const TrainResult r = trainer.train(config);
  EXPECT_LT(r.loss_curve.back(), r.loss_curve.front());
  EXPECT_LT(r.final_train_loss, 0.69);
}

TEST(Trainer, AdamPartitionInvariance) {
  // The accuracy-preservation claim holds for Adam too: same global batch,
  // different (dp, ga) partitioning -> same trajectory up to round-off.
  const DatasetSplits data = make_synthetic_dataset(2048, 32, 43);
  Trainer trainer(data);
  TrainerConfig base;
  base.optimizer = OptimizerKind::kAdam;
  base.steps = 400;
  TrainerConfig split = base;
  split.phases = {{0, 4, 2}};
  const TrainResult a = trainer.train(base);
  const TrainResult b = trainer.train(split);
  double max_diff = 0.0;
  for (std::size_t i = 0; i < a.loss_curve.size(); ++i)
    max_diff = std::max(max_diff, std::abs(a.loss_curve[i] - b.loss_curve[i]));
  EXPECT_LT(max_diff, 1e-3);
}

TEST(Trainer, AdamCheckpointCarriesBothMoments) {
  const DatasetSplits data = make_synthetic_dataset(1024, 16, 47);
  Trainer trainer(data);
  TrainerConfig full;
  full.optimizer = OptimizerKind::kAdam;
  full.steps = 300;
  TrainerCheckpoint whole_end;
  trainer.train_segment(full, nullptr, &whole_end);
  EXPECT_FALSE(whole_end.second_moment.empty());

  TrainerConfig half = full;
  half.steps = 150;
  TrainerCheckpoint mid, resumed_end;
  trainer.train_segment(half, nullptr, &mid);
  trainer.train_segment(full, &mid, &resumed_end);
  EXPECT_EQ(whole_end.params, resumed_end.params);
  EXPECT_EQ(whole_end.second_moment, resumed_end.second_moment);
}

TEST(Trainer, SgdCheckpointHasNoSecondMoment) {
  const DatasetSplits data = make_synthetic_dataset(512, 8, 49);
  Trainer trainer(data);
  TrainerConfig config;
  config.steps = 50;
  TrainerCheckpoint end;
  trainer.train_segment(config, nullptr, &end);
  EXPECT_TRUE(end.second_moment.empty());
}

TEST(Trainer, DeterministicForSameConfig) {
  const DatasetSplits data = make_synthetic_dataset(1024, 16, 19);
  Trainer trainer(data);
  TrainerConfig config;
  config.steps = 200;
  const TrainResult a = trainer.train(config);
  const TrainResult b = trainer.train(config);
  EXPECT_EQ(a.loss_curve, b.loss_curve);
  EXPECT_DOUBLE_EQ(a.final_test_loss, b.final_test_loss);
}

}  // namespace
}  // namespace rubick
