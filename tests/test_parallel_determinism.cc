// Determinism guarantees of the parallel curve engine (ISSUE 1):
//   * warm() across a multi-thread pool produces byte-identical curves and
//     best plans to a size-1 (serial) pool;
//   * concurrent Simulator runs match their sequential counterparts
//     seed-for-seed.
#include <gtest/gtest.h>

#include <future>
#include <vector>

#include "baselines/sia.h"
#include "cluster/cluster.h"
#include "common/threadpool.h"
#include "common/units.h"
#include "core/plan_selector.h"
#include "core/predictor.h"
#include "core/rubick_policy.h"
#include "failure/fault_plan.h"
#include "model/model_spec.h"
#include "model/model_zoo.h"
#include "perf/oracle.h"
#include "perf/perf_store.h"
#include "plan/memory_estimator.h"
#include "sim/simulator.h"
#include "trace/job.h"
#include "trace/trace_gen.h"

namespace rubick {
namespace {

class ParallelDeterminismTest : public ::testing::Test {
 protected:
  ParallelDeterminismTest() : oracle_(2025) {}

  const PerfModelStore& store() {
    if (!store_ready_) {
      std::vector<std::string> names;
      for (const auto& m : model_zoo()) names.push_back(m.name);
      store_ = PerfModelStore::profile_models(oracle_, cluster_, names);
      store_ready_ = true;
    }
    return store_;
  }

  ClusterSpec cluster_;
  GroundTruthOracle oracle_;
  PerfModelStore store_;
  bool store_ready_ = false;
};

TEST_F(ParallelDeterminismTest, ParallelWarmMatchesSerialCurves) {
  MemoryEstimator est;
  FullPlanSelector sel;
  ThreadPool serial(1);
  ThreadPool threaded(4);

  for (const char* name : {"BERT", "GPT-2", "LLaMA-2-7B"}) {
    const ModelSpec& model = find_model(name);
    const int batch = model.default_global_batch;

    BestPlanPredictor a(cluster_, store(), est);
    a.warm(model, batch, sel, cluster_.total_gpus(), 2, &serial);
    BestPlanPredictor b(cluster_, store(), est);
    b.warm(model, batch, sel, cluster_.total_gpus(), 2, &threaded);

    EXPECT_EQ(a.cache_size(), b.cache_size()) << name;
    for (int g = 1; g <= cluster_.total_gpus(); ++g) {
      const int c = 2 * g;
      // Envelope values must match exactly (no float-order tolerance):
      // every cached value is computed by the same serial code path, only
      // the fan-out differs.
      EXPECT_EQ(a.envelope(model, batch, sel, g, c),
                b.envelope(model, batch, sel, g, c))
          << name << " g=" << g;
      const auto pa = a.best_canonical(model, batch, sel, g, c);
      const auto pb = b.best_canonical(model, batch, sel, g, c);
      EXPECT_EQ(pa.feasible, pb.feasible) << name << " g=" << g;
      EXPECT_EQ(pa.throughput, pb.throughput) << name << " g=" << g;
      EXPECT_TRUE(pa.plan == pb.plan) << name << " g=" << g;
    }
  }
}

TEST_F(ParallelDeterminismTest, ParallelSlopesMatchSerial) {
  MemoryEstimator est;
  FullPlanSelector sel;
  ThreadPool threaded(4);
  const ModelSpec& model = find_model("T5");
  const int batch = model.default_global_batch;

  BestPlanPredictor serial_pred(cluster_, store(), est);
  ThreadPool serial(1);
  serial_pred.warm(model, batch, sel, cluster_.total_gpus(), 2, &serial);
  BestPlanPredictor par_pred(cluster_, store(), est);
  par_pred.warm(model, batch, sel, cluster_.total_gpus(), 2, &threaded);

  for (int g = 1; g <= 16; ++g) {
    const int c = 2 * g;
    EXPECT_EQ(serial_pred.gpu_slope_up(model, batch, sel, g, c),
              par_pred.gpu_slope_up(model, batch, sel, g, c));
    EXPECT_EQ(serial_pred.gpu_slope_down(model, batch, sel, g, c),
              par_pred.gpu_slope_down(model, batch, sel, g, c));
    EXPECT_EQ(serial_pred.cpu_slope_up(model, batch, sel, g, c),
              par_pred.cpu_slope_up(model, batch, sel, g, c));
  }
}

// Two simulator runs with different policies executed CONCURRENTLY (shared
// oracle, shared pre-fitted store) must reproduce the sequential results
// seed-for-seed.
TEST_F(ParallelDeterminismTest, ConcurrentSimulatorRunsMatchSequential) {
  const TraceGenerator gen(cluster_, oracle_);
  TraceOptions opts;
  opts.seed = 7;
  opts.num_jobs = 10;
  opts.window_s = hours(1.0);
  const std::vector<JobSpec> jobs = gen.generate(opts);

  std::map<std::string, double> costs;  // empty: default profiling charge
  RunContext ctx;
  ctx.store = &store();
  ctx.profiling_cost_s = &costs;
  const Simulator sim(cluster_, oracle_);

  // Sequential reference runs.
  RubickPolicy rubick_seq;
  SiaPolicy sia_seq;
  const SimResult rubick_ref = sim.run(jobs, rubick_seq, ctx);
  const SimResult sia_ref = sim.run(jobs, sia_seq, ctx);

  // The same two runs, concurrently (fresh policy instances: policies are
  // single-run state).
  ThreadPool pool(2);
  auto fut_rubick = pool.submit([&] {
    RubickPolicy p;
    return sim.run(jobs, p, ctx);
  });
  auto fut_sia = pool.submit([&] {
    SiaPolicy p;
    return sim.run(jobs, p, ctx);
  });
  const SimResult rubick_par = fut_rubick.get();
  const SimResult sia_par = fut_sia.get();

  auto expect_identical = [](const SimResult& x, const SimResult& y) {
    EXPECT_EQ(x.makespan_s, y.makespan_s);
    EXPECT_EQ(x.scheduling_rounds, y.scheduling_rounds);
    EXPECT_EQ(x.online_refits, y.online_refits);
    ASSERT_EQ(x.jobs.size(), y.jobs.size());
    for (std::size_t i = 0; i < x.jobs.size(); ++i) {
      EXPECT_EQ(x.jobs[i].finished, y.jobs[i].finished) << i;
      EXPECT_EQ(x.jobs[i].jct_s, y.jobs[i].jct_s) << i;
      EXPECT_EQ(x.jobs[i].reconfig_count, y.jobs[i].reconfig_count) << i;
      EXPECT_EQ(x.jobs[i].gpu_seconds, y.jobs[i].gpu_seconds) << i;
    }
  };
  expect_identical(rubick_ref, rubick_par);
  expect_identical(sia_ref, sia_par);
}

// Fault injection must not cost determinism: one shared FaultPlan driving
// two concurrent Rubick runs reproduces the sequential run exactly,
// including every fault tally (the plan is immutable and the reconfig coin
// is a pure hash, so thread count cannot reorder outcomes).
TEST_F(ParallelDeterminismTest, ConcurrentFaultedRunsMatchSequential) {
  const TraceGenerator gen(cluster_, oracle_);
  TraceOptions opts;
  opts.seed = 7;
  opts.num_jobs = 10;
  opts.window_s = hours(1.0);
  const std::vector<JobSpec> jobs = gen.generate(opts);

  FaultPlanOptions fault_opts;
  fault_opts.reconfig_failure_prob = 0.2;
  const FaultPlan plan = FaultPlan::generate(13, fault_opts, cluster_);
  ASSERT_FALSE(plan.empty());
  SimulationOptions options;
  options.failure.max_reconfig_retries = 2;

  std::map<std::string, double> costs;
  RunContext ctx;
  ctx.store = &store();
  ctx.profiling_cost_s = &costs;
  ctx.options = &options;
  ctx.fault_plan = &plan;
  const Simulator sim(cluster_, oracle_);

  RubickPolicy seq;
  const SimResult ref = sim.run(jobs, seq, ctx);

  ThreadPool pool(2);
  auto fut_a = pool.submit([&] {
    RubickPolicy p;
    return sim.run(jobs, p, ctx);
  });
  auto fut_b = pool.submit([&] {
    RubickPolicy p;
    return sim.run(jobs, p, ctx);
  });
  const SimResult par_a = fut_a.get();
  const SimResult par_b = fut_b.get();

  for (const SimResult* par : {&par_a, &par_b}) {
    EXPECT_EQ(ref.makespan_s, par->makespan_s);
    EXPECT_EQ(ref.scheduling_rounds, par->scheduling_rounds);
    EXPECT_EQ(ref.fault_node_crashes, par->fault_node_crashes);
    EXPECT_EQ(ref.fault_gpu_transients, par->fault_gpu_transients);
    EXPECT_EQ(ref.fault_straggler_episodes, par->fault_straggler_episodes);
    EXPECT_EQ(ref.fault_reconfig_failures, par->fault_reconfig_failures);
    EXPECT_EQ(ref.crash_restarts, par->crash_restarts);
    EXPECT_EQ(ref.degraded_jobs, par->degraded_jobs);
    ASSERT_EQ(ref.jobs.size(), par->jobs.size());
    for (std::size_t i = 0; i < ref.jobs.size(); ++i) {
      EXPECT_EQ(ref.jobs[i].finished, par->jobs[i].finished) << i;
      EXPECT_EQ(ref.jobs[i].jct_s, par->jobs[i].jct_s) << i;
      EXPECT_EQ(ref.jobs[i].crash_restarts, par->jobs[i].crash_restarts) << i;
      EXPECT_EQ(ref.jobs[i].reconfig_failures, par->jobs[i].reconfig_failures)
          << i;
      EXPECT_EQ(ref.jobs[i].degraded, par->jobs[i].degraded) << i;
    }
  }
}

}  // namespace
}  // namespace rubick
