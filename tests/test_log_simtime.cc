// Thread-locality of the JSON-log sim-time stamp (ISSUE 9 satellite).
//
// `set_log_sim_time_s` used to publish through one global atomic, so two
// simulations running concurrently (`rubick_simulate --parallel` seed
// sweeps) raced last-writer-wins and stamped each other's log lines with
// the wrong clock. The stamp is now thread-local: each thread's lines carry
// the time that thread published, and a thread that never published one
// emits no `sim_t_s` at all. Runs under `ctest -L tsan` (ThreadSanitizer
// preset) so a regression back to an unsynchronized global fails as a data
// race even where the value race goes unnoticed.
#include "common/log.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

namespace rubick {
namespace {

std::string json_line(double stamp_s, const std::string& msg) {
  set_log_sim_time_s(stamp_s);
  return detail::format_log_line(LogLevel::kInfo, msg);
}

TEST(LogSimTime, ThreadsStampTheirOwnLines) {
  set_log_format(LogFormat::kJson);
  const int kThreads = 8;
  const int kLines = 200;
  std::vector<std::thread> threads;
  std::vector<int> bad_lines(kThreads, 0);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &bad_lines] {
      const double my_time = 100.0 * (t + 1);
      // json_number renders whole seconds without a fraction: ":100,".
      const std::string expect_frag =
          "\"sim_t_s\":" + std::to_string(100 * (t + 1)) + ",";
      for (int i = 0; i < kLines; ++i) {
        // Every line this thread renders must carry this thread's clock,
        // no matter what the other threads publish meanwhile.
        if (json_line(my_time, "tick").find(expect_frag) == std::string::npos)
          ++bad_lines[t];
      }
      set_log_sim_time_s(-1.0);
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 0; t < kThreads; ++t)
    EXPECT_EQ(bad_lines[t], 0) << "thread " << t << " saw foreign stamps";
  set_log_format(LogFormat::kText);
}

TEST(LogSimTime, FreshThreadHasNoStamp) {
  set_log_format(LogFormat::kJson);
  set_log_sim_time_s(42.0);  // main thread publishes a clock...
  std::string other_line;
  std::thread worker([&other_line] {
    // ...but a thread that never published one must omit the annotation.
    other_line = detail::format_log_line(LogLevel::kInfo, "fresh");
  });
  worker.join();
  EXPECT_EQ(other_line.find("sim_t_s"), std::string::npos) << other_line;
  EXPECT_NE(detail::format_log_line(LogLevel::kInfo, "main")
                .find("\"sim_t_s\":42"),
            std::string::npos);
  set_log_sim_time_s(-1.0);
  set_log_format(LogFormat::kText);
}

TEST(LogSimTime, ClearIsPerThread) {
  set_log_format(LogFormat::kJson);
  set_log_sim_time_s(7.0);
  std::thread worker([] {
    set_log_sim_time_s(9.0);
    set_log_sim_time_s(-1.0);  // worker clears only its own stamp
    EXPECT_EQ(detail::format_log_line(LogLevel::kInfo, "w").find("sim_t_s"),
              std::string::npos);
  });
  worker.join();
  // The main thread's stamp survives the worker's clear.
  EXPECT_NE(
      detail::format_log_line(LogLevel::kInfo, "m").find("\"sim_t_s\":7"),
      std::string::npos);
  set_log_sim_time_s(-1.0);
  set_log_format(LogFormat::kText);
}

}  // namespace
}  // namespace rubick
