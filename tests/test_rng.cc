#include "common/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace rubick {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next_u64() == b.next_u64()) ++equal;
  EXPECT_LT(equal, 3);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformIntCoversInclusiveRange) {
  Rng rng(9);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = rng.uniform_int(2, 5);
    EXPECT_GE(v, 2);
    EXPECT_LE(v, 5);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 4u);
}

TEST(Rng, NormalHasRoughlyCorrectMoments) {
  Rng rng(11);
  double sum = 0.0, sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(2.0, 3.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.1);
  EXPECT_NEAR(std::sqrt(var), 3.0, 0.1);
}

TEST(Rng, LognormalIsPositive) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) EXPECT_GT(rng.lognormal(0.0, 0.5), 0.0);
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng(17);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(4.0);
  EXPECT_NEAR(sum / n, 0.25, 0.02);
}

TEST(Rng, WeightedIndexFollowsWeights) {
  Rng rng(19);
  const double w[] = {1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 10000; ++i) ++counts[rng.weighted_index(w, 3)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.35);
}

TEST(Rng, ForkDecorrelatesByTag) {
  Rng parent1(42), parent2(42);
  Rng fa = parent1.fork("a");
  Rng fb = parent2.fork("b");
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (fa.next_u64() == fb.next_u64()) ++equal;
  EXPECT_LT(equal, 3);
}

TEST(Rng, HashSeedStableAndSaltSensitive) {
  EXPECT_EQ(hash_seed("model-x"), hash_seed("model-x"));
  EXPECT_NE(hash_seed("model-x"), hash_seed("model-y"));
  EXPECT_NE(hash_seed("model-x", 1), hash_seed("model-x", 2));
}

}  // namespace
}  // namespace rubick
