// Indexed event engine (DESIGN.md §13): unit tests for the engine data
// structures plus the engine-vs-legacy differential suite. The contract
// under test is byte-identity: SimEngine::kIndexed and kLegacyScan must
// produce the same SimResult (every field, every per-job history entry,
// every timeline sample, bit for bit), the same decision-provenance log
// and the same audited tick stream, fault-free and faulted alike. Every
// differential run here executes under the InvariantAuditor in throw mode
// so a divergence that happens to cancel out in the result still fails at
// the first illegal intermediate state.
#include "sim/event_engine.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "check/invariant_auditor.h"
#include "cluster/cluster.h"
#include "common/units.h"
#include "core/rubick_policy.h"
#include "failure/fault_plan.h"
#include "perf/oracle.h"
#include "provenance/decision_log.h"
#include "provenance/provenance.h"
#include "sim/simulator.h"
#include "telemetry/metrics.h"
#include "telemetry/timeline.h"
#include "trace/job.h"
#include "trace/trace_gen.h"

namespace rubick {
namespace {

// ---------------------------------------------------------------------------
// EventQueue
// ---------------------------------------------------------------------------

SimEvent ev(double t, int job, std::uint64_t version,
            SimEventKind kind = SimEventKind::kCompletion) {
  SimEvent e;
  e.time_s = t;
  e.job = job;
  e.version = version;
  e.kind = kind;
  return e;
}

TEST(EventQueue, PopsInAscendingTimeOrder) {
  EventQueue q;
  q.push(ev(30.0, 0, 1));
  q.push(ev(10.0, 1, 1));
  q.push(ev(20.0, 2, 1));
  EXPECT_EQ(q.size(), 3u);
  EXPECT_EQ(q.top().time_s, 10.0);
  q.pop();
  EXPECT_EQ(q.top().time_s, 20.0);
  q.pop();
  EXPECT_EQ(q.top().time_s, 30.0);
  q.pop();
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, TieBreakIsJobThenVersionThenKind) {
  // Simultaneous events must pop in stable job-index order — the legacy
  // scan's tie-break contract — and within one job ascending version so
  // the freshest entry for a job is examined last (stale drop first).
  EventQueue q;
  q.push(ev(5.0, 2, 1));
  q.push(ev(5.0, 1, 2, SimEventKind::kBackoffExpiry));
  q.push(ev(5.0, 1, 1));
  q.push(ev(5.0, 1, 2, SimEventKind::kCompletion));

  EXPECT_EQ(q.top().job, 1);
  EXPECT_EQ(q.top().version, 1u);
  q.pop();
  EXPECT_EQ(q.top().job, 1);
  EXPECT_EQ(q.top().version, 2u);
  EXPECT_EQ(q.top().kind, SimEventKind::kCompletion);
  q.pop();
  EXPECT_EQ(q.top().job, 1);
  EXPECT_EQ(q.top().kind, SimEventKind::kBackoffExpiry);
  q.pop();
  EXPECT_EQ(q.top().job, 2);
  q.pop();
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, InterleavedPushPopKeepsHeapOrder) {
  EventQueue q;
  for (int i = 0; i < 50; ++i) q.push(ev(50.0 - i, i, 1));
  double prev = -1.0;
  for (int i = 0; i < 25; ++i) {
    EXPECT_GT(q.top().time_s, prev);
    prev = q.top().time_s;
    q.pop();
  }
  q.push(ev(0.5, 99, 1));  // earlier than everything left
  EXPECT_EQ(q.top().job, 99);
  q.pop();
  while (!q.empty()) {
    EXPECT_GT(q.top().time_s, prev);
    prev = q.top().time_s;
    q.pop();
  }
}

// ---------------------------------------------------------------------------
// SortedJobIndex / NodeJobIndex
// ---------------------------------------------------------------------------

TEST(SortedJobIndex, KeepsAscendingOrderAndReportsNoOps) {
  SortedJobIndex idx;
  EXPECT_TRUE(idx.insert(5));
  EXPECT_TRUE(idx.insert(1));
  EXPECT_TRUE(idx.insert(3));
  EXPECT_FALSE(idx.insert(3));  // already present
  EXPECT_EQ(idx.items(), (std::vector<int>{1, 3, 5}));
  EXPECT_TRUE(idx.contains(3));
  EXPECT_FALSE(idx.contains(2));
  EXPECT_TRUE(idx.erase(3));
  EXPECT_FALSE(idx.erase(3));  // already absent
  EXPECT_EQ(idx.items(), (std::vector<int>{1, 5}));
  EXPECT_EQ(idx.size(), 2u);
  idx.clear();
  EXPECT_TRUE(idx.empty());
}

TEST(NodeJobIndex, TracksJobsPerNodeIndependently) {
  NodeJobIndex idx(3);
  idx.add(0, 7);
  idx.add(0, 2);
  idx.add(2, 7);  // same job on a second node (multi-node placement)
  idx.add(0, 2);  // duplicate slice on one node deduplicates
  EXPECT_EQ(idx.jobs_on(0), (std::vector<int>{2, 7}));
  EXPECT_TRUE(idx.jobs_on(1).empty());
  EXPECT_EQ(idx.jobs_on(2), (std::vector<int>{7}));
  idx.remove(0, 7);
  EXPECT_EQ(idx.jobs_on(0), (std::vector<int>{2}));
  EXPECT_EQ(idx.jobs_on(2), (std::vector<int>{7}));  // untouched
  idx.reset(3);
  EXPECT_TRUE(idx.jobs_on(0).empty());
}

// ---------------------------------------------------------------------------
// Engine-vs-legacy differential suite
// ---------------------------------------------------------------------------

// Exhaustive SimResult comparison. Every double is compared with EXPECT_EQ
// (bitwise for any value the simulator can produce): byte-identity, not
// tolerance-identity, is the engine contract.
void expect_identical(const SimResult& a, const SimResult& b) {
  EXPECT_EQ(a.makespan_s, b.makespan_s);
  EXPECT_EQ(a.scheduling_rounds, b.scheduling_rounds);
  EXPECT_EQ(a.reconfig_overhead_gpu_seconds, b.reconfig_overhead_gpu_seconds);
  EXPECT_EQ(a.total_gpu_seconds, b.total_gpu_seconds);
  EXPECT_EQ(a.online_refits, b.online_refits);
  EXPECT_EQ(a.fault_node_crashes, b.fault_node_crashes);
  EXPECT_EQ(a.fault_gpu_transients, b.fault_gpu_transients);
  EXPECT_EQ(a.fault_straggler_episodes, b.fault_straggler_episodes);
  EXPECT_EQ(a.fault_reconfig_failures, b.fault_reconfig_failures);
  EXPECT_EQ(a.crash_restarts, b.crash_restarts);
  EXPECT_EQ(a.degraded_jobs, b.degraded_jobs);

  ASSERT_EQ(a.timeline.size(), b.timeline.size());
  for (std::size_t i = 0; i < a.timeline.size(); ++i) {
    const TimelineSample& sa = a.timeline.samples()[i];
    const TimelineSample& sb = b.timeline.samples()[i];
    EXPECT_EQ(sa.time_s, sb.time_s) << "timeline sample " << i;
    EXPECT_EQ(sa.busy_gpus, sb.busy_gpus) << "timeline sample " << i;
    EXPECT_EQ(sa.total_gpus, sb.total_gpus) << "timeline sample " << i;
    EXPECT_EQ(sa.running_jobs, sb.running_jobs) << "timeline sample " << i;
    EXPECT_EQ(sa.pending_jobs, sb.pending_jobs) << "timeline sample " << i;
  }

  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    const JobResult& ja = a.jobs[i];
    const JobResult& jb = b.jobs[i];
    EXPECT_EQ(ja.spec.id, jb.spec.id) << "job " << i;
    EXPECT_EQ(ja.finished, jb.finished) << "job " << i;
    EXPECT_EQ(ja.crash_restarts, jb.crash_restarts) << "job " << i;
    EXPECT_EQ(ja.reconfig_failures, jb.reconfig_failures) << "job " << i;
    EXPECT_EQ(ja.degraded, jb.degraded) << "job " << i;
    EXPECT_EQ(ja.first_start_s, jb.first_start_s) << "job " << i;
    EXPECT_EQ(ja.finish_s, jb.finish_s) << "job " << i;
    EXPECT_EQ(ja.jct_s, jb.jct_s) << "job " << i;
    EXPECT_EQ(ja.reconfig_count, jb.reconfig_count) << "job " << i;
    EXPECT_EQ(ja.total_active_time_s, jb.total_active_time_s) << "job " << i;
    EXPECT_EQ(ja.gpu_seconds, jb.gpu_seconds) << "job " << i;
    EXPECT_EQ(ja.baseline_throughput, jb.baseline_throughput) << "job " << i;
    EXPECT_EQ(ja.achieved_throughput, jb.achieved_throughput) << "job " << i;
    ASSERT_EQ(ja.history.size(), jb.history.size()) << "job " << i;
    for (std::size_t h = 0; h < ja.history.size(); ++h) {
      EXPECT_EQ(ja.history[h].since_s, jb.history[h].since_s)
          << "job " << i << " history " << h;
      EXPECT_EQ(ja.history[h].gpus, jb.history[h].gpus)
          << "job " << i << " history " << h;
      EXPECT_EQ(ja.history[h].cpus, jb.history[h].cpus)
          << "job " << i << " history " << h;
      EXPECT_EQ(ja.history[h].throughput, jb.history[h].throughput)
          << "job " << i << " history " << h;
      EXPECT_TRUE(ja.history[h].plan == jb.history[h].plan)
          << "job " << i << " history " << h;
    }
  }
}

class SimEngineDiffTest : public ::testing::Test {
 protected:
  SimEngineDiffTest() : oracle_(2025), gen_(cluster_, oracle_) {}

  std::vector<JobSpec> trace(int num_jobs, double window_h,
                             std::uint64_t seed = 7) {
    TraceOptions opts;
    opts.seed = seed;
    opts.num_jobs = num_jobs;
    opts.window_s = hours(window_h);
    return gen_.generate(opts);
  }

  // One audited Rubick run under the given engine; the decision log is
  // drained into `log_out` for cross-engine comparison.
  SimResult run_engine(const std::vector<JobSpec>& jobs, SimEngine engine,
                       const FaultPlan* plan, DecisionLog* log_out) {
    SimulationOptions options;
    options.sim.engine = engine;
    AuditConfig config;
    config.on_violation = ViolationPolicy::kThrow;
    config.check_guarantee = true;
    InvariantAuditor auditor(config);
    RunContext ctx;
    ctx.options = &options;
    ctx.observer = &auditor;
    ctx.fault_plan = plan;
    ProvenanceRecorder recorder;
    RubickPolicy policy;
    policy.set_provenance(&recorder);
    const Simulator sim(cluster_, oracle_);
    const SimResult result = sim.run(jobs, policy, ctx);
    if (log_out != nullptr) {
      log_out->policy = policy.name();
      log_out->rounds = recorder.take_rounds();
    }
    return result;
  }

  void expect_engines_agree(const std::vector<JobSpec>& jobs,
                            const FaultPlan* plan = nullptr,
                            SimResult* indexed_out = nullptr) {
    DecisionLog log_indexed;
    DecisionLog log_legacy;
    const SimResult indexed =
        run_engine(jobs, SimEngine::kIndexed, plan, &log_indexed);
    const SimResult legacy =
        run_engine(jobs, SimEngine::kLegacyScan, plan, &log_legacy);
    expect_identical(indexed, legacy);
    const std::vector<std::string> diffs = diff_logs(log_indexed, log_legacy);
    EXPECT_TRUE(diffs.empty())
        << "decision logs diverge; first: " << diffs.front();
    if (indexed_out != nullptr) *indexed_out = indexed;
  }

  ClusterSpec cluster_;
  GroundTruthOracle oracle_;
  TraceGenerator gen_;
};

TEST_F(SimEngineDiffTest, FaultFreeRunIsByteIdentical) {
  expect_engines_agree(trace(40, 4.0));
}

TEST_F(SimEngineDiffTest, SecondSeedFaultFreeRunIsByteIdentical) {
  expect_engines_agree(trace(25, 2.0, /*seed=*/13));
}

TEST_F(SimEngineDiffTest, FaultedRunIsByteIdentical) {
  // Generated fault weather: crashes, transients and stragglers land
  // wherever the seed puts them, plus a 15% warm-reconfiguration failure
  // rate to exercise the backoff heap.
  FaultPlanOptions fault_opts;
  fault_opts.horizon_s = hours(6.0);
  fault_opts.reconfig_failure_prob = 0.15;
  const FaultPlan plan = FaultPlan::generate(11, fault_opts, cluster_);
  SimResult indexed;
  expect_engines_agree(trace(30, 3.0), &plan, &indexed);
  EXPECT_TRUE(indexed.any_faults());  // the fault machinery actually ran
}

// --- Event-queue edge cases (all engine-vs-legacy, audited). ---

TEST_F(SimEngineDiffTest, SimultaneousCompletionArrivalAndFaultCoalesce) {
  // Pin a completion instant with a solo dry run, then pile an arrival and
  // a node fault onto exactly that timestamp. All three event sources must
  // coalesce into one tick on both engines with identical tie-breaking.
  std::vector<JobSpec> probe = trace(1, 0.01);
  probe[0].submit_time_s = 0.0;
  DecisionLog ignore;
  const SimResult solo =
      run_engine(probe, SimEngine::kIndexed, nullptr, &ignore);
  ASSERT_TRUE(solo.jobs[0].finished);
  const double finish_s = solo.jobs[0].finish_s;
  ASSERT_GT(finish_s, 0.0);

  std::vector<JobSpec> jobs = trace(3, 0.01);
  jobs[0].submit_time_s = 0.0;
  jobs[1].submit_time_s = finish_s;  // arrival == job 0's completion
  jobs[1].model_name = jobs[0].model_name;  // no extra profiling gate
  jobs[2].submit_time_s = finish_s;  // two coincident arrivals
  jobs[2].model_name = jobs[0].model_name;

  std::vector<FaultEvent> events;
  FaultEvent transient;
  transient.time_s = finish_s;  // fault at the same instant
  transient.kind = FaultKind::kGpuTransient;
  transient.node = 0;
  events.push_back(transient);
  const FaultPlan plan = FaultPlan::from_events(1, events, 0.0);
  expect_engines_agree(jobs, &plan);
}

TEST_F(SimEngineDiffTest, BackoffExpiryCoalescesWithUnrelatedRounds) {
  // Every warm reconfiguration fails: jobs cycle through capped exponential
  // backoff while unrelated arrivals/completions keep forcing rounds, so
  // backoff expiries coalesce with (and hide behind) other event kinds.
  const FaultPlan plan = FaultPlan::from_events(9, {}, 1.0);
  SimResult indexed;
  expect_engines_agree(trace(15, 1.0), &plan, &indexed);
  EXPECT_GT(indexed.fault_reconfig_failures, 0);
  EXPECT_GT(indexed.degraded_jobs, 0);  // retries exhausted under prob=1
}

TEST_F(SimEngineDiffTest, StragglerReRatingInvalidatesHeapEntries) {
  // Straggler begin/end on busy nodes re-rates running jobs mid-flight;
  // the engine must treat their old completion entries as stale.
  std::vector<FaultEvent> events;
  for (int node = 0; node < 4; ++node) {
    FaultEvent begin;
    begin.time_s = 600.0 + 100.0 * node;
    begin.kind = FaultKind::kStragglerBegin;
    begin.node = node;
    begin.duration_s = 1200.0;
    begin.severity = 0.4;
    events.push_back(begin);
    FaultEvent end = begin;
    end.time_s = begin.time_s + begin.duration_s;
    end.kind = FaultKind::kStragglerEnd;
    events.push_back(end);
  }
  std::sort(events.begin(), events.end(),
            [](const FaultEvent& a, const FaultEvent& b) {
              return a.time_s < b.time_s;
            });
  const FaultPlan plan = FaultPlan::from_events(3, events, 0.0);

  set_telemetry_enabled(true);
  MetricsRegistry::global().reset_values();
  SimResult indexed;
  expect_engines_agree(trace(20, 1.0), &plan, &indexed);
  EXPECT_EQ(indexed.fault_straggler_episodes, 4);
  // Re-rating bumped versions on live entries, so the next-event query saw
  // stale heap tops and dropped them.
  EXPECT_GT(MetricsRegistry::global().counter_value("sim.stale_events"), 0u);
  EXPECT_GT(MetricsRegistry::global().counter_value("sim.heap_pops"), 0u);
  EXPECT_GT(MetricsRegistry::global().counter_value("sim.index_updates"), 0u);
  set_telemetry_enabled(false);
}

TEST_F(SimEngineDiffTest, PausedJobsAnchorCompletionAtPauseEnd) {
  // Arrivals land while earlier jobs are still inside their launch/reconfig
  // pause (zero effective progress): the next-completion query must anchor
  // at pause_until, not at `now`, on both engines.
  std::vector<JobSpec> jobs = trace(6, 0.02);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    jobs[i].submit_time_s = 5.0 * static_cast<double>(i);  // inside pauses
    jobs[i].model_name = jobs[0].model_name;  // one profiling gate
  }
  expect_engines_agree(jobs);
}

}  // namespace
}  // namespace rubick
