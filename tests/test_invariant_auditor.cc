// Mutation tests for the scheduler sanitizer (src/check): feed the auditor
// deliberately corrupted tick snapshots — states the simulator's own input
// validation would never let a policy produce — and assert each mutation
// trips exactly its targeted invariant. Plus the positive direction: a real
// end-to-end Rubick run under the auditor reports zero violations.
#include "check/invariant_auditor.h"
#include "cluster/cluster.h"
#include "cluster/placement.h"
#include "common/resource.h"
#include "core/audit.h"
#include "core/plan_selector.h"
#include "core/predictor.h"
#include "perf/oracle.h"
#include "perf/perf_store.h"
#include "plan/execution_plan.h"
#include "plan/memory_estimator.h"
#include "trace/job.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/error.h"
#include "common/units.h"
#include "core/rubick_policy.h"
#include "core/sla.h"
#include "sim/simulator.h"
#include "trace/trace_gen.h"

namespace rubick {
namespace {

JobSpec bert_job(int id, int gpus, bool guaranteed = false) {
  JobSpec spec;
  spec.id = id;
  spec.model_name = "BERT";
  spec.requested = ResourceVector{gpus, 4 * gpus, 0};
  spec.global_batch = 32;
  spec.initial_plan = make_dp(gpus);
  spec.target_samples = 5e4;
  spec.guaranteed = guaranteed;
  return spec;
}

Placement on_node(int node, int gpus, int cpus) {
  Placement p;
  p.add({node, gpus, cpus, 0});
  return p;
}

AuditJobState running(const JobSpec& spec, const Placement& placement,
                      const ExecutionPlan& plan, double samples = 100.0,
                      double throughput = 50.0) {
  AuditJobState js;
  js.spec = &spec;
  js.phase = SimJobPhase::kRunning;
  js.placement = &placement;
  js.plan = &plan;
  js.samples_done = samples;
  js.throughput = throughput;
  return js;
}

// Drives the auditor directly with hand-built snapshots, bypassing the
// simulator (whose own assignment validation rejects most corruptions
// before an observer would see them).
class AuditorMutationTest : public ::testing::Test {
 protected:
  AuditorMutationTest() {
    info_.cluster = &cluster_;
    info_.estimator = &estimator_;
    info_.jobs = &specs_;
  }

  std::unique_ptr<InvariantAuditor> counting_auditor(
      AuditConfig config = {}) {
    config.on_violation = ViolationPolicy::kCount;
    auto auditor = std::make_unique<InvariantAuditor>(config);
    auditor->on_run_begin(info_);
    return auditor;
  }

  SimTick tick_at(double t, std::vector<AuditJobState> jobs) {
    SimTick tick;
    tick.now_s = t;
    tick.jobs = std::move(jobs);
    return tick;
  }

  long count(const InvariantAuditor& auditor, Invariant invariant) {
    return auditor.report()
        .violation_counts[static_cast<std::size_t>(invariant)];
  }

  ClusterSpec cluster_;
  MemoryEstimator estimator_;
  std::vector<JobSpec> specs_;
  SimRunInfo info_;
};

TEST_F(AuditorMutationTest, CleanTickReportsNothing) {
  specs_ = {bert_job(0, 4)};
  auto auditor = counting_auditor();
  const Placement p = on_node(0, 4, 8);
  const ExecutionPlan plan = make_dp(4);
  auditor->on_tick(tick_at(10.0, {running(specs_[0], p, plan)}));
  EXPECT_TRUE(auditor->report().clean()) << auditor->report().summary();
  EXPECT_GT(auditor->report().checks_performed, 0);
}

TEST_F(AuditorMutationTest, OverCommittedNodeTripsConservation) {
  // Two jobs both holding all 8 GPUs of node 0: each slice is individually
  // within capacity (so placement validity stays quiet) but their union
  // over-commits the node.
  specs_ = {bert_job(0, 8), bert_job(1, 8)};
  auto auditor = counting_auditor();
  const Placement p0 = on_node(0, 8, 8);
  const Placement p1 = on_node(0, 8, 8);
  const ExecutionPlan plan = make_dp(8);
  auditor->on_tick(tick_at(10.0, {running(specs_[0], p0, plan),
                                 running(specs_[1], p1, plan)}));
  EXPECT_EQ(count(*auditor, Invariant::kResourceConservation), 1);
  EXPECT_EQ(auditor->report().total_violations, 1);
  EXPECT_EQ(auditor->report().violations[0].node_id, 0);
}

TEST_F(AuditorMutationTest, PlanPlacementMismatchTripsPlacementValidity) {
  // 8-worker plan on a 4-GPU placement.
  specs_ = {bert_job(0, 8)};
  auto auditor = counting_auditor();
  const Placement p = on_node(0, 4, 8);
  const ExecutionPlan plan = make_dp(8);
  auditor->on_tick(tick_at(10.0, {running(specs_[0], p, plan)}));
  EXPECT_EQ(count(*auditor, Invariant::kPlacementValidity), 1);
  EXPECT_EQ(auditor->report().total_violations, 1);
}

TEST_F(AuditorMutationTest, SplitTpGroupTripsPlacementValidity) {
  specs_ = {bert_job(0, 8)};
  specs_[0].model_name = "LLaMA-2-7B";
  specs_[0].global_batch = 16;
  auto auditor = counting_auditor();
  Placement split;
  split.add({0, 3, 8, 0});
  split.add({1, 5, 8, 0});
  const ExecutionPlan plan = make_3d(1, 8, 1);
  auditor->on_tick(tick_at(10.0, {running(specs_[0], split, plan)}));
  EXPECT_GE(count(*auditor, Invariant::kPlacementValidity), 1);
  EXPECT_EQ(auditor->report().total_violations,
            count(*auditor, Invariant::kPlacementValidity));
}

TEST_F(AuditorMutationTest, OomPlanTripsPlanFeasibility) {
  // Plain DP for LLaMA-2-7B on one GPU: ~112 GB of states > 80 GB device.
  specs_ = {bert_job(0, 1)};
  specs_[0].model_name = "LLaMA-2-7B";
  specs_[0].global_batch = 16;
  auto auditor = counting_auditor();
  const Placement p = on_node(0, 1, 4);
  const ExecutionPlan plan = make_dp(1, 16);
  auditor->on_tick(tick_at(10.0, {running(specs_[0], p, plan)}));
  EXPECT_EQ(count(*auditor, Invariant::kPlanFeasibility), 1);
  EXPECT_EQ(auditor->report().total_violations, 1);
}

TEST_F(AuditorMutationTest, IllegalPhaseTransitionTripsLifecycle) {
  specs_ = {bert_job(0, 4)};
  specs_[0].target_samples = 200.0;
  auto auditor = counting_auditor();
  const Placement p = on_node(0, 4, 8);
  const ExecutionPlan plan = make_dp(4);

  auditor->on_tick(tick_at(10.0, {running(specs_[0], p, plan, 150.0)}));
  AuditJobState done;
  done.spec = &specs_[0];
  done.phase = SimJobPhase::kFinished;
  done.samples_done = 200.0;
  auditor->on_tick(tick_at(20.0, {done}));
  ASSERT_TRUE(auditor->report().clean()) << auditor->report().summary();

  // Finished -> Running: resurrection is never legal.
  auditor->on_tick(tick_at(30.0, {running(specs_[0], p, plan, 200.0)}));
  EXPECT_EQ(count(*auditor, Invariant::kLifecycle), 1);
  EXPECT_EQ(auditor->report().total_violations, 1);
}

TEST_F(AuditorMutationTest, BackwardsProgressTripsLifecycle) {
  specs_ = {bert_job(0, 4)};
  auto auditor = counting_auditor();
  const Placement p = on_node(0, 4, 8);
  const ExecutionPlan plan = make_dp(4);
  auditor->on_tick(tick_at(10.0, {running(specs_[0], p, plan, 500.0)}));
  auditor->on_tick(tick_at(20.0, {running(specs_[0], p, plan, 400.0)}));
  EXPECT_EQ(count(*auditor, Invariant::kLifecycle), 1);
}

TEST_F(AuditorMutationTest, ThrowPolicyFailsFast) {
  specs_ = {bert_job(0, 8), bert_job(1, 8)};
  AuditConfig config;
  config.on_violation = ViolationPolicy::kThrow;
  InvariantAuditor auditor(config);
  auditor.on_run_begin(info_);
  const Placement p = on_node(0, 8, 8);
  const ExecutionPlan plan = make_dp(8);
  EXPECT_THROW(auditor.on_tick(tick_at(10.0, {running(specs_[0], p, plan),
                                              running(specs_[1], p, plan)})),
               InvariantError);
}

// ---------------------------------------------------------------------
// Fault-injection invariants (7: node availability, 8: failure recovery).
// ---------------------------------------------------------------------

TEST_F(AuditorMutationTest, RunningJobOnDownNodeTripsNodeAvailability) {
  specs_ = {bert_job(0, 4)};
  auto auditor = counting_auditor();
  const Placement p = on_node(0, 4, 8);
  const ExecutionPlan plan = make_dp(4);
  std::vector<char> down(static_cast<std::size_t>(cluster_.num_nodes), 0);

  SimTick ok_tick = tick_at(10.0, {running(specs_[0], p, plan)});
  ok_tick.down_nodes = &down;  // all nodes up: clean
  auditor->on_tick(ok_tick);
  ASSERT_TRUE(auditor->report().clean()) << auditor->report().summary();

  // Node 0 goes down but the job's slice there survives the tick: the
  // eviction the simulator must perform did not happen.
  down[0] = 1;
  SimTick bad_tick = tick_at(20.0, {running(specs_[0], p, plan, 200.0)});
  bad_tick.down_nodes = &down;
  auditor->on_tick(bad_tick);
  EXPECT_EQ(count(*auditor, Invariant::kNodeAvailability), 1);
  EXPECT_EQ(auditor->report().violations[0].node_id, 0);
}

TEST_F(AuditorMutationTest, DownNodeWithoutResidentJobsIsClean) {
  specs_ = {bert_job(0, 4)};
  auto auditor = counting_auditor();
  const Placement p = on_node(1, 4, 8);  // resident on a healthy node
  const ExecutionPlan plan = make_dp(4);
  std::vector<char> down(static_cast<std::size_t>(cluster_.num_nodes), 0);
  down[0] = 1;
  SimTick tick = tick_at(10.0, {running(specs_[0], p, plan)});
  tick.down_nodes = &down;
  auditor->on_tick(tick);
  EXPECT_TRUE(auditor->report().clean()) << auditor->report().summary();
}

TEST_F(AuditorMutationTest, ReconfigFailureRollbackToPendingIsClean) {
  specs_ = {bert_job(0, 4)};
  auto auditor = counting_auditor();
  const Placement p = on_node(0, 4, 8);
  const ExecutionPlan plan = make_dp(4);
  auditor->on_tick(tick_at(10.0, {running(specs_[0], p, plan)}));

  SimFaultNotice notice;
  notice.now_s = 20.0;
  notice.kind = SimFaultNotice::Kind::kReconfigFailure;
  notice.job_id = 0;  // no prior: phase 1 already released the allocation
  auditor->on_fault(notice);

  AuditJobState pending;
  pending.spec = &specs_[0];
  pending.phase = SimJobPhase::kPending;
  pending.samples_done = 100.0;  // progress survives the rollback
  auditor->on_tick(tick_at(20.0, {pending}));
  EXPECT_TRUE(auditor->report().clean()) << auditor->report().summary();
}

TEST_F(AuditorMutationTest, ReconfigFailureExactRestoreIsClean) {
  specs_ = {bert_job(0, 4)};
  auto auditor = counting_auditor();
  const Placement p = on_node(0, 4, 8);
  const ExecutionPlan plan = make_dp(4);
  auditor->on_tick(tick_at(10.0, {running(specs_[0], p, plan)}));

  SimFaultNotice notice;
  notice.now_s = 20.0;
  notice.kind = SimFaultNotice::Kind::kReconfigFailure;
  notice.job_id = 0;
  notice.prior_placement = &p;
  notice.prior_plan = &plan;
  auditor->on_fault(notice);

  // Running with exactly the pre-attempt configuration: valid outcome B.
  auditor->on_tick(tick_at(20.0, {running(specs_[0], p, plan, 150.0)}));
  EXPECT_TRUE(auditor->report().clean()) << auditor->report().summary();
}

TEST_F(AuditorMutationTest, PendingJobHoldingAllocationTripsRecovery) {
  specs_ = {bert_job(0, 4)};
  auto auditor = counting_auditor();
  const Placement p = on_node(0, 4, 8);
  const ExecutionPlan plan = make_dp(4);
  auditor->on_tick(tick_at(10.0, {running(specs_[0], p, plan)}));

  SimFaultNotice notice;
  notice.now_s = 20.0;
  notice.kind = SimFaultNotice::Kind::kReconfigFailure;
  notice.job_id = 0;
  auditor->on_fault(notice);

  // Rolled back to pending but the allocation was never released.
  AuditJobState pending;
  pending.spec = &specs_[0];
  pending.phase = SimJobPhase::kPending;
  pending.placement = &p;
  pending.samples_done = 100.0;
  auditor->on_tick(tick_at(20.0, {pending}));
  EXPECT_EQ(count(*auditor, Invariant::kFailureRecovery), 1);
}

TEST_F(AuditorMutationTest, HalfAppliedConfigurationTripsRecovery) {
  specs_ = {bert_job(0, 4)};
  auto auditor = counting_auditor();
  const Placement p = on_node(0, 4, 8);
  const ExecutionPlan plan = make_dp(4);
  auditor->on_tick(tick_at(10.0, {running(specs_[0], p, plan)}));

  SimFaultNotice notice;
  notice.now_s = 20.0;
  notice.kind = SimFaultNotice::Kind::kReconfigFailure;
  notice.job_id = 0;
  notice.prior_placement = &p;
  notice.prior_plan = &plan;
  auditor->on_fault(notice);

  // Still running, but with the configuration the failed attempt was
  // supposed to install — neither released nor restored.
  const Placement half = on_node(0, 2, 4);
  const ExecutionPlan half_plan = make_dp(2);
  auditor->on_tick(tick_at(20.0, {running(specs_[0], half, half_plan, 150.0)}));
  EXPECT_EQ(count(*auditor, Invariant::kFailureRecovery), 1);

  // The notice is consumed by its follow-up tick: later ticks in the same
  // (now restored) configuration are not re-flagged.
  auditor->on_tick(tick_at(30.0, {running(specs_[0], half, half_plan, 200.0)}));
  EXPECT_EQ(count(*auditor, Invariant::kFailureRecovery), 1);
}

TEST_F(AuditorMutationTest, VanishedJobAfterReconfigFailureTripsRecovery) {
  specs_ = {bert_job(0, 4)};
  auto auditor = counting_auditor();
  const Placement p = on_node(0, 4, 8);
  const ExecutionPlan plan = make_dp(4);
  auditor->on_tick(tick_at(10.0, {running(specs_[0], p, plan)}));

  SimFaultNotice notice;
  notice.now_s = 20.0;
  notice.kind = SimFaultNotice::Kind::kReconfigFailure;
  notice.job_id = 0;
  auditor->on_fault(notice);

  auditor->on_tick(tick_at(20.0, {}));  // the job is simply gone
  EXPECT_EQ(count(*auditor, Invariant::kFailureRecovery), 1);
}

// ---------------------------------------------------------------------
// Performance guarantee: needs a fitted store for baselines / minRes.
// ---------------------------------------------------------------------

class AuditorGuaranteeTest : public AuditorMutationTest {
 protected:
  AuditorGuaranteeTest()
      : oracle_(2025),
        store_(PerfModelStore::profile_models(oracle_, cluster_, {"BERT"})) {
    info_.store = &store_;
  }

  // Picks shrink sizes strictly below the job's minRes reservation; BERT
  // scales well so minRes for an 8-GPU request is (nearly) the full 8.
  ResourceVector min_res_of(const JobSpec& spec) {
    BestPlanPredictor predictor(cluster_, store_, estimator_);
    SlaCalculator sla(predictor, store_, cluster_);
    FullPlanSelector selector;
    return sla.min_res(spec, selector);
  }

  GroundTruthOracle oracle_;
  PerfModelStore store_;
};

TEST_F(AuditorGuaranteeTest, ShrinkingBelowMinTripsGuarantee) {
  specs_ = {bert_job(0, 8, /*guaranteed=*/true)};
  const ResourceVector min_res = min_res_of(specs_[0]);
  ASSERT_GE(min_res.gpus, 3) << "fixture assumes a multi-GPU reservation";
  const int g1 = min_res.gpus > 4 ? 4 : 2;  // below minRes, legal (ramping)
  const int g2 = g1 / 2;                    // shrunk while below: the bug

  AuditConfig config;
  config.check_guarantee = true;
  auto auditor = counting_auditor(config);

  const Placement p1 = on_node(0, g1, 2 * g1);
  const ExecutionPlan plan1 = make_dp(g1);
  auditor->on_tick(tick_at(10.0, {running(specs_[0], p1, plan1)}));
  ASSERT_TRUE(auditor->report().clean()) << auditor->report().summary();

  const Placement p2 = on_node(0, g2, 2 * g2);
  const ExecutionPlan plan2 = make_dp(g2);
  auditor->on_tick(tick_at(20.0, {running(specs_[0], p2, plan2)}));
  EXPECT_EQ(count(*auditor, Invariant::kPerformanceGuarantee), 1);
  EXPECT_EQ(auditor->report().total_violations, 1);
  EXPECT_EQ(auditor->report().violations[0].job_id, 0);
}

TEST_F(AuditorGuaranteeTest, ShrinkFromAboveMinIsSanctioned) {
  // The exact-plan-infeasibility trim legally slides a victim below minRes
  // when the shrink STARTS at or above the reservation; only re-shrinking
  // an already-under-minimum job is a violation.
  specs_ = {bert_job(0, 8, /*guaranteed=*/true)};
  const ResourceVector min_res = min_res_of(specs_[0]);
  ASSERT_GE(min_res.gpus, 3);

  AuditConfig config;
  config.check_guarantee = true;
  auto auditor = counting_auditor(config);

  const Placement p1 = on_node(0, 8, 16);
  const ExecutionPlan plan1 = make_dp(8);
  auditor->on_tick(tick_at(10.0, {running(specs_[0], p1, plan1)}));

  const Placement p2 = on_node(0, 2, 4);
  const ExecutionPlan plan2 = make_dp(2);
  auditor->on_tick(tick_at(20.0, {running(specs_[0], p2, plan2)}));
  EXPECT_TRUE(auditor->report().clean()) << auditor->report().summary();
}

TEST_F(AuditorGuaranteeTest, FittedCurvesAreMonotone) {
  const auto violations = audit_curve_monotonicity(
      cluster_, store_, estimator_, {{"BERT", 32}}, /*max_gpus=*/16);
  EXPECT_TRUE(violations.empty());
}

// ---------------------------------------------------------------------
// Positive direction: a genuine Rubick run is violation-free end to end.
// ---------------------------------------------------------------------

TEST(AuditorEndToEnd, RubickRunIsClean) {
  const ClusterSpec cluster;
  const GroundTruthOracle oracle(2025);
  const TraceGenerator gen(cluster, oracle);
  TraceOptions opts;
  opts.seed = 11;
  opts.num_jobs = 12;
  opts.window_s = hours(1);
  const auto jobs = gen.generate(opts);

  AuditConfig config;
  config.on_violation = ViolationPolicy::kCount;
  config.check_guarantee = true;
  config.check_curves = true;
  config.curve_max_gpus = 16;
  InvariantAuditor auditor(config);

  RubickPolicy policy;
  Simulator sim(cluster, oracle);
  RunContext ctx;
  ctx.observer = &auditor;
  const SimResult result = sim.run(jobs, policy, ctx);

  EXPECT_TRUE(auditor.report().clean()) << auditor.report().summary();
  EXPECT_GT(auditor.report().ticks_observed, 0);
  EXPECT_GT(auditor.report().checks_performed, 0);
  int finished = 0;
  for (const auto& j : result.jobs) finished += j.finished ? 1 : 0;
  EXPECT_EQ(finished, static_cast<int>(jobs.size()));
}

}  // namespace
}  // namespace rubick
