#include "cluster/cluster.h"
#include "cluster/placement.h"
#include "core/plan_selector.h"
#include "core/predictor.h"
#include "model/model_spec.h"
#include "perf/perf_store.h"
#include "plan/memory_estimator.h"

#include <gtest/gtest.h>

#include "model/model_zoo.h"
#include "perf/oracle.h"

namespace rubick {
namespace {

class PredictorTest : public ::testing::Test {
 protected:
  PredictorTest()
      : oracle_(2025),
        store_(PerfModelStore::profile_models(
            oracle_, cluster_,
            {"GPT-2", "BERT", "LLaMA-2-7B", "LLaMA-30B"})),
        predictor_(cluster_, store_, estimator_) {}

  ClusterSpec cluster_;
  GroundTruthOracle oracle_;
  MemoryEstimator estimator_;
  PerfModelStore store_;
  BestPlanPredictor predictor_;
  FullPlanSelector all_;
};

TEST_F(PredictorTest, EnvelopeIsMonotoneInGpus) {
  const ModelSpec& m = find_model("GPT-2");
  double prev = 0.0;
  for (int g = 1; g <= 32; ++g) {
    const double v = predictor_.envelope(m, 16, all_, g, 2 * g);
    EXPECT_GE(v, prev) << g;
    prev = v;
  }
}

TEST_F(PredictorTest, EnvelopeFlatAcrossInvalidCounts) {
  // GPT-2 (b=16): no exact plan uses 7 GPUs (7 divides neither batch nor
  // layer/hidden structure), so the envelope at 7 equals the value at 6.
  const ModelSpec& m = find_model("GPT-2");
  const auto exact7 = predictor_.best_canonical(m, 16, all_, 7, 14);
  EXPECT_FALSE(exact7.feasible);
  EXPECT_DOUBLE_EQ(predictor_.envelope(m, 16, all_, 7, 14),
                   predictor_.envelope(m, 16, all_, 6, 14));
}

TEST_F(PredictorTest, SlopesAreConsistentWithEnvelope) {
  const ModelSpec& m = find_model("BERT");
  for (int g : {1, 2, 4, 8}) {
    const double env_g = predictor_.envelope(m, 32, all_, g, 2 * g);
    const double env_next = predictor_.envelope(m, 32, all_, g + 1, 2 * g);
    const double up = predictor_.gpu_slope_up(m, 32, all_, g, 2 * g);
    // When the very next count improves the envelope, the grid-aware slope
    // equals the adjacent difference; on flat stretches it averages over
    // the jump to the next rise and stays non-negative.
    if (env_next > env_g + 1e-9) {
      EXPECT_NEAR(up, env_next - env_g, 1e-9);
    }
    EXPECT_GE(up, 0.0);
    EXPECT_GE(predictor_.gpu_slope_down(m, 32, all_, g, 2 * g), 0.0);
  }
}

TEST_F(PredictorTest, SlopesBridgeInvalidCounts) {
  // Find a flat stretch of GPT-2's curve and check that the slope up from
  // its start averages the jump to the next rise over the full distance,
  // and the slope down from the rise point mirrors it.
  const ModelSpec& m = find_model("GPT-2");
  int flat_start = 0, rise_at = 0;
  for (int g = 1; g < 32 && rise_at == 0; ++g) {
    const double here = predictor_.envelope(m, 16, all_, g, 16);
    const double next = predictor_.envelope(m, 16, all_, g + 1, 16);
    if (next == here && flat_start == 0) flat_start = g;
    if (flat_start != 0 && next > here) rise_at = g + 1;
  }
  ASSERT_GT(flat_start, 0) << "expected at least one invalid GPU count";
  ASSERT_GT(rise_at, flat_start + 1);
  const double low = predictor_.envelope(m, 16, all_, flat_start, 16);
  const double high = predictor_.envelope(m, 16, all_, rise_at, 16);
  const double per_gpu = (high - low) / (rise_at - flat_start);
  EXPECT_NEAR(predictor_.gpu_slope_up(m, 16, all_, flat_start, 16), per_gpu,
              1e-9);
  EXPECT_NEAR(predictor_.gpu_slope_down(m, 16, all_, rise_at, 16), per_gpu,
              1e-9);
}

TEST_F(PredictorTest, SlopeAtClusterEdgeIsZero) {
  const ModelSpec& m = find_model("BERT");
  EXPECT_DOUBLE_EQ(predictor_.gpu_slope_up(m, 32, all_, 64, 128), 0.0);
  EXPECT_DOUBLE_EQ(predictor_.gpu_slope_down(m, 32, all_, 0, 1), 0.0);
}

TEST_F(PredictorTest, CpuSlopePositiveOnlyWhenOffloadWins) {
  // LLaMA-2-7B on a single GPU can only run ZeRO-Offload -> CPU-sensitive.
  const ModelSpec& llama = find_model("LLaMA-2-7B");
  EXPECT_GT(predictor_.cpu_slope_up(llama, 16, all_, 1, 8), 0.0);
  // BERT at 4 GPUs runs GPU-side plans -> CPU-insensitive in the model.
  const ModelSpec& bert = find_model("BERT");
  EXPECT_NEAR(predictor_.cpu_slope_up(bert, 32, all_, 4, 8), 0.0, 1e-9);
}

TEST_F(PredictorTest, InfeasibleReturnsZero) {
  const ModelSpec& llama30 = find_model("LLaMA-30B");
  const auto p = predictor_.best_canonical(llama30, 16, all_, 1, 8);
  EXPECT_FALSE(p.feasible);
  EXPECT_DOUBLE_EQ(p.throughput, 0.0);
  EXPECT_DOUBLE_EQ(predictor_.envelope(llama30, 16, all_, 8, 16), 0.0);
}

TEST_F(PredictorTest, LargeModelBecomesFeasibleAtScale) {
  const ModelSpec& llama30 = find_model("LLaMA-30B");
  EXPECT_GT(predictor_.envelope(llama30, 16, all_, 32, 64), 0.0);
}

TEST_F(PredictorTest, RankedForPlacementSortedDescending) {
  const ModelSpec& m = find_model("GPT-2");
  Placement p;
  p.add({0, 8, 16, 0});
  const auto& ranked = *predictor_.ranked_for_placement(m, 16, all_, p);
  ASSERT_GT(ranked.size(), 3u);
  for (std::size_t i = 1; i < ranked.size(); ++i)
    EXPECT_GE(ranked[i - 1].throughput, ranked[i].throughput * (1.0 - 1e-9));
}

TEST_F(PredictorTest, RankedFiltersTpGroupsSplitAcrossNodes) {
  const ModelSpec& m = find_model("LLaMA-2-7B");
  Placement split;
  split.add({0, 5, 10, 0});
  split.add({1, 3, 6, 0});
  for (const auto& pred : *predictor_.ranked_for_placement(m, 16, all_, split))
    EXPECT_EQ(pred.plan.tp, 1) << pred.plan.display_name();
}

TEST_F(PredictorTest, BestPlanMatchesOracleRanking) {
  // The fitted model should agree with the oracle about which plan family
  // wins in clear-cut cases (1-GPU LLaMA: offload is the only option).
  const ModelSpec& llama = find_model("LLaMA-2-7B");
  const auto best = predictor_.best_canonical(llama, 16, all_, 1, 8);
  ASSERT_TRUE(best.feasible);
  EXPECT_TRUE(best.plan.uses_offload());
}

TEST_F(PredictorTest, CachingIsConsistent) {
  const ModelSpec& m = find_model("GPT-2");
  const auto a = predictor_.best_canonical(m, 16, all_, 4, 8);
  const auto b = predictor_.best_canonical(m, 16, all_, 4, 8);
  EXPECT_EQ(a.plan, b.plan);
  EXPECT_DOUBLE_EQ(a.throughput, b.throughput);
}

TEST_F(PredictorTest, ZeroResourcesInfeasible) {
  const ModelSpec& m = find_model("GPT-2");
  EXPECT_FALSE(predictor_.best_canonical(m, 16, all_, 0, 8).feasible);
  EXPECT_FALSE(predictor_.best_exact(m, 16, all_, 4, 0, 4, false).feasible);
}

}  // namespace
}  // namespace rubick
