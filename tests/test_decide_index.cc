// Indexed decide phase (DESIGN.md §14): unit tests for the DecideIndex
// data structures plus the decide-engine differential suite. The contract
// under test is byte-identity one layer below the event engine:
// DecideEngine::kIndexed and kLegacyScan must produce identical Assignment
// vectors in any single round, and identical SimResults and decision-
// provenance logs over full simulator runs — fault-free and faulted alike,
// for every ablation variant (Rubick / -E / -R / -N). Differential runs
// execute under the InvariantAuditor in throw mode so a divergence that
// cancels out in the result still fails at the first illegal intermediate
// state.
#include "core/decide_index.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <deque>
#include <memory>
#include <numeric>
#include <random>
#include <string>
#include <utility>
#include <vector>

#include "check/invariant_auditor.h"
#include "cluster/cluster.h"
#include "cluster/placement.h"
#include "common/resource.h"
#include "common/units.h"
#include "core/alloc_state.h"
#include "core/plan_selector.h"
#include "core/predictor.h"
#include "core/rubick_policy.h"
#include "core/scheduler.h"
#include "failure/fault_plan.h"
#include "model/model_zoo.h"
#include "perf/oracle.h"
#include "perf/perf_store.h"
#include "plan/execution_plan.h"
#include "plan/memory_estimator.h"
#include "provenance/decision_log.h"
#include "provenance/provenance.h"
#include "sim/simulator.h"
#include "telemetry/metrics.h"
#include "trace/job.h"
#include "trace/trace_gen.h"

namespace rubick {
namespace {

// ---------------------------------------------------------------------------
// NodeOrderLess / node ranking
// ---------------------------------------------------------------------------

TEST(NodeOrderLess, IsATotalOrderWithIdTieBreak) {
  ClusterSpec cluster;
  cluster.node_speed = {1.0, 1.5, 1.0, 1.5, 1.0, 1.0, 1.0, 1.0};
  AllocState state(cluster, {});
  const NodeOrderLess less{&cluster, &state};
  // Faster first.
  EXPECT_TRUE(less(1, 0));
  EXPECT_FALSE(less(0, 1));
  // Same speed, same free count: ascending id breaks the tie — exactly one
  // of (a<b, b<a) holds for every distinct pair (strict total order).
  EXPECT_TRUE(less(0, 2));
  EXPECT_FALSE(less(2, 0));
  // Emptier free pool wins within a speed class.
  state.take_gpus(/*job=*/1, /*node=*/0, 3);
  EXPECT_TRUE(less(2, 0));
  EXPECT_FALSE(less(0, 2));
}

class DecideIndexTest : public ::testing::Test {
 protected:
  DecideIndexTest()
      : oracle_(2025),
        store_(PerfModelStore::profile_models(oracle_, cluster_, {"GPT-2"})),
        predictor_(cluster_, store_, estimator_) {}

  // A slice of `node` for `job` with one CPU above the 2-per-GPU input
  // pipeline floor, so CPU victim queries have something to take.
  static std::pair<int, Placement> running(int job, int node, int gpus) {
    Placement p;
    p.add(NodeSlice{node, gpus, 2 * gpus + 1, 0});
    return {job, p};
  }

  DecideIndex::JobMeta meta(int job_id) const {
    DecideIndex::JobMeta m;
    m.job_id = job_id;
    m.model = &find_model("GPT-2");
    m.global_batch = m.model->default_global_batch;
    m.selector = &selector_;
    m.baseline = 1.0;
    m.min_res = ResourceVector{1, 2, 0};
    m.guaranteed = false;
    m.frozen = false;
    return m;
  }

  std::unique_ptr<DecideIndex> build_index(AllocState& state,
                                           const std::vector<int>& job_ids) {
    auto index = std::make_unique<DecideIndex>(cluster_, &state, &predictor_,
                                               /*cpu_floor_per_gpu=*/2,
                                               /*victim_heaps=*/true);
    for (const int id : job_ids) index->add_job(meta(id));
    state.set_listener(index.get());
    index->build();
    return index;
  }

  ClusterSpec cluster_;
  GroundTruthOracle oracle_;
  MemoryEstimator estimator_;
  PerfModelStore store_;
  BestPlanPredictor predictor_;
  FullPlanSelector selector_;
};

TEST_F(DecideIndexTest, RankingTracksFreeGpusIncrementally) {
  AllocState state(cluster_, {});
  auto index = build_index(state, {});
  // Homogeneous and empty: ascending node id.
  EXPECT_EQ(index->ranked_nodes(), (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
  // Take GPUs on node 3: it falls to the back; everyone else keeps order.
  state.take_gpus(/*job=*/1, /*node=*/3, 2);
  EXPECT_EQ(index->ranked_nodes(), (std::vector<int>{0, 1, 2, 4, 5, 6, 7, 3}));
  // Node 1 falls below node 3: strict free-count order, id tie-break.
  state.take_gpus(/*job=*/1, /*node=*/1, 5);
  EXPECT_EQ(index->ranked_nodes(), (std::vector<int>{0, 2, 4, 5, 6, 7, 3, 1}));
  // Give everything back: ranking returns to the identity.
  state.give_back_gpus(1, 3, 2);
  state.give_back_gpus(1, 1, 5);
  EXPECT_EQ(index->ranked_nodes(), (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST_F(DecideIndexTest, VictimTieBreakIsFirstRegisteredJob) {
  // Two identical jobs on one node: identical slopes, so the winner must be
  // the FIRST registered (lowest infos index) — the legacy scan's strict-<
  // rule. A third query excluding the winner yields the second job.
  AllocState state(cluster_, {running(1, 0, 2), running(2, 0, 2)});
  auto index = build_index(state, {1, 2});
  EXPECT_EQ(index->gpu_victim(/*node=*/0, /*exclude=*/-1,
                              /*allow_frozen=*/false),
            0);
  // The winner is not consumed: asking again gives the same answer.
  EXPECT_EQ(index->gpu_victim(0, -1, false), 0);
  EXPECT_EQ(index->gpu_victim(0, /*exclude=*/1, false), 1);
  EXPECT_EQ(index->cpu_victim(0, -1, false), 0);
  // No allocations on node 5: no victim.
  EXPECT_EQ(index->gpu_victim(5, -1, false), -1);
}

TEST_F(DecideIndexTest, FrozenJobsAreSkippedUnlessAllowed) {
  AllocState state(cluster_, {running(1, 0, 2), running(2, 0, 2)});
  auto index = build_index(state, {1, 2});
  index->set_frozen(/*idx=*/0, true);
  EXPECT_EQ(index->gpu_victim(0, -1, /*allow_frozen=*/false), 1);
  EXPECT_EQ(index->gpu_victim(0, -1, /*allow_frozen=*/true), 0);
  index->set_frozen(0, false);
  EXPECT_EQ(index->gpu_victim(0, -1, false), 0);
}

TEST_F(DecideIndexTest, StaleEntriesAreLazilyDroppedAfterMutation) {
  AllocState state(cluster_, {running(1, 0, 2), running(2, 1, 4)});
  auto index = build_index(state, {1, 2});
  ASSERT_EQ(index->gpu_victim(0, -1, false), 0);
  // Shrink job 1 to its minimum: its build-time entry is stale (version
  // bump) and its fresh entry is ineligible (g == min_res.gpus), so the
  // query must drain node 0's heap — counting exactly the lazy deletions —
  // and report no victim. Job 2 on node 1 is untouched.
  state.give_back_gpus(1, 0, 1);
  const std::uint64_t before = index->stats().stale_entries;
  EXPECT_EQ(index->gpu_victim(0, -1, false), -1);
  EXPECT_GT(index->stats().stale_entries, before);
  EXPECT_GT(index->stats().heap_pops, 0u);
  EXPECT_EQ(index->gpu_victim(1, -1, false), 1);
  // Release job 1 entirely: nothing left to find anywhere on node 0.
  state.release_job(1);
  EXPECT_EQ(index->gpu_victim(0, -1, false), -1);
}

TEST_F(DecideIndexTest, SlopeMemoServesRepeatReadsWithoutReevaluation) {
  AllocState state(cluster_, {running(1, 0, 2)});
  auto index = build_index(state, {1});
  const double first = index->gpu_down(0);
  const std::uint64_t evals = index->stats().slope_evals;
  EXPECT_EQ(index->gpu_down(0), first);  // memo hit: byte-identical
  EXPECT_EQ(index->stats().slope_evals, evals);
  EXPECT_GT(index->stats().slope_evals_saved, 0u);
  // A mutation invalidates the memo: the next read recomputes.
  state.give_back_gpus(1, 0, 1);
  index->gpu_down(0);
  EXPECT_GT(index->stats().slope_evals, evals);
}

TEST_F(DecideIndexTest, RollbackRestoresVictimAnswersAndRanking) {
  AllocState state(cluster_, {running(1, 0, 2), running(2, 1, 2)});
  auto index = build_index(state, {1, 2});
  const std::vector<int> ranked_before = index->ranked_nodes();
  const int victim_before = index->gpu_victim(0, -1, false);

  // A failed ScheduleJob attempt: snapshot, mutate heavily, restore.
  const auto snap = state.snapshot();
  const std::size_t mark = index->mark();
  state.take_gpus(1, 2, 3);
  state.take_cpus(1, 2, 6);
  state.give_back_gpus(2, 1, 1);
  state.release_job(2);
  state.restore(snap);
  index->rollback(mark);

  EXPECT_EQ(index->ranked_nodes(), ranked_before);
  EXPECT_EQ(index->gpu_victim(0, -1, false), victim_before);
  // The rolled-back take on node 2 must not have left phantom entries.
  EXPECT_EQ(index->gpu_victim(2, -1, false), -1);
  // Job 2's heap answers reflect the restored allocation.
  EXPECT_EQ(index->gpu_victim(1, -1, false), 1);

  // A successful attempt commits: the journal prefix is discarded and
  // later rollbacks cannot cross it.
  const std::size_t mark2 = index->mark();
  state.take_gpus(1, 3, 1);
  index->commit(mark2);
  EXPECT_EQ(index->gpu_victim(3, -1, false), 0);
}

TEST_F(DecideIndexTest, RollbackRepairsRankingAcrossMultipleStaleKeys) {
  // A failed multi-node gang attempt on equal-speed nodes: the restore
  // moves SEVERAL free-GPU keys at once, so a per-node single-key repair
  // (reposition) can park a node against a neighbour whose key is also
  // stale and leave the ranking permanently wrong. Pre-attempt free GPUs:
  // node 2 = 6, node 1 = 5, node 3 = 4 (all other nodes 8).
  AllocState state(cluster_,
                   {running(1, 1, 3), running(2, 2, 2), running(3, 3, 4)});
  auto index = build_index(state, {1, 2, 3, 4});
  const std::vector<int> ranked_before{0, 4, 5, 6, 7, 2, 1, 3};
  ASSERT_EQ(index->ranked_nodes(), ranked_before);

  // Claimant job 4 gang-places 3 GPUs on node 2 and 3 on node 1, then the
  // attempt fails: attempt-state ranking [... 3, 2, 1], restore flips both
  // keys back up simultaneously.
  const auto snap = state.snapshot();
  const std::size_t mark = index->mark();
  state.take_gpus(4, 2, 3);
  state.take_gpus(4, 1, 3);
  EXPECT_EQ(index->ranked_nodes(), (std::vector<int>{0, 4, 5, 6, 7, 3, 2, 1}));
  state.restore(snap);
  index->rollback(mark);
  EXPECT_EQ(index->ranked_nodes(), ranked_before);

  // The rank->position map must be coherent too: a follow-up single-key
  // change repositions from the repaired ranking, not a stale one.
  state.take_gpus(2, 2, 3);  // node 2 free 6 -> 3: falls behind node 3
  EXPECT_EQ(index->ranked_nodes(), (std::vector<int>{0, 4, 5, 6, 7, 1, 3, 2}));
}

TEST_F(DecideIndexTest, RollbackRankingMatchesFreshSortUnderRandomChurn) {
  // Randomized failed attempts: arbitrary take/give-back churn inside a
  // snapshot region must always roll back to exactly the ranking a fresh
  // sort of the restored state produces, with committed drift in between
  // so attempts start from varied base states.
  std::mt19937 rng(1234);
  AllocState state(cluster_, {running(1, 0, 2), running(2, 1, 3),
                              running(3, 2, 4), running(4, 3, 1)});
  auto index = build_index(state, {1, 2, 3, 4});
  std::vector<int> expected(8);
  for (int iter = 0; iter < 50; ++iter) {
    const auto snap = state.snapshot();
    const std::size_t mark = index->mark();
    for (int m = 0; m < 6; ++m) {
      const int job = 1 + static_cast<int>(rng() % 4);
      const int node = static_cast<int>(rng() % 8);
      if (rng() % 2 == 0) {
        const int can = std::min(state.free_gpus(node), 3);
        if (can > 0)
          state.take_gpus(job, node, 1 + static_cast<int>(rng() % can));
      } else {
        const int held = state.job_gpus_on(job, node);
        if (held > 0)
          state.give_back_gpus(job, node, 1 + static_cast<int>(rng() % held));
      }
    }
    state.restore(snap);
    index->rollback(mark);
    std::iota(expected.begin(), expected.end(), 0);
    std::sort(expected.begin(), expected.end(),
              NodeOrderLess{&cluster_, &state});
    ASSERT_EQ(index->ranked_nodes(), expected) << "iter " << iter;

    const int node = static_cast<int>(rng() % 8);
    const std::size_t mark2 = index->mark();
    if (state.free_gpus(node) > 0)
      state.take_gpus(1 + (iter % 4), node, 1);
    index->commit(mark2);
    std::sort(expected.begin(), expected.end(),
              NodeOrderLess{&cluster_, &state});
    ASSERT_EQ(index->ranked_nodes(), expected) << "iter " << iter;
  }
}

TEST_F(DecideIndexTest, ReleaseJobRepairsRankingOneNodeAtATime) {
  // release_job on a job with LIVE GPU slices across several nodes. If all
  // frees landed before the first listener callback, the single-key
  // reposition repair could strand a node: with post-release keys
  // node 2 = 7 > node 1 = 6 > node 3 = 5, repairing node 1 first would
  // stop against node 2 (key 7, still misplaced at the back) and never be
  // revisited, leaving node 1 ranked behind node 3. The AllocListener
  // contract — one node's keys change per notification — rules that out.
  Placement pa;  // released: 3 GPUs on node 1, 3 on node 2
  pa.add(NodeSlice{1, 3, 6, 0});
  pa.add(NodeSlice{2, 3, 6, 0});
  Placement pb;  // stays: pins post-release keys to 6 / 7
  pb.add(NodeSlice{1, 2, 4, 0});
  pb.add(NodeSlice{2, 1, 2, 0});
  Placement pc;  // stays: untouched node 3 at key 5
  pc.add(NodeSlice{3, 3, 6, 0});
  AllocState state(cluster_, {{1, pa}, {2, pb}, {3, pc}});
  auto index = build_index(state, {1, 2, 3});
  // Pre-release free GPUs: node 3 = 5, node 2 = 4, node 1 = 3.
  ASSERT_EQ(index->ranked_nodes(), (std::vector<int>{0, 4, 5, 6, 7, 3, 2, 1}));

  state.release_job(1);
  EXPECT_EQ(index->ranked_nodes(), (std::vector<int>{0, 4, 5, 6, 7, 2, 1, 3}));
  // No phantom entries for the released job: the surviving holders win.
  EXPECT_EQ(index->gpu_victim(1, -1, false), 1);  // job 2
  EXPECT_EQ(index->gpu_victim(2, -1, false), 1);  // job 2
  EXPECT_EQ(index->gpu_victim(3, -1, false), 2);  // job 3
}

// ---------------------------------------------------------------------------
// Single-round engine equivalence (direct Assignment comparison)
// ---------------------------------------------------------------------------

void expect_assignments_equal(const std::vector<Assignment>& a,
                              const std::vector<Assignment>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].job_id, b[i].job_id) << i;
    EXPECT_TRUE(a[i].plan == b[i].plan) << i;
    ASSERT_EQ(a[i].placement.slices.size(), b[i].placement.slices.size()) << i;
    for (std::size_t s = 0; s < a[i].placement.slices.size(); ++s)
      EXPECT_TRUE(a[i].placement.slices[s] == b[i].placement.slices[s])
          << "job " << a[i].job_id << " slice " << s;
  }
}

class DecideEngineRoundTest : public ::testing::Test {
 protected:
  DecideEngineRoundTest()
      : oracle_(2025),
        store_(PerfModelStore::profile_models(
            oracle_, cluster_, {"GPT-2", "BERT", "LLaMA-2-7B"})) {}

  JobSpec make_spec(int id, const std::string& model, int gpus,
                    bool guaranteed) {
    JobSpec spec;
    spec.id = id;
    spec.model_name = model;
    spec.requested = ResourceVector{gpus, 4 * gpus, 0};
    spec.global_batch = find_model(model).default_global_batch;
    spec.initial_plan = make_dp(gpus);
    spec.target_samples = 1e6;
    spec.guaranteed = guaranteed;
    spec.tenant = "t";
    return spec;
  }

  SchedulerInput input_for(const std::deque<JobSpec>& specs,
                           double now = 0.0) const {
    SchedulerInput in;
    in.now = now;
    in.cluster = &cluster_;
    in.models = &store_;
    in.estimator = &estimator_;
    for (const JobSpec& s : specs) {
      JobView v;
      v.spec = &s;
      v.running = false;
      v.plan = s.initial_plan;
      v.remaining_samples = s.target_samples;
      v.queued_since = s.submit_time_s;
      in.jobs.push_back(v);
    }
    return in;
  }

  // Runs the same round through both engines (fresh policies — policies are
  // single-run objects) and returns the indexed assignments.
  std::vector<Assignment> expect_round_identical(const SchedulerInput& input,
                                                 RubickConfig config) {
    config.decide_engine = DecideEngine::kIndexed;
    RubickPolicy indexed(config);
    config.decide_engine = DecideEngine::kLegacyScan;
    RubickPolicy legacy(config);
    const std::vector<Assignment> a = indexed.schedule(input);
    const std::vector<Assignment> b = legacy.schedule(input);
    expect_assignments_equal(a, b);
    return a;
  }

  ClusterSpec cluster_;
  GroundTruthOracle oracle_;
  MemoryEstimator estimator_;
  PerfModelStore store_;
};

TEST_F(DecideEngineRoundTest, ContendedAdmissionRoundIsIdentical) {
  // Demand (14 x 8 = 112 GPUs) far exceeds the 64-GPU cluster: admission
  // order, victim trades and opportunistic starts all fire.
  std::deque<JobSpec> specs;
  const char* models[] = {"GPT-2", "BERT", "LLaMA-2-7B"};
  for (int i = 0; i < 14; ++i)
    specs.push_back(
        make_spec(i + 1, models[i % 3], 8, /*guaranteed=*/i % 2 == 0));
  const std::vector<Assignment> out =
      expect_round_identical(input_for(specs), RubickPolicy::full());
  EXPECT_FALSE(out.empty());
}

TEST_F(DecideEngineRoundTest, SecondRoundWithRunningVictimsIsIdentical) {
  // Round 1 fills the cluster with best-effort jobs; round 2 adds
  // guaranteed arrivals that must shrink them (the victim-heap hot path).
  std::deque<JobSpec> specs;
  for (int i = 0; i < 8; ++i)
    specs.push_back(make_spec(i + 1, i % 2 == 0 ? "GPT-2" : "BERT", 8,
                              /*guaranteed=*/false));
  RubickConfig config = RubickPolicy::full();
  config.decide_engine = DecideEngine::kIndexed;
  RubickPolicy warmup(config);
  const std::vector<Assignment> round1 = warmup.schedule(input_for(specs));
  ASSERT_FALSE(round1.empty());

  for (int i = 0; i < 4; ++i)
    specs.push_back(
        make_spec(100 + i, "LLaMA-2-7B", 8, /*guaranteed=*/true));
  SchedulerInput in = input_for(specs, /*now=*/600.0);
  for (const Assignment& a : round1) {
    for (JobView& v : in.jobs) {
      if (v.spec->id != a.job_id) continue;
      v.running = true;
      v.placement = a.placement;
      v.plan = a.plan;
      v.total_active_time_s = 3600.0;  // long-running: passes the gate
      break;
    }
  }
  expect_round_identical(in, RubickPolicy::full());
}

TEST_F(DecideEngineRoundTest, AblationVariantsAreIdenticalPerRound) {
  std::deque<JobSpec> specs;
  for (int i = 0; i < 10; ++i)
    specs.push_back(make_spec(i + 1, i % 2 == 0 ? "BERT" : "GPT-2", 8,
                              /*guaranteed=*/i < 5));
  for (const RubickConfig& config :
       {RubickPolicy::full(), RubickPolicy::plans_only(),
        RubickPolicy::resources_only(), RubickPolicy::neither()}) {
    expect_round_identical(input_for(specs), config);
  }
}

// ---------------------------------------------------------------------------
// Full-simulation differential suite (engine-vs-legacy, audited)
// ---------------------------------------------------------------------------

class DecideEngineSimTest : public ::testing::Test {
 protected:
  DecideEngineSimTest() : oracle_(2025), gen_(cluster_, oracle_) {}

  std::vector<JobSpec> trace(int num_jobs, double window_h,
                             std::uint64_t seed = 7) {
    TraceOptions opts;
    opts.seed = seed;
    opts.num_jobs = num_jobs;
    opts.window_s = hours(window_h);
    return gen_.generate(opts);
  }

  SimResult run_engine(const std::vector<JobSpec>& jobs, RubickConfig config,
                       DecideEngine engine, const FaultPlan* plan,
                       DecisionLog* log_out) {
    config.decide_engine = engine;
    AuditConfig audit;
    audit.on_violation = ViolationPolicy::kThrow;
    audit.check_guarantee = true;
    InvariantAuditor auditor(audit);
    SimulationOptions options;
    RunContext ctx;
    ctx.options = &options;
    ctx.observer = &auditor;
    ctx.fault_plan = plan;
    ProvenanceRecorder recorder;
    RubickPolicy policy(config);
    policy.set_provenance(&recorder);
    const Simulator sim(cluster_, oracle_);
    const SimResult result = sim.run(jobs, policy, ctx);
    if (log_out != nullptr) {
      log_out->policy = policy.name();
      log_out->rounds = recorder.take_rounds();
    }
    return result;
  }

  void expect_engines_agree(const std::vector<JobSpec>& jobs,
                            RubickConfig config = RubickPolicy::full(),
                            const FaultPlan* plan = nullptr,
                            SimResult* indexed_out = nullptr) {
    DecisionLog log_indexed;
    DecisionLog log_legacy;
    const SimResult indexed =
        run_engine(jobs, config, DecideEngine::kIndexed, plan, &log_indexed);
    const SimResult legacy =
        run_engine(jobs, config, DecideEngine::kLegacyScan, plan, &log_legacy);
    // SimResult equality via the decision log would be indirect; the
    // makespan + per-job comparison below is the same contract
    // test_sim_engine enforces for the event engine, reused here at the
    // decide layer. Doubles compare with EXPECT_EQ: byte-identity, not
    // tolerance-identity.
    EXPECT_EQ(indexed.makespan_s, legacy.makespan_s);
    EXPECT_EQ(indexed.scheduling_rounds, legacy.scheduling_rounds);
    EXPECT_EQ(indexed.reconfig_overhead_gpu_seconds,
              legacy.reconfig_overhead_gpu_seconds);
    EXPECT_EQ(indexed.total_gpu_seconds, legacy.total_gpu_seconds);
    ASSERT_EQ(indexed.jobs.size(), legacy.jobs.size());
    for (std::size_t i = 0; i < indexed.jobs.size(); ++i) {
      const JobResult& ja = indexed.jobs[i];
      const JobResult& jb = legacy.jobs[i];
      EXPECT_EQ(ja.spec.id, jb.spec.id) << "job " << i;
      EXPECT_EQ(ja.finished, jb.finished) << "job " << i;
      EXPECT_EQ(ja.first_start_s, jb.first_start_s) << "job " << i;
      EXPECT_EQ(ja.finish_s, jb.finish_s) << "job " << i;
      EXPECT_EQ(ja.jct_s, jb.jct_s) << "job " << i;
      EXPECT_EQ(ja.reconfig_count, jb.reconfig_count) << "job " << i;
      EXPECT_EQ(ja.gpu_seconds, jb.gpu_seconds) << "job " << i;
      ASSERT_EQ(ja.history.size(), jb.history.size()) << "job " << i;
      for (std::size_t h = 0; h < ja.history.size(); ++h) {
        EXPECT_EQ(ja.history[h].since_s, jb.history[h].since_s)
            << "job " << i << " history " << h;
        EXPECT_EQ(ja.history[h].gpus, jb.history[h].gpus)
            << "job " << i << " history " << h;
        EXPECT_EQ(ja.history[h].cpus, jb.history[h].cpus)
            << "job " << i << " history " << h;
        EXPECT_TRUE(ja.history[h].plan == jb.history[h].plan)
            << "job " << i << " history " << h;
      }
    }
    // Decision provenance — including TradeEvent slopes, which expose the
    // slope memo's raw doubles — must serialize identically.
    const std::vector<std::string> diffs = diff_logs(log_indexed, log_legacy);
    EXPECT_TRUE(diffs.empty())
        << "decision logs diverge; first: " << diffs.front();
    if (indexed_out != nullptr) *indexed_out = indexed;
  }

  ClusterSpec cluster_;
  GroundTruthOracle oracle_;
  TraceGenerator gen_;
};

TEST_F(DecideEngineSimTest, FaultFreeRunIsByteIdentical) {
  expect_engines_agree(trace(40, 4.0));
}

TEST_F(DecideEngineSimTest, RandomizedSeedsAreByteIdentical) {
  for (const std::uint64_t seed : {3ull, 21ull, 77ull})
    expect_engines_agree(trace(25, 2.0, seed));
}

TEST_F(DecideEngineSimTest, AblationVariantsAreByteIdentical) {
  const std::vector<JobSpec> jobs = trace(25, 2.0, /*seed=*/13);
  expect_engines_agree(jobs, RubickPolicy::full());
  expect_engines_agree(jobs, RubickPolicy::plans_only());
  expect_engines_agree(jobs, RubickPolicy::resources_only());
  expect_engines_agree(jobs, RubickPolicy::neither());
}

TEST_F(DecideEngineSimTest, FaultedRunIsByteIdentical) {
  // Node crashes, GPU transients, stragglers, plus a 15% reconfiguration
  // failure rate: down-node masks and rollback churn hammer the index's
  // journal discipline.
  FaultPlanOptions fault_opts;
  fault_opts.horizon_s = hours(6.0);
  fault_opts.reconfig_failure_prob = 0.15;
  const FaultPlan plan = FaultPlan::generate(11, fault_opts, cluster_);
  SimResult indexed;
  expect_engines_agree(trace(30, 3.0), RubickPolicy::full(), &plan, &indexed);
  EXPECT_TRUE(indexed.any_faults());
}

TEST_F(DecideEngineSimTest, IndexTelemetryCountersAccumulate) {
  set_telemetry_enabled(true);
  MetricsRegistry::global().reset_values();
  expect_engines_agree(trace(25, 2.0, /*seed=*/5));
  MetricsRegistry& reg = MetricsRegistry::global();
  EXPECT_GT(reg.counter_value("scheduler.victim_heap_pops"), 0u);
  EXPECT_GT(reg.counter_value("scheduler.slope_evals"), 0u);
  EXPECT_GT(reg.counter_value("scheduler.slope_evals_saved"), 0u);
  EXPECT_GT(reg.counter_value("scheduler.victim_stale_entries"), 0u);
  // slope_evals is the denominator that makes slope_evals_saved a hit
  // rate; both must be exported for the ratio to be computable.
  set_telemetry_enabled(false);
}

}  // namespace
}  // namespace rubick
