#include "cluster/cluster.h"
#include "cluster/placement.h"
#include "core/alloc_state.h"
#include "model/model_spec.h"
#include "plan/execution_plan.h"
#include "plan/memory_estimator.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/units.h"
#include "model/model_zoo.h"

namespace rubick {
namespace {

TEST(AllocState, StartsFromFullClusterWhenEmpty) {
  const ClusterSpec spec;
  AllocState state(spec, {});
  for (int n = 0; n < spec.num_nodes; ++n) {
    EXPECT_EQ(state.free_gpus(n), 8);
    EXPECT_EQ(state.free_cpus(n), 96);
    EXPECT_EQ(state.free_memory(n), spec.node.memory_bytes);
  }
}

TEST(AllocState, RegistersRunningJobs) {
  const ClusterSpec spec;
  Placement p;
  p.add({0, 4, 8, gigabytes(100)});
  AllocState state(spec, {{7, p}});
  EXPECT_EQ(state.free_gpus(0), 4);
  EXPECT_EQ(state.free_cpus(0), 88);
  EXPECT_EQ(state.job_gpus(7), 4);
  EXPECT_EQ(state.placement_of(7), p);
}

TEST(AllocState, TakeAndGiveBackRoundtrip) {
  AllocState state(ClusterSpec{}, {});
  state.take_gpus(1, 0, 3);
  state.take_cpus(1, 0, 6);
  EXPECT_EQ(state.job_gpus_on(1, 0), 3);
  EXPECT_EQ(state.free_gpus(0), 5);
  state.give_back_gpus(1, 0, 3);
  state.give_back_cpus(1, 0, 6);
  EXPECT_EQ(state.job_gpus(1), 0);
  EXPECT_EQ(state.free_gpus(0), 8);
}

TEST(AllocState, OverTakeThrows) {
  AllocState state(ClusterSpec{}, {});
  EXPECT_THROW(state.take_gpus(1, 0, 9), InvariantError);
  state.take_gpus(1, 0, 2);
  EXPECT_THROW(state.give_back_gpus(1, 0, 3), InvariantError);
}

TEST(AllocState, ReleaseJobFreesEverything) {
  AllocState state(ClusterSpec{}, {});
  state.take_gpus(5, 0, 2);
  state.take_cpus(5, 1, 4);
  state.release_job(5);
  EXPECT_EQ(state.free_gpus(0), 8);
  EXPECT_EQ(state.free_cpus(1), 96);
  EXPECT_TRUE(state.placement_of(5).empty());
}

TEST(AllocState, SnapshotRestoreRoundtrip) {
  AllocState state(ClusterSpec{}, {});
  state.take_gpus(1, 0, 4);
  const auto snap = state.snapshot();
  state.take_gpus(2, 0, 4);
  state.take_cpus(2, 0, 8);
  state.release_job(1);
  state.restore(snap);
  EXPECT_EQ(state.job_gpus(1), 4);
  EXPECT_EQ(state.job_gpus(2), 0);
  EXPECT_EQ(state.free_gpus(0), 4);
  EXPECT_EQ(state.free_cpus(0), 96);
}

TEST(AllocState, JobNodesListsOnlyOccupiedNodes) {
  AllocState state(ClusterSpec{}, {});
  state.take_gpus(1, 0, 1);
  state.take_gpus(1, 3, 2);
  const auto nodes = state.job_nodes(1);
  EXPECT_EQ(nodes, (std::vector<int>{0, 3}));
}

TEST(AllocState, AllocMemoryDistributesByGpuShare) {
  AllocState state(ClusterSpec{}, {});
  const ModelSpec& model = find_model("GPT-2");
  MemoryEstimator est;
  state.take_gpus(1, 0, 3);
  state.take_gpus(1, 1, 1);
  const ExecutionPlan plan = make_dp(4);
  ASSERT_TRUE(state.alloc_memory(1, model, plan, 16, est));
  const Placement p = state.placement_of(1);
  const std::uint64_t total = est.host_bytes(model, plan);
  EXPECT_EQ(p.total_host_memory(), total);
  // Node 0 has 3 of 4 GPUs => ~75% of the memory.
  EXPECT_NEAR(static_cast<double>(p.slices[0].host_memory_bytes) /
                  static_cast<double>(total),
              0.75, 0.01);
}

TEST(AllocState, AllocMemoryFailsWithoutChangingState) {
  ClusterSpec spec;
  spec.node.memory_bytes = gigabytes(10);  // tiny host memory
  AllocState state(spec, {});
  const ModelSpec& model = find_model("LLaMA-2-7B");
  MemoryEstimator est;
  state.take_gpus(1, 0, 1);
  // ZeRO-Offload needs 14P ~ 98 GB host memory: cannot fit in 10 GB.
  EXPECT_FALSE(
      state.alloc_memory(1, model, make_zero_offload(1, 16, true), 16, est));
  EXPECT_EQ(state.free_memory(0), gigabytes(10));
  EXPECT_EQ(state.placement_of(1).total_host_memory(), 0u);
}

TEST(AllocState, ReleaseMemoryKeepsGpus) {
  AllocState state(ClusterSpec{}, {});
  const ModelSpec& model = find_model("BERT");
  MemoryEstimator est;
  state.take_gpus(1, 0, 2);
  ASSERT_TRUE(state.alloc_memory(1, model, make_dp(2), 32, est));
  state.release_memory(1);
  EXPECT_EQ(state.job_gpus(1), 2);
  EXPECT_EQ(state.placement_of(1).total_host_memory(), 0u);
  EXPECT_EQ(state.free_memory(0), ClusterSpec{}.node.memory_bytes);
}

}  // namespace
}  // namespace rubick
