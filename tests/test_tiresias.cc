#include "baselines/tiresias.h"
#include "cluster/cluster.h"
#include "common/resource.h"
#include "perf/oracle.h"
#include "plan/execution_plan.h"
#include "trace/job.h"

#include <gtest/gtest.h>

#include "common/units.h"
#include "model/model_zoo.h"
#include "sim/simulator.h"
#include "trace/trace_gen.h"

namespace rubick {
namespace {

JobSpec make_job(int id, const std::string& model, int gpus, double submit,
                 double target) {
  JobSpec spec;
  spec.id = id;
  spec.model_name = model;
  spec.requested = ResourceVector{gpus, 4 * gpus, 0};
  spec.global_batch = find_model(model).default_global_batch;
  spec.initial_plan = make_dp(gpus);
  spec.submit_time_s = submit;
  spec.target_samples = target;
  return spec;
}

class TiresiasTest : public ::testing::Test {
 protected:
  TiresiasTest() : oracle_(2025) {}
  ClusterSpec cluster_;
  GroundTruthOracle oracle_;
};

TEST_F(TiresiasTest, CompletesATrace) {
  const TraceGenerator gen(cluster_, oracle_);
  TraceOptions opts;
  opts.seed = 12;
  opts.num_jobs = 40;
  opts.window_s = hours(2);
  TiresiasPolicy tiresias;
  Simulator sim(cluster_, oracle_);
  const SimResult r = sim.run(gen.generate(opts), tiresias);
  for (const auto& j : r.jobs) EXPECT_TRUE(j.finished) << j.spec.id;
}

TEST_F(TiresiasTest, NeverReconfiguresPlans) {
  const TraceGenerator gen(cluster_, oracle_);
  TraceOptions opts;
  opts.seed = 13;
  opts.num_jobs = 30;
  opts.window_s = hours(2);
  const auto jobs = gen.generate(opts);
  TiresiasPolicy tiresias;
  Simulator sim(cluster_, oracle_);
  const SimResult r = sim.run(jobs, tiresias);
  // Preemptions may relaunch jobs (counted as reconfigurations by the
  // simulator) but the PLAN is always the submitted one, which we can
  // verify through the achieved throughput matching the baseline
  // configuration up to allocation context.
  for (const auto& j : r.jobs) EXPECT_TRUE(j.finished);
}

TEST_F(TiresiasTest, ShortNewcomerPreemptsLongRunner) {
  // A long job saturates the cluster; a short job arriving later must
  // finish well before the long one (LAS gives fresh jobs priority).
  std::vector<JobSpec> jobs;
  jobs.push_back(make_job(0, "BERT", 32, 0.0, 3.0e7));     // very long
  jobs.push_back(make_job(1, "BERT", 32, 1200.0, 2.0e5));  // short, late
  TiresiasPolicy tiresias;
  Simulator sim(cluster_, oracle_);
  const SimResult r = sim.run(jobs, tiresias);
  ASSERT_TRUE(r.jobs[0].finished && r.jobs[1].finished);
  EXPECT_LT(r.jobs[1].finish_s, r.jobs[0].finish_s);
  // And it started near its submission, not after the long job drained.
  EXPECT_LT(r.jobs[1].first_start_s - r.jobs[1].spec.submit_time_s, 600.0);
}

TEST_F(TiresiasTest, HighQueueBeatsLowQueueRegardlessOfArrival) {
  // Once a job crosses the service threshold it demotes to the low queue
  // and newly arrived jobs run first even with later submit times.
  std::vector<JobSpec> jobs;
  jobs.push_back(make_job(0, "GPT-2", 64, 0.0, 2.0e6));
  jobs[0].initial_plan = make_3d(8, 8, 1);
  jobs.push_back(make_job(1, "GPT-2", 64, hours(10), 5.0e4));
  jobs[1].initial_plan = make_3d(8, 8, 1);
  TiresiasPolicy tiresias(/*queue_threshold_gpu_s=*/hours(1));
  Simulator sim(cluster_, oracle_);
  const SimResult r = sim.run(jobs, tiresias);
  ASSERT_TRUE(r.jobs[1].finished);
  EXPECT_LT(r.jobs[1].first_start_s - r.jobs[1].spec.submit_time_s, 600.0);
}

TEST_F(TiresiasTest, PolicyName) {
  EXPECT_EQ(TiresiasPolicy().name(), "Tiresias");
}

}  // namespace
}  // namespace rubick
