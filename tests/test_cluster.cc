#include "cluster/cluster.h"
#include "cluster/placement.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/units.h"

namespace rubick {
namespace {

Placement simple_placement(int node, int gpus, int cpus,
                           std::uint64_t mem = 0) {
  Placement p;
  p.add({node, gpus, cpus, mem});
  return p;
}

TEST(Cluster, DefaultTopologyMatchesPaperTestbed) {
  const Cluster c;
  EXPECT_EQ(c.num_nodes(), 8);
  EXPECT_EQ(c.capacity_total().gpus, 64);
  EXPECT_EQ(c.capacity_total().cpus, 8 * 96);
  EXPECT_EQ(c.spec().node.gpu_memory_bytes, gigabytes(80));
}

TEST(Cluster, AllocateReducesFreeAndReleaseRestores) {
  Cluster c;
  const Placement p = simple_placement(0, 4, 8, gigabytes(100));
  c.allocate(p);
  EXPECT_EQ(c.node(0).free.gpus, 4);
  EXPECT_EQ(c.node(0).free.cpus, 88);
  c.release(p);
  EXPECT_EQ(c.free_total(), c.capacity_total());
}

TEST(Cluster, OverAllocationThrows) {
  Cluster c;
  EXPECT_THROW(c.allocate(simple_placement(0, 9, 0)), InvariantError);
  c.allocate(simple_placement(0, 8, 0));
  EXPECT_THROW(c.allocate(simple_placement(0, 1, 0)), InvariantError);
}

TEST(Cluster, ReleaseOverflowThrows) {
  Cluster c;
  EXPECT_THROW(c.release(simple_placement(0, 1, 0)), InvariantError);
}

TEST(Cluster, CanAllocateChecksEveryDimension) {
  Cluster c;
  EXPECT_TRUE(c.can_allocate(simple_placement(0, 8, 96)));
  EXPECT_FALSE(c.can_allocate(simple_placement(0, 8, 97)));
  EXPECT_FALSE(c.can_allocate(simple_placement(0, 0, 0, gigabytes(1601))));
  EXPECT_FALSE(c.can_allocate(simple_placement(99, 1, 0)));
}

TEST(Cluster, MultiSlicePlacements) {
  Cluster c;
  Placement p;
  p.add({0, 8, 16, 0});
  p.add({1, 8, 16, 0});
  c.allocate(p);
  EXPECT_EQ(c.free_total().gpus, 48);
  c.release(p);
  EXPECT_EQ(c.free_total().gpus, 64);
}

TEST(Cluster, BadNodeIdThrows) {
  const Cluster c;
  EXPECT_THROW(c.node(-1), InvariantError);
  EXPECT_THROW(c.node(8), InvariantError);
}

TEST(Placement, AddMergesSameNode) {
  Placement p;
  p.add({2, 2, 4, 10});
  p.add({2, 1, 2, 5});
  ASSERT_EQ(p.slices.size(), 1u);
  EXPECT_EQ(p.slices[0].gpus, 3);
  EXPECT_EQ(p.slices[0].cpus, 6);
  EXPECT_EQ(p.slices[0].host_memory_bytes, 15u);
}

TEST(Placement, SlicesSortedByNode) {
  Placement p;
  p.add({3, 1, 0, 0});
  p.add({1, 1, 0, 0});
  p.add({2, 1, 0, 0});
  EXPECT_EQ(p.slices[0].node, 1);
  EXPECT_EQ(p.slices[1].node, 2);
  EXPECT_EQ(p.slices[2].node, 3);
}

TEST(Placement, TotalsAndMinSlice) {
  Placement p;
  p.add({0, 6, 12, gigabytes(10)});
  p.add({1, 2, 4, gigabytes(5)});
  EXPECT_EQ(p.total_gpus(), 8);
  EXPECT_EQ(p.total_cpus(), 16);
  EXPECT_EQ(p.total_host_memory(), gigabytes(15));
  EXPECT_EQ(p.min_slice_gpus(), 2);
  EXPECT_TRUE(p.multi_node());
}

TEST(Placement, MinSliceIgnoresGpulessSlices) {
  Placement p;
  p.add({0, 4, 8, 0});
  p.add({1, 0, 8, 0});
  EXPECT_EQ(p.min_slice_gpus(), 4);
}

TEST(Placement, EmptyPlacement) {
  const Placement p;
  EXPECT_TRUE(p.empty());
  EXPECT_EQ(p.total_gpus(), 0);
  EXPECT_EQ(p.min_slice_gpus(), 0);
  EXPECT_FALSE(p.multi_node());
}

}  // namespace
}  // namespace rubick
