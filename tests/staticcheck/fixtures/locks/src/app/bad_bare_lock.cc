#include "app/counter.h"

namespace fx {
void Counter::bump() {
  mu_.lock();
  mu_.unlock();
}
}  // namespace fx
