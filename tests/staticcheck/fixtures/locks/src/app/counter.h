#pragma once
#include <cstdint>
#include <mutex>

namespace fx {
class Counter {
 public:
  void bump();
  std::uint64_t read() const;

 private:
  mutable std::mutex mu_;
  std::uint64_t value_ = 0;  // guarded by mu_
};
}  // namespace fx
