#include "app/counter.h"

namespace fx {
void Counter::bump() {
  std::lock_guard<std::mutex> lock(mu_);
  ++value_;
}

std::uint64_t Counter::read() const {
  std::lock_guard<std::mutex> lock(mu_);
  return value_;
}
}  // namespace fx
