#include "app/counter.h"

namespace fx {
std::uint64_t Counter::read() const { return value_; }
}  // namespace fx
