#pragma once
namespace fx {
constexpr double hours(double h) { return h * 3600.0; }
void run_window(double window_s, int jobs);
}  // namespace fx
