#include "app/timeconv.h"

namespace fx {
void bad_call(double window_hours) { run_window(window_hours, 3); }
}  // namespace fx
