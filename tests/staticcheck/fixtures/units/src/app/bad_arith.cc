namespace fx {
double bad_arith(double cap_gb, double used_bytes) {
  return used_bytes + cap_gb;
}
}  // namespace fx
