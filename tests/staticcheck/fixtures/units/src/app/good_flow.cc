#include "app/timeconv.h"

namespace fx {
double good_flow(double deadline_hours, double cap_gb, double used_bytes) {
  double deadline_s = hours(deadline_hours);
  run_window(deadline_s, 2);
  const double cap_bytes = cap_gb * 1e9;
  const double headroom_bytes = cap_bytes - used_bytes;
  return headroom_bytes > 0.0 ? deadline_s : 0.0;
}
}  // namespace fx
