namespace fx {
double bad_suffix() {
  double queue_delay = 1.5;
  return queue_delay;
}
}  // namespace fx
