#include "app/timeconv.h"

namespace fx {
double bad_assign(double deadline_hours) {
  double deadline_s = 0.0;
  deadline_s = deadline_hours;
  run_window(deadline_s, 1);
  return deadline_s;
}
}  // namespace fx
