#pragma once
namespace fx {
struct Base { int v = 0; };
}  // namespace fx
