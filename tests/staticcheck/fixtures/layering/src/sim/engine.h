#pragma once
#include "common/base.h"
namespace fx {
struct Engine { Base b; };
}  // namespace fx
