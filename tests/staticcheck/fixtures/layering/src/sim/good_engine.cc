#include "sim/engine.h"

#include "common/base.h"

namespace fx {
int good_uses_base() { return Engine{}.b.v + Base{}.v; }
}  // namespace fx
