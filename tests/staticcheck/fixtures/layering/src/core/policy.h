#pragma once
#include "common/base.h"
namespace fx {
struct Policy { Base b; };
}  // namespace fx
