#include "core/policy.h"

#include "sim/engine.h"

namespace fx {
int bad_uses_engine() { return Engine{}.b.v + Policy{}.b.v; }
}  // namespace fx
