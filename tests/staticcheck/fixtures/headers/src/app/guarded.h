#pragma once
namespace fx {
struct Guarded { int v = 0; };
}  // namespace fx
