namespace fx {
struct NoGuard { int v = 0; };
}  // namespace fx
