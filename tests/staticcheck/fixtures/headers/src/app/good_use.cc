#include "app/deep.h"
#include "app/widget.h"

namespace fx {
int good_use() { return Deep{}.w.v + Widget{}.v; }
}  // namespace fx
