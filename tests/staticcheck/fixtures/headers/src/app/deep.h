#pragma once
#include "app/widget.h"
namespace fx {
struct Deep { Widget w; };
}  // namespace fx
