#pragma once
namespace fx {
struct Widget { int v = 0; };
}  // namespace fx
