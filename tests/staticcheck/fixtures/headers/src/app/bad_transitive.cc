#include "app/deep.h"

namespace fx {
int bad_transitive() { return Deep{}.w.v + Widget{}.v; }
}  // namespace fx
