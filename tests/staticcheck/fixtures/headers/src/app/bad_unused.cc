#include "app/guarded.h"
#include "app/widget.h"

namespace fx {
int bad_unused() { return Widget{}.v; }
}  // namespace fx
