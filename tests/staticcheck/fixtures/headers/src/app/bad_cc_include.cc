#include "app/good_use.cc"
