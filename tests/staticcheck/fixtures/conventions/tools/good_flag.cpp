namespace fx {
struct CliFlags2 {
  int get_int(const char* name, int def) { (void)name; return def; }
};
int good_flag(CliFlags2& flags) { return flags.get_int("max-retries", 3); }
}  // namespace fx
