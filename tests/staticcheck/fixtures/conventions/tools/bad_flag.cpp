namespace fx {
struct CliFlags {
  int get_int(const char* name, int def) { (void)name; return def; }
};
int bad_flag(CliFlags& flags) { return flags.get_int("max_retries", 3); }
}  // namespace fx
