#include <random>

namespace fx {
int bad_random() {
  std::mt19937 gen(7);
  return static_cast<int>(gen());
}
}  // namespace fx
