#include <iostream>

namespace fx {
void bad_print() { std::cout << "hello\n"; }
}  // namespace fx
