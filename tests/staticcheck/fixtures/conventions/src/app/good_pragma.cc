#include <random>

namespace fx {
int good_pragma() {
  // staticcheck:allow(determinism) -- fixture: documents the pragma escape
  std::mt19937 gen(7);
  return static_cast<int>(gen());
}
}  // namespace fx
