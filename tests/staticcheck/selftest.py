#!/usr/bin/env python3
"""Self-test for rubick_staticcheck (ctest -R staticcheck_selftest).

Pytest-free stdlib runner over the fixture corpus in
tests/staticcheck/fixtures/: every `bad_*` fixture file must trip exactly
the rule(s) listed for it below, every other fixture file must come back
clean, and two mutation tests prove the layering pass actually reads both
the tree and layers.toml:

  * a seeded `core -> sim` include against the REAL layers.toml is
    rejected;
  * deleting a declared edge from a copy of the real layers.toml makes the
    (clean) real tree fail the layering pass.
"""

from __future__ import annotations

import pathlib
import shutil
import sys
import tempfile

REPO = pathlib.Path(__file__).resolve().parent.parent.parent
FIXTURES = REPO / "tests" / "staticcheck" / "fixtures"
sys.path.insert(0, str(REPO / "tools" / "staticcheck"))

import model  # noqa: E402
import pass_conventions  # noqa: E402
import pass_headers  # noqa: E402
import pass_layering  # noqa: E402
import pass_locks  # noqa: E402
import pass_units  # noqa: E402

# fixture dir -> (roots, {rel path -> set of rules it must trip}).
# Fixture files not listed must be clean.
EXPECTATIONS = {
    "layering": (["src"], {
        "src/core/bad_policy.cc": {"layering"},
    }),
    "headers": (["src"], {
        "src/app/noguard.h": {"header-guard"},
        "src/app/bad_cc_include.cc": {"header-include-cc"},
        "src/app/bad_unused.cc": {"unused-include"},
        "src/app/bad_transitive.cc": {"missing-include"},
    }),
    "units": (["src"], {
        "src/app/bad_flow.cc": {"units-flow"},
        "src/app/bad_arith.cc": {"units-flow"},
        "src/app/bad_call.cc": {"units-flow"},
        "src/app/bad_suffix.cc": {"units-suffix"},
    }),
    "conventions": (["src", "tools"], {
        "src/app/bad_random.cc": {"determinism"},
        "src/app/bad_print.cc": {"logging"},
        # An undocumented pragma is itself a finding AND does not suppress.
        "src/app/bad_pragma.cc": {"pragma-syntax", "determinism"},
        "tools/bad_flag.cpp": {"cli-flags"},
    }),
    "locks": (["src"], {
        "src/app/bad_bare_lock.cc": {"lock-guard"},
        "src/app/bad_unguarded.cc": {"guarded-by"},
    }),
}

failures: list = []


def check(cond: bool, what: str) -> None:
    status = "ok" if cond else "FAIL"
    print(f"  [{status}] {what}")
    if not cond:
        failures.append(what)


def run_passes(repo: pathlib.Path, roots, layers: pathlib.Path | None):
    project = model.Project(repo, roots, compile_commands=None, exclude=())
    findings = []
    for sf in project.files.values():
        findings.extend(sf.pragma_findings)
    if layers is not None:
        findings.extend(
            pass_layering.run(project, pass_layering.LayerConfig(layers)))
    findings.extend(pass_headers.run(project))
    findings.extend(pass_units.run(project))
    findings.extend(pass_conventions.run(project))
    findings.extend(pass_locks.run(project))
    return findings


def fixture_tests() -> None:
    for name, (roots, expected) in sorted(EXPECTATIONS.items()):
        print(f"fixture: {name}")
        fixture = FIXTURES / name
        layers = fixture / "layers.toml"
        findings = run_passes(fixture, roots,
                              layers if layers.exists() else None)
        tripped: dict = {}
        for f in findings:
            tripped.setdefault(f.rel, set()).add(f.rule)
        for rel, rules in sorted(expected.items()):
            check(tripped.get(rel) == rules,
                  f"{rel} trips exactly {sorted(rules)} "
                  f"(got {sorted(tripped.get(rel, set()))})")
        for rel in sorted(set(tripped) - set(expected)):
            check(False, f"{rel} expected clean but tripped "
                         f"{sorted(tripped[rel])}")


def mutation_seeded_core_to_sim() -> None:
    """A core -> sim include must be rejected under the REAL layers.toml."""
    print("mutation: seeded core -> sim include (real layers.toml)")
    with tempfile.TemporaryDirectory() as tmp:
        root = pathlib.Path(tmp)
        (root / "src" / "core").mkdir(parents=True)
        (root / "src" / "sim").mkdir(parents=True)
        (root / "src" / "sim" / "simulator.h").write_text(
            "#pragma once\nnamespace fx { struct Simulator { int v; }; }\n")
        (root / "src" / "core" / "seeded.cc").write_text(
            '#include "sim/simulator.h"\n'
            "namespace fx { int f() { return Simulator{0}.v; } }\n")
        findings = run_passes(root, ["src"],
                              REPO / "tools" / "staticcheck" / "layers.toml")
        hits = [f for f in findings
                if f.rule == "layering" and f.rel == "src/core/seeded.cc"]
        check(len(hits) == 1, "seeded core -> sim include is rejected")
        check(not hits or "core" in hits[0].message
              and "sim" in hits[0].message,
              "finding names both modules")


def mutation_edited_layers_toml() -> None:
    """Deleting a declared edge must surface violations on the real tree."""
    print("mutation: declared edge removed from layers.toml copy")
    real = (REPO / "tools" / "staticcheck" / "layers.toml").read_text()
    victim = ('[[edge]]\nfrom = "core"\nto = "perf"\n')
    check(victim in real, "layers.toml declares the core -> perf edge")
    mutated_text = real.replace(victim, (
        '[[edge]]\nfrom = "core"\nto = "core"\n'))
    with tempfile.TemporaryDirectory() as tmp:
        mutated = pathlib.Path(tmp) / "layers.toml"
        mutated.write_text(mutated_text)
        project = model.Project(REPO, ["src"], compile_commands=None)
        config = pass_layering.LayerConfig(mutated)
        findings = pass_layering.run(project, config)
        hits = [f for f in findings if "core" in f.message
                and "perf" in f.message]
        check(len(hits) > 0,
              f"real tree now fails layering ({len(hits)} core->perf "
              "include(s) caught)")
        # And the untouched config stays clean, so the failure is caused by
        # the mutation alone.
        clean = pass_layering.run(project, pass_layering.LayerConfig(
            REPO / "tools" / "staticcheck" / "layers.toml"))
        check(not clean, "unmutated layers.toml keeps the tree clean")


def main() -> int:
    fixture_tests()
    mutation_seeded_core_to_sim()
    mutation_edited_layers_toml()
    total = len(failures)
    print(f"staticcheck_selftest: {'PASS' if total == 0 else 'FAIL'} "
          f"({total} failure(s))")
    return 1 if total else 0


if __name__ == "__main__":
    sys.exit(main())
