// Heterogeneous-GPU extension: per-node speed factors, straggler pacing,
// and speed-aware placement. (Sia's headline capability, listed by the
// paper as the context Rubick complements.)
#include <gtest/gtest.h>

#include "cluster/cluster.h"
#include "cluster/placement.h"
#include "common/error.h"
#include "common/resource.h"
#include "common/units.h"
#include "core/rubick_policy.h"
#include "core/scheduler.h"
#include "model/model_spec.h"
#include "model/model_zoo.h"
#include "perf/analytic.h"
#include "perf/oracle.h"
#include "perf/perf_store.h"
#include "perf/profiler.h"
#include "plan/execution_plan.h"
#include "plan/memory_estimator.h"
#include "sim/simulator.h"
#include "trace/job.h"
#include "trace/trace_gen.h"

namespace rubick {
namespace {

ClusterSpec hetero_cluster() {
  ClusterSpec spec;  // 8 nodes; first four full-speed, last four at 50%
  spec.node_speed = {1.0, 1.0, 1.0, 1.0, 0.5, 0.5, 0.5, 0.5};
  return spec;
}

TEST(Heterogeneous, SpeedOfDefaultsToOne) {
  const ClusterSpec homogeneous;
  EXPECT_FALSE(homogeneous.heterogeneous());
  EXPECT_DOUBLE_EQ(homogeneous.speed_of(3), 1.0);
  const ClusterSpec hetero = hetero_cluster();
  EXPECT_TRUE(hetero.heterogeneous());
  EXPECT_DOUBLE_EQ(hetero.speed_of(0), 1.0);
  EXPECT_DOUBLE_EQ(hetero.speed_of(7), 0.5);
}

TEST(Heterogeneous, BadSpeedVectorThrows) {
  ClusterSpec spec;
  spec.node_speed = {1.0, 0.5};  // wrong length for 8 nodes
  EXPECT_THROW(Cluster{spec}, InvariantError);
  spec.node_speed = {1, 1, 1, 1, 1, 1, 1, 0};  // zero speed
  EXPECT_THROW(Cluster{spec}, InvariantError);
}

TEST(Heterogeneous, PlacementContextPacesAtSlowestGpu) {
  const ClusterSpec spec = hetero_cluster();
  Placement fast;
  fast.add({0, 4, 8, 0});
  EXPECT_DOUBLE_EQ(make_perf_context(spec, fast).gpu_speed, 1.0);
  Placement mixed = fast;
  mixed.add({5, 4, 8, 0});
  EXPECT_DOUBLE_EQ(make_perf_context(spec, mixed).gpu_speed, 0.5);
}

TEST(Heterogeneous, ThroughputScalesWithGpuSpeed) {
  const ModelSpec& m = find_model("BERT");
  const FitParams params;
  PerfContext fast;
  fast.cpus = 8;
  PerfContext slow = fast;
  slow.gpu_speed = 0.5;
  const double thr_fast =
      predict_throughput(m, make_dp(4), 32, 0.005, params, fast);
  const double thr_slow =
      predict_throughput(m, make_dp(4), 32, 0.005, params, slow);
  EXPECT_GT(thr_fast, thr_slow);
  // Compute-bound regime: close to a 2x gap (constants dilute it a bit).
  EXPECT_GT(thr_fast / thr_slow, 1.5);
}

TEST(Heterogeneous, OracleMeasuresSlowNodesSlower) {
  const GroundTruthOracle oracle(2025);
  const ModelSpec& m = find_model("GPT-2");
  PerfContext fast;
  fast.cpus = 16;
  PerfContext slow = fast;
  slow.gpu_speed = 0.5;
  EXPECT_GT(oracle.measure_throughput(m, make_zero_dp(8), 16, fast),
            oracle.measure_throughput(m, make_zero_dp(8), 16, slow));
}

TEST(Heterogeneous, RubickPrefersFastNodes) {
  const ClusterSpec spec = hetero_cluster();
  const GroundTruthOracle oracle(2025);
  PerfModelStore store =
      PerfModelStore::profile_models(oracle, spec, {"BERT"});
  MemoryEstimator est;
  JobSpec job;
  job.id = 0;
  job.model_name = "BERT";
  job.requested = ResourceVector{8, 32, 0};
  job.global_batch = 32;
  job.initial_plan = make_dp(8);
  job.target_samples = 1e6;

  SchedulerInput in;
  in.cluster = &spec;
  in.models = &store;
  in.estimator = &est;
  JobView v;
  v.spec = &job;
  v.plan = job.initial_plan;
  v.remaining_samples = 1e6;
  in.jobs.push_back(v);

  RubickPolicy policy;
  const auto out = policy.schedule(in);
  ASSERT_EQ(out.size(), 1u);
  for (const auto& slice : out[0].placement.slices)
    EXPECT_DOUBLE_EQ(spec.speed_of(slice.node), 1.0)
        << "job should land on full-speed nodes while they are free";
}

TEST(Heterogeneous, EndToEndTraceCompletes) {
  const ClusterSpec spec = hetero_cluster();
  const GroundTruthOracle oracle(2025);
  const TraceGenerator gen(spec, oracle);
  TraceOptions opts;
  opts.seed = 14;
  opts.num_jobs = 40;
  opts.window_s = hours(2);
  RubickPolicy policy;
  Simulator sim(spec, oracle);
  const SimResult r = sim.run(gen.generate(opts), policy);
  for (const auto& j : r.jobs) EXPECT_TRUE(j.finished) << j.spec.id;
}

TEST(Heterogeneous, HomogeneousResultsUnchangedByFeature) {
  // The extension is strictly additive: a homogeneous run matches the
  // pre-extension behavior (speed 1.0 everywhere).
  const ClusterSpec spec;  // default, homogeneous
  const GroundTruthOracle oracle(2025);
  const TraceGenerator gen(spec, oracle);
  TraceOptions opts;
  opts.seed = 15;
  opts.num_jobs = 25;
  opts.window_s = hours(1);
  const auto jobs = gen.generate(opts);
  RubickPolicy a, b;
  Simulator sim(spec, oracle);
  const SimResult ra = sim.run(jobs, a);
  const SimResult rb = sim.run(jobs, b);
  for (std::size_t i = 0; i < ra.jobs.size(); ++i)
    EXPECT_DOUBLE_EQ(ra.jobs[i].jct_s, rb.jobs[i].jct_s);
}

}  // namespace
}  // namespace rubick
