#include "common/optim.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"

namespace rubick {
namespace {

TEST(NelderMead, MinimizesQuadratic) {
  auto f = [](const std::vector<double>& x) {
    return (x[0] - 3.0) * (x[0] - 3.0) + (x[1] + 1.0) * (x[1] + 1.0);
  };
  const OptimResult r = nelder_mead(f, {0.0, 0.0}, {-10, -10}, {10, 10});
  EXPECT_NEAR(r.x[0], 3.0, 1e-3);
  EXPECT_NEAR(r.x[1], -1.0, 1e-3);
  EXPECT_NEAR(r.value, 0.0, 1e-6);
}

TEST(NelderMead, MinimizesRosenbrockInBox) {
  auto f = [](const std::vector<double>& x) {
    const double a = 1.0 - x[0];
    const double b = x[1] - x[0] * x[0];
    return a * a + 100.0 * b * b;
  };
  OptimOptions opts;
  opts.max_iterations = 20000;
  opts.restarts = 12;
  const OptimResult r = nelder_mead(f, {-1.0, 2.0}, {-5, -5}, {5, 5}, opts);
  EXPECT_NEAR(r.x[0], 1.0, 0.02);
  EXPECT_NEAR(r.x[1], 1.0, 0.04);
}

TEST(NelderMead, RespectsBoxWhenOptimumOutside) {
  // Minimum of (x-10)^2 constrained to [0, 2] is at x = 2.
  auto f = [](const std::vector<double>& x) {
    return (x[0] - 10.0) * (x[0] - 10.0);
  };
  const OptimResult r = nelder_mead(f, {1.0}, {0.0}, {2.0});
  EXPECT_NEAR(r.x[0], 2.0, 1e-4);
}

TEST(NelderMead, ClampsInitialGuessIntoBox) {
  auto f = [](const std::vector<double>& x) { return x[0] * x[0]; };
  const OptimResult r = nelder_mead(f, {100.0}, {-1.0, }, {1.0});
  EXPECT_GE(r.x[0], -1.0);
  EXPECT_LE(r.x[0], 1.0);
  EXPECT_NEAR(r.x[0], 0.0, 1e-4);
}

TEST(NelderMead, DeterministicForFixedSeed) {
  auto f = [](const std::vector<double>& x) {
    return std::sin(x[0]) + x[0] * x[0] * 0.1;
  };
  const OptimResult a = nelder_mead(f, {3.0}, {-10}, {10});
  const OptimResult b = nelder_mead(f, {3.0}, {-10}, {10});
  EXPECT_DOUBLE_EQ(a.x[0], b.x[0]);
  EXPECT_DOUBLE_EQ(a.value, b.value);
}

TEST(NelderMead, RejectsBadBounds) {
  auto f = [](const std::vector<double>& x) { return x[0]; };
  EXPECT_THROW(nelder_mead(f, {0.0}, {1.0}, {0.0}), InvariantError);
  EXPECT_THROW(nelder_mead(f, {}, {}, {}), InvariantError);
}

TEST(NelderMead, RestartsEscapeLocalMinimum) {
  // Double well with a deep minimum at x = 4 and a shallow one at x = -4;
  // starting in the shallow basin, restarts should find the deep one.
  auto f = [](const std::vector<double>& x) {
    const double a = (x[0] + 4.0);
    const double b = (x[0] - 4.0);
    return std::min(a * a + 1.0, b * b);
  };
  OptimOptions opts;
  opts.restarts = 16;
  const OptimResult r = nelder_mead(f, {-4.0}, {-6}, {6}, opts);
  EXPECT_NEAR(r.x[0], 4.0, 0.05);
}

}  // namespace
}  // namespace rubick
