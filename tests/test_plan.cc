#include "model/model_spec.h"
#include "plan/execution_plan.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "model/model_zoo.h"

namespace rubick {
namespace {

TEST(ExecutionPlan, ConstructorsProduceValidPlans) {
  EXPECT_TRUE(make_dp(4).structurally_valid());
  EXPECT_TRUE(make_dp(4, 2).structurally_valid());
  EXPECT_TRUE(make_zero_dp(8).structurally_valid());
  EXPECT_TRUE(make_zero_offload(1, 4, true).structurally_valid());
  EXPECT_TRUE(make_3d(2, 4, 2).structurally_valid());
}

TEST(ExecutionPlan, GpuCountIsProductOfSizes) {
  EXPECT_EQ(make_3d(2, 4, 2).num_gpus(), 16);
  EXPECT_EQ(make_dp(8).num_gpus(), 8);
}

TEST(ExecutionPlan, ZeroRequiresPureDp) {
  ExecutionPlan p = make_zero_dp(4);
  p.tp = 2;
  p.dp = 2;
  EXPECT_FALSE(p.structurally_valid());
}

TEST(ExecutionPlan, PipelineForbidsGradientAccumulation) {
  ExecutionPlan p = make_3d(1, 1, 4);
  EXPECT_TRUE(p.structurally_valid());
  p.ga_steps = 2;
  EXPECT_FALSE(p.structurally_valid());
}

TEST(ExecutionPlan, MicroBatchesOnlyWithPipeline) {
  ExecutionPlan p = make_dp(2);
  p.micro_batches = 4;
  EXPECT_FALSE(p.structurally_valid());
}

TEST(ExecutionPlan, MicroBatchesAtLeastPipelineDepth) {
  ExecutionPlan p = make_3d(1, 1, 4);
  p.micro_batches = 2;  // < pp
  EXPECT_FALSE(p.structurally_valid());
}

TEST(ExecutionPlan, PerPassBatchDivisibility) {
  EXPECT_EQ(make_dp(4).per_pass_batch(16), 4);
  EXPECT_EQ(make_dp(4, 2).per_pass_batch(16), 2);
  EXPECT_EQ(make_dp(3).per_pass_batch(16), 0);  // not divisible
  const ExecutionPlan pp = make_3d(2, 1, 2, /*micro_batches=*/4);
  EXPECT_EQ(pp.per_pass_batch(16), 2);  // 16 / (dp=2 * m=4)
}

TEST(ExecutionPlan, ValidForChecksHiddenAndLayerDivisibility) {
  const ModelSpec& gpt2 = find_model("GPT-2");  // h=1600, l=48
  EXPECT_TRUE(make_3d(1, 4, 2, 4).valid_for(gpt2, 16));
  // 1600 % 64: TP=64 doesn't divide evenly into attention layout? 1600/64=25
  ExecutionPlan p = make_3d(1, 1, 5, 5);  // l=48 % 5 != 0
  EXPECT_FALSE(p.valid_for(gpt2, 25));
}

TEST(ExecutionPlan, ValidForRejectsModelParallelOnSmallModels) {
  const ModelSpec& bert = find_model("BERT");
  EXPECT_FALSE(make_3d(1, 2, 1).valid_for(bert, 32));
  EXPECT_TRUE(make_dp(2).valid_for(bert, 32));
}

TEST(ExecutionPlan, DisplayNamesMatchPaperConventions) {
  EXPECT_EQ(make_dp(1).display_name(), "DP");
  EXPECT_EQ(make_dp(4).display_name(), "DP(d=4)");
  EXPECT_EQ(make_dp(4, 2).display_name(), "DP(d=4)+GA");
  EXPECT_EQ(make_dp(4, 1, true).display_name(), "DP(d=4)+GC");
  EXPECT_EQ(make_zero_dp(8).display_name(), "ZeRO-DP");
  EXPECT_EQ(make_zero_offload(1, 2).display_name(), "ZeRO-Offload+GA");
  EXPECT_EQ(make_3d(2, 4, 2).display_name(), "3D(d=2,t=4,p=2)");
  EXPECT_EQ(make_3d(2, 4, 1).display_name(), "TP+DP(d=2,t=4)");
  EXPECT_EQ(make_3d(1, 1, 4).display_name(), "PP(d=1,p=4)");
}

TEST(ExecutionPlan, EqualityIsStructural) {
  EXPECT_EQ(make_dp(4), make_dp(4));
  EXPECT_NE(make_dp(4), make_dp(4, 2));
  EXPECT_NE(make_zero_dp(4), make_dp(4));
}

TEST(ExecutionPlan, DefaultMicroBatchesFor3d) {
  EXPECT_EQ(make_3d(1, 2, 4).micro_batches, 16);  // 4 * pp
  EXPECT_EQ(make_3d(1, 2, 4, 8).micro_batches, 8);
}

TEST(ExecutionPlan, InvalidConstructorArgsThrow) {
  EXPECT_THROW(make_dp(0), InvariantError);
  EXPECT_THROW(make_3d(1, 1, 4, 2), InvariantError);  // m < pp
}

// Property sweep: every (d, a) with d*a dividing the batch yields a valid
// DP plan; others are invalid.
class DpDivisibility : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(DpDivisibility, PerPassBatchConsistent) {
  const auto [d, a] = GetParam();
  ExecutionPlan p;
  p.dp = d;
  p.ga_steps = a;
  const int b = 16;
  const int expect = (b % (d * a) == 0) ? b / (d * a) : 0;
  EXPECT_EQ(p.per_pass_batch(b), expect);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DpDivisibility,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 5, 8, 16),
                       ::testing::Values(1, 2, 3, 4, 8)));

}  // namespace
}  // namespace rubick
