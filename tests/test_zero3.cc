// ZeRO-3 extension tests: the stage partitions all model states across DP
// ranks at the cost of per-pass parameter all-gathers.
#include <gtest/gtest.h>

#include "common/units.h"
#include "model/model_spec.h"
#include "model/model_zoo.h"
#include "perf/analytic.h"
#include "plan/enumerate.h"
#include "plan/execution_plan.h"
#include "plan/memory_estimator.h"

namespace rubick {
namespace {

const MemoryBudget kA800{gigabytes(80), gigabytes(1600)};

TEST(Zero3, DisplayAndConstruction) {
  const ExecutionPlan p = make_zero3(8, 2);
  EXPECT_EQ(p.zero, ZeroStage::kZero3);
  EXPECT_EQ(p.display_name(), "ZeRO-3+GA");
  EXPECT_TRUE(p.structurally_valid());
}

TEST(Zero3, RequiresPureDp) {
  ExecutionPlan p = make_zero3(4);
  p.tp = 2;
  p.dp = 2;
  EXPECT_FALSE(p.structurally_valid());
}

TEST(Zero3, PartitionsAllStates) {
  MemoryEstimator est;
  const ModelSpec& m = find_model("LLaMA-2-7B");
  // ZeRO-2 keeps full fp16 weights + gradient working set on every rank;
  // ZeRO-3 slices those too, so it uses far less GPU memory at the same d.
  const std::uint64_t z2 = est.gpu_bytes(m, make_zero_dp(8, 2), 16);
  const std::uint64_t z3 = est.gpu_bytes(m, make_zero3(8, 2), 16);
  // Activations and framework overhead are shared; the state portion drops
  // from 2P+2P+12P/d to ~16P/d, roughly 28 GB for 7B at d=8.
  EXPECT_LT(z3 + gigabytes(25), z2);
}

TEST(Zero3, EnablesLargeModelsOnPureDp) {
  // LLaMA-2-7B cannot run ZeRO-2 on a single 80 GB GPU; ZeRO-3 at d=8 fits
  // comfortably (16P/d = 14 GB of states).
  MemoryEstimator est;
  const ModelSpec& m = find_model("LLaMA-2-7B");
  EXPECT_TRUE(est.fits(m, make_zero3(8, 2), 16, kA800));
}

TEST(Zero3, MemoryShrinksWithDpSize) {
  MemoryEstimator est;
  const ModelSpec& m = find_model("GPT-2");
  EXPECT_GT(est.gpu_bytes(m, make_zero3(2, 2), 16),
            est.gpu_bytes(m, make_zero3(8, 2), 16));
}

TEST(Zero3, AllGatherVolumeMatchesFormula) {
  const ModelSpec& m = find_model("GPT-2");
  const FitParams params;
  PerfContext ctx;
  ctx.cpus = 16;
  const auto bd =
      iteration_breakdown(m, make_zero3(8), 16, 0.01, params, ctx);
  // a=1: 2 all-gathers of 2P bytes with ring factor (d-1)/d.
  const double expect = 2.0 * 2.0 * m.param_count * 7.0 / 8.0;
  EXPECT_NEAR(bd.v_ag_bytes / expect, 1.0, 1e-9);
  EXPECT_GT(bd.t_comm_ag, 0.0);
}

TEST(Zero3, SlowerThanZero2AtSameSizeFasterThanNothingForBigModels) {
  // The all-gather traffic makes ZeRO-3 no faster than ZeRO-2 when both
  // fit; its value is purely memory reach.
  const ModelSpec& m = find_model("GPT-2");
  const FitParams params;
  PerfContext ctx;
  ctx.cpus = 16;
  const double z2 = predict_throughput(m, make_zero_dp(8), 16, 0.01, params, ctx);
  const double z3 = predict_throughput(m, make_zero3(8), 16, 0.01, params, ctx);
  EXPECT_LT(z3, z2);
}

TEST(Zero3, NoAllGatherAtDpOne) {
  const ModelSpec& m = find_model("GPT-2");
  const FitParams params;
  PerfContext ctx;
  ctx.cpus = 4;
  const auto bd = iteration_breakdown(m, make_zero3(1), 16, 0.01, params, ctx);
  EXPECT_DOUBLE_EQ(bd.v_ag_bytes, 0.0);
}

TEST(Zero3, GaMultipliesAllGathers) {
  const ModelSpec& m = find_model("GPT-2");
  const FitParams params;
  PerfContext ctx;
  ctx.cpus = 16;
  const auto a1 = iteration_breakdown(m, make_zero3(4, 1), 16, 0.01, params, ctx);
  const auto a2 = iteration_breakdown(m, make_zero3(4, 2), 16, 0.01, params, ctx);
  EXPECT_NEAR(a2.v_ag_bytes / a1.v_ag_bytes, 2.0, 1e-9);
}

TEST(Zero3, AppearsInEnumeration) {
  MemoryEstimator est;
  PlanConstraints pc;
  pc.num_gpus = 8;
  pc.max_tp = 8;
  pc.budget = kA800;
  bool found = false;
  for (const auto& p :
       enumerate_plans(find_model("LLaMA-2-7B"), 16, pc, est))
    if (p.zero == ZeroStage::kZero3) found = true;
  EXPECT_TRUE(found);
}

TEST(Zero3, OptimizerPartitionedLikeZero2) {
  const ModelSpec& m = find_model("GPT-2");
  const FitParams params;
  PerfContext ctx;
  ctx.cpus = 16;
  const auto z2 = iteration_breakdown(m, make_zero_dp(8), 16, 0.01, params, ctx);
  const auto z3 = iteration_breakdown(m, make_zero3(8), 16, 0.01, params, ctx);
  EXPECT_DOUBLE_EQ(z2.t_opt, z3.t_opt);
}

}  // namespace
}  // namespace rubick
