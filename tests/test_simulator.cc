#include "cluster/cluster.h"
#include "cluster/placement.h"
#include "common/resource.h"
#include "core/scheduler.h"
#include "model/model_spec.h"
#include "perf/analytic.h"
#include "perf/oracle.h"
#include "plan/execution_plan.h"
#include "sim/simulator.h"
#include "trace/job.h"

#include <gtest/gtest.h>

#include "common/units.h"
#include "core/rubick_policy.h"
#include "model/model_zoo.h"
#include "perf/profiler.h"

namespace rubick {
namespace {

JobSpec simple_job(int id, const std::string& model, int gpus,
                   double submit_s, double target_samples,
                   bool guaranteed = true) {
  JobSpec spec;
  spec.id = id;
  spec.model_name = model;
  spec.requested = ResourceVector{gpus, 4 * gpus, 0};
  spec.global_batch = find_model(model).default_global_batch;
  spec.initial_plan = make_dp(gpus);
  spec.submit_time_s = submit_s;
  spec.target_samples = target_samples;
  spec.guaranteed = guaranteed;
  return spec;
}

// A trivial policy: gang-schedule every pending job onto node 0 with its
// initial plan, FCFS, never touching running jobs.
class FifoPolicy final : public SchedulerPolicy {
 public:
  std::string name() const override { return "FIFO"; }
  std::vector<Assignment> schedule(const SchedulerInput& input) override {
    std::vector<Assignment> out;
    int used_gpus = 0, used_cpus = 0;
    for (const auto& v : input.jobs)
      if (v.running) {
        out.push_back({v.spec->id, v.placement, v.plan});
        for (const auto& s : v.placement.slices) {
          used_gpus += s.gpus;
          used_cpus += s.cpus;
        }
      }
    for (const auto& v : input.jobs) {
      if (v.running) continue;
      const int g = v.spec->requested.gpus;
      const int c = v.spec->requested.cpus;
      if (used_gpus + g > input.cluster->node.gpus) continue;
      Placement p;
      p.add({0, g, c, 1ull << 30});
      out.push_back({v.spec->id, p, v.spec->initial_plan});
      used_gpus += g;
      used_cpus += c;
    }
    return out;
  }
};

class SimulatorTest : public ::testing::Test {
 protected:
  SimulatorTest() : oracle_(2025) {}

  SimResult run(const std::vector<JobSpec>& jobs, SimOptions opts = {}) {
    FifoPolicy policy;
    Simulator sim(cluster_, oracle_, opts);
    return sim.run(jobs, policy);
  }

  ClusterSpec cluster_;
  GroundTruthOracle oracle_;
};

TEST_F(SimulatorTest, SingleJobRunsToCompletion) {
  const auto jobs = {simple_job(0, "BERT", 2, 0.0, 5000.0)};
  const SimResult r = run(jobs);
  ASSERT_EQ(r.jobs.size(), 1u);
  EXPECT_TRUE(r.jobs[0].finished);
  EXPECT_GT(r.jobs[0].jct_s, 0.0);
  EXPECT_GT(r.makespan_s, 0.0);
}

TEST_F(SimulatorTest, JctMatchesThroughputPlusOverheads) {
  SimOptions opts;
  opts.charge_profiling = false;
  opts.launch_delay_s = 30.0;
  const double target = 5000.0;
  const auto jobs = {simple_job(0, "BERT", 2, 0.0, target)};
  const SimResult r = run(jobs, opts);
  const ModelSpec& m = find_model("BERT");
  const PerfContext ctx = make_perf_context(cluster_, 2, 8);
  const double thr = oracle_.measure_throughput(m, make_dp(2), 32, ctx);
  EXPECT_NEAR(r.jobs[0].jct_s, 30.0 + target / thr, 1.0);
}

TEST_F(SimulatorTest, ProfilingGateDelaysFirstJobOfModelType) {
  SimOptions with;
  with.charge_profiling = true;
  SimOptions without;
  without.charge_profiling = false;
  const std::vector<JobSpec> jobs = {simple_job(0, "BERT", 2, 0.0, 5000.0)};
  const double gated = run(jobs, with).jobs[0].jct_s;
  const double ungated = run(jobs, without).jobs[0].jct_s;
  EXPECT_GT(gated, ungated + 100.0);  // ~210 s of profiling
}

TEST_F(SimulatorTest, SecondJobOfSameModelNotGated) {
  SimOptions opts;  // profiling on
  const std::vector<JobSpec> jobs = {
      simple_job(0, "BERT", 2, 0.0, 5000.0),
      simple_job(1, "BERT", 2, hours(2), 5000.0),
  };
  const SimResult r = run(jobs, opts);
  // Job 1 arrives long after profiling completed: its JCT has no gate.
  EXPECT_LT(r.jobs[1].jct_s, r.jobs[0].jct_s);
}

TEST_F(SimulatorTest, QueueingDelaysAreAccounted) {
  SimOptions opts;
  opts.charge_profiling = false;
  // Two 8-GPU jobs on one node: FifoPolicy runs them sequentially.
  const std::vector<JobSpec> jobs = {
      simple_job(0, "BERT", 8, 0.0, 50000.0),
      simple_job(1, "BERT", 8, 0.0, 50000.0),
  };
  const SimResult r = run(jobs, opts);
  ASSERT_TRUE(r.jobs[0].finished && r.jobs[1].finished);
  EXPECT_GT(r.jobs[1].jct_s, r.jobs[0].jct_s * 1.5);
}

TEST_F(SimulatorTest, MakespanIsLastFinish) {
  SimOptions opts;
  opts.charge_profiling = false;
  const std::vector<JobSpec> jobs = {
      simple_job(0, "BERT", 2, 0.0, 5000.0),
      simple_job(1, "GPT-2", 2, 100.0, 2000.0),
  };
  const SimResult r = run(jobs, opts);
  double last = 0.0;
  for (const auto& j : r.jobs) last = std::max(last, j.finish_s);
  EXPECT_DOUBLE_EQ(r.makespan_s, last);
}

TEST_F(SimulatorTest, DeterministicAcrossRuns) {
  const std::vector<JobSpec> jobs = {
      simple_job(0, "BERT", 2, 0.0, 5000.0),
      simple_job(1, "GPT-2", 4, 50.0, 3000.0),
  };
  const SimResult a = run(jobs);
  const SimResult b = run(jobs);
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t i = 0; i < a.jobs.size(); ++i)
    EXPECT_DOUBLE_EQ(a.jobs[i].jct_s, b.jobs[i].jct_s);
  EXPECT_DOUBLE_EQ(a.makespan_s, b.makespan_s);
}

TEST_F(SimulatorTest, GpuSecondsAccounted) {
  SimOptions opts;
  opts.charge_profiling = false;
  const auto jobs = {simple_job(0, "BERT", 4, 0.0, 5000.0)};
  const SimResult r = run(jobs, opts);
  EXPECT_GT(r.jobs[0].gpu_seconds, 0.0);
  EXPECT_NEAR(r.jobs[0].gpu_seconds, r.jobs[0].total_active_time_s * 4, 1e-6);
}

TEST_F(SimulatorTest, BaselineThroughputIsOracleMeasurement) {
  SimOptions opts;
  opts.charge_profiling = false;
  const auto jobs = {simple_job(0, "BERT", 2, 0.0, 5000.0)};
  const SimResult r = run(jobs, opts);
  const ModelSpec& m = find_model("BERT");
  const PerfContext ctx = make_perf_context(cluster_, 2, 8);
  EXPECT_DOUBLE_EQ(r.jobs[0].baseline_throughput,
                   oracle_.measure_throughput(m, make_dp(2), 32, ctx));
}

TEST_F(SimulatorTest, RubickPolicyCompletesMixedWorkload) {
  std::vector<JobSpec> jobs;
  jobs.push_back(simple_job(0, "BERT", 2, 0.0, 20000.0));
  jobs.push_back(simple_job(1, "GPT-2", 4, 60.0, 4000.0));
  JobSpec llama = simple_job(2, "LLaMA-2-7B", 8, 120.0, 500.0);
  llama.initial_plan = make_zero_dp(8, 2, true);
  jobs.push_back(llama);

  RubickPolicy policy;
  Simulator sim(cluster_, oracle_);
  const SimResult r = sim.run(jobs, policy);
  for (const auto& j : r.jobs) EXPECT_TRUE(j.finished) << j.spec.id;
}

}  // namespace
}  // namespace rubick
