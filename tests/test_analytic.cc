#include "model/model_spec.h"
#include "perf/analytic.h"
#include "plan/execution_plan.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "model/model_zoo.h"

namespace rubick {
namespace {

PerfContext single_node(int cpus = 8) {
  PerfContext ctx;
  ctx.cpus = cpus;
  ctx.multi_node = false;
  return ctx;
}

TEST(FOverlap, K1IsSum) {
  EXPECT_DOUBLE_EQ(f_overlap(1.0, 2.0, 3.0), 5.0);
}

TEST(FOverlap, LargeKApproachesMax) {
  EXPECT_NEAR(f_overlap(64.0, 2.0, 3.0), 3.0, 1e-6);
}

TEST(FOverlap, BoundedBetweenMaxAndSum) {
  for (double k : {1.0, 1.5, 2.0, 4.0, 8.0}) {
    const double v = f_overlap(k, 2.0, 3.0);
    EXPECT_GE(v, 3.0) << k;
    EXPECT_LE(v, 5.0) << k;
  }
}

TEST(FOverlap, MonotoneDecreasingInK) {
  double prev = f_overlap(1.0, 2.0, 3.0);
  for (double k : {1.5, 2.0, 3.0, 5.0, 10.0}) {
    const double v = f_overlap(k, 2.0, 3.0);
    EXPECT_LE(v, prev + 1e-12) << k;
    prev = v;
  }
}

TEST(FOverlap, ZeroOperandReturnsOther) {
  EXPECT_DOUBLE_EQ(f_overlap(2.0, 0.0, 3.0), 3.0);
  EXPECT_DOUBLE_EQ(f_overlap(2.0, 3.0, 0.0), 3.0);
}

TEST(FOverlap, RejectsKBelowOne) {
  EXPECT_THROW(f_overlap(0.5, 1.0, 1.0), InvariantError);
}

TEST(FOverlap, SymmetricInOperands) {
  EXPECT_DOUBLE_EQ(f_overlap(2.5, 1.0, 4.0), f_overlap(2.5, 4.0, 1.0));
}

TEST(Analytic, CommunicationVolumesZeroWhenSizeOne) {
  const ModelSpec& m = find_model("GPT-2");
  const FitParams p;
  const auto bd = iteration_breakdown(m, make_dp(1), 16, 0.01, p, single_node());
  EXPECT_DOUBLE_EQ(bd.v_dp_bytes, 0.0);
  EXPECT_DOUBLE_EQ(bd.v_tp_bytes, 0.0);
  EXPECT_DOUBLE_EQ(bd.v_pp_bytes, 0.0);
}

TEST(Analytic, DpVolumeMatchesFormula) {
  const ModelSpec& m = find_model("GPT-2");
  const FitParams p;
  const auto bd = iteration_breakdown(m, make_dp(4), 16, 0.01, p, single_node());
  // V_dp = 2P_bytes * 2(d-1)/(d*t*p)
  const double expect = 2.0 * m.param_count * 2.0 * 3.0 / 4.0;
  EXPECT_NEAR(bd.v_dp_bytes, expect, 1.0);
}

TEST(Analytic, TpVolumeMatchesFormula) {
  const ModelSpec& m = find_model("GPT-2");
  const FitParams p;
  const auto bd =
      iteration_breakdown(m, make_3d(1, 4, 1), 16, 0.01, p, single_node());
  const double expect = 4.0 * 2.0 * 3.0 *
                        (16.0 * m.seq_len * m.hidden_size * m.num_layers) /
                        4.0 * 2.0;
  EXPECT_NEAR(bd.v_tp_bytes / expect, 1.0, 1e-9);
}

TEST(Analytic, PpVolumeMatchesFormula) {
  const ModelSpec& m = find_model("GPT-2");
  const FitParams p;
  const auto bd =
      iteration_breakdown(m, make_3d(1, 1, 2, 4), 16, 0.01, p, single_node());
  const double expect =
      2.0 * 2.0 * (16.0 * m.seq_len * m.hidden_size) / 1.0 * 2.0;
  EXPECT_NEAR(bd.v_pp_bytes / expect, 1.0, 1e-9);
}

TEST(Analytic, GcAddsForwardToBackward) {
  const ModelSpec& m = find_model("GPT-2");
  const FitParams p;
  const auto plain = iteration_breakdown(m, make_dp(2), 16, 0.01, p, single_node());
  const auto gc =
      iteration_breakdown(m, make_dp(2, 1, true), 16, 0.01, p, single_node());
  EXPECT_NEAR(gc.t_bwd - plain.t_bwd, plain.t_fwd, 1e-9);
}

TEST(Analytic, GaIsComputeNeutralWithoutComm) {
  // At d=1 (no gradient sync), GA changes nothing but activation memory.
  const ModelSpec& m = find_model("GPT-2");
  const FitParams p;
  const auto a1 = iteration_breakdown(m, make_dp(1, 1), 16, 0.01, p, single_node());
  const auto a4 = iteration_breakdown(m, make_dp(1, 4), 16, 0.01, p, single_node());
  EXPECT_NEAR(a1.t_iter, a4.t_iter, 1e-9);
}

TEST(Analytic, ThroughputImprovesWithDpUnderFastInterconnect) {
  const ModelSpec& m = find_model("BERT");
  const FitParams p;
  const double t1 =
      predict_throughput(m, make_dp(1), 32, 0.005, p, single_node());
  const double t4 =
      predict_throughput(m, make_dp(4), 32, 0.005, p, single_node());
  EXPECT_GT(t4, 2.0 * t1);
}

TEST(Analytic, MultiNodeSlowsDataParallelComm) {
  const ModelSpec& m = find_model("GPT-2");
  const FitParams p;
  PerfContext remote = single_node();
  remote.multi_node = true;
  const auto local = iteration_breakdown(m, make_dp(8), 16, 0.01, p, single_node());
  const auto cross = iteration_breakdown(m, make_dp(8), 16, 0.01, p, remote);
  EXPECT_GT(cross.t_comm_dp, local.t_comm_dp);
  EXPECT_GE(cross.t_iter, local.t_iter);
}

TEST(Analytic, TpCommStaysOnIntraNodeLinks) {
  const ModelSpec& m = find_model("GPT-2");
  const FitParams p;
  PerfContext remote = single_node();
  remote.multi_node = true;
  const auto local =
      iteration_breakdown(m, make_3d(1, 4, 1), 16, 0.01, p, single_node());
  const auto cross =
      iteration_breakdown(m, make_3d(1, 4, 1), 16, 0.01, p, remote);
  EXPECT_DOUBLE_EQ(local.t_comm_tp, cross.t_comm_tp);
}

TEST(Analytic, OffloadOptimizerSpeedsUpWithCpus) {
  const ModelSpec& m = find_model("LLaMA-2-7B");
  const FitParams p;
  const auto c8 = iteration_breakdown(m, make_zero_offload(1, 16), 16, 0.4, p,
                                      single_node(8));
  const auto c16 = iteration_breakdown(m, make_zero_offload(1, 16), 16, 0.4, p,
                                       single_node(16));
  EXPECT_GT(c8.t_opt, c16.t_opt);
  EXPECT_GT(c8.t_iter, c16.t_iter);
}

TEST(Analytic, ZeroDpPartitionsOptimizer) {
  const ModelSpec& m = find_model("GPT-2");
  const FitParams p;
  const auto dp = iteration_breakdown(m, make_dp(4), 16, 0.01, p, single_node());
  const auto zero =
      iteration_breakdown(m, make_zero_dp(4), 16, 0.01, p, single_node());
  EXPECT_NEAR(zero.t_opt * 4.0, dp.t_opt, dp.t_opt * 1e-9);
}

TEST(Analytic, PipelineBubbleGrowsWithStages) {
  const ModelSpec& m = find_model("GPT-2");
  const FitParams p;
  // Same micro-batch count: deeper pipelines pay more bubble.
  const auto p2 =
      iteration_breakdown(m, make_3d(1, 1, 2, 8), 16, 0.01, p, single_node());
  const auto p4 =
      iteration_breakdown(m, make_3d(1, 1, 4, 8), 16, 0.01, p, single_node());
  // fwd time: t_micro*(m+p-1); t_micro halves with p but bubble term grows.
  EXPECT_GT(p4.t_fwd / p2.t_fwd, 0.5);
}

TEST(Analytic, PerturbationsOnlyHurt) {
  const ModelSpec& m = find_model("GPT-2");
  const FitParams p;
  Perturbation worst;
  worst.tp_overhead = 0.2;
  worst.pp_bubble = 0.2;
  worst.dp_congestion = 0.2;
  worst.cpu_pipeline = 0.2;
  PerfContext ctx = single_node(2);
  ctx.multi_node = true;
  const ExecutionPlan plan = make_3d(2, 2, 2, 4);
  const double clean = predict_throughput(m, plan, 16, 0.01, p, ctx);
  const double bad = predict_throughput(m, plan, 16, 0.01, p, ctx, worst);
  EXPECT_LT(bad, clean);
}

TEST(Analytic, KConstAddsConstantOverhead) {
  const ModelSpec& m = find_model("BERT");
  FitParams p;
  const auto base = iteration_breakdown(m, make_dp(2), 32, 0.01, p, single_node());
  p.k_const += 0.5;
  const auto slower =
      iteration_breakdown(m, make_dp(2), 32, 0.01, p, single_node());
  EXPECT_NEAR(slower.t_iter - base.t_iter, 0.5, 1e-9);
}

TEST(Analytic, InvalidPlanThrows) {
  const ModelSpec& m = find_model("GPT-2");
  const FitParams p;
  EXPECT_THROW(
      iteration_breakdown(m, make_dp(3), 16, 0.01, p, single_node()),
      InvariantError);
}

}  // namespace
}  // namespace rubick
