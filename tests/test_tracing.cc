// TraceRecorder/TraceSpan: Chrome trace-event structure and span nesting;
// TelemetryObserver: per-job tracks must mirror the simulator's recorded
// reconfiguration history, and coexist with the auditor on the observer
// seam.
#include "cluster/cluster.h"
#include "core/audit.h"
#include "perf/oracle.h"
#include "telemetry/trace.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <vector>

#include "check/invariant_auditor.h"
#include "common/units.h"
#include "core/rubick_policy.h"
#include "sim/simulator.h"
#include "sim/telemetry_observer.h"
#include "telemetry/metrics.h"
#include "trace/trace_gen.h"

namespace rubick {
namespace {

// Restores the global recorder to its disabled, empty state.
class RecorderGuard {
 public:
  ~RecorderGuard() {
    TraceRecorder::global().set_enabled(false);
    TraceRecorder::global().clear();
  }
};

TEST(TraceRecorder, DisabledRecordsNothing) {
  RecorderGuard guard;
  TraceRecorder::global().set_enabled(false);
  TraceRecorder::global().clear();
  { RUBICK_TRACE_SPAN("test", "ignored"); }
  EXPECT_EQ(TraceRecorder::global().event_count(), 0u);
}

TEST(TraceRecorder, SpanNestingIsContained) {
  RecorderGuard guard;
  TraceRecorder& rec = TraceRecorder::global();
  rec.clear();
  rec.set_enabled(true);
  {
    RUBICK_TRACE_SPAN("test", "outer");
    RUBICK_TRACE_SPAN("test", "inner");
  }
  rec.set_enabled(false);
  const auto events = rec.snapshot();
  ASSERT_EQ(events.size(), 2u);
  const auto outer = std::find_if(events.begin(), events.end(),
                                  [](const TraceEvent& e) {
                                    return e.name == "outer";
                                  });
  const auto inner = std::find_if(events.begin(), events.end(),
                                  [](const TraceEvent& e) {
                                    return e.name == "inner";
                                  });
  ASSERT_NE(outer, events.end());
  ASSERT_NE(inner, events.end());
  EXPECT_EQ(outer->ph, 'X');
  EXPECT_EQ(outer->tid, inner->tid);
  // The inner span begins no earlier and ends no later than the outer.
  EXPECT_GE(inner->ts_us, outer->ts_us);
  EXPECT_LE(inner->ts_us + inner->dur_us, outer->ts_us + outer->dur_us);
}

TEST(TraceRecorder, ChromeTraceJsonShape) {
  TraceRecorder rec;
  rec.set_enabled(true);
  rec.set_process_name(kTraceSimPid, "simulation");
  rec.add_complete_sim("DP x4g", "job", 1.0, 5.0, 7, "{\"job\": 7}");
  rec.add_counter_sim("busy_gpus", 1.0, 0, "{\"gpus\": 4}");
  std::ostringstream os;
  rec.write_chrome_trace(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"M\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"C\""), std::string::npos);
  EXPECT_NE(json.find("\"pid\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"tid\": 7"), std::string::npos);
  // Sim seconds render as microseconds: 1 s -> ts 1e6, 4 s -> dur 4e6.
  EXPECT_NE(json.find("\"ts\": 1000000"), std::string::npos);
  EXPECT_NE(json.find("\"dur\": 4000000"), std::string::npos);
  long depth = 0;
  for (const char ch : json) {
    if (ch == '{' || ch == '[') ++depth;
    if (ch == '}' || ch == ']') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST(TraceRecorder, SnapshotPutsMetadataFirstThenTimeOrder) {
  TraceRecorder rec;
  rec.set_enabled(true);
  rec.add_complete_sim("late", "job", 10.0, 11.0, 1);
  rec.add_complete_sim("early", "job", 2.0, 3.0, 1);
  rec.set_thread_name(kTraceSimPid, 1, "job 1");
  const auto events = rec.snapshot();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].ph, 'M');
  EXPECT_EQ(events[1].name, "early");
  EXPECT_EQ(events[2].name, "late");
}

class ObserverFixture : public ::testing::Test {
 protected:
  SimResult run_with_observer(TelemetryObserver* telemetry,
                              InvariantAuditor* auditor) {
    const ClusterSpec cluster;
    const GroundTruthOracle oracle(2025);
    const TraceGenerator gen(cluster, oracle);
    TraceOptions opts;
    opts.seed = 3;
    opts.num_jobs = 12;
    opts.window_s = hours(1);
    const auto jobs = gen.generate(opts);
    RubickPolicy policy;
    const Simulator sim(cluster, oracle);
    SimObserverList observers;
    observers.add(auditor);
    observers.add(telemetry);
    RunContext ctx;
    ctx.observer = &observers;
    return sim.run(jobs, policy, ctx);
  }
};

TEST_F(ObserverFixture, JobTracksMatchReconfigurationHistory) {
  TraceRecorder recorder;
  recorder.set_enabled(true);
  TelemetryObserver observer(&recorder);
  const SimResult result = run_with_observer(&observer, nullptr);

  for (const JobResult& job : result.jobs) {
    if (!job.finished) continue;
    std::vector<const JobSpanRecord*> run_spans;
    for (const JobSpanRecord& span : observer.job_spans())
      if (span.job_id == job.spec.id && span.running)
        run_spans.push_back(&span);
    // One run span per recorded assignment: the observer witnesses exactly
    // the simulator's (re)starts, nothing more, nothing less.
    ASSERT_EQ(run_spans.size(), job.history.size())
        << "job " << job.spec.id;
    for (std::size_t i = 0; i < run_spans.size(); ++i) {
      EXPECT_NEAR(run_spans[i]->begin_s, job.history[i].since_s, 1e-9)
          << "job " << job.spec.id << " span " << i;
      EXPECT_NE(
          run_spans[i]->label.find(job.history[i].plan.display_name()),
          std::string::npos)
          << "job " << job.spec.id << " span " << i;
      // Spans on one track never overlap.
      if (i > 0) {
        EXPECT_LE(run_spans[i - 1]->end_s, run_spans[i]->begin_s + 1e-9);
      }
    }
    EXPECT_NEAR(run_spans.back()->end_s, job.finish_s, 1e-9);
  }
  EXPECT_GT(observer.event_count(), 0u);
}

TEST_F(ObserverFixture, CoexistsWithAuditorOnObserverSeam) {
  TraceRecorder recorder;
  recorder.set_enabled(true);
  TelemetryObserver observer(&recorder);
  InvariantAuditor auditor;  // default: throw on violation
  const SimResult result = run_with_observer(&observer, &auditor);
  EXPECT_TRUE(auditor.report().clean());
  EXPECT_GT(auditor.report().ticks_observed, 0);
  EXPECT_FALSE(observer.job_spans().empty());
  EXPECT_EQ(result.jobs.size(), 12u);
}

TEST_F(ObserverFixture, EventsJsonlIsParseableShape) {
  TraceRecorder recorder;
  recorder.set_enabled(true);
  TelemetryObserver observer(&recorder);
  run_with_observer(&observer, nullptr);
  std::ostringstream os;
  observer.write_events_jsonl(os);
  std::istringstream is(os.str());
  std::string line;
  std::size_t lines = 0;
  double last_t_s = -1.0;
  bool saw_run_begin = false, saw_run_end = false;
  while (std::getline(is, line)) {
    ++lines;
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    EXPECT_NE(line.find("\"type\": "), std::string::npos);
    EXPECT_NE(line.find("\"t_s\": "), std::string::npos);
    // Events are emitted in non-decreasing simulated time.
    const auto pos = line.find("\"t_s\": ") + 7;
    const double t_s = std::stod(line.substr(pos));
    EXPECT_GE(t_s, last_t_s);
    last_t_s = t_s;
    saw_run_begin |= line.find("\"run_begin\"") != std::string::npos;
    saw_run_end |= line.find("\"run_end\"") != std::string::npos;
  }
  EXPECT_EQ(lines, observer.event_count());
  EXPECT_TRUE(saw_run_begin);
  EXPECT_TRUE(saw_run_end);
}

}  // namespace
}  // namespace rubick
