#include "telemetry/metrics.h"

#include <algorithm>
#include <ostream>

#include "common/error.h"
#include "common/jsonx.h"
#include "common/wallclock.h"

namespace rubick {

namespace telemetry_detail {
std::atomic<bool> g_enabled{false};
}  // namespace telemetry_detail

void set_telemetry_enabled(bool on) {
  telemetry_detail::g_enabled.store(on, std::memory_order_relaxed);
}

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)),
      buckets_(new std::atomic<std::uint64_t>[bounds_.size() + 1]) {
  RUBICK_CHECK_MSG(std::is_sorted(bounds_.begin(), bounds_.end()),
                   "histogram bounds must be ascending");
  for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

void Histogram::observe(double v) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  buckets_[static_cast<std::size_t>(it - bounds_.begin())].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out(bounds_.size() + 1);
  for (std::size_t i = 0; i < out.size(); ++i)
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  return out;
}

void Histogram::reset() {
  for (std::size_t i = 0; i <= bounds_.size(); ++i)
    buckets_[i].store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

std::vector<double> latency_bounds_s() {
  std::vector<double> bounds;
  for (double decade = 1e-6; decade < 10.0 + 1e-9; decade *= 10.0) {
    bounds.push_back(decade);
    bounds.push_back(3.0 * decade);
  }
  return bounds;
}

MetricsRegistry& MetricsRegistry::global() {
  // Leaked on purpose: handles cached at macro sites must stay valid
  // through static destruction of other objects.
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(std::move(bounds));
  return *slot;
}

void MetricsRegistry::reset_values() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

std::uint64_t MetricsRegistry::counter_value(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = counters_.find(name);
  return it != counters_.end() ? it->second->value() : 0;
}

double MetricsRegistry::gauge_value(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = gauges_.find(name);
  return it != gauges_.end() ? it->second->value() : 0.0;
}

std::size_t MetricsRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_.size() + gauges_.size() + histograms_.size();
}

void MetricsRegistry::write_json(std::ostream& os) const {
  std::lock_guard<std::mutex> lock(mu_);
  os << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    os << (first ? "" : ",") << "\n    " << json_str(name) << ": "
       << c->value();
    first = false;
  }
  os << "\n  },\n  \"gauges\": {";
  first = true;
  for (const auto& [name, g] : gauges_) {
    os << (first ? "" : ",") << "\n    " << json_str(name) << ": "
       << json_number(g->value());
    first = false;
  }
  os << "\n  },\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    os << (first ? "" : ",") << "\n    " << json_str(name) << ": {"
       << "\"count\": " << h->count() << ", \"sum\": "
       << json_number(h->sum()) << ", \"buckets\": [";
    const std::vector<std::uint64_t> counts = h->bucket_counts();
    const std::vector<double>& bounds = h->bounds();
    for (std::size_t i = 0; i < counts.size(); ++i) {
      os << (i == 0 ? "" : ", ") << "{\"le\": "
         << (i < bounds.size() ? json_number(bounds[i]) : "\"+inf\"")
         << ", \"count\": " << counts[i] << "}";
    }
    os << "]}";
    first = false;
  }
  os << "\n  }\n}\n";
}

ScopedLatencyTimer::ScopedLatencyTimer(Histogram* hist) : hist_(hist) {
  if (hist_ != nullptr) begin_ns_ = monotonic_ns();
}

ScopedLatencyTimer::~ScopedLatencyTimer() {
  if (hist_ != nullptr)
    hist_->observe(static_cast<double>(monotonic_ns() - begin_ns_) * 1e-9);
}

}  // namespace rubick
