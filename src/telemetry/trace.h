// Tracing spans with Chrome trace-event export (Perfetto-loadable).
//
// Two time domains share one trace file, kept apart as two "processes":
//
//   pid 1 ("scheduler")  — wall-clock spans recorded by RUBICK_TRACE_SPAN
//                          around real computation (scheduling rounds,
//                          curve warm-up). One track per OS thread.
//   pid 2 ("simulation") — simulated-time spans built by the
//                          TelemetryObserver (sim/telemetry_observer.h):
//                          one track per simulated job showing its
//                          queued/run/reconfig phases, plus cluster-level
//                          counter tracks. `ts` is simulated seconds
//                          rendered as microseconds.
//
// Recording is lock-light: each OS thread owns a buffer (registered once,
// guarded by a rarely-contended per-buffer mutex so export can run while
// threads still record); a disabled recorder costs one relaxed atomic load
// per macro. The export is the standard JSON object form
// {"traceEvents":[...]} understood by Perfetto and chrome://tracing.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace rubick {

// Trace-event "processes" (time domains — see file comment).
inline constexpr int kTraceSchedulerPid = 1;
inline constexpr int kTraceSimPid = 2;

struct TraceEvent {
  std::string name;
  std::string cat;
  // X complete, i instant, C counter, M metadata, s/t/f flow start/step/end
  char ph = 'X';
  double ts_us = 0.0;
  double dur_us = 0.0;  // 'X' only
  int pid = kTraceSchedulerPid;
  int tid = 0;
  // Flow-event binding id ('s'/'t'/'f' only). The provenance layer uses the
  // decision-record sequence number, linking a scheduler-side span to the
  // simulated round it decided (DESIGN.md §12).
  std::uint64_t flow_id = 0;
  // Raw JSON object for "args" (including braces), empty for none.
  std::string args_json;
};

class TraceRecorder {
 public:
  TraceRecorder();

  // Process-wide recorder used by RUBICK_TRACE_SPAN and the CLI exporters.
  static TraceRecorder& global();

  bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }
  void set_enabled(bool on);

  // Appends one event to the calling thread's buffer (any ph).
  void add(TraceEvent event);

  // Convenience wrappers -----------------------------------------------
  // Wall-clock complete event on the calling thread's scheduler track.
  void add_complete_wall(const char* cat, const std::string& name,
                         std::uint64_t begin_ns, std::uint64_t end_ns,
                         std::string args_json = {});
  // Simulated-time complete event on a named sim track (tid = job id).
  void add_complete_sim(const std::string& name, const char* cat,
                        double begin_s, double end_s, int tid,
                        std::string args_json = {});
  void add_counter_sim(const std::string& name, double t_s, int tid,
                       std::string args_json);
  // Flow events: a named arrow from a wall-clock point on the calling
  // thread's scheduler track ('s') to a simulated-time point ('f') with the
  // same flow id. Perfetto draws the link across the two processes.
  void add_flow_start_wall(const char* cat, const std::string& name,
                           std::uint64_t at_ns, std::uint64_t flow_id);
  void add_flow_end_sim(const char* cat, const std::string& name, double t_s,
                        int tid, std::uint64_t flow_id);
  // Metadata: names a process or thread track in the viewer.
  void set_process_name(int pid, const std::string& name);
  void set_thread_name(int pid, int tid, const std::string& name);

  // Nanoseconds since the recorder's epoch (its construction).
  std::uint64_t now_ns() const;
  // Stable per-OS-thread track id within the scheduler process.
  int current_tid();

  // Merged copy of every buffer, ts-sorted. Safe while recording.
  std::vector<TraceEvent> snapshot() const;
  std::size_t event_count() const;

  // {"traceEvents":[...],"displayTimeUnit":"ms"}
  void write_chrome_trace(std::ostream& os) const;

  // Drops all recorded events (buffers stay registered).
  void clear();

 private:
  struct ThreadBuffer {
    mutable std::mutex mu;
    std::vector<TraceEvent> events;  // guarded by mu
    int tid = 0;
  };
  ThreadBuffer& local_buffer();

  std::atomic<bool> enabled_{false};
  std::uint64_t epoch_ns_ = 0;
  mutable std::mutex mu_;  // guards buffers_ registration and next_tid_
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
  int next_tid_ = 1;
};

// RAII span: records a wall-clock complete event on the calling thread's
// track from construction to destruction. Disarmed (zero work beyond one
// relaxed load) when the recorder is off at entry.
class TraceSpan {
 public:
  TraceSpan(const char* cat, const char* name)
      : TraceSpan(cat, std::string(name)) {}
  TraceSpan(const char* cat, std::string name);
  ~TraceSpan();
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  bool armed_ = false;
  const char* cat_ = "";
  std::string name_;
  std::uint64_t begin_ns_ = 0;
};

}  // namespace rubick

#ifdef RUBICK_TELEMETRY_DISABLED
#define RUBICK_TRACE_SPAN(cat, name) \
  do {                               \
  } while (0)
#else
#define RUBICK_TRACE_SPAN_CONCAT2(a, b) a##b
#define RUBICK_TRACE_SPAN_CONCAT(a, b) RUBICK_TRACE_SPAN_CONCAT2(a, b)
// Scoped: the span covers the rest of the enclosing block.
#define RUBICK_TRACE_SPAN(cat, name)                                 \
  ::rubick::TraceSpan RUBICK_TRACE_SPAN_CONCAT(rubick_trace_span_,   \
                                               __LINE__)(cat, name)
#endif
