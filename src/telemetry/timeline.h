// Cluster telemetry: step-wise time series of utilization and queue state.
//
// The simulator records a sample at every scheduling event; reports
// time-weighted averages and coarse-grained buckets suitable for printing
// utilization curves next to the JCT tables (the kind of evidence behind
// the paper's "higher loads lead to more gains" claim in Fig. 10).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace rubick {

struct TimelineSample {
  double time_s = 0.0;
  int busy_gpus = 0;       // GPUs allocated to running jobs
  int total_gpus = 0;
  int running_jobs = 0;
  int pending_jobs = 0;
};

class ClusterTimeline {
 public:
  // Samples must arrive in non-decreasing time order; a sample at the same
  // timestamp replaces the previous one (several events can coincide).
  void record(const TimelineSample& sample);

  bool empty() const { return samples_.empty(); }
  std::size_t size() const { return samples_.size(); }
  const std::vector<TimelineSample>& samples() const { return samples_; }

  // Time-weighted mean GPU utilization in [0, 1] over [begin, end] of the
  // recorded span (step function: each sample holds until the next).
  double average_utilization() const;

  // Time-weighted mean number of queued jobs.
  double average_queue_length() const;

  // Fraction of the recorded span with every GPU busy.
  double fully_busy_fraction() const;

  // Step-function utilization at an instant (0 before the first sample).
  double utilization_at(double time_s) const;

  // Down-samples the step function into `buckets` equal time slices of mean
  // utilization — printable as a coarse utilization curve. An empty
  // timeline yields all zeros; a zero-length span (single sample, or all
  // samples coincident) repeats that constant level in every bucket.
  std::vector<double> utilization_buckets(int buckets) const;

  // Renders `buckets` as a one-line ASCII sparkline (0-100% -> ' ' .. '#').
  static std::string sparkline(const std::vector<double>& buckets);

 private:
  template <typename Fn>
  double time_weighted_mean(Fn value_of) const;

  std::vector<TimelineSample> samples_;
};

}  // namespace rubick
