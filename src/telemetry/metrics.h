// MetricsRegistry: process-wide counters, gauges and fixed-bucket
// histograms for the scheduler's internals (decision latency, cache
// hit/miss, pool occupancy, oracle evaluations, simulator events).
//
// Design points (DESIGN.md §8):
//
//   * Hot-path cheap. Every instrumentation macro starts with one relaxed
//     atomic load of the master switch; telemetry off (the default) costs
//     that load and a predicted-not-taken branch — nothing else runs, no
//     clock is read, no handle is resolved. Defining
//     RUBICK_TELEMETRY_DISABLED at compile time erases the macros entirely.
//   * Handles are stable. counter()/gauge()/histogram() return references
//     that live as long as the registry; macro call sites resolve their
//     handle once (function-local static) and then touch a single atomic.
//   * Values are exact. Counters and histogram bucket counts are
//     fetch_add'd, so hammering one counter from N threads loses nothing
//     (pinned by tests/test_metrics.cc).
//   * reset_values() zeroes every metric but never deallocates — cached
//     handles stay valid across runs and tests.
//
// The registry renders as JSON (`--metrics-out`); the catalogue of metric
// names lives in DESIGN.md §8.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace rubick {

namespace telemetry_detail {
// Master switch storage; use telemetry_enabled()/set_telemetry_enabled().
extern std::atomic<bool> g_enabled;
}  // namespace telemetry_detail

// True when instrumentation macros record. Off by default; the CLI enables
// it when any telemetry output is requested.
inline bool telemetry_enabled() {
  return telemetry_detail::g_enabled.load(std::memory_order_relaxed);
}
void set_telemetry_enabled(bool on);

// Monotonically increasing event count.
class Counter {
 public:
  void add(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

// Last-writer-wins instantaneous value.
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  void add(double v) { value_.fetch_add(v, std::memory_order_relaxed); }
  // Raises the gauge to `v` if larger (peak tracking).
  void max(double v) {
    double cur = value_.load(std::memory_order_relaxed);
    while (v > cur &&
           !value_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

// Fixed-bucket histogram: `bounds` are ascending inclusive upper bounds; an
// implicit +inf bucket catches the rest. Observation cost is a binary
// search over a handful of doubles plus three relaxed atomic adds.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double v);

  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  const std::vector<double>& bounds() const { return bounds_; }
  // bounds().size() + 1 entries; last is the +inf bucket.
  std::vector<std::uint64_t> bucket_counts() const;
  void reset();

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

// Default latency buckets: 1 us .. 10 s, one decade per pair (1x / 3x).
std::vector<double> latency_bounds_s();

class MetricsRegistry {
 public:
  // Process-wide instance used by the instrumentation macros. Never
  // destroyed, never shrunk — handles are stable for the process lifetime.
  static MetricsRegistry& global();

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  // `bounds` applies on first registration; later calls with the same name
  // return the existing histogram unchanged.
  Histogram& histogram(const std::string& name, std::vector<double> bounds);

  // Zeroes every metric value; registered handles stay valid.
  void reset_values();

  // Point-in-time reads for tests and reporting (0 when unregistered).
  std::uint64_t counter_value(const std::string& name) const;
  double gauge_value(const std::string& name) const;

  std::size_t size() const;

  // {"counters":{...},"gauges":{...},"histograms":{name:{"count":n,
  //  "sum":s,"buckets":[{"le":b,"count":c},...,{ "le":"+inf",...}]}}}
  void write_json(std::ostream& os) const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;    // guarded by mu_
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;        // guarded by mu_
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;  // guarded by mu_
};

// RAII wall-clock latency probe: observes seconds-into-histogram on scope
// exit. Reads the clock only when armed (telemetry enabled at entry).
class ScopedLatencyTimer {
 public:
  explicit ScopedLatencyTimer(Histogram* hist);
  ~ScopedLatencyTimer();
  ScopedLatencyTimer(const ScopedLatencyTimer&) = delete;
  ScopedLatencyTimer& operator=(const ScopedLatencyTimer&) = delete;

 private:
  Histogram* hist_;  // null when disarmed
  std::uint64_t begin_ns_ = 0;
};

}  // namespace rubick

// ---- Instrumentation macros ------------------------------------------------
// Each site resolves its metric handle once (block-scoped static) and only
// when telemetry is enabled; the disabled path is a relaxed load + branch.
// RUBICK_TELEMETRY_DISABLED compiles all of them to nothing.
#ifdef RUBICK_TELEMETRY_DISABLED

#define RUBICK_COUNTER_ADD(name, n) \
  do {                              \
  } while (0)
#define RUBICK_GAUGE_SET(name, v) \
  do {                            \
  } while (0)
#define RUBICK_HISTOGRAM_OBSERVE(name, bounds, v) \
  do {                                            \
  } while (0)
#define RUBICK_SCOPED_LATENCY_S(name) \
  do {                                \
  } while (0)

#else

#define RUBICK_COUNTER_ADD(name, n)                            \
  do {                                                         \
    if (::rubick::telemetry_enabled()) {                       \
      static ::rubick::Counter& rubick_metric_ =               \
          ::rubick::MetricsRegistry::global().counter(name);   \
      rubick_metric_.add(n);                                   \
    }                                                          \
  } while (0)

#define RUBICK_GAUGE_SET(name, v)                              \
  do {                                                         \
    if (::rubick::telemetry_enabled()) {                       \
      static ::rubick::Gauge& rubick_metric_ =                 \
          ::rubick::MetricsRegistry::global().gauge(name);     \
      rubick_metric_.set(v);                                   \
    }                                                          \
  } while (0)

#define RUBICK_HISTOGRAM_OBSERVE(name, bounds, v)                    \
  do {                                                               \
    if (::rubick::telemetry_enabled()) {                             \
      static ::rubick::Histogram& rubick_metric_ =                   \
          ::rubick::MetricsRegistry::global().histogram(name,        \
                                                        (bounds));   \
      rubick_metric_.observe(v);                                     \
    }                                                                \
  } while (0)

// Times the enclosing scope into a latency histogram (seconds). NOT inside
// do{}while — the RAII object must live to the end of the caller's scope.
#define RUBICK_SCOPED_LATENCY_S(name)                                      \
  ::rubick::ScopedLatencyTimer rubick_latency_timer_##__LINE__(            \
      ::rubick::telemetry_enabled()                                        \
          ? &::rubick::MetricsRegistry::global().histogram(               \
                name, ::rubick::latency_bounds_s())                        \
          : nullptr)

#endif  // RUBICK_TELEMETRY_DISABLED
