#include "telemetry/timeline.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace rubick {

void ClusterTimeline::record(const TimelineSample& sample) {
  RUBICK_CHECK(sample.total_gpus > 0);
  RUBICK_CHECK(sample.busy_gpus >= 0 &&
               sample.busy_gpus <= sample.total_gpus);
  if (!samples_.empty()) {
    RUBICK_CHECK_MSG(sample.time_s >= samples_.back().time_s,
                     "timeline samples must be time-ordered");
    if (sample.time_s == samples_.back().time_s) {
      samples_.back() = sample;
      return;
    }
  }
  samples_.push_back(sample);
}

template <typename Fn>
double ClusterTimeline::time_weighted_mean(Fn value_of) const {
  if (samples_.size() < 2) return samples_.empty() ? 0.0 : value_of(samples_[0]);
  double weighted = 0.0;
  double span = 0.0;
  for (std::size_t i = 0; i + 1 < samples_.size(); ++i) {
    const double dt = samples_[i + 1].time_s - samples_[i].time_s;
    weighted += value_of(samples_[i]) * dt;
    span += dt;
  }
  return span > 0.0 ? weighted / span : value_of(samples_.back());
}

double ClusterTimeline::average_utilization() const {
  return time_weighted_mean([](const TimelineSample& s) {
    return static_cast<double>(s.busy_gpus) / s.total_gpus;
  });
}

double ClusterTimeline::average_queue_length() const {
  return time_weighted_mean(
      [](const TimelineSample& s) { return static_cast<double>(s.pending_jobs); });
}

double ClusterTimeline::fully_busy_fraction() const {
  return time_weighted_mean([](const TimelineSample& s) {
    return s.busy_gpus == s.total_gpus ? 1.0 : 0.0;
  });
}

double ClusterTimeline::utilization_at(double time_s) const {
  // Step function: each sample holds until the next. Before the first
  // sample nothing has been recorded yet -> 0.
  const TimelineSample* last = nullptr;
  for (const TimelineSample& s : samples_) {
    if (s.time_s > time_s) break;
    last = &s;
  }
  if (last == nullptr) return 0.0;
  return static_cast<double>(last->busy_gpus) / last->total_gpus;
}

std::vector<double> ClusterTimeline::utilization_buckets(int buckets) const {
  RUBICK_CHECK(buckets > 0);
  std::vector<double> out(static_cast<std::size_t>(buckets), 0.0);
  if (samples_.empty()) return out;

  const double t0 = samples_.front().time_s;
  const double t1 = samples_.back().time_s;
  if (samples_.size() == 1 || t1 <= t0) {
    // Degenerate span (one sample, or several at the same instant): the
    // step function is a single constant level; every bucket shows it.
    const double util = static_cast<double>(samples_.back().busy_gpus) /
                        samples_.back().total_gpus;
    std::fill(out.begin(), out.end(), util);
    return out;
  }

  // Exact per-bucket integration of the step function: each inter-sample
  // segment contributes its overlap with every bucket it touches. The walk
  // is monotone in both segments and buckets (no epsilon stepping).
  const auto n = static_cast<std::size_t>(buckets);
  const double width = (t1 - t0) / buckets;
  std::vector<double> covered(n, 0.0);
  for (std::size_t i = 0; i + 1 < samples_.size(); ++i) {
    const double util =
        static_cast<double>(samples_[i].busy_gpus) / samples_[i].total_gpus;
    const double seg_begin = samples_[i].time_s;
    const double seg_end = samples_[i + 1].time_s;
    if (seg_end <= seg_begin) continue;  // coincident events
    auto b = std::min<std::size_t>(
        static_cast<std::size_t>((seg_begin - t0) / width), n - 1);
    for (; b < n; ++b) {
      const double bucket_begin = t0 + static_cast<double>(b) * width;
      const double bucket_end = b + 1 == n ? t1 : bucket_begin + width;
      const double overlap = std::min(seg_end, bucket_end) -
                             std::max(seg_begin, bucket_begin);
      if (overlap > 0.0) {
        out[b] += util * overlap;
        covered[b] += overlap;
      }
      if (bucket_end >= seg_end) break;
    }
  }
  for (std::size_t b = 0; b < n; ++b) {
    if (covered[b] > 0.0) {
      out[b] /= covered[b];
    } else {
      // A bucket narrower than float resolution can end up uncovered;
      // fall back to the step-function value at its midpoint instead of
      // reporting a spurious idle hole.
      out[b] = utilization_at(t0 + (static_cast<double>(b) + 0.5) * width);
    }
  }
  return out;
}

std::string ClusterTimeline::sparkline(const std::vector<double>& buckets) {
  static const char* kLevels = " .:-=+*#";
  std::string out;
  out.reserve(buckets.size());
  for (double u : buckets) {
    if (!std::isfinite(u)) u = 0.0;
    const int level = std::clamp(static_cast<int>(std::lround(u * 7.0)), 0, 7);
    out.push_back(kLevels[level]);
  }
  return out;
}

}  // namespace rubick
