#include "telemetry/timeline.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace rubick {

void ClusterTimeline::record(const TimelineSample& sample) {
  RUBICK_CHECK(sample.total_gpus > 0);
  RUBICK_CHECK(sample.busy_gpus >= 0 &&
               sample.busy_gpus <= sample.total_gpus);
  if (!samples_.empty()) {
    RUBICK_CHECK_MSG(sample.time_s >= samples_.back().time_s,
                     "timeline samples must be time-ordered");
    if (sample.time_s == samples_.back().time_s) {
      samples_.back() = sample;
      return;
    }
  }
  samples_.push_back(sample);
}

template <typename Fn>
double ClusterTimeline::time_weighted_mean(Fn value_of) const {
  if (samples_.size() < 2) return samples_.empty() ? 0.0 : value_of(samples_[0]);
  double weighted = 0.0;
  double span = 0.0;
  for (std::size_t i = 0; i + 1 < samples_.size(); ++i) {
    const double dt = samples_[i + 1].time_s - samples_[i].time_s;
    weighted += value_of(samples_[i]) * dt;
    span += dt;
  }
  return span > 0.0 ? weighted / span : value_of(samples_.back());
}

double ClusterTimeline::average_utilization() const {
  return time_weighted_mean([](const TimelineSample& s) {
    return static_cast<double>(s.busy_gpus) / s.total_gpus;
  });
}

double ClusterTimeline::average_queue_length() const {
  return time_weighted_mean(
      [](const TimelineSample& s) { return static_cast<double>(s.pending_jobs); });
}

double ClusterTimeline::fully_busy_fraction() const {
  return time_weighted_mean([](const TimelineSample& s) {
    return s.busy_gpus == s.total_gpus ? 1.0 : 0.0;
  });
}

std::vector<double> ClusterTimeline::utilization_buckets(int buckets) const {
  RUBICK_CHECK(buckets > 0);
  std::vector<double> out(static_cast<std::size_t>(buckets), 0.0);
  if (samples_.size() < 2) return out;
  const double t0 = samples_.front().time_s;
  const double t1 = samples_.back().time_s;
  if (t1 <= t0) return out;
  const double width = (t1 - t0) / buckets;

  std::vector<double> covered(static_cast<std::size_t>(buckets), 0.0);
  for (std::size_t i = 0; i + 1 < samples_.size(); ++i) {
    const double util =
        static_cast<double>(samples_[i].busy_gpus) / samples_[i].total_gpus;
    double begin = samples_[i].time_s;
    const double end = samples_[i + 1].time_s;
    while (begin < end) {
      const auto b = std::min<std::size_t>(
          static_cast<std::size_t>((begin - t0) / width),
          static_cast<std::size_t>(buckets - 1));
      const double bucket_end = t0 + (static_cast<double>(b) + 1.0) * width;
      const double chunk = std::min(end, bucket_end) - begin;
      out[b] += util * chunk;
      covered[b] += chunk;
      begin += chunk > 0.0 ? chunk : width * 1e-9;
    }
  }
  for (std::size_t b = 0; b < out.size(); ++b)
    out[b] = covered[b] > 0.0 ? out[b] / covered[b] : 0.0;
  return out;
}

std::string ClusterTimeline::sparkline(const std::vector<double>& buckets) {
  static const char* kLevels = " .:-=+*#";
  std::string out;
  out.reserve(buckets.size());
  for (double u : buckets) {
    const int level = std::clamp(static_cast<int>(std::lround(u * 7.0)), 0, 7);
    out.push_back(kLevels[level]);
  }
  return out;
}

}  // namespace rubick
