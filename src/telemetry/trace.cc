#include "telemetry/trace.h"

#include <algorithm>
#include <ostream>
#include <utility>

#include "common/jsonx.h"
#include "common/wallclock.h"

namespace rubick {

TraceRecorder::TraceRecorder() : epoch_ns_(monotonic_ns()) {}

TraceRecorder& TraceRecorder::global() {
  // Leaked on purpose, same rationale as MetricsRegistry::global():
  // thread-local buffer pointers and in-flight spans must outlive any
  // static destruction order.
  static TraceRecorder* recorder = new TraceRecorder();
  return *recorder;
}

void TraceRecorder::set_enabled(bool on) {
  enabled_.store(on, std::memory_order_relaxed);
}

std::uint64_t TraceRecorder::now_ns() const {
  return monotonic_ns() - epoch_ns_;
}

TraceRecorder::ThreadBuffer& TraceRecorder::local_buffer() {
  // One registration per (thread, recorder). The thread_local caches the
  // global recorder's buffer only; a non-global recorder (tests) registers
  // on every call — fine, tests are tiny.
  thread_local ThreadBuffer* cached = nullptr;
  thread_local TraceRecorder* cached_owner = nullptr;
  if (cached != nullptr && cached_owner == this) return *cached;
  std::lock_guard<std::mutex> lock(mu_);
  buffers_.push_back(std::make_unique<ThreadBuffer>());
  ThreadBuffer& buf = *buffers_.back();
  buf.tid = next_tid_++;
  if (this == &global()) {
    cached = &buf;
    cached_owner = this;
  }
  return buf;
}

int TraceRecorder::current_tid() { return local_buffer().tid; }

void TraceRecorder::add(TraceEvent event) {
  ThreadBuffer& buf = local_buffer();
  std::lock_guard<std::mutex> lock(buf.mu);
  buf.events.push_back(std::move(event));
}

void TraceRecorder::add_complete_wall(const char* cat, const std::string& name,
                                      std::uint64_t begin_ns,
                                      std::uint64_t end_ns,
                                      std::string args_json) {
  TraceEvent ev;
  ev.name = name;
  ev.cat = cat;
  ev.ph = 'X';
  ev.ts_us = static_cast<double>(begin_ns) * 1e-3;
  ev.dur_us = static_cast<double>(end_ns - begin_ns) * 1e-3;
  ev.pid = kTraceSchedulerPid;
  ev.tid = current_tid();
  ev.args_json = std::move(args_json);
  add(std::move(ev));
}

void TraceRecorder::add_complete_sim(const std::string& name, const char* cat,
                                     double begin_s, double end_s, int tid,
                                     std::string args_json) {
  TraceEvent ev;
  ev.name = name;
  ev.cat = cat;
  ev.ph = 'X';
  // Simulated seconds rendered as trace microseconds; only relative
  // extents matter inside the sim process.
  ev.ts_us = begin_s * 1e6;
  ev.dur_us = (end_s - begin_s) * 1e6;
  ev.pid = kTraceSimPid;
  ev.tid = tid;
  ev.args_json = std::move(args_json);
  add(std::move(ev));
}

void TraceRecorder::add_counter_sim(const std::string& name, double t_s,
                                    int tid, std::string args_json) {
  TraceEvent ev;
  ev.name = name;
  ev.cat = "sim";
  ev.ph = 'C';
  ev.ts_us = t_s * 1e6;
  ev.pid = kTraceSimPid;
  ev.tid = tid;
  ev.args_json = std::move(args_json);
  add(std::move(ev));
}

void TraceRecorder::add_flow_start_wall(const char* cat,
                                        const std::string& name,
                                        std::uint64_t at_ns,
                                        std::uint64_t flow_id) {
  TraceEvent ev;
  ev.name = name;
  ev.cat = cat;
  ev.ph = 's';
  ev.ts_us = static_cast<double>(at_ns) * 1e-3;
  ev.pid = kTraceSchedulerPid;
  ev.tid = current_tid();
  ev.flow_id = flow_id;
  add(std::move(ev));
}

void TraceRecorder::add_flow_end_sim(const char* cat, const std::string& name,
                                     double t_s, int tid,
                                     std::uint64_t flow_id) {
  TraceEvent ev;
  ev.name = name;
  ev.cat = cat;
  ev.ph = 'f';
  ev.ts_us = t_s * 1e6;
  ev.pid = kTraceSimPid;
  ev.tid = tid;
  ev.flow_id = flow_id;
  add(std::move(ev));
}

void TraceRecorder::set_process_name(int pid, const std::string& name) {
  TraceEvent ev;
  ev.name = "process_name";
  ev.ph = 'M';
  ev.pid = pid;
  ev.tid = 0;
  ev.args_json = "{\"name\": " + json_str(name) + "}";
  add(std::move(ev));
}

void TraceRecorder::set_thread_name(int pid, int tid,
                                    const std::string& name) {
  TraceEvent ev;
  ev.name = "thread_name";
  ev.ph = 'M';
  ev.pid = pid;
  ev.tid = tid;
  ev.args_json = "{\"name\": " + json_str(name) + "}";
  add(std::move(ev));
}

std::vector<TraceEvent> TraceRecorder::snapshot() const {
  std::vector<TraceEvent> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& buf : buffers_) {
      std::lock_guard<std::mutex> buf_lock(buf->mu);
      out.insert(out.end(), buf->events.begin(), buf->events.end());
    }
  }
  // Metadata first (viewers apply names before events), then by time.
  std::stable_sort(out.begin(), out.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     if ((a.ph == 'M') != (b.ph == 'M')) return a.ph == 'M';
                     return a.ts_us < b.ts_us;
                   });
  return out;
}

std::size_t TraceRecorder::event_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t n = 0;
  for (const auto& buf : buffers_) {
    std::lock_guard<std::mutex> buf_lock(buf->mu);
    n += buf->events.size();
  }
  return n;
}

void TraceRecorder::write_chrome_trace(std::ostream& os) const {
  const std::vector<TraceEvent> events = snapshot();
  os << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  bool first = true;
  for (const TraceEvent& ev : events) {
    os << (first ? "\n" : ",\n") << " {\"name\": " << json_str(ev.name)
       << ", \"ph\": \"" << ev.ph << "\"";
    if (!ev.cat.empty()) os << ", \"cat\": " << json_str(ev.cat);
    os << ", \"ts\": " << json_number(ev.ts_us);
    if (ev.ph == 'X') os << ", \"dur\": " << json_number(ev.dur_us);
    os << ", \"pid\": " << ev.pid << ", \"tid\": " << ev.tid;
    if (ev.ph == 's' || ev.ph == 't' || ev.ph == 'f') {
      os << ", \"id\": " << ev.flow_id;
      // Bind the flow end to the enclosing slice rather than the next one.
      if (ev.ph == 'f') os << ", \"bp\": \"e\"";
    }
    if (!ev.args_json.empty()) os << ", \"args\": " << ev.args_json;
    os << "}";
    first = false;
  }
  os << "\n]}\n";
}

void TraceRecorder::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& buf : buffers_) {
    std::lock_guard<std::mutex> buf_lock(buf->mu);
    buf->events.clear();
  }
}

TraceSpan::TraceSpan(const char* cat, std::string name) {
  TraceRecorder& rec = TraceRecorder::global();
  if (!rec.enabled()) return;
  armed_ = true;
  cat_ = cat;
  name_ = std::move(name);
  begin_ns_ = rec.now_ns();
}

TraceSpan::~TraceSpan() {
  if (!armed_) return;
  TraceRecorder& rec = TraceRecorder::global();
  rec.add_complete_wall(cat_, name_, begin_ns_, rec.now_ns());
}

}  // namespace rubick
