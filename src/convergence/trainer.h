// Training harness with data parallelism and gradient accumulation as real
// gradient partitionings (paper §7.2 "Accuracy during reconfiguration").
//
// A training step with global batch B, DP size d and GA steps a computes
//   grad = (1/(d*a)) * sum over d ranks, a micro-steps of micro-gradients,
// where each micro-gradient averages B/(d*a) samples. Mathematically this
// is independent of (d, a) — exactly Rubick's argument that keeping the
// global batch fixed preserves convergence. Partition boundaries change the
// float summation order, so different configurations (and reconfigurations
// mid-run) diverge only at round-off level, while changing the RNG seed
// changes initialization and data order outright. Table 3 compares the two
// spreads.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "convergence/dataset.h"
#include "convergence/mlp.h"

namespace rubick {

// One phase of a (possibly reconfigured) run: from step `from_step` on,
// train with the given DP size and GA steps.
struct TrainPhase {
  int from_step = 0;
  int dp = 1;
  int ga_steps = 1;
};

enum class OptimizerKind {
  kMomentumSgd,
  kAdam,  // what the paper's training jobs actually run
};

struct TrainerConfig {
  int steps = 3000;
  int global_batch = 64;
  int hidden = 16;
  OptimizerKind optimizer = OptimizerKind::kMomentumSgd;
  double learning_rate = 0.1;   // used by SGD; Adam uses adam_lr
  double momentum = 0.9;
  double adam_lr = 0.01;
  double adam_beta1 = 0.9;
  double adam_beta2 = 0.999;
  double adam_eps = 1e-8;
  std::uint64_t seed = 1;  // controls init AND data order
  // One default phase: the whole run at dp=1, ga=1. Count-constructed
  // rather than brace-initialized — GCC 12's maybe-uninitialized analysis
  // misfires on the initializer_list temporary when this NSDMI is inlined.
  std::vector<TrainPhase> phases = std::vector<TrainPhase>(1);
  int record_every = 50;  // loss-curve sampling interval
};

struct TrainResult {
  std::vector<double> loss_curve;  // train loss every record_every steps
  double final_train_loss = 0.0;
  double final_validation_loss = 0.0;
  double final_test_loss = 0.0;
};

// Full optimizer + sampler state at a step boundary — what Rubick's
// checkpoint-resume reconfiguration saves and restores. Training that is
// checkpointed, "relaunched" (possibly with a different DP/GA partitioning)
// and resumed is bit-identical to an uninterrupted run with the same phase
// schedule (see test_convergence).
struct TrainerCheckpoint {
  int step = 0;
  std::vector<float> params;
  std::vector<float> velocity;  // SGD momentum, or Adam first moment
  std::vector<float> second_moment;  // Adam only (empty for SGD)
  std::vector<int> perm;  // current epoch permutation
  int pos = 0;            // cursor into perm
  Rng order_rng{0};       // data-order RNG state
};

class Trainer {
 public:
  explicit Trainer(const DatasetSplits& data) : data_(&data) {}

  TrainResult train(const TrainerConfig& config) const;

  // Runs from `resume_from` (or from scratch when null) up to config.steps;
  // captures the end-of-run state into `capture` when non-null. The
  // loss_curve covers only the steps executed by this segment.
  TrainResult train_segment(const TrainerConfig& config,
                            const TrainerCheckpoint* resume_from,
                            TrainerCheckpoint* capture) const;

  // Exposed for property tests: the global-batch gradient computed with the
  // given partitioning (sum of per-rank, per-micro-step gradients in tree
  // order). Same (indices, model) with different (dp, ga) must agree to
  // float round-off.
  static std::vector<float> partitioned_gradient(const Mlp& model,
                                                 const Dataset& train,
                                                 const std::vector<int>& batch,
                                                 int dp, int ga_steps,
                                                 float* loss_out);

 private:
  const DatasetSplits* data_;
};

}  // namespace rubick
