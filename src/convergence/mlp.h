// A small two-layer MLP with binary cross-entropy loss — the model trained
// in the accuracy-preservation experiments. Deliberately implemented with
// float accumulations so that different gradient partitionings (DP ranks,
// GA micro-batches) produce bit-level different but mathematically
// equivalent updates, mirroring what happens on real hardware.
#pragma once

#include <cstdint>
#include <vector>

#include "convergence/dataset.h"

namespace rubick {

class Mlp {
 public:
  Mlp(int num_features, int hidden, std::uint64_t init_seed);

  int num_params() const { return static_cast<int>(params_.size()); }
  const std::vector<float>& params() const { return params_; }
  std::vector<float>& mutable_params() { return params_; }

  // Mean BCE loss over [begin, begin+count) of `data`, and the gradient of
  // that mean accumulated into `grad` (which must be zeroed by the caller
  // and have num_params() entries). Returns the loss.
  float loss_and_grad(const Dataset& data, const int* indices, int count,
                      std::vector<float>* grad) const;

  // Mean BCE loss over the whole dataset (no gradient).
  float loss(const Dataset& data) const;

 private:
  float forward(const float* x, std::vector<float>* hidden_out) const;

  int num_features_;
  int hidden_;
  // Layout: W1 [hidden x features], b1 [hidden], w2 [hidden], b2 [1].
  std::vector<float> params_;
};

}  // namespace rubick
