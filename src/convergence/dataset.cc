#include "convergence/dataset.h"

#include <cmath>

#include "common/error.h"
#include "common/rng.h"

namespace rubick {

DatasetSplits make_synthetic_dataset(int num_samples, int num_features,
                                     std::uint64_t seed) {
  RUBICK_CHECK(num_samples >= 10 && num_features >= 2);
  Rng rng(seed);

  // Teacher: x -> sign(w2 . tanh(W1 x)), a fixed random two-layer network.
  const int teacher_hidden = 8;
  std::vector<float> w1(static_cast<std::size_t>(teacher_hidden) *
                        num_features);
  std::vector<float> w2(static_cast<std::size_t>(teacher_hidden));
  for (auto& w : w1) w = static_cast<float>(rng.normal(0.0, 1.0));
  for (auto& w : w2) w = static_cast<float>(rng.normal(0.0, 1.0));

  Dataset all;
  all.num_features = num_features;
  all.features.resize(static_cast<std::size_t>(num_samples) * num_features);
  all.labels.resize(static_cast<std::size_t>(num_samples));

  for (int i = 0; i < num_samples; ++i) {
    float* x = &all.features[static_cast<std::size_t>(i) * num_features];
    for (int f = 0; f < num_features; ++f)
      x[f] = static_cast<float>(rng.normal(0.0, 1.0));
    double score = 0.0;
    for (int h = 0; h < teacher_hidden; ++h) {
      double pre = 0.0;
      for (int f = 0; f < num_features; ++f)
        pre += static_cast<double>(
                   w1[static_cast<std::size_t>(h) * num_features + f]) *
               x[f];
      score += w2[static_cast<std::size_t>(h)] * std::tanh(pre);
    }
    float label = score > 0.0 ? 1.0f : 0.0f;
    if (rng.bernoulli(0.05)) label = 1.0f - label;  // 5% label noise
    all.labels[static_cast<std::size_t>(i)] = label;
  }

  const int n_train = num_samples * 70 / 100;
  const int n_val = num_samples * 15 / 100;

  auto slice = [&](int begin, int count) {
    Dataset d;
    d.num_features = num_features;
    d.features.assign(
        all.features.begin() + static_cast<std::ptrdiff_t>(begin) * num_features,
        all.features.begin() +
            static_cast<std::ptrdiff_t>(begin + count) * num_features);
    d.labels.assign(all.labels.begin() + begin,
                    all.labels.begin() + begin + count);
    return d;
  };

  DatasetSplits splits;
  splits.train = slice(0, n_train);
  splits.validation = slice(n_train, n_val);
  splits.test = slice(n_train + n_val, num_samples - n_train - n_val);
  return splits;
}

}  // namespace rubick
