#include "convergence/mlp.h"

#include <cmath>

#include "common/error.h"
#include "common/rng.h"

namespace rubick {

Mlp::Mlp(int num_features, int hidden, std::uint64_t init_seed)
    : num_features_(num_features), hidden_(hidden) {
  RUBICK_CHECK(num_features >= 1 && hidden >= 1);
  params_.resize(static_cast<std::size_t>(hidden) * num_features + hidden +
                 hidden + 1);
  Rng rng(init_seed);
  const double scale = 1.0 / std::sqrt(static_cast<double>(num_features));
  for (auto& p : params_) p = static_cast<float>(rng.normal(0.0, scale));
}

namespace {
inline float sigmoidf(float z) {
  return 1.0f / (1.0f + std::exp(-z));
}
}  // namespace

float Mlp::forward(const float* x, std::vector<float>* hidden_out) const {
  const float* w1 = params_.data();
  const float* b1 = w1 + static_cast<std::size_t>(hidden_) * num_features_;
  const float* w2 = b1 + hidden_;
  const float b2 = *(w2 + hidden_);

  float out = b2;
  for (int h = 0; h < hidden_; ++h) {
    float pre = b1[h];
    const float* row = w1 + static_cast<std::size_t>(h) * num_features_;
    for (int f = 0; f < num_features_; ++f) pre += row[f] * x[f];
    const float act = std::tanh(pre);
    if (hidden_out != nullptr) (*hidden_out)[static_cast<std::size_t>(h)] = act;
    out += w2[h] * act;
  }
  return out;
}

float Mlp::loss_and_grad(const Dataset& data, const int* indices, int count,
                         std::vector<float>* grad) const {
  RUBICK_CHECK(grad != nullptr &&
               grad->size() == params_.size() && count > 0);
  const float* w1 = params_.data();
  const float* w2 =
      w1 + static_cast<std::size_t>(hidden_) * num_features_ + hidden_;
  float* g_w1 = grad->data();
  float* g_b1 = g_w1 + static_cast<std::size_t>(hidden_) * num_features_;
  float* g_w2 = g_b1 + hidden_;
  float* g_b2 = g_w2 + hidden_;

  std::vector<float> act(static_cast<std::size_t>(hidden_));
  float total_loss = 0.0f;
  const float inv = 1.0f / static_cast<float>(count);

  for (int i = 0; i < count; ++i) {
    const int idx = indices[i];
    const float* x = data.sample(idx);
    const float y = data.labels[static_cast<std::size_t>(idx)];
    const float logit = forward(x, &act);
    const float p = sigmoidf(logit);
    // Numerically stable BCE: log(1+exp(-|z|)) + max(z,0) - z*y.
    const float z = logit;
    total_loss += (std::log1p(std::exp(-std::abs(z))) + std::max(z, 0.0f) -
                   z * y) *
                  inv;

    const float dlogit = (p - y) * inv;
    *g_b2 += dlogit;
    for (int h = 0; h < hidden_; ++h) {
      const float a = act[static_cast<std::size_t>(h)];
      g_w2[h] += dlogit * a;
      const float dpre = dlogit * w2[h] * (1.0f - a * a);
      g_b1[h] += dpre;
      float* grow = g_w1 + static_cast<std::size_t>(h) * num_features_;
      for (int f = 0; f < num_features_; ++f) grow[f] += dpre * x[f];
    }
  }
  return total_loss;
}

float Mlp::loss(const Dataset& data) const {
  float total = 0.0f;
  const int n = data.num_samples();
  RUBICK_CHECK(n > 0);
  for (int i = 0; i < n; ++i) {
    const float z = forward(data.sample(i), nullptr);
    const float y = data.labels[static_cast<std::size_t>(i)];
    total += std::log1p(std::exp(-std::abs(z))) + std::max(z, 0.0f) - z * y;
  }
  return total / static_cast<float>(n);
}

}  // namespace rubick
