#include "convergence/trainer.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.h"
#include "common/rng.h"

namespace rubick {

std::vector<float> Trainer::partitioned_gradient(const Mlp& model,
                                                 const Dataset& train,
                                                 const std::vector<int>& batch,
                                                 int dp, int ga_steps,
                                                 float* loss_out) {
  const int b = static_cast<int>(batch.size());
  RUBICK_CHECK_MSG(b % (dp * ga_steps) == 0,
                   "global batch " << b << " not divisible by dp*ga = "
                                   << dp * ga_steps);
  const int micro = b / (dp * ga_steps);
  const std::size_t np = static_cast<std::size_t>(model.num_params());

  // Per-rank accumulation over `ga_steps` micro-batches (local fp32 sums),
  // then an all-reduce in rank order — the same shape real DP+GA training
  // has. Each micro-gradient is the mean over its micro-batch; the final
  // gradient is the mean of all micro-gradients.
  std::vector<std::vector<float>> rank_grad(
      static_cast<std::size_t>(dp), std::vector<float>(np, 0.0f));
  float loss = 0.0f;
  int cursor = 0;
  for (int step = 0; step < ga_steps; ++step) {
    for (int rank = 0; rank < dp; ++rank) {
      std::vector<float> micro_grad(np, 0.0f);
      loss += model.loss_and_grad(train, batch.data() + cursor, micro,
                                  &micro_grad);
      cursor += micro;
      auto& acc = rank_grad[static_cast<std::size_t>(rank)];
      for (std::size_t i = 0; i < np; ++i) acc[i] += micro_grad[i];
    }
  }

  std::vector<float> total(np, 0.0f);
  for (int rank = 0; rank < dp; ++rank) {  // ring-order reduction
    const auto& acc = rank_grad[static_cast<std::size_t>(rank)];
    for (std::size_t i = 0; i < np; ++i) total[i] += acc[i];
  }
  const float scale = 1.0f / static_cast<float>(dp * ga_steps);
  for (auto& g : total) g *= scale;
  if (loss_out != nullptr) *loss_out = loss * scale;
  return total;
}

TrainResult Trainer::train(const TrainerConfig& config) const {
  return train_segment(config, nullptr, nullptr);
}

TrainResult Trainer::train_segment(const TrainerConfig& config,
                                   const TrainerCheckpoint* resume_from,
                                   TrainerCheckpoint* capture) const {
  RUBICK_CHECK(!config.phases.empty());
  RUBICK_CHECK(config.phases.front().from_step == 0);
  const Dataset& train_set = data_->train;
  RUBICK_CHECK(train_set.num_samples() >= config.global_batch);

  Mlp model(train_set.num_features, config.hidden,
            hash_seed("init", config.seed));
  Rng order_rng(hash_seed("order", config.seed));

  std::vector<int> perm(static_cast<std::size_t>(train_set.num_samples()));
  std::iota(perm.begin(), perm.end(), 0);
  int pos = train_set.num_samples();  // force an initial shuffle

  std::vector<float> velocity(static_cast<std::size_t>(model.num_params()),
                              0.0f);
  std::vector<float> second_moment;
  if (config.optimizer == OptimizerKind::kAdam)
    second_moment.assign(static_cast<std::size_t>(model.num_params()), 0.0f);
  int start_step = 0;
  if (resume_from != nullptr) {
    RUBICK_CHECK(resume_from->params.size() == model.params().size());
    RUBICK_CHECK(resume_from->perm.size() == perm.size());
    model.mutable_params() = resume_from->params;
    velocity = resume_from->velocity;
    second_moment = resume_from->second_moment;
    perm = resume_from->perm;
    pos = resume_from->pos;
    order_rng = resume_from->order_rng;
    start_step = resume_from->step;
  }
  RUBICK_CHECK(start_step <= config.steps);

  TrainResult result;
  std::size_t phase_idx = 0;

  for (int step = start_step; step < config.steps; ++step) {
    while (phase_idx + 1 < config.phases.size() &&
           config.phases[phase_idx + 1].from_step <= step)
      ++phase_idx;
    const TrainPhase& phase = config.phases[phase_idx];

    // Draw the next global batch from the shuffled stream. The order
    // depends only on the seed — not on the partitioning — exactly like a
    // seeded distributed sampler resumed from a checkpoint.
    std::vector<int> batch(static_cast<std::size_t>(config.global_batch));
    for (int i = 0; i < config.global_batch; ++i) {
      if (pos >= train_set.num_samples()) {
        for (int j = train_set.num_samples() - 1; j > 0; --j) {
          const auto k =
              static_cast<std::size_t>(order_rng.uniform_int(0, j));
          std::swap(perm[static_cast<std::size_t>(j)], perm[k]);
        }
        pos = 0;
      }
      batch[static_cast<std::size_t>(i)] =
          perm[static_cast<std::size_t>(pos++)];
    }

    float loss = 0.0f;
    const std::vector<float> grad = partitioned_gradient(
        model, train_set, batch, phase.dp, phase.ga_steps, &loss);

    auto& params = model.mutable_params();
    if (config.optimizer == OptimizerKind::kAdam) {
      const auto lr = static_cast<float>(config.adam_lr);
      const auto b1 = static_cast<float>(config.adam_beta1);
      const auto b2 = static_cast<float>(config.adam_beta2);
      const auto eps = static_cast<float>(config.adam_eps);
      // Bias correction uses the global step count, so it survives
      // checkpoint-resume unchanged.
      const float c1 =
          1.0f - std::pow(b1, static_cast<float>(step + 1));
      const float c2 =
          1.0f - std::pow(b2, static_cast<float>(step + 1));
      for (std::size_t i = 0; i < params.size(); ++i) {
        velocity[i] = b1 * velocity[i] + (1.0f - b1) * grad[i];
        second_moment[i] =
            b2 * second_moment[i] + (1.0f - b2) * grad[i] * grad[i];
        const float m_hat = velocity[i] / c1;
        const float v_hat = second_moment[i] / c2;
        params[i] -= lr * m_hat / (std::sqrt(v_hat) + eps);
      }
    } else {
      const auto lr = static_cast<float>(config.learning_rate);
      const auto mu = static_cast<float>(config.momentum);
      for (std::size_t i = 0; i < params.size(); ++i) {
        velocity[i] = mu * velocity[i] + grad[i];
        params[i] -= lr * velocity[i];
      }
    }

    if (step % config.record_every == 0)
      result.loss_curve.push_back(static_cast<double>(loss));
  }

  result.final_train_loss = model.loss(data_->train);
  result.final_validation_loss = model.loss(data_->validation);
  result.final_test_loss = model.loss(data_->test);

  if (capture != nullptr) {
    capture->step = config.steps;
    capture->params = model.params();
    capture->velocity = velocity;
    capture->second_moment = second_moment;
    capture->perm = perm;
    capture->pos = pos;
    capture->order_rng = order_rng;
  }
  return result;
}

}  // namespace rubick
