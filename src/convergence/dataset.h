// Synthetic classification dataset for the accuracy-preservation experiment
// (paper Fig. 9 / Table 3).
//
// The paper validates that reconfiguration does not affect training accuracy
// by comparing loss curves across resource/plan changes against the spread
// caused by merely changing the random seed. We reproduce that mechanism
// with a miniature but *real* training loop: data, model and optimizer are
// actual computations, and DP / gradient accumulation are implemented as
// true partitionings of the same global batch (see trainer.h).
#pragma once

#include <cstdint>
#include <vector>

namespace rubick {

struct Dataset {
  int num_features = 0;
  // Row-major features, one label in {0, 1} per sample.
  std::vector<float> features;  // size = num_samples * num_features
  std::vector<float> labels;

  int num_samples() const {
    return num_features == 0
               ? 0
               : static_cast<int>(labels.size());
  }
  const float* sample(int i) const { return &features[static_cast<std::size_t>(i) * num_features]; }
};

struct DatasetSplits {
  Dataset train;
  Dataset validation;
  Dataset test;
};

// Generates a nonlinearly separable problem (two-layer teacher network plus
// label noise), split 70/15/15. Deterministic in `seed`; the same seed used
// by every execution-plan surrogate so only the training procedure varies.
DatasetSplits make_synthetic_dataset(int num_samples, int num_features,
                                     std::uint64_t seed);

}  // namespace rubick
