#include "trace/job.h"

#include "plan/memory_estimator.h"

#include <sstream>

#include "cluster/cluster.h"
#include "common/error.h"
#include "model/model_spec.h"
#include "perf/profiler.h"
#include "plan/enumerate.h"

namespace rubick {

std::string JobSpec::to_string() const {
  std::ostringstream os;
  os << "job" << id << "(" << model_name << ", req=" << requested.to_string()
     << ", plan=" << initial_plan.display_name() << ", b=" << global_batch
     << ", " << (guaranteed ? "guaranteed" : "best-effort") << "@" << tenant
     << ")";
  return os.str();
}

int min_feasible_gpus(const ModelSpec& model, int global_batch,
                      const ClusterSpec& cluster) {
  MemoryEstimator estimator;
  for (int g = 1; g <= cluster.total_gpus(); ++g) {
    PlanConstraints pc;
    pc.num_gpus = g;
    pc.max_tp = std::min(g, cluster.node.gpus);
    pc.budget = make_memory_budget(cluster, g);
    if (!enumerate_plans(model, global_batch, pc, estimator).empty()) return g;
  }
  RUBICK_CHECK_MSG(false, "model " << model.name
                                   << " infeasible even with the full cluster");
}

}  // namespace rubick
