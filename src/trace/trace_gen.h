// Synthetic Philly-like trace generation (paper §7.3 "Methodology").
//
// The paper down-samples the busiest 12 hours of the Microsoft Philly trace
// to 406 jobs for a 64-GPU cluster, assigns each job a random model from the
// zoo, fixes up infeasible GPU counts keeping GPU-hours constant, and
// translates durations into mini-batch targets via measured throughput.
// Three variants: Base (random feasible initial plan), BP (best initial plan
// for the requested resources) and MT (two tenants: A with a 64-GPU quota,
// all guaranteed; B quota-less, all best-effort).
#pragma once

#include <cstdint>
#include <vector>

#include "cluster/cluster.h"
#include "perf/oracle.h"
#include "trace/job.h"

namespace rubick {

enum class TraceVariant { kBase, kBestPlan, kMultiTenant };

struct TraceOptions {
  std::uint64_t seed = 1;
  TraceVariant variant = TraceVariant::kBase;
  int num_jobs = 406;
  double window_s = 12.0 * 3600.0;  // arrivals spread over 12 hours
  // Load multiplier (Fig. 10): scales the number of jobs in the window.
  double load_scale = 1.0;
  // Probability a job is a large model (LLaMA-2-7B / LLaMA-30B), Fig. 11.
  double large_model_fraction = 0.15;
};

class TraceGenerator {
 public:
  TraceGenerator(const ClusterSpec& cluster, const GroundTruthOracle& oracle);

  // Generates jobs sorted by submit time. Deterministic in opts.seed.
  std::vector<JobSpec> generate(const TraceOptions& opts) const;

 private:
  ClusterSpec cluster_;
  const GroundTruthOracle* oracle_;
};

}  // namespace rubick
