// Job specifications as submitted by users (paper §2.1, §5.1).
//
// A job requests a fixed amount of multi-dimensional resources and carries a
// user-chosen initial execution plan. Rubick's SLA: a *guaranteed* job must
// achieve at least the performance it would have with (requested resources,
// initial plan); *best-effort* jobs use free resources opportunistically and
// may be preempted.
#pragma once

#include <cstdint>
#include <string>

#include "common/resource.h"
#include "plan/execution_plan.h"

namespace rubick {

struct JobSpec {
  int id = 0;
  std::string model_name;

  double submit_time_s = 0.0;

  // User-requested resources (the gang-scheduling request).
  ResourceVector requested;

  int global_batch = 16;
  ExecutionPlan initial_plan;

  // Total training samples to process (duration translated through measured
  // throughput, as the paper does with mini-batch targets).
  double target_samples = 0.0;

  std::string tenant = "default";
  bool guaranteed = true;

  // Gradient noise scale relative to the global batch (Pollux/Sia): the
  // statistical efficiency of training at an effective batch of r times the
  // requested one is (noise + 1) / (noise + r). Larger values mean the job
  // tolerates batch scaling better.
  double grad_noise_rel = 2.0;

  std::string to_string() const;
};

// Computes the smallest GPU count at which any execution plan is feasible
// for the model (used to fix up infeasible trace requests, as the paper
// does: "In case the original GPU number is infeasible for the model, we use
// a feasible one and change the duration accordingly").
class MemoryEstimator;
struct ModelSpec;
struct ClusterSpec;
int min_feasible_gpus(const ModelSpec& model, int global_batch,
                      const ClusterSpec& cluster);

}  // namespace rubick
