// Trace serialization: save generated traces to CSV and load them back, so
// experiments can be re-run against the exact same workload from other
// tooling (or hand-edited). The format is one job per line:
//
//   id,model,submit_s,gpus,cpus,mem_bytes,batch,target_samples,tenant,
//   guaranteed,noise_rel,dp,tp,pp,ga,micro,zero,gc
//
// A single header line is required. Round-tripping is lossless
// (`test_trace_io.cc` checks field-for-field equality).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "trace/job.h"

namespace rubick {

// Writes the header plus one line per job.
void write_trace_csv(std::ostream& os, const std::vector<JobSpec>& jobs);
void write_trace_csv_file(const std::string& path,
                          const std::vector<JobSpec>& jobs);

// Parses a trace written by write_trace_csv. Throws InvariantError on
// malformed input (wrong column count, unknown model, invalid plan).
std::vector<JobSpec> read_trace_csv(std::istream& is);
std::vector<JobSpec> read_trace_csv_file(const std::string& path);

}  // namespace rubick
