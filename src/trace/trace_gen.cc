#include "trace/trace_gen.h"

#include "model/model_spec.h"
#include "perf/analytic.h"
#include "plan/execution_plan.h"
#include "plan/memory_estimator.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/error.h"
#include "common/rng.h"
#include "model/model_zoo.h"
#include "perf/profiler.h"
#include "plan/enumerate.h"

namespace rubick {

TraceGenerator::TraceGenerator(const ClusterSpec& cluster,
                               const GroundTruthOracle& oracle)
    : cluster_(cluster), oracle_(&oracle) {}

namespace {

// Philly-like GPU request distribution: dominated by 1-GPU jobs with a heavy
// multi-GPU tail (Jeon et al., ATC'19).
constexpr int kGpuChoices[] = {1, 2, 4, 8, 16, 32, 64};
constexpr double kGpuWeights[] = {0.40, 0.13, 0.15, 0.18, 0.06, 0.05, 0.03};

// Small-model mix (ViT, RoBERTa, BERT, T5, GPT-2).
constexpr const char* kSmallModels[] = {"ViT", "RoBERTa", "BERT", "T5",
                                        "GPT-2"};
constexpr double kSmallWeights[] = {0.20, 0.25, 0.25, 0.15, 0.15};

constexpr const char* kLargeModels[] = {"LLaMA-2-7B", "LLaMA-30B"};
constexpr double kLargeWeights[] = {0.75, 0.25};

}  // namespace

std::vector<JobSpec> TraceGenerator::generate(const TraceOptions& opts) const {
  Rng rng(opts.seed);
  MemoryEstimator estimator;

  const int n = std::max(
      1, static_cast<int>(std::lround(opts.num_jobs * opts.load_scale)));

  // Per-model cache of GPU counts with at least one feasible plan.
  std::map<std::string, std::vector<int>> feasible_cache;
  auto feasible_gpus = [&](const ModelSpec& model,
                           int batch) -> const std::vector<int>& {
    auto it = feasible_cache.find(model.name);
    if (it != feasible_cache.end()) return it->second;
    std::vector<int> counts;
    for (int g = 1; g <= cluster_.total_gpus(); ++g) {
      PlanConstraints pc;
      pc.num_gpus = g;
      pc.max_tp = std::min(g, cluster_.node.gpus);
      pc.budget = make_memory_budget(cluster_, g);
      if (!enumerate_plans(model, batch, pc, estimator).empty())
        counts.push_back(g);
    }
    RUBICK_CHECK_MSG(!counts.empty(), "no feasible GPU count for " << model.name);
    return feasible_cache.emplace(model.name, std::move(counts)).first->second;
  };

  std::vector<JobSpec> jobs;
  jobs.reserve(static_cast<std::size_t>(n));

  double arrival = 0.0;
  const double rate = static_cast<double>(n) / opts.window_s;

  for (int i = 0; i < n; ++i) {
    arrival += rng.exponential(rate);

    JobSpec job;
    job.id = i;
    job.submit_time_s = arrival;

    // Model.
    if (rng.bernoulli(opts.large_model_fraction)) {
      job.model_name = kLargeModels[rng.weighted_index(kLargeWeights, 2)];
    } else {
      job.model_name = kSmallModels[rng.weighted_index(kSmallWeights, 5)];
    }
    const ModelSpec& model = find_model(job.model_name);
    job.global_batch = model.default_global_batch;

    // Requested GPUs: draw, then snap to a feasible count keeping GPU-hours.
    int gpus = kGpuChoices[rng.weighted_index(kGpuWeights, 7)];
    // Large-model training is submitted at multi-GPU scale (nobody asks for
    // one GPU to pretrain a 7B/30B model); this is also what makes large
    // models the biggest beneficiaries of reconfigurability (Fig. 11 —
    // they can start early on fewer GPUs only if the scheduler can
    // reconfigure them).
    if (find_model(job.model_name).is_large_model())
      gpus = std::max(gpus, 8);
    // Durations calibrated so that the default 406-job/12-h trace carries
    // roughly 1.2x the cluster's GPU-hour capacity — the paper's makespans
    // (15-22 h for a 12 h window) indicate moderate, not pathological,
    // overload.
    double duration_s =
        std::clamp(rng.lognormal(std::log(900.0), 1.2), 240.0, 2.0 * 3600.0);
    const double gpu_time_s = gpus * duration_s;

    const std::vector<int>& counts = feasible_gpus(model, job.global_batch);
    if (std::find(counts.begin(), counts.end(), gpus) == counts.end()) {
      // Largest feasible count not above the request, else the minimum.
      int snapped = counts.front();
      for (int c : counts)
        if (c <= gpus) snapped = c;
      gpus = snapped;
      duration_s = gpu_time_s / gpus;  // keep the job's GPU-time unchanged
    }
    job.requested.gpus = gpus;
    job.requested.cpus = 4 * gpus;

    // Initial execution plan: random feasible (Base/MT) or the measured-best
    // for the requested allocation (BP).
    PlanConstraints pc;
    pc.num_gpus = gpus;
    pc.max_tp = std::min(gpus, cluster_.node.gpus);
    pc.budget = make_memory_budget(cluster_, gpus);
    const auto plans = enumerate_plans(model, job.global_batch, pc, estimator);
    RUBICK_CHECK(!plans.empty());
    const PerfContext ctx =
        make_perf_context(cluster_, gpus, job.requested.cpus);
    // Draw the random choice unconditionally so the RNG stream — and hence
    // every other attribute of the trace — is identical across variants.
    const auto random_pick = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(plans.size()) - 1));
    if (opts.variant == TraceVariant::kBestPlan) {
      const ExecutionPlan* best = nullptr;
      double best_thr = 0.0;
      for (const auto& p : plans) {
        const double thr =
            oracle_->measure_throughput(model, p, job.global_batch, ctx);
        if (best == nullptr || thr > best_thr) {
          best = &p;
          best_thr = thr;
        }
      }
      job.initial_plan = *best;
    } else {
      job.initial_plan = plans[random_pick];
    }

    // Memory request: what the initial plan needs.
    job.requested.memory_bytes =
        estimator.host_bytes(model, job.initial_plan);

    // Duration -> sample target "using the measured throughput of model
    // with the GPU number" (paper §7.3): the job's assigned configuration
    // defines its nominal rate, so a scheduler that runs the job exactly
    // as submitted finishes it in exactly `duration_s`.
    const double ref_thr = oracle_->measure_throughput(
        model, job.initial_plan, job.global_batch, ctx);
    job.target_samples = std::max(1.0, duration_s * ref_thr);

    // Gradient noise scale (Pollux-style batch-scaling tolerance).
    job.grad_noise_rel = rng.uniform(0.5, 4.0);

    // Tenancy.
    if (opts.variant == TraceVariant::kMultiTenant) {
      if (rng.bernoulli(0.5)) {
        job.tenant = "tenant-a";
        job.guaranteed = true;
      } else {
        job.tenant = "tenant-b";
        job.guaranteed = false;
      }
    } else {
      job.tenant = "default";
      job.guaranteed = true;
    }

    jobs.push_back(std::move(job));
  }

  std::sort(jobs.begin(), jobs.end(),
            [](const JobSpec& a, const JobSpec& b) {
              return a.submit_time_s < b.submit_time_s;
            });
  for (int i = 0; i < n; ++i) jobs[static_cast<std::size_t>(i)].id = i;
  return jobs;
}

}  // namespace rubick
