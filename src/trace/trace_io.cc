#include "trace/trace_io.h"

#include "plan/execution_plan.h"

#include <fstream>
#include <sstream>

#include "common/error.h"
#include "model/model_zoo.h"

namespace rubick {

namespace {

constexpr const char* kHeader =
    "id,model,submit_s,gpus,cpus,mem_bytes,batch,target_samples,tenant,"
    "guaranteed,noise_rel,dp,tp,pp,ga,micro,zero,gc";

std::vector<std::string> split(const std::string& line, char sep) {
  std::vector<std::string> out;
  std::string field;
  std::istringstream is(line);
  while (std::getline(is, field, sep)) out.push_back(field);
  // Trailing empty field after a terminal separator.
  if (!line.empty() && line.back() == sep) out.push_back("");
  return out;
}

}  // namespace

void write_trace_csv(std::ostream& os, const std::vector<JobSpec>& jobs) {
  os << kHeader << "\n";
  os.precision(17);
  for (const JobSpec& j : jobs) {
    RUBICK_CHECK_MSG(j.model_name.find(',') == std::string::npos &&
                         j.tenant.find(',') == std::string::npos,
                     "commas in names break the CSV format");
    os << j.id << ',' << j.model_name << ',' << j.submit_time_s << ','
       << j.requested.gpus << ',' << j.requested.cpus << ','
       << j.requested.memory_bytes << ',' << j.global_batch << ','
       << j.target_samples << ',' << j.tenant << ','
       << (j.guaranteed ? 1 : 0) << ',' << j.grad_noise_rel << ','
       << j.initial_plan.dp << ',' << j.initial_plan.tp << ','
       << j.initial_plan.pp << ',' << j.initial_plan.ga_steps << ','
       << j.initial_plan.micro_batches << ','
       << static_cast<int>(j.initial_plan.zero) << ','
       << (j.initial_plan.grad_ckpt ? 1 : 0) << "\n";
  }
}

void write_trace_csv_file(const std::string& path,
                          const std::vector<JobSpec>& jobs) {
  std::ofstream os(path);
  RUBICK_CHECK_MSG(os.good(), "cannot open " << path << " for writing");
  write_trace_csv(os, jobs);
}

std::vector<JobSpec> read_trace_csv(std::istream& is) {
  std::string line;
  RUBICK_CHECK_MSG(std::getline(is, line), "empty trace file");
  RUBICK_CHECK_MSG(line == kHeader,
                   "unexpected trace header; expected '" << kHeader << "'");

  std::vector<JobSpec> jobs;
  int lineno = 1;
  while (std::getline(is, line)) {
    ++lineno;
    if (line.empty()) continue;
    const auto f = split(line, ',');
    RUBICK_CHECK_MSG(f.size() == 18, "line " << lineno << ": expected 18 "
                                             << "fields, got " << f.size());
    JobSpec j;
    j.id = std::stoi(f[0]);
    j.model_name = f[1];
    RUBICK_CHECK_MSG(has_model(j.model_name),
                     "line " << lineno << ": unknown model " << j.model_name);
    j.submit_time_s = std::stod(f[2]);
    j.requested.gpus = std::stoi(f[3]);
    j.requested.cpus = std::stoi(f[4]);
    j.requested.memory_bytes = std::stoull(f[5]);
    j.global_batch = std::stoi(f[6]);
    j.target_samples = std::stod(f[7]);
    j.tenant = f[8];
    j.guaranteed = f[9] == "1";
    j.grad_noise_rel = std::stod(f[10]);
    j.initial_plan.dp = std::stoi(f[11]);
    j.initial_plan.tp = std::stoi(f[12]);
    j.initial_plan.pp = std::stoi(f[13]);
    j.initial_plan.ga_steps = std::stoi(f[14]);
    j.initial_plan.micro_batches = std::stoi(f[15]);
    const int zero = std::stoi(f[16]);
    RUBICK_CHECK_MSG(zero >= 0 && zero <= 3,
                     "line " << lineno << ": bad ZeRO stage " << zero);
    j.initial_plan.zero = static_cast<ZeroStage>(zero);
    j.initial_plan.grad_ckpt = f[17] == "1";
    RUBICK_CHECK_MSG(
        j.initial_plan.valid_for(find_model(j.model_name), j.global_batch),
        "line " << lineno << ": invalid plan "
                << j.initial_plan.display_name() << " for " << j.model_name);
    jobs.push_back(std::move(j));
  }
  return jobs;
}

std::vector<JobSpec> read_trace_csv_file(const std::string& path) {
  std::ifstream is(path);
  RUBICK_CHECK_MSG(is.good(), "cannot open " << path);
  return read_trace_csv(is);
}

}  // namespace rubick
