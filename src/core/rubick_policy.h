// The Rubick scheduling policy (paper §5, Algorithm 1).
//
// Goals:
//   1. Performance-guarantee SLA: every guaranteed job performs at least as
//      well as it would with its requested resources and initial plan —
//      enforced through a `minRes` search for the smallest allocation (and
//      possibly better plan) matching the baseline performance.
//   2. Maximize cluster throughput: resources flow to the jobs with the
//      steepest resource-sensitivity-curve slopes; the scheduler may shrink
//      the least-sensitive over-minimum jobs to feed more sensitive ones.
//
// Throughputs are normalized per job by the predicted baseline performance
// (a speedup factor, as in the paper's Fig. 8 and Pollux), so slopes are
// comparable across heterogeneous models.
//
// The same class implements the paper's ablations through RubickConfig:
//   Rubick    : reconfigure_plans + reallocate_resources
//   Rubick-E  : reconfigure_plans only (resources fixed at the request)
//   Rubick-R  : reallocate_resources only (plan family fixed, DP-scaled)
//   Rubick-N  : neither (placement policy only)
#pragma once

#include "perf/perf_store.h"
#include "trace/job.h"

#include <map>
#include <memory>
#include <string>

#include "core/decide_index.h"
#include "core/plan_selector.h"
#include "core/predictor.h"
#include "core/scheduler.h"
#include "core/sla.h"
#include "provenance/provenance.h"

namespace rubick {

struct RubickConfig {
  bool reconfigure_plans = true;
  bool reallocate_resources = true;
  // When reconfigure_plans is false: scale the initial plan's DP size with
  // the GPU count (Sia-style) instead of pinning the exact plan.
  bool scale_dp_when_fixed = true;

  // GPU quota per tenant for guaranteed jobs; tenants not listed are
  // unlimited. Quota is consumed by minRes GPUs (paper §5.2).
  std::map<std::string, int> tenant_quota_gpus;

  // Best-effort jobs queued longer than this get force-scheduled.
  double starvation_threshold_s = 3600.0;

  // When a guaranteed job's full minimum demand cannot be carved out yet,
  // admit it at its minimum feasible size instead of queueing; the policy
  // force-grows it toward minRes in subsequent rounds. Running small now
  // strictly dominates waiting for the full gang.
  bool opportunistic_admission = true;

  // Reconfigure a running job only if (T - N*delta)/T stays above this.
  double gate_threshold = 0.97;

  // Input-pipeline CPU floor per GPU; allocations never drop below it.
  int cpu_floor_per_gpu = 2;

  // Required predicted gain before switching the plan of a job whose
  // placement did not change (avoids reconfiguration thrash).
  double plan_switch_gain = 1.05;

  // Round-level incremental fast path: when a round's decision-relevant
  // inputs (job set, placements, plans, model-store version, gate/starvation
  // predicates — see DESIGN.md §9) hash to the same digest as the previous
  // round, replay the previous assignments instead of re-running the curve
  // and decision phases. Decisions are byte-identical either way; disable
  // only to measure the slow path.
  bool enable_fast_path = true;

  // Decide-phase implementation (DESIGN.md §14): `kIndexed` drives victim
  // selection off slope-ordered per-node heaps and an incrementally
  // maintained node ranking; `kLegacyScan` keeps the original full-fleet
  // scan loop as the executable spec. Byte-identical by contract — select
  // legacy only to measure it or to bisect an index regression
  // (`rubick_simulate --decide=legacy-scan`).
  DecideEngine decide_engine = DecideEngine::kIndexed;
};

class RubickPolicy final : public SchedulerPolicy {
 public:
  explicit RubickPolicy(RubickConfig config = {});

  std::string name() const override;
  std::vector<Assignment> schedule(const SchedulerInput& input) override;

  // Factory helpers for the paper's ablation variants.
  static RubickConfig full();
  static RubickConfig plans_only();      // Rubick-E
  static RubickConfig resources_only();  // Rubick-R
  static RubickConfig neither();         // Rubick-N

  // Aggregated predictor memo-cache tallies (zeros before the first round;
  // reset when the fitted-model store changes and the predictor rebinds).
  CacheStats cache_stats() const {
    return predictor_ != nullptr ? predictor_->cache_stats() : CacheStats{};
  }

  // Rounds served by replaying the previous round's assignments (digest
  // unchanged). Invalidated automatically by job arrivals/departures,
  // placement or plan changes, model-store refits, and gate/starvation
  // predicate flips.
  std::uint64_t fast_path_rounds() const { return fast_path_rounds_; }

 private:
  struct JobInfo;

  const PlanSelector& selector_for(const JobSpec& spec);

  RubickConfig config_;

  // Persistent across rounds; rebuilt when the fitted-model store changes.
  std::unique_ptr<BestPlanPredictor> predictor_;
  std::unique_ptr<SlaCalculator> sla_;
  const PerfModelStore* bound_store_ = nullptr;
  std::uint64_t bound_version_ = 0;

  FullPlanSelector full_selector_;
  std::map<int, std::unique_ptr<PlanSelector>> job_selectors_;

  // Round-digest fast path (config_.enable_fast_path).
  std::uint64_t last_digest_ = 0;
  bool has_last_round_ = false;
  std::vector<Assignment> last_assignments_;
  std::uint64_t fast_path_rounds_ = 0;

  // Provenance cache for fast-path replay: the decisions and trades of the
  // last slow round (filled only while a recorder is attached — see
  // SchedulerPolicy::set_provenance). A digest match re-emits these
  // verbatim, marked fast_path=true, so replayed rounds serialize
  // byte-identically to the round they replay. Attach the recorder before
  // the first schedule() call.
  std::vector<DecisionRecord> last_decisions_;
  std::vector<TradeEvent> last_trades_;
};

}  // namespace rubick
