#include "core/sla.h"

#include "cluster/cluster.h"
#include "common/resource.h"
#include "model/model_spec.h"
#include "perf/analytic.h"
#include "perf/fitter.h"
#include "perf/perf_store.h"

#include <algorithm>

#include "model/model_zoo.h"
#include "perf/profiler.h"

namespace rubick {

SlaCalculator::SlaCalculator(BestPlanPredictor& predictor,
                             const PerfModelStore& store,
                             const ClusterSpec& cluster,
                             int cpu_floor_per_gpu)
    : predictor_(&predictor),
      store_(&store),
      cluster_(cluster),
      cpu_floor_per_gpu_(cpu_floor_per_gpu) {}

double SlaCalculator::baseline_throughput(const JobSpec& spec) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = baseline_cache_.find(spec.id);
    if (it != baseline_cache_.end()) return it->second;
  }
  const ModelSpec& model = find_model(spec.model_name);
  const PerfModel& perf = store_->get(spec.model_name);
  const PerfContext ctx = make_perf_context(cluster_, spec.requested.gpus,
                                            spec.requested.cpus);
  double thr = 1e-9;
  if (spec.initial_plan.valid_for(model, spec.global_batch))
    thr = perf.predict_throughput(model, spec.initial_plan, spec.global_batch,
                                  ctx);
  std::lock_guard<std::mutex> lock(mu_);
  return baseline_cache_.emplace(spec.id, thr).first->second;
}

ResourceVector SlaCalculator::min_res(const JobSpec& spec,
                                      const PlanSelector& selector,
                                      bool fixed_resources) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = min_res_cache_.find(spec.id);
    if (it != min_res_cache_.end()) return it->second;
  }

  ResourceVector result;
  if (!spec.guaranteed) {
    result = ResourceVector::zero();  // best-effort: can shrink to nothing
  } else if (fixed_resources) {
    result = ResourceVector{spec.requested.gpus, spec.requested.cpus, 0};
  } else {
    // Smallest (gpus, cpus), component-wise <= requested, whose best plan
    // matches the baseline performance of (requested, initial plan).
    const ModelSpec& model = find_model(spec.model_name);
    const double baseline = baseline_throughput(spec);
    result = ResourceVector{spec.requested.gpus, spec.requested.cpus, 0};
    bool found = false;
    for (int g = 1; g <= spec.requested.gpus && !found; ++g) {
      const int floor_c = std::min(spec.requested.cpus,
                                   std::max(1, cpu_floor_per_gpu_ * g));
      for (int c : {floor_c, 2 * floor_c, spec.requested.cpus}) {
        if (c > spec.requested.cpus || c < 1) continue;
        const auto pred = predictor_->best_canonical(model, spec.global_batch,
                                                     selector, g, c);
        if (pred.feasible && pred.throughput >= baseline * 0.999) {
          result = ResourceVector{g, c, 0};
          found = true;
          break;
        }
      }
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  return min_res_cache_.emplace(spec.id, result).first->second;
}

void SlaCalculator::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  baseline_cache_.clear();
  min_res_cache_.clear();
}

}  // namespace rubick
