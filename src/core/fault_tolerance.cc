#include "core/fault_tolerance.h"

#include "cluster/placement.h"
#include "plan/execution_plan.h"

#include <algorithm>

#include "telemetry/metrics.h"

namespace rubick {

bool has_fault_state(const SchedulerInput& input) {
  if (input.any_node_down()) return true;
  for (const JobView& v : input.jobs)
    if (v.reconfig_failures > 0 || v.degraded ||
        v.retry_not_before_s > input.now)
      return true;
  return false;
}

namespace {

bool touches_down_node(const SchedulerInput& input, const Placement& p) {
  for (const auto& slice : p.slices)
    if (input.node_down(slice.node)) return true;
  return false;
}

// A degraded job may only run its last-known-good plan; substituting it into
// a fresh placement is legal only when the shapes line up (same GPU count,
// TP groups not split across nodes).
bool plan_fits_placement(const ExecutionPlan& plan, const Placement& p) {
  if (plan.num_gpus() != p.total_gpus()) return false;
  if (plan.tp > 1) {
    for (const auto& slice : p.slices)
      if (slice.gpus % plan.tp != 0) return false;
  }
  return true;
}

}  // namespace

void apply_fault_tolerance(const SchedulerInput& input,
                           std::vector<Assignment>& assignments) {
  if (!has_fault_state(input)) return;

  long degraded = 0;
  long retries = 0;
  auto dropped = [&](Assignment& a) {
    const JobView* view = nullptr;
    for (const JobView& v : input.jobs) {
      if (v.spec->id == a.job_id) {
        view = &v;
        break;
      }
    }
    if (view == nullptr) return false;  // simulator rejects unknown ids
    if (view->degraded) ++degraded;
    if (a.placement.empty()) return false;  // explicit "stay queued"

    // Down-node guard: never emit an assignment touching a down node.
    if (touches_down_node(input, a.placement)) return true;

    // Backoff gate: a queued job waits out its retry delay. (A running job
    // is never in backoff — failure requeues it first.)
    if (!view->running && input.now < view->retry_not_before_s) return true;

    if (view->degraded) {
      // Placements are left untouched (rewriting one could double-book
      // space the policy already handed to another job); only the plan is
      // pinned. An in-place plan switch collapses to "keep as-is" (a free
      // round); a move keeps the proven plan when the new placement can
      // host it.
      if (view->running && a.placement == view->placement) {
        a.plan = view->plan;
      } else if (view->has_last_good &&
                 plan_fits_placement(view->last_good_plan, a.placement)) {
        a.plan = view->last_good_plan;
      }
    }
    if (!view->running && view->reconfig_failures > 0) ++retries;
    return false;
  };

  assignments.erase(
      std::remove_if(assignments.begin(), assignments.end(), dropped),
      assignments.end());

  if (retries > 0) RUBICK_COUNTER_ADD("scheduler.retries", retries);
  RUBICK_GAUGE_SET("scheduler.degraded_jobs", static_cast<double>(degraded));
}

}  // namespace rubick
