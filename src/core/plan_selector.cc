#include "core/plan_selector.h"
#include "plan/memory_estimator.h"

#include <sstream>

namespace rubick {

PlanSpan PlanSelector::candidates_view(const ModelSpec& model,
                                       int global_batch,
                                       const PlanConstraints& constraints,
                                       const MemoryEstimator& estimator) const {
  return PlanSetCache::global().memoized(
      selector_id(), model, global_batch, constraints, estimator, [&] {
        return candidates(model, global_batch, constraints, estimator);
      });
}

std::vector<ExecutionPlan> FullPlanSelector::candidates(
    const ModelSpec& model, int global_batch,
    const PlanConstraints& constraints,
    const MemoryEstimator& estimator) const {
  return enumerate_plans(model, global_batch, constraints, estimator);
}

PlanSpan FullPlanSelector::candidates_view(
    const ModelSpec& model, int global_batch,
    const PlanConstraints& constraints,
    const MemoryEstimator& estimator) const {
  return PlanSetCache::global().full_feasible(model, global_batch, constraints,
                                              estimator);
}

std::vector<ExecutionPlan> ScaledDpSelector::candidates(
    const ModelSpec& model, int global_batch,
    const PlanConstraints& constraints,
    const MemoryEstimator& estimator) const {
  std::vector<ExecutionPlan> out;
  const int g = constraints.num_gpus;
  const int shard = initial_.tp * initial_.pp;
  if (g % shard != 0) return out;
  if (initial_.tp > constraints.max_tp) return out;

  ExecutionPlan scaled = initial_;
  scaled.dp = g / shard;
  // Re-pick the GA steps (or keep micro-batching) so the batch divides.
  if (scaled.pp > 1) {
    if (scaled.valid_for(model, global_batch) &&
        estimator.fits(model, scaled, global_batch, constraints.budget))
      out.push_back(scaled);
  } else {
    for (int a : {1, 2, 4, 8, 16}) {
      ExecutionPlan candidate = scaled;
      candidate.ga_steps = a;
      if (!candidate.valid_for(model, global_batch)) continue;
      if (!estimator.fits(model, candidate, global_batch, constraints.budget))
        continue;
      out.push_back(candidate);
    }
  }
  return out;
}

std::string ScaledDpSelector::cache_key() const {
  // Encodes every field of the initial plan that candidates() reads —
  // display_name() alone elides micro_batches and the exact GA count, which
  // would alias distinct behaviors in the memoized plan cache.
  std::ostringstream os;
  os << "scaled-dp:" << initial_.display_name() << ":t" << initial_.tp << "p"
     << initial_.pp << "a" << initial_.ga_steps << "m"
     << initial_.micro_batches << "z" << static_cast<int>(initial_.zero)
     << (initial_.grad_ckpt ? "gc" : "");
  return os.str();
}

std::vector<ExecutionPlan> FixedPlanSelector::candidates(
    const ModelSpec& model, int global_batch,
    const PlanConstraints& constraints,
    const MemoryEstimator& estimator) const {
  std::vector<ExecutionPlan> out;
  if (constraints.num_gpus != plan_.num_gpus()) return out;
  if (plan_.tp > constraints.max_tp) return out;
  if (!plan_.valid_for(model, global_batch)) return out;
  if (!estimator.fits(model, plan_, global_batch, constraints.budget))
    return out;
  out.push_back(plan_);
  return out;
}

std::string FixedPlanSelector::cache_key() const {
  std::ostringstream os;
  os << "fixed:" << plan_.display_name() << ":g" << plan_.num_gpus() << "d"
     << plan_.dp << "t" << plan_.tp << "p" << plan_.pp << "a" << plan_.ga_steps
     << "m" << plan_.micro_batches << "z" << static_cast<int>(plan_.zero)
     << (plan_.grad_ckpt ? "gc" : "");
  return os.str();
}

}  // namespace rubick
