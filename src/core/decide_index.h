// Incremental indexes for the decide phase of Algorithm 1 (DESIGN.md §14).
//
// The legacy decide loop (`DecideEngine::kLegacyScan`) finds each GPU/CPU
// victim by scanning every job in the round — re-evaluating the
// sensitivity-curve slopes of every candidate on every probe — and rebuilds
// and re-sorts the node visit order once per scheduled job. That is
// O(jobs² × gpus) per cold round. `DecideIndex` replaces those scans with
// three structures that are maintained incrementally as the round's
// `AllocState` changes:
//
//   1. Per-node slope-ordered victim heaps with LAZY DELETION. Every job
//      carries a state version that is bumped whenever its allocation
//      changes (take/give-back of GPUs or CPUs, release, freeze changes);
//      heap entries record the version they were pushed at and are dropped
//      on pop when stale. `gpu_victim`/`cpu_victim` pop the minimum-slope
//      eligible candidate instead of scanning. The heap key is
//      (slope, infos index), which replicates the legacy scan's tie-break
//      exactly: the FIRST job in `infos` order among equal lowest slopes.
//   2. A memoized per-job slope cache (gpu_up / gpu_down / cpu_up /
//      cpu_down), invalidated by the same versions. Values are computed
//      with byte-identical expressions to the legacy lambdas, so decisions
//      and provenance (TradeEvent slopes) are bit-for-bit the same.
//   3. A shared node ranking (speed desc, then free GPUs desc, then node
//      id) repositioned in place as free counts change, replacing the
//      per-job rebuild + std::sort in grow_allocation/gang_place.
//
// The index observes `AllocState` through the AllocListener seam and is
// rolled back in lockstep with `AllocState::restore` via mark()/rollback()
// (a journal of touched jobs/nodes; single-level marks, matching the
// snapshot discipline of ScheduleJob).
//
// CONCURRENCY: none. The decide phase is single-threaded per round (see
// DESIGN.md §6); DecideIndex is a round-local object owned by one thread.
#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "cluster/cluster.h"
#include "common/resource.h"
#include "core/alloc_state.h"
#include "core/plan_selector.h"
#include "core/predictor.h"
#include "model/model_spec.h"

namespace rubick {

// Which implementation drives the decide phase of Algorithm 1.
// `kIndexed` (production) uses DecideIndex; `kLegacyScan` keeps the
// original full-fleet scan loop as the executable specification. The two
// are byte-identical by contract (identical Assignment vectors, identical
// provenance records) — `kLegacyScan` exists for bisecting regressions and
// for the differential tests/CI check, exactly like SimEngine::kLegacyScan.
enum class DecideEngine { kIndexed, kLegacyScan };

// Shared node-visit comparator: faster nodes first (a gang job paces at its
// slowest GPU), then emptier free-GPU pools, then ascending node id. The id
// tie-break makes this a TOTAL order, so the incremental ranking and the
// legacy per-job std::sort resolve ties identically (std::sort gives no
// ordering guarantee between equivalent keys, and the two engines must
// visit nodes in the same order to place byte-identical slices).
struct NodeOrderLess {
  const ClusterSpec* cluster = nullptr;
  const AllocState* state = nullptr;

  bool operator()(int a, int b) const {
    const double sa = cluster->speed_of(a);
    const double sb = cluster->speed_of(b);
    if (sa != sb) return sa > sb;
    const int fa = state->free_gpus(a);
    const int fb = state->free_gpus(b);
    if (fa != fb) return fa > fb;
    return a < b;
  }
};

class DecideIndex final : public AllocListener {
 public:
  // Round-constant facts about one job, registered in `infos` order (the
  // registration index IS the victim tie-break rank). `min_res` must be the
  // job's true minimum demand: the temporary overrides the policy applies
  // during opportunistic/starvation admission affect only the CLAIMANT,
  // which is excluded from its own victim searches, so candidate
  // eligibility always reads the un-overridden value — same as the legacy
  // scan at its call sites.
  struct JobMeta {
    int job_id = 0;
    const ModelSpec* model = nullptr;
    int global_batch = 0;
    const PlanSelector* selector = nullptr;
    double baseline = 1.0;
    ResourceVector min_res;
    bool guaranteed = false;
    bool frozen = false;
  };

  struct Stats {
    std::uint64_t heap_pops = 0;          // victim-heap entries popped
    std::uint64_t stale_entries = 0;      // lazily-deleted entries dropped
    std::uint64_t slope_evals = 0;        // slopes computed via the predictor
    std::uint64_t slope_evals_saved = 0;  // slope reads served by the memo
  };

  // `victim_heaps` may be false for gang-placement variants (Rubick-E/-N):
  // they never query victims, so the index skips the heap fill (and its
  // slope evaluations) and maintains only the node ranking.
  DecideIndex(const ClusterSpec& cluster, const AllocState* state,
              BestPlanPredictor* predictor, int cpu_floor_per_gpu,
              bool victim_heaps);
  ~DecideIndex() override;

  DecideIndex(const DecideIndex&) = delete;
  DecideIndex& operator=(const DecideIndex&) = delete;

  // Registers a job; returns its index (== infos position). All jobs must
  // be registered, in order, before build().
  int add_job(const JobMeta& meta);

  // Fills the victim heaps and the node ranking from the current AllocState
  // (call once, after add_job and after `state` registered the running
  // placements; attach via AllocState::set_listener first so subsequent
  // mutations are tracked).
  void build();

  // Memoized normalized slopes — byte-identical to the legacy lambdas in
  // RubickPolicy::schedule (same predictor calls, same g/c clamping, same
  // division by the job baseline).
  double gpu_up(int idx);
  double gpu_down(int idx);
  double cpu_up(int idx);
  double cpu_down(int idx);

  // Minimum-slope eligible victim on `node`, or -1. Eligibility and
  // tie-break replicate the legacy scans exactly (see rubick_policy.cc).
  // `exclude` is a job id (the claimant); `allow_frozen` admits
  // recently-reconfigured jobs, as for below-minimum claimants.
  int gpu_victim(int node, int exclude, bool allow_frozen);
  int cpu_victim(int node, int exclude, bool allow_frozen);

  // Nodes ordered by NodeOrderLess, kept current across allocation changes.
  const std::vector<int>& ranked_nodes() const { return ranked_; }

  // Freeze-state change: bumps the job's version so cached heap entries are
  // invalidated (the policy currently fixes frozen flags before build(),
  // but the index does not rely on that).
  void set_frozen(int idx, bool frozen);

  // Rollback seam, used in lockstep with AllocState::snapshot()/restore():
  // mark() before the snapshot, rollback(mark) right after a restore (bumps
  // every job touched since the mark, re-indexes it from the restored
  // state, and re-sorts the node ranking wholesale — restore() moves many
  // keys at once, which the single-key reposition() repair cannot handle),
  // commit(mark) on success. Marks are single-level — ScheduleJob's
  // snapshot discipline — so commit may simply truncate the journal.
  std::size_t mark() const { return journal_.size(); }
  void rollback(std::size_t mark);
  void commit(std::size_t mark);

  // AllocListener: one allocation slice changed (take/give-back/release).
  void on_slice_changed(int job, int node) override;

  const Stats& stats() const { return stats_; }

 private:
  enum SlopeKind { kGpuUp = 0, kGpuDown = 1, kCpuUp = 2, kCpuDown = 3 };

  struct SlopeMemo {
    std::uint64_t version = ~std::uint64_t{0};
    unsigned have = 0;  // bitmask over SlopeKind
    double value[4] = {0.0, 0.0, 0.0, 0.0};
  };

  struct Job {
    JobMeta meta;
    std::uint64_t version = 0;
    SlopeMemo memo;
  };

  // Victim-heap entry: min-heap on (slope, idx); `version` stales out
  // entries whose job state changed since the push.
  struct Entry {
    double slope = 0.0;
    int idx = 0;
    std::uint64_t version = 0;
  };
  struct EntryGreater {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.slope != b.slope) return a.slope > b.slope;
      if (a.idx != b.idx) return a.idx > b.idx;
      return a.version > b.version;
    }
  };

  double slope(int idx, SlopeKind kind);
  // Version-invariant eligibility at the entry's (current) version; a
  // false result lets the pop drop the entry permanently — the job cannot
  // become eligible again without a version bump, which re-pushes it.
  bool gpu_eligible(const Job& job, int node);
  bool cpu_eligible(const Job& job, int node);
  // Bumps the job's version and pushes fresh entries for every node where
  // it currently holds GPUs (gpu heaps) / CPUs (cpu heaps).
  void reindex_job(int idx);
  void push_entries(int idx);
  // Restores the ranking position of `node` after its free-GPU count
  // changed (in-place bubble; amortized O(1) for ±small deltas).
  void reposition(int node);
  int generic_victim(std::vector<std::vector<Entry>>& heaps, int node,
                     int exclude, bool allow_frozen, bool gpu);

  ClusterSpec cluster_;
  const AllocState* state_;
  BestPlanPredictor* predictor_;
  int cpu_floor_per_gpu_;
  bool victim_heaps_;
  bool built_ = false;

  std::vector<Job> jobs_;
  std::unordered_map<int, int> idx_of_;  // job id -> registration index

  // One binary min-heap per node (std::push_heap/pop_heap over a vector,
  // EntryGreater order).
  std::vector<std::vector<Entry>> gpu_heaps_;
  std::vector<std::vector<Entry>> cpu_heaps_;

  // Node ranking: ranked_[r] = node id at rank r; pos_[node] = its rank.
  std::vector<int> ranked_;
  std::vector<int> pos_;

  // Mutation journal for rollback: (job id, node) per AllocState change.
  std::vector<std::pair<int, int>> journal_;

  // Scratch for victim queries: entries popped but skipped for
  // query-variant reasons (the excluded claimant, frozen without
  // allow_frozen) plus the winner, re-pushed after the query.
  std::vector<Entry> scratch_;

  Stats stats_;
};

}  // namespace rubick
