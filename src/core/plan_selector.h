// Plan selectors: which execution plans a scheduler may consider for a job.
//
// Rubick searches the full reconfiguration space; the ablations and
// baselines restrict it (paper §7.3):
//   * FullPlanSelector    — every feasible plan (Rubick, Rubick-E).
//   * ScaledDpSelector    — the job's initial plan with only the DP size
//                           scaled, Sia-style (Sia, Rubick-R).
//   * FixedPlanSelector   — exactly the initial plan, exactly its GPU count
//                           (Rubick-N, Synergy, AntMan).
#pragma once

#include "common/intern.h"
#include "plan/memory_estimator.h"

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "model/model_spec.h"
#include "plan/enumerate.h"
#include "plan/execution_plan.h"
#include "plan/plan_cache.h"

namespace rubick {

class PlanSelector {
 public:
  virtual ~PlanSelector() = default;

  // Candidate plans using exactly `constraints.num_gpus` GPUs; must already
  // be filtered for validity and memory feasibility.
  virtual std::vector<ExecutionPlan> candidates(
      const ModelSpec& model, int global_batch,
      const PlanConstraints& constraints,
      const MemoryEstimator& estimator) const = 0;

  // Cached view of candidates(): identical contents and order, backed by
  // the process-wide PlanSetCache arena, so steady-state queries allocate
  // nothing. The base implementation memoizes candidates() under
  // selector_id(); FullPlanSelector overrides it to share enumerated lists
  // across budget classes via budget-monotonic filtering.
  virtual PlanSpan candidates_view(const ModelSpec& model, int global_batch,
                                   const PlanConstraints& constraints,
                                   const MemoryEstimator& estimator) const;

  // Human-readable behavior label (distinct selector behaviors must differ).
  // Used only for logs/diagnostics; memoization keys use selector_id().
  virtual std::string cache_key() const = 0;

  // Stable numeric identity for CurveKey memoization, interned from
  // cache_key() on first use. Thread-safe; equal labels get equal ids.
  std::uint32_t selector_id() const {
    std::uint32_t id = interned_id_.load(std::memory_order_relaxed);
    if (id == 0) {
      id = intern_key_string(cache_key());
      interned_id_.store(id, std::memory_order_relaxed);
    }
    return id;
  }

 private:
  mutable std::atomic<std::uint32_t> interned_id_{0};
};

class FullPlanSelector final : public PlanSelector {
 public:
  std::vector<ExecutionPlan> candidates(
      const ModelSpec& model, int global_batch,
      const PlanConstraints& constraints,
      const MemoryEstimator& estimator) const override;
  PlanSpan candidates_view(const ModelSpec& model, int global_batch,
                           const PlanConstraints& constraints,
                           const MemoryEstimator& estimator) const override;
  std::string cache_key() const override { return "full"; }
};

class ScaledDpSelector final : public PlanSelector {
 public:
  explicit ScaledDpSelector(ExecutionPlan initial_plan)
      : initial_(initial_plan) {}

  // Keeps the plan's TP/PP sizes, ZeRO stage and GC flag; adjusts the DP
  // size to fill the GPU count and the GA steps / micro-batch count to keep
  // the global batch divisible.
  std::vector<ExecutionPlan> candidates(
      const ModelSpec& model, int global_batch,
      const PlanConstraints& constraints,
      const MemoryEstimator& estimator) const override;
  std::string cache_key() const override;

 private:
  ExecutionPlan initial_;
};

class FixedPlanSelector final : public PlanSelector {
 public:
  explicit FixedPlanSelector(ExecutionPlan plan) : plan_(plan) {}

  std::vector<ExecutionPlan> candidates(
      const ModelSpec& model, int global_batch,
      const PlanConstraints& constraints,
      const MemoryEstimator& estimator) const override;
  std::string cache_key() const override;

 private:
  ExecutionPlan plan_;
};

}  // namespace rubick
