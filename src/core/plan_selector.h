// Plan selectors: which execution plans a scheduler may consider for a job.
//
// Rubick searches the full reconfiguration space; the ablations and
// baselines restrict it (paper §7.3):
//   * FullPlanSelector    — every feasible plan (Rubick, Rubick-E).
//   * ScaledDpSelector    — the job's initial plan with only the DP size
//                           scaled, Sia-style (Sia, Rubick-R).
//   * FixedPlanSelector   — exactly the initial plan, exactly its GPU count
//                           (Rubick-N, Synergy, AntMan).
#pragma once

#include <memory>
#include <vector>

#include "model/model_spec.h"
#include "plan/enumerate.h"
#include "plan/execution_plan.h"

namespace rubick {

class PlanSelector {
 public:
  virtual ~PlanSelector() = default;

  // Candidate plans using exactly `constraints.num_gpus` GPUs; must already
  // be filtered for validity and memory feasibility.
  virtual std::vector<ExecutionPlan> candidates(
      const ModelSpec& model, int global_batch,
      const PlanConstraints& constraints,
      const MemoryEstimator& estimator) const = 0;

  // Stable key for memoization (distinct selector behaviors must differ).
  virtual std::string cache_key() const = 0;
};

class FullPlanSelector final : public PlanSelector {
 public:
  std::vector<ExecutionPlan> candidates(
      const ModelSpec& model, int global_batch,
      const PlanConstraints& constraints,
      const MemoryEstimator& estimator) const override;
  std::string cache_key() const override { return "full"; }
};

class ScaledDpSelector final : public PlanSelector {
 public:
  explicit ScaledDpSelector(ExecutionPlan initial_plan)
      : initial_(initial_plan) {}

  // Keeps the plan's TP/PP sizes, ZeRO stage and GC flag; adjusts the DP
  // size to fill the GPU count and the GA steps / micro-batch count to keep
  // the global batch divisible.
  std::vector<ExecutionPlan> candidates(
      const ModelSpec& model, int global_batch,
      const PlanConstraints& constraints,
      const MemoryEstimator& estimator) const override;
  std::string cache_key() const override;

 private:
  ExecutionPlan initial_;
};

class FixedPlanSelector final : public PlanSelector {
 public:
  explicit FixedPlanSelector(ExecutionPlan plan) : plan_(plan) {}

  std::vector<ExecutionPlan> candidates(
      const ModelSpec& model, int global_batch,
      const PlanConstraints& constraints,
      const MemoryEstimator& estimator) const override;
  std::string cache_key() const override;

 private:
  ExecutionPlan plan_;
};

}  // namespace rubick
