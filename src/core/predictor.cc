#include "core/predictor.h"

#include "common/intern.h"
#include "model/model_spec.h"
#include "perf/analytic.h"
#include "perf/fitter.h"
#include "plan/enumerate.h"
#include "plan/execution_plan.h"
#include "plan/memory_estimator.h"
#include "plan/plan_cache.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "perf/profiler.h"
#include "telemetry/metrics.h"

namespace rubick {

BestPlanPredictor::BestPlanPredictor(const ClusterSpec& cluster,
                                     const PerfModelStore& store,
                                     const MemoryEstimator& estimator)
    : cluster_(cluster), store_(&store), estimator_(&estimator) {}

PlanConstraints BestPlanPredictor::constraints_for(int gpus,
                                                   int max_tp) const {
  PlanConstraints pc;
  pc.num_gpus = gpus;
  pc.max_tp = std::min(max_tp, cluster_.node.gpus);
  pc.budget = make_memory_budget(cluster_, gpus);
  return pc;
}

namespace {

// Complexity score for tie-breaking: among plans predicted within float
// noise of each other, prefer the structurally simplest (plain DP before
// GA/GC/ZeRO variants, fewer shards before more).
int plan_complexity(const ExecutionPlan& p) {
  return (p.ga_steps - 1) + (p.grad_ckpt ? 1 : 0) +
         (p.zero != ZeroStage::kNone ? 2 : 0) + 4 * (p.tp - 1) +
         4 * (p.pp - 1);
}

constexpr double kTieRel = 1e-9;

// Sentinel max_tp values distinguishing the derived caches that reuse
// CurveKey as their key type (exact-plan keys always carry max_tp >= 1,
// envelope keys -1).
constexpr int kWidthsKey = -2;
constexpr int kSummaryKey = -3;

CurveKey make_key(const ModelSpec& model, int batch,
                  const PlanSelector& selector, int gpus, int cpus,
                  int max_tp, bool multi_node) {
  CurveKey k;
  k.model_id = intern_key_string_cached(model.name);
  k.selector_id = selector.selector_id();
  k.batch = batch;
  k.gpus = gpus;
  k.cpus = cpus;
  k.max_tp = max_tp;
  k.multi_node = multi_node;
  return k;
}

}  // namespace

std::size_t BestPlanPredictor::RankedKeyHash::operator()(
    const RankedKey& k) const noexcept {
  std::uint64_t h = std::hash<CurveKey>{}(k.base);
  const auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  for (const NodeSlice& s : k.slices) {
    mix(static_cast<std::uint64_t>(static_cast<std::uint32_t>(s.node)));
    mix(static_cast<std::uint64_t>(static_cast<std::uint32_t>(s.gpus)));
    mix(static_cast<std::uint64_t>(static_cast<std::uint32_t>(s.cpus)));
  }
  return static_cast<std::size_t>(h);
}

BestPlanPredictor::Prediction BestPlanPredictor::best_exact(
    const ModelSpec& model, int global_batch, const PlanSelector& selector,
    int gpus, int cpus, int max_tp, bool multi_node) {
  if (gpus <= 0 || cpus <= 0) return {};
  const CurveKey key =
      make_key(model, global_batch, selector, gpus, cpus, max_tp, multi_node);
  if (Prediction cached; exact_cache_.lookup(key, &cached)) return cached;

  const PlanConstraints pc = constraints_for(gpus, max_tp);
  const PlanSpan plans =
      selector.candidates_view(model, global_batch, pc, *estimator_);
  Prediction best;
  // No candidate plan at this exact count: skip the perf-context and
  // fitted-model work entirely; the result is the default (infeasible,
  // zero-throughput) prediction either way.
  if (plans.empty()) return exact_cache_.insert(key, best);

  PerfContext ctx = make_perf_context(cluster_, gpus, cpus);
  ctx.multi_node = multi_node;
  const PerfModel& perf = store_->get(model.name);

  for (const auto& plan : plans) {
    const double thr =
        perf.predict_throughput(model, plan, global_batch, ctx);
    const bool wins =
        !best.feasible || thr > best.throughput * (1.0 + kTieRel) ||
        (thr > best.throughput * (1.0 - kTieRel) &&
         plan_complexity(plan) < plan_complexity(best.plan));
    if (wins) {
      best.feasible = true;
      best.throughput = thr;
      best.plan = plan;
    }
  }
  return exact_cache_.insert(key, best);
}

BestPlanPredictor::Prediction BestPlanPredictor::best_canonical(
    const ModelSpec& model, int global_batch, const PlanSelector& selector,
    int gpus, int cpus) {
  const bool multi = gpus > cluster_.node.gpus;
  const int max_tp = std::min(gpus, cluster_.node.gpus);
  return best_exact(model, global_batch, selector, gpus, cpus, max_tp, multi);
}

std::shared_ptr<const std::vector<BestPlanPredictor::Prediction>>
BestPlanPredictor::ranked_for_placement(const ModelSpec& model,
                                        int global_batch,
                                        const PlanSelector& selector,
                                        const Placement& placement) {
  const int gpus = placement.total_gpus();
  const int cpus = placement.total_cpus();
  const int max_tp = std::max(1, placement.min_slice_gpus());
  // Static so callers may deref a temporary return value safely: every
  // pointer this function hands out stays alive for the process (cached
  // entries are never evicted).
  static const auto kNoPlans = std::make_shared<const std::vector<Prediction>>();
  if (gpus <= 0 || cpus <= 0) return kNoPlans;

  RankedKey key;
  key.base = make_key(model, global_batch, selector, gpus, cpus, max_tp,
                      placement.multi_node());
  key.slices.reserve(placement.slices.size());
  for (const auto& s : placement.slices)
    key.slices.push_back(NodeSlice{s.node, s.gpus, s.cpus, 0});
  if (std::shared_ptr<const std::vector<Prediction>> cached;
      ranked_cache_.lookup(key, &cached))
    return cached;

  const PlanConstraints pc = constraints_for(gpus, max_tp);
  const PlanSpan plans =
      selector.candidates_view(model, global_batch, pc, *estimator_);
  const PerfContext ctx = make_perf_context(cluster_, placement);
  const PerfModel& perf = store_->get(model.name);

  auto out = std::make_shared<std::vector<Prediction>>();
  out->reserve(plans.size());
  for (const auto& plan : plans) {
    // A TP group must sit inside one node: every slice must hold whole
    // groups (checked again by the simulator).
    if (plan.tp > 1) {
      bool ok = true;
      for (const auto& s : placement.slices)
        if (s.gpus % plan.tp != 0) ok = false;
      if (!ok) continue;
    }
    Prediction p;
    p.feasible = true;
    p.plan = plan;
    p.throughput = perf.predict_throughput(model, plan, global_batch, ctx);
    out->push_back(p);
  }
  std::sort(out->begin(), out->end(),
            [](const Prediction& a, const Prediction& b) {
              if (a.throughput > b.throughput * (1.0 + kTieRel)) return true;
              if (b.throughput > a.throughput * (1.0 + kTieRel)) return false;
              return plan_complexity(a.plan) < plan_complexity(b.plan);
            });
  return ranked_cache_.insert(
      key, std::shared_ptr<const std::vector<Prediction>>(std::move(out)));
}

std::shared_ptr<const std::vector<int>> BestPlanPredictor::feasible_widths(
    const ModelSpec& model, int global_batch, const PlanSelector& selector) {
  const CurveKey key = make_key(model, global_batch, selector, /*gpus=*/0,
                                /*cpus=*/0, kWidthsKey, /*multi_node=*/false);
  if (std::shared_ptr<const std::vector<int>> cached;
      widths_cache_.lookup(key, &cached))
    return cached;

  // Candidate sets ignore the CPU count, so feasibility-by-width is a
  // property of the combo alone; one pass over the cluster range (served by
  // the plan cache) classifies every GPU count for all future chains.
  auto widths = std::make_shared<std::vector<int>>();
  const int total = cluster_.total_gpus();
  for (int g = 1; g <= total; ++g) {
    const PlanConstraints pc =
        constraints_for(g, std::min(g, cluster_.node.gpus));
    if (!selector.candidates_view(model, global_batch, pc, *estimator_)
             .empty())
      widths->push_back(g);
  }
  return widths_cache_.insert(
      key, std::shared_ptr<const std::vector<int>>(std::move(widths)));
}

BestPlanPredictor::CurveSummary BestPlanPredictor::curve_summary(
    const ModelSpec& model, int global_batch, const PlanSelector& selector,
    int cpu_floor_per_gpu, int max_gpus) {
  max_gpus = std::min(max_gpus, cluster_.total_gpus());
  if (max_gpus <= 0) return {};
  const CurveKey key = make_key(model, global_batch, selector, max_gpus,
                                cpu_floor_per_gpu, kSummaryKey,
                                /*multi_node=*/false);
  if (CurveSummary cached; summary_cache_.lookup(key, &cached)) return cached;

  // The saturation scan must replicate the policy's progressive
  // tie-tolerance walk exactly (the running maximum updates only on a
  // relative improvement > 1e-9, so the landmark is path-dependent and
  // cannot be bisected) — but over memoized envelope values it is one
  // cheap pass per combo instead of one per job per round.
  CurveSummary s;
  int best_g = 1;
  double best_v = 0.0;
  for (int g = 1; g <= max_gpus; ++g) {
    const int c = std::max(1, cpu_floor_per_gpu * g);
    const double v = envelope(model, global_batch, selector, g, c);
    if (s.min_feasible_gpus == 0 && v > 0.0) s.min_feasible_gpus = g;
    if (v > best_v * (1.0 + 1e-9)) {
      best_v = v;
      best_g = g;
    }
  }
  s.max_useful_gpus = best_v > 0.0 ? best_g : 0;
  return summary_cache_.insert(key, s);
}

void BestPlanPredictor::warm(const ModelSpec& model, int global_batch,
                             const PlanSelector& selector, int max_gpus,
                             int cpus_per_gpu, ThreadPool* pool) {
  max_gpus = std::min(max_gpus, cluster_.total_gpus());
  if (max_gpus <= 0) return;
  if (pool == nullptr) pool = &ThreadPool::global();
  // Classify feasible widths once up front so the chains below only touch
  // the analytic model where the curve can actually move.
  feasible_widths(model, global_batch, selector);
  // Each GPU count gets its own CPU budget, so the envelope chains for
  // different g are (cache-)independent of each other — an embarrassingly
  // parallel fan-out. Work grows with g (envelope(g) visits every smaller
  // count), so the atomic index counter doubles as dynamic load balancing.
  pool->parallel_for(1, static_cast<std::size_t>(max_gpus) + 1,
                     [&](std::size_t g) {
                       const int gi = static_cast<int>(g);
                       envelope(model, global_batch, selector, gi,
                                std::max(1, cpus_per_gpu * gi));
                     });
  // Pre-fill the curve landmarks over the just-warmed diagonal so the
  // decision loop's summary queries are pure cache hits.
  curve_summary(model, global_batch, selector, cpus_per_gpu, max_gpus);
}

double BestPlanPredictor::envelope(const ModelSpec& model, int global_batch,
                                   const PlanSelector& selector, int gpus,
                                   int cpus) {
  if (gpus <= 0 || cpus <= 0) return 0.0;
  gpus = std::min(gpus, cluster_.total_gpus());
  const CurveKey key = make_key(model, global_batch, selector, gpus, cpus,
                                /*max_tp=*/-1, /*multi_node=*/false);
  if (double cached = 0.0; envelope_cache_.lookup(key, &cached)) return cached;

  // Iterative chain fill, equivalent to the recursion
  //   env(g, c) = max(env(g-1, c), best_canonical(g, c))
  // but evaluating best_canonical only at feasible widths: at every other
  // count the candidate set is empty, best_canonical contributes a zero
  // throughput, and the max simply carries env(g-1, c) forward. Locating
  // the feasible counts is a binary search into the combo's sorted width
  // set, so saturated/flat tails cost one cache insert per point and zero
  // analytic-model evaluations.
  int start = gpus - 1;
  double value = 0.0;
  {
    CurveKey probe = key;
    for (; start >= 1; --start) {
      probe.gpus = start;
      if (envelope_cache_.lookup(probe, &value)) break;
    }
    if (start < 1) {
      start = 0;
      value = 0.0;
    }
  }

  const std::shared_ptr<const std::vector<int>> widths =
      feasible_widths(model, global_batch, selector);
  auto next_w = std::upper_bound(widths->begin(), widths->end(), start);
  std::uint64_t evals_saved = 0;
  CurveKey put = key;
  for (int g = start + 1; g <= gpus; ++g) {
    if (next_w != widths->end() && *next_w == g) {
      const Prediction p =
          best_canonical(model, global_batch, selector, g, cpus);
      value = std::max(value, p.throughput);
      ++next_w;
    } else {
      ++evals_saved;
    }
    put.gpus = g;
    value = envelope_cache_.insert(put, value);
  }
  if (evals_saved > 0)
    RUBICK_COUNTER_ADD("predictor.curve_evals_saved", evals_saved);
  return value;
}

double BestPlanPredictor::gpu_slope_up(const ModelSpec& model,
                                       int global_batch,
                                       const PlanSelector& selector, int gpus,
                                       int cpus) {
  // Average slope to the NEXT point where the envelope actually rises. On
  // flat stretches (invalid GPU counts) the adjacent difference is zero and
  // would make reallocation decisions myopic: gaining/losing 2 GPUs across
  // an invalid count has a well-defined per-GPU value.
  const int total = cluster_.total_gpus();
  if (gpus >= total) return 0.0;
  const double here = envelope(model, global_batch, selector, gpus, cpus);
  for (int g2 = gpus + 1; g2 <= total; ++g2) {
    const double there = envelope(model, global_batch, selector, g2, cpus);
    if (there > here * (1.0 + kTieRel) + 1e-12)
      return (there - here) / static_cast<double>(g2 - gpus);
  }
  return 0.0;
}

double BestPlanPredictor::gpu_slope_down(const ModelSpec& model,
                                         int global_batch,
                                         const PlanSelector& selector,
                                         int gpus, int cpus) {
  // Average slope down to the start of the PREVIOUS flat stretch: when a
  // job shrinks below a valid count, the GPUs stranded on the flat stretch
  // are worthless to it (commit trims them back to the pool), so the loss
  // is amortized over all of them.
  if (gpus <= 0) return 0.0;
  const double here = envelope(model, global_batch, selector, gpus, cpus);
  if (here <= 0.0) return 0.0;
  for (int g1 = gpus - 1; g1 >= 0; --g1) {
    const double there =
        g1 == 0 ? 0.0 : envelope(model, global_batch, selector, g1, cpus);
    if (there < here * (1.0 - kTieRel) - 1e-12) {
      // Walk to the smallest count still achieving `there`.
      int g2 = g1;
      while (g2 > 0 &&
             envelope(model, global_batch, selector, g2 - 1, cpus) >=
                 there * (1.0 - kTieRel) - 1e-12)
        --g2;
      return (here - there) / static_cast<double>(gpus - g2);
    }
  }
  return 0.0;
}

double BestPlanPredictor::cpu_slope_up(const ModelSpec& model,
                                       int global_batch,
                                       const PlanSelector& selector, int gpus,
                                       int cpus) {
  return envelope(model, global_batch, selector, gpus, cpus + 1) -
         envelope(model, global_batch, selector, gpus, cpus);
}

double BestPlanPredictor::cpu_slope_down(const ModelSpec& model,
                                         int global_batch,
                                         const PlanSelector& selector,
                                         int gpus, int cpus) {
  if (cpus <= 1) return 0.0;
  return envelope(model, global_batch, selector, gpus, cpus) -
         envelope(model, global_batch, selector, gpus, cpus - 1);
}

}  // namespace rubick
