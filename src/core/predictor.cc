#include "core/predictor.h"

#include <algorithm>

#include "common/error.h"
#include "perf/profiler.h"

namespace rubick {

BestPlanPredictor::BestPlanPredictor(const ClusterSpec& cluster,
                                     const PerfModelStore& store,
                                     const MemoryEstimator& estimator)
    : cluster_(cluster), store_(&store), estimator_(&estimator) {}

PlanConstraints BestPlanPredictor::constraints_for(int gpus,
                                                   int max_tp) const {
  PlanConstraints pc;
  pc.num_gpus = gpus;
  pc.max_tp = std::min(max_tp, cluster_.node.gpus);
  pc.budget = make_memory_budget(cluster_, gpus);
  return pc;
}

namespace {

// Complexity score for tie-breaking: among plans predicted within float
// noise of each other, prefer the structurally simplest (plain DP before
// GA/GC/ZeRO variants, fewer shards before more).
int plan_complexity(const ExecutionPlan& p) {
  return (p.ga_steps - 1) + (p.grad_ckpt ? 1 : 0) +
         (p.zero != ZeroStage::kNone ? 2 : 0) + 4 * (p.tp - 1) +
         4 * (p.pp - 1);
}

constexpr double kTieRel = 1e-9;

CurveKey make_key(const ModelSpec& model, int batch,
                  const PlanSelector& selector, int gpus, int cpus,
                  int max_tp, bool multi_node) {
  CurveKey k;
  k.model_id = intern_key_string(model.name);
  k.selector_id = selector.selector_id();
  k.batch = batch;
  k.gpus = gpus;
  k.cpus = cpus;
  k.max_tp = max_tp;
  k.multi_node = multi_node;
  return k;
}

}  // namespace

BestPlanPredictor::Prediction BestPlanPredictor::best_exact(
    const ModelSpec& model, int global_batch, const PlanSelector& selector,
    int gpus, int cpus, int max_tp, bool multi_node) {
  if (gpus <= 0 || cpus <= 0) return {};
  const CurveKey key =
      make_key(model, global_batch, selector, gpus, cpus, max_tp, multi_node);
  if (Prediction cached; exact_cache_.lookup(key, &cached)) return cached;

  const PlanConstraints pc = constraints_for(gpus, max_tp);
  const std::vector<ExecutionPlan> plans =
      selector.candidates(model, global_batch, pc, *estimator_);
  PerfContext ctx = make_perf_context(cluster_, gpus, cpus);
  ctx.multi_node = multi_node;
  const PerfModel& perf = store_->get(model.name);

  Prediction best;
  for (const auto& plan : plans) {
    const double thr =
        perf.predict_throughput(model, plan, global_batch, ctx);
    const bool wins =
        !best.feasible || thr > best.throughput * (1.0 + kTieRel) ||
        (thr > best.throughput * (1.0 - kTieRel) &&
         plan_complexity(plan) < plan_complexity(best.plan));
    if (wins) {
      best.feasible = true;
      best.throughput = thr;
      best.plan = plan;
    }
  }
  return exact_cache_.insert(key, best);
}

BestPlanPredictor::Prediction BestPlanPredictor::best_canonical(
    const ModelSpec& model, int global_batch, const PlanSelector& selector,
    int gpus, int cpus) {
  const bool multi = gpus > cluster_.node.gpus;
  const int max_tp = std::min(gpus, cluster_.node.gpus);
  return best_exact(model, global_batch, selector, gpus, cpus, max_tp, multi);
}

std::vector<BestPlanPredictor::Prediction>
BestPlanPredictor::ranked_for_placement(const ModelSpec& model,
                                        int global_batch,
                                        const PlanSelector& selector,
                                        const Placement& placement) {
  std::vector<Prediction> out;
  const int gpus = placement.total_gpus();
  const int cpus = placement.total_cpus();
  if (gpus <= 0 || cpus <= 0) return out;

  const PlanConstraints pc =
      constraints_for(gpus, std::max(1, placement.min_slice_gpus()));
  const std::vector<ExecutionPlan> plans =
      selector.candidates(model, global_batch, pc, *estimator_);
  const PerfContext ctx = make_perf_context(cluster_, placement);
  const PerfModel& perf = store_->get(model.name);

  out.reserve(plans.size());
  for (const auto& plan : plans) {
    // A TP group must sit inside one node: every slice must hold whole
    // groups (checked again by the simulator).
    if (plan.tp > 1) {
      bool ok = true;
      for (const auto& s : placement.slices)
        if (s.gpus % plan.tp != 0) ok = false;
      if (!ok) continue;
    }
    Prediction p;
    p.feasible = true;
    p.plan = plan;
    p.throughput = perf.predict_throughput(model, plan, global_batch, ctx);
    out.push_back(p);
  }
  std::sort(out.begin(), out.end(),
            [](const Prediction& a, const Prediction& b) {
              if (a.throughput > b.throughput * (1.0 + kTieRel)) return true;
              if (b.throughput > a.throughput * (1.0 + kTieRel)) return false;
              return plan_complexity(a.plan) < plan_complexity(b.plan);
            });
  return out;
}

void BestPlanPredictor::warm(const ModelSpec& model, int global_batch,
                             const PlanSelector& selector, int max_gpus,
                             int cpus_per_gpu, ThreadPool* pool) {
  max_gpus = std::min(max_gpus, cluster_.total_gpus());
  if (max_gpus <= 0) return;
  if (pool == nullptr) pool = &ThreadPool::global();
  // Each GPU count gets its own CPU budget, so the envelope chains for
  // different g are (cache-)independent of each other — an embarrassingly
  // parallel fan-out. Work grows with g (envelope(g) visits every smaller
  // count), so the atomic index counter doubles as dynamic load balancing.
  pool->parallel_for(1, static_cast<std::size_t>(max_gpus) + 1,
                     [&](std::size_t g) {
                       const int gi = static_cast<int>(g);
                       envelope(model, global_batch, selector, gi,
                                std::max(1, cpus_per_gpu * gi));
                     });
}

double BestPlanPredictor::envelope(const ModelSpec& model, int global_batch,
                                   const PlanSelector& selector, int gpus,
                                   int cpus) {
  if (gpus <= 0 || cpus <= 0) return 0.0;
  gpus = std::min(gpus, cluster_.total_gpus());
  const CurveKey key = make_key(model, global_batch, selector, gpus, cpus,
                                /*max_tp=*/-1, /*multi_node=*/false);
  if (double cached = 0.0; envelope_cache_.lookup(key, &cached)) return cached;

  double value = 0.0;
  if (gpus > 1)
    value = envelope(model, global_batch, selector, gpus - 1, cpus);
  const Prediction p =
      best_canonical(model, global_batch, selector, gpus, cpus);
  value = std::max(value, p.throughput);
  return envelope_cache_.insert(key, value);
}

double BestPlanPredictor::gpu_slope_up(const ModelSpec& model,
                                       int global_batch,
                                       const PlanSelector& selector, int gpus,
                                       int cpus) {
  // Average slope to the NEXT point where the envelope actually rises. On
  // flat stretches (invalid GPU counts) the adjacent difference is zero and
  // would make reallocation decisions myopic: gaining/losing 2 GPUs across
  // an invalid count has a well-defined per-GPU value.
  const int total = cluster_.total_gpus();
  if (gpus >= total) return 0.0;
  const double here = envelope(model, global_batch, selector, gpus, cpus);
  for (int g2 = gpus + 1; g2 <= total; ++g2) {
    const double there = envelope(model, global_batch, selector, g2, cpus);
    if (there > here * (1.0 + kTieRel) + 1e-12)
      return (there - here) / static_cast<double>(g2 - gpus);
  }
  return 0.0;
}

double BestPlanPredictor::gpu_slope_down(const ModelSpec& model,
                                         int global_batch,
                                         const PlanSelector& selector,
                                         int gpus, int cpus) {
  // Average slope down to the start of the PREVIOUS flat stretch: when a
  // job shrinks below a valid count, the GPUs stranded on the flat stretch
  // are worthless to it (commit trims them back to the pool), so the loss
  // is amortized over all of them.
  if (gpus <= 0) return 0.0;
  const double here = envelope(model, global_batch, selector, gpus, cpus);
  if (here <= 0.0) return 0.0;
  for (int g1 = gpus - 1; g1 >= 0; --g1) {
    const double there =
        g1 == 0 ? 0.0 : envelope(model, global_batch, selector, g1, cpus);
    if (there < here * (1.0 - kTieRel) - 1e-12) {
      // Walk to the smallest count still achieving `there`.
      int g2 = g1;
      while (g2 > 0 &&
             envelope(model, global_batch, selector, g2 - 1, cpus) >=
                 there * (1.0 - kTieRel) - 1e-12)
        --g2;
      return (here - there) / static_cast<double>(gpus - g2);
    }
  }
  return 0.0;
}

double BestPlanPredictor::cpu_slope_up(const ModelSpec& model,
                                       int global_batch,
                                       const PlanSelector& selector, int gpus,
                                       int cpus) {
  return envelope(model, global_batch, selector, gpus, cpus + 1) -
         envelope(model, global_batch, selector, gpus, cpus);
}

double BestPlanPredictor::cpu_slope_down(const ModelSpec& model,
                                         int global_batch,
                                         const PlanSelector& selector,
                                         int gpus, int cpus) {
  if (cpus <= 1) return 0.0;
  return envelope(model, global_batch, selector, gpus, cpus) -
         envelope(model, global_batch, selector, gpus, cpus - 1);
}

}  // namespace rubick
