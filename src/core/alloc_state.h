// Mutable working state for a scheduling round: per-node free resources and
// per-job per-node allocations. Algorithm 1 takes free resources, shrinks
// victims and rolls back failed placements against this structure; the
// final state is converted into Placements for the simulator.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "cluster/cluster.h"
#include "cluster/placement.h"
#include "common/resource.h"
#include "model/model_spec.h"
#include "plan/execution_plan.h"
#include "plan/memory_estimator.h"

namespace rubick {

// Observer seam for incremental indexes over an AllocState (DESIGN.md §14).
// Fired AFTER the mutation, once per (job, node) slice the operation
// touched, so the listener reads post-change state. CONTRACT: at most ONE
// node's free-resource counts change between consecutive notifications —
// multi-node operations (release_job) interleave their per-node frees with
// the callbacks — so a listener may repair a sorted-by-free-resources
// ordering with a single-key fix per callback. Memory-only operations
// (alloc_memory/release_memory) do not notify: they move host bytes, which
// no index keys on. snapshot()/restore() do not notify either — a listener
// that must survive rollbacks tracks its own journal (see
// DecideIndex::mark/rollback).
class AllocListener {
 public:
  virtual ~AllocListener() = default;
  virtual void on_slice_changed(int job, int node) = 0;
};

class AllocState {
 public:
  // Starts from an empty cluster, then registers the given running jobs'
  // placements (including their host memory). `down_nodes` (nonzero byte =
  // node down; see SchedulerInput::down_nodes) zeroes the free resources of
  // down nodes so every packing decision drawn from this state avoids them
  // — the one choke point that makes all policies fault-aware. Running
  // placements must not touch a down node (the simulator evicts them before
  // any scheduling round).
  AllocState(const ClusterSpec& spec,
             const std::vector<std::pair<int, Placement>>& running,
             const std::vector<char>* down_nodes = nullptr);

  int num_nodes() const { return static_cast<int>(free_.size()); }
  int free_gpus(int node) const;
  int free_cpus(int node) const;
  std::uint64_t free_memory(int node) const;

  int job_gpus(int job) const;
  int job_cpus(int job) const;
  int job_gpus_on(int job, int node) const;
  int job_cpus_on(int job, int node) const;

  // Node ids where the job currently holds GPUs.
  std::vector<int> job_nodes(int job) const;

  // Moves `count` GPUs/CPUs from the node's free pool to the job.
  void take_gpus(int job, int node, int count);
  void take_cpus(int job, int node, int count);
  // Returns resources from the job to the node's free pool.
  void give_back_gpus(int job, int node, int count);
  void give_back_cpus(int job, int node, int count);

  // Releases everything a job holds (GPUs, CPUs, memory).
  void release_job(int job);
  // Releases only the job's host memory (before re-planning).
  void release_memory(int job);

  // Distributes the plan's host-memory demand across the job's nodes
  // (proportionally to its GPUs there). Returns false — with no state
  // change — if any node lacks free memory. This is AllocMem of Alg. 1.
  bool alloc_memory(int job, const ModelSpec& model, const ExecutionPlan& plan,
                    int global_batch, const MemoryEstimator& estimator);

  // Current placement of the job (empty if it holds nothing).
  Placement placement_of(int job) const;

  // Whole-state snapshot/rollback (used when ScheduleJob fails).
  struct Snapshot;
  Snapshot snapshot() const;
  void restore(const Snapshot& snap);

  // At most one listener; null detaches. The listener must outlive every
  // subsequent mutating call (or detach first).
  void set_listener(AllocListener* listener) { listener_ = listener; }

  struct Snapshot {
    std::vector<ResourceVector> free;
    std::map<int, std::map<int, NodeSlice>> jobs;
  };

 private:
  std::map<int, NodeSlice>& slices_of(int job) { return jobs_[job]; }
  void notify(int job, int node) {
    if (listener_ != nullptr) listener_->on_slice_changed(job, node);
  }

  ClusterSpec spec_;
  std::vector<ResourceVector> free_;
  // job id -> node id -> slice
  std::map<int, std::map<int, NodeSlice>> jobs_;
  AllocListener* listener_ = nullptr;
};

}  // namespace rubick
