#include "core/alloc_state.h"

#include "common/resource.h"
#include "plan/execution_plan.h"

#include <algorithm>
#include <vector>

#include "common/error.h"

namespace rubick {

AllocState::AllocState(const ClusterSpec& spec,
                       const std::vector<std::pair<int, Placement>>& running,
                       const std::vector<char>* down_nodes)
    : spec_(spec) {
  free_.resize(static_cast<std::size_t>(spec.num_nodes));
  for (std::size_t n = 0; n < free_.size(); ++n) {
    const bool down = down_nodes != nullptr && (*down_nodes)[n] != 0;
    free_[n] = down ? ResourceVector{0, 0, 0}
                    : ResourceVector{spec.node.gpus, spec.node.cpus,
                                     spec.node.memory_bytes};
  }
  for (const auto& [job, placement] : running) {
    for (const auto& s : placement.slices) {
      RUBICK_CHECK(s.node >= 0 && s.node < spec.num_nodes);
      RUBICK_CHECK_MSG(down_nodes == nullptr ||
                           (*down_nodes)[static_cast<std::size_t>(s.node)] == 0,
                       "running job " << job << " registered on down node "
                                      << s.node
                                      << "; the simulator must evict before "
                                         "scheduling");
      free_[static_cast<std::size_t>(s.node)] -=
          ResourceVector{s.gpus, s.cpus, s.host_memory_bytes};
      jobs_[job][s.node] = s;
    }
  }
}

int AllocState::free_gpus(int node) const {
  return free_[static_cast<std::size_t>(node)].gpus;
}
int AllocState::free_cpus(int node) const {
  return free_[static_cast<std::size_t>(node)].cpus;
}
std::uint64_t AllocState::free_memory(int node) const {
  return free_[static_cast<std::size_t>(node)].memory_bytes;
}

int AllocState::job_gpus(int job) const {
  auto it = jobs_.find(job);
  if (it == jobs_.end()) return 0;
  int total = 0;
  for (const auto& [node, s] : it->second) total += s.gpus;
  return total;
}

int AllocState::job_cpus(int job) const {
  auto it = jobs_.find(job);
  if (it == jobs_.end()) return 0;
  int total = 0;
  for (const auto& [node, s] : it->second) total += s.cpus;
  return total;
}

int AllocState::job_gpus_on(int job, int node) const {
  auto it = jobs_.find(job);
  if (it == jobs_.end()) return 0;
  auto sit = it->second.find(node);
  return sit == it->second.end() ? 0 : sit->second.gpus;
}

int AllocState::job_cpus_on(int job, int node) const {
  auto it = jobs_.find(job);
  if (it == jobs_.end()) return 0;
  auto sit = it->second.find(node);
  return sit == it->second.end() ? 0 : sit->second.cpus;
}

std::vector<int> AllocState::job_nodes(int job) const {
  std::vector<int> out;
  auto it = jobs_.find(job);
  if (it == jobs_.end()) return out;
  for (const auto& [node, s] : it->second)
    if (s.gpus > 0 || s.cpus > 0) out.push_back(node);
  return out;
}

void AllocState::take_gpus(int job, int node, int count) {
  RUBICK_DCHECK(count >= 0);
  auto& f = free_[static_cast<std::size_t>(node)];
  RUBICK_CHECK_MSG(f.gpus >= count, "node " << node << " lacks free GPUs");
  f.gpus -= count;
  auto& slice = slices_of(job)[node];
  slice.node = node;
  slice.gpus += count;
  notify(job, node);
}

void AllocState::take_cpus(int job, int node, int count) {
  RUBICK_DCHECK(count >= 0);
  auto& f = free_[static_cast<std::size_t>(node)];
  RUBICK_CHECK_MSG(f.cpus >= count, "node " << node << " lacks free CPUs");
  f.cpus -= count;
  auto& slice = slices_of(job)[node];
  slice.node = node;
  slice.cpus += count;
  notify(job, node);
}

void AllocState::give_back_gpus(int job, int node, int count) {
  RUBICK_DCHECK(count >= 0);
  auto& slice = slices_of(job)[node];
  RUBICK_CHECK_MSG(slice.gpus >= count, "job holds fewer GPUs than returned");
  slice.node = node;
  slice.gpus -= count;
  free_[static_cast<std::size_t>(node)].gpus += count;
  notify(job, node);
}

void AllocState::give_back_cpus(int job, int node, int count) {
  RUBICK_DCHECK(count >= 0);
  auto& slice = slices_of(job)[node];
  RUBICK_CHECK_MSG(slice.cpus >= count, "job holds fewer CPUs than returned");
  slice.node = node;
  slice.cpus -= count;
  free_[static_cast<std::size_t>(node)].cpus += count;
  notify(job, node);
}

void AllocState::release_job(int job) {
  auto it = jobs_.find(job);
  if (it == jobs_.end()) return;
  // Free ONE node at a time, erasing the slice before its notification
  // fires: each callback then reads post-release state for that node and
  // observes exactly one changed free-resource key — the AllocListener
  // contract an incremental single-key repair (DecideIndex::reposition)
  // relies on. Batching the frees and notifying afterwards would present
  // listeners with several already-moved keys per callback, silently
  // corrupting incremental orderings.
  while (!it->second.empty()) {
    const auto sit = it->second.begin();
    const int node = sit->first;
    const NodeSlice s = sit->second;
    it->second.erase(sit);
    free_[static_cast<std::size_t>(node)] +=
        ResourceVector{s.gpus, s.cpus, s.host_memory_bytes};
    notify(job, node);
  }
  jobs_.erase(it);
}

void AllocState::release_memory(int job) {
  auto it = jobs_.find(job);
  if (it == jobs_.end()) return;
  for (auto& [node, s] : it->second) {
    free_[static_cast<std::size_t>(node)].memory_bytes += s.host_memory_bytes;
    s.host_memory_bytes = 0;
  }
}

bool AllocState::alloc_memory(int job, const ModelSpec& model,
                              const ExecutionPlan& plan, int global_batch,
                              const MemoryEstimator& estimator) {
  (void)global_batch;
  auto it = jobs_.find(job);
  RUBICK_CHECK_MSG(it != jobs_.end(), "alloc_memory for job with no slices");

  const std::uint64_t total = estimator.host_bytes(model, plan);
  const int gpus = job_gpus(job);
  RUBICK_CHECK(gpus > 0);

  // Distribute proportionally to the job's GPUs per node (workers are bound
  // to GPUs, so their host footprint follows them).
  std::vector<std::pair<int, std::uint64_t>> wants;
  std::uint64_t assigned = 0;
  for (const auto& [node, s] : it->second) {
    if (s.gpus == 0) continue;
    const std::uint64_t share =
        total * static_cast<std::uint64_t>(s.gpus) /
        static_cast<std::uint64_t>(gpus);
    wants.emplace_back(node, share);
    assigned += share;
  }
  if (!wants.empty()) wants.front().second += total - assigned;  // remainder

  for (const auto& [node, share] : wants)
    if (free_[static_cast<std::size_t>(node)].memory_bytes < share)
      return false;

  for (const auto& [node, share] : wants) {
    free_[static_cast<std::size_t>(node)].memory_bytes -= share;
    it->second[node].host_memory_bytes += share;
  }
  return true;
}

Placement AllocState::placement_of(int job) const {
  Placement p;
  auto it = jobs_.find(job);
  if (it == jobs_.end()) return p;
  for (const auto& [node, s] : it->second)
    if (s.gpus > 0 || s.cpus > 0 || s.host_memory_bytes > 0) p.add(s);
  return p;
}

AllocState::Snapshot AllocState::snapshot() const {
  return Snapshot{free_, jobs_};
}

void AllocState::restore(const Snapshot& snap) {
  free_ = snap.free;
  jobs_ = snap.jobs;
}

}  // namespace rubick
