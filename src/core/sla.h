// Performance-guarantee SLA machinery (paper §5.1-5.2).
//
// Rubick redefines the SLA of shared clusters: a guaranteed job is promised
// at least the PERFORMANCE it would have with its requested resources and
// user-chosen plan — not the literal resources. Two quantities realize it:
//
//   * the BASELINE: the fitted model's predicted throughput of
//     (requested resources, initial plan), the per-job normalizer for every
//     slope comparison;
//   * minRes: the smallest allocation, component-wise <= the request, whose
//     best plan matches the baseline — what the scheduler actually reserves
//     (and charges against the tenant's quota). When no smaller allocation
//     qualifies, the original request is the minimum; for best-effort jobs
//     the minimum is the zero vector.
//
// Values are memoized per job id; call clear() when the fitted-model store
// changes (online refits). Extracted from RubickPolicy so the SLA logic is
// unit-testable in isolation (test_sla.cc).
//
// CONCURRENCY: baseline_throughput() and min_res() may be called from
// multiple threads (the policy parallelizes per-job construction). The memo
// caches sit behind a mutex; values are computed outside the lock — they
// are deterministic functions of the job spec, so concurrent computations
// agree and the first writer wins. clear() must not race with queries.
#pragma once

#include <map>
#include <mutex>

#include "cluster/cluster.h"
#include "common/resource.h"
#include "core/plan_selector.h"
#include "core/predictor.h"
#include "perf/perf_store.h"
#include "trace/job.h"

namespace rubick {

class SlaCalculator {
 public:
  // `cpu_floor_per_gpu`: the input-pipeline floor used when scanning CPU
  // allocations (matches RubickConfig::cpu_floor_per_gpu).
  SlaCalculator(BestPlanPredictor& predictor, const PerfModelStore& store,
                const ClusterSpec& cluster, int cpu_floor_per_gpu = 2);

  // Predicted throughput of (requested resources, initial plan) under a
  // canonical placement; a tiny positive floor when the initial plan is
  // invalid so normalization never divides by zero.
  double baseline_throughput(const JobSpec& spec);

  // The minimum demand. `selector` bounds the plan space (Rubick's full
  // space, or an ablation's restricted one); with `fixed_resources` the
  // search is skipped and the request returned (Rubick-E/N semantics).
  ResourceVector min_res(const JobSpec& spec, const PlanSelector& selector,
                         bool fixed_resources = false);

  void clear();

 private:
  BestPlanPredictor* predictor_;
  const PerfModelStore* store_;
  ClusterSpec cluster_;
  int cpu_floor_per_gpu_;
  mutable std::mutex mu_;
  std::map<int, double> baseline_cache_;
  std::map<int, ResourceVector> min_res_cache_;
};

}  // namespace rubick
