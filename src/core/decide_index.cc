#include "core/decide_index.h"

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "cluster/cluster.h"
#include "common/error.h"

namespace rubick {

DecideIndex::DecideIndex(const ClusterSpec& cluster, const AllocState* state,
                         BestPlanPredictor* predictor, int cpu_floor_per_gpu,
                         bool victim_heaps)
    : cluster_(cluster),
      state_(state),
      predictor_(predictor),
      cpu_floor_per_gpu_(cpu_floor_per_gpu),
      victim_heaps_(victim_heaps) {
  RUBICK_CHECK(state_ != nullptr && predictor_ != nullptr);
  const auto n = static_cast<std::size_t>(cluster_.num_nodes);
  gpu_heaps_.resize(n);
  cpu_heaps_.resize(n);
}

DecideIndex::~DecideIndex() = default;

int DecideIndex::add_job(const JobMeta& meta) {
  RUBICK_DCHECK(!built_);
  const int idx = static_cast<int>(jobs_.size());
  Job job;
  job.meta = meta;
  jobs_.push_back(job);
  idx_of_.emplace(meta.job_id, idx);
  return idx;
}

void DecideIndex::build() {
  RUBICK_DCHECK(!built_);
  built_ = true;
  // Node ranking: total order under NodeOrderLess (the id tie-break makes
  // every key distinct, so std::sort yields one well-defined permutation).
  ranked_.resize(static_cast<std::size_t>(cluster_.num_nodes));
  for (int n = 0; n < cluster_.num_nodes; ++n)
    ranked_[static_cast<std::size_t>(n)] = n;
  std::sort(ranked_.begin(), ranked_.end(), NodeOrderLess{&cluster_, state_});
  pos_.resize(ranked_.size());
  for (std::size_t r = 0; r < ranked_.size(); ++r)
    pos_[static_cast<std::size_t>(ranked_[r])] = static_cast<int>(r);

  if (!victim_heaps_) return;
  for (std::size_t idx = 0; idx < jobs_.size(); ++idx)
    push_entries(static_cast<int>(idx));
}

// ---------------------------------------------------------------------------
// Slope memo
// ---------------------------------------------------------------------------

double DecideIndex::slope(int idx, SlopeKind kind) {
  Job& job = jobs_[static_cast<std::size_t>(idx)];
  const unsigned bit = 1u << kind;
  if (job.memo.version == job.version && (job.memo.have & bit) != 0) {
    ++stats_.slope_evals_saved;
    return job.memo.value[kind];
  }
  if (job.memo.version != job.version) {
    job.memo.version = job.version;
    job.memo.have = 0;
  }
  // Byte-identical to the legacy slope lambdas in RubickPolicy::schedule:
  // same g/c reads, same max(1, c) clamp, same g<=0 guard on the CPU
  // slopes, same normalization by the job baseline.
  const int id = job.meta.job_id;
  const int g = state_->job_gpus(id);
  const int c = std::max(1, state_->job_cpus(id));
  const ModelSpec& model = *job.meta.model;
  const int batch = job.meta.global_batch;
  const PlanSelector& sel = *job.meta.selector;
  double value = 0.0;
  switch (kind) {
    case kGpuUp:
      value = predictor_->gpu_slope_up(model, batch, sel, g, c) /
              job.meta.baseline;
      break;
    case kGpuDown:
      value = predictor_->gpu_slope_down(model, batch, sel, g, c) /
              job.meta.baseline;
      break;
    case kCpuUp:
      value = g <= 0 ? 0.0
                     : predictor_->cpu_slope_up(model, batch, sel, g, c) /
                           job.meta.baseline;
      break;
    case kCpuDown:
      value = g <= 0 ? 0.0
                     : predictor_->cpu_slope_down(model, batch, sel, g, c) /
                           job.meta.baseline;
      break;
  }
  job.memo.value[kind] = value;
  job.memo.have |= bit;
  ++stats_.slope_evals;
  return value;
}

double DecideIndex::gpu_up(int idx) { return slope(idx, kGpuUp); }
double DecideIndex::gpu_down(int idx) { return slope(idx, kGpuDown); }
double DecideIndex::cpu_up(int idx) { return slope(idx, kCpuUp); }
double DecideIndex::cpu_down(int idx) { return slope(idx, kCpuDown); }

// ---------------------------------------------------------------------------
// Victim heaps
// ---------------------------------------------------------------------------

void DecideIndex::push_entries(int idx) {
  const Job& job = jobs_[static_cast<std::size_t>(idx)];
  const int id = job.meta.job_id;
  for (int node : state_->job_nodes(id)) {
    const auto n = static_cast<std::size_t>(node);
    if (state_->job_gpus_on(id, node) > 0) {
      gpu_heaps_[n].push_back(Entry{gpu_down(idx), idx, job.version});
      std::push_heap(gpu_heaps_[n].begin(), gpu_heaps_[n].end(),
                     EntryGreater{});
    }
    if (state_->job_cpus_on(id, node) > 0) {
      cpu_heaps_[n].push_back(Entry{cpu_down(idx), idx, job.version});
      std::push_heap(cpu_heaps_[n].begin(), cpu_heaps_[n].end(),
                     EntryGreater{});
    }
  }
}

void DecideIndex::reindex_job(int idx) {
  ++jobs_[static_cast<std::size_t>(idx)].version;
  if (victim_heaps_ && built_) push_entries(idx);
}

bool DecideIndex::gpu_eligible(const Job& job, int node) {
  // Mirror of the legacy gpu_victim scan's version-invariant filters. The
  // job's resource counts are covered by its version (any change re-pushes
  // it); min_res/guaranteed are round constants; the envelope is a pure
  // function of (g, c). So a false here cannot flip back before the next
  // version bump, and the caller may drop the entry permanently.
  const int id = job.meta.job_id;
  if (state_->job_gpus_on(id, node) <= 0) return false;
  const int g = state_->job_gpus(id);
  if (g <= job.meta.min_res.gpus) return false;  // must stay over its minimum
  if (g - 1 == 0) {
    if (job.meta.guaranteed) return false;  // only BE is preemptible
  } else {
    // Shrinking must leave the victim at least one feasible plan.
    const int c = std::max(1, state_->job_cpus(id));
    if (predictor_->envelope(*job.meta.model, job.meta.global_batch,
                             *job.meta.selector, g - 1, c) <= 0.0)
      return false;
  }
  return true;
}

bool DecideIndex::cpu_eligible(const Job& job, int node) {
  const int id = job.meta.job_id;
  if (state_->job_cpus_on(id, node) <= 0) return false;
  const int floor_c = std::max(job.meta.min_res.cpus,
                               cpu_floor_per_gpu_ * state_->job_gpus(id));
  return state_->job_cpus(id) > std::max(1, floor_c);
}

int DecideIndex::generic_victim(std::vector<std::vector<Entry>>& heaps,
                                int node, int exclude, bool allow_frozen,
                                bool gpu) {
  RUBICK_DCHECK(victim_heaps_ && built_);
  auto& heap = heaps[static_cast<std::size_t>(node)];
  scratch_.clear();
  int found = -1;
  while (!heap.empty()) {
    const Entry entry = heap.front();
    std::pop_heap(heap.begin(), heap.end(), EntryGreater{});
    heap.pop_back();
    ++stats_.heap_pops;
    const Job& job = jobs_[static_cast<std::size_t>(entry.idx)];
    if (entry.version != job.version) {
      // Lazy deletion: the job's allocation changed since the push; a
      // fresh entry (keyed on the new slope) was pushed at the bump.
      ++stats_.stale_entries;
      continue;
    }
    if (!(gpu ? gpu_eligible(job, node) : cpu_eligible(job, node)))
      continue;  // permanent drop: re-pushed on the job's next version bump
    if (job.meta.job_id == exclude || (job.meta.frozen && !allow_frozen)) {
      // Query-variant skip: a later query (other claimant, allow_frozen)
      // may need this entry, so it goes back after the search.
      scratch_.push_back(entry);
      continue;
    }
    // Minimum (slope, idx): the same candidate the legacy scan's strict
    // `<` keeps — first in `infos` order among equal lowest slopes. The
    // winner is not consumed: the caller decides whether to shrink it (a
    // shrink bumps its version and re-pushes it anyway).
    found = entry.idx;
    scratch_.push_back(entry);
    break;
  }
  for (const Entry& entry : scratch_) {
    heap.push_back(entry);
    std::push_heap(heap.begin(), heap.end(), EntryGreater{});
  }
  return found;
}

int DecideIndex::gpu_victim(int node, int exclude, bool allow_frozen) {
  return generic_victim(gpu_heaps_, node, exclude, allow_frozen, /*gpu=*/true);
}

int DecideIndex::cpu_victim(int node, int exclude, bool allow_frozen) {
  return generic_victim(cpu_heaps_, node, exclude, allow_frozen,
                        /*gpu=*/false);
}

void DecideIndex::set_frozen(int idx, bool frozen) {
  Job& job = jobs_[static_cast<std::size_t>(idx)];
  if (job.meta.frozen == frozen) return;
  job.meta.frozen = frozen;
  if (built_) reindex_job(idx);
}

// ---------------------------------------------------------------------------
// Node ranking + change tracking
// ---------------------------------------------------------------------------

void DecideIndex::reposition(int node) {
  if (!built_) return;
  const NodeOrderLess less{&cluster_, state_};
  auto r = static_cast<std::size_t>(pos_[static_cast<std::size_t>(node)]);
  while (r > 0 && less(ranked_[r], ranked_[r - 1])) {
    std::swap(ranked_[r], ranked_[r - 1]);
    pos_[static_cast<std::size_t>(ranked_[r])] = static_cast<int>(r);
    --r;
  }
  while (r + 1 < ranked_.size() && less(ranked_[r + 1], ranked_[r])) {
    std::swap(ranked_[r], ranked_[r + 1]);
    pos_[static_cast<std::size_t>(ranked_[r])] = static_cast<int>(r);
    ++r;
  }
  pos_[static_cast<std::size_t>(ranked_[r])] = static_cast<int>(r);
}

void DecideIndex::on_slice_changed(int job, int node) {
  journal_.emplace_back(job, node);
  reposition(node);
  const auto it = idx_of_.find(job);
  RUBICK_DCHECK(it != idx_of_.end());
  if (it != idx_of_.end()) reindex_job(it->second);
}

void DecideIndex::rollback(std::size_t mark) {
  RUBICK_DCHECK(mark <= journal_.size());
  if (mark == journal_.size()) return;  // nothing was touched since mark()
  // The AllocState was restored to its state at mark(): every job touched
  // since then may differ from what the index last saw. Bump each touched
  // job once (staling its entries, re-pushing from the restored state).
  // Deduplicate first — ScheduleJob attempts touch the same claimant slice
  // many times.
  std::vector<int> jobs_touched;
  jobs_touched.reserve(journal_.size() - mark);
  for (std::size_t i = mark; i < journal_.size(); ++i)
    jobs_touched.push_back(journal_[i].first);
  journal_.resize(mark);
  std::sort(jobs_touched.begin(), jobs_touched.end());
  jobs_touched.erase(std::unique(jobs_touched.begin(), jobs_touched.end()),
                     jobs_touched.end());
  // The node ranking is re-sorted WHOLESALE, not repaired with per-node
  // reposition(): reposition is a single-key insertion fix that assumes
  // the rest of the array is sorted, but restore() moved every touched
  // node's free-GPU key at once, so a bubble can park against a neighbour
  // whose own key is also stale and never be revisited (see
  // DecideIndexTest.RollbackRepairsRankingAcrossMultipleStaleKeys). A full
  // O(nodes log nodes) sort is negligible next to the failed placement
  // attempt it cleans up after.
  if (built_) {
    std::sort(ranked_.begin(), ranked_.end(),
              NodeOrderLess{&cluster_, state_});
    for (std::size_t r = 0; r < ranked_.size(); ++r)
      pos_[static_cast<std::size_t>(ranked_[r])] = static_cast<int>(r);
  }
  for (int job : jobs_touched) {
    const auto it = idx_of_.find(job);
    if (it != idx_of_.end()) reindex_job(it->second);
  }
}

void DecideIndex::commit(std::size_t mark) {
  RUBICK_DCHECK(mark <= journal_.size());
  // Single-level marks (ScheduleJob's snapshot discipline): nothing can
  // roll back past `mark` anymore, so the journal prefix is dead weight.
  journal_.resize(mark);
}

}  // namespace rubick
