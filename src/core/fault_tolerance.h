// Shared fault-tolerance post-pass for scheduling policies (ISSUE 6).
//
// Every policy (Rubick and the baselines) runs its normal round first and
// then pipes the result through `apply_fault_tolerance`, which enforces the
// recovery protocol uniformly:
//
//   * backoff — a queued job whose last reconfiguration attempt failed is
//     not restarted before its capped-exponential backoff expires;
//   * degradation — a job past the retry budget is pinned to its
//     last-known-good execution plan instead of thrashing through new ones
//     (a running degraded job keeps its current configuration verbatim);
//   * down-node guard — any assignment touching a down node is dropped
//     (defense in depth: AllocState already hides down nodes from packing).
//
// The pass is a pure function of (input, assignments): same inputs, same
// output, regardless of thread count — which is what lets Rubick's
// round-digest fast path replay a post-passed result safely.
#pragma once

#include <vector>

#include "core/scheduler.h"

namespace rubick {

// True when `input` carries any fault state a policy must react to. When
// false the post-pass is a guaranteed no-op (zero-overhead-when-off).
bool has_fault_state(const SchedulerInput& input);

// Rewrites `assignments` in place per the protocol above. Also maintains
// the scheduler.retries counter and scheduler.degraded_jobs gauge.
void apply_fault_tolerance(const SchedulerInput& input,
                           std::vector<Assignment>& assignments);

}  // namespace rubick
