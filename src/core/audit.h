// Simulation observation hook.
//
// `SimObserver` is the seam through which external subsystems watch a
// simulation run without the simulator depending on them: the simulator
// publishes a snapshot of its job/cluster state at every event-loop tick,
// and the observer (typically the `InvariantAuditor` in src/check) inspects
// it. The simulator never reads anything back — observers cannot steer a
// run, only witness it.
//
// LIFETIME: every pointer inside `SimRunInfo`, `SimTick` and `AuditJobState`
// refers to state owned by the running simulator (or the caller's trace) and
// is valid only for the duration of the callback. Observers that need data
// across ticks must copy it.
#pragma once

#include <vector>

#include "cluster/cluster.h"
#include "cluster/placement.h"
#include "perf/perf_store.h"
#include "plan/execution_plan.h"
#include "plan/memory_estimator.h"
#include "trace/job.h"

namespace rubick {

// Lifecycle phases of a simulated job. Legal transitions form a line with
// one back-edge: kNotReady -> kPending -> kRunning -> kFinished, plus
// kRunning -> kPending (preemption). Everything else is a bug.
enum class SimJobPhase { kNotReady, kPending, kRunning, kFinished };

inline const char* to_string(SimJobPhase phase) {
  switch (phase) {
    case SimJobPhase::kNotReady:
      return "not-ready";
    case SimJobPhase::kPending:
      return "pending";
    case SimJobPhase::kRunning:
      return "running";
    case SimJobPhase::kFinished:
      return "finished";
  }
  return "?";
}

// One job's externally visible state at a tick.
struct AuditJobState {
  const JobSpec* spec = nullptr;
  SimJobPhase phase = SimJobPhase::kNotReady;
  const Placement* placement = nullptr;  // empty unless kRunning
  const ExecutionPlan* plan = nullptr;   // last assigned plan
  double samples_done = 0.0;
  // Effective progress rate (oracle or fitted throughput x statistical
  // efficiency); 0 unless kRunning.
  double throughput = 0.0;
};

// Run-constant context, published once before the event loop starts.
struct SimRunInfo {
  const ClusterSpec* cluster = nullptr;
  // The run's working perf-model store. Online refinement refits it during
  // the run, so predictions drawn from it may change between ticks;
  // `store->version()` detects that.
  const PerfModelStore* store = nullptr;
  const MemoryEstimator* estimator = nullptr;
  const std::vector<JobSpec>* jobs = nullptr;
};

// Snapshot of one event-loop iteration, taken after any scheduling round at
// that instant has been applied. The simulator reuses one SimTick buffer
// tick to tick (DESIGN.md §13.3) and its pointers borrow simulator stack
// state, so the snapshot is valid only inside the observer callback —
// observers that keep data must copy it.
struct SimTick {
  double now_s = 0.0;
  bool scheduled = false;  // a policy round ran at this event
  std::vector<AuditJobState> jobs;
  // Live allocation bookkeeping (per-node free resources).
  const Cluster* cluster_state = nullptr;
  // Per-node availability under fault injection: nonzero byte = node is
  // down. Null when the run has no fault plan (all nodes up).
  const std::vector<char>* down_nodes = nullptr;
};

// A fault the simulator applied, announced to observers the moment it takes
// effect (before the scheduling round it triggers). Mirrors `FaultKind` in
// src/failure plus the injection-site-only reconfiguration failure; kept as
// its own enum so core/audit.h does not depend on the failure library.
struct SimFaultNotice {
  enum class Kind {
    kNodeCrash,
    kNodeRecover,
    kGpuTransient,
    kStragglerBegin,
    kStragglerEnd,
    kReconfigFailure,
  };
  double now_s = 0.0;
  Kind kind = Kind::kNodeCrash;
  int node = -1;            // -1 for kReconfigFailure
  int job_id = -1;          // kReconfigFailure: the job whose attempt failed
  double severity = 1.0;    // kStragglerBegin: throughput multiplier
  // kReconfigFailure: the job's allocation before the failed attempt. Both
  // empty/default when the job was pending (nothing to restore).
  const Placement* prior_placement = nullptr;
  const ExecutionPlan* prior_plan = nullptr;
};

inline const char* to_string(SimFaultNotice::Kind kind) {
  switch (kind) {
    case SimFaultNotice::Kind::kNodeCrash:
      return "node-crash";
    case SimFaultNotice::Kind::kNodeRecover:
      return "node-recover";
    case SimFaultNotice::Kind::kGpuTransient:
      return "gpu-transient";
    case SimFaultNotice::Kind::kStragglerBegin:
      return "straggler-begin";
    case SimFaultNotice::Kind::kStragglerEnd:
      return "straggler-end";
    case SimFaultNotice::Kind::kReconfigFailure:
      return "reconfig-failure";
  }
  return "?";
}

class SimObserver {
 public:
  virtual ~SimObserver() = default;

  virtual void on_run_begin(const SimRunInfo& info) = 0;
  virtual void on_tick(const SimTick& tick) = 0;
  // Final snapshot after the event loop drained; `tick.scheduled` is false.
  virtual void on_run_end(const SimTick& tick) = 0;
  // Fault injection (ISSUE 6). Default no-op so pre-existing observers
  // compile unchanged; the tick following the notice carries the resulting
  // job/cluster state.
  virtual void on_fault(const SimFaultNotice& notice) { (void)notice; }
};

// Fans one observer slot out to several observers (e.g. the invariant
// auditor and the telemetry observer on the same run). Callbacks are
// forwarded in registration order; does not own the observers.
class SimObserverList final : public SimObserver {
 public:
  void add(SimObserver* observer) {
    if (observer != nullptr) observers_.push_back(observer);
  }
  bool empty() const { return observers_.empty(); }

  void on_run_begin(const SimRunInfo& info) override {
    for (SimObserver* o : observers_) o->on_run_begin(info);
  }
  void on_tick(const SimTick& tick) override {
    for (SimObserver* o : observers_) o->on_tick(tick);
  }
  void on_run_end(const SimTick& tick) override {
    for (SimObserver* o : observers_) o->on_run_end(tick);
  }
  void on_fault(const SimFaultNotice& notice) override {
    for (SimObserver* o : observers_) o->on_fault(notice);
  }

 private:
  std::vector<SimObserver*> observers_;
};

}  // namespace rubick
