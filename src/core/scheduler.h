// Scheduler policy interface shared by Rubick and all baselines.
//
// The simulator invokes the policy at every scheduling event (job arrival,
// job completion, model-profile-ready). The policy returns the COMPLETE
// desired running set: every job that should be running after the round,
// with its placement and execution plan. Running jobs omitted from the
// result are preempted (their progress is checkpointed); pending jobs
// omitted stay queued.
#pragma once

#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "cluster/placement.h"
#include "perf/perf_store.h"
#include "plan/execution_plan.h"
#include "plan/memory_estimator.h"
#include "trace/job.h"

namespace rubick {

struct JobView {
  const JobSpec* spec = nullptr;
  bool running = false;
  Placement placement;      // empty when queued
  ExecutionPlan plan;       // last assigned plan (initial plan when queued)
  double samples_done = 0.0;
  double remaining_samples = 0.0;
  double queued_since = 0.0;        // last time the job entered the queue
  double total_active_time_s = 0.0;  // T in the reconfiguration-penalty gate
  int reconfig_count = 0;            // N in the gate

  // --- Fault-tolerance state (ISSUE 6); all defaults = fault-free run. ---
  int reconfig_failures = 0;     // consecutive failed reconfiguration attempts
  double retry_not_before_s = 0.0;  // backoff gate; no new start before this
  // After max_reconfig_retries consecutive failures the job is pinned to its
  // last-known-good configuration instead of thrashing through new plans.
  bool degraded = false;
  bool has_last_good = false;    // last_good_plan below is meaningful
  ExecutionPlan last_good_plan;  // plan of the last successful start
};

// One scheduling round's view of the world. The simulator reuses a single
// SchedulerInput across rounds (DESIGN.md §13.3): `jobs` slots are
// reassigned field-by-field every round, so the vector and everything it
// points to are valid only for the duration of the `schedule()` call — a
// policy that wants to keep job state across rounds must copy it out.
struct SchedulerInput {
  double now = 0.0;
  // Non-null; owned by the caller and unchanged for the whole run. A
  // pointer (rather than a by-value spec) so building the input every
  // scheduling round stays allocation-free on the hot path.
  const ClusterSpec* cluster = nullptr;
  std::vector<JobView> jobs;  // pending + running, profile-ready only
  const PerfModelStore* models = nullptr;
  const MemoryEstimator* estimator = nullptr;
  double reconfig_penalty_s = 78.0;  // delta in the gate
  // Per-node availability under fault injection: nonzero byte = node down.
  // Null (every node up) for fault-free runs. Policies must not place work
  // on a down node; AllocState zeroes their free resources when handed this.
  const std::vector<char>* down_nodes = nullptr;

  bool node_down(int node) const {
    return down_nodes != nullptr &&
           (*down_nodes)[static_cast<std::size_t>(node)] != 0;
  }
  bool any_node_down() const {
    if (down_nodes == nullptr) return false;
    for (char d : *down_nodes)
      if (d != 0) return true;
    return false;
  }
};

struct Assignment {
  int job_id = 0;
  Placement placement;
  ExecutionPlan plan;
  // Statistical efficiency of progress toward the job's sample target, in
  // (0, 1]. Rubick keeps the global batch fixed, so its assignments are
  // always 1.0. Schedulers that (implicitly) scale the batch with the DP
  // size — Sia/Pollux-style goodput systems — pay Pollux's efficiency
  // factor: each processed sample contributes less toward convergence.
  double statistical_efficiency = 1.0;
};

class ProvenanceRecorder;

// LIFETIME: a policy instance serves exactly one workload (one simulator
// run). Implementations memoize per-job state (minimum demands, baselines,
// plan selectors) keyed by job id, so reusing an instance across traces
// whose job ids overlap silently corrupts its decisions — construct a fresh
// policy per run instead.
class SchedulerPolicy {
 public:
  virtual ~SchedulerPolicy() = default;
  virtual std::string name() const = 0;
  virtual std::vector<Assignment> schedule(const SchedulerInput& input) = 0;

  // Decision-provenance hook (DESIGN.md §12). When a recorder is attached,
  // each schedule() call appends one RoundRecord describing what was decided
  // and why; null (the default) disables recording, and every record site in
  // the policies is a single pointer test, so an unattached policy pays
  // nothing. The recorder must outlive the policy's last schedule() call.
  void set_provenance(ProvenanceRecorder* recorder) {
    provenance_ = recorder;
  }
  ProvenanceRecorder* provenance() const { return provenance_; }

 private:
  ProvenanceRecorder* provenance_ = nullptr;
};

}  // namespace rubick
