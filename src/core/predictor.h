// Best-plan prediction and resource sensitivity curves (paper §5.2).
//
// For a job (model type + global batch) and a hypothetical allocation, the
// predictor enumerates the selector's candidate plans, ranks them with the
// fitted performance model and memoizes the result. The sensitivity-curve
// "envelope" is the maximum predicted throughput achievable with AT MOST g
// GPUs — flat across invalid GPU counts exactly as in Fig. 6 — and its
// finite-difference slopes drive the shrink/expand decisions of Algorithm 1.
//
// Curves use a canonical placement shape for each GPU count (packed into as
// few nodes as possible); the final plan for a concrete placement is ranked
// with the placement's real shape (max TP group, multi-node bandwidth).
//
// CONCURRENCY: the predictor is safe to call from multiple threads. Both
// memo caches are sharded behind per-shard mutexes; values are pure
// functions of the key and the (immutable) store/estimator/cluster, so
// racing computations produce identical values and the first writer wins —
// parallel results are byte-identical to serial ones.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "cluster/cluster.h"
#include "cluster/placement.h"
#include "common/threadpool.h"
#include "core/curve_key.h"
#include "core/plan_selector.h"
#include "model/model_spec.h"
#include "perf/perf_store.h"
#include "plan/enumerate.h"
#include "plan/execution_plan.h"
#include "plan/memory_estimator.h"

namespace rubick {

// Hit/miss/insert tallies for a sharded cache (telemetry; aggregated across
// shards by ShardedCache::stats()).
struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t inserts = 0;

  CacheStats& operator+=(const CacheStats& o) {
    hits += o.hits;
    misses += o.misses;
    inserts += o.inserts;
    return *this;
  }
  std::uint64_t lookups() const { return hits + misses; }
  double hit_rate() const {
    const std::uint64_t n = lookups();
    return n == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(n);
  }
};

// Mutex-sharded hash map used by the predictor's memo caches. Insertion
// keeps the first value stored for a key (all racers compute the same
// value, so which one lands is immaterial). Each shard counts its
// hits/misses/inserts under the mutex it already holds, so the accounting
// adds no synchronization of its own.
template <typename K, typename V, typename Hash = std::hash<K>>
class ShardedCache {
 public:
  bool lookup(const K& key, V* out) const {
    const Shard& s = shard_for(key);
    std::lock_guard<std::mutex> lock(s.mu);
    auto it = s.map.find(key);
    if (it == s.map.end()) {
      ++s.stats.misses;
      return false;
    }
    ++s.stats.hits;
    *out = it->second;
    return true;
  }

  // Returns the value that ended up cached (the first writer's).
  V insert(const K& key, V value) const {
    Shard& s = shard_for(key);
    std::lock_guard<std::mutex> lock(s.mu);
    auto [it, inserted] = s.map.emplace(key, std::move(value));
    if (inserted) ++s.stats.inserts;
    return it->second;
  }

  std::size_t size() const {
    std::size_t n = 0;
    for (const Shard& s : shards_) {
      std::lock_guard<std::mutex> lock(s.mu);
      n += s.map.size();
    }
    return n;
  }

  CacheStats stats() const {
    CacheStats total;
    for (const Shard& s : shards_) {
      std::lock_guard<std::mutex> lock(s.mu);
      total += s.stats;
    }
    return total;
  }

 private:
  static constexpr std::size_t kShards = 16;
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<K, V, Hash> map;
    mutable CacheStats stats;
  };
  Shard& shard_for(const K& key) const {
    return shards_[Hash{}(key) % kShards];
  }
  mutable std::array<Shard, kShards> shards_;
};

class BestPlanPredictor {
 public:
  BestPlanPredictor(const ClusterSpec& cluster, const PerfModelStore& store,
                    const MemoryEstimator& estimator);

  struct Prediction {
    bool feasible = false;
    double throughput = 0.0;  // samples/s; 0 when infeasible
    ExecutionPlan plan;
  };

  // Best plan using EXACTLY g GPUs under the given placement shape.
  Prediction best_exact(const ModelSpec& model, int global_batch,
                        const PlanSelector& selector, int gpus, int cpus,
                        int max_tp, bool multi_node);

  // Best plan for g GPUs packed canonically.
  Prediction best_canonical(const ModelSpec& model, int global_batch,
                            const PlanSelector& selector, int gpus, int cpus);

  // All feasible plans for a concrete placement, best first. The caller
  // walks this list until host-memory allocation succeeds (paper Alg. 1
  // lines 19-23). Memoized per (curve key, placement shape): the commit
  // loop of a scheduling round asks for the same placement repeatedly
  // (emptiness probe, then the ranked walk), so repeats are shared-pointer
  // copies of one immutable list. Slice host-memory reservations are NOT
  // part of the key — ranking reads only the (node, gpus, cpus) shape.
  std::shared_ptr<const std::vector<Prediction>> ranked_for_placement(
      const ModelSpec& model, int global_batch, const PlanSelector& selector,
      const Placement& placement);

  // Sensitivity-curve value: max over g' <= gpus of best_canonical.
  double envelope(const ModelSpec& model, int global_batch,
                  const PlanSelector& selector, int gpus, int cpus);

  // Landmark points of the canonical GPU curve (CPUs at `cpu_floor_per_gpu`
  // per GPU, the same diagonal warm() fills): the smallest feasible GPU
  // count and the saturation point (smallest count reaching the curve's
  // maximum, with the policy's progressive 1e-9 tie tolerance). Memoized
  // per (model, batch, selector, floor, max_gpus) — one scan over cached
  // envelope values per combo instead of one per job per round.
  struct CurveSummary {
    int min_feasible_gpus = 0;  // 0: no feasible plan at any count
    int max_useful_gpus = 0;    // 0: curve identically zero
  };
  CurveSummary curve_summary(const ModelSpec& model, int global_batch,
                             const PlanSelector& selector,
                             int cpu_floor_per_gpu, int max_gpus);

  // Finite-difference slopes of the curve at (gpus, cpus).
  double gpu_slope_up(const ModelSpec& model, int global_batch,
                      const PlanSelector& selector, int gpus, int cpus);
  double gpu_slope_down(const ModelSpec& model, int global_batch,
                        const PlanSelector& selector, int gpus, int cpus);
  double cpu_slope_up(const ModelSpec& model, int global_batch,
                      const PlanSelector& selector, int gpus, int cpus);
  double cpu_slope_down(const ModelSpec& model, int global_batch,
                        const PlanSelector& selector, int gpus, int cpus);

  // Precomputes the envelope (and the exact-count entries beneath it) for
  // every GPU count up to `max_gpus` — the paper's §5.2 note that curves
  // "can be computed in parallel or even prior to the scheduling, and then
  // cached". GPU counts are fanned across `pool` (the process-wide pool
  // when null); a size-1 pool reproduces the serial order exactly, and the
  // cached values are identical either way. Scheduling rounds after a
  // warm() are pure cache hits for this (model, selector, cpus-per-GPU
  // profile).
  void warm(const ModelSpec& model, int global_batch,
            const PlanSelector& selector, int max_gpus, int cpus_per_gpu = 2,
            ThreadPool* pool = nullptr);

  // Number of memoized entries (diagnostic; used by tests and benches).
  std::size_t cache_size() const {
    return exact_cache_.size() + envelope_cache_.size() +
           ranked_cache_.size() + widths_cache_.size() +
           summary_cache_.size();
  }

  // Aggregated hit/miss/insert tallies across all memo caches.
  CacheStats cache_stats() const {
    CacheStats total = exact_cache_.stats();
    total += envelope_cache_.stats();
    total += ranked_cache_.stats();
    total += widths_cache_.stats();
    total += summary_cache_.stats();
    return total;
  }

  const ClusterSpec& cluster() const { return cluster_; }

  // Public view of the selector's candidate GPU widths (the counts at which
  // at least one plan exists — see feasible_widths below). Read by the
  // decision-provenance layer as curve evidence; shares the widths memo
  // cache with the envelope chains.
  std::shared_ptr<const std::vector<int>> candidate_widths(
      const ModelSpec& model, int global_batch, const PlanSelector& selector) {
    return feasible_widths(model, global_batch, selector);
  }

 private:
  PlanConstraints constraints_for(int gpus, int max_tp) const;

  // Sorted GPU counts (over the full cluster range, canonical constraints)
  // at which the selector has at least one candidate plan. Candidate sets
  // do not depend on the CPU count, so one width set serves every envelope
  // chain of the combo: chains evaluate the analytic model only at these
  // counts and copy the running maximum across the flat stretches between
  // them (exactly what the recursion computed — infeasible counts
  // contribute a zero throughput to the max).
  std::shared_ptr<const std::vector<int>> feasible_widths(
      const ModelSpec& model, int global_batch, const PlanSelector& selector);

  // ranked_for_placement() memo key: curve coordinates plus the exact
  // placement shape (host-memory reservations zeroed — ranking ignores
  // them). Full slice equality, not a fingerprint, so collisions cannot
  // alias two placements.
  struct RankedKey {
    CurveKey base;
    std::vector<NodeSlice> slices;

    friend bool operator==(const RankedKey&, const RankedKey&) = default;
  };
  struct RankedKeyHash {
    std::size_t operator()(const RankedKey& k) const noexcept;
  };

  ClusterSpec cluster_;
  const PerfModelStore* store_;
  const MemoryEstimator* estimator_;
  ShardedCache<CurveKey, Prediction> exact_cache_;
  ShardedCache<CurveKey, double> envelope_cache_;
  ShardedCache<RankedKey, std::shared_ptr<const std::vector<Prediction>>,
               RankedKeyHash>
      ranked_cache_;
  ShardedCache<CurveKey, std::shared_ptr<const std::vector<int>>>
      widths_cache_;
  ShardedCache<CurveKey, CurveSummary> summary_cache_;
};

}  // namespace rubick
