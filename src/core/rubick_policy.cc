#include "core/rubick_policy.h"

#include "cluster/placement.h"
#include "common/resource.h"
#include "model/model_spec.h"
#include "perf/analytic.h"
#include "perf/fitter.h"
#include "plan/execution_plan.h"
#include "trace/job.h"

#include <algorithm>
#include <cstring>
#include <limits>
#include <memory>

#include "common/error.h"
#include "common/intern.h"
#include "common/log.h"
#include "common/threadpool.h"
#include "core/alloc_state.h"
#include "core/decide_index.h"
#include "core/fault_tolerance.h"
#include "model/model_zoo.h"
#include "perf/profiler.h"
#include "plan/plan_cache.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace rubick {

namespace {
// Minimum normalized-slope advantage before reallocating a unit (guards
// against float-noise thrash between equal jobs).
constexpr double kSlopeEps = 1e-9;
// Minimum normalized CPU slope worth pursuing beyond the floor.
constexpr double kCpuSlopeEps = 1e-4;

// FNV-1a accumulator for the round digest.
struct RoundDigest {
  std::uint64_t h = 1469598103934665603ull;

  void mix(std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  }
  void mix_int(int v) {
    mix(static_cast<std::uint64_t>(static_cast<std::uint32_t>(v)));
  }
  void mix_double(double v) {
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    mix(bits);
  }
  void mix_bool(bool v) { mix(v ? 0x9e3779b97f4a7c15ull : 0x7f4a7c159e3779b9ull); }
  void mix_plan(const ExecutionPlan& p) {
    mix_int(p.dp);
    mix_int(p.tp);
    mix_int(p.pp);
    mix_int(p.ga_steps);
    mix_int(p.micro_batches);
    mix_int(static_cast<int>(p.zero));
    mix_bool(p.grad_ckpt);
  }
};

// Perfetto flow start: a wall-clock anchor inside the phase:decide span,
// carrying the decision-record seq as the flow id. The matching flow end is
// emitted on the simulated-time track by the ProvenanceObserver when it
// drains the round (DESIGN.md §12).
void record_decision_flow(std::uint64_t seq) {
  TraceRecorder& rec = TraceRecorder::global();
  if (!rec.enabled()) return;
  rec.add_flow_start_wall("scheduler", "decision", rec.now_ns(), seq);
}
}  // namespace

RubickPolicy::RubickPolicy(RubickConfig config) : config_(std::move(config)) {}

RubickConfig RubickPolicy::full() { return RubickConfig{}; }

RubickConfig RubickPolicy::plans_only() {
  RubickConfig c;
  c.reallocate_resources = false;
  return c;
}

RubickConfig RubickPolicy::resources_only() {
  RubickConfig c;
  c.reconfigure_plans = false;
  c.scale_dp_when_fixed = true;
  return c;
}

RubickConfig RubickPolicy::neither() {
  RubickConfig c;
  c.reconfigure_plans = false;
  c.scale_dp_when_fixed = false;
  c.reallocate_resources = false;
  return c;
}

std::string RubickPolicy::name() const {
  if (config_.reconfigure_plans && config_.reallocate_resources)
    return "Rubick";
  if (config_.reconfigure_plans) return "Rubick-E";
  if (config_.reallocate_resources) return "Rubick-R";
  return "Rubick-N";
}

const PlanSelector& RubickPolicy::selector_for(const JobSpec& spec) {
  if (config_.reconfigure_plans) return full_selector_;
  auto it = job_selectors_.find(spec.id);
  if (it == job_selectors_.end()) {
    std::unique_ptr<PlanSelector> sel;
    if (config_.scale_dp_when_fixed)
      sel = std::make_unique<ScaledDpSelector>(spec.initial_plan);
    else
      sel = std::make_unique<FixedPlanSelector>(spec.initial_plan);
    it = job_selectors_.emplace(spec.id, std::move(sel)).first;
  }
  return *it->second;
}

struct RubickPolicy::JobInfo {
  const JobView* view = nullptr;
  const ModelSpec* model = nullptr;
  const PlanSelector* selector = nullptr;
  double baseline = 1.0;
  ResourceVector min_res;
  bool frozen = false;
  // Provenance-only flags (recorded into GateFacts; never read back by the
  // decision logic).
  bool starved = false;        // starvation force-schedule fired this round
  bool opportunistic = false;  // admitted below minRes this round
};

std::vector<Assignment> RubickPolicy::schedule(const SchedulerInput& input) {
  RUBICK_CHECK(input.models != nullptr && input.estimator != nullptr);
  RUBICK_TRACE_SPAN("scheduler", "RubickPolicy::schedule");
  RUBICK_SCOPED_LATENCY_S("scheduler.decision_latency_s");
  RUBICK_COUNTER_ADD("scheduler.rounds", 1);
  if (bound_store_ != input.models ||
      bound_version_ != input.models->version()) {
    // Rebind when the store was swapped or a model was refitted online; all
    // derived predictions (curves, baselines, minRes) go stale with it.
    predictor_ = std::make_unique<BestPlanPredictor>(
        *input.cluster, *input.models, *input.estimator);
    sla_ = std::make_unique<SlaCalculator>(*predictor_, *input.models,
                                           *input.cluster,
                                           config_.cpu_floor_per_gpu);
    bound_store_ = input.models;
    bound_version_ = input.models->version();
  }

  // ---------- Round digest / incremental fast path. ----------
  // Hash every input the decision phases read. Round-varying quantities
  // (now, total active time, reconfiguration count, penalty) influence
  // decisions only through two per-job predicates — the reconfiguration-
  // penalty gate and the best-effort starvation test — so the digest hashes
  // those booleans, not the raw clocks: a steady-state round where neither
  // predicate flips and nothing else moved replays the previous
  // assignments. Everything else (minRes, baselines, curves) is a
  // deterministic function of the hashed inputs and this policy's fixed
  // config, so equal digests imply byte-identical decisions.
  const std::uint64_t digest = [&] {
    RoundDigest d;
    d.mix(reinterpret_cast<std::uintptr_t>(input.models));
    d.mix(input.models->version());
    d.mix(input.estimator->fingerprint());
    d.mix_int(input.cluster->num_nodes);
    d.mix_int(input.cluster->node.gpus);
    d.mix_int(input.cluster->node.cpus);
    d.mix(input.cluster->node.memory_bytes);
    d.mix(input.cluster->node.gpu_memory_bytes);
    for (double s : input.cluster->node_speed) d.mix_double(s);
    d.mix_double(input.cluster->intra_node_bw_bps);
    d.mix_double(input.cluster->inter_node_bw_bps);
    d.mix_double(input.cluster->pcie_bw_bps);
    d.mix(static_cast<std::uint64_t>(input.jobs.size()));
    for (const JobView& v : input.jobs) {
      const JobSpec& spec = *v.spec;
      d.mix_int(spec.id);
      d.mix(intern_key_string_cached(spec.model_name));
      d.mix(intern_key_string_cached(spec.tenant));
      d.mix_int(spec.global_batch);
      d.mix_int(spec.requested.gpus);
      d.mix_int(spec.requested.cpus);
      d.mix(spec.requested.memory_bytes);
      d.mix_bool(spec.guaranteed);
      d.mix_plan(spec.initial_plan);
      d.mix_bool(v.running);
      d.mix_plan(v.plan);
      d.mix(static_cast<std::uint64_t>(v.placement.slices.size()));
      for (const NodeSlice& s : v.placement.slices) {
        d.mix_int(s.node);
        d.mix_int(s.gpus);
        d.mix_int(s.cpus);
        d.mix(s.host_memory_bytes);
      }
      if (v.running) {
        const double T = v.total_active_time_s;
        const double nd = (v.reconfig_count + 1) * input.reconfig_penalty_s;
        d.mix_bool(T <= 0.0 || (T - nd) / T < config_.gate_threshold);
      } else {
        // queued_since orders guaranteed admission FCFS and (with now)
        // decides best-effort starvation.
        d.mix_double(v.queued_since);
        if (!spec.guaranteed)
          d.mix_bool(input.now - v.queued_since <
                     config_.starvation_threshold_s);
      }
      // Fault-tolerance inputs: the shared post-pass
      // (core/fault_tolerance.h) is a pure function of these, so hashing
      // them keeps fast-path replay exact under fault injection. The
      // backoff gate is hashed as its predicate, not as raw times.
      d.mix_int(v.reconfig_failures);
      d.mix_bool(input.now < v.retry_not_before_s);
      d.mix_bool(v.degraded);
      d.mix_bool(v.has_last_good);
      if (v.has_last_good) d.mix_plan(v.last_good_plan);
    }
    // Down-node bitmap: any node flipping up/down must invalidate the
    // replayed round.
    if (input.down_nodes != nullptr)
      for (char down : *input.down_nodes) d.mix_bool(down != 0);
    return d.h;
  }();
  // Provenance hook: null unless a recorder is attached (and compiled out
  // entirely under RUBICK_PROVENANCE_DISABLED); every record site below is
  // behind this one pointer test.
  ProvenanceRecorder* const prov =
      kProvenanceCompiledIn ? provenance() : nullptr;

  if (config_.enable_fast_path && has_last_round_ && digest == last_digest_) {
    RUBICK_COUNTER_ADD("scheduler.fast_path_rounds", 1);
    ++fast_path_rounds_;
    if (prov != nullptr) {
      // Replay: re-emit the cached slow-path decisions verbatim, marked as
      // a fast-path round with the matched digest.
      RoundRecord round;
      round.now_s = input.now;
      round.policy = name();
      round.digest = digest;
      round.fast_path = true;
      round.decisions = last_decisions_;
      round.trades = last_trades_;
      record_decision_flow(prov->record(std::move(round)));
    }
    return last_assignments_;
  }

  // ---------- Build per-job info. ----------
  int free_gpus_now = input.cluster->total_gpus();
  for (const auto& v : input.jobs)
    if (v.running) free_gpus_now -= v.placement.total_gpus();

  const int total_gpus = input.cluster->total_gpus();

  // Phase 1 (serial): bind each job to its model and selector. This is the
  // only part that mutates policy-level state (the per-job selector map).
  std::vector<JobInfo> infos;
  infos.reserve(input.jobs.size());
  {
    RUBICK_TRACE_SPAN("scheduler", "phase:bind");
    for (const auto& v : input.jobs) {
      JobInfo info;
      info.view = &v;
      info.model = &find_model(v.spec->model_name);
      info.selector = &selector_for(*v.spec);
      infos.push_back(info);
    }
  }

  // Phase 2 (parallel): build the sensitivity curves for every distinct
  // (model, batch, selector) combination, then the per-job SLA quantities
  // (baseline, minRes). Predictor and SLA caches are concurrency-safe and
  // every value is a deterministic function of its inputs, so this phase is
  // byte-identical to the serial order; the decision loop below then runs
  // single-threaded on pure cache hits.
  {
    RUBICK_TRACE_SPAN("scheduler", "phase:curves");
    ThreadPool& pool = ThreadPool::global();
    std::vector<const JobInfo*> combos;
    for (const auto& info : infos) {
      bool seen = false;
      for (const JobInfo* c : combos)
        seen |= c->model == info.model && c->selector == info.selector &&
                c->view->spec->global_batch == info.view->spec->global_batch;
      if (!seen) combos.push_back(&info);
    }
    pool.parallel_for(0, combos.size(), [&](std::size_t i) {
      const JobInfo& c = *combos[i];
      predictor_->warm(*c.model, c.view->spec->global_batch, *c.selector,
                       total_gpus, config_.cpu_floor_per_gpu, &pool);
    });
    pool.parallel_for(0, infos.size(), [&](std::size_t i) {
      JobInfo& info = infos[i];
      info.baseline = sla_->baseline_throughput(*info.view->spec);
      info.min_res = sla_->min_res(*info.view->spec, *info.selector,
                                   !config_.reallocate_resources);
    });
  }

  // Phase 3 (serial): the reconfiguration-penalty gate and everything after
  // it — the decision loop stays single-threaded per run (see DESIGN.md
  // "Threading model").
  RUBICK_TRACE_SPAN("scheduler", "phase:decide");  // to end of round
  std::vector<std::pair<int, Placement>> running;
  for (auto& info : infos) {
    const JobView& v = *info.view;
    if (!v.running) continue;
    // Reconfiguration-penalty gate (paper §5.2): only touch the job if
    // (T - N*delta)/T stays above the threshold with one more reconfig.
    // SLA priority overrides the gate: a job still below its minimum
    // demand (opportunistically admitted) stays eligible to grow — but
    // only when free GPUs exist, so below-min jobs don't churn victims
    // every round while the cluster is packed.
    const double T = v.total_active_time_s;
    const double nd = (v.reconfig_count + 1) * input.reconfig_penalty_s;
    const bool below_min_can_grow =
        v.placement.total_gpus() < info.min_res.gpus && free_gpus_now > 0;
    info.frozen = (T <= 0.0 || (T - nd) / T < config_.gate_threshold) &&
                  !below_min_can_grow;
    running.emplace_back(v.spec->id, v.placement);
  }
  if (telemetry_enabled()) {
    int frozen_jobs = 0;
    for (const auto& info : infos) frozen_jobs += info.frozen ? 1 : 0;
    RUBICK_GAUGE_SET("scheduler.frozen_jobs",
                     static_cast<double>(frozen_jobs));
  }

  AllocState state(*input.cluster, running, input.down_nodes);
  std::map<int, ExecutionPlan> chosen_plan;
  // Provenance: the Algorithm-1 trades committed this round (stays empty
  // with no recorder attached). schedule_job() truncates back to its entry
  // mark when an attempt rolls back, so only surviving trades are logged.
  std::vector<TradeEvent> trades;
  for (const auto& info : infos)
    if (info.view->running) chosen_plan[info.view->spec->id] = info.view->plan;

  auto job_id = [](const JobInfo& info) { return info.view->spec->id; };
  auto batch = [](const JobInfo& info) { return info.view->spec->global_batch; };

  // ---------- Decide-phase index (DESIGN.md §14). ----------
  // Under DecideEngine::kIndexed the victim searches, slope reads and node
  // orderings below are served by DecideIndex; the legacy branches are the
  // executable spec the index must match byte for byte. The index observes
  // every AllocState mutation through the listener seam and is rolled back
  // in lockstep with state.restore() (see schedule_job).
  std::unique_ptr<DecideIndex> didx;
  if (config_.decide_engine == DecideEngine::kIndexed) {
    didx = std::make_unique<DecideIndex>(
        *input.cluster, &state, predictor_.get(), config_.cpu_floor_per_gpu,
        /*victim_heaps=*/config_.reallocate_resources);
    for (const auto& info : infos) {
      DecideIndex::JobMeta meta;
      meta.job_id = job_id(info);
      meta.model = info.model;
      meta.global_batch = batch(info);
      meta.selector = info.selector;
      meta.baseline = info.baseline;
      meta.min_res = info.min_res;
      meta.guaranteed = info.view->spec->guaranteed;
      meta.frozen = info.frozen;
      didx->add_job(meta);
    }
    state.set_listener(didx.get());
    didx->build();
  }
  auto idx_of = [&](const JobInfo& info) {
    return static_cast<int>(&info - infos.data());
  };

  // ---------- Slope helpers (normalized to per-job baseline speedup). ----
  // The indexed engine serves these from the per-job memo (invalidated by
  // the job's state version); the legacy expressions below are the spec.
  auto gpu_up = [&](const JobInfo& info) {
    if (didx != nullptr) return didx->gpu_up(idx_of(info));
    const int g = state.job_gpus(job_id(info));
    const int c = std::max(1, state.job_cpus(job_id(info)));
    return predictor_->gpu_slope_up(*info.model, batch(info), *info.selector,
                                    g, c) /
           info.baseline;
  };
  auto gpu_down = [&](const JobInfo& info) {
    if (didx != nullptr) return didx->gpu_down(idx_of(info));
    const int g = state.job_gpus(job_id(info));
    const int c = std::max(1, state.job_cpus(job_id(info)));
    return predictor_->gpu_slope_down(*info.model, batch(info), *info.selector,
                                      g, c) /
           info.baseline;
  };
  auto cpu_up = [&](const JobInfo& info) {
    if (didx != nullptr) return didx->cpu_up(idx_of(info));
    const int g = state.job_gpus(job_id(info));
    if (g <= 0) return 0.0;
    const int c = std::max(1, state.job_cpus(job_id(info)));
    return predictor_->cpu_slope_up(*info.model, batch(info), *info.selector,
                                    g, c) /
           info.baseline;
  };
  auto cpu_down = [&](const JobInfo& info) {
    if (didx != nullptr) return didx->cpu_down(idx_of(info));
    const int g = state.job_gpus(job_id(info));
    if (g <= 0) return 0.0;
    const int c = std::max(1, state.job_cpus(job_id(info)));
    return predictor_->cpu_slope_down(*info.model, batch(info), *info.selector,
                                      g, c) /
           info.baseline;
  };

  // Landmarks of the GPU sensitivity curve: the saturation point (jobs
  // never take GPUs beyond it) and the smallest feasible count (for
  // opportunistic/starvation admission). Memoized in the predictor per
  // (model, batch, selector) combo — warm() pre-fills them in phase 2, so
  // these are pure cache hits instead of per-job O(total_gpus) scans.
  auto max_useful_gpus = [&](const JobInfo& info) {
    return predictor_
        ->curve_summary(*info.model, batch(info), *info.selector,
                        config_.cpu_floor_per_gpu, total_gpus)
        .max_useful_gpus;
  };

  auto min_feasible_gpus_for = [&](const JobInfo& info) {
    return predictor_
        ->curve_summary(*info.model, batch(info), *info.selector,
                        config_.cpu_floor_per_gpu, total_gpus)
        .min_feasible_gpus;
  };

  // ---------- Victim selection (GetLowestSlopeOverMinJob). ----------
  // `allow_frozen` lets a claimant that is still below its minimum demand
  // shrink even recently-reconfigured jobs: denying a guaranteed job its
  // minRes admission would head-of-line block the queue, which is worse
  // than charging the victim one extra checkpoint-resume cycle.
  auto gpu_victim = [&](int node, int exclude, bool allow_frozen) -> JobInfo* {
    if (didx != nullptr) {
      const int idx = didx->gpu_victim(node, exclude, allow_frozen);
      return idx < 0 ? nullptr : &infos[static_cast<std::size_t>(idx)];
    }
    JobInfo* best = nullptr;
    double best_slope = std::numeric_limits<double>::infinity();
    for (auto& cand : infos) {
      const int id = job_id(cand);
      if (id == exclude || (cand.frozen && !allow_frozen)) continue;
      if (state.job_gpus_on(id, node) <= 0) continue;
      const int g = state.job_gpus(id);
      if (g <= cand.min_res.gpus) continue;  // must stay over its minimum
      if (g - 1 == 0) {
        if (cand.view->spec->guaranteed) continue;  // only BE is preemptible
      } else {
        // Shrinking must leave the victim at least one feasible plan.
        const int c = std::max(1, state.job_cpus(id));
        if (predictor_->envelope(*cand.model, batch(cand), *cand.selector,
                                 g - 1, c) <= 0.0)
          continue;
      }
      const double s = gpu_down(cand);
      if (s < best_slope) {
        best_slope = s;
        best = &cand;
      }
    }
    return best;
  };

  auto cpu_victim = [&](int node, int exclude, bool allow_frozen) -> JobInfo* {
    if (didx != nullptr) {
      const int idx = didx->cpu_victim(node, exclude, allow_frozen);
      return idx < 0 ? nullptr : &infos[static_cast<std::size_t>(idx)];
    }
    JobInfo* best = nullptr;
    double best_slope = std::numeric_limits<double>::infinity();
    for (auto& cand : infos) {
      const int id = job_id(cand);
      if (id == exclude || (cand.frozen && !allow_frozen)) continue;
      if (state.job_cpus_on(id, node) <= 0) continue;
      const int floor_c = std::max(
          cand.min_res.cpus, config_.cpu_floor_per_gpu * state.job_gpus(id));
      if (state.job_cpus(id) <= std::max(1, floor_c)) continue;
      const double s = cpu_down(cand);
      if (s < best_slope) {
        best_slope = s;
        best = &cand;
      }
    }
    return best;
  };

  auto shrink_victim_gpu = [&](JobInfo& claimant, JobInfo& victim, int node,
                               bool forced) {
    const int id = job_id(victim);
    std::size_t trade_index = trades.size();
    if (prov != nullptr) {
      TradeEvent t;
      t.gpu = true;
      t.claimant_id = job_id(claimant);
      t.victim_id = id;
      t.node = node;
      t.claimant_slope = gpu_up(claimant);
      t.victim_slope = gpu_down(victim);
      t.victim_before = state.job_gpus(id);
      t.victim_min = victim.min_res.gpus;
      t.forced = forced;
      trades.push_back(t);
    }
    state.give_back_gpus(id, node, 1);
    RUBICK_COUNTER_ADD("scheduler.gpu_shrinks", 1);
    if (state.job_gpus(id) == 0) {
      // Shrunk to zero: preemption (best-effort only, checked above).
      state.release_job(id);
      chosen_plan.erase(id);
      RUBICK_COUNTER_ADD("scheduler.preemptions", 1);
    } else if (state.job_gpus_on(id, node) == 0 &&
               state.job_cpus_on(id, node) > 0) {
      // No GPUs left on this node: its CPUs there are useless, free them.
      state.give_back_cpus(id, node, state.job_cpus_on(id, node));
    }
    if (prov != nullptr) {
      TradeEvent& t = trades[trade_index];
      t.victim_after = state.job_gpus(id);
      t.preempted_victim = t.victim_after == 0;
    }
  };

  // Gives one GPU back to the free pool from the job's smallest slice
  // (releasing stranded CPUs with it). Returns false if the job holds none.
  auto give_back_one_gpu = [&](int id) {
    int pick = -1, pick_g = std::numeric_limits<int>::max();
    for (int n : state.job_nodes(id)) {
      const int gn = state.job_gpus_on(id, n);
      if (gn > 0 && gn < pick_g) {
        pick_g = gn;
        pick = n;
      }
    }
    if (pick < 0) return false;
    state.give_back_gpus(id, pick, 1);
    if (state.job_gpus_on(id, pick) == 0 && state.job_cpus_on(id, pick) > 0)
      state.give_back_cpus(id, pick, state.job_cpus_on(id, pick));
    return true;
  };

  // ---------- Plan + memory commit (GetBestPlan / AllocMem). ----------
  auto commit_plan_memory = [&](JobInfo& info) -> bool {
    const int id = job_id(info);
    // The job may sit at a GPU count with no exact-count plan (the curve is
    // flat across invalid counts): trim useless GPUs back to the free pool
    // until the placement supports at least one plan.
    while (state.job_gpus(id) > 0 &&
           predictor_
               ->ranked_for_placement(*info.model, batch(info),
                                      *info.selector, state.placement_of(id))
               ->empty()) {
      if (!give_back_one_gpu(id)) break;
    }
    const Placement placement = state.placement_of(id);
    if (placement.total_gpus() <= 0) return false;
    // Admission requires the full minimum demand; running jobs keep the
    // best allocation they currently can (see grow_allocation).
    if (!info.view->running &&
        placement.total_gpus() < std::max(1, info.min_res.gpus))
      return false;

    // Unchanged allocation: keep the current plan unless a switch clears
    // the thrash margin.
    const bool same_shape = [&] {
      if (!info.view->running) return false;
      const Placement& cur = info.view->placement;
      if (cur.slices.size() != placement.slices.size()) return false;
      for (std::size_t i = 0; i < cur.slices.size(); ++i) {
        if (cur.slices[i].node != placement.slices[i].node ||
            cur.slices[i].gpus != placement.slices[i].gpus ||
            cur.slices[i].cpus != placement.slices[i].cpus)
          return false;
      }
      return true;
    }();

    const auto ranked = predictor_->ranked_for_placement(
        *info.model, batch(info), *info.selector, placement);
    if (ranked->empty()) return false;

    if (same_shape) {
      const PerfModel& perf = input.models->get(info.model->name);
      const PerfContext ctx = make_perf_context(*input.cluster, placement);
      const double current_thr = perf.predict_throughput(
          *info.model, info.view->plan, batch(info), ctx);
      if (ranked->front().throughput <
          config_.plan_switch_gain * current_thr) {
        chosen_plan[id] = info.view->plan;  // memory already in place
        return true;
      }
    }

    state.release_memory(id);
    for (const auto& pred : *ranked) {
      if (state.alloc_memory(id, *info.model, pred.plan, batch(info),
                             *input.estimator)) {
        chosen_plan[id] = pred.plan;
        return true;
      }
    }
    return false;
  };

  // ---------- Gang placement (Rubick-E / Rubick-N: fixed resources). ----
  auto gang_place = [&](JobInfo& info) -> bool {
    if (info.view->running) return true;
    const JobSpec& spec = *info.view->spec;
    const int id = spec.id;
    const int want_g = spec.requested.gpus;
    const int cpu_per_gpu =
        std::max(1, (spec.requested.cpus + want_g - 1) / want_g);

    // Fast/empty nodes first (NodeOrderLess, shared with grow_allocation).
    // The indexed engine reads the incrementally maintained ranking instead
    // of re-sorting per job; both produce the same total order.
    std::vector<int> order;
    if (didx != nullptr) {
      order = didx->ranked_nodes();
    } else {
      order.resize(static_cast<std::size_t>(input.cluster->num_nodes));
      for (int n = 0; n < input.cluster->num_nodes; ++n)
        order[static_cast<std::size_t>(n)] = n;
      std::sort(order.begin(), order.end(),
                NodeOrderLess{input.cluster, &state});
    }

    int got = 0;
    for (int n : order) {
      if (got >= want_g) break;
      int take = std::min(state.free_gpus(n), want_g - got);
      take = std::min(take, state.free_cpus(n) / cpu_per_gpu);
      if (take <= 0) continue;
      state.take_gpus(id, n, take);
      state.take_cpus(id, n, take * cpu_per_gpu);
      got += take;
    }
    return got == want_g;
  };

  // ---------- ScheduleJob (Algorithm 1 lines 6-24). ----------
  // Scratch for grow_allocation's visited-node dedup (set/cleared per call;
  // hoisted so a round does one allocation, not one per scheduled job).
  std::vector<char> own_node(static_cast<std::size_t>(input.cluster->num_nodes),
                             0);
  auto grow_allocation = [&](JobInfo& info) {
    const JobSpec& spec = *info.view->spec;
    const int id = spec.id;
    const int max_g = max_useful_gpus(info);

    // Visit nodes where the job already holds GPUs first (locality), then
    // the rest — faster nodes first (heterogeneous pods: a gang job paces
    // at its slowest GPU), then emptier ones (NodeOrderLess). The indexed
    // engine appends from the maintained ranking; the legacy path sorts
    // the remainder per job. The `own_node` bitmask replaces the old
    // std::find dedup (O(N²) in nodes).
    std::vector<int> order;
    for (int n : state.job_nodes(id)) order.push_back(n);
    const std::size_t own_count = order.size();
    for (std::size_t i = 0; i < own_count; ++i)
      own_node[static_cast<std::size_t>(order[i])] = 1;
    if (didx != nullptr) {
      for (int n : didx->ranked_nodes())
        if (own_node[static_cast<std::size_t>(n)] == 0) order.push_back(n);
    } else {
      for (int n = 0; n < input.cluster->num_nodes; ++n)
        if (own_node[static_cast<std::size_t>(n)] == 0) order.push_back(n);
      std::sort(order.begin() + static_cast<std::ptrdiff_t>(own_count),
                order.end(), NodeOrderLess{input.cluster, &state});
    }
    for (std::size_t i = 0; i < own_count; ++i)
      own_node[static_cast<std::size_t>(order[i])] = 0;

    for (int n : order) {
      // --- GPUs ---
      while (state.job_gpus(id) < max_g) {
        if (state.free_gpus(n) > 0) {
          state.take_gpus(id, n, 1);
          continue;
        }
        const bool below_min = state.job_gpus(id) < info.min_res.gpus;
        JobInfo* victim = gpu_victim(n, id, below_min);
        if (victim == nullptr) break;
        if (below_min || gpu_up(info) > gpu_down(*victim) + kSlopeEps) {
          shrink_victim_gpu(info, *victim, n, below_min);
          state.take_gpus(id, n, 1);
        } else {
          break;
        }
      }
      // --- CPUs (only on nodes where the job holds GPUs) ---
      if (state.job_gpus_on(id, n) <= 0) continue;
      while (true) {
        const int floor_c = std::max(
            info.min_res.cpus, config_.cpu_floor_per_gpu * state.job_gpus(id));
        const bool below_floor = state.job_cpus(id) < floor_c;
        if (!below_floor && cpu_up(info) <= kCpuSlopeEps) break;
        if (state.free_cpus(n) > 0) {
          state.take_cpus(id, n, 1);
          continue;
        }
        JobInfo* victim = cpu_victim(n, id, below_floor);
        if (victim == nullptr) break;
        if (below_floor || cpu_up(info) > cpu_down(*victim) + kSlopeEps) {
          if (prov != nullptr) {
            const int vid = job_id(*victim);
            TradeEvent t;
            t.gpu = false;
            t.claimant_id = id;
            t.victim_id = vid;
            t.node = n;
            t.claimant_slope = cpu_up(info);
            t.victim_slope = cpu_down(*victim);
            t.victim_before = state.job_cpus(vid);
            t.victim_after = t.victim_before - 1;
            t.victim_min =
                std::max(victim->min_res.cpus,
                         config_.cpu_floor_per_gpu * state.job_gpus(vid));
            t.forced = below_floor;
            trades.push_back(t);
          }
          state.give_back_cpus(job_id(*victim), n, 1);
          state.take_cpus(id, n, 1);
        } else {
          break;
        }
      }
      RUBICK_DEBUG("grow " << id << " node " << n << ": g="
                           << state.job_gpus(id) << " c="
                           << state.job_cpus(id) << " max_g=" << max_g);
    }

    // Trim GPUs that sit on the flat part of the curve (beyond the smallest
    // count achieving the same envelope value) back to the free pool.
    {
      const int c = std::max(1, state.job_cpus(id));
      int g = state.job_gpus(id);
      const double value =
          predictor_->envelope(*info.model, batch(info), *info.selector, g, c);
      while (g > std::max(1, info.min_res.gpus)) {
        const double v1 = predictor_->envelope(*info.model, batch(info),
                                               *info.selector, g - 1, c);
        if (v1 + 1e-12 < value) break;
        // Give back from the node with the smallest slice.
        int pick = -1, pick_g = std::numeric_limits<int>::max();
        for (int n : state.job_nodes(id)) {
          const int gn = state.job_gpus_on(id, n);
          if (gn > 0 && gn < pick_g) {
            pick_g = gn;
            pick = n;
          }
        }
        if (pick < 0) break;
        state.give_back_gpus(id, pick, 1);
        if (state.job_gpus_on(id, pick) == 0 &&
            state.job_cpus_on(id, pick) > 0)
          state.give_back_cpus(id, pick, state.job_cpus_on(id, pick));
        --g;
      }
    }

    // Trimming may have released CPUs along with emptied slices; restore
    // the input-pipeline floor from free cores on the remaining nodes.
    {
      const int floor_c = std::max(info.min_res.cpus,
                                   config_.cpu_floor_per_gpu *
                                       state.job_gpus(id));
      for (int n : state.job_nodes(id)) {
        while (state.job_cpus(id) < floor_c && state.free_cpus(n) > 0)
          state.take_cpus(id, n, 1);
      }
    }

    // A queued job must secure its full minimum demand to be admitted
    // (Alg. 1 line 19). A RUNNING job keeps whatever it grew into: rolling
    // back a partial growth to the old allocation would waste free
    // resources whenever the full minRes is blocked by one unpreemptible
    // GPU.
    if (info.view->running)
      return state.job_gpus(id) >= 1 && state.job_cpus(id) >= 1;
    return state.job_gpus(id) >= std::max(1, info.min_res.gpus) &&
           state.job_cpus(id) >= std::max(1, info.min_res.cpus);
  };

  auto schedule_job = [&](JobInfo& info) -> bool {
    const auto snap = state.snapshot();
    const std::size_t index_mark = didx != nullptr ? didx->mark() : 0;
    const auto plans_snap = chosen_plan;
    const std::size_t trades_mark = trades.size();
    const int entry_gpus = state.job_gpus(job_id(info));
    bool ok = config_.reallocate_resources ? grow_allocation(info)
                                           : gang_place(info);
    RUBICK_DEBUG("schedule_job " << job_id(info) << " grow/gang="
                                 << ok << " g=" << state.job_gpus(job_id(info))
                                 << " c=" << state.job_cpus(job_id(info))
                                 << " minres=" << info.min_res.to_string());
    if (ok) ok = commit_plan_memory(info);
    RUBICK_DEBUG("schedule_job " << job_id(info) << " after commit=" << ok
                                 << " g=" << state.job_gpus(job_id(info)));
    // A running guaranteed job at or under its minimum may only ramp up:
    // the exact-plan trim in commit_plan_memory can walk a grown-but-
    // awkward placement (free capacity reshaped by a node fault) far below
    // the entry count, and Algorithm 1 sanctions under-min states only
    // while growing toward minRes. Keep the old allocation instead.
    if (ok && info.view->running && info.view->spec->guaranteed &&
        entry_gpus <= info.min_res.gpus &&
        state.job_gpus(job_id(info)) < entry_gpus)
      ok = false;
    if (!ok) {
      state.restore(snap);
      // Re-index everything the failed attempt touched from the restored
      // state (restore() itself bypasses the listener seam).
      if (didx != nullptr) didx->rollback(index_mark);
      chosen_plan = plans_snap;
      // Rolled-back attempts must not leave phantom trades in the log.
      trades.resize(trades_mark);
    } else if (didx != nullptr) {
      didx->commit(index_mark);
    }
    return ok;
  };

  // ---------- Schedule() (Algorithm 1 lines 1-5). ----------
  // 1. Privileged: queued guaranteed jobs within their tenant's quota, FCFS.
  std::map<std::string, int> quota_used;
  for (const auto& info : infos)
    if (info.view->running && info.view->spec->guaranteed)
      quota_used[info.view->spec->tenant] += info.min_res.gpus;

  std::vector<JobInfo*> queued_guaranteed;
  for (auto& info : infos)
    if (!info.view->running && info.view->spec->guaranteed)
      queued_guaranteed.push_back(&info);
  std::sort(queued_guaranteed.begin(), queued_guaranteed.end(),
            [](const JobInfo* a, const JobInfo* b) {
              return a->view->queued_since < b->view->queued_since;
            });
  for (JobInfo* info : queued_guaranteed) {
    const std::string& tenant = info->view->spec->tenant;
    const auto quota_it = config_.tenant_quota_gpus.find(tenant);
    const int need = std::max(1, info->min_res.gpus);
    if (quota_it != config_.tenant_quota_gpus.end() &&
        quota_used[tenant] + need > quota_it->second)
      continue;  // quota exhausted: wait
    if (schedule_job(*info)) {
      quota_used[tenant] += need;
    } else if (config_.opportunistic_admission &&
               config_.reallocate_resources) {
      // Could not secure the full minimum demand right now. Rather than
      // queueing (zero progress), start the job at its minimum feasible
      // size; the below-min clause will force-grow it toward minRes in
      // later rounds as resources free up.
      const int g = min_feasible_gpus_for(*info);
      if (g > 0 && g < info->min_res.gpus) {
        const ResourceVector saved = info->min_res;
        info->min_res =
            ResourceVector{g, std::max(1, config_.cpu_floor_per_gpu * g), 0};
        if (schedule_job(*info)) {
          quota_used[tenant] += need;
          info->opportunistic = true;
          RUBICK_COUNTER_ADD("scheduler.opportunistic_admissions", 1);
        }
        info->min_res = saved;
      }
    }
  }

  // 2. Starving best-effort jobs: force in at their minimum feasible size.
  for (auto& info : infos) {
    if (info.view->running || info.view->spec->guaranteed) continue;
    if (input.now - info.view->queued_since < config_.starvation_threshold_s)
      continue;
    const int g = min_feasible_gpus_for(info);
    if (g <= 0) continue;
    info.starved = true;  // the starvation override fired (provenance)
    const ResourceVector saved = info.min_res;
    info.min_res =
        ResourceVector{g, std::max(1, config_.cpu_floor_per_gpu * g), 0};
    schedule_job(info);
    info.min_res = saved;
  }

  // 3. Everyone else (queued best-effort + running), highest slope first.
  std::vector<JobInfo*> rest;
  for (auto& info : infos) {
    if (info.frozen) continue;
    if (info.view->running) {
      rest.push_back(&info);
    } else if (!info.view->spec->guaranteed && state.job_gpus(job_id(info)) == 0) {
      rest.push_back(&info);
    }
  }
  std::stable_sort(rest.begin(), rest.end(),
                   [&](JobInfo* a, JobInfo* b) {
                     const double ga = gpu_up(*a), gb = gpu_up(*b);
                     if (ga != gb) return ga > gb;
                     return cpu_up(*a) > cpu_up(*b);
                   });
  for (JobInfo* info : rest) schedule_job(*info);

  // ---------- Final re-plan pass + assignment emission. ----------
  std::vector<Assignment> out;
  for (auto& info : infos) {
    const int id = job_id(info);
    Placement placement = state.placement_of(id);
    if (placement.total_gpus() <= 0) continue;  // queued or preempted

    if (info.frozen && placement == info.view->placement) {
      out.push_back(Assignment{id, info.view->placement, info.view->plan});
      continue;
    }
    // A frozen job that was shrunk by a below-min claimant falls through to
    // the re-plan path and pays the reconfiguration like everyone else.

    // Re-plan if the committed plan went stale (the job was shrunk as a
    // victim after its own commit).
    auto plan_it = chosen_plan.find(id);
    if (plan_it == chosen_plan.end() ||
        plan_it->second.num_gpus() != placement.total_gpus()) {
      if (!commit_plan_memory(info)) {
        // No feasible plan at the final shape (rare): drop the allocation.
        RUBICK_WARN("job " << id << " lost feasibility after shrinking; "
                           << "returning it to the queue");
        state.release_job(id);
        chosen_plan.erase(id);
        continue;
      }
      plan_it = chosen_plan.find(id);
    }
    placement = state.placement_of(id);  // memory may have moved
    out.push_back(Assignment{id, placement, plan_it->second});
  }
  // Fault-tolerance post-pass (no-op on fault-free inputs). Runs before
  // the fast-path cache fill so a replayed round returns the post-passed
  // assignments; the digest hashes everything this pass reads.
  std::vector<int> pre_pass_ids;
  if (prov != nullptr) {
    pre_pass_ids.reserve(out.size());
    for (const Assignment& a : out) pre_pass_ids.push_back(a.job_id);
  }
  apply_fault_tolerance(input, out);
  RUBICK_COUNTER_ADD("scheduler.assignments",
                     static_cast<std::uint64_t>(out.size()));
  if (didx != nullptr) {
    const DecideIndex::Stats& ds = didx->stats();
    RUBICK_COUNTER_ADD("scheduler.victim_heap_pops", ds.heap_pops);
    RUBICK_COUNTER_ADD("scheduler.victim_stale_entries", ds.stale_entries);
    RUBICK_COUNTER_ADD("scheduler.slope_evals", ds.slope_evals);
    RUBICK_COUNTER_ADD("scheduler.slope_evals_saved", ds.slope_evals_saved);
  }
  if (telemetry_enabled()) {
    const CacheStats cs = cache_stats();
    RUBICK_GAUGE_SET("predictor.cache_hits", static_cast<double>(cs.hits));
    RUBICK_GAUGE_SET("predictor.cache_misses",
                     static_cast<double>(cs.misses));
    RUBICK_GAUGE_SET("predictor.cache_inserts",
                     static_cast<double>(cs.inserts));
    RUBICK_GAUGE_SET("predictor.cache_hit_rate", cs.hit_rate());
    const PlanCacheStats ps = PlanSetCache::global().stats();
    RUBICK_GAUGE_SET("plan_cache.hits", static_cast<double>(ps.hits));
    RUBICK_GAUGE_SET("plan_cache.misses", static_cast<double>(ps.misses));
    RUBICK_GAUGE_SET("plan_cache.enumerations",
                     static_cast<double>(ps.enumerations));
    RUBICK_GAUGE_SET("plan_cache.hit_rate", ps.hit_rate());
  }
  if (prov != nullptr) {
    // Build the per-job decision records against the POST-pass assignment
    // set, so the log reflects exactly what was emitted; grants removed by
    // apply_fault_tolerance show up as queue/preempt with fault_dropped.
    std::map<int, const Assignment*> granted;
    for (const Assignment& a : out) granted[a.job_id] = &a;
    std::vector<DecisionRecord> decisions;
    decisions.reserve(infos.size());
    for (const auto& info : infos) {
      const JobView& v = *info.view;
      DecisionRecord r;
      r.job_id = v.spec->id;
      r.prev_gpus = v.running ? v.placement.total_gpus() : 0;
      if (v.running) {
        r.has_prev_plan = true;
        r.prev_plan = v.plan;
      }
      const auto it = granted.find(r.job_id);
      const Assignment* a = it == granted.end() ? nullptr : it->second;
      if (a != nullptr) {
        r.gpus = a->placement.total_gpus();
        r.cpus = a->placement.total_cpus();
        r.nodes = static_cast<int>(a->placement.slices.size());
        r.has_plan = true;
        r.plan = a->plan;
        if (r.prev_gpus == 0) {
          r.kind = DecisionKind::kAdmit;
        } else if (r.gpus > r.prev_gpus) {
          r.kind = DecisionKind::kGrow;
        } else if (r.gpus < r.prev_gpus) {
          r.kind = DecisionKind::kShrink;
        } else if (!(a->plan == v.plan)) {
          r.kind = DecisionKind::kReplan;
        } else {
          r.kind = DecisionKind::kKeep;
        }
      } else {
        r.kind = v.running ? DecisionKind::kPreempt : DecisionKind::kQueue;
      }
      r.gates.frozen = info.frozen;
      r.gates.starvation_forced = info.starved;
      r.gates.opportunistic = info.opportunistic;
      r.gates.backoff_gated = !v.running && input.now < v.retry_not_before_s;
      r.gates.degraded = v.degraded;
      r.gates.reconfig_failures = v.reconfig_failures;
      r.gates.retry_not_before_s = v.retry_not_before_s;
      r.gates.fault_dropped =
          a == nullptr && std::find(pre_pass_ids.begin(), pre_pass_ids.end(),
                                    r.job_id) != pre_pass_ids.end();
      r.sla.guaranteed = v.spec->guaranteed;
      r.sla.baseline_throughput = info.baseline;
      r.sla.min_gpus = info.min_res.gpus;
      r.sla.min_cpus = info.min_res.cpus;
      // Sensitivity-curve evidence. The candidate set is summarized by its
      // landmark widths (minimum feasible, chosen and its candidate
      // neighbors, previous, saturation); candidate_width_count records how
      // many widths were actually in play. All envelope reads are warm
      // cache hits on the (w, floor*w) diagonal phase 2 filled.
      const auto summary =
          predictor_->curve_summary(*info.model, batch(info), *info.selector,
                                    config_.cpu_floor_per_gpu, total_gpus);
      const auto widths =
          predictor_->candidate_widths(*info.model, batch(info),
                                       *info.selector);
      r.curve.curve_key = v.spec->model_name + "|" +
                          std::to_string(v.spec->global_batch) + "|" +
                          info.selector->cache_key();
      r.curve.min_feasible_gpus = summary.min_feasible_gpus;
      r.curve.max_useful_gpus = summary.max_useful_gpus;
      int below = 0;
      int above = 0;
      for (const int w : *widths) {
        if (w > total_gpus) break;
        ++r.curve.candidate_width_count;
        if (r.gpus > 0 && w < r.gpus) below = w;
        if (r.gpus > 0 && w > r.gpus && above == 0) above = w;
      }
      std::vector<int> salient = {summary.min_feasible_gpus, below, r.gpus,
                                  above, r.prev_gpus,
                                  summary.max_useful_gpus};
      std::sort(salient.begin(), salient.end());
      salient.erase(std::unique(salient.begin(), salient.end()),
                    salient.end());
      for (const int w : salient) {
        if (w <= 0 || w > total_gpus) continue;
        r.curve.widths.push_back(w);
        r.curve.width_throughput.push_back(predictor_->envelope(
            *info.model, batch(info), *info.selector, w,
            std::max(1, config_.cpu_floor_per_gpu * w)));
      }
      if (r.gpus > 0) {
        r.curve.chosen_throughput =
            predictor_->envelope(*info.model, batch(info), *info.selector,
                                 r.gpus, std::max(1, r.cpus));
      }
      decisions.push_back(std::move(r));
    }
    RoundRecord round;
    round.now_s = input.now;
    round.policy = name();
    round.digest = digest;
    round.fast_path = false;
    round.decisions = decisions;
    round.trades = trades;
    last_decisions_ = std::move(decisions);
    last_trades_ = std::move(trades);
    record_decision_flow(prov->record(std::move(round)));
  }
  if (config_.enable_fast_path) {
    last_digest_ = digest;
    last_assignments_ = out;
    has_last_round_ = true;
  }
  return out;
}

}  // namespace rubick
