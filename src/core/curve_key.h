// Typed memoization key for sensitivity-curve and best-plan caches.
//
// The predictor used to build string keys ("GPT-2|16|full|g8c16t8mn0") with
// an ostringstream per lookup — measurable on the hot path and impossible to
// shard cleanly. CurveKey replaces the strings with interned integer ids
// plus the numeric coordinates; PlanSelector::cache_key() survives only as
// a human-readable debug label. Interning lives in common/intern.h (the
// plan-set cache shares the same id space); it is exact (one id per
// distinct string, no hash collisions) and thread-safe, so concurrently
// warming predictors agree on ids.
#pragma once

#include <cstdint>
#include <functional>


namespace rubick {

struct CurveKey {
  std::uint32_t model_id = 0;     // interned ModelSpec::name
  std::uint32_t selector_id = 0;  // PlanSelector::selector_id()
  std::int32_t batch = 0;         // global batch
  std::int32_t gpus = 0;
  std::int32_t cpus = 0;
  std::int32_t max_tp = 0;        // -1 for envelope entries
  bool multi_node = false;

  friend bool operator==(const CurveKey&, const CurveKey&) = default;
};

}  // namespace rubick

template <>
struct std::hash<rubick::CurveKey> {
  std::size_t operator()(const rubick::CurveKey& k) const noexcept {
    // FNV-1a over the fields; cheap and well-mixed for small structs.
    std::uint64_t h = 1469598103934665603ull;
    auto mix = [&h](std::uint64_t v) {
      h ^= v;
      h *= 1099511628211ull;
    };
    mix(k.model_id);
    mix(k.selector_id);
    mix(static_cast<std::uint32_t>(k.batch));
    mix(static_cast<std::uint32_t>(k.gpus));
    mix(static_cast<std::uint32_t>(k.cpus));
    mix(static_cast<std::uint32_t>(k.max_tp));
    mix(k.multi_node ? 1u : 0u);
    return static_cast<std::size_t>(h);
  }
};
