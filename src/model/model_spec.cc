#include "model/model_spec.h"

#include <sstream>

#include "common/units.h"

namespace rubick {

std::uint64_t ModelSpec::param_bytes_fp16() const {
  return param_count * kBytesPerParamFp16;
}

std::uint64_t ModelSpec::full_state_bytes() const {
  // fp16 weights (2) + fp16 grads (2) + fp32 master weights (4)
  // + fp32 Adam momentum (4) + fp32 Adam variance (4) = 16 bytes per param.
  return param_count * 16ull;
}

std::uint64_t ModelSpec::optimizer_state_bytes() const {
  return param_count * 12ull;
}

std::string ModelSpec::to_string() const {
  std::ostringstream os;
  os << name << "(P=" << static_cast<double>(param_count) / 1e6
     << "M, s=" << seq_len << ", h=" << hidden_size << ", l=" << num_layers
     << ")";
  return os.str();
}

}  // namespace rubick
