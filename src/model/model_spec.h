// Static description of a trainable model architecture.
//
// The performance model (paper §4, Table 1) consumes four architecture
// quantities: sequence length s, hidden size h, layer count l and total
// parameter count P. The memory estimator additionally uses them to size
// activations and model states.
#pragma once

#include <cstdint>
#include <string>

namespace rubick {

struct ModelSpec {
  std::string name;

  // Architecture parameters (Table 1 "Model" row).
  std::uint64_t param_count = 0;  // P, raw parameter count
  int seq_len = 0;                // s
  int hidden_size = 0;            // h
  int num_layers = 0;             // l

  // Default global batch size used when a trace job does not specify one.
  int default_global_batch = 16;

  // Whether TP/PP plans are considered for this model. The paper disables
  // TP and PP for ViT/RoBERTa/BERT/T5 in the trace experiments ("mostly
  // unnecessary for these relatively small models").
  bool allow_model_parallel = true;

  // Approximate forward-pass FLOPs for one training sample (2·P per token).
  double fwd_flops_per_sample() const {
    return 2.0 * static_cast<double>(param_count) *
           static_cast<double>(seq_len);
  }

  // Bytes of fp16 parameters / gradients for the full model.
  std::uint64_t param_bytes_fp16() const;
  // Bytes of the full mixed-precision training state: fp16 weights + fp16
  // grads + fp32 master weights + two fp32 Adam moments (16 bytes/param).
  std::uint64_t full_state_bytes() const;
  // Optimizer-only state (fp32 master + moments): 12 bytes/param.
  std::uint64_t optimizer_state_bytes() const;

  bool is_large_model() const { return param_count >= 6'000'000'000ull; }

  std::string to_string() const;
};

}  // namespace rubick
