// The seven Transformer models used throughout the paper's evaluation
// (Table 2), with architecture parameters taken from the cited papers.
#pragma once

#include <span>
#include <string_view>

#include "model/model_spec.h"

namespace rubick {

// All models in Table 2, in the paper's order:
// ViT-86M, RoBERTa-355M, BERT-336M, T5-1.2B, GPT-2-1.5B, LLaMA-2-7B,
// LLaMA-30B.
std::span<const ModelSpec> model_zoo();

// Looks a model up by name; throws InvariantError if unknown.
const ModelSpec& find_model(std::string_view name);

// True if the zoo contains `name`.
bool has_model(std::string_view name);

}  // namespace rubick
