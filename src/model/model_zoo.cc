#include "model/model_zoo.h"

#include <array>

#include "common/error.h"

namespace rubick {

namespace {

// Architecture numbers follow the models' original publications; parameter
// counts follow Table 2 of the paper. For T5 (an encoder-decoder) we count
// encoder+decoder blocks in num_layers.
const std::array<ModelSpec, 7> kZoo = {{
    {.name = "ViT",
     .param_count = 86'000'000,
     .seq_len = 197,  // 196 patches + [CLS] at 224x224 / 16
     .hidden_size = 768,
     .num_layers = 12,
     .default_global_batch = 64,
     .allow_model_parallel = false},
    {.name = "RoBERTa",
     .param_count = 355'000'000,
     .seq_len = 512,
     .hidden_size = 1024,
     .num_layers = 24,
     .default_global_batch = 32,
     .allow_model_parallel = false},
    {.name = "BERT",
     .param_count = 336'000'000,
     .seq_len = 512,
     .hidden_size = 1024,
     .num_layers = 24,
     .default_global_batch = 32,
     .allow_model_parallel = false},
    {.name = "T5",
     .param_count = 1'200'000'000,
     .seq_len = 512,
     .hidden_size = 1536,
     .num_layers = 48,  // 24 encoder + 24 decoder blocks
     .default_global_batch = 16,
     .allow_model_parallel = true},
    {.name = "GPT-2",
     .param_count = 1'500'000'000,
     .seq_len = 1024,
     .hidden_size = 1600,
     .num_layers = 48,
     .default_global_batch = 16,
     .allow_model_parallel = true},
    {.name = "LLaMA-2-7B",
     .param_count = 7'000'000'000,
     .seq_len = 4096,
     .hidden_size = 4096,
     .num_layers = 32,
     .default_global_batch = 16,
     .allow_model_parallel = true},
    {.name = "LLaMA-30B",
     .param_count = 30'000'000'000,
     .seq_len = 2048,
     .hidden_size = 6656,
     .num_layers = 60,
     .default_global_batch = 16,
     .allow_model_parallel = true},
}};

}  // namespace

std::span<const ModelSpec> model_zoo() { return kZoo; }

const ModelSpec& find_model(std::string_view name) {
  for (const auto& m : kZoo)
    if (m.name == name) return m;
  RUBICK_CHECK_MSG(false, "unknown model: " << name);
}

bool has_model(std::string_view name) {
  for (const auto& m : kZoo)
    if (m.name == name) return true;
  return false;
}

}  // namespace rubick
