#include "perf/perf_store.h"

#include "cluster/cluster.h"
#include "model/model_spec.h"
#include "perf/analytic.h"
#include "perf/profiler.h"

#include <cmath>
#include <set>

#include "common/error.h"
#include "common/log.h"
#include "model/model_zoo.h"

namespace rubick {

void PerfModelStore::add(PerfModel model) {
  add(std::move(model), {});
}

void PerfModelStore::add(PerfModel model,
                         std::vector<PerfSample> profiled_samples) {
  Entry entry;
  const std::string name = model.model_name();
  entry.model = std::move(model);
  entry.profiled = std::move(profiled_samples);
  entries_[name] = std::move(entry);
  ++version_;
}

bool PerfModelStore::contains(const std::string& model_name) const {
  return entries_.count(model_name) > 0;
}

const PerfModel& PerfModelStore::get(const std::string& model_name) const {
  auto it = entries_.find(model_name);
  RUBICK_CHECK_MSG(it != entries_.end(),
                   "no fitted performance model for " << model_name);
  return it->second.model;
}

bool PerfModelStore::record_observation(const std::string& model_name,
                                        const ModelSpec& model,
                                        const PerfSample& sample) {
  auto it = entries_.find(model_name);
  RUBICK_CHECK_MSG(it != entries_.end(),
                   "observation for unknown model " << model_name);
  Entry& entry = it->second;
  RUBICK_CHECK(sample.measured_throughput > 0.0);

  const double predicted = entry.model.predict_throughput(
      model, sample.plan, sample.global_batch, sample.ctx);
  const double err =
      std::abs(predicted - sample.measured_throughput) /
      sample.measured_throughput;

  entry.observed.push_back(sample);
  if (entry.observed.size() > kMaxObservations)
    entry.observed.erase(entry.observed.begin());

  if (err <= kRefitThreshold) return false;

  // Refit over profiled + observed samples. The fitter requires >= 3
  // offload samples to identify the offload parameters; drop offload
  // observations if the combined set falls short.
  std::vector<PerfSample> all = entry.profiled;
  all.insert(all.end(), entry.observed.begin(), entry.observed.end());
  int offload = 0;
  for (const auto& s : all)
    if (s.plan.uses_offload()) ++offload;
  if (offload > 0 && offload < 3) {
    std::vector<PerfSample> filtered;
    for (auto& s : all)
      if (!s.plan.uses_offload()) filtered.push_back(std::move(s));
    all = std::move(filtered);
  }
  if (all.empty()) return false;

  const PerfModelFitter fitter;
  PerfModel refitted = fitter.fit(model, entry.model.fwd_unit_s(), all);
  RUBICK_DEBUG("refit " << model_name << " after " << 100.0 * err
                        << "% prediction error; new train RMSLE "
                        << refitted.fit_error());
  entry.model = std::move(refitted);
  ++entry.refits;
  ++version_;
  return true;
}

int PerfModelStore::observation_count(const std::string& model_name) const {
  auto it = entries_.find(model_name);
  return it == entries_.end() ? 0
                              : static_cast<int>(it->second.observed.size());
}

int PerfModelStore::refit_count(const std::string& model_name) const {
  auto it = entries_.find(model_name);
  return it == entries_.end() ? 0 : it->second.refits;
}

PerfModelStore PerfModelStore::profile_models(
    const GroundTruthOracle& oracle, const ClusterSpec& cluster,
    const std::vector<std::string>& model_names, int global_batch_hint,
    std::map<std::string, double>* profiling_cost_s) {
  PerfModelStore store;
  Profiler profiler(oracle, cluster);
  std::set<std::string> seen;
  for (const auto& name : model_names) {
    if (!seen.insert(name).second) continue;
    const ModelSpec& model = find_model(name);
    const int batch =
        global_batch_hint > 0 ? global_batch_hint : model.default_global_batch;
    Profiler::Result result = profiler.profile_and_fit(model, batch);
    if (profiling_cost_s != nullptr)
      (*profiling_cost_s)[name] = result.profiling_cost_s;
    store.add(std::move(result.model), std::move(result.samples));
  }
  return store;
}

}  // namespace rubick
