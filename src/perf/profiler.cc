#include "perf/profiler.h"

#include "model/model_spec.h"
#include "plan/enumerate.h"
#include "perf/analytic.h"
#include "plan/execution_plan.h"
#include "plan/memory_estimator.h"

#include <algorithm>
#include <set>
#include <tuple>

#include "common/error.h"

namespace rubick {

PerfContext make_perf_context(const ClusterSpec& cluster, int gpus, int cpus) {
  PerfContext ctx;
  ctx.cpus = std::max(1, cpus);
  ctx.multi_node = gpus > cluster.node.gpus;
  ctx.intra_bw_bps = cluster.intra_node_bw_bps;
  ctx.inter_bw_bps = cluster.inter_node_bw_bps;
  ctx.pcie_bw_bps = cluster.pcie_bw_bps;
  return ctx;
}

PerfContext make_perf_context(const ClusterSpec& cluster,
                              const Placement& placement) {
  PerfContext ctx;
  ctx.cpus = std::max(1, placement.total_cpus());
  ctx.multi_node = placement.multi_node();
  ctx.intra_bw_bps = cluster.intra_node_bw_bps;
  ctx.inter_bw_bps = cluster.inter_node_bw_bps;
  ctx.pcie_bw_bps = cluster.pcie_bw_bps;
  // Gang-synchronous training runs at the slowest GPU of the placement.
  for (const auto& slice : placement.slices)
    if (slice.gpus > 0)
      ctx.gpu_speed = std::min(ctx.gpu_speed, cluster.speed_of(slice.node));
  return ctx;
}

MemoryBudget make_memory_budget(const ClusterSpec& cluster, int gpus) {
  const int nodes =
      std::max(1, (gpus + cluster.node.gpus - 1) / cluster.node.gpus);
  return {cluster.node.gpu_memory_bytes,
          static_cast<std::uint64_t>(nodes) * cluster.node.memory_bytes};
}

Profiler::Profiler(const GroundTruthOracle& oracle, const ClusterSpec& cluster)
    : oracle_(&oracle), cluster_(cluster) {}

namespace {

// Structural signature used to diversify the sampling plan: two plans with
// the same signature carry mostly redundant information for the fit.
// Distinct (tp, pp) shapes count as distinct — they exercise different
// communication-volume terms.
using PlanSignature = std::tuple<int, int, int, int, bool, bool>;

PlanSignature signature(const ExecutionPlan& p, int gpus) {
  return {gpus,           static_cast<int>(p.zero), p.tp, p.pp,
          p.ga_steps > 1, p.grad_ckpt};
}

// Prefers simple plans (fewer GA steps, no GC) so the sample resembles what
// a profiler would naturally run.
bool simpler(const ExecutionPlan& a, const ExecutionPlan& b) {
  return std::tuple(a.ga_steps, a.grad_ckpt, a.micro_batches) <
         std::tuple(b.ga_steps, b.grad_ckpt, b.micro_batches);
}

}  // namespace

std::vector<PerfSample> Profiler::choose_samples(const ModelSpec& model,
                                                 int global_batch) const {
  std::vector<PerfSample> samples;

  auto budget_for = [&](int gpus) { return make_memory_budget(cluster_, gpus); };

  // --- Offload points: 3 runs varying (d, cpus) to identify k_opt_off,
  // k_off and k_swap (paper: "the test runs should include three using this
  // strategy"). ---
  const int offload_cpu_choices[] = {8, 16, 32};
  int offload_idx = 0;
  for (int d : {1, 2, 4}) {
    PlanConstraints pc;
    pc.num_gpus = d;
    pc.max_tp = 1;
    pc.budget = budget_for(d);
    auto plans = enumerate_plans(model, global_batch, pc, estimator_);
    const ExecutionPlan* best = nullptr;
    for (const auto& p : plans) {
      if (!p.uses_offload()) continue;
      if (best == nullptr || simpler(p, *best)) best = &p;
    }
    if (best == nullptr) continue;
    PerfSample s;
    s.plan = *best;
    s.global_batch = global_batch;
    s.ctx = make_perf_context(cluster_, d, offload_cpu_choices[offload_idx]);
    samples.push_back(s);
    offload_idx = std::min(offload_idx + 1, 2);
  }
  // If offload is feasible at fewer than three distinct DP sizes, vary the
  // CPU allocation instead so the three-offload-run requirement still holds.
  if (!samples.empty() && samples.size() < 3 &&
      samples.front().plan.uses_offload()) {
    const PerfSample base = samples.front();
    int extra_cpus = 12;
    while (samples.size() < 3) {
      PerfSample s = base;
      s.ctx.cpus = extra_cpus;
      extra_cpus *= 2;
      samples.push_back(s);
    }
  }

  // --- Non-offload points, two passes. ---
  // Pass 1 — GPU scaling: the SIMPLEST feasible plan at each GPU count
  // (including one multi-node point), which identifies k_opt / k_const /
  // k_sync against the forward-time scaling. Without cross-count samples
  // the optimizer and constant terms are confounded and multi-GPU
  // predictions collapse.
  auto add_sample = [&](const ExecutionPlan& plan, int gpus) {
    PerfSample s;
    s.plan = plan;
    s.global_batch = global_batch;
    // Default CPU allocation: 2 cores per GPU (typical data pipeline).
    s.ctx = make_perf_context(cluster_, gpus, 2 * gpus);
    samples.push_back(s);
  };
  const int scaling_counts[] = {1, 2, 4, 8, 16, 32, 64};
  std::vector<int> feasible_counts;
  for (int gpus : scaling_counts) {
    if (gpus > cluster_.total_gpus()) break;
    PlanConstraints pc;
    pc.num_gpus = gpus;
    pc.max_tp = std::min(gpus, cluster_.node.gpus);
    pc.budget = budget_for(gpus);
    auto plans = enumerate_plans(model, global_batch, pc, estimator_);
    std::stable_sort(plans.begin(), plans.end(), simpler);
    for (const auto& p : plans) {
      if (p.uses_offload()) continue;
      // Stop adding scaling points beyond the second multi-node count for
      // small models; a couple suffice to pin the inter-node bandwidth term.
      add_sample(p, gpus);
      feasible_counts.push_back(gpus);
      break;
    }
    if (feasible_counts.size() >= 5 && gpus > cluster_.node.gpus) break;
  }
  // Pass 2 — plan structure: starting from the largest feasible count and
  // walking down, one plan per new structural signature (ZeRO-DP /
  // model-parallel / GA / GC), which identifies the k_bwd vs k_opt split
  // and the GC recompute term.
  constexpr std::size_t kTargetSamples = 12;
  std::set<PlanSignature> seen;
  for (const auto& s : samples)
    seen.insert(signature(s.plan, s.plan.num_gpus()));
  for (auto it = feasible_counts.rbegin();
       it != feasible_counts.rend() && samples.size() < kTargetSamples;
       ++it) {
    const int gpus = *it;
    PlanConstraints pc;
    pc.num_gpus = gpus;
    pc.max_tp = std::min(gpus, cluster_.node.gpus);
    pc.budget = budget_for(gpus);
    auto plans = enumerate_plans(model, global_batch, pc, estimator_);
    std::stable_sort(plans.begin(), plans.end(), simpler);
    for (const auto& p : plans) {
      if (samples.size() >= kTargetSamples) break;
      if (p.uses_offload()) continue;
      if (!seen.insert(signature(p, gpus)).second) continue;
      add_sample(p, gpus);
    }
  }

  RUBICK_CHECK_MSG(!samples.empty(),
                   "no feasible profiling configuration for " << model.name);
  return samples;
}

Profiler::Result Profiler::profile_and_fit(const ModelSpec& model,
                                           int global_batch) const {
  Result out;
  out.samples = choose_samples(model, global_batch);
  for (auto& s : out.samples)
    s.measured_throughput =
        oracle_->measure_throughput(model, s.plan, s.global_batch, s.ctx);
  out.profiling_cost_s =
      kSecondsPerSample * static_cast<double>(out.samples.size());
  const double fwd_unit = oracle_->profiled_fwd_unit_s(model);
  out.model = fitter_.fit(model, fwd_unit, out.samples);
  return out;
}

}  // namespace rubick
