// Ground-truth throughput oracle — the stand-in for the paper's 64-A800
// testbed (see DESIGN.md §1).
//
// For each model the oracle draws hidden "true" parameters (seeded,
// deterministic): realistic forward-pass speed derived from FLOPs and an
// effective-throughput draw, true overlap exponents, and structural
// perturbation terms the fitted model cannot represent (TP imbalance,
// pipeline-bubble excess, cross-node congestion, input-pipeline CPU
// sensitivity). Measurements additionally carry multiplicative lognormal
// noise keyed by the configuration, so re-measuring the same configuration
// returns the same value (like a fixed testbed) while different
// configurations scatter independently.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "model/model_spec.h"
#include "perf/analytic.h"
#include "plan/execution_plan.h"

namespace rubick {

class GroundTruthOracle {
 public:
  explicit GroundTruthOracle(std::uint64_t seed = 2025);

  // "Runs" the configuration and reports measured throughput in samples/s.
  // Precondition: plan.valid_for(model, global_batch). Memory feasibility is
  // the caller's concern (the simulator checks it via MemoryEstimator).
  double measure_throughput(const ModelSpec& model, const ExecutionPlan& plan,
                            int global_batch, const PerfContext& ctx) const;

  // Noise-free ground truth (used by tests and to quantify fitting error).
  double true_throughput(const ModelSpec& model, const ExecutionPlan& plan,
                         int global_batch, const PerfContext& ctx) const;

  // What a framework profiler reports as the per-sample forward time of the
  // full model on one GPU (the fitted model consumes this as a constant).
  double profiled_fwd_unit_s(const ModelSpec& model) const;

  // Exposed for tests: the hidden truth for a model.
  struct Truth {
    double fwd_unit_s = 0.0;
    FitParams params;
    Perturbation perturb;
    double noise_sigma = 0.02;
  };
  const Truth& truth_for(const ModelSpec& model) const;

 private:
  std::uint64_t seed_;
  // One oracle is shared by concurrently running simulators (the sweep
  // runner); the lazily filled truth cache sits behind a mutex. std::map
  // node references stay valid across later insertions, so returned
  // Truth& remain safe after the lock is dropped.
  mutable std::mutex mu_;
  mutable std::map<std::string, Truth> cache_;  // guarded by mu_
};

}  // namespace rubick
