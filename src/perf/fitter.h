// Fitting the performance model from sampled measurements (paper §4.3).
//
// The seven fittable parameters are recovered by minimizing the root mean
// squared logarithmic error (RMSLE) between predicted and measured
// throughput over a handful of profiled configurations — at least seven
// points, three of which must exercise ZeRO-Offload so that k_opt_off,
// k_off and k_swap are identified. Fitted models are reusable across jobs
// of the same model type and are refined online when prediction error
// exceeds a threshold.
#pragma once

#include <string>
#include <vector>

#include "model/model_spec.h"
#include "perf/analytic.h"
#include "plan/execution_plan.h"

namespace rubick {

// One profiled data point.
struct PerfSample {
  ExecutionPlan plan;
  int global_batch = 0;
  PerfContext ctx;
  double measured_throughput = 0.0;  // samples/s
};

// A fitted model for one model type; the scheduler's only view of job
// performance.
class PerfModel {
 public:
  PerfModel() = default;
  PerfModel(std::string model_name, double fwd_unit_s, FitParams params)
      : model_name_(std::move(model_name)),
        fwd_unit_s_(fwd_unit_s),
        params_(params) {}

  const std::string& model_name() const { return model_name_; }
  double fwd_unit_s() const { return fwd_unit_s_; }
  const FitParams& params() const { return params_; }

  double predict_throughput(const ModelSpec& model, const ExecutionPlan& plan,
                            int global_batch, const PerfContext& ctx) const;
  IterBreakdown breakdown(const ModelSpec& model, const ExecutionPlan& plan,
                          int global_batch, const PerfContext& ctx) const;

  // Training RMSLE achieved by the fit (diagnostic).
  double fit_error() const { return fit_error_; }
  int sample_count() const { return sample_count_; }

  // Online refinement (paper: "the model can be updated online using
  // metrics collected in real training runs when the prediction error
  // exceeds a threshold"): re-fits including the new observations.
  void record_fit_diagnostics(double rmsle, int n) {
    fit_error_ = rmsle;
    sample_count_ = n;
  }

 private:
  std::string model_name_;
  double fwd_unit_s_ = 0.0;
  FitParams params_;
  double fit_error_ = 0.0;
  int sample_count_ = 0;
};

struct FitOptions {
  int restarts = 10;
  int max_iterations = 3000;
  std::uint64_t seed = 7;
};

class PerfModelFitter {
 public:
  explicit PerfModelFitter(FitOptions options = {}) : options_(options) {}

  // Fits the 7-tuple. `fwd_unit_s` comes from the framework profiler and is
  // treated as a known constant. When no sample uses ZeRO-Offload, the three
  // offload parameters are left at their defaults and only the remaining
  // four are fitted.
  PerfModel fit(const ModelSpec& model, double fwd_unit_s,
                const std::vector<PerfSample>& samples) const;

 private:
  FitOptions options_;
};

}  // namespace rubick
