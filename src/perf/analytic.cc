#include "perf/analytic.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/units.h"

namespace rubick {

double f_overlap(double k, double x, double y) {
  RUBICK_CHECK_MSG(k >= 1.0, "overlap exponent must be >= 1, got " << k);
  RUBICK_CHECK(x >= 0.0 && y >= 0.0);
  if (x == 0.0) return y;
  if (y == 0.0) return x;
  // Factor out the max for numerical stability at large k.
  const double m = std::max(x, y);
  const double r = std::min(x, y) / m;
  return m * std::pow(1.0 + std::pow(r, k), 1.0 / k);
}

IterBreakdown iteration_breakdown(const ModelSpec& model,
                                  const ExecutionPlan& plan, int global_batch,
                                  double fwd_unit_s, const FitParams& params,
                                  const PerfContext& ctx,
                                  const Perturbation& perturb) {
  RUBICK_CHECK_MSG(plan.valid_for(model, global_batch),
                   "iteration_breakdown on infeasible plan "
                       << plan.display_name() << " for " << model.name
                       << " b=" << global_batch);
  RUBICK_DCHECK(fwd_unit_s > 0.0);
  RUBICK_DCHECK(ctx.cpus >= 1);
  RUBICK_DCHECK_MSG(ctx.gpu_speed > 0.0, "gpu_speed must be positive");
  // Heterogeneity: every GPU-side compute term paces at the slowest GPU.
  fwd_unit_s /= ctx.gpu_speed;

  IterBreakdown out;
  const double d = plan.dp;
  const double t = plan.tp;
  const double p = plan.pp;
  const double a = plan.ga_steps;
  const double m = plan.micro_batches;
  const double b = global_batch;
  const double s = model.seq_len;
  const double h = model.hidden_size;
  const double l = model.num_layers;
  const double P = static_cast<double>(model.param_count);
  const double grad_bytes = static_cast<double>(model.param_bytes_fp16());

  // ---- T_fwd (per forward pass; out.t_fwd totals all passes) ----
  // TP shards each operator across t GPUs; the oracle adds an imbalance
  // overhead growing with the shard count.
  const double tp_factor =
      (1.0 / t) * (1.0 + perturb.tp_overhead * (t - 1.0) / t);
  double fwd_per_pass = 0.0;
  if (plan.pp > 1) {
    // t_micro: one micro-batch through l/p layers on one stage.
    const double b_micro = b / (d * m);
    const double t_micro = fwd_unit_s * b_micro * tp_factor / p;
    // (m + p - 1) schedule steps; the oracle's bubble term models stalls the
    // ideal 1F1B formula misses.
    const double steps =
        (m + p - 1.0) * (1.0 + perturb.pp_bubble * (p - 1.0) / p);
    fwd_per_pass = t_micro * steps;
  } else {
    const double b_pass = b / (d * a);
    fwd_per_pass = fwd_unit_s * b_pass * tp_factor;
  }
  out.t_fwd = fwd_per_pass * a;  // GA runs `a` forward passes

  // ---- T_bwd (per accumulation step) ----
  out.t_bwd = params.k_bwd * fwd_per_pass;
  if (plan.grad_ckpt) out.t_bwd += fwd_per_pass;  // activation recompute

  // ---- Communication volumes (bytes) and times ----
  if (plan.dp > 1) {
    out.v_dp_bytes = grad_bytes * 2.0 * (d - 1.0) / (d * t * p);
  }
  if (plan.tp > 1) {
    // 4 collective ops per layer (fwd+bwd), ring factor 2(t-1)/t, tensor
    // b/d x s x h per layer, fp16.
    out.v_tp_bytes =
        4.0 * 2.0 * (t - 1.0) * (b * s * h * l) / (d * t) * kBytesPerParamFp16;
  }
  if (plan.pp > 1) {
    out.v_pp_bytes = 2.0 * p * (b * s * h) / (d * t) * kBytesPerParamFp16;
  }

  // ZeRO-3 extension (beyond the paper's §4 model, which covers ZeRO-2):
  // fp16 parameters are sliced across DP ranks and all-gathered once in the
  // forward and once in the backward pass of every accumulation step.
  if (plan.zero == ZeroStage::kZero3 && plan.dp > 1) {
    out.v_ag_bytes = a * 2.0 * grad_bytes * (d - 1.0) / d;
  }

  const double b_dp = ctx.multi_node ? ctx.inter_bw_bps : ctx.intra_bw_bps;
  const double b_tp = ctx.intra_bw_bps;  // TP stays inside a node
  const double b_pp = ctx.multi_node ? ctx.inter_bw_bps : ctx.intra_bw_bps;

  out.t_comm_dp = out.v_dp_bytes / b_dp;
  if (ctx.multi_node) out.t_comm_dp *= 1.0 + perturb.dp_congestion;
  out.t_comm_tp = out.v_tp_bytes / b_tp;
  out.t_comm_pp = out.v_pp_bytes / b_pp;
  out.t_comm_ag = out.v_ag_bytes / b_dp;

  // ---- T_cc: computation + communication ----
  // General form covering both §4.1 cases: with a == 1 this reduces to
  //   T_fwd + f^k_sync(T_bwd, T_comm_dp) + T_comm_tp + T_comm_pp,
  // with a > 1 to the GA formula a*T_fwd + (a-1)*T_bwd + f(...). ZeRO-3's
  // parameter all-gathers prefetch layer by layer and overlap with the
  // forward computation under the same k_sync exponent.
  const double fwd_term =
      out.t_comm_ag > 0.0
          ? f_overlap(params.k_sync, out.t_fwd, out.t_comm_ag)
          : out.t_fwd;
  out.t_cc = fwd_term + (a - 1.0) * out.t_bwd +
             f_overlap(params.k_sync, out.t_bwd, out.t_comm_dp) +
             out.t_comm_tp + out.t_comm_pp;

  // ---- T_opt / T_off ----
  switch (plan.zero) {
    case ZeroStage::kNone:
      out.t_opt = params.k_opt * P / (t * p) / ctx.gpu_speed;
      break;
    case ZeroStage::kZeroDp:
    case ZeroStage::kZero3:
      out.t_opt = params.k_opt * P / d / ctx.gpu_speed;
      break;
    case ZeroStage::kOffload:
      // CPUs across the job jointly compute the update.
      out.t_opt = params.k_opt_off * P / (d * static_cast<double>(ctx.cpus));
      break;
  }

  if (plan.uses_offload()) {
    // Per-rank PCIe traffic: fp16 gradients down + updated fp16 params up.
    out.t_off = 2.0 * grad_bytes / (d * ctx.pcie_bw_bps);
    out.t_oo = f_overlap(params.k_off, out.t_comm_dp, out.t_off) +
               f_overlap(params.k_swap, out.t_opt, out.t_off);
  } else {
    out.t_oo = out.t_opt;
  }

  out.t_iter = out.t_cc + out.t_oo + params.k_const;

  // Oracle-only: jobs starve without enough input-pipeline CPUs (roughly 2
  // cores per GPU); the fitted model does not include this term.
  if (perturb.cpu_pipeline > 0.0) {
    const double g = plan.num_gpus();
    const double want = 2.0 * g;
    const double deficit =
        std::max(0.0, want - static_cast<double>(ctx.cpus)) / want;
    out.t_iter *= 1.0 + perturb.cpu_pipeline * deficit;
  }
  return out;
}

double predict_throughput(const ModelSpec& model, const ExecutionPlan& plan,
                          int global_batch, double fwd_unit_s,
                          const FitParams& params, const PerfContext& ctx,
                          const Perturbation& perturb) {
  const IterBreakdown bd = iteration_breakdown(model, plan, global_batch,
                                               fwd_unit_s, params, ctx,
                                               perturb);
  return static_cast<double>(global_batch) / bd.t_iter;
}

}  // namespace rubick
