#include "perf/fitter.h"

#include "model/model_spec.h"

#include <cmath>

#include "common/error.h"
#include "common/optim.h"

namespace rubick {

double PerfModel::predict_throughput(const ModelSpec& model,
                                     const ExecutionPlan& plan,
                                     int global_batch,
                                     const PerfContext& ctx) const {
  return rubick::predict_throughput(model, plan, global_batch, fwd_unit_s_,
                                    params_, ctx);
}

IterBreakdown PerfModel::breakdown(const ModelSpec& model,
                                   const ExecutionPlan& plan,
                                   int global_batch,
                                   const PerfContext& ctx) const {
  return iteration_breakdown(model, plan, global_batch, fwd_unit_s_, params_,
                             ctx);
}

namespace {

// Decision-vector layout. The two rate parameters span orders of magnitude,
// so they are optimized in log10 space.
struct ParamCodec {
  bool fit_offload = false;

  std::size_t dim() const { return fit_offload ? 7 : 4; }

  std::vector<double> lower() const {
    if (fit_offload)
      return {0.5, 1.0, -12.0, -11.0, 1.0, 1.0, 1e-4};
    return {0.5, 1.0, -12.0, 1e-4};
  }
  std::vector<double> upper() const {
    if (fit_offload)
      return {4.0, 8.0, -9.0, -7.0, 8.0, 8.0, 0.5};
    return {4.0, 8.0, -9.0, 0.5};
  }
  std::vector<double> encode(const FitParams& p) const {
    if (fit_offload)
      return {p.k_bwd,          p.k_sync,        std::log10(p.k_opt),
              std::log10(p.k_opt_off), p.k_off, p.k_swap,
              p.k_const};
    return {p.k_bwd, p.k_sync, std::log10(p.k_opt), p.k_const};
  }
  FitParams decode(const std::vector<double>& x,
                   const FitParams& defaults) const {
    FitParams p = defaults;
    p.k_bwd = x[0];
    p.k_sync = x[1];
    p.k_opt = std::pow(10.0, x[2]);
    if (fit_offload) {
      p.k_opt_off = std::pow(10.0, x[3]);
      p.k_off = x[4];
      p.k_swap = x[5];
      p.k_const = x[6];
    } else {
      p.k_const = x[3];
    }
    return p;
  }
};

}  // namespace

PerfModel PerfModelFitter::fit(const ModelSpec& model, double fwd_unit_s,
                               const std::vector<PerfSample>& samples) const {
  RUBICK_CHECK_MSG(!samples.empty(), "cannot fit with zero samples");

  ParamCodec codec;
  for (const auto& s : samples)
    if (s.plan.uses_offload()) codec.fit_offload = true;
  if (codec.fit_offload) {
    int offload_count = 0;
    for (const auto& s : samples)
      if (s.plan.uses_offload()) ++offload_count;
    RUBICK_CHECK_MSG(offload_count >= 3,
                     "fitting offload parameters needs >= 3 offload samples, "
                     "got " << offload_count);
  }

  const FitParams defaults;
  auto objective = [&](const std::vector<double>& x) {
    const FitParams p = codec.decode(x, defaults);
    double sum = 0.0;
    for (const auto& s : samples) {
      const double pred = predict_throughput(model, s.plan, s.global_batch,
                                             fwd_unit_s, p, s.ctx);
      const double d = std::log(pred) - std::log(s.measured_throughput);
      sum += d * d;
    }
    return std::sqrt(sum / static_cast<double>(samples.size()));
  };

  OptimOptions opt;
  opt.restarts = options_.restarts;
  opt.max_iterations = options_.max_iterations;
  opt.seed = options_.seed;
  const OptimResult result =
      nelder_mead(objective, codec.encode(defaults), codec.lower(),
                  codec.upper(), opt);

  PerfModel out(model.name, fwd_unit_s, codec.decode(result.x, defaults));
  out.record_fit_diagnostics(result.value, static_cast<int>(samples.size()));
  return out;
}

}  // namespace rubick
