#include "perf/oracle.h"

#include "model/model_spec.h"

#include <cmath>
#include <cstdio>

#include "common/error.h"
#include "common/rng.h"
#include "telemetry/metrics.h"

namespace rubick {

namespace {

// Effective sustained FLOP/s of one A800 on transformer forward passes.
// Peak bf16 is ~312 TFLOP/s; sustained utilization is drawn per model in
// [0.35, 0.55] (attention-heavy models run lower).
constexpr double kPeakFlops = 312e12;

std::string config_key(const ModelSpec& model, const ExecutionPlan& plan,
                       int global_batch, const PerfContext& ctx) {
  // Hot path: every measurement hashes this key, and simulated runs
  // re-measure on each job (re)start. One snprintf instead of an
  // ostringstream; "%g" renders doubles exactly like the ostream default
  // (defaultfloat, precision 6), so noise seeds — and with them the golden
  // traces — are unchanged.
  char buf[160];
  const int n = std::snprintf(
      buf, sizeof buf, "|d%dt%dp%da%dm%dz%dgc%d|b%d|c%d|mn%d|s%g", plan.dp,
      plan.tp, plan.pp, plan.ga_steps, plan.micro_batches,
      static_cast<int>(plan.zero), plan.grad_ckpt ? 1 : 0, global_batch,
      ctx.cpus, ctx.multi_node ? 1 : 0, ctx.gpu_speed);
  RUBICK_CHECK(n > 0 && static_cast<std::size_t>(n) < sizeof buf);
  std::string key;
  key.reserve(model.name.size() + static_cast<std::size_t>(n));
  key += model.name;
  key.append(buf, static_cast<std::size_t>(n));
  return key;
}

}  // namespace

GroundTruthOracle::GroundTruthOracle(std::uint64_t seed) : seed_(seed) {}

const GroundTruthOracle::Truth& GroundTruthOracle::truth_for(
    const ModelSpec& model) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = cache_.find(model.name);
  if (it != cache_.end()) return it->second;

  Rng rng(hash_seed(model.name, seed_));
  Truth t;
  const double utilization = rng.uniform(0.35, 0.55);
  t.fwd_unit_s = model.fwd_flops_per_sample() / (kPeakFlops * utilization);

  t.params.k_bwd = rng.uniform(1.8, 2.2);
  t.params.k_sync = rng.uniform(1.8, 3.5);
  // GPU optimizer: 20-50 G params/s sustained.
  t.params.k_opt = 1.0 / rng.uniform(20e9, 50e9);
  // CPU optimizer: 0.03-0.1 G params/s per core (Adam in fp32 on host
  // memory is orders of magnitude slower than on-GPU updates; this is what
  // makes CPU allocation a meaningful scheduling dimension for
  // ZeRO-Offload, cf. the 1.7x CPU-doubling speedup in Fig. 7).
  t.params.k_opt_off = 1.0 / rng.uniform(0.02e9, 0.06e9);
  t.params.k_off = rng.uniform(1.5, 3.0);
  t.params.k_swap = rng.uniform(1.5, 3.0);
  t.params.k_const = rng.uniform(0.01, 0.06);

  t.perturb.tp_overhead = rng.uniform(0.05, 0.15);
  t.perturb.pp_bubble = rng.uniform(0.02, 0.10);
  t.perturb.dp_congestion = rng.uniform(0.03, 0.12);
  t.perturb.cpu_pipeline = rng.uniform(0.04, 0.10);
  t.noise_sigma = 0.02;

  return cache_.emplace(model.name, t).first->second;
}

double GroundTruthOracle::true_throughput(const ModelSpec& model,
                                          const ExecutionPlan& plan,
                                          int global_batch,
                                          const PerfContext& ctx) const {
  const Truth& t = truth_for(model);
  return predict_throughput(model, plan, global_batch, t.fwd_unit_s, t.params,
                            ctx, t.perturb);
}

double GroundTruthOracle::measure_throughput(const ModelSpec& model,
                                             const ExecutionPlan& plan,
                                             int global_batch,
                                             const PerfContext& ctx) const {
  // Inline true_throughput's body so the truth table is looked up (and its
  // mutex taken) once per measurement, not twice.
  const Truth& t = truth_for(model);
  const double truth = predict_throughput(model, plan, global_batch,
                                          t.fwd_unit_s, t.params, ctx,
                                          t.perturb);
  RUBICK_COUNTER_ADD("oracle.measurements", 1);
  // Deterministic per-configuration noise: a fixed testbed re-measures the
  // same configuration to (nearly) the same value.
  Rng noise(hash_seed(config_key(model, plan, global_batch, ctx), seed_));
  RUBICK_COUNTER_ADD("oracle.noise_draws", 1);
  return truth * noise.lognormal(0.0, t.noise_sigma);
}

double GroundTruthOracle::profiled_fwd_unit_s(const ModelSpec& model) const {
  const Truth& t = truth_for(model);
  // The framework profiler measures fwd time with ~1% noise.
  Rng noise(hash_seed(model.name + "/fwd_profile", seed_));
  return t.fwd_unit_s * noise.lognormal(0.0, 0.01);
}

}  // namespace rubick
