// Registry of fitted performance models, one per model type, with online
// refinement.
//
// The paper fits the performance model once per model type and reuses it
// across jobs of that type (§3); it then "updates the model online using
// metrics collected in real training runs when the prediction error exceeds
// a threshold" (§4.3). The store keeps every profiled and observed sample;
// record_observation() feeds live measurements back, and the model is
// re-fitted when the recent relative prediction error exceeds the
// threshold. `version()` increments on every refit so consumers
// (BestPlanPredictor caches, scheduler baselines) can invalidate.
//
// Schedulers consult this store for all predictions; the simulator advances
// jobs with the ground-truth oracle, so fitting error propagates into
// scheduling quality exactly as on a real cluster.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "model/model_spec.h"
#include "perf/fitter.h"
#include "perf/oracle.h"

namespace rubick {

class PerfModelStore {
 public:
  // Relative error on a live measurement that triggers a refit.
  static constexpr double kRefitThreshold = 0.10;
  // Cap on retained online observations per model (oldest dropped).
  static constexpr std::size_t kMaxObservations = 64;

  void add(PerfModel model);
  // Registers the profiling samples the model was fitted from, so later
  // refits keep them in the training set.
  void add(PerfModel model, std::vector<PerfSample> profiled_samples);

  bool contains(const std::string& model_name) const;
  const PerfModel& get(const std::string& model_name) const;

  // Feeds back a live measurement. If the current model's prediction for
  // the observed configuration errs by more than `kRefitThreshold`, the
  // model is refitted over profiled + observed samples. Returns true if a
  // refit happened.
  bool record_observation(const std::string& model_name,
                          const ModelSpec& model, const PerfSample& sample);

  // Monotonic counter bumped on every refit; lets prediction caches detect
  // staleness.
  std::uint64_t version() const { return version_; }

  int observation_count(const std::string& model_name) const;
  int refit_count(const std::string& model_name) const;

  // Profiles and fits every model type named in `model_names`
  // (deduplicated) against the oracle. Returns per-model profiling cost in
  // seconds via `profiling_cost_s` when non-null.
  static PerfModelStore profile_models(
      const GroundTruthOracle& oracle, const ClusterSpec& cluster,
      const std::vector<std::string>& model_names, int global_batch_hint = 0,
      std::map<std::string, double>* profiling_cost_s = nullptr);

 private:
  struct Entry {
    PerfModel model;
    std::vector<PerfSample> profiled;
    std::vector<PerfSample> observed;
    int refits = 0;
  };

  std::map<std::string, Entry> entries_;
  std::uint64_t version_ = 0;
};

}  // namespace rubick
