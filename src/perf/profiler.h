// Workload profiler: picks the sampled test-run configurations, "runs" them
// against the ground-truth oracle, and fits a PerfModel (paper §3 step 1 and
// §4.3 "continuous model fitting").
//
// The paper fits from a minimum of 7 data points, of which 3 exercise
// ZeRO-Offload, profiled on an 8-GPU server in ~210 s per model. The
// profiler reproduces that sampling plan and accounts the simulated
// profiling cost so the cluster simulator can charge it.
#pragma once

#include <vector>

#include "cluster/cluster.h"
#include "cluster/placement.h"
#include "model/model_spec.h"
#include "perf/analytic.h"
#include "perf/fitter.h"
#include "perf/oracle.h"
#include "plan/memory_estimator.h"

namespace rubick {

// PerfContext for a job occupying `gpus` GPUs / `cpus` CPUs placed
// canonically (packed into as few nodes as possible).
PerfContext make_perf_context(const ClusterSpec& cluster, int gpus, int cpus);

// PerfContext for an explicit placement.
PerfContext make_perf_context(const ClusterSpec& cluster,
                              const Placement& placement);

// Memory budget for a job using `gpus` GPUs packed canonically: per-GPU
// device capacity and the host memory of the nodes it spans.
MemoryBudget make_memory_budget(const ClusterSpec& cluster, int gpus);

class Profiler {
 public:
  // Simulated wall-clock cost per sampled test run; 7 samples ~ 210 s
  // matches the paper's reported profiling overhead.
  static constexpr double kSecondsPerSample = 30.0;

  Profiler(const GroundTruthOracle& oracle, const ClusterSpec& cluster);

  struct Result {
    PerfModel model;
    std::vector<PerfSample> samples;
    double profiling_cost_s = 0.0;
  };

  // Chooses the sampling plan (>= 7 points, >= 3 ZeRO-Offload when offload
  // is feasible at all), measures each against the oracle and fits.
  Result profile_and_fit(const ModelSpec& model, int global_batch) const;

  // The sampling plan alone (unmeasured), exposed for tests.
  std::vector<PerfSample> choose_samples(const ModelSpec& model,
                                         int global_batch) const;

 private:
  const GroundTruthOracle* oracle_;
  ClusterSpec cluster_;
  MemoryEstimator estimator_;
  PerfModelFitter fitter_;
};

}  // namespace rubick
