// The analytic resource-performance model of paper §4.
//
// Predicts the per-iteration time T_iter of a (model, execution plan,
// resource allocation) combination as the composition of
//   T_fwd  forward computation            (profiled base, scaled)
//   T_bwd  backward computation           (k_bwd * T_fwd, + T_fwd under GC)
//   T_comm DP/TP/PP communication         (volume / bottleneck bandwidth)
//   T_opt  optimizer step                 (partitioned parameter update)
//   T_off  ZeRO-Offload PCIe traffic
// joined by the parametric overlap function
//   f_overlap^k(x, y) = (x^k + y^k)^(1/k)
// which interpolates between no overlap (k=1: x+y) and perfect overlap
// (k->inf: max(x, y)).
//
// The same functions serve two masters:
//   * the fitted PerfModel (zero Perturbation) used by the scheduler, and
//   * the GroundTruthOracle, which evaluates the analytic core with hidden
//     true parameters plus structural Perturbation terms the fitted model
//     does not know about — so prediction error is real, as in Table 2.
#pragma once

#include "model/model_spec.h"
#include "plan/execution_plan.h"

namespace rubick {

// The seven fittable parameters of Table 1.
struct FitParams {
  double k_bwd = 2.0;       // backward/forward compute ratio
  double k_sync = 2.0;      // overlap: backward pass vs DP gradient sync
  double k_opt = 3e-11;     // s per parameter, GPU optimizer update
  double k_opt_off = 2e-9;  // s per parameter per CPU, offloaded optimizer
  double k_off = 2.0;       // overlap: DP sync vs PCIe offload
  double k_swap = 2.0;      // overlap: optimizer vs PCIe offload
  double k_const = 0.03;    // s, constant per-iteration overhead
};

// Resource / environment context of one evaluation (Table 1 "Resources" and
// "Environment" rows). `cpus` is the job's total CPU-core allocation.
struct PerfContext {
  int cpus = 8;
  bool multi_node = false;  // placement spans nodes: DP/PP cross RDMA
  // Relative speed of the slowest GPU in the placement (1.0 = reference).
  // Gang-synchronous training paces every collective at the straggler, so
  // all GPU compute terms scale by 1/gpu_speed (heterogeneous clusters).
  double gpu_speed = 1.0;
  double intra_bw_bps = 400e9;
  double inter_bw_bps = 100e9;
  double pcie_bw_bps = 25e9;
};

// Structural deviations applied only by the ground-truth oracle.
struct Perturbation {
  double tp_overhead = 0.0;     // extra TP compute imbalance per shard
  double pp_bubble = 0.0;       // pipeline bubble beyond the (m+p-1) model
  double dp_congestion = 0.0;   // cross-node DP all-reduce congestion
  double cpu_pipeline = 0.0;    // input-pipeline slowdown when CPUs scarce
};

// Full decomposition of one iteration; all fields in seconds except volumes.
struct IterBreakdown {
  double t_fwd = 0.0;   // all forward passes of the iteration
  double t_bwd = 0.0;   // one backward pass (per accumulation step)
  double t_comm_dp = 0.0;
  double t_comm_tp = 0.0;
  double t_comm_pp = 0.0;
  double t_comm_ag = 0.0;  // ZeRO-3 parameter all-gathers (fwd+bwd)
  double t_opt = 0.0;
  double t_off = 0.0;
  double t_cc = 0.0;    // computation + communication combined
  double t_oo = 0.0;    // optimizer + offload combined
  double t_iter = 0.0;

  double v_dp_bytes = 0.0;
  double v_tp_bytes = 0.0;
  double v_pp_bytes = 0.0;
  double v_ag_bytes = 0.0;
};

// f_overlap^k. Handles zero operands (returns the other) and requires k>=1.
double f_overlap(double k, double x, double y);

// Evaluates the model. `fwd_unit_s` is the profiled forward time for ONE
// sample of the full (unsharded) model on one GPU; the plan's sharding and
// batching scale it per §4.1. Preconditions: plan.valid_for(model, batch).
IterBreakdown iteration_breakdown(const ModelSpec& model,
                                  const ExecutionPlan& plan, int global_batch,
                                  double fwd_unit_s, const FitParams& params,
                                  const PerfContext& ctx,
                                  const Perturbation& perturb = {});

// Convenience: global_batch / T_iter, in samples per second.
double predict_throughput(const ModelSpec& model, const ExecutionPlan& plan,
                          int global_batch, double fwd_unit_s,
                          const FitParams& params, const PerfContext& ctx,
                          const Perturbation& perturb = {});

}  // namespace rubick
