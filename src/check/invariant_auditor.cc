#include "check/invariant_auditor.h"
#include "cluster/placement.h"
#include "common/resource.h"
#include "model/model_spec.h"
#include "perf/analytic.h"
#include "plan/execution_plan.h"
#include "trace/job.h"

#include <algorithm>
#include <sstream>

#include "common/error.h"
#include "common/log.h"
#include "core/plan_selector.h"
#include "core/predictor.h"
#include "model/model_zoo.h"
#include "perf/profiler.h"
#include "telemetry/metrics.h"

namespace rubick {

namespace {

// Mirrors the simulator's completion slop (simulator.cc finish_completed):
// float noise on the sample target plus up to 1 ms of progress.
constexpr double kEps = 1e-6;

double finish_slop(double target_samples, double throughput) {
  return kEps * target_samples + throughput * 1e-3;
}

bool legal_transition(SimJobPhase from, SimJobPhase to) {
  if (from == to) return true;
  switch (from) {
    case SimJobPhase::kNotReady:
      // NotReady -> Running happens when activation and a scheduling round
      // fall inside the same event-loop iteration (ticks snapshot the
      // composed result).
      return to == SimJobPhase::kPending || to == SimJobPhase::kRunning;
    case SimJobPhase::kPending:
      return to == SimJobPhase::kRunning;
    case SimJobPhase::kRunning:
      // Back-edge: preemption returns a running job to the queue.
      return to == SimJobPhase::kPending || to == SimJobPhase::kFinished;
    case SimJobPhase::kFinished:
      return false;
  }
  return false;
}

}  // namespace

const char* to_string(Invariant invariant) {
  switch (invariant) {
    case Invariant::kResourceConservation:
      return "resource-conservation";
    case Invariant::kPlacementValidity:
      return "placement-validity";
    case Invariant::kPlanFeasibility:
      return "plan-feasibility";
    case Invariant::kPerformanceGuarantee:
      return "performance-guarantee";
    case Invariant::kCurveMonotonicity:
      return "curve-monotonicity";
    case Invariant::kLifecycle:
      return "lifecycle";
    case Invariant::kNodeAvailability:
      return "node-availability";
    case Invariant::kFailureRecovery:
      return "failure-recovery";
  }
  return "?";
}

std::string Violation::to_string() const {
  std::ostringstream os;
  os << "[audit] " << rubick::to_string(invariant) << " violated at t="
     << time_s << "s";
  if (job_id >= 0) os << " job=" << job_id;
  if (node_id >= 0) os << " node=" << node_id;
  os << ": " << detail;
  return os.str();
}

std::string AuditReport::summary() const {
  std::ostringstream os;
  os << "invariant audit: " << total_violations << " violation(s) over "
     << ticks_observed << " tick(s), " << checks_performed << " check(s)";
  if (total_violations > 0) {
    os << " [";
    bool first = true;
    for (std::size_t i = 0; i < kNumInvariants; ++i) {
      if (violation_counts[i] == 0) continue;
      if (!first) os << ", ";
      os << to_string(static_cast<Invariant>(i)) << "="
         << violation_counts[i];
      first = false;
    }
    os << "]";
  }
  return os.str();
}

InvariantAuditor::InvariantAuditor(AuditConfig config)
    : config_(config) {}

void InvariantAuditor::record(Invariant invariant, double time_s, int job_id,
                              int node_id, std::string detail) {
  Violation v;
  v.invariant = invariant;
  v.time_s = time_s;
  v.job_id = job_id;
  v.node_id = node_id;
  v.detail = std::move(detail);

  ++report_.total_violations;
  ++report_.violation_counts[static_cast<std::size_t>(invariant)];
  if (report_.violations.size() < config_.max_recorded_violations)
    report_.violations.push_back(v);

  switch (config_.on_violation) {
    case ViolationPolicy::kThrow:
      throw InvariantError(v.to_string());
    case ViolationPolicy::kLog:
      RUBICK_WARN(v.to_string());
      break;
    case ViolationPolicy::kCount:
      break;
  }
}

void InvariantAuditor::on_run_begin(const SimRunInfo& info) {
  run_ = info;
  report_ = AuditReport{};
  jobs_.clear();
  predictor_.reset();
  sla_.reset();
  engine_version_ = 0;

  if (config_.check_curves && run_.cluster != nullptr &&
      run_.store != nullptr && run_.estimator != nullptr &&
      run_.jobs != nullptr) {
    std::vector<std::pair<std::string, int>> combos;
    for (const JobSpec& spec : *run_.jobs) {
      auto combo = std::make_pair(spec.model_name, spec.global_batch);
      if (std::find(combos.begin(), combos.end(), combo) == combos.end())
        combos.push_back(std::move(combo));
    }
    const int max_gpus = config_.curve_max_gpus > 0
                             ? config_.curve_max_gpus
                             : run_.cluster->total_gpus();
    const auto violations = audit_curve_monotonicity(
        *run_.cluster, *run_.store, *run_.estimator, combos, max_gpus,
        /*cpus_per_gpu=*/2, config_.rel_tolerance);
    report_.checks_performed += static_cast<long>(combos.size());
    for (const Violation& v : violations)
      record(v.invariant, v.time_s, v.job_id, v.node_id, v.detail);
  }
}

void InvariantAuditor::on_tick(const SimTick& tick) {
  ++report_.ticks_observed;
  if (config_.check_lifecycle) audit_lifecycle(tick);
  if (config_.check_conservation) audit_conservation(tick);
  if (config_.check_placement || config_.check_plan_feasibility)
    audit_structure(tick);
  if (config_.check_guarantee) audit_guarantee(tick);
  if (config_.check_node_availability) audit_node_availability(tick);
  if (config_.check_failure_recovery) audit_failure_recovery(tick);
  update_job_state(tick);
}

void InvariantAuditor::on_fault(const SimFaultNotice& notice) {
  if (!config_.check_failure_recovery) return;
  if (notice.kind != SimFaultNotice::Kind::kReconfigFailure) return;
  PendingRecovery pending;
  pending.job_id = notice.job_id;
  pending.notice_time_s = notice.now_s;
  if (notice.prior_placement != nullptr) {
    pending.prior_placement = *notice.prior_placement;  // copy: tick-scoped
    pending.has_prior = true;
  }
  if (notice.prior_plan != nullptr) pending.prior_plan = *notice.prior_plan;
  pending_recoveries_.push_back(std::move(pending));
}

void InvariantAuditor::audit_node_availability(const SimTick& tick) {
  if (tick.down_nodes == nullptr) return;
  for (const AuditJobState& job : tick.jobs) {
    if (job.phase != SimJobPhase::kRunning || job.placement == nullptr)
      continue;
    ++report_.checks_performed;
    for (const NodeSlice& slice : job.placement->slices) {
      const std::size_t n = static_cast<std::size_t>(slice.node);
      if (n < tick.down_nodes->size() && (*tick.down_nodes)[n] != 0) {
        record(Invariant::kNodeAvailability, tick.now_s, job.spec->id,
               slice.node,
               "running job holds " + std::to_string(slice.gpus) +
                   " GPU(s) on down node " + std::to_string(slice.node));
      }
    }
  }
}

void InvariantAuditor::audit_failure_recovery(const SimTick& tick) {
  if (pending_recoveries_.empty()) return;
  for (const PendingRecovery& pending : pending_recoveries_) {
    ++report_.checks_performed;
    const AuditJobState* job = nullptr;
    for (const AuditJobState& j : tick.jobs) {
      if (j.spec != nullptr && j.spec->id == pending.job_id) {
        job = &j;
        break;
      }
    }
    if (job == nullptr) {
      record(Invariant::kFailureRecovery, tick.now_s, pending.job_id, -1,
             "job vanished from the run after a reconfiguration failure");
      continue;
    }
    if (job->phase == SimJobPhase::kPending) {
      // Valid outcome A: attempt rolled back, allocation released.
      if (job->placement != nullptr && !job->placement->empty()) {
        record(Invariant::kFailureRecovery, tick.now_s, pending.job_id, -1,
               "job is pending after a failed reconfiguration but still "
               "holds " +
                   job->placement->to_string());
      }
      continue;
    }
    if (job->phase == SimJobPhase::kRunning) {
      // Valid outcome B: pre-attempt configuration restored verbatim.
      const bool placement_ok =
          pending.has_prior && job->placement != nullptr &&
          *job->placement == pending.prior_placement &&
          !pending.prior_placement.empty();
      const bool plan_ok = job->plan != nullptr &&
                           *job->plan == pending.prior_plan;
      if (!placement_ok || !plan_ok) {
        record(Invariant::kFailureRecovery, tick.now_s, pending.job_id, -1,
               "job runs a configuration that is neither released nor the "
               "pre-attempt one after a failed reconfiguration");
      }
      continue;
    }
    // kNotReady cannot follow a reconfiguration attempt; kFinished without
    // a restart means the failed attempt was counted as progress.
    record(Invariant::kFailureRecovery, tick.now_s, pending.job_id, -1,
           std::string("illegal phase '") + rubick::to_string(job->phase) +
               "' right after a failed reconfiguration");
  }
  pending_recoveries_.clear();
}

void InvariantAuditor::on_run_end(const SimTick& tick) {
  on_tick(tick);
  const auto push_gauges = [this] {
    RUBICK_GAUGE_SET("audit.checks_performed",
                     static_cast<double>(report_.checks_performed));
    RUBICK_GAUGE_SET("audit.ticks_observed",
                     static_cast<double>(report_.ticks_observed));
    RUBICK_GAUGE_SET("audit.total_violations",
                     static_cast<double>(report_.total_violations));
  };
  if (!config_.check_lifecycle) {
    push_gauges();
    return;
  }
  // The event loop only drains when every job ran to completion (anything
  // else trips the simulator's own deadlock / time-limit checks first).
  for (const AuditJobState& js : tick.jobs) {
    ++report_.checks_performed;
    if (js.phase != SimJobPhase::kFinished)
      record(Invariant::kLifecycle, tick.now_s, js.spec->id, -1,
             std::string("run ended with job in phase ") +
                 rubick::to_string(js.phase));
  }
  push_gauges();
}

void InvariantAuditor::audit_lifecycle(const SimTick& tick) {
  for (const AuditJobState& js : tick.jobs) {
    ++report_.checks_performed;
    const int id = js.spec->id;
    const JobAudit& ja = jobs_[id];

    const SimJobPhase prev = ja.seen ? ja.phase : SimJobPhase::kNotReady;
    if (!legal_transition(prev, js.phase)) {
      std::ostringstream os;
      os << "illegal phase transition " << rubick::to_string(prev) << " -> "
         << rubick::to_string(js.phase);
      record(Invariant::kLifecycle, tick.now_s, id, -1, os.str());
    }

    // Progress is cumulative: samples_done never decreases, and freezes
    // once the job finished.
    const double back_eps = 1e-9 * (1.0 + ja.samples_done);
    if (ja.seen && js.samples_done < ja.samples_done - back_eps) {
      std::ostringstream os;
      os << "samples_done went backwards: " << ja.samples_done << " -> "
         << js.samples_done;
      record(Invariant::kLifecycle, tick.now_s, id, -1, os.str());
    }
    if (ja.seen && ja.phase == SimJobPhase::kFinished &&
        js.samples_done > ja.samples_done + back_eps) {
      std::ostringstream os;
      os << "finished job kept accruing samples: " << ja.samples_done
         << " -> " << js.samples_done;
      record(Invariant::kLifecycle, tick.now_s, id, -1, os.str());
    }

    const bool has_placement = js.placement != nullptr &&
                               !js.placement->empty();
    if (js.phase == SimJobPhase::kRunning) {
      if (!has_placement)
        record(Invariant::kLifecycle, tick.now_s, id, -1,
               "running job holds no placement");
      if (js.throughput <= 0.0)
        record(Invariant::kLifecycle, tick.now_s, id, -1,
               "running job has non-positive throughput");
    } else {
      if (has_placement)
        record(Invariant::kLifecycle, tick.now_s, id, -1,
               std::string("non-running job (") + rubick::to_string(js.phase) +
                   ") still holds a placement");
      if (js.throughput != 0.0)
        record(Invariant::kLifecycle, tick.now_s, id, -1,
               "non-running job reports non-zero throughput");
    }

    if (js.phase == SimJobPhase::kFinished) {
      const double slop =
          finish_slop(js.spec->target_samples, ja.last_throughput);
      if (js.samples_done + slop < js.spec->target_samples) {
        std::ostringstream os;
        os << "job finished " << (js.spec->target_samples - js.samples_done)
           << " samples short of its target " << js.spec->target_samples;
        record(Invariant::kLifecycle, tick.now_s, id, -1, os.str());
      }
    }
  }
}

void InvariantAuditor::audit_conservation(const SimTick& tick) {
  if (run_.cluster == nullptr) return;
  const int num_nodes = run_.cluster->num_nodes;
  std::vector<ResourceVector> used(static_cast<std::size_t>(num_nodes));

  for (const AuditJobState& js : tick.jobs) {
    if (js.phase != SimJobPhase::kRunning || js.placement == nullptr) continue;
    for (const NodeSlice& slice : js.placement->slices) {
      if (slice.node < 0 || slice.node >= num_nodes) continue;  // structure's
      ResourceVector& u = used[static_cast<std::size_t>(slice.node)];
      u.gpus += slice.gpus;
      u.cpus += slice.cpus;
      u.memory_bytes += slice.host_memory_bytes;
    }
  }

  const ResourceVector capacity = {run_.cluster->node.gpus,
                                   run_.cluster->node.cpus,
                                   run_.cluster->node.memory_bytes};
  for (int n = 0; n < num_nodes; ++n) {
    ++report_.checks_performed;
    const ResourceVector& u = used[static_cast<std::size_t>(n)];
    if (!u.fits_within(capacity)) {
      std::ostringstream os;
      os << "node over-committed: allocated " << u.to_string()
         << " exceeds capacity " << capacity.to_string();
      record(Invariant::kResourceConservation, tick.now_s, -1, n, os.str());
    }
    // Cross-check against the live bookkeeping: what running placements
    // claim plus what the Cluster reports free must equal capacity exactly
    // (allocations are integral, so no float slack).
    if (tick.cluster_state == nullptr) continue;
    const ResourceVector& free = tick.cluster_state->node(n).free;
    if (u + free != capacity) {
      std::ostringstream os;
      os << "bookkeeping mismatch: placements use " << u.to_string()
         << ", cluster reports " << free.to_string() << " free, capacity "
         << capacity.to_string();
      record(Invariant::kResourceConservation, tick.now_s, -1, n, os.str());
    }
  }
}

void InvariantAuditor::audit_structure(const SimTick& tick) {
  if (run_.cluster == nullptr) return;
  const int num_nodes = run_.cluster->num_nodes;

  for (const AuditJobState& js : tick.jobs) {
    if (js.phase != SimJobPhase::kRunning) continue;
    if (js.placement == nullptr || js.placement->empty() ||
        js.plan == nullptr)
      continue;  // lifecycle reports the missing assignment
    ++report_.checks_performed;
    const int id = js.spec->id;
    const Placement& p = *js.placement;
    const ExecutionPlan& plan = *js.plan;

    if (config_.check_placement) {
      int prev_node = -1;
      for (const NodeSlice& slice : p.slices) {
        if (slice.node < 0 || slice.node >= num_nodes) {
          std::ostringstream os;
          os << "slice references node " << slice.node << " outside [0, "
             << num_nodes << ")";
          record(Invariant::kPlacementValidity, tick.now_s, id, slice.node,
                 os.str());
          continue;
        }
        if (slice.node <= prev_node)
          record(Invariant::kPlacementValidity, tick.now_s, id, slice.node,
                 "placement slices not in canonical form (sorted, unique "
                 "per node)");
        prev_node = slice.node;
        if (slice.gpus <= 0 || slice.cpus < 0)
          record(Invariant::kPlacementValidity, tick.now_s, id, slice.node,
                 "slice holds no GPUs or negative CPUs");
        if (slice.gpus > run_.cluster->node.gpus ||
            slice.cpus > run_.cluster->node.cpus ||
            slice.host_memory_bytes > run_.cluster->node.memory_bytes) {
          std::ostringstream os;
          os << "single slice exceeds node capacity: " << p.to_string();
          record(Invariant::kPlacementValidity, tick.now_s, id, slice.node,
                 os.str());
        }
      }

      const ModelSpec& model = find_model(js.spec->model_name);
      if (!plan.structurally_valid())
        record(Invariant::kPlacementValidity, tick.now_s, id, -1,
               "assigned plan " + plan.display_name() +
                   " is structurally invalid");
      else if (!plan.valid_for(model, js.spec->global_batch))
        record(Invariant::kPlacementValidity, tick.now_s, id, -1,
               "assigned plan " + plan.display_name() + " is invalid for " +
                   model.name);
      if (plan.num_gpus() != p.total_gpus()) {
        std::ostringstream os;
        os << "plan " << plan.display_name() << " wants " << plan.num_gpus()
           << " workers but placement holds " << p.total_gpus() << " GPUs";
        record(Invariant::kPlacementValidity, tick.now_s, id, -1, os.str());
      }
      if (plan.tp > 1) {
        for (const NodeSlice& slice : p.slices)
          if (slice.gpus % plan.tp != 0)
            record(Invariant::kPlacementValidity, tick.now_s, id, slice.node,
                   "TP group split across nodes: " + p.to_string());
      }
    }

    if (config_.check_plan_feasibility && run_.estimator != nullptr) {
      const ModelSpec& model = find_model(js.spec->model_name);
      const std::uint64_t gpu_need =
          run_.estimator->gpu_bytes(model, plan, js.spec->global_batch);
      if (gpu_need > run_.cluster->node.gpu_memory_bytes) {
        std::ostringstream os;
        os << "plan " << plan.display_name() << " needs " << gpu_need
           << " bytes per GPU, device holds "
           << run_.cluster->node.gpu_memory_bytes;
        record(Invariant::kPlanFeasibility, tick.now_s, id, -1, os.str());
      }
      const std::uint64_t host_need =
          run_.estimator->host_bytes(model, plan);
      const std::uint64_t host_capacity =
          static_cast<std::uint64_t>(p.num_nodes()) *
          run_.cluster->node.memory_bytes;
      if (host_need > host_capacity) {
        std::ostringstream os;
        os << "plan " << plan.display_name() << " needs " << host_need
           << " host bytes, spanned nodes hold " << host_capacity;
        record(Invariant::kPlanFeasibility, tick.now_s, id, -1, os.str());
      }
    }
  }
}

void InvariantAuditor::refresh_guarantee_engine() {
  const std::uint64_t version = run_.store->version();
  if (predictor_ != nullptr && engine_version_ == version) return;
  // Mirror RubickPolicy's rebind-on-refit: predictions memoized against an
  // older fit are stale the moment the store refits.
  predictor_ = std::make_unique<BestPlanPredictor>(*run_.cluster, *run_.store,
                                                   *run_.estimator);
  sla_ = std::make_unique<SlaCalculator>(*predictor_, *run_.store,
                                         *run_.cluster);
  engine_version_ = version;
}

void InvariantAuditor::audit_guarantee(const SimTick& tick) {
  if (run_.cluster == nullptr || run_.store == nullptr ||
      run_.estimator == nullptr)
    return;
  for (const AuditJobState& js : tick.jobs) {
    if (js.phase != SimJobPhase::kRunning || !js.spec->guaranteed) continue;
    if (js.placement == nullptr || js.placement->empty() ||
        js.plan == nullptr)
      continue;
    if (!run_.store->contains(js.spec->model_name)) continue;

    const int id = js.spec->id;
    JobAudit& ja = jobs_[id];
    // Audit only when the assignment changed: that is the moment the policy
    // made (and is accountable for) a decision. Between a mid-run refit and
    // the next scheduling round a stale-but-previously-legal assignment is
    // not a violation.
    const bool changed = ja.phase != SimJobPhase::kRunning ||
                         !(ja.placement == *js.placement) ||
                         !(ja.plan == *js.plan);
    const int gpus = js.placement->total_gpus();
    const int cpus = js.placement->total_cpus();
    if (!changed) continue;
    ++report_.checks_performed;
    refresh_guarantee_engine();

    // Judge the decision against the store version the policy decided with:
    // the previous tick's snapshot (see JobAudit). First sight of a job
    // falls back to current values — a first admission is always ramping,
    // so the fallback cannot misfire.
    const double baseline = ja.snap_valid
                                ? ja.baseline_snap
                                : sla_->baseline_throughput(*js.spec);
    const ResourceVector min_res =
        ja.snap_valid ? ja.min_res_snap : sla_->min_res(*js.spec, selector_);

    const ModelSpec& model = find_model(js.spec->model_name);
    const PerfContext ctx = make_perf_context(*run_.cluster, *js.placement);
    const double predicted =
        run_.store->get(js.spec->model_name)
            .predict_throughput(model, *js.plan, js.spec->global_batch, ctx);

    const bool below =
        predicted < baseline * (1.0 - config_.guarantee_rel_tolerance);
    // A below-baseline assignment is only legal through mechanisms that
    // either hold the minRes GPU reservation (the allocation whose
    // canonical best plan matches baseline — realized predictions dip
    // below when the concrete placement is fragmented or the host-memory
    // walk settles on a sub-best plan, approximations Algorithm 1's
    // shape-agnostic curves cannot see), or operate on a job UNDER its
    // minimum without ever shrinking it: opportunistic admission starts
    // queued guaranteed jobs small and grows them, an online refit can
    // raise the minimum mid-flight, and the exact-plan-infeasibility trim
    // slides a freshly shrunk victim below minRes but always STARTS from a
    // >= minRes allocation. The floor every sanctioned mechanism respects
    // (victim selection, flat-curve trim, below-min growth): GPUs are
    // never taken from a guaranteed job that is already under its minimum.
    const bool was_below_min = ja.last_gpus < min_res.gpus;
    if (below && gpus < min_res.gpus && was_below_min &&
        gpus < ja.last_gpus) {
      std::ostringstream os;
      os << "GPUs taken from a guaranteed job already below its minimum: "
         << "assigned " << js.plan->display_name() << " on " << gpus
         << " GPU(s)/" << cpus << " CPU(s), was " << ja.last_gpus << "/"
         << ja.last_cpus << "; predicted " << predicted
         << " samples/s < baseline " << baseline << ", minRes "
         << min_res.gpus << " GPU(s) (requested " << js.spec->requested.gpus
         << " GPUs, plan " << js.spec->initial_plan.display_name() << ")";
      record(Invariant::kPerformanceGuarantee, tick.now_s, id, -1, os.str());
    }
    ja.last_gpus = gpus;
    ja.last_cpus = cpus;
  }
}

void InvariantAuditor::update_job_state(const SimTick& tick) {
  for (const AuditJobState& js : tick.jobs) {
    JobAudit& ja = jobs_[js.spec->id];
    if (ja.seen && ja.phase == SimJobPhase::kRunning &&
        js.phase != SimJobPhase::kRunning) {
      // Preempted (or finished): a later resumption ramps up from scratch.
      ja.last_gpus = 0;
      ja.last_cpus = 0;
    }
    ja.seen = true;
    ja.phase = js.phase;
    ja.samples_done = js.samples_done;
    if (js.phase == SimJobPhase::kRunning) {
      ja.last_throughput = js.throughput;
      if (js.placement != nullptr) ja.placement = *js.placement;
      if (js.plan != nullptr) ja.plan = *js.plan;
    } else {
      ja.placement = Placement{};
    }

    // Capture the SLA quantities under the store version in force NOW: the
    // next scheduling round decides against exactly this version, so the
    // next observed assignment change is judged by these values (cache hits
    // in SlaCalculator except right after a refit).
    if (config_.check_guarantee && js.spec->guaranteed &&
        js.phase != SimJobPhase::kFinished && run_.store != nullptr &&
        run_.estimator != nullptr &&
        run_.store->contains(js.spec->model_name)) {
      refresh_guarantee_engine();
      ja.baseline_snap = sla_->baseline_throughput(*js.spec);
      ja.min_res_snap = sla_->min_res(*js.spec, selector_);
      ja.snap_valid = true;
    }
  }
}

std::vector<Violation> audit_curve_monotonicity(
    const ClusterSpec& cluster, const PerfModelStore& store,
    const MemoryEstimator& estimator,
    const std::vector<std::pair<std::string, int>>& model_batches,
    int max_gpus, int cpus_per_gpu, double rel_tolerance) {
  std::vector<Violation> out;
  BestPlanPredictor predictor(cluster, store, estimator);
  FullPlanSelector selector;
  for (const auto& [name, batch] : model_batches) {
    if (!store.contains(name)) continue;
    const ModelSpec& model = find_model(name);
    predictor.warm(model, batch, selector, max_gpus, cpus_per_gpu);
    double best_so_far = 0.0;
    int best_gpus = 0;
    for (int g = 1; g <= max_gpus; ++g) {
      const double v =
          predictor.envelope(model, batch, selector, g, cpus_per_gpu * g);
      if (v < best_so_far * (1.0 - rel_tolerance)) {
        Violation viol;
        viol.invariant = Invariant::kCurveMonotonicity;
        std::ostringstream os;
        os << "sensitivity curve for " << name << " (batch " << batch
           << ") decreases: envelope(" << g << " GPUs)=" << v
           << " < envelope(" << best_gpus << " GPUs)=" << best_so_far;
        viol.detail = os.str();
        out.push_back(std::move(viol));
      }
      if (v > best_so_far) {
        best_so_far = v;
        best_gpus = g;
      }
    }
  }
  return out;
}

}  // namespace rubick
