// Scheduler sanitizer: audits the paper-level invariants of a simulation
// run (Algorithm 1's contract) as it executes.
//
// The auditor is a `SimObserver` (core/audit.h): the simulator publishes a
// snapshot at every event-loop tick and the auditor re-derives, from first
// principles, that the run still satisfies:
//
//   1. Resource conservation — no node's GPUs/CPUs/host memory are
//      over-allocated by the union of running placements, and the live
//      `Cluster` bookkeeping agrees (used + free == capacity).
//   2. Placement validity — every running job's placement is canonical
//      (sorted, unique, in-range nodes, within per-node capacity), its plan
//      is structurally valid for the model/batch, matches the placement's
//      GPU count, and TP groups never span nodes.
//   3. Plan feasibility — the assigned plan's estimated per-GPU memory fits
//      the device, per the same `MemoryEstimator` the scheduler used.
//   4. Performance guarantee — each guaranteed job's modeled throughput at
//      its assigned (placement, plan) is at least its original-request
//      baseline. Below-baseline assignments are sanctioned when produced by
//      Algorithm 1's own mechanisms: holding at least the minRes
//      reservation — the allocation whose canonical best plan matches the
//      baseline — while placement fragmentation or the host-memory plan
//      walk shave the realized prediction (the paper's curves are
//      placement-shape-agnostic); and sitting under minRes without having
//      been shrunk while there (opportunistic admission starts a queued
//      guaranteed job small and grows it, an online refit can raise a
//      running job's minimum, and the exact-plan-infeasibility trim slides
//      a freshly shrunk victim below minRes — but always starting from a
//      >= minRes allocation). The floor every sanctioned mechanism
//      respects, and hence the violation class: GPUs taken from a
//      guaranteed job that was already under its minimum. Evaluated at
//      every assignment change, with the same fitted store and SLA
//      machinery the policy decided with.
//   5. Sensitivity-curve monotonicity — the best-plan envelope is
//      non-decreasing in resources (a one-time sweep per model at run
//      start; guards the concurrent predictor caches).
//   6. Lifecycle legality — job phases follow the state machine
//      not-ready -> pending -> running -> finished (with running -> pending
//      preemption), progress never goes backwards, running jobs hold
//      non-empty placements, finished jobs met their sample target.
//   7. Node availability — under fault injection, no running job holds a
//      slice on a node the tick reports as down (assignments must never
//      land on, or survive, a crashed node).
//   8. Failure recovery — after a reconfiguration-failure notice, the
//      affected job is back in a valid state by the next tick: pending with
//      its pre-attempt allocation released, or running with exactly the
//      pre-attempt placement and plan restored (never a half-applied
//      configuration).
//
// Violations carry the invariant, tick time, job and node; the response is
// configurable (throw / log / count). The auditor checks, it never steers:
// a clean run is byte-identical with or without it.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "cluster/cluster.h"
#include "cluster/placement.h"
#include "common/resource.h"
#include "core/audit.h"
#include "core/plan_selector.h"
#include "core/predictor.h"
#include "core/sla.h"
#include "perf/perf_store.h"
#include "plan/execution_plan.h"
#include "plan/memory_estimator.h"

namespace rubick {

enum class Invariant {
  kResourceConservation = 0,
  kPlacementValidity,
  kPlanFeasibility,
  kPerformanceGuarantee,
  kCurveMonotonicity,
  kLifecycle,
  kNodeAvailability,
  kFailureRecovery,
};

inline constexpr std::size_t kNumInvariants = 8;

const char* to_string(Invariant invariant);

// What to do when an invariant is violated.
enum class ViolationPolicy {
  kThrow,  // raise InvariantError at the first violation (fail fast)
  kLog,    // RUBICK_WARN each violation, keep running
  kCount,  // record silently; caller inspects report()
};

struct AuditConfig {
  ViolationPolicy on_violation = ViolationPolicy::kThrow;

  bool check_conservation = true;
  bool check_placement = true;
  bool check_plan_feasibility = true;
  bool check_lifecycle = true;
  // Algorithm 1's SLA is a promise only Rubick-family policies make;
  // enable when auditing one (baselines legitimately break it).
  bool check_guarantee = false;
  // Fault-injection invariants (7 and 8). On by default: both are no-ops
  // unless the run actually reports down nodes / fault notices.
  bool check_node_availability = true;
  bool check_failure_recovery = true;
  // One-time envelope sweep per (model, batch) at run start. Costs one
  // predictor warm() per combination — audit-mode only by default.
  bool check_curves = false;

  // Relative slack on curve-monotonicity comparisons (float noise only).
  double rel_tolerance = 1e-6;
  // Relative slack on the performance-guarantee comparison (the policy
  // itself qualifies minRes at 0.999 x baseline, sla.cc).
  double guarantee_rel_tolerance = 0.05;
  // GPU range of the curve sweep; 0 means the cluster's total GPU count.
  int curve_max_gpus = 0;
  // Violations kept verbatim in the report; counters stay exact beyond it.
  std::size_t max_recorded_violations = 256;
};

// A structured report of one invariant violation.
struct Violation {
  Invariant invariant = Invariant::kResourceConservation;
  double time_s = 0.0;
  int job_id = -1;   // -1: not job-specific
  int node_id = -1;  // -1: not node-specific
  std::string detail;

  std::string to_string() const;
};

struct AuditReport {
  std::vector<Violation> violations;  // capped at max_recorded_violations
  std::array<long, kNumInvariants> violation_counts{};
  long total_violations = 0;
  long checks_performed = 0;
  long ticks_observed = 0;

  bool clean() const { return total_violations == 0; }
  std::string summary() const;
};

class InvariantAuditor final : public SimObserver {
 public:
  explicit InvariantAuditor(AuditConfig config = {});

  void on_run_begin(const SimRunInfo& info) override;
  void on_tick(const SimTick& tick) override;
  void on_run_end(const SimTick& tick) override;
  void on_fault(const SimFaultNotice& notice) override;

  const AuditReport& report() const { return report_; }
  const AuditConfig& config() const { return config_; }

 private:
  // Persistent per-job audit state across ticks.
  struct JobAudit {
    bool seen = false;
    SimJobPhase phase = SimJobPhase::kNotReady;
    double samples_done = 0.0;
    double last_throughput = 0.0;
    // Last audited assignment (valid while the job runs).
    Placement placement;
    ExecutionPlan plan;
    // Guarantee ramp tracking (see header comment, invariant 4).
    int last_gpus = 0;
    int last_cpus = 0;
    // SLA quantities captured at the END of the previous tick. Online
    // refinement refits the store inside the simulator's assignment
    // application — after the policy decided, before the tick is observed —
    // so the previous tick's store version is exactly the one the policy's
    // scheduling round was computed against. Judging a decision by the
    // post-refit fit would blame the policy for a promise it never saw.
    double baseline_snap = -1.0;
    ResourceVector min_res_snap;
    bool snap_valid = false;
  };

  // A reconfiguration-failure notice pending verification at the next tick
  // (invariant 8): the job must be pending with nothing allocated, or
  // running with exactly this placement/plan.
  struct PendingRecovery {
    int job_id = -1;
    double notice_time_s = 0.0;
    Placement prior_placement;
    ExecutionPlan prior_plan;
    bool has_prior = false;
  };

  void record(Invariant invariant, double time_s, int job_id, int node_id,
              std::string detail);
  void audit_conservation(const SimTick& tick);
  void audit_structure(const SimTick& tick);
  void audit_guarantee(const SimTick& tick);
  void audit_lifecycle(const SimTick& tick);
  void audit_node_availability(const SimTick& tick);
  void audit_failure_recovery(const SimTick& tick);
  void update_job_state(const SimTick& tick);
  // (Re)builds the guarantee engine (predictor + SLA calculator) against
  // the store's current version; mirrors the policy's own rebind on refit.
  void refresh_guarantee_engine();

  AuditConfig config_;
  SimRunInfo run_;
  AuditReport report_;
  std::map<int, JobAudit> jobs_;
  std::vector<PendingRecovery> pending_recoveries_;

  // Guarantee machinery: the same SLA primitives the policy schedules with,
  // rebuilt whenever online refinement bumps the store version.
  FullPlanSelector selector_;
  std::unique_ptr<BestPlanPredictor> predictor_;
  std::unique_ptr<SlaCalculator> sla_;
  std::uint64_t engine_version_ = 0;
};

// Standalone sensitivity-curve monotonicity sweep: for every
// (model name, global batch) combination, walks the best-plan envelope from
// 1 GPU (with `cpus_per_gpu` CPUs each) up to `max_gpus` and reports every
// point where the predicted best-plan throughput decreases. Used by the
// auditor's `check_curves` and directly by tests.
std::vector<Violation> audit_curve_monotonicity(
    const ClusterSpec& cluster, const PerfModelStore& store,
    const MemoryEstimator& estimator,
    const std::vector<std::pair<std::string, int>>& model_batches,
    int max_gpus, int cpus_per_gpu = 2, double rel_tolerance = 1e-6);

}  // namespace rubick
