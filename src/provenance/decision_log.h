// Decision-log serialization and why-queries.
//
// The on-disk format is JSONL: one self-describing object per line, typed
// by a "type" field — "header" (schema version, policy), "round" (one
// RoundRecord), "fault" (a SimFaultNotice witnessed between rounds) and
// "run_end" (footer with totals). Rendering is deterministic (fixed key
// order, fixed number formatting), which is what lets the tests compare
// fast-path and slow-path rounds byte-for-byte. 64-bit digests are
// rendered as "0x..." hex strings so readers never round them through a
// double (see common/jsonp.h).
//
// The query helpers below back both tools/rubick_explain.cpp and the unit
// tests, so the CLI stays a thin formatter over tested logic.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "provenance/provenance.h"

namespace rubick {

// --- writing -------------------------------------------------------------

std::string decision_record_to_json(const DecisionRecord& record);
std::string trade_event_to_json(const TradeEvent& trade);
// {"type":"round",...} — one line, no trailing newline.
std::string round_to_json(const RoundRecord& round);

// --- reading -------------------------------------------------------------

// A fault line as it appears in the log (written by ProvenanceObserver
// from SimFaultNotice; kept as strings/ids so the log is policy-agnostic).
struct FaultLogRecord {
  double t_s = 0.0;
  std::string kind;
  int node = -1;    // -1 when the fault is not node-scoped
  int job_id = -1;  // -1 when the fault is not job-scoped
};

struct DecisionLog {
  int schema_version = 0;
  std::string policy;
  std::vector<RoundRecord> rounds;  // ascending seq
  std::vector<FaultLogRecord> faults;  // ascending t_s
};

// Parses a decision log. Unknown line types are skipped (forward
// compatibility); malformed JSON or a bad round schema throws
// InvariantError naming the line number.
DecisionLog read_decision_log(std::istream& is);
DecisionLog read_decision_log_file(const std::string& path);

// --- why-queries ---------------------------------------------------------

// The decision for `job` in `round`, or null.
const DecisionRecord* find_decision(const RoundRecord& round, int job_id);

// Most recent round at or before `at_s` that carries a decision for `job`;
// null when the job never appears. at_s = +inf means "end of log".
const RoundRecord* last_round_with_job(const DecisionLog& log, int job_id,
                                       double at_s);

struct JobChange {
  const RoundRecord* round = nullptr;
  const DecisionRecord* record = nullptr;
};

// Most recent round at or before `at_s` in which `job`'s allocation
// actually changed (kind other than kKeep/kQueue). Null members when the
// job's allocation never changed in the window.
JobChange last_allocation_change(const DecisionLog& log, int job_id,
                                 double at_s);

// Every (round, record) where a job shrank or was preempted, in log order.
// job_id -1 = all jobs.
std::vector<JobChange> shrink_events(const DecisionLog& log, int job_id);

// Trades in `round` involving `job` (as claimant or victim).
std::vector<const TradeEvent*> trades_for(const RoundRecord& round,
                                          int job_id);

// Faults in (after_s, until_s] — the evidence window between the previous
// round and the round where an allocation changed.
std::vector<const FaultLogRecord*> faults_between(const DecisionLog& log,
                                                  double after_s,
                                                  double until_s);

// One line per differing round position: round-time, decision, or trade
// mismatches between two logs (e.g. two seeds, or fast-path vs slow-path).
// seq, fast_path and digest are ignored — the digest hashes run-local state
// (including the perf-store address), so it is never comparable across runs.
// Empty when the logs describe identical decision sequences.
std::vector<std::string> diff_logs(const DecisionLog& a,
                                   const DecisionLog& b);

}  // namespace rubick
