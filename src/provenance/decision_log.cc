#include "provenance/decision_log.h"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <istream>
#include <sstream>
#include <string>
#include <type_traits>
#include <vector>

#include "common/error.h"
#include "common/jsonp.h"
#include "common/jsonx.h"
#include "plan/execution_plan.h"

namespace rubick {
namespace {

std::string hex_u64(std::uint64_t v) {
  static const char* kHex = "0123456789abcdef";
  std::string out = "0x";
  for (int shift = 60; shift >= 0; shift -= 4) {
    out.push_back(kHex[(v >> shift) & 0xF]);
  }
  return out;
}

std::uint64_t parse_hex_u64(const std::string& text) {
  return std::strtoull(text.c_str(), nullptr, 16);
}

std::string plan_to_json(const ExecutionPlan& plan) {
  std::ostringstream os;
  os << '{' << json_key("dp") << plan.dp << ',' << json_key("tp") << plan.tp
     << ',' << json_key("pp") << plan.pp << ',' << json_key("ga")
     << plan.ga_steps << ',' << json_key("mb") << plan.micro_batches << ','
     << json_key("zero") << static_cast<int>(plan.zero) << ','
     << json_key("gc") << (plan.grad_ckpt ? "true" : "false") << ','
     << json_key("name") << json_str(plan.display_name()) << '}';
  return os.str();
}

template <typename T>
std::string array_to_json(const std::vector<T>& values) {
  std::ostringstream os;
  os << '[';
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i != 0) os << ',';
    if constexpr (std::is_same_v<T, double>) {
      os << json_number(values[i]);
    } else {
      os << values[i];
    }
  }
  os << ']';
  return os.str();
}

std::string curve_to_json(const CurveEvidence& curve) {
  std::ostringstream os;
  os << '{' << json_key("key") << json_str(curve.curve_key) << ','
     << json_key("min_feasible") << curve.min_feasible_gpus << ','
     << json_key("max_useful") << curve.max_useful_gpus << ','
     << json_key("candidates") << curve.candidate_width_count << ','
     << json_key("widths") << array_to_json(curve.widths) << ','
     << json_key("throughput") << array_to_json(curve.width_throughput)
     << ',' << json_key("chosen_throughput")
     << json_number(curve.chosen_throughput) << '}';
  return os.str();
}

std::string sla_to_json(const SlaSnapshot& sla) {
  std::ostringstream os;
  os << '{' << json_key("guaranteed") << (sla.guaranteed ? "true" : "false")
     << ',' << json_key("baseline") << json_number(sla.baseline_throughput)
     << ',' << json_key("min_gpus") << sla.min_gpus << ','
     << json_key("min_cpus") << sla.min_cpus << '}';
  return os.str();
}

std::string gates_to_json(const GateFacts& gates) {
  const auto flag = [](bool b) { return b ? "true" : "false"; };
  std::ostringstream os;
  os << '{' << json_key("frozen") << flag(gates.frozen) << ','
     << json_key("starved") << flag(gates.starvation_forced) << ','
     << json_key("opportunistic") << flag(gates.opportunistic) << ','
     << json_key("backoff") << flag(gates.backoff_gated) << ','
     << json_key("degraded") << flag(gates.degraded) << ','
     << json_key("fault_dropped") << flag(gates.fault_dropped) << ','
     << json_key("reconfig_failures") << gates.reconfig_failures << ','
     << json_key("retry_not_before_s")
     << json_number(gates.retry_not_before_s) << '}';
  return os.str();
}

ExecutionPlan plan_from_json(const JsonValue& v) {
  ExecutionPlan plan;
  if (const JsonValue* f = v.get("dp")) plan.dp = f->as_int(1);
  if (const JsonValue* f = v.get("tp")) plan.tp = f->as_int(1);
  if (const JsonValue* f = v.get("pp")) plan.pp = f->as_int(1);
  if (const JsonValue* f = v.get("ga")) plan.ga_steps = f->as_int(1);
  if (const JsonValue* f = v.get("mb")) plan.micro_batches = f->as_int(1);
  if (const JsonValue* f = v.get("zero")) {
    plan.zero = static_cast<ZeroStage>(f->as_int(0));
  }
  if (const JsonValue* f = v.get("gc")) plan.grad_ckpt = f->as_bool(false);
  return plan;
}

CurveEvidence curve_from_json(const JsonValue& v) {
  CurveEvidence curve;
  if (const JsonValue* f = v.get("key")) curve.curve_key = f->as_string();
  if (const JsonValue* f = v.get("min_feasible")) {
    curve.min_feasible_gpus = f->as_int();
  }
  if (const JsonValue* f = v.get("max_useful")) {
    curve.max_useful_gpus = f->as_int();
  }
  if (const JsonValue* f = v.get("candidates")) {
    curve.candidate_width_count = f->as_int();
  }
  if (const JsonValue* f = v.get("widths"); f != nullptr && f->is_array()) {
    for (const JsonValue& w : f->array) curve.widths.push_back(w.as_int());
  }
  if (const JsonValue* f = v.get("throughput");
      f != nullptr && f->is_array()) {
    for (const JsonValue& t : f->array) {
      curve.width_throughput.push_back(t.as_double());
    }
  }
  if (const JsonValue* f = v.get("chosen_throughput")) {
    curve.chosen_throughput = f->as_double();
  }
  return curve;
}

DecisionRecord decision_from_json(const JsonValue& v) {
  DecisionRecord r;
  const JsonValue* job = v.get("job");
  RUBICK_CHECK_MSG(job != nullptr, "decision record without \"job\"");
  r.job_id = job->as_int();
  if (const JsonValue* f = v.get("kind")) {
    RUBICK_CHECK_MSG(decision_kind_from_string(f->as_string(), &r.kind),
                     "unknown decision kind '" << f->as_string() << "'");
  }
  if (const JsonValue* f = v.get("prev_gpus")) r.prev_gpus = f->as_int();
  if (const JsonValue* f = v.get("gpus")) r.gpus = f->as_int();
  if (const JsonValue* f = v.get("cpus")) r.cpus = f->as_int();
  if (const JsonValue* f = v.get("nodes")) r.nodes = f->as_int();
  if (const JsonValue* f = v.get("prev_plan")) {
    r.has_prev_plan = true;
    r.prev_plan = plan_from_json(*f);
  }
  if (const JsonValue* f = v.get("plan")) {
    r.has_plan = true;
    r.plan = plan_from_json(*f);
  }
  if (const JsonValue* f = v.get("curve")) r.curve = curve_from_json(*f);
  if (const JsonValue* f = v.get("sla")) {
    if (const JsonValue* g = f->get("guaranteed")) {
      r.sla.guaranteed = g->as_bool();
    }
    if (const JsonValue* g = f->get("baseline")) {
      r.sla.baseline_throughput = g->as_double();
    }
    if (const JsonValue* g = f->get("min_gpus")) r.sla.min_gpus = g->as_int();
    if (const JsonValue* g = f->get("min_cpus")) r.sla.min_cpus = g->as_int();
  }
  if (const JsonValue* f = v.get("gates")) {
    if (const JsonValue* g = f->get("frozen")) r.gates.frozen = g->as_bool();
    if (const JsonValue* g = f->get("starved")) {
      r.gates.starvation_forced = g->as_bool();
    }
    if (const JsonValue* g = f->get("opportunistic")) {
      r.gates.opportunistic = g->as_bool();
    }
    if (const JsonValue* g = f->get("backoff")) {
      r.gates.backoff_gated = g->as_bool();
    }
    if (const JsonValue* g = f->get("degraded")) {
      r.gates.degraded = g->as_bool();
    }
    if (const JsonValue* g = f->get("fault_dropped")) {
      r.gates.fault_dropped = g->as_bool();
    }
    if (const JsonValue* g = f->get("reconfig_failures")) {
      r.gates.reconfig_failures = g->as_int();
    }
    if (const JsonValue* g = f->get("retry_not_before_s")) {
      r.gates.retry_not_before_s = g->as_double();
    }
  }
  return r;
}

TradeEvent trade_from_json(const JsonValue& v) {
  TradeEvent t;
  if (const JsonValue* f = v.get("res")) t.gpu = f->as_string() != "cpu";
  if (const JsonValue* f = v.get("claimant")) t.claimant_id = f->as_int();
  if (const JsonValue* f = v.get("victim")) t.victim_id = f->as_int();
  if (const JsonValue* f = v.get("node")) t.node = f->as_int();
  if (const JsonValue* f = v.get("claimant_slope")) {
    t.claimant_slope = f->as_double();
  }
  if (const JsonValue* f = v.get("victim_slope")) {
    t.victim_slope = f->as_double();
  }
  if (const JsonValue* f = v.get("victim_before")) {
    t.victim_before = f->as_int();
  }
  if (const JsonValue* f = v.get("victim_after")) t.victim_after = f->as_int();
  if (const JsonValue* f = v.get("victim_min")) t.victim_min = f->as_int();
  if (const JsonValue* f = v.get("forced")) t.forced = f->as_bool();
  if (const JsonValue* f = v.get("preempted")) {
    t.preempted_victim = f->as_bool();
  }
  return t;
}

RoundRecord round_from_json(const JsonValue& v) {
  RoundRecord round;
  if (const JsonValue* f = v.get("seq")) {
    round.seq = static_cast<std::uint64_t>(f->as_double());
  }
  if (const JsonValue* f = v.get("t_s")) round.now_s = f->as_double();
  if (const JsonValue* f = v.get("policy")) round.policy = f->as_string();
  if (const JsonValue* f = v.get("digest")) {
    round.digest = parse_hex_u64(f->as_string("0x0"));
  }
  if (const JsonValue* f = v.get("fast_path")) {
    round.fast_path = f->as_bool();
  }
  if (const JsonValue* f = v.get("jobs"); f != nullptr && f->is_array()) {
    round.decisions.reserve(f->array.size());
    for (const JsonValue& d : f->array) {
      round.decisions.push_back(decision_from_json(d));
    }
  }
  if (const JsonValue* f = v.get("trades"); f != nullptr && f->is_array()) {
    round.trades.reserve(f->array.size());
    for (const JsonValue& t : f->array) {
      round.trades.push_back(trade_from_json(t));
    }
  }
  return round;
}

}  // namespace

std::string decision_record_to_json(const DecisionRecord& record) {
  std::ostringstream os;
  os << '{' << json_key("job") << record.job_id << ',' << json_key("kind")
     << json_str(to_string(record.kind)) << ',' << json_key("prev_gpus")
     << record.prev_gpus << ',' << json_key("gpus") << record.gpus << ','
     << json_key("cpus") << record.cpus << ',' << json_key("nodes")
     << record.nodes;
  if (record.has_prev_plan) {
    os << ',' << json_key("prev_plan") << plan_to_json(record.prev_plan);
  }
  if (record.has_plan) {
    os << ',' << json_key("plan") << plan_to_json(record.plan);
  }
  if (!record.curve.curve_key.empty()) {
    os << ',' << json_key("curve") << curve_to_json(record.curve);
  }
  os << ',' << json_key("sla") << sla_to_json(record.sla) << ','
     << json_key("gates") << gates_to_json(record.gates) << '}';
  return os.str();
}

std::string trade_event_to_json(const TradeEvent& trade) {
  std::ostringstream os;
  os << '{' << json_key("res") << json_str(trade.gpu ? "gpu" : "cpu") << ','
     << json_key("claimant") << trade.claimant_id << ',' << json_key("victim")
     << trade.victim_id << ',' << json_key("node") << trade.node << ','
     << json_key("claimant_slope") << json_number(trade.claimant_slope)
     << ',' << json_key("victim_slope") << json_number(trade.victim_slope)
     << ',' << json_key("victim_before") << trade.victim_before << ','
     << json_key("victim_after") << trade.victim_after << ','
     << json_key("victim_min") << trade.victim_min << ',' << json_key("forced")
     << (trade.forced ? "true" : "false") << ',' << json_key("preempted")
     << (trade.preempted_victim ? "true" : "false") << '}';
  return os.str();
}

std::string round_to_json(const RoundRecord& round) {
  std::ostringstream os;
  os << '{' << json_key("type") << json_str("round") << ',' << json_key("seq")
     << round.seq << ',' << json_key("t_s") << json_number(round.now_s) << ','
     << json_key("policy") << json_str(round.policy) << ','
     << json_key("digest") << json_str(hex_u64(round.digest)) << ','
     << json_key("fast_path") << (round.fast_path ? "true" : "false") << ','
     << json_key("jobs") << '[';
  for (std::size_t i = 0; i < round.decisions.size(); ++i) {
    if (i != 0) os << ',';
    os << decision_record_to_json(round.decisions[i]);
  }
  os << ']' << ',' << json_key("trades") << '[';
  for (std::size_t i = 0; i < round.trades.size(); ++i) {
    if (i != 0) os << ',';
    os << trade_event_to_json(round.trades[i]);
  }
  os << ']' << '}';
  return os.str();
}

DecisionLog read_decision_log(std::istream& is) {
  DecisionLog log;
  std::string line;
  int line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty()) continue;
    JsonValue doc;
    std::string error;
    RUBICK_CHECK_MSG(parse_json(line, &doc, &error),
                     "decision log line " << line_no << ": " << error);
    const JsonValue* type = doc.get("type");
    RUBICK_CHECK_MSG(type != nullptr,
                     "decision log line " << line_no << ": missing \"type\"");
    const std::string& kind = type->as_string();
    if (kind == "header") {
      if (const JsonValue* f = doc.get("schema_version")) {
        log.schema_version = f->as_int();
      }
      if (const JsonValue* f = doc.get("policy")) log.policy = f->as_string();
    } else if (kind == "round") {
      log.rounds.push_back(round_from_json(doc));
    } else if (kind == "fault") {
      FaultLogRecord fault;
      if (const JsonValue* f = doc.get("t_s")) fault.t_s = f->as_double();
      if (const JsonValue* f = doc.get("kind")) fault.kind = f->as_string();
      if (const JsonValue* f = doc.get("node")) fault.node = f->as_int(-1);
      if (const JsonValue* f = doc.get("job")) fault.job_id = f->as_int(-1);
      log.faults.push_back(fault);
    }
    // Unknown types (run_end included) are tolerated for forward
    // compatibility; run_end carries only totals derivable from rounds.
  }
  return log;
}

DecisionLog read_decision_log_file(const std::string& path) {
  std::ifstream is(path);
  RUBICK_CHECK_MSG(is.good(), "cannot open decision log '" << path << "'");
  return read_decision_log(is);
}

const DecisionRecord* find_decision(const RoundRecord& round, int job_id) {
  for (const DecisionRecord& r : round.decisions) {
    if (r.job_id == job_id) return &r;
  }
  return nullptr;
}

const RoundRecord* last_round_with_job(const DecisionLog& log, int job_id,
                                       double at_s) {
  const RoundRecord* best = nullptr;
  for (const RoundRecord& round : log.rounds) {
    if (round.now_s > at_s) break;
    if (find_decision(round, job_id) != nullptr) best = &round;
  }
  return best;
}

JobChange last_allocation_change(const DecisionLog& log, int job_id,
                                 double at_s) {
  JobChange best;
  for (const RoundRecord& round : log.rounds) {
    if (round.now_s > at_s) break;
    const DecisionRecord* r = find_decision(round, job_id);
    if (r == nullptr) continue;
    if (r->kind == DecisionKind::kKeep || r->kind == DecisionKind::kQueue) {
      continue;
    }
    best.round = &round;
    best.record = r;
  }
  return best;
}

std::vector<JobChange> shrink_events(const DecisionLog& log, int job_id) {
  std::vector<JobChange> out;
  for (const RoundRecord& round : log.rounds) {
    for (const DecisionRecord& r : round.decisions) {
      if (job_id >= 0 && r.job_id != job_id) continue;
      if (r.kind == DecisionKind::kShrink ||
          r.kind == DecisionKind::kPreempt) {
        out.push_back(JobChange{&round, &r});
      }
    }
  }
  return out;
}

std::vector<const TradeEvent*> trades_for(const RoundRecord& round,
                                          int job_id) {
  std::vector<const TradeEvent*> out;
  for (const TradeEvent& t : round.trades) {
    if (t.claimant_id == job_id || t.victim_id == job_id) out.push_back(&t);
  }
  return out;
}

std::vector<const FaultLogRecord*> faults_between(const DecisionLog& log,
                                                  double after_s,
                                                  double until_s) {
  std::vector<const FaultLogRecord*> out;
  for (const FaultLogRecord& f : log.faults) {
    if (f.t_s > after_s && f.t_s <= until_s) out.push_back(&f);
  }
  return out;
}

std::vector<std::string> diff_logs(const DecisionLog& a,
                                   const DecisionLog& b) {
  std::vector<std::string> out;
  const std::size_t n = std::min(a.rounds.size(), b.rounds.size());
  for (std::size_t i = 0; i < n; ++i) {
    const RoundRecord& ra = a.rounds[i];
    const RoundRecord& rb = b.rounds[i];
    std::ostringstream os;
    // seq, fast_path and digest are intentionally not compared: a fast-path
    // run and a slow-path run of the same workload should diff clean, and
    // the digest hashes run-local state (the perf-store address) so it is
    // only meaningful within one run.
    if (ra.now_s != rb.now_s) {
      os << "round " << i << ": t_s " << ra.now_s << " vs " << rb.now_s;
    } else {
      std::string da;
      std::string db;
      for (const DecisionRecord& r : ra.decisions) {
        da += decision_record_to_json(r);
      }
      for (const TradeEvent& t : ra.trades) da += trade_event_to_json(t);
      for (const DecisionRecord& r : rb.decisions) {
        db += decision_record_to_json(r);
      }
      for (const TradeEvent& t : rb.trades) db += trade_event_to_json(t);
      if (da != db) {
        os << "round " << i << " (t=" << ra.now_s << "s): decisions differ";
        for (const DecisionRecord& r : ra.decisions) {
          const DecisionRecord* other = find_decision(rb, r.job_id);
          if (other == nullptr) {
            os << "; job " << r.job_id << " only in A";
          } else if (decision_record_to_json(r) !=
                     decision_record_to_json(*other)) {
            os << "; job " << r.job_id << ": " << to_string(r.kind) << "/"
               << r.gpus << "g vs " << to_string(other->kind) << "/"
               << other->gpus << "g";
          }
        }
        for (const DecisionRecord& r : rb.decisions) {
          if (find_decision(ra, r.job_id) == nullptr) {
            os << "; job " << r.job_id << " only in B";
          }
        }
      }
    }
    if (!os.str().empty()) out.push_back(os.str());
  }
  if (a.rounds.size() != b.rounds.size()) {
    std::ostringstream os;
    os << "round count " << a.rounds.size() << " vs " << b.rounds.size();
    out.push_back(os.str());
  }
  return out;
}

}  // namespace rubick
