// Decision provenance: structured "why" records for every scheduling round.
//
// The scheduler policies (RubickPolicy directly, the baselines through
// baselines/common.cc's emit_assignments hook) append one RoundRecord per
// schedule() call to an attached ProvenanceRecorder. Each record carries,
// per job, the chosen plan and width, the sensitivity-curve evidence behind
// that choice, the Algorithm-1 trades that funded it, and the gating facts
// (SLA snapshot, starvation/backoff predicates, fault-tolerance state).
// Fast-path replay rounds re-emit the cached slow-path decisions verbatim,
// marked fast_path=true with the matched digest, so a replayed round is
// byte-identical to the round it replays (tests/test_provenance.cc pins
// this).
//
// Overhead contract (DESIGN.md §12): with no recorder attached every record
// site is a single pointer test; with RUBICK_PROVENANCE_DISABLED defined the
// sites are compiled away entirely via kProvenanceCompiledIn, mirroring the
// metrics-macro contract in telemetry/metrics.h.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "plan/execution_plan.h"

namespace rubick {

#ifdef RUBICK_PROVENANCE_DISABLED
inline constexpr bool kProvenanceCompiledIn = false;
#else
inline constexpr bool kProvenanceCompiledIn = true;
#endif

// What happened to a job's allocation this round, judged against the
// previous round (prev_gpus). kReplan = same width, different plan.
enum class DecisionKind {
  kQueue,    // waiting; no allocation this round (and none before)
  kAdmit,    // first allocation (or re-admission after eviction)
  kKeep,     // same width, same plan
  kGrow,     // width increased
  kShrink,   // width decreased but still running
  kPreempt,  // was running, lost its allocation entirely
  kReplan,   // same width, plan changed
};

const char* to_string(DecisionKind kind);
bool decision_kind_from_string(const std::string& text, DecisionKind* out);

// Sensitivity-curve evidence behind a width choice. The candidate set is
// summarized by its landmarks (min feasible, max useful, the chosen width
// and its candidate neighbors, the previous width) rather than dumped in
// full; candidate_width_count records how many widths were actually
// considered (see DESIGN.md §12).
struct CurveEvidence {
  std::string curve_key;  // "model|global_batch|selector"
  int min_feasible_gpus = 0;
  int max_useful_gpus = 0;
  int candidate_width_count = 0;
  std::vector<int> widths;               // sampled widths, ascending
  std::vector<double> width_throughput;  // envelope samples/s at widths
  double chosen_throughput = 0.0;        // at the granted (gpus, cpus)
};

// The SLA inputs the policy judged the job against this round.
struct SlaSnapshot {
  bool guaranteed = false;
  double baseline_throughput = 0.0;  // samples/s owed to a guaranteed job
  int min_gpus = 0;                  // minRes width (0 = none/unknown)
  int min_cpus = 0;
};

// Boolean predicates and fault-tolerance state that gated the decision.
struct GateFacts {
  bool frozen = false;             // reconfiguration-penalty gate held width
  bool starvation_forced = false;  // best-effort starvation override fired
  bool opportunistic = false;      // admitted below minRes on spare capacity
  bool backoff_gated = false;      // reconfig-retry backoff blocked placement
  bool degraded = false;           // pinned to last-known-good plan
  bool fault_dropped = false;      // apply_fault_tolerance removed the grant
  int reconfig_failures = 0;
  double retry_not_before_s = 0.0;
};

struct DecisionRecord {
  int job_id = 0;
  DecisionKind kind = DecisionKind::kQueue;
  int prev_gpus = 0;  // width at the start of the round (0 = not running)
  int gpus = 0;
  int cpus = 0;
  int nodes = 0;
  bool has_prev_plan = false;
  bool has_plan = false;
  ExecutionPlan prev_plan;
  ExecutionPlan plan;
  CurveEvidence curve;
  SlaSnapshot sla;
  GateFacts gates;
};

// One Algorithm-1 trade: `claimant` took one unit from `victim` on `node`.
// Guarantee slack before/after is (victim_before - victim_min) and
// (victim_after - victim_min) in the traded resource's units.
struct TradeEvent {
  bool gpu = true;  // false = a CPU unit moved
  int claimant_id = 0;
  int victim_id = 0;
  int node = 0;
  double claimant_slope = 0.0;  // claimant's normalized gain per unit
  double victim_slope = 0.0;    // victim's normalized loss per unit
  int victim_before = 0;        // victim's units before the trade
  int victim_after = 0;
  int victim_min = 0;    // victim's guaranteed floor in those units
  bool forced = false;   // claimant was below its floor (SLA override)
  bool preempted_victim = false;  // the trade shrank the victim to zero
};

struct RoundRecord {
  std::uint64_t seq = 0;  // assigned by ProvenanceRecorder::record()
  double now_s = 0.0;
  std::string policy;
  std::uint64_t digest = 0;  // round digest (0 for policies without one)
  bool fast_path = false;    // replayed from the digest cache
  std::vector<DecisionRecord> decisions;  // input job order
  std::vector<TradeEvent> trades;         // chronological
};

// Collects RoundRecords across a run. Thread-safe: concurrent policies may
// share one recorder (the sim harness attaches it to seed 0 only, but the
// tests exercise concurrent runs). The sequence number doubles as the
// Perfetto flow-event id linking the record to its phase:decide span.
class ProvenanceRecorder {
 public:
  // Stamps the round with the next sequence number and stores it; returns
  // the assigned seq.
  std::uint64_t record(RoundRecord round) {
    const std::lock_guard<std::mutex> lock(mu_);
    round.seq = next_seq_++;
    const std::uint64_t seq = round.seq;
    rounds_.push_back(std::move(round));
    return seq;
  }

  // Drains and returns the rounds recorded since the last take (observer
  // pull model; called from SimObserver ticks).
  std::vector<RoundRecord> take_rounds() {
    const std::lock_guard<std::mutex> lock(mu_);
    std::vector<RoundRecord> out;
    out.swap(rounds_);
    return out;
  }

  std::uint64_t rounds_recorded() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return next_seq_ - 1;
  }

 private:
  mutable std::mutex mu_;
  std::vector<RoundRecord> rounds_;  // guarded by mu_
  std::uint64_t next_seq_ = 1;       // guarded by mu_
};

}  // namespace rubick
