#include "provenance/provenance.h"

#include <string>

namespace rubick {

const char* to_string(DecisionKind kind) {
  switch (kind) {
    case DecisionKind::kQueue: return "queue";
    case DecisionKind::kAdmit: return "admit";
    case DecisionKind::kKeep: return "keep";
    case DecisionKind::kGrow: return "grow";
    case DecisionKind::kShrink: return "shrink";
    case DecisionKind::kPreempt: return "preempt";
    case DecisionKind::kReplan: return "replan";
  }
  return "unknown";
}

bool decision_kind_from_string(const std::string& text, DecisionKind* out) {
  static constexpr DecisionKind kAll[] = {
      DecisionKind::kQueue, DecisionKind::kAdmit,   DecisionKind::kKeep,
      DecisionKind::kGrow,  DecisionKind::kShrink,  DecisionKind::kPreempt,
      DecisionKind::kReplan,
  };
  for (const DecisionKind kind : kAll) {
    if (text == to_string(kind)) {
      *out = kind;
      return true;
    }
  }
  return false;
}

}  // namespace rubick
