// Seeded fault injection (ISSUE 6).
//
// A `FaultPlan` is a deterministic, per-seed schedule of cluster faults:
// node crashes with later recoveries, transient GPU failures that evict the
// jobs touching a node without taking it down, straggler episodes that scale
// a node's effective throughput, and reconfiguration failures (an attempted
// shrink / expand / plan switch aborts after paying its latency). The plan
// is generated once, up front, from `common/rng` — same seed, same cluster,
// same options ⇒ bit-identical schedule on every platform and thread count.
//
// The plan itself is pure data: the `Simulator` consumes it through
// `RunContext::fault_plan` and delivers each event into the event loop; the
// plan never mutates during a run, so one instance can be shared by
// concurrent runs (the sweep runner does).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/cluster.h"

namespace rubick {

enum class FaultKind {
  kNodeCrash,      // node goes down; running jobs there are evicted
  kNodeRecover,    // node returns to service
  kGpuTransient,   // ECC-style blip: jobs on the node restart, node stays up
  kStragglerBegin, // node throughput scaled by `severity` until the end event
  kStragglerEnd,
};

const char* to_string(FaultKind kind);

struct FaultEvent {
  double time_s = 0.0;
  FaultKind kind = FaultKind::kNodeCrash;
  int node = 0;
  // kNodeCrash: outage length (the matching kNodeRecover is emitted
  // separately at time_s + duration_s). kStragglerBegin: episode length.
  double duration_s = 0.0;
  // kStragglerBegin only: multiplier applied to the node's throughput,
  // in (0, 1].
  double severity = 1.0;
};

// Generation knobs. Mean-time-between-failure knobs are per *node* — an
// 8-node cluster with node_mtbf_hours=24 sees on average 8 crashes per
// simulated day. All processes are independent Poisson arrivals.
struct FaultPlanOptions {
  double horizon_s = 24.0 * 3600.0;        // generate events in [0, horizon)
  double node_mtbf_hours = 16.0;           // 0 disables node crashes
  double node_outage_mean_s = 600.0;       // mean crash-to-recover gap
  double gpu_transient_mtbf_hours = 12.0;  // 0 disables transient faults
  double straggler_mtbf_hours = 8.0;       // 0 disables straggler episodes
  double straggler_mean_duration_s = 900.0;
  double straggler_severity = 0.5;         // throughput multiplier, (0, 1]
  // Probability that any single warm reconfiguration attempt fails after
  // paying its latency. Applied i.i.d. per (job, attempt) via a hash of the
  // plan seed, so it is independent of scheduling order.
  double reconfig_failure_prob = 0.0;

  // Throws InvariantError with an actionable message on nonsense values.
  void validate() const;
};

class FaultPlan {
 public:
  FaultPlan() = default;

  // Builds the deterministic schedule for `cluster` from `seed`.
  static FaultPlan generate(std::uint64_t seed, const FaultPlanOptions& options,
                            const ClusterSpec& cluster);

  // Test / replay constructor: adopt an explicit event list (sorted by
  // time_s; validated by RunContext::validate()).
  static FaultPlan from_events(std::uint64_t seed,
                               std::vector<FaultEvent> events,
                               double reconfig_failure_prob = 0.0);

  const std::vector<FaultEvent>& events() const { return events_; }
  bool empty() const {
    return events_.empty() && reconfig_failure_prob_ <= 0.0;
  }
  std::uint64_t seed() const { return seed_; }
  double reconfig_failure_prob() const { return reconfig_failure_prob_; }

  // Deterministic per-(job, attempt) coin flip for reconfiguration failure.
  // Independent of the order the scheduler visits jobs in, so parallel and
  // serial scheduling rounds observe the same outcomes.
  bool reconfig_attempt_fails(int job_id, int attempt) const;

  // Order-sensitive FNV-1a digest of the whole schedule; two plans with the
  // same digest inject the same faults. Used by determinism tests.
  std::uint64_t digest() const;

 private:
  std::uint64_t seed_ = 0;
  double reconfig_failure_prob_ = 0.0;
  std::vector<FaultEvent> events_;  // sorted by time_s
};

}  // namespace rubick
