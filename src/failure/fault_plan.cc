#include "failure/fault_plan.h"

#include <algorithm>
#include <cstring>
#include <string>

#include "common/error.h"
#include "common/rng.h"

namespace rubick {

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNodeCrash:
      return "node-crash";
    case FaultKind::kNodeRecover:
      return "node-recover";
    case FaultKind::kGpuTransient:
      return "gpu-transient";
    case FaultKind::kStragglerBegin:
      return "straggler-begin";
    case FaultKind::kStragglerEnd:
      return "straggler-end";
  }
  return "?";
}

void FaultPlanOptions::validate() const {
  RUBICK_CHECK_MSG(horizon_s > 0.0,
                   "FaultPlanOptions.horizon_s must be > 0 (got "
                       << horizon_s << "); faults need a window to land in");
  RUBICK_CHECK_MSG(node_mtbf_hours >= 0.0 && gpu_transient_mtbf_hours >= 0.0 &&
                       straggler_mtbf_hours >= 0.0,
                   "MTBF knobs are hours between failures; negative values "
                   "are meaningless (use 0 to disable a fault class)");
  RUBICK_CHECK_MSG(node_outage_mean_s > 0.0,
                   "FaultPlanOptions.node_outage_mean_s must be > 0 (got "
                       << node_outage_mean_s
                       << "); a crash needs a positive outage length");
  RUBICK_CHECK_MSG(straggler_mean_duration_s > 0.0,
                   "FaultPlanOptions.straggler_mean_duration_s must be > 0 "
                   "(got " << straggler_mean_duration_s << ")");
  RUBICK_CHECK_MSG(
      straggler_severity > 0.0 && straggler_severity <= 1.0,
      "FaultPlanOptions.straggler_severity is a throughput multiplier and "
      "must lie in (0, 1]; got "
          << straggler_severity
          << " (0 would stall jobs forever, > 1 is a speedup, not a fault)");
  RUBICK_CHECK_MSG(
      reconfig_failure_prob >= 0.0 && reconfig_failure_prob <= 1.0,
      "FaultPlanOptions.reconfig_failure_prob is a probability in [0, 1]; "
      "got " << reconfig_failure_prob);
}

namespace {

// Deterministic tie-break so equal-time events sort identically everywhere.
bool event_less(const FaultEvent& a, const FaultEvent& b) {
  if (a.time_s != b.time_s) return a.time_s < b.time_s;
  if (a.node != b.node) return a.node < b.node;
  return static_cast<int>(a.kind) < static_cast<int>(b.kind);
}

double rate_per_s(double mtbf_hours) { return 1.0 / (mtbf_hours * 3600.0); }

}  // namespace

FaultPlan FaultPlan::generate(std::uint64_t seed,
                              const FaultPlanOptions& options,
                              const ClusterSpec& cluster) {
  options.validate();
  FaultPlan plan;
  plan.seed_ = seed;
  plan.reconfig_failure_prob_ = options.reconfig_failure_prob;

  Rng root(seed);
  for (int n = 0; n < cluster.num_nodes; ++n) {
    const std::string tag = "node-" + std::to_string(n);
    Rng node_rng = root.fork(tag);

    if (options.node_mtbf_hours > 0.0) {
      Rng rng = node_rng.fork("crash");
      const double rate = rate_per_s(options.node_mtbf_hours);
      double t = rng.exponential(rate);
      while (t < options.horizon_s) {
        const double outage_s =
            rng.exponential(1.0 / options.node_outage_mean_s);
        plan.events_.push_back(
            {t, FaultKind::kNodeCrash, n, outage_s, 1.0});
        // Recovery is emitted even past the horizon: a crashed node must
        // always come back, or a short trace strands its jobs forever.
        plan.events_.push_back(
            {t + outage_s, FaultKind::kNodeRecover, n, 0.0, 1.0});
        // The next crash clock starts ticking only after recovery.
        t += outage_s + rng.exponential(rate);
      }
    }

    if (options.gpu_transient_mtbf_hours > 0.0) {
      Rng rng = node_rng.fork("gpu");
      const double rate = rate_per_s(options.gpu_transient_mtbf_hours);
      double t = rng.exponential(rate);
      while (t < options.horizon_s) {
        plan.events_.push_back({t, FaultKind::kGpuTransient, n, 0.0, 1.0});
        t += rng.exponential(rate);
      }
    }

    if (options.straggler_mtbf_hours > 0.0) {
      Rng rng = node_rng.fork("straggler");
      const double rate = rate_per_s(options.straggler_mtbf_hours);
      double t = rng.exponential(rate);
      while (t < options.horizon_s) {
        const double episode_s =
            rng.exponential(1.0 / options.straggler_mean_duration_s);
        plan.events_.push_back({t, FaultKind::kStragglerBegin, n, episode_s,
                                options.straggler_severity});
        plan.events_.push_back(
            {t + episode_s, FaultKind::kStragglerEnd, n, 0.0, 1.0});
        t += episode_s + rng.exponential(rate);
      }
    }
  }

  std::sort(plan.events_.begin(), plan.events_.end(), event_less);
  return plan;
}

FaultPlan FaultPlan::from_events(std::uint64_t seed,
                                 std::vector<FaultEvent> events,
                                 double reconfig_failure_prob) {
  FaultPlan plan;
  plan.seed_ = seed;
  plan.reconfig_failure_prob_ = reconfig_failure_prob;
  plan.events_ = std::move(events);
  std::sort(plan.events_.begin(), plan.events_.end(), event_less);
  return plan;
}

bool FaultPlan::reconfig_attempt_fails(int job_id, int attempt) const {
  if (reconfig_failure_prob_ <= 0.0) return false;
  if (reconfig_failure_prob_ >= 1.0) return true;
  // splitmix64 over (seed, job, attempt): one draw per attempt, independent
  // of scheduling order and thread count.
  std::uint64_t state = seed_ ^
                        (0x9E3779B97F4A7C15ull * static_cast<std::uint64_t>(
                                                     job_id + 1)) ^
                        (0xBF58476D1CE4E5B9ull *
                         static_cast<std::uint64_t>(attempt + 1));
  const std::uint64_t draw = splitmix64(state);
  const double u = static_cast<double>(draw >> 11) * 0x1.0p-53;
  return u < reconfig_failure_prob_;
}

std::uint64_t FaultPlan::digest() const {
  std::uint64_t h = 0xcbf29ce484222325ull ^ seed_;
  auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xffu;
      h *= 0x100000001b3ull;
    }
  };
  auto mix_double = [&](double d) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &d, sizeof(bits));
    mix(bits);
  };
  mix_double(reconfig_failure_prob_);
  for (const FaultEvent& e : events_) {
    mix_double(e.time_s);
    mix(static_cast<std::uint64_t>(e.kind));
    mix(static_cast<std::uint64_t>(e.node));
    mix_double(e.duration_s);
    mix_double(e.severity);
  }
  return h;
}

}  // namespace rubick
