#include "common/cli.h"

#include <algorithm>
#include <cstdlib>

#include "common/error.h"
#include "common/log.h"

namespace rubick {

namespace {

// Canonical flag spelling is kebab-case; a snake_case spelling is accepted
// with a deprecation warning so existing scripts keep working one release.
std::string normalize_flag_name(const std::string& name) {
  if (name.find('_') == std::string::npos) return name;
  std::string kebab = name;
  std::replace(kebab.begin(), kebab.end(), '_', '-');
  RUBICK_WARN("flag --" << name << " is deprecated; use --" << kebab);
  return kebab;
}

}  // namespace

CliFlags::CliFlags(int argc, char** argv) {
  RUBICK_CHECK(argc >= 1);
  program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    RUBICK_CHECK_MSG(arg.rfind("--", 0) == 0,
                     "expected --flag, got '" << arg << "'");
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[normalize_flag_name(arg.substr(0, eq))] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      const std::string key = normalize_flag_name(arg);
      values_[key] = argv[++i];
    } else if (arg.rfind("no-", 0) == 0 || arg.rfind("no_", 0) == 0) {
      values_[normalize_flag_name(arg.substr(3))] = "false";
    } else {
      values_[normalize_flag_name(arg)] = "true";
    }
  }
}

std::string CliFlags::get_string(const std::string& name,
                                 const std::string& def) {
  known_.push_back(name);
  const auto it = values_.find(name);
  return it == values_.end() ? def : it->second;
}

int CliFlags::get_int(const std::string& name, int def) {
  const std::string v = get_string(name, "");
  if (v.empty()) return def;
  return std::atoi(v.c_str());
}

double CliFlags::get_double(const std::string& name, double def) {
  const std::string v = get_string(name, "");
  if (v.empty()) return def;
  return std::atof(v.c_str());
}

std::uint64_t CliFlags::get_u64(const std::string& name, std::uint64_t def) {
  const std::string v = get_string(name, "");
  if (v.empty()) return def;
  return std::strtoull(v.c_str(), nullptr, 10);
}

bool CliFlags::get_bool(const std::string& name, bool def) {
  const std::string v = get_string(name, "");
  if (v.empty()) return def;
  return v == "true" || v == "1" || v == "yes" || v == "on";
}

void CliFlags::finish() const {
  for (const auto& [key, value] : values_) {
    (void)value;
    if (std::find(known_.begin(), known_.end(), key) == known_.end()) {
      std::string flags;
      for (const auto& k : known_) flags += " --" + k;
      RUBICK_CHECK_MSG(false, "unknown flag --" << key << "; known flags:"
                                                << flags);
    }
  }
}

}  // namespace rubick
