// Derivative-free minimization used to fit the performance model.
//
// The paper fits 7 positive parameters by minimizing RMSLE over sampled
// throughput measurements (§4.3). We provide a bounded Nelder–Mead simplex
// with random restarts: the objective is smooth but non-convex in the overlap
// exponents, and restarts make the fit robust to the tiny sample sizes the
// paper uses (as few as 7 points).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>


namespace rubick {

struct OptimOptions {
  int max_iterations = 4000;     // per restart
  double tolerance = 1e-10;      // simplex spread termination
  int restarts = 8;              // random restarts within bounds
  std::uint64_t seed = 42;
};

struct OptimResult {
  std::vector<double> x;
  double value = 0.0;
  int iterations = 0;  // total across restarts
};

// Minimizes `f` over the box [lower[i], upper[i]]. The initial guess is
// clamped into the box and used for the first restart; subsequent restarts
// draw random interior points. Box constraints are enforced by clamping
// candidate vertices (adequate for our well-separated optima).
OptimResult nelder_mead(
    const std::function<double(const std::vector<double>&)>& f,
    std::vector<double> initial, const std::vector<double>& lower,
    const std::vector<double>& upper, const OptimOptions& opts = {});

}  // namespace rubick
