#include "common/intern.h"

#include <mutex>
#include <unordered_map>

namespace rubick {

std::uint32_t intern_key_string(const std::string& s) {
  static std::mutex mu;
  static std::unordered_map<std::string, std::uint32_t> table;
  std::lock_guard<std::mutex> lock(mu);
  auto it = table.find(s);
  if (it != table.end()) return it->second;
  const auto id = static_cast<std::uint32_t>(table.size() + 1);
  table.emplace(s, id);
  return id;
}

std::uint32_t intern_key_string_cached(const std::string& s) {
  thread_local std::unordered_map<std::string, std::uint32_t> memo;
  auto it = memo.find(s);
  if (it != memo.end()) return it->second;
  const std::uint32_t id = intern_key_string(s);
  memo.emplace(s, id);
  return id;
}

}  // namespace rubick
