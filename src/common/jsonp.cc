#include "common/jsonp.h"

#include <cctype>
#include <cstdlib>
#include <string>

namespace rubick {
namespace {

// Cursor over the input; all parse_* helpers advance `pos` past what they
// consumed and return false after recording the first error.
struct Parser {
  const std::string& text;
  std::size_t pos = 0;
  std::string error;

  bool fail(const std::string& message) {
    if (error.empty()) {
      error = message + " at byte " + std::to_string(pos);
    }
    return false;
  }

  void skip_ws() {
    while (pos < text.size() &&
           (text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\n' ||
            text[pos] == '\r')) {
      ++pos;
    }
  }

  bool consume(char c) {
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    return fail(std::string("expected '") + c + "'");
  }

  bool literal(const char* word, std::size_t len) {
    if (text.compare(pos, len, word) != 0) return fail("bad literal");
    pos += len;
    return true;
  }

  bool parse_string(std::string* out) {
    if (!consume('"')) return false;
    out->clear();
    while (pos < text.size()) {
      const char c = text[pos];
      if (c == '"') {
        ++pos;
        return true;
      }
      if (c == '\\') {
        ++pos;
        if (pos >= text.size()) return fail("truncated escape");
        const char esc = text[pos++];
        switch (esc) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case '/': out->push_back('/'); break;
          case 'b': out->push_back('\b'); break;
          case 'f': out->push_back('\f'); break;
          case 'n': out->push_back('\n'); break;
          case 'r': out->push_back('\r'); break;
          case 't': out->push_back('\t'); break;
          case 'u': {
            if (pos + 4 > text.size()) return fail("truncated \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text[pos++];
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code |= static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code |= static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code |= static_cast<unsigned>(h - 'A' + 10);
              } else {
                return fail("bad hex digit in \\u escape");
              }
            }
            // UTF-8 encode the BMP code point (surrogate pairs are not
            // needed for this repo's artifacts; pass them through raw).
            if (code < 0x80) {
              out->push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              out->push_back(static_cast<char>(0xC0 | (code >> 6)));
              out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
            } else {
              out->push_back(static_cast<char>(0xE0 | (code >> 12)));
              out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
              out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
            }
            break;
          }
          default: return fail("unknown escape");
        }
        continue;
      }
      out->push_back(c);
      ++pos;
    }
    return fail("unterminated string");
  }

  bool parse_number(double* out) {
    const std::size_t start = pos;
    if (pos < text.size() && text[pos] == '-') ++pos;
    while (pos < text.size() &&
           (std::isdigit(static_cast<unsigned char>(text[pos])) != 0 ||
            text[pos] == '.' || text[pos] == 'e' || text[pos] == 'E' ||
            text[pos] == '+' || text[pos] == '-')) {
      ++pos;
    }
    if (pos == start) return fail("expected number");
    const std::string token = text.substr(start, pos - start);
    char* end = nullptr;
    *out = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') {
      pos = start;
      return fail("malformed number");
    }
    return true;
  }

  bool parse_value(JsonValue* out) {
    skip_ws();
    if (pos >= text.size()) return fail("unexpected end of input");
    const char c = text[pos];
    switch (c) {
      case '{': {
        out->kind = JsonValue::Kind::kObject;
        ++pos;
        skip_ws();
        if (pos < text.size() && text[pos] == '}') {
          ++pos;
          return true;
        }
        while (true) {
          skip_ws();
          std::string key;
          if (!parse_string(&key)) return false;
          skip_ws();
          if (!consume(':')) return false;
          JsonValue member;
          if (!parse_value(&member)) return false;
          out->object.emplace(std::move(key), std::move(member));
          skip_ws();
          if (pos < text.size() && text[pos] == ',') {
            ++pos;
            continue;
          }
          return consume('}');
        }
      }
      case '[': {
        out->kind = JsonValue::Kind::kArray;
        ++pos;
        skip_ws();
        if (pos < text.size() && text[pos] == ']') {
          ++pos;
          return true;
        }
        while (true) {
          JsonValue element;
          if (!parse_value(&element)) return false;
          out->array.push_back(std::move(element));
          skip_ws();
          if (pos < text.size() && text[pos] == ',') {
            ++pos;
            continue;
          }
          return consume(']');
        }
      }
      case '"':
        out->kind = JsonValue::Kind::kString;
        return parse_string(&out->string_value);
      case 't':
        out->kind = JsonValue::Kind::kBool;
        out->bool_value = true;
        return literal("true", 4);
      case 'f':
        out->kind = JsonValue::Kind::kBool;
        out->bool_value = false;
        return literal("false", 5);
      case 'n':
        out->kind = JsonValue::Kind::kNull;
        return literal("null", 4);
      default:
        out->kind = JsonValue::Kind::kNumber;
        return parse_number(&out->number_value);
    }
  }
};

}  // namespace

bool parse_json(const std::string& text, JsonValue* out, std::string* error) {
  Parser parser{text};
  *out = JsonValue{};
  const bool ok = parser.parse_value(out);
  if (ok) {
    parser.skip_ws();
    if (parser.pos != text.size()) {
      parser.fail("trailing garbage after document");
      if (error != nullptr) *error = parser.error;
      return false;
    }
    return true;
  }
  if (error != nullptr) *error = parser.error;
  return false;
}

}  // namespace rubick
