// Minimal JSON parsing for tools that read back the repo's own artifacts
// (the decision-provenance log, primarily). Counterpart of jsonx.h, which
// only writes. This is a strict, allocation-happy recursive-descent parser
// for trusted inputs — it favors clear error messages over speed, and it is
// NOT a general-purpose validator (no depth limits beyond recursion, no
// streaming). Numbers are doubles; 64-bit identifiers that must not lose
// precision are therefore serialized as strings by the writers (see
// provenance/decision_log.h, which renders digests as "0x..." hex).
#pragma once

#include <map>
#include <string>
#include <vector>

namespace rubick {

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool bool_value = false;
  double number_value = 0.0;
  std::string string_value;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  bool is_null() const { return kind == Kind::kNull; }
  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }

  // Object member lookup; null when absent or not an object.
  const JsonValue* get(const std::string& key) const {
    if (kind != Kind::kObject) return nullptr;
    const auto it = object.find(key);
    return it == object.end() ? nullptr : &it->second;
  }

  // Typed accessors with defaults (wrong-typed values yield the default, so
  // readers degrade gracefully on schema drift).
  double as_double(double def = 0.0) const {
    return kind == Kind::kNumber ? number_value : def;
  }
  int as_int(int def = 0) const {
    return kind == Kind::kNumber ? static_cast<int>(number_value) : def;
  }
  bool as_bool(bool def = false) const {
    return kind == Kind::kBool ? bool_value : def;
  }
  const std::string& as_string(const std::string& def = {}) const {
    return kind == Kind::kString ? string_value : def;
  }
};

// Parses exactly one JSON document from `text` (trailing whitespace
// allowed). Returns false and fills `*error` with a byte-offset message on
// malformed input; `*out` is unspecified then.
bool parse_json(const std::string& text, JsonValue* out, std::string* error);

}  // namespace rubick
