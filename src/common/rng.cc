#include "common/rng.h"

#include <cmath>
#include <numbers>

#include "common/error.h"

namespace rubick {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

std::uint64_t hash_seed(std::string_view s, std::uint64_t salt) {
  std::uint64_t h = 0xCBF29CE484222325ull ^ salt;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001B3ull;
  }
  return splitmix64(h);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

Rng Rng::fork(std::string_view tag) {
  return Rng(next_u64() ^ hash_seed(tag));
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 random mantissa bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  RUBICK_CHECK(lo <= hi);
  return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  RUBICK_CHECK(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(next_u64() % span);
}

double Rng::normal(double mean, double stddev) {
  // Box–Muller; discards the second variate for simplicity.
  double u1 = uniform();
  double u2 = uniform();
  if (u1 < 1e-300) u1 = 1e-300;
  const double mag = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * mag * std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::lognormal(double mu, double sigma) {
  return std::exp(normal(mu, sigma));
}

double Rng::exponential(double rate) {
  RUBICK_CHECK(rate > 0.0);
  double u = uniform();
  if (u < 1e-300) u = 1e-300;
  return -std::log(u) / rate;
}

bool Rng::bernoulli(double p) { return uniform() < p; }

std::size_t Rng::weighted_index(const double* weights, std::size_t n) {
  RUBICK_CHECK(n > 0);
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    RUBICK_CHECK(weights[i] >= 0.0);
    total += weights[i];
  }
  RUBICK_CHECK(total > 0.0);
  double x = uniform(0.0, total);
  for (std::size_t i = 0; i < n; ++i) {
    x -= weights[i];
    if (x <= 0.0) return i;
  }
  return n - 1;
}

}  // namespace rubick
