// Minimal leveled logger.
//
// The simulator and scheduler emit structured progress lines; benchmarks run
// with logging at kWarn to keep their stdout machine-readable.
#pragma once

#include <sstream>
#include <string>

namespace rubick {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

void set_log_level(LogLevel level);
LogLevel log_level();

namespace detail {
void log_line(LogLevel level, const std::string& msg);
}  // namespace detail

}  // namespace rubick

#define RUBICK_LOG(level, msg)                                  \
  do {                                                          \
    if (static_cast<int>(level) >=                              \
        static_cast<int>(::rubick::log_level())) {              \
      std::ostringstream os_;                                   \
      os_ << msg;                                               \
      ::rubick::detail::log_line(level, os_.str());             \
    }                                                           \
  } while (0)

#define RUBICK_DEBUG(msg) RUBICK_LOG(::rubick::LogLevel::kDebug, msg)
#define RUBICK_INFO(msg) RUBICK_LOG(::rubick::LogLevel::kInfo, msg)
#define RUBICK_WARN(msg) RUBICK_LOG(::rubick::LogLevel::kWarn, msg)
#define RUBICK_ERROR(msg) RUBICK_LOG(::rubick::LogLevel::kError, msg)
