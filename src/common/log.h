// Minimal leveled logger.
//
// The simulator and scheduler emit structured progress lines; benchmarks run
// with logging at kWarn to keep their stdout machine-readable.
//
// Two output formats share one sink (stderr):
//   kText (default)  [INFO] message
//   kJson            {"level":"info","sim_t_s":123.4,"msg":"message"}
// The JSON form is one object per line so CI and tools can grep structured
// logs. `sim_t_s` carries monotonic simulated time when a simulation has
// published it via set_log_sim_time_s(); the stamp is thread-local, so
// parallel seed sweeps each annotate their own lines with their own clock
// (a thread that never published one omits the annotation entirely).
#pragma once

#include <sstream>
#include <string>

namespace rubick {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };
enum class LogFormat { kText = 0, kJson = 1 };

void set_log_level(LogLevel level);
LogLevel log_level();

void set_log_format(LogFormat format);
LogFormat log_format();

// Publishes the calling thread's current simulated time for log annotation
// (kJson adds it as `sim_t_s`). Negative or NaN clears the annotation.
// Thread-local: lines logged from other threads are unaffected.
void set_log_sim_time_s(double now_s);

namespace detail {
void log_line(LogLevel level, const std::string& msg);
// Renders one log line in the active format, without the trailing newline.
// Split out from the sink so tests can pin the format exactly.
std::string format_log_line(LogLevel level, const std::string& msg);
}  // namespace detail

}  // namespace rubick

#define RUBICK_LOG(level, msg)                                  \
  do {                                                          \
    if (static_cast<int>(level) >=                              \
        static_cast<int>(::rubick::log_level())) {              \
      std::ostringstream os_;                                   \
      os_ << msg;                                               \
      ::rubick::detail::log_line(level, os_.str());             \
    }                                                           \
  } while (0)

#define RUBICK_DEBUG(msg) RUBICK_LOG(::rubick::LogLevel::kDebug, msg)
#define RUBICK_INFO(msg) RUBICK_LOG(::rubick::LogLevel::kInfo, msg)
#define RUBICK_WARN(msg) RUBICK_LOG(::rubick::LogLevel::kWarn, msg)
#define RUBICK_ERROR(msg) RUBICK_LOG(::rubick::LogLevel::kError, msg)
