// Monotonic wall-clock access for telemetry.
//
// The determinism contract (tools/staticcheck, determinism rule) bans
// wall-clock reads in library code: simulated time is the only time that
// may steer behaviour. Observability is the one sanctioned exception —
// measuring how long a scheduling round takes, or stamping a tracing span —
// and this header is its single entry point. Nothing read from this clock
// may feed back into a scheduling or simulation decision.
#pragma once

#include <cstdint>

namespace rubick {

// Nanoseconds on a monotonic clock with an arbitrary epoch. Comparable and
// subtractable within one process run; never persist absolute values.
std::uint64_t monotonic_ns();

}  // namespace rubick
