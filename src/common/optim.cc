#include "common/optim.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/rng.h"

namespace rubick {

namespace {

using Vec = std::vector<double>;

void clamp_into(Vec& x, const Vec& lo, const Vec& hi) {
  for (std::size_t i = 0; i < x.size(); ++i)
    x[i] = std::clamp(x[i], lo[i], hi[i]);
}

struct Vertex {
  Vec x;
  double fx;
};

// One Nelder–Mead run from a given start; returns the best vertex found.
Vertex run_once(const std::function<double(const Vec&)>& f, Vec start,
                const Vec& lo, const Vec& hi, int max_iters, double tol,
                int& iters_used) {
  const std::size_t n = start.size();
  std::vector<Vertex> simplex;
  simplex.reserve(n + 1);
  clamp_into(start, lo, hi);
  simplex.push_back({start, f(start)});
  for (std::size_t i = 0; i < n; ++i) {
    Vec v = start;
    const double span = hi[i] - lo[i];
    double step = 0.1 * span;
    if (v[i] + step > hi[i]) step = -step;
    v[i] += step;
    clamp_into(v, lo, hi);
    simplex.push_back({v, f(v)});
  }

  auto by_value = [](const Vertex& a, const Vertex& b) { return a.fx < b.fx; };

  int iter = 0;
  for (; iter < max_iters; ++iter) {
    std::sort(simplex.begin(), simplex.end(), by_value);
    if (simplex.back().fx - simplex.front().fx < tol) break;

    // Centroid of all but the worst vertex.
    Vec centroid(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t v = 0; v < n; ++v) centroid[i] += simplex[v].x[i];
      centroid[i] /= static_cast<double>(n);
    }
    const Vertex& worst = simplex.back();

    auto affine = [&](double t) {
      Vec y(n);
      for (std::size_t i = 0; i < n; ++i)
        y[i] = centroid[i] + t * (centroid[i] - worst.x[i]);
      clamp_into(y, lo, hi);
      return y;
    };

    Vec xr = affine(1.0);  // reflection
    const double fr = f(xr);
    if (fr < simplex.front().fx) {
      Vec xe = affine(2.0);  // expansion
      const double fe = f(xe);
      simplex.back() = fe < fr ? Vertex{xe, fe} : Vertex{xr, fr};
      continue;
    }
    if (fr < simplex[n - 1].fx) {
      simplex.back() = {xr, fr};
      continue;
    }
    Vec xc = affine(0.5);  // outside/inside contraction toward centroid
    const double fc = f(xc);
    if (fc < worst.fx) {
      simplex.back() = {xc, fc};
      continue;
    }
    // Shrink toward the best vertex.
    for (std::size_t v = 1; v < simplex.size(); ++v) {
      for (std::size_t i = 0; i < n; ++i)
        simplex[v].x[i] =
            simplex[0].x[i] + 0.5 * (simplex[v].x[i] - simplex[0].x[i]);
      clamp_into(simplex[v].x, lo, hi);
      simplex[v].fx = f(simplex[v].x);
    }
  }
  iters_used += iter;
  std::sort(simplex.begin(), simplex.end(), by_value);
  return simplex.front();
}

}  // namespace

OptimResult nelder_mead(const std::function<double(const Vec&)>& f,
                        Vec initial, const Vec& lower, const Vec& upper,
                        const OptimOptions& opts) {
  const std::size_t n = initial.size();
  RUBICK_CHECK(n > 0);
  RUBICK_CHECK(lower.size() == n && upper.size() == n);
  for (std::size_t i = 0; i < n; ++i) RUBICK_CHECK(lower[i] < upper[i]);

  Rng rng(opts.seed);
  OptimResult best;
  best.value = std::numeric_limits<double>::infinity();

  for (int r = 0; r < std::max(1, opts.restarts); ++r) {
    Vec start(n);
    if (r == 0) {
      start = initial;
    } else {
      for (std::size_t i = 0; i < n; ++i)
        start[i] = rng.uniform(lower[i], upper[i]);
    }
    const Vertex v = run_once(f, std::move(start), lower, upper,
                              opts.max_iterations, opts.tolerance,
                              best.iterations);
    if (v.fx < best.value) {
      best.value = v.fx;
      best.x = v.x;
    }
  }
  return best;
}

}  // namespace rubick
