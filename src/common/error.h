// Lightweight invariant-checking macros used across the library.
//
// RUBICK_CHECK is always on (also in release builds): the scheduler is a
// long-running control-plane component, so violated invariants must fail fast
// with a diagnosable message instead of silently corrupting allocations.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace rubick {

// Thrown whenever a library invariant or precondition is violated.
class InvariantError : public std::logic_error {
 public:
  explicit InvariantError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "RUBICK_CHECK failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw InvariantError(os.str());
}
}  // namespace detail

}  // namespace rubick

#define RUBICK_CHECK(expr)                                              \
  do {                                                                  \
    if (!(expr))                                                        \
      ::rubick::detail::check_failed(#expr, __FILE__, __LINE__, "");    \
  } while (0)

#define RUBICK_CHECK_MSG(expr, msg)                                     \
  do {                                                                  \
    if (!(expr)) {                                                      \
      std::ostringstream os_;                                           \
      os_ << msg;                                                       \
      ::rubick::detail::check_failed(#expr, __FILE__, __LINE__,         \
                                     os_.str());                        \
    }                                                                   \
  } while (0)
