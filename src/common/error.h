// Lightweight invariant-checking macros used across the library.
//
// RUBICK_CHECK is always on (also in release builds): the scheduler is a
// long-running control-plane component, so violated invariants must fail fast
// with a diagnosable message instead of silently corrupting allocations.
// Use it at API boundaries and for anything a caller could get wrong.
//
// RUBICK_DCHECK compiles out under NDEBUG. Use it for internal-consistency
// assertions inside per-tick / per-candidate inner loops, where the check
// guards against our own bugs rather than bad input and the cost would be
// paid millions of times per simulated day. The condition must be free of
// side effects — it is not evaluated in release builds.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace rubick {

// Thrown whenever a library invariant or precondition is violated.
class InvariantError : public std::logic_error {
 public:
  explicit InvariantError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "RUBICK_CHECK failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw InvariantError(os.str());
}
}  // namespace detail

}  // namespace rubick

#define RUBICK_CHECK(expr)                                              \
  do {                                                                  \
    if (!(expr))                                                        \
      ::rubick::detail::check_failed(#expr, __FILE__, __LINE__, "");    \
  } while (0)

#define RUBICK_CHECK_MSG(expr, msg)                                     \
  do {                                                                  \
    if (!(expr)) {                                                      \
      std::ostringstream os_;                                           \
      os_ << msg;                                                       \
      ::rubick::detail::check_failed(#expr, __FILE__, __LINE__,         \
                                     os_.str());                        \
    }                                                                   \
  } while (0)

#ifdef NDEBUG
#define RUBICK_DCHECK(expr) \
  do {                      \
  } while (0)
#define RUBICK_DCHECK_MSG(expr, msg) \
  do {                               \
  } while (0)
#else
#define RUBICK_DCHECK(expr) RUBICK_CHECK(expr)
#define RUBICK_DCHECK_MSG(expr, msg) RUBICK_CHECK_MSG(expr, msg)
#endif
