// Fixed-size worker pool shared by the curve engine and the sweep runner.
//
// Rubick's §5.2 observes that sensitivity curves "can be computed in
// parallel or even prior to the scheduling, and then cached"; this pool is
// the substrate for that. Design points:
//
//   * A pool of size <= 1 owns no worker threads: submit() and
//     parallel_for() execute inline, in order, on the calling thread — so
//     RUBICK_THREADS=1 reproduces single-threaded behavior exactly.
//   * parallel_for() is cooperative: the calling thread claims indices from
//     the same atomic counter as the pool workers, so nested parallel_for()
//     calls (a parallel sweep whose simulator runs a parallel warm()) can
//     never deadlock — worst case the caller does all the work itself.
//   * Exceptions thrown by tasks are captured; parallel_for() finishes every
//     index it can and rethrows the exception of the LOWEST failing index
//     (deterministic regardless of interleaving). submit() delivers
//     exceptions through the returned future as usual.
//
// The process-wide pool (ThreadPool::global()) is sized from the
// RUBICK_THREADS environment variable, defaulting to hardware concurrency.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace rubick {

// Lifetime occupancy tallies for a pool (telemetry; see stats()). All
// counters are cumulative since construction.
struct ThreadPoolStats {
  std::uint64_t tasks_executed = 0;     // submit() tasks + helper drains
  std::uint64_t parallel_for_calls = 0;
  std::uint64_t indices_processed = 0;  // parallel_for indices, all threads
  std::uint64_t peak_queue_depth = 0;
  double busy_s = 0.0;  // worker-thread time spent inside tasks
};

class ThreadPool {
 public:
  // `threads` <= 1 means inline execution (no worker threads).
  explicit ThreadPool(int threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return size_; }

  // Schedules `fn` and returns a future for its result. Inline pools run it
  // before returning.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> fut = task->get_future();
    if (size_ <= 1) {
      tasks_executed_.fetch_add(1, std::memory_order_relaxed);
      (*task)();
      return fut;
    }
    enqueue([task] { (*task)(); });
    return fut;
  }

  // Runs body(i) for every i in [begin, end); blocks until all complete.
  // The caller participates, so this is safe to nest.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& body);

  // Process-wide pool, sized by default_size().
  static ThreadPool& global();

  // RUBICK_THREADS when set to a positive integer, else hardware
  // concurrency; always >= 1.
  static int default_size();

  // Cumulative occupancy snapshot. Always maintained (the tallies are
  // relaxed atomic increments on chunky operations, far below noise).
  ThreadPoolStats stats() const;

 private:
  void enqueue(std::function<void()> task);
  void worker_loop();

  int size_ = 1;
  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;  // guarded by mu_
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;  // guarded by mu_

  std::atomic<std::uint64_t> tasks_executed_{0};
  std::atomic<std::uint64_t> parallel_for_calls_{0};
  std::atomic<std::uint64_t> indices_processed_{0};
  std::atomic<std::uint64_t> peak_queue_depth_{0};
  std::atomic<std::uint64_t> busy_ns_{0};
};

}  // namespace rubick
