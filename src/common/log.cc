#include "common/log.h"

#include <atomic>
#include <cmath>
#include <cstdio>

#include "common/jsonx.h"

namespace rubick {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};
std::atomic<int> g_format{static_cast<int>(LogFormat::kText)};
// NaN means "no simulation has published a clock yet" — the annotation is
// omitted rather than printed as 0. Thread-local so parallel seed sweeps
// (each run on its own thread) stamp their own log lines with their own
// clock instead of racing last-writer-wins on one global; a thread that
// never ran a simulation keeps the annotation off.
thread_local double g_sim_time_s = std::nan("");

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

const char* level_name_lower(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kError:
      return "error";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void set_log_format(LogFormat format) {
  g_format.store(static_cast<int>(format), std::memory_order_relaxed);
}

LogFormat log_format() {
  return static_cast<LogFormat>(g_format.load(std::memory_order_relaxed));
}

void set_log_sim_time_s(double now_s) {
  g_sim_time_s = now_s >= 0.0 ? now_s : std::nan("");
}

namespace detail {

std::string format_log_line(LogLevel level, const std::string& msg) {
  if (log_format() == LogFormat::kText)
    return "[" + std::string(level_name(level)) + "] " + msg;
  std::string out = "{\"level\":\"";
  out += level_name_lower(level);
  out += "\"";
  const double sim_t_s = g_sim_time_s;
  if (std::isfinite(sim_t_s)) {
    out += ",\"sim_t_s\":";
    out += json_number(sim_t_s);
  }
  out += ",\"msg\":";
  out += json_str(msg);
  out += "}";
  return out;
}

void log_line(LogLevel level, const std::string& msg) {
  const std::string line = format_log_line(level, msg);
  // staticcheck:allow(logging) -- this IS the log sink: the one place in
  // src/ allowed to touch stderr; embedders swap it via set_log_handler.
  std::fprintf(stderr, "%s\n", line.c_str());
}

}  // namespace detail

}  // namespace rubick
