#include "common/threadpool.h"

#include <algorithm>
#include <cstdlib>
#include <limits>
#include <string>

#include "common/wallclock.h"

namespace rubick {

ThreadPool::ThreadPool(int threads) : size_(std::max(1, threads)) {
  if (size_ <= 1) return;
  workers_.reserve(static_cast<std::size_t>(size_));
  for (int i = 0; i < size_; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::enqueue(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
    const auto depth = static_cast<std::uint64_t>(queue_.size());
    std::uint64_t peak = peak_queue_depth_.load(std::memory_order_relaxed);
    while (depth > peak &&
           !peak_queue_depth_.compare_exchange_weak(
               peak, depth, std::memory_order_relaxed)) {
    }
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    const std::uint64_t begin_ns = monotonic_ns();
    task();
    busy_ns_.fetch_add(monotonic_ns() - begin_ns, std::memory_order_relaxed);
    tasks_executed_.fetch_add(1, std::memory_order_relaxed);
  }
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& body) {
  if (end <= begin) return;
  const std::size_t n = end - begin;
  parallel_for_calls_.fetch_add(1, std::memory_order_relaxed);
  indices_processed_.fetch_add(n, std::memory_order_relaxed);
  if (size_ <= 1 || n == 1) {
    for (std::size_t i = begin; i < end; ++i) body(i);
    return;
  }

  struct Ctx {
    std::atomic<std::size_t> next;
    std::atomic<std::size_t> done{0};
    std::size_t end = 0;
    std::size_t count = 0;
    const std::function<void(std::size_t)>* body = nullptr;
    std::mutex err_mu;
    std::size_t err_index = std::numeric_limits<std::size_t>::max();
    std::exception_ptr err;
    std::mutex done_mu;
    std::condition_variable done_cv;
  };
  auto ctx = std::make_shared<Ctx>();
  ctx->next = begin;
  ctx->end = end;
  ctx->count = n;
  ctx->body = &body;

  auto drain = [](const std::shared_ptr<Ctx>& c) {
    for (;;) {
      const std::size_t i = c->next.fetch_add(1);
      if (i >= c->end) break;
      try {
        (*c->body)(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(c->err_mu);
        if (i < c->err_index) {
          c->err_index = i;
          c->err = std::current_exception();
        }
      }
      if (c->done.fetch_add(1) + 1 == c->count) {
        std::lock_guard<std::mutex> lock(c->done_mu);
        c->done_cv.notify_all();
      }
    }
  };

  // Helpers beyond the calling thread; each exits immediately once the index
  // range is exhausted, so stragglers scheduled late cost nothing.
  const std::size_t helpers =
      std::min<std::size_t>(static_cast<std::size_t>(size_), n) - 1;
  for (std::size_t h = 0; h < helpers; ++h) enqueue([ctx, drain] { drain(ctx); });

  drain(ctx);  // the caller works too — nested calls cannot deadlock

  {
    std::unique_lock<std::mutex> lock(ctx->done_mu);
    ctx->done_cv.wait(lock, [&] { return ctx->done.load() == ctx->count; });
  }
  if (ctx->err) std::rethrow_exception(ctx->err);
}

ThreadPoolStats ThreadPool::stats() const {
  ThreadPoolStats out;
  out.tasks_executed = tasks_executed_.load(std::memory_order_relaxed);
  out.parallel_for_calls =
      parallel_for_calls_.load(std::memory_order_relaxed);
  out.indices_processed =
      indices_processed_.load(std::memory_order_relaxed);
  out.peak_queue_depth = peak_queue_depth_.load(std::memory_order_relaxed);
  out.busy_s =
      static_cast<double>(busy_ns_.load(std::memory_order_relaxed)) * 1e-9;
  return out;
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool(default_size());
  return pool;
}

int ThreadPool::default_size() {
  if (const char* env = std::getenv("RUBICK_THREADS")) {
    char* tail = nullptr;
    const long v = std::strtol(env, &tail, 10);
    if (tail != env && *tail == '\0' && v >= 1 && v <= 1024)
      return static_cast<int>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

}  // namespace rubick
