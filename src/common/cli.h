// Minimal command-line flag parsing for the tools and benches.
//
// Supports `--key=value` and `--key value` forms plus boolean switches
// (`--flag` / `--no-flag`). Unknown flags raise an error listing the flags
// that were registered, so typos fail loudly.
//
// Flag names are kebab-case (`--sched-json`). snake_case spellings
// (`--sched_json`) are accepted as deprecated aliases: they parse to the
// kebab-case flag and emit a deprecation warning. Registering a snake_case
// flag name in code is a cli-flags staticcheck error (tools/staticcheck).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace rubick {

class CliFlags {
 public:
  // Parses argv; throws InvariantError on malformed or unknown flags once
  // `finish()` is called (flags are validated lazily so the caller can
  // declare them with defaults first).
  CliFlags(int argc, char** argv);

  // Declares a flag and returns its value (or the default). Each getter
  // also marks the flag as known for unknown-flag detection.
  std::string get_string(const std::string& name, const std::string& def);
  int get_int(const std::string& name, int def);
  double get_double(const std::string& name, double def);
  std::uint64_t get_u64(const std::string& name, std::uint64_t def);
  bool get_bool(const std::string& name, bool def);

  // Validates that every flag the user passed was declared; call after all
  // getters. Throws InvariantError otherwise.
  void finish() const;

  const std::string& program() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> values_;
  mutable std::vector<std::string> known_;
};

}  // namespace rubick
