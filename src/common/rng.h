// Deterministic random number generation.
//
// Every stochastic component in the library (trace synthesis, oracle noise,
// model-parameter draws) derives its stream from an explicit seed so that all
// tests and benchmarks are reproducible bit-for-bit. We implement
// xoshiro256** seeded through splitmix64 rather than using std::mt19937 so
// that streams are cheap to fork (`Rng::fork`) and stable across standard
// library implementations.
#pragma once

#include <cstdint>
#include <string_view>

namespace rubick {

// splitmix64 step; used for seeding and for hashing strings into seeds.
std::uint64_t splitmix64(std::uint64_t& state);

// Stable 64-bit hash of a string (FNV-1a finalized through splitmix64),
// used to derive per-model / per-job substreams from names.
std::uint64_t hash_seed(std::string_view s, std::uint64_t salt = 0);

// xoshiro256** PRNG with convenience distributions.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

  // Derives an independent stream; `tag` keeps forks for different purposes
  // decorrelated even when forked from the same parent state.
  Rng fork(std::string_view tag);

  std::uint64_t next_u64();

  // Uniform in [0, 1).
  double uniform();
  // Uniform in [lo, hi).
  double uniform(double lo, double hi);
  // Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);
  // Standard normal via Box–Muller.
  double normal(double mean = 0.0, double stddev = 1.0);
  // Lognormal: exp(normal(mu, sigma)).
  double lognormal(double mu, double sigma);
  // Exponential with given rate (events per unit time).
  double exponential(double rate);
  // Bernoulli trial.
  bool bernoulli(double p);
  // Index in [0, n) with probability proportional to weights[i].
  std::size_t weighted_index(const double* weights, std::size_t n);

 private:
  std::uint64_t s_[4];
};

}  // namespace rubick
