#include "common/resource.h"

#include <ostream>
#include <sstream>

#include "common/error.h"
#include "common/units.h"

namespace rubick {

const char* to_string(ResourceType t) {
  switch (t) {
    case ResourceType::kGpu:
      return "GPU";
    case ResourceType::kCpu:
      return "CPU";
    case ResourceType::kMemory:
      return "Memory";
  }
  return "?";
}

double ResourceVector::get(ResourceType t) const {
  switch (t) {
    case ResourceType::kGpu:
      return gpus;
    case ResourceType::kCpu:
      return cpus;
    case ResourceType::kMemory:
      return static_cast<double>(memory_bytes);
  }
  return 0.0;
}

void ResourceVector::add(ResourceType t, double amount) {
  switch (t) {
    case ResourceType::kGpu:
      gpus += static_cast<int>(amount);
      RUBICK_CHECK(gpus >= 0);
      return;
    case ResourceType::kCpu:
      cpus += static_cast<int>(amount);
      RUBICK_CHECK(cpus >= 0);
      return;
    case ResourceType::kMemory: {
      const auto delta = static_cast<std::int64_t>(amount);
      const auto current = static_cast<std::int64_t>(memory_bytes);
      RUBICK_CHECK(current + delta >= 0);
      memory_bytes = static_cast<std::uint64_t>(current + delta);
      return;
    }
  }
}

ResourceVector& ResourceVector::operator+=(const ResourceVector& o) {
  gpus += o.gpus;
  cpus += o.cpus;
  memory_bytes += o.memory_bytes;
  return *this;
}

ResourceVector& ResourceVector::operator-=(const ResourceVector& o) {
  RUBICK_CHECK_MSG(o.fits_within(*this),
                   "resource underflow: " << to_string() << " -= "
                                          << o.to_string());
  gpus -= o.gpus;
  cpus -= o.cpus;
  memory_bytes -= o.memory_bytes;
  return *this;
}

std::string ResourceVector::to_string() const {
  std::ostringstream os;
  os << "{gpu=" << gpus << ", cpu=" << cpus
     << ", mem=" << to_gigabytes(memory_bytes) << "GB}";
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const ResourceVector& rv) {
  return os << rv.to_string();
}

}  // namespace rubick
