#include "common/wallclock.h"

#include <chrono>

namespace rubick {

std::uint64_t monotonic_ns() {
  // staticcheck:allow(determinism) -- sole wall-clock read in src/:
  // telemetry-only (span timestamps); nothing read from it may steer
  // scheduling or simulation, see header.
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace rubick
