#include "common/wallclock.h"

#include <chrono>

namespace rubick {

std::uint64_t monotonic_ns() {
  // Sole wall-clock read in src/ (allowlisted in tools/lint_conventions.py):
  // telemetry-only, see header.
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace rubick
