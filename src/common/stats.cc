#include "common/stats.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace rubick {

double mean(std::span<const double> xs) {
  RUBICK_CHECK(!xs.empty());
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) {
  RUBICK_CHECK(xs.size() >= 2);
  const double m = mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(xs.size() - 1));
}

double min_of(std::span<const double> xs) {
  RUBICK_CHECK(!xs.empty());
  return *std::min_element(xs.begin(), xs.end());
}

double max_of(std::span<const double> xs) {
  RUBICK_CHECK(!xs.empty());
  return *std::max_element(xs.begin(), xs.end());
}

double percentile(std::span<const double> xs, double p) {
  RUBICK_CHECK(!xs.empty());
  RUBICK_CHECK(p >= 0.0 && p <= 1.0);
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted[0];
  const double idx = p * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(idx);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double rmsle(std::span<const double> predicted,
             std::span<const double> actual) {
  RUBICK_CHECK(predicted.size() == actual.size());
  RUBICK_CHECK(!predicted.empty());
  double s = 0.0;
  for (std::size_t i = 0; i < predicted.size(); ++i) {
    RUBICK_CHECK_MSG(predicted[i] > 0.0 && actual[i] > 0.0,
                     "rmsle requires positive values");
    const double d = std::log(predicted[i]) - std::log(actual[i]);
    s += d * d;
  }
  return std::sqrt(s / static_cast<double>(predicted.size()));
}

double mape(std::span<const double> predicted, std::span<const double> actual) {
  RUBICK_CHECK(predicted.size() == actual.size());
  RUBICK_CHECK(!predicted.empty());
  double s = 0.0;
  for (std::size_t i = 0; i < predicted.size(); ++i) {
    RUBICK_CHECK(actual[i] != 0.0);
    s += std::abs(predicted[i] - actual[i]) / std::abs(actual[i]);
  }
  return s / static_cast<double>(predicted.size());
}

Summary summarize(std::span<const double> xs) {
  Summary out;
  if (xs.empty()) return out;
  out.count = xs.size();
  out.mean = mean(xs);
  out.p50 = percentile(xs, 0.5);
  out.p99 = percentile(xs, 0.99);
  out.max = max_of(xs);
  return out;
}

}  // namespace rubick
