// Plain-text table formatting for benchmark reports.
//
// Each bench binary reproduces one table/figure of the paper and prints it as
// an aligned text table (plus optional CSV), so `bench_output.txt` can be
// compared against the paper side by side.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace rubick {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  // Convenience: formats doubles with the given precision.
  static std::string fmt(double v, int precision = 2);

  void print(std::ostream& os) const;
  std::string to_csv() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace rubick
