// Tiny JSON emission helpers shared by the structured-log format, the
// metrics/trace exporters and the telemetry/provenance observers. Writing
// only — reading back repo-written artifacts (the decision log consumed by
// rubick_explain) goes through common/jsonp.h instead.
#pragma once

#include <cmath>
#include <ostream>
#include <sstream>
#include <string>

namespace rubick {

// Escapes `s` for inclusion inside a JSON string literal (quotes not
// included). Control characters become \u00XX.
inline std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  static const char* kHex = "0123456789abcdef";
  for (const char ch : s) {
    const unsigned char c = static_cast<unsigned char>(ch);
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          out += "\\u00";
          out += kHex[c >> 4];
          out += kHex[c & 0xf];
        } else {
          out += ch;
        }
    }
  }
  return out;
}

// Renders a double as a JSON number. JSON has no NaN/Inf; they degrade to
// null, which every consumer treats as "absent".
inline std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  std::ostringstream os;
  os.precision(15);
  os << v;
  return os.str();
}

// `"key":` fragment.
inline std::string json_key(const std::string& key) {
  return "\"" + json_escape(key) + "\":";
}

inline std::string json_str(const std::string& value) {
  return "\"" + json_escape(value) + "\"";
}

}  // namespace rubick
