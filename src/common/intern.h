// Exact string interning for cache keys.
//
// intern_key_string() assigns one stable numeric id per distinct string
// (ids start at 1; 0 is reserved as "unset") behind a process-wide table.
// It is exact — no hash collisions can alias two labels — and thread-safe,
// so concurrently warming predictors agree on ids.
//
// intern_key_string_cached() is the hot-path variant: it memoizes the
// global table's answer in a thread-local map, so steady-state lookups
// (e.g. the per-query model-name interning in BestPlanPredictor) touch no
// shared mutex at all. Both functions return identical ids for identical
// strings.
#pragma once

#include <cstdint>
#include <string>

namespace rubick {

// Returns the stable id for `s`, assigning the next free id on first sight.
// Thread-safe (global table behind a mutex).
std::uint32_t intern_key_string(const std::string& s);

// Same ids as intern_key_string(), served from a thread-local memo after
// the first sight per thread. Use on hot paths that re-intern the same few
// strings (model names, selector labels) millions of times.
std::uint32_t intern_key_string_cached(const std::string& s);

}  // namespace rubick
