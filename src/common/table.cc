#include "common/table.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/error.h"

namespace rubick {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  RUBICK_CHECK(!header_.empty());
}

void TextTable::add_row(std::vector<std::string> cells) {
  RUBICK_CHECK_MSG(cells.size() == header_.size(),
                   "row width " << cells.size() << " != header width "
                                << header_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::fmt(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t i = 0; i < header_.size(); ++i)
    widths[i] = header_[i].size();
  for (const auto& row : rows_)
    for (std::size_t i = 0; i < row.size(); ++i)
      widths[i] = std::max(widths[i], row[i].size());

  auto print_row = [&](const std::vector<std::string>& row) {
    os << "| ";
    for (std::size_t i = 0; i < row.size(); ++i) {
      os << std::left << std::setw(static_cast<int>(widths[i])) << row[i];
      os << (i + 1 < row.size() ? " | " : " |");
    }
    os << "\n";
  };

  print_row(header_);
  os << "|";
  for (std::size_t w : widths) os << std::string(w + 2, '-') << "|";
  os << "\n";
  for (const auto& row : rows_) print_row(row);
}

std::string TextTable::to_csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      os << row[i];
      if (i + 1 < row.size()) os << ",";
    }
    os << "\n";
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

}  // namespace rubick
