// Unit conventions and conversion helpers.
//
// The whole library uses a single, explicit unit system:
//   time        : seconds (double)
//   memory      : bytes (std::uint64_t) — helpers for GiB below
//   bandwidth   : bytes per second (double) — helpers for GB/s below
//   throughput  : training samples per second (double)
//   parameters  : raw count (std::uint64_t); bytes via element size
//
// Quantities embedded in identifiers carry suffixes (_s, _bytes, _bps).
#pragma once

#include <cstdint>

namespace rubick {

inline constexpr double kKilo = 1e3;
inline constexpr double kMega = 1e6;
inline constexpr double kGiga = 1e9;

// The paper reports link speeds in GB/s (decimal).
constexpr double gb_per_s(double gb) { return gb * kGiga; }

// GPU / host memory sizes are reported in GiB-ish "GB"; we use decimal GB
// consistently since only ratios matter for feasibility decisions.
constexpr std::uint64_t gigabytes(double gb) {
  return static_cast<std::uint64_t>(gb * kGiga);
}

constexpr double to_gigabytes(std::uint64_t bytes) {
  return static_cast<double>(bytes) / kGiga;
}

// Mixed-precision training: fp16 model weights / gradients, fp32 optimizer
// state (master weights + Adam moments).
inline constexpr std::uint64_t kBytesPerParamFp16 = 2;
inline constexpr std::uint64_t kBytesPerParamFp32 = 4;

constexpr double hours(double h) { return h * 3600.0; }
constexpr double minutes(double m) { return m * 60.0; }
constexpr double to_hours(double seconds) { return seconds / 3600.0; }

}  // namespace rubick
