// Unit conventions and conversion helpers.
//
// The whole library uses a single, explicit unit system:
//   time        : seconds (double)
//   memory      : bytes (std::uint64_t) — helpers for decimal GB below
//   bandwidth   : bytes per second (double) — helpers for GB/s below
//   throughput  : training samples per second (double)
//   parameters  : raw count (std::uint64_t); bytes via element size
//
// Quantities embedded in identifiers carry suffixes (_s, _bytes, _bps).
#pragma once

#include <cstdint>

namespace rubick {

inline constexpr double kKilo = 1e3;
inline constexpr double kMega = 1e6;
inline constexpr double kGiga = 1e9;

// The paper reports link speeds in GB/s (decimal).
constexpr double gb_per_s(double gb) { return gb * kGiga; }

// Memory sizes use decimal gigabytes: gigabytes(n) == n * 1e9 bytes, NOT
// n * 2^30 (GiB). Hardware specs quote binary GiB, but feasibility
// decisions here only compare estimates against capacities converted with
// the same helper, so only ratios matter; decimal keeps the arithmetic
// exact and round-trippable with to_gigabytes().
constexpr std::uint64_t gigabytes(double gb) {
  return static_cast<std::uint64_t>(gb * kGiga);
}

constexpr double to_gigabytes(std::uint64_t bytes) {
  return static_cast<double>(bytes) / kGiga;
}

// Mixed-precision training: fp16 model weights / gradients, fp32 optimizer
// state (master weights + Adam moments).
inline constexpr std::uint64_t kBytesPerParamFp16 = 2;
inline constexpr std::uint64_t kBytesPerParamFp32 = 4;

constexpr double hours(double h) { return h * 3600.0; }
constexpr double minutes(double m) { return m * 60.0; }
constexpr double to_hours(double seconds) { return seconds / 3600.0; }

}  // namespace rubick
