// Multi-resource vectors.
//
// The paper schedules three resource types per job: GPUs, CPUs and host
// memory (network bandwidth is a property of the placement, not an allocated
// quantity). ResourceVector is the value type used for requests, free
// capacity, quotas and allocations throughout the scheduler.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

namespace rubick {

enum class ResourceType { kGpu, kCpu, kMemory };

const char* to_string(ResourceType t);

struct ResourceVector {
  int gpus = 0;
  int cpus = 0;
  std::uint64_t memory_bytes = 0;

  static ResourceVector zero() { return {}; }

  bool is_zero() const { return gpus == 0 && cpus == 0 && memory_bytes == 0; }

  // Component-wise comparison: true iff every component of *this is <= other.
  // Note this is a partial order; !(a.fits_within(b)) does not imply
  // b.fits_within(a).
  bool fits_within(const ResourceVector& other) const {
    return gpus <= other.gpus && cpus <= other.cpus &&
           memory_bytes <= other.memory_bytes;
  }

  double get(ResourceType t) const;
  void add(ResourceType t, double amount);

  ResourceVector& operator+=(const ResourceVector& o);
  // Subtraction checks for underflow (an allocation may never exceed what is
  // available); see resource.cc.
  ResourceVector& operator-=(const ResourceVector& o);

  friend ResourceVector operator+(ResourceVector a, const ResourceVector& b) {
    return a += b;
  }
  friend ResourceVector operator-(ResourceVector a, const ResourceVector& b) {
    return a -= b;
  }
  friend bool operator==(const ResourceVector&, const ResourceVector&) =
      default;

  std::string to_string() const;
};

std::ostream& operator<<(std::ostream& os, const ResourceVector& rv);

}  // namespace rubick
