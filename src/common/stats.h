// Small statistics helpers shared by the fitter, the simulator metrics and
// the benchmark reports.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace rubick {

double mean(std::span<const double> xs);
double stddev(std::span<const double> xs);  // sample stddev (n-1)
double min_of(std::span<const double> xs);
double max_of(std::span<const double> xs);

// p in [0, 1]; linear interpolation between order statistics.
// percentile({..}, 0.99) is the P99 used in the paper's JCT tables.
double percentile(std::span<const double> xs, double p);

// Root mean squared logarithmic error between predictions and targets;
// the objective minimized when fitting the performance model (paper §4.3).
// Both inputs must be positive and the same length.
double rmsle(std::span<const double> predicted, std::span<const double> actual);

// Mean absolute percentage error, |pred - actual| / actual, as a fraction.
double mape(std::span<const double> predicted, std::span<const double> actual);

// Summary of a sample, used for JCT reporting.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double p50 = 0.0;
  double p99 = 0.0;
  double max = 0.0;
};

Summary summarize(std::span<const double> xs);

}  // namespace rubick
