#include "baselines/common.h"
#include "cluster/cluster.h"
#include "cluster/placement.h"
#include "core/plan_selector.h"
#include "model/model_spec.h"
#include "perf/analytic.h"
#include "perf/fitter.h"
#include "perf/perf_store.h"
#include "plan/execution_plan.h"
#include "plan/memory_estimator.h"

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "common/error.h"
#include "core/fault_tolerance.h"
#include "model/model_zoo.h"
#include "perf/profiler.h"

namespace rubick {

bool pack_job(AllocState& state, const ClusterSpec& cluster, int job_id,
              int gpus, int cpu_per_gpu, int chunk) {
  RUBICK_CHECK(gpus > 0 && cpu_per_gpu >= 1 && chunk >= 1);
  const auto snap = state.snapshot();

  std::vector<int> order(static_cast<std::size_t>(cluster.num_nodes));
  for (int n = 0; n < cluster.num_nodes; ++n)
    order[static_cast<std::size_t>(n)] = n;
  // Prefer faster nodes first (heterogeneous pods), then emptier ones.
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    const double sa = cluster.speed_of(a);
    const double sb = cluster.speed_of(b);
    if (sa != sb) return sa > sb;
    return state.free_gpus(a) > state.free_gpus(b);
  });

  int remaining = gpus;
  for (int n : order) {
    if (remaining <= 0) break;
    int take = std::min(state.free_gpus(n), remaining);
    take = std::min(take, state.free_cpus(n) / cpu_per_gpu);
    take -= take % chunk;
    if (take <= 0) continue;
    state.take_gpus(job_id, n, take);
    state.take_cpus(job_id, n, take * cpu_per_gpu);
    remaining -= take;
  }
  if (remaining > 0) {
    state.restore(snap);
    return false;
  }
  return true;
}

bool commit_job_plan(AllocState& state, BestPlanPredictor& predictor,
                     const MemoryEstimator& estimator,
                     const PerfModelStore& store, const ClusterSpec& cluster,
                     const JobView& view, const PlanSelector& selector,
                     std::map<int, ExecutionPlan>& chosen, double switch_gain) {
  const int id = view.spec->id;
  const Placement placement = state.placement_of(id);
  if (placement.total_gpus() <= 0) return false;
  const ModelSpec& model = find_model(view.spec->model_name);
  const int batch = view.spec->global_batch;

  const bool same_shape = [&] {
    if (!view.running) return false;
    if (view.placement.slices.size() != placement.slices.size()) return false;
    for (std::size_t i = 0; i < placement.slices.size(); ++i) {
      const auto& a = view.placement.slices[i];
      const auto& b = placement.slices[i];
      if (a.node != b.node || a.gpus != b.gpus || a.cpus != b.cpus)
        return false;
    }
    return true;
  }();

  const auto ranked =
      predictor.ranked_for_placement(model, batch, selector, placement);
  if (ranked->empty()) return false;

  if (same_shape) {
    const PerfModel& perf = store.get(model.name);
    const PerfContext ctx = make_perf_context(cluster, placement);
    const double current =
        perf.predict_throughput(model, view.plan, batch, ctx);
    if (ranked->front().throughput < switch_gain * current) {
      chosen[id] = view.plan;
      return true;
    }
  }

  state.release_memory(id);
  for (const auto& pred : *ranked) {
    if (state.alloc_memory(id, model, pred.plan, batch, estimator)) {
      chosen[id] = pred.plan;
      return true;
    }
  }
  return false;
}

std::vector<Assignment> emit_assignments(
    const AllocState& state, const SchedulerInput& input,
    const std::map<int, ExecutionPlan>& chosen,
    ProvenanceRecorder* provenance, const std::string& policy_name) {
  std::vector<Assignment> out;
  for (const auto& v : input.jobs) {
    const int id = v.spec->id;
    const Placement placement = state.placement_of(id);
    if (placement.total_gpus() <= 0) continue;
    auto it = chosen.find(id);
    RUBICK_CHECK_MSG(it != chosen.end(),
                     "job " << id << " has an allocation but no plan");
    out.push_back(Assignment{id, placement, it->second});
  }
  ProvenanceRecorder* const prov =
      kProvenanceCompiledIn ? provenance : nullptr;
  std::vector<int> pre_pass_ids;
  if (prov != nullptr) {
    pre_pass_ids.reserve(out.size());
    for (const Assignment& a : out) pre_pass_ids.push_back(a.job_id);
  }
  apply_fault_tolerance(input, out);
  if (prov != nullptr) {
    std::map<int, const Assignment*> granted;
    for (const Assignment& a : out) granted[a.job_id] = &a;
    RoundRecord round;
    round.now_s = input.now;
    round.policy = policy_name;
    round.decisions.reserve(input.jobs.size());
    for (const auto& v : input.jobs) {
      DecisionRecord r;
      r.job_id = v.spec->id;
      r.prev_gpus = v.running ? v.placement.total_gpus() : 0;
      if (v.running) {
        r.has_prev_plan = true;
        r.prev_plan = v.plan;
      }
      const auto it = granted.find(r.job_id);
      const Assignment* a = it == granted.end() ? nullptr : it->second;
      if (a != nullptr) {
        r.gpus = a->placement.total_gpus();
        r.cpus = a->placement.total_cpus();
        r.nodes = static_cast<int>(a->placement.slices.size());
        r.has_plan = true;
        r.plan = a->plan;
        if (r.prev_gpus == 0) {
          r.kind = DecisionKind::kAdmit;
        } else if (r.gpus > r.prev_gpus) {
          r.kind = DecisionKind::kGrow;
        } else if (r.gpus < r.prev_gpus) {
          r.kind = DecisionKind::kShrink;
        } else if (!(a->plan == v.plan)) {
          r.kind = DecisionKind::kReplan;
        } else {
          r.kind = DecisionKind::kKeep;
        }
      } else {
        r.kind = v.running ? DecisionKind::kPreempt : DecisionKind::kQueue;
      }
      r.gates.backoff_gated = !v.running && input.now < v.retry_not_before_s;
      r.gates.degraded = v.degraded;
      r.gates.reconfig_failures = v.reconfig_failures;
      r.gates.retry_not_before_s = v.retry_not_before_s;
      r.gates.fault_dropped =
          a == nullptr && std::find(pre_pass_ids.begin(), pre_pass_ids.end(),
                                    r.job_id) != pre_pass_ids.end();
      r.sla.guaranteed = v.spec->guaranteed;
      round.decisions.push_back(std::move(r));
    }
    prov->record(std::move(round));
  }
  return out;
}

}  // namespace rubick
